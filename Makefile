# Convenience targets for the webcache reproduction.

GO ?= go

.PHONY: all build vet test test-short race fmt-check verify cover bench bench-baseline bench-compare bench-smoke bench-guard bench-proxy bench-proxy-read-mostly bench-proxy-shadow bench-proxy-traced bench-proxy-smoke bench-proxy-shadow-smoke bench-proxy-traced-smoke report examples clean

# Workload scale for the replay benchmark harness; 0.3 is large enough
# for stable ns/request numbers, small enough to finish in seconds.
BENCH_SCALE ?= 0.3
BENCH_REPS  ?= 3

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full-scale workload calibration and live HTTP replays.
test-short:
	$(GO) test -short ./...

# Full-repo race coverage; -short gates the slow calibration tests. This
# is the gate for the parallel experiment runner: the determinism suite
# and the 200-replay stress test in internal/sim run under the detector.
race:
	$(GO) test -race -short ./...

# Fails if any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# The CI gate: formatting, build, vet, short tests, race coverage,
# smoke runs of both benchmark harnesses (replay, which doubles as an
# end-to-end equivalence check of the compiled comparator and
# structural policy layers, and the contended-store loadgen with its
# trajectory schema check), and the recorded-trajectory guard.
verify: fmt-check build vet test-short race bench-smoke bench-guard bench-proxy-smoke bench-proxy-shadow-smoke bench-proxy-traced-smoke

# Whole-repo statement coverage (short mode, like the CI gate); writes
# cover.out for tooling and prints the per-function summary tail.
cover:
	$(GO) test -short -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the 36-policy replay hot path and append the result to the
# tracked trajectory (BENCH_replay.json at the repo root, one array
# entry per recorded run). With benchstat on PATH also snapshots the
# per-family replay benchmarks.
bench-baseline:
	$(GO) run ./internal/tools/benchreplay -scale $(BENCH_SCALE) -reps $(BENCH_REPS) -out BENCH_replay.json
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) test ./internal/sim -run NONE -bench Replay -benchtime 0.5s -count 6 > BENCH_families.txt; \
		echo "wrote BENCH_families.txt (benchstat baseline)"; \
	fi

# Report the delta between the trajectory's last two recorded entries
# (no measurement); benchstat over the per-family benchmarks when
# available.
bench-compare:
	$(GO) run ./internal/tools/benchreplay -diff BENCH_replay.json
	@if command -v benchstat >/dev/null 2>&1 && [ -f BENCH_families.txt ]; then \
		$(GO) test ./internal/sim -run NONE -bench Replay -benchtime 0.5s -count 6 > /tmp/BENCH_families_new.txt; \
		benchstat BENCH_families.txt /tmp/BENCH_families_new.txt; \
	fi

# Quick harness run at a reduced scale: verifies that the generic,
# string-indexed, and interned engines produce byte-identical sweep
# results.
bench-smoke:
	$(GO) run ./internal/tools/benchreplay -scale 0.02 -reps 1

# Guards over the recorded trajectories (no measurement): the replay
# schema must hold — including the nostructural/structural_subset field
# groups — and the last recorded entry must not have regressed optimized
# ns/request by more than 15% vs its predecessor, so a slow hot path
# cannot be recorded and merged silently. The proxy trajectory's
# travel-together groups (buffered_*, shadow_*, trace_*) are checked by
# the same gate.
bench-guard:
	$(GO) run ./internal/tools/benchreplay -check BENCH_replay.json
	$(GO) run ./internal/tools/benchreplay -diff BENCH_replay.json -threshold 15
	$(GO) run ./cmd/loadgen -check BENCH_proxy.json

# Contended-store throughput: single-mutex Store vs N-way ShardedStore
# under zipf load, appended to the tracked trajectory (BENCH_proxy.json
# at the repo root — same append-only, git_rev'd arrangement as
# BENCH_replay.json; the speedup only means something relative to the
# recorded gomaxprocs).
LOADGEN_GOROUTINES ?= 8
LOADGEN_SHARDS     ?= 16
bench-proxy:
	$(GO) run ./cmd/loadgen -goroutines $(LOADGEN_GOROUTINES) -shards $(LOADGEN_SHARDS) -out BENCH_proxy.json

# The buffered hit path's home ground: 99% GETs, so the run compares
# all three stores (single-mutex, locked sharded, buffered sharded with
# its Maintainer live) and records hit-path latency quantiles alongside
# throughput. Appends to the same tracked trajectory.
bench-proxy-read-mostly:
	$(GO) run ./cmd/loadgen -preset read-mostly -goroutines $(LOADGEN_GOROUTINES) -shards $(LOADGEN_SHARDS) -out BENCH_proxy.json

# Price the ghost-cache fleet on the hit path: the read-mostly preset
# with a fourth side shadowed by three candidate policies, recorded to
# the tracked trajectory. The acceptance target is shadow_overhead
# (shadowed p50 over baseline p50) staying under 1.10.
bench-proxy-shadow:
	$(GO) run ./cmd/loadgen -preset read-mostly -shadow 3 -goroutines $(LOADGEN_GOROUTINES) -shards $(LOADGEN_SHARDS) -out BENCH_proxy.json

# Price request-lifecycle tracing on the hit path: the read-mostly
# preset with a fifth side whose store runs the traced span path, every
# request sampled (the worst case), recorded to the tracked trajectory.
# The acceptance target is trace_overhead (traced p50 over baseline
# p50) staying within noise of 1.0 at realistic sampling and bounded at
# -trace-sample 1.
bench-proxy-traced:
	$(GO) run ./cmd/loadgen -preset read-mostly -trace-sample 1 -goroutines $(LOADGEN_GOROUTINES) -shards $(LOADGEN_SHARDS) -out BENCH_proxy.json

# Tiny traced run for CI: the traced fifth side plus its trace_*
# schema checks, against a throwaway file.
bench-proxy-traced-smoke:
	$(GO) run ./cmd/loadgen -keys 256 -goroutines 4 -shards 4 -ops 5000 -reps 1 -preset read-mostly -trace-sample 1 -out /tmp/BENCH_proxy_traced_smoke.json
	$(GO) run ./cmd/loadgen -check /tmp/BENCH_proxy_traced_smoke.json
	@rm -f /tmp/BENCH_proxy_traced_smoke.json

# Tiny shadowed run for CI: all four sides (ghost fleet included) plus
# the shadow_* schema checks, against a throwaway file.
bench-proxy-shadow-smoke:
	$(GO) run ./cmd/loadgen -keys 256 -goroutines 4 -shards 4 -ops 5000 -reps 1 -preset read-mostly -shadow 3 -out /tmp/BENCH_proxy_shadow_smoke.json
	$(GO) run ./cmd/loadgen -check /tmp/BENCH_proxy_shadow_smoke.json
	@rm -f /tmp/BENCH_proxy_shadow_smoke.json

# Tiny loadgen run for CI: exercises the full harness (both stores,
# timed reps, trajectory append + schema check) in well under a second,
# against a throwaway file so the tracked trajectory only ever holds
# deliberate bench-proxy entries.
bench-proxy-smoke:
	$(GO) run ./cmd/loadgen -keys 256 -goroutines 4 -shards 4 -ops 5000 -reps 1 -out /tmp/BENCH_proxy_smoke.json
	$(GO) run ./cmd/loadgen -check /tmp/BENCH_proxy_smoke.json
	@rm -f /tmp/BENCH_proxy_smoke.json
	$(GO) run ./cmd/loadgen -check BENCH_proxy.json

# Full-scale paper-vs-measured numbers (the EXPERIMENTS.md data).
report:
	$(GO) run ./internal/tools/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/policycompare
	$(GO) run ./examples/partitioned
	$(GO) run ./examples/capturepipeline
	$(GO) run ./examples/liveproxy
	$(GO) run ./examples/siblings

clean:
	$(GO) clean ./...
