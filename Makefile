# Convenience targets for the webcache reproduction.

GO ?= go

.PHONY: all build vet test test-short race bench report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full-scale workload calibration and live HTTP replays.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/proxy/ ./internal/origin/ ./cmd/livebench/

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full-scale paper-vs-measured numbers (the EXPERIMENTS.md data).
report:
	$(GO) run ./internal/tools/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/policycompare
	$(GO) run ./examples/partitioned
	$(GO) run ./examples/capturepipeline
	$(GO) run ./examples/liveproxy
	$(GO) run ./examples/siblings

clean:
	$(GO) clean ./...
