# Convenience targets for the webcache reproduction.

GO ?= go

.PHONY: all build vet test test-short race fmt-check verify bench report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full-scale workload calibration and live HTTP replays.
test-short:
	$(GO) test -short ./...

# Full-repo race coverage; -short gates the slow calibration tests. This
# is the gate for the parallel experiment runner: the determinism suite
# and the 200-replay stress test in internal/sim run under the detector.
race:
	$(GO) test -race -short ./...

# Fails if any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# The CI gate: formatting, build, vet, short tests, race coverage.
verify: fmt-check build vet test-short race

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full-scale paper-vs-measured numbers (the EXPERIMENTS.md data).
report:
	$(GO) run ./internal/tools/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/policycompare
	$(GO) run ./examples/partitioned
	$(GO) run ./examples/capturepipeline
	$(GO) run ./examples/liveproxy
	$(GO) run ./examples/siblings

clean:
	$(GO) clean ./...
