// Package webcache is a library for studying and deploying removal
// (replacement) policies in network caches for World-Wide Web documents.
//
// It reproduces Williams, Abrams, Standridge, Abdulla & Fox, "Removal
// Policies in Network Caches for World-Wide Web Documents" (SIGCOMM
// 1996): the paper's taxonomy of removal policies as sorting problems,
// its trace-driven proxy-cache simulator, synthetic versions of its five
// workloads, and all four of its experiments — plus two extension
// experiments answering its §5 open problems, a deployable HTTP caching
// proxy driven by the same policy engine, and the tcpdump→log collection
// pipeline of §2.1.
//
// # Quick start
//
//	tr, _, err := webcache.GenerateWorkload("BL", 42, 0.1)
//	if err != nil { ... }
//	pol, _ := webcache.NewPolicy("SIZE", tr.Start)
//	cache := webcache.NewCache(webcache.CacheConfig{Capacity: 40 << 20, Policy: pol})
//	for i := range tr.Requests {
//		cache.Access(&tr.Requests[i])
//	}
//	fmt.Printf("HR=%.1f%%\n", cache.Stats().HitRate()*100)
//
// # Layout
//
//   - Policies and sorting keys: NewPolicy, Keys, AllCombos (Table 1–3).
//   - Simulated caches: NewCache, NewTwoLevel, NewAudioPartitioned.
//   - Traces: ReadTraceCLF/WriteTraceCLF, ValidateTrace (§1.1),
//     GenerateWorkload (§2, Table 4).
//   - Experiments: MaxHitRates (Exp 1), ComparePolicies (Exp 2),
//     TwoLevelStudy (Exp 3), PartitionStudy (Exp 4), SharedL2Study
//     (Exp 5, §5 open problem 3), LatencyStudy (Exp 6, §1's third
//     criterion).
//   - Trace analysis: AnalyzeTrace (§2.2); transformations MergeTraces,
//     FilterTraceClients, WindowTrace, RebaseTrace.
//   - Live proxy: NewProxy, NewProxyStore, NewICPResponder (Harvest-style
//     sibling cooperation).
//   - Capture pipeline: FilterCapture, SynthesizeCapture (§2.1).
package webcache

import (
	"fmt"
	"io"

	"webcache/internal/analysis"
	"webcache/internal/capture"
	"webcache/internal/core"
	"webcache/internal/httpstream"
	"webcache/internal/policy"
	"webcache/internal/proxy"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// Re-exported core types. The aliases make the library's working types
// nameable by downstream code without exposing the internal packages.
type (
	// Request is one validated Web request (a common-log-format line).
	Request = trace.Request
	// Trace is an ordered request sequence with its start time.
	Trace = trace.Trace
	// DocType classifies documents by media type (Table 4 categories).
	DocType = trace.DocType
	// Key is a removal-policy sorting key (Table 1).
	Key = policy.Key
	// Policy selects removal victims; see NewPolicy.
	Policy = policy.Policy
	// Combo is a (primary, secondary) key pair from the paper's
	// 36-policy experiment design.
	Combo = policy.Combo
	// Cache is the simulated proxy cache.
	Cache = core.Cache
	// CacheConfig configures a Cache.
	CacheConfig = core.Config
	// CacheStats reports hit rates and occupancy.
	CacheStats = core.Stats
	// TwoLevel is the Experiment 3 hierarchy.
	TwoLevel = core.TwoLevel
	// Partitioned is the Experiment 4 media-partitioned cache.
	Partitioned = core.Partitioned
	// WorkloadConfig parameterizes a synthetic workload.
	WorkloadConfig = workload.Config
	// ProxyServer is the live HTTP caching proxy.
	ProxyServer = proxy.Server
	// ProxyStore is the live proxy's policy-driven object store.
	ProxyStore = proxy.Store
	// ShardedProxyStore is the N-way sharded store for contended
	// serving: per-shard policy instance, lock, and capacity quota.
	ShardedProxyStore = proxy.ShardedStore
	// ProxyObjectStore is the store contract the proxy serves from;
	// both ProxyStore and ShardedProxyStore satisfy it.
	ProxyObjectStore = proxy.ObjectStore
)

// Document type constants (Table 4 categories).
const (
	Graphics = trace.Graphics
	Text     = trace.Text
	Audio    = trace.Audio
	Video    = trace.Video
	CGI      = trace.CGI
	Unknown  = trace.Unknown
)

// Sorting-key constants (Table 1, plus RANDOM and the §5 extension keys).
const (
	KeySize     = policy.KeySize
	KeyLog2Size = policy.KeyLog2Size
	KeyETime    = policy.KeyETime
	KeyATime    = policy.KeyATime
	KeyDayATime = policy.KeyDayATime
	KeyNRef     = policy.KeyNRef
	KeyRandom   = policy.KeyRandom
	KeyType     = policy.KeyType
	KeyLatency  = policy.KeyLatency
)

// NewPolicy builds a removal policy from a specification string: a
// literature policy name ("FIFO", "LRU", "LFU", "LRU-MIN", "Hyper-G",
// "Pitkow/Recker", "GD-Size(1)") or a slash-separated key list such as
// "SIZE/NREF" (a random tiebreak is always appended). dayStart anchors
// day-based keys; pass the trace's Start.
func NewPolicy(spec string, dayStart int64) (Policy, error) {
	return policy.Parse(spec, dayStart)
}

// NewSortedPolicy builds a policy from explicit keys (Table 1 order
// semantics, random tiebreak appended).
func NewSortedPolicy(keys []Key, dayStart int64) Policy {
	return policy.NewSorted(keys, dayStart)
}

// AllCombos returns the paper's 36 primary/secondary key combinations.
func AllCombos() []Combo { return policy.AllCombos() }

// PrimaryCombos returns the six Table 1 keys each paired with a random
// secondary — the policies of Figures 8–12.
func PrimaryCombos() []Combo { return policy.PrimaryCombos() }

// NewCache returns a simulated proxy cache. Capacity 0 means infinite.
func NewCache(cfg CacheConfig) *Cache { return core.New(cfg) }

// NewTwoLevel returns the Experiment 3 two-level hierarchy.
func NewTwoLevel(l1, l2 CacheConfig) *TwoLevel { return core.NewTwoLevel(l1, l2) }

// NewAudioPartitioned returns the Experiment 4 audio/non-audio
// partitioned cache.
func NewAudioPartitioned(audio, other CacheConfig) *Partitioned {
	return core.NewAudioPartitioned(audio, other)
}

// GenerateWorkload synthesizes one of the paper's five workloads ("U",
// "G", "C", "BR", "BL") at the given seed and scale (1.0 = the paper's
// full trace volume), applies the §1.1 validation, and returns the
// simulator-ready trace.
func GenerateWorkload(name string, seed uint64, scale float64) (*Trace, *trace.ValidateStats, error) {
	cfg, err := workload.ByName(name, seed)
	if err != nil {
		return nil, nil, err
	}
	cfg.Scale = scale
	return workload.GenerateValidated(cfg)
}

// WorkloadNames lists the five paper workloads.
func WorkloadNames() []string { return append([]string(nil), workload.Names...) }

// ReadTraceCLF parses an (extended) common-log-format stream into a raw
// trace; run ValidateTrace before simulating.
func ReadTraceCLF(r io.Reader, name string) (*Trace, error) {
	tr, stats, err := trace.ReadCLF(r, name)
	if err != nil {
		return nil, err
	}
	if stats.Malformed > 0 && stats.Parsed == 0 {
		return nil, fmt.Errorf("webcache: no parseable log lines (first error: %v)", stats.FirstError)
	}
	return tr, nil
}

// WriteTraceCLF writes tr in common log format; extended appends
// Last-Modified fields where present.
func WriteTraceCLF(w io.Writer, tr *Trace, extended bool) error {
	return trace.WriteCLF(w, tr, extended)
}

// ValidateTrace applies the paper's §1.1 rules (status-200 only,
// zero-size inheritance) and returns the simulator-ready trace.
func ValidateTrace(raw *Trace) (*Trace, *trace.ValidateStats) {
	return trace.Validate(raw)
}

// MaxHitRates runs Experiment 1 (infinite cache): the maximum achievable
// HR/WHR and MaxNeeded for the trace.
func MaxHitRates(tr *Trace, seed uint64) *sim.Exp1Result {
	return sim.Experiment1(tr, seed)
}

// ComparePolicies runs Experiment 2: each key combination on a cache of
// fraction×MaxNeeded, scored against the infinite-cache bound. The
// independent replays fan out across a GOMAXPROCS worker pool; results
// are identical to a sequential run (see Runner).
func ComparePolicies(tr *Trace, base *sim.Exp1Result, combos []Combo, fraction float64, seed uint64) *sim.Exp2Result {
	return sim.Experiment2(tr, base, combos, fraction, seed)
}

// Runner is the parallel experiment engine: a bounded worker pool that
// fans independent cache replays out across goroutines and returns
// results in deterministic input order. All experiment entry points use
// a shared GOMAXPROCS-sized runner by default; construct one with
// NewRunner to control the worker count explicitly and pass it to the
// sim package's ...R entry points.
type Runner = sim.Runner

// RunnerConfig configures a Runner (Workers <= 0 means GOMAXPROCS).
type RunnerConfig = sim.RunnerConfig

// NewRunner returns a parallel experiment runner.
func NewRunner(cfg RunnerConfig) *Runner { return sim.NewRunner(cfg) }

// TwoLevelStudy runs Experiment 3 on the trace.
func TwoLevelStudy(tr *Trace, base *sim.Exp1Result, fraction float64, seed uint64) *sim.Exp3Result {
	return sim.Experiment3(tr, base, fraction, seed)
}

// PartitionStudy runs Experiment 4 on the trace.
func PartitionStudy(tr *Trace, base *sim.Exp1Result, fraction float64, seed uint64) *sim.Exp4Result {
	return sim.Experiment4(tr, base, fraction, seed)
}

// NewProxyStore returns a live-proxy object store with the given byte
// capacity and policy (nil policy defaults to SIZE, the paper's
// recommendation).
func NewProxyStore(capacity int64, pol Policy) *ProxyStore {
	return proxy.NewStore(capacity, pol)
}

// NewShardedProxyStore returns an object store sharded N ways by URL
// hash, each shard holding its own policy instance from newPolicy (nil
// defaults every shard to SIZE) and an equal slice of the total
// capacity — the contended-serving drop-in for NewProxyStore.
func NewShardedProxyStore(capacity int64, shards int, newPolicy func() Policy) *ShardedProxyStore {
	return proxy.NewShardedStore(capacity, shards, newPolicy)
}

// NewProxy returns a live HTTP caching proxy over the store (a
// *ProxyStore or *ShardedProxyStore).
func NewProxy(store ProxyObjectStore) *ProxyServer { return proxy.New(store) }

// SynthesizeCapture renders tr as the Ethernet/IPv4/TCP packet capture a
// backbone monitor would record (§2.1), written as a pcap stream to w.
func SynthesizeCapture(tr *Trace, w io.Writer, seed uint64) error {
	pw := capture.NewWriter(w, 0)
	return capture.NewSynthesizer(seed).WriteTrace(tr, pw)
}

// FilterCapture reconstructs a request trace from a pcap stream — the
// paper's tcpdump→common-log-format filter (§2.1).
func FilterCapture(r io.Reader, name string) (*Trace, error) {
	return httpstream.NewFilter().Run(r, name)
}

// AnalyzeTrace characterizes a validated trace the way §2.2 of the paper
// characterizes its workloads: type mix, popularity concentration, size
// distribution and temporal locality (the data behind Figs. 1, 2, 13, 14).
func AnalyzeTrace(tr *Trace) *analysis.Report { return analysis.Analyze(tr) }

// SharedL2Study runs the §5 open-problem-3 experiment: the trace's
// clients are split into the given number of populations, each behind
// its own L1 of (fraction×MaxNeeded)/populations, sharing one infinite
// second-level cache; the result quantifies cross-population commonality
// and the hit-rate gain over private second levels.
func SharedL2Study(tr *Trace, base *sim.Exp1Result, populations int, fraction float64, seed uint64) *sim.Exp5Result {
	return sim.Experiment5(tr, base, populations, fraction, seed)
}

// NewExpiredFirst wraps a policy with Harvest-style expiry-aware removal
// (§5 open problem 4): expired documents are always removed first.
func NewExpiredFirst(inner Policy) Policy { return policy.NewExpiredFirst(inner) }

// ICP re-exports: the live proxy's sibling-cooperation protocol (the
// Harvest arrangement of the paper's reference [8]).
type (
	// ICPSibling describes one cooperating cache.
	ICPSibling = proxy.Sibling
	// ICPResponder answers ICP queries for a proxy store over UDP.
	ICPResponder = proxy.ICPResponder
)

// NewICPResponder starts answering ICP queries for store on addr
// (e.g. "127.0.0.1:3130"); Close it to release the socket.
func NewICPResponder(store ProxyObjectStore, addr string) (*ICPResponder, error) {
	return proxy.NewICPResponder(store, addr)
}

// Trace transformations (the operations §2's collection methodology
// implies: merging concurrent captures, client subsets, measurement
// windows).

// MergeTraces combines traces into one ordered by request time.
func MergeTraces(name string, traces ...*Trace) *Trace { return trace.Merge(name, traces...) }

// FilterTraceClients keeps only requests whose client passes keep.
func FilterTraceClients(t *Trace, keep func(client string) bool) *Trace {
	return trace.FilterClients(t, keep)
}

// WindowTrace keeps requests with day index in [fromDay, toDay].
func WindowTrace(t *Trace, fromDay, toDay int) *Trace { return trace.Window(t, fromDay, toDay) }

// RebaseTrace shifts a trace to start at newStart's midnight.
func RebaseTrace(t *Trace, newStart int64) *Trace { return trace.Rebase(t, newStart) }

// LatencyStudy runs the Experiment 6 extension: the paper's third
// criterion (user-perceived latency) priced under a synthetic network
// model (nil = 1995-era defaults), reporting each policy's transfer time
// avoided.
func LatencyStudy(tr *Trace, base *sim.Exp1Result, specs []string, fraction float64, model *sim.NetModel, seed uint64) (*sim.Exp6Result, error) {
	return sim.Experiment6(tr, base, specs, fraction, model, seed)
}

// WorkloadFromJSON decodes a custom workload definition (see
// internal/workload's JSONConfig for the schema; cmd/tracegen -config
// accepts the same format).
func WorkloadFromJSON(r io.Reader) (WorkloadConfig, error) { return workload.FromJSON(r) }

// GenerateCustom synthesizes and validates a custom workload.
func GenerateCustom(cfg WorkloadConfig) (*Trace, *trace.ValidateStats, error) {
	return workload.GenerateValidated(cfg)
}
