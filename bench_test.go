package webcache

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each benchmark regenerates its
// table or figure at a reduced workload scale and reports the headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's results alongside the usual ns/op. Full-scale
// reproductions (the numbers recorded in EXPERIMENTS.md) run through
// cmd/websim with -scale 1.0.

import (
	"fmt"
	"sync"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/stats"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// benchScale keeps every benchmark laptop-fast while preserving each
// workload's per-request statistics.
const benchScale = 0.10

var (
	benchTraces   = map[string]*trace.Trace{}
	benchBases    = map[string]*sim.Exp1Result{}
	benchTracesMu sync.Mutex
)

// benchTrace returns (and caches) a validated workload trace and its
// Experiment 1 baseline at benchScale.
func benchTrace(b *testing.B, name string) (*trace.Trace, *sim.Exp1Result) {
	b.Helper()
	benchTracesMu.Lock()
	defer benchTracesMu.Unlock()
	if tr, ok := benchTraces[name]; ok {
		return tr, benchBases[name]
	}
	cfg, err := workload.ByName(name, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Scale = benchScale
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := sim.Experiment1(tr, 7)
	benchTraces[name] = tr
	benchBases[name] = base
	return tr, base
}

// BenchmarkTable1Keys measures the removal-order comparator across all
// Table 1 keys — the inner loop of every sorted policy.
func BenchmarkTable1Keys(b *testing.B) {
	less := policy.Less(policy.TableOneKeys, 0)
	x := policy.NewEntry("http://s/x.gif", 1234, trace.Graphics, 100, 1)
	y := policy.NewEntry("http://s/y.gif", 1234, trace.Graphics, 100, 2)
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		if less(x, y) {
			n++
		}
	}
	if n == 0 {
		b.Fatal("comparator never ordered x first")
	}
}

// BenchmarkTable2Example replays the paper's worked example (Table 2)
// across the five key combinations it tabulates.
func BenchmarkTable2Example(b *testing.B) {
	combos := [][]policy.Key{
		{policy.KeySize, policy.KeyATime},
		{policy.KeyLog2Size, policy.KeyATime},
		{policy.KeyETime},
		{policy.KeyATime},
		{policy.KeyNRef, policy.KeyETime},
	}
	docs := map[string]int64{"A": 1946, "B": 1229, "C": 9216, "D": 15360, "E": 8192, "F": 307, "G": 1946, "H": 5325}
	seq := []struct {
		t int64
		u string
	}{{1, "A"}, {2, "B"}, {3, "C"}, {4, "B"}, {5, "B"}, {6, "A"}, {7, "D"}, {8, "E"}, {9, "C"}, {10, "D"}, {11, "F"}, {12, "G"}, {13, "A"}, {14, "D"}, {15, "H"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, keys := range combos {
			p := policy.NewSorted(keys, 0)
			entries := map[string]*policy.Entry{}
			for _, s := range seq {
				if e, ok := entries[s.u]; ok {
					e.ATime = s.t
					e.NRef++
					p.Touch(e)
					continue
				}
				e := policy.NewEntry(s.u, docs[s.u], trace.Unknown, s.t, uint64(len(entries)+1))
				entries[s.u] = e
				p.Add(e)
			}
			if v := p.Victim(1536); v == nil {
				b.Fatal("no victim")
			}
		}
	}
}

// BenchmarkTable3Policies measures victim selection across the
// literature policies of Table 3 on a populated cache.
func BenchmarkTable3Policies(b *testing.B) {
	mk := map[string]func() policy.Policy{
		"FIFO":          func() policy.Policy { return policy.NewFIFO() },
		"LRU":           func() policy.Policy { return policy.NewLRU() },
		"LFU":           func() policy.Policy { return policy.NewLFU() },
		"LRU-MIN":       func() policy.Policy { return policy.NewLRUMin() },
		"Hyper-G":       func() policy.Policy { return policy.NewHyperG() },
		"Pitkow-Recker": func() policy.Policy { return policy.NewPitkowRecker(0) },
	}
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			p := f()
			for i := 0; i < 10000; i++ {
				p.Add(policy.NewEntry(fmt.Sprintf("u%d", i), int64(1+i%50000), trace.Text, int64(i), uint64(i)*2654435761))
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := p.Victim(4096)
				if v == nil {
					b.Fatal("no victim")
				}
				p.Remove(v)
				v.SetHeapIndex(-1)
				p.Add(v)
			}
		})
	}
}

// BenchmarkTable4FileTypes regenerates the Table 4 file-type mix for
// each workload and reports the dominant shares.
func BenchmarkTable4FileTypes(b *testing.B) {
	for _, name := range workload.Names {
		b.Run(name, func(b *testing.B) {
			tr, _ := benchTrace(b, name)
			var graphicsRefs, audioBytes, totalBytes float64
			for i := 0; i < b.N; i++ {
				var reqs [trace.NumDocTypes]int64
				var bytes [trace.NumDocTypes]int64
				var tb int64
				for j := range tr.Requests {
					r := &tr.Requests[j]
					reqs[r.Type]++
					bytes[r.Type] += r.Size
					tb += r.Size
				}
				graphicsRefs = float64(reqs[trace.Graphics]) / float64(len(tr.Requests))
				audioBytes = float64(bytes[trace.Audio]) / float64(tb)
				totalBytes = float64(tb)
			}
			b.ReportMetric(100*graphicsRefs, "graphics-refs-%")
			b.ReportMetric(100*audioBytes, "audio-bytes-%")
			b.ReportMetric(totalBytes/1e6, "MB-transferred")
		})
	}
}

// BenchmarkFig1ServerZipf regenerates the Fig. 1 rank-frequency view of
// requests per server on BL and reports the fitted Zipf exponent.
func BenchmarkFig1ServerZipf(b *testing.B) {
	tr, _ := benchTrace(b, "BL")
	var fit stats.ZipfFit
	for i := 0; i < b.N; i++ {
		counts := map[string]int64{}
		for j := range tr.Requests {
			counts[hostOfURL(tr.Requests[j].URL)]++
		}
		fit = stats.FitZipf(stats.RankFrequency(counts))
	}
	b.ReportMetric(fit.Slope, "zipf-exponent")
	b.ReportMetric(float64(fit.N), "servers")
	b.ReportMetric(fit.R2, "r2")
}

// BenchmarkFig2URLBytes regenerates Fig. 2: bytes transferred per URL,
// rank ordered, reporting how few URLs cover half the bytes.
func BenchmarkFig2URLBytes(b *testing.B) {
	tr, _ := benchTrace(b, "BL")
	var urlsForHalf, totalURLs int
	for i := 0; i < b.N; i++ {
		counts := map[string]int64{}
		var total int64
		for j := range tr.Requests {
			counts[tr.Requests[j].URL] += tr.Requests[j].Size
			total += tr.Requests[j].Size
		}
		rf := stats.RankFrequency(counts)
		var cum int64
		urlsForHalf = len(rf)
		for k, p := range rf {
			cum += p.Count
			if cum >= total/2 {
				urlsForHalf = k + 1
				break
			}
		}
		totalURLs = len(rf)
	}
	b.ReportMetric(float64(urlsForHalf), "urls-for-50%-bytes")
	b.ReportMetric(float64(totalURLs), "unique-urls")
}

// BenchmarkFig3to7InfiniteCache regenerates Experiment 1 (Figs. 3-7 and
// the §4.1 MaxNeeded numbers) for all five workloads.
func BenchmarkFig3to7InfiniteCache(b *testing.B) {
	for _, name := range workload.Names {
		b.Run(name, func(b *testing.B) {
			tr, _ := benchTrace(b, name)
			var res *sim.Exp1Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = sim.Experiment1(tr, 7)
			}
			b.ReportMetric(100*res.MeanHR, "maxHR%")
			b.ReportMetric(100*res.MeanWHR, "maxWHR%")
			b.ReportMetric(float64(res.MaxNeeded)/1e6, "MaxNeeded-MB")
		})
	}
}

// BenchmarkFig8to12PrimaryKeys regenerates Experiment 2's primary-key
// comparison (Figs. 8-12): each Table 1 key at 10% of MaxNeeded,
// reporting the mean percent-of-infinite hit rate that the figures plot.
func BenchmarkFig8to12PrimaryKeys(b *testing.B) {
	for _, name := range workload.Names {
		for _, combo := range policy.PrimaryCombos() {
			b.Run(name+"/"+combo.Primary.String(), func(b *testing.B) {
				tr, base := benchTrace(b, name)
				capacity := base.MaxNeeded / 10
				var run *sim.PolicyRun
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run = sim.RunPolicy(tr, base, combo.New(tr.Start), capacity, 3, sim.RunOptions{})
				}
				b.ReportMetric(100*run.HRRatioMean, "HR/inf-%")
				b.ReportMetric(100*run.Final.HitRate(), "HR%")
			})
		}
	}
}

// BenchmarkExp2WeightedHR regenerates §4.4: the weighted-hit-rate view
// of Experiment 2, where SIZE loses its crown.
func BenchmarkExp2WeightedHR(b *testing.B) {
	for _, name := range []string{"BR", "BL"} {
		for _, spec := range []string{"SIZE", "NREF", "ATIME"} {
			b.Run(name+"/"+spec, func(b *testing.B) {
				tr, base := benchTrace(b, name)
				capacity := base.MaxNeeded / 10
				var run *sim.PolicyRun
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pol, err := policy.Parse(spec, tr.Start)
					if err != nil {
						b.Fatal(err)
					}
					run = sim.RunPolicy(tr, base, pol, capacity, 5, sim.RunOptions{})
				}
				b.ReportMetric(100*run.WHRRatioMean, "WHR/inf-%")
				b.ReportMetric(100*run.Final.WeightedHitRate(), "WHR%")
			})
		}
	}
}

// BenchmarkFig13SizeHistogram regenerates the Fig. 13 document-size
// histogram for BL and reports where the mass sits.
func BenchmarkFig13SizeHistogram(b *testing.B) {
	tr, _ := benchTrace(b, "BL")
	var under1k, under20k float64
	for i := 0; i < b.N; i++ {
		h, err := stats.NewHistogram(0, 20000, 40)
		if err != nil {
			b.Fatal(err)
		}
		seen := map[string]bool{}
		small, n := 0, 0
		for j := range tr.Requests {
			r := &tr.Requests[j]
			if seen[r.URL] {
				continue
			}
			seen[r.URL] = true
			h.Add(float64(r.Size))
			n++
			if r.Size < 1024 {
				small++
			}
		}
		under1k = float64(small) / float64(n)
		under20k = float64(h.N-h.Overflow) / float64(h.N)
	}
	b.ReportMetric(100*under1k, "docs-under-1KB-%")
	b.ReportMetric(100*under20k, "docs-under-20KB-%")
}

// BenchmarkFig14InterreferenceScatter regenerates Fig. 14: the size vs
// inter-reference-time scatter on BL, reporting the log-space center of
// mass the paper reads off the plot (~1 kB, ~4 hours).
func BenchmarkFig14InterreferenceScatter(b *testing.B) {
	tr, _ := benchTrace(b, "BL")
	var cx, cy float64
	for i := 0; i < b.N; i++ {
		last := map[string]int64{}
		var pts []stats.ScatterPoint
		for j := range tr.Requests {
			r := &tr.Requests[j]
			if prev, ok := last[r.URL]; ok && r.Time > prev {
				pts = append(pts, stats.ScatterPoint{X: float64(r.Size), Y: float64(r.Time - prev)})
			}
			last[r.URL] = r.Time
		}
		cx, cy = stats.CenterOfMass(pts)
	}
	b.ReportMetric(cx, "center-size-bytes")
	b.ReportMetric(cy/3600, "center-interref-hours")
}

// BenchmarkFig15SecondaryKeys regenerates the Fig. 15 secondary-key
// study on G, reporting the best secondary's WHR gain over random.
func BenchmarkFig15SecondaryKeys(b *testing.B) {
	tr, base := benchTrace(b, "G")
	var res *sim.Exp2SecondaryResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sim.Experiment2Secondary(tr, base, 0.10, 11)
	}
	best, bestPeak := 0.0, 0.0
	for _, sr := range res.Runs {
		if sr.WHRvsRandom > best {
			best = sr.WHRvsRandom
			bestPeak = sr.PeakWHRvsRandom
		}
	}
	b.ReportMetric(100*best, "best-secondary-WHR-vs-random-%")
	b.ReportMetric(100*bestPeak, "its-peak-%")
}

// BenchmarkFig16to18TwoLevel regenerates Experiment 3 (Figs. 16-18) on
// BR, C and G.
func BenchmarkFig16to18TwoLevel(b *testing.B) {
	for _, name := range []string{"BR", "C", "G"} {
		b.Run(name, func(b *testing.B) {
			tr, base := benchTrace(b, name)
			var res *sim.Exp3Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = sim.Experiment3(tr, base, 0.10, 13)
			}
			b.ReportMetric(100*res.MeanL2HR, "L2-HR%")
			b.ReportMetric(100*res.MeanL2WHR, "L2-WHR%")
		})
	}
}

// BenchmarkFig19to20Partitioned regenerates Experiment 4 (Figs. 19-20)
// on BR across the three partition splits. Note that at benchScale the
// smaller audio partitions cannot hold even one ~1.8 MB audio file, so
// their WHR metric reads zero — the paper-comparable numbers are the
// full-scale ones in EXPERIMENTS.md (cmd/websim -exp 4 -scale 1.0).
func BenchmarkFig19to20Partitioned(b *testing.B) {
	tr, base := benchTrace(b, "BR")
	var res *sim.Exp4Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sim.Experiment4(tr, base, 0.10, 17)
	}
	for _, p := range res.Partitions {
		b.ReportMetric(100*p.AggAudioWHR, fmt.Sprintf("audio-WHR%%-at-%.0f%%", 100*p.AudioShare))
	}
	b.ReportMetric(100*res.Partitions[1].AggNonAudioWHR, "nonaudio-WHR%-at-50%")
}

// hostOfURL extracts the server name from an absolute URL (Fig. 1).
func hostOfURL(url string) string {
	const sep = "://"
	i := 0
	for ; i+len(sep) <= len(url); i++ {
		if url[i:i+len(sep)] == sep {
			i += len(sep)
			break
		}
	}
	j := i
	for j < len(url) && url[j] != '/' {
		j++
	}
	return url[i:j]
}
