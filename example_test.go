package webcache_test

import (
	"bytes"
	"fmt"

	"webcache"
)

// The quick start: replay a workload through a SIZE-policy cache and
// compare against the infinite-cache bound.
func Example() {
	tr, _, err := webcache.GenerateWorkload("BL", 42, 0.02)
	if err != nil {
		panic(err)
	}
	bound := webcache.MaxHitRates(tr, 1)

	pol, err := webcache.NewPolicy("SIZE", tr.Start)
	if err != nil {
		panic(err)
	}
	cache := webcache.NewCache(webcache.CacheConfig{
		Capacity: bound.MaxNeeded / 10,
		Policy:   pol,
		Seed:     7,
	})
	for i := range tr.Requests {
		cache.Access(&tr.Requests[i])
	}
	st := cache.Stats()
	fmt.Printf("requests=%d hits>0=%v capacity-respected=%v\n",
		st.Requests, st.Hits > 0, st.Used <= bound.MaxNeeded/10)
	// Output:
	// requests=1044 hits>0=true capacity-respected=true
}

// NewPolicy accepts the literature policy names of Table 3 and raw key
// combinations from Table 1.
func ExampleNewPolicy() {
	for _, spec := range []string{"LRU", "LRU-MIN", "SIZE/NREF"} {
		p, err := webcache.NewPolicy(spec, 0)
		if err != nil {
			panic(err)
		}
		fmt.Println(p.Name())
	}
	// Output:
	// LRU
	// LRU-MIN
	// SIZE/NREF
}

// AllCombos enumerates the paper's full 36-policy experiment design.
func ExampleAllCombos() {
	combos := webcache.AllCombos()
	fmt.Println(len(combos), combos[0].String())
	// Output:
	// 36 SIZE/LOG2SIZE
}

// The cache counts a hit only when both URL and size match (§1.1); a
// size change invalidates the cached copy.
func ExampleCache_Access() {
	cache := webcache.NewCache(webcache.CacheConfig{Seed: 1}) // infinite
	req := webcache.Request{Time: 1, URL: "http://s/x.html", Status: 200, Size: 100, Type: webcache.Text}

	fmt.Println(cache.Access(&req)) // first access: miss
	req.Time = 2
	fmt.Println(cache.Access(&req)) // same URL+size: hit
	req.Time, req.Size = 3, 150
	fmt.Println(cache.Access(&req)) // document changed: miss
	// Output:
	// false
	// true
	// false
}

// ValidateTrace applies the paper's §1.1 rules: non-200 lines are
// dropped and zero-size re-references inherit the last known size.
func ExampleValidateTrace() {
	raw := &webcache.Trace{Requests: []webcache.Request{
		{Time: 1, URL: "http://s/a.html", Status: 200, Size: 500},
		{Time: 2, URL: "http://s/a.html", Status: 304, Size: 0},
		{Time: 3, URL: "http://s/a.html", Status: 200, Size: 0},
	}}
	valid, stats := webcache.ValidateTrace(raw)
	fmt.Println(len(valid.Requests), stats.DroppedStatus, valid.Requests[1].Size)
	// Output:
	// 2 1 500
}

// The capture pipeline reproduces §2.1: a trace rendered as packets and
// filtered back into a log is byte-identical in the fields that matter.
func ExampleFilterCapture() {
	tr, _, err := webcache.GenerateWorkload("C", 7, 0.002)
	if err != nil {
		panic(err)
	}
	var pcap bytes.Buffer
	if err := webcache.SynthesizeCapture(tr, &pcap, 3); err != nil {
		panic(err)
	}
	got, err := webcache.FilterCapture(&pcap, "reconstructed")
	if err != nil {
		panic(err)
	}
	same := len(got.Requests) == len(tr.Requests)
	for i := range got.Requests {
		if got.Requests[i].URL != tr.Requests[i].URL || got.Requests[i].Size != tr.Requests[i].Size {
			same = false
		}
	}
	fmt.Println(same)
	// Output:
	// true
}

// AnalyzeTrace produces the §2.2-style characterization.
func ExampleAnalyzeTrace() {
	tr, _, err := webcache.GenerateWorkload("G", 5, 0.02)
	if err != nil {
		panic(err)
	}
	rep := webcache.AnalyzeTrace(tr)
	fmt.Println(rep.Requests == len(tr.Requests), rep.UniqueURLs > 0, rep.ZipfLike())
	// Output:
	// true true true
}
