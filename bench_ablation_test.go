package webcache

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// §1.3 removal-timing question (on-demand vs periodic sweep with a
// comfort level), the §5 extension keys, the post-paper GD-Size
// baseline, and raw cache-access throughput per policy.

import (
	"fmt"
	"testing"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// BenchmarkAblationRemovalTiming compares pure on-demand removal with
// the Pitkow/Recker end-of-day periodic sweep at several comfort
// levels. The paper argues (§1.3) that periodic removal can only lower
// hit rates because documents leave earlier than required; the reported
// metrics quantify that.
func BenchmarkAblationRemovalTiming(b *testing.B) {
	cases := []struct {
		name  string
		sweep float64
	}{
		{"on-demand", 0},
		{"sweep-90", 0.90},
		{"sweep-75", 0.75},
		{"sweep-50", 0.50},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tr, base := benchTrace(b, "U")
			capacity := base.MaxNeeded / 10
			var run *sim.PolicyRun
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol := policy.NewPitkowRecker(tr.Start)
				run = sim.RunPolicy(tr, base, pol, capacity, 19, sim.RunOptions{Sweep: tc.sweep})
			}
			b.ReportMetric(100*run.Final.HitRate(), "HR%")
			b.ReportMetric(float64(run.Final.Evictions), "evictions")
		})
	}
}

// BenchmarkAblationExtensionKeys runs the paper's §5 open-problem keys
// (document type, refetch latency) and the post-paper GD-Size baselines
// next to SIZE on the BL workload.
func BenchmarkAblationExtensionKeys(b *testing.B) {
	latency := func(url string, size int64) float64 {
		// A simple 1995 cost model: per-server RTT plus 2 KB/s transfer.
		rtt := 0.05
		if len(url) > 9 && url[7] == 's' { // remote servers hash by name
			rtt = 0.05 + float64(len(url)%7)*0.08
		}
		return rtt + float64(size)/2048
	}
	for _, spec := range []string{"SIZE", "TYPE", "LATENCY", "TYPE/SIZE", "GD-Size(1)", "GD-Size(SIZE)"} {
		b.Run(spec, func(b *testing.B) {
			tr, base := benchTrace(b, "BL")
			capacity := base.MaxNeeded / 10
			var run *sim.PolicyRun
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol, err := policy.Parse(spec, tr.Start)
				if err != nil {
					b.Fatal(err)
				}
				run = sim.RunPolicy(tr, base, pol, capacity, 23, sim.RunOptions{LatencyOf: latency})
			}
			b.ReportMetric(100*run.Final.HitRate(), "HR%")
			b.ReportMetric(100*run.Final.WeightedHitRate(), "WHR%")
		})
	}
}

// BenchmarkCacheAccessThroughput measures raw simulator throughput —
// accesses per second through a finite cache — for representative
// policies, the number that bounds full-scale experiment run time.
func BenchmarkCacheAccessThroughput(b *testing.B) {
	for _, spec := range []string{"SIZE", "LRU", "LRU-MIN", "Hyper-G", "GD-Size(1)"} {
		b.Run(spec, func(b *testing.B) {
			tr, base := benchTrace(b, "BL")
			pol, err := policy.Parse(spec, tr.Start)
			if err != nil {
				b.Fatal(err)
			}
			cache := core.New(core.Config{Capacity: base.MaxNeeded / 10, Policy: pol, Seed: 29})
			reqs := tr.Requests
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache.Access(&reqs[i%len(reqs)])
			}
		})
	}
}

// BenchmarkValidate measures the §1.1 trace validation pass.
func BenchmarkValidate(b *testing.B) {
	tr, _ := benchTrace(b, "U")
	// Rebuild a raw-like trace by reusing the validated one; sizes and
	// statuses are already normalized, so this measures the pass itself.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := trace.Validate(tr)
		if stats.Kept == 0 {
			b.Fatal("validation dropped everything")
		}
	}
}

// BenchmarkSharedL2 runs the §5 open-problem-3 study (Experiment 5): the
// BL client population split behind a shared vs private second level.
func BenchmarkSharedL2(b *testing.B) {
	for _, pops := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("populations-%d", pops), func(b *testing.B) {
			tr, base := benchTrace(b, "BL")
			var res *sim.Exp5Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = sim.Experiment5(tr, base, pops, 0.10, 31)
			}
			b.ReportMetric(100*res.SharingGainHR, "sharing-gain-HR%")
			b.ReportMetric(100*res.Shared.CrossHitFraction, "cross-pop-hits%")
		})
	}
}

// BenchmarkAblationExpiry compares plain SIZE removal against the
// Harvest-style expired-first wrapper (§5 open problem 4) under a
// synthetic TTL model (documents expire a day after entering).
func BenchmarkAblationExpiry(b *testing.B) {
	for _, wrapped := range []bool{false, true} {
		name := "SIZE"
		if wrapped {
			name = "ExpiredFirst(SIZE)"
		}
		b.Run(name, func(b *testing.B) {
			tr, base := benchTrace(b, "C")
			var run *sim.PolicyRun
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var pol policy.Policy = policy.NewSorted([]policy.Key{policy.KeySize}, tr.Start)
				if wrapped {
					pol = policy.NewExpiredFirst(pol)
				}
				cache := core.New(core.Config{
					Capacity: base.MaxNeeded / 10,
					Policy:   pol,
					Seed:     37,
					ExpiresOf: func(url string, size, now int64) int64 {
						return now + 86400
					},
				})
				rates := sim.Replay(tr, cache, nil)
				run = &sim.PolicyRun{Rates: rates, Final: cache.Stats()}
			}
			b.ReportMetric(100*run.Final.HitRate(), "HR%")
			b.ReportMetric(100*run.Final.WeightedHitRate(), "WHR%")
		})
	}
}

// BenchmarkExp6LatencySaved regenerates the Experiment 6 extension: the
// paper's third criterion (user-perceived latency) priced under a
// 1995-era network model.
func BenchmarkExp6LatencySaved(b *testing.B) {
	for _, spec := range []string{"SIZE", "LATENCY", "GD-Latency", "LRU"} {
		b.Run(spec, func(b *testing.B) {
			tr, base := benchTrace(b, "BL")
			var res *sim.Exp6Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sim.Experiment6(tr, base, []string{spec}, 0.10, nil, 41)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Runs[0].SavedFraction, "latency-saved-%")
			b.ReportMetric(100*res.Runs[0].HR, "HR%")
		})
	}
}
