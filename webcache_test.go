package webcache

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the doc-comment quick start end to end.
func TestQuickstartFlow(t *testing.T) {
	tr, vstats, err := GenerateWorkload("BL", 42, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if vstats.Kept == 0 || len(tr.Requests) == 0 {
		t.Fatal("empty workload")
	}
	pol, err := NewPolicy("SIZE", tr.Start)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(CacheConfig{Capacity: 4 << 20, Policy: pol, Seed: 1})
	for i := range tr.Requests {
		cache.Access(&tr.Requests[i])
	}
	st := cache.Stats()
	if st.Requests != int64(len(tr.Requests)) {
		t.Fatalf("processed %d of %d", st.Requests, len(tr.Requests))
	}
	if st.HitRate() <= 0 {
		t.Fatal("no hits at all")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 5 || names[0] != "U" || names[4] != "BL" {
		t.Fatalf("names %v", names)
	}
	if _, _, err := GenerateWorkload("nope", 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPolicyFacade(t *testing.T) {
	if len(AllCombos()) != 36 || len(PrimaryCombos()) != 6 {
		t.Fatal("combo counts wrong")
	}
	if _, err := NewPolicy("garbage policy", 0); err == nil {
		t.Fatal("bad policy spec accepted")
	}
	p := NewSortedPolicy([]Key{KeySize, KeyNRef}, 0)
	if p.Name() != "SIZE/NREF" {
		t.Fatalf("policy name %q", p.Name())
	}
}

func TestExperimentFacade(t *testing.T) {
	tr, _, err := GenerateWorkload("C", 7, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	base := MaxHitRates(tr, 1)
	if base.MaxNeeded <= 0 {
		t.Fatal("MaxNeeded not positive")
	}
	e2 := ComparePolicies(tr, base, PrimaryCombos(), 0.10, 2)
	if len(e2.Runs) != 6 {
		t.Fatalf("%d runs", len(e2.Runs))
	}
	e3 := TwoLevelStudy(tr, base, 0.10, 3)
	if e3.MeanL2WHR < 0 {
		t.Fatal("bad L2 WHR")
	}
	e4 := PartitionStudy(tr, base, 0.10, 4)
	if len(e4.Partitions) != 3 {
		t.Fatal("bad partition study")
	}
}

func TestTraceCLFFacade(t *testing.T) {
	tr, _, err := GenerateWorkload("G", 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCLF(&buf, tr, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCLF(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("round trip %d != %d", len(got.Requests), len(tr.Requests))
	}
	if _, err := ReadTraceCLF(strings.NewReader("garbage\nlines\n"), "bad"); err == nil {
		t.Fatal("all-garbage log accepted")
	}
}

func TestValidateTraceFacade(t *testing.T) {
	raw := &Trace{Requests: []Request{
		{URL: "http://a/x.html", Status: 500, Size: 10, Time: 1},
		{URL: "http://a/y.html", Status: 200, Size: 10, Time: 2},
	}}
	valid, stats := ValidateTrace(raw)
	if len(valid.Requests) != 1 || stats.DroppedStatus != 1 {
		t.Fatalf("validate: %d kept, %+v", len(valid.Requests), stats)
	}
}

func TestCapturePipelineFacade(t *testing.T) {
	tr, _, err := GenerateWorkload("BR", 5, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SynthesizeCapture(tr, &buf, 9); err != nil {
		t.Fatal(err)
	}
	got, err := FilterCapture(&buf, "pipe")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("pipeline %d != %d requests", len(got.Requests), len(tr.Requests))
	}
}

func TestHierarchyFacade(t *testing.T) {
	pol, _ := NewPolicy("SIZE", 0)
	tl := NewTwoLevel(
		CacheConfig{Capacity: 1000, Policy: pol, Seed: 1},
		CacheConfig{Seed: 2},
	)
	r := &Request{Time: 1, URL: "http://a/x.gif", Status: 200, Size: 100, Type: Graphics}
	if h1, h2 := tl.Access(r); h1 || h2 {
		t.Fatal("cold hierarchy hit")
	}
	polA, _ := NewPolicy("SIZE", 0)
	polB, _ := NewPolicy("SIZE", 0)
	part := NewAudioPartitioned(
		CacheConfig{Capacity: 1000, Policy: polA, Seed: 3},
		CacheConfig{Capacity: 1000, Policy: polB, Seed: 4},
	)
	au := &Request{Time: 1, URL: "http://a/x.au", Status: 200, Size: 100, Type: Audio}
	part.Access(au)
	if part.Partition(0).Len() != 1 {
		t.Fatal("audio not routed to partition 0")
	}
}

func TestProxyFacade(t *testing.T) {
	store := NewProxyStore(1<<20, nil)
	srv := NewProxy(store)
	if srv.Store() != store {
		t.Fatal("proxy store accessor broken")
	}
}

func TestTraceTransformFacade(t *testing.T) {
	a := &Trace{Name: "a", Start: 0, Requests: []Request{
		{Time: 100, Client: "c1", URL: "http://s/x.html", Status: 200, Size: 10},
		{Time: 86400 + 100, Client: "c2", URL: "http://s/y.html", Status: 200, Size: 10},
	}}
	b := &Trace{Name: "b", Start: 0, Requests: []Request{
		{Time: 50, Client: "c3", URL: "http://s/z.html", Status: 200, Size: 10},
	}}
	m := MergeTraces("ab", a, b)
	if len(m.Requests) != 3 || m.Requests[0].Client != "c3" {
		t.Fatalf("merge: %+v", m.Requests)
	}
	if f := FilterTraceClients(m, func(c string) bool { return c == "c1" }); len(f.Requests) != 1 {
		t.Fatalf("filter kept %d", len(f.Requests))
	}
	if w := WindowTrace(m, 1, 1); len(w.Requests) != 1 {
		t.Fatalf("window kept %d", len(w.Requests))
	}
	if r := RebaseTrace(a, 86400*10); r.Requests[0].Time != 86400*10+100 {
		t.Fatalf("rebase time %d", r.Requests[0].Time)
	}
}

func TestLatencyStudyFacade(t *testing.T) {
	tr, _, err := GenerateWorkload("C", 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	base := MaxHitRates(tr, 1)
	res, err := LatencyStudy(tr, base, []string{"SIZE", "GD-Latency"}, 0.10, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 || res.Runs[0].SavedFraction <= 0 {
		t.Fatalf("latency study %+v", res.Runs)
	}
}
