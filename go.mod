module webcache

go 1.22
