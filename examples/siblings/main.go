// Siblings demonstrates the Harvest-style cooperative arrangement of the
// paper's reference [8]: two peer caching proxies that ask each other
// over ICP (a tiny UDP protocol) before going to the origin server. A
// document fetched by one lab's proxy is then served to the other lab
// from the sibling, not from the origin.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"webcache"
)

func main() {
	var originFetches int
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originFetches++
		w.Header().Set("Last-Modified", "Mon, 17 Sep 1995 14:00:00 GMT")
		io.WriteString(w, strings.Repeat(r.URL.Path[1:], 200))
	}))
	defer origin.Close()

	// Two peer proxies, one per "lab", each with its own ICP responder.
	mkProxy := func() (*webcache.ProxyServer, *httptest.Server, *webcache.ICPResponder) {
		pol, err := webcache.NewPolicy("SIZE", 0)
		if err != nil {
			log.Fatal(err)
		}
		store := webcache.NewProxyStore(4<<20, pol)
		srv := webcache.NewProxy(store)
		ts := httptest.NewServer(srv)
		icp, err := webcache.NewICPResponder(store, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		return srv, ts, icp
	}
	labA, labATS, labAICP := mkProxy()
	labB, labBTS, labBICP := mkProxy()
	defer labATS.Close()
	defer labBTS.Close()
	defer labAICP.Close()
	defer labBICP.Close()

	// Peer them.
	labA.Siblings = []webcache.ICPSibling{{ICPAddr: labBICP.Addr(), Proxy: labBTS.URL}}
	labB.Siblings = []webcache.ICPSibling{{ICPAddr: labAICP.Addr(), Proxy: labATS.URL}}
	labA.ICP.Timeout = 200 * time.Millisecond
	labB.ICP.Timeout = 200 * time.Millisecond

	client := func(proxyURL string) *http.Client {
		pu, err := url.Parse(proxyURL)
		if err != nil {
			log.Fatal(err)
		}
		return &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(pu)}}
	}
	clientA := client(labATS.URL)
	clientB := client(labBTS.URL)

	get := func(c *http.Client, who, path string) {
		resp, err := c.Get(origin.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s GET %-12s %-5s  %5d bytes (origin fetches so far: %d)\n",
			who, path, resp.Header.Get("X-Cache"), len(body), originFetches)
	}

	// Lab A's users read the course notes first.
	get(clientA, "lab A", "/notes.html")
	get(clientA, "lab A", "/slides.ps")
	// Lab B's users request the same documents: its proxy misses, asks
	// its sibling over ICP, and fetches from lab A — no origin traffic.
	get(clientB, "lab B", "/notes.html")
	get(clientB, "lab B", "/slides.ps")
	// Now both labs have local copies.
	get(clientB, "lab B", "/notes.html")
	get(clientA, "lab A", "/slides.ps")

	fmt.Println()
	sa, sb := labA.Stats(), labB.Stats()
	qa, ha := labAICP.Stats()
	fmt.Printf("lab A proxy: %d requests, %d local hits; answered %d of %d ICP queries with HIT\n",
		sa.Requests, sa.Hits, ha, qa)
	fmt.Printf("lab B proxy: %d requests, %d local hits, %d served via the sibling\n",
		sb.Requests, sb.Hits, sb.SiblingHits)
	fmt.Printf("origin server: %d fetches for %d client requests\n",
		originFetches, sa.Requests+sb.Requests)
}
