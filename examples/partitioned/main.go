// Partitioned reproduces Experiment 4 on the Backbone-Remote workload:
// should a cache whose byte traffic is dominated by audio (88% in the
// paper) be split into audio and non-audio partitions? The example
// sweeps the audio partition over 1/4, 1/2 and 3/4 of a 10%-of-MaxNeeded
// cache and prints each class's weighted hit rate over all requests,
// exactly the measure of Figs. 19-20.
package main

import (
	"fmt"
	"log"

	"webcache"
)

func main() {
	tr, _, err := webcache.GenerateWorkload("BR", 42, 0.50)
	if err != nil {
		log.Fatal(err)
	}
	bound := webcache.MaxHitRates(tr, 1)
	total := bound.MaxNeeded / 10
	fmt.Printf("Backbone-Remote: %d requests, %.2f GB transferred, MaxNeeded %.0f MB\n",
		len(tr.Requests), float64(tr.TotalBytes())/1e9, float64(bound.MaxNeeded)/1e6)
	fmt.Printf("partitioned cache budget: %.1f MB\n\n", float64(total)/1e6)

	res := webcache.PartitionStudy(tr, bound, 0.10, 3)
	fmt.Printf("%-12s %12s %15s %11s\n", "audio share", "audio WHR%", "non-audio WHR%", "total WHR%")
	bestShare, bestWHR := 0.0, -1.0
	for _, p := range res.Partitions {
		fmt.Printf("%-12.0f %12.2f %15.2f %11.2f\n",
			100*p.AudioShare, 100*p.AggAudioWHR, 100*p.AggNonAudioWHR, 100*p.AggTotalWHR)
		if p.AggTotalWHR > bestWHR {
			bestWHR, bestShare = p.AggTotalWHR, p.AudioShare
		}
	}
	fmt.Printf("\ninfinite-cache reference: audio WHR %.2f%%, non-audio WHR %.2f%%\n",
		100*res.InfiniteAudioWHR.Mean(), 100*res.InfiniteNonAudioWHR.Mean())
	fmt.Printf("best overall split measured here: %.0f%% audio\n", 100*bestShare)
	fmt.Println("(the paper concludes an equal split maximizes overall WHR; at reduced")
	fmt.Println("scale each audio file is a large fraction of its partition, which")
	fmt.Println("shifts the optimum — run at -scale 1.0 via cmd/websim for the full view)")
}
