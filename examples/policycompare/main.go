// Policycompare reproduces the spirit of the paper's Experiment 2 on the
// Classroom workload: every sorting key of Table 1 (plus the literature
// policies of Table 3 and the post-paper GD-Size baseline) competes at a
// cache of 10% of MaxNeeded, and the ranking is printed with the paper's
// ratio-to-infinite measure.
package main

import (
	"fmt"
	"log"
	"sort"

	"webcache"
)

func main() {
	tr, _, err := webcache.GenerateWorkload("C", 42, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	bound := webcache.MaxHitRates(tr, 1)
	capacity := bound.MaxNeeded / 10
	fmt.Printf("Classroom workload: %d requests, MaxNeeded %.1f MB, cache %.1f MB\n\n",
		len(tr.Requests), float64(bound.MaxNeeded)/1e6, float64(capacity)/1e6)

	specs := []string{
		"SIZE", "LOG2SIZE", "ETIME", "ATIME", "DAY(ATIME)", "NREF",
		"FIFO", "LRU", "LFU", "LRU-MIN", "Hyper-G", "Pitkow/Recker",
		"GD-Size(1)",
	}
	type row struct {
		name    string
		hr, whr float64
	}
	var rows []row
	for _, spec := range specs {
		pol, err := webcache.NewPolicy(spec, tr.Start)
		if err != nil {
			log.Fatal(err)
		}
		cache := webcache.NewCache(webcache.CacheConfig{Capacity: capacity, Policy: pol, Seed: 9})
		for i := range tr.Requests {
			cache.Access(&tr.Requests[i])
		}
		st := cache.Stats()
		rows = append(rows, row{name: spec, hr: st.HitRate(), whr: st.WeightedHitRate()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].hr > rows[j].hr })

	fmt.Printf("%-15s %8s %8s %10s\n", "policy", "HR%", "WHR%", "% of max HR")
	for _, r := range rows {
		fmt.Printf("%-15s %8.1f %8.1f %10.0f\n",
			r.name, 100*r.hr, 100*r.whr, 100*r.hr/bound.AggHR)
	}
	fmt.Println("\nThe paper's ranking — SIZE first, NREF second, ATIME (LRU) third,")
	fmt.Println("ETIME (FIFO) last — should be visible above; LOG2SIZE and LRU-MIN")
	fmt.Println("track SIZE closely.")
}
