// Liveproxy runs the deployable counterpart of the simulator: an origin
// server, a parent caching proxy, and a child caching proxy chained to
// it (the two-level arrangement of Experiment 3), all in-process. A
// client then replays a request mix through the child and the example
// prints where each level answered from.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"webcache"
)

func main() {
	// Origin: a handful of documents of very different sizes.
	docs := map[string]string{
		"/index.html": strings.Repeat("h", 2_000),
		"/logo.gif":   strings.Repeat("g", 800),
		"/paper.ps":   strings.Repeat("p", 120_000),
		"/song.au":    strings.Repeat("a", 400_000),
	}
	var originHits int
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits++
		body, ok := docs[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Last-Modified", "Mon, 17 Sep 1995 14:00:00 GMT")
		io.WriteString(w, body)
	}))
	defer origin.Close()

	// Parent proxy: large, SIZE policy (the paper's Experiment 3 keeps
	// big documents alive at the second level).
	parentPol, err := webcache.NewPolicy("SIZE", 0)
	if err != nil {
		log.Fatal(err)
	}
	parent := webcache.NewProxy(webcache.NewProxyStore(8<<20, parentPol))
	parentTS := httptest.NewServer(parent)
	defer parentTS.Close()

	// Child proxy: small, also SIZE, chained to the parent.
	childPol, err := webcache.NewPolicy("SIZE", 0)
	if err != nil {
		log.Fatal(err)
	}
	child := webcache.NewProxy(webcache.NewProxyStore(150_000, childPol))
	parentURL, err := url.Parse(parentTS.URL)
	if err != nil {
		log.Fatal(err)
	}
	child.Transport = &http.Transport{Proxy: http.ProxyURL(parentURL)}
	childTS := httptest.NewServer(child)
	defer childTS.Close()

	childURL, err := url.Parse(childTS.URL)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(childURL)}}

	// A request mix: small documents repeat often, big ones rarely.
	mix := []string{
		"/index.html", "/logo.gif", "/index.html", "/paper.ps",
		"/logo.gif", "/index.html", "/song.au", "/logo.gif",
		"/index.html", "/paper.ps", "/song.au", "/index.html",
	}
	fmt.Printf("%-14s %-12s %s\n", "document", "child says", "bytes")
	for _, path := range mix {
		resp, err := client.Get(origin.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12s %d\n", path, resp.Header.Get("X-Cache"), len(body))
	}

	cs, ps := child.Stats(), parent.Stats()
	fmt.Printf("\nchild:  %d requests, %d hits (HR %.0f%%), store holds %d docs\n",
		cs.Requests, cs.Hits, 100*float64(cs.Hits)/float64(cs.Requests), child.Store().Len())
	fmt.Printf("parent: %d requests, %d hits — the large documents the child's\n", ps.Requests, ps.Hits)
	fmt.Printf("        SIZE policy evicted were answered here, not by the origin\n")
	fmt.Printf("origin: %d fetches for %d client requests\n", originHits, len(mix))
}
