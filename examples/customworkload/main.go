// Customworkload shows how to define a workload in JSON instead of
// using the paper's five built-ins: a small research-lab population with
// a mid-project crunch, run through Experiment 1 and a policy
// comparison. The same JSON works with cmd/tracegen -config.
package main

import (
	"fmt"
	"log"
	"strings"

	"webcache"
)

const labJSON = `{
  "name": "research-lab",
  "seed": 7,
  "days": 28,
  "requests": 40000,
  "totalBytes": 600000000,
  "types": [
    {"type": "Graphics", "refShare": 0.45, "byteShare": 0.30, "newDocProb": 0.35},
    {"type": "Text",     "refShare": 0.50, "byteShare": 0.35, "newDocProb": 0.45},
    {"type": "Video",    "refShare": 0.02, "byteShare": 0.30, "newDocProb": 0.70, "sizeSigma": 0.6, "recencyBias": 0.8},
    {"type": "CGI",      "refShare": 0.03, "byteShare": 0.05, "newDocProb": 0.80}
  ],
  "zipfS": 0.9,
  "servers": 400,
  "clients": 12,
  "domain": "lab.example",
  "weekendWeight": 0.2,
  "volumeSpans": [{"from": 14, "to": 20, "factor": 2.5}],
  "newDocSpans": [{"from": 14, "to": 20, "factor": 1.4}],
  "sizeChangeProb": 0.01,
  "noiseFrac": 0.04
}`

func main() {
	cfg, err := webcache.WorkloadFromJSON(strings.NewReader(labJSON))
	if err != nil {
		log.Fatal(err)
	}
	tr, vstats, err := webcache.GenerateCustom(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d valid requests (%d raw), %.1f MB over %d days\n",
		tr.Name, vstats.Kept, vstats.Input, float64(tr.TotalBytes())/1e6, tr.Days())

	bound := webcache.MaxHitRates(tr, 1)
	fmt.Printf("infinite cache: HR %.1f%%, MaxNeeded %.1f MB\n\n",
		100*bound.AggHR, float64(bound.MaxNeeded)/1e6)

	fmt.Printf("%-10s %8s %8s\n", "policy", "HR%", "WHR%")
	for _, spec := range []string{"SIZE", "LRU", "LFU"} {
		pol, err := webcache.NewPolicy(spec, tr.Start)
		if err != nil {
			log.Fatal(err)
		}
		cache := webcache.NewCache(webcache.CacheConfig{
			Capacity: bound.MaxNeeded / 10,
			Policy:   pol,
			Seed:     3,
		})
		for i := range tr.Requests {
			cache.Access(&tr.Requests[i])
		}
		st := cache.Stats()
		fmt.Printf("%-10s %8.1f %8.1f\n", spec, 100*st.HitRate(), 100*st.WeightedHitRate())
	}
	fmt.Println("\nthe paper's SIZE result holds on custom workloads too")
}
