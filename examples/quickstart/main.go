// Quickstart: generate a synthetic version of the paper's Backbone-Local
// workload, replay it through a finite cache under the SIZE removal
// policy (the paper's recommendation for hit rate), and print the
// resulting hit rates against the infinite-cache bound.
package main

import (
	"fmt"
	"log"

	"webcache"
)

func main() {
	// A 10%-scale Backbone-Local trace: ~5,400 valid requests.
	tr, vstats, err := webcache.GenerateWorkload("BL", 42, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d valid requests over %d days (%.1f MB)\n",
		tr.Name, len(tr.Requests), tr.Days(), float64(tr.TotalBytes())/1e6)
	fmt.Printf("size changes among re-references: %.2f%% (paper: 0.5%%-4.1%%)\n\n",
		100*vstats.SizeChangeFraction())

	// Experiment 1: what could any cache achieve?
	bound := webcache.MaxHitRates(tr, 1)
	fmt.Printf("infinite cache: HR %.1f%%  WHR %.1f%%  MaxNeeded %.1f MB\n\n",
		100*bound.AggHR, 100*bound.AggWHR, float64(bound.MaxNeeded)/1e6)

	// A cache only a tenth that size, removing the largest document
	// first.
	pol, err := webcache.NewPolicy("SIZE", tr.Start)
	if err != nil {
		log.Fatal(err)
	}
	cache := webcache.NewCache(webcache.CacheConfig{
		Capacity: bound.MaxNeeded / 10,
		Policy:   pol,
		Seed:     7,
	})
	for i := range tr.Requests {
		cache.Access(&tr.Requests[i])
	}
	st := cache.Stats()
	fmt.Printf("10%% cache, %s policy: HR %.1f%%  WHR %.1f%%  (%d evictions)\n",
		pol.Name(), 100*st.HitRate(), 100*st.WeightedHitRate(), st.Evictions)
	fmt.Printf("that is %.0f%% of the maximum possible hit rate\n",
		100*st.HitRate()/bound.AggHR)
}
