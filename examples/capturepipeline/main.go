// Capturepipeline demonstrates the paper's §2.1 collection procedure end
// to end, entirely in memory:
//
//  1. generate a synthetic Backbone-Local request stream,
//  2. render it as the Ethernet/IPv4/TCP packets a tcpdump monitor on
//     the department backbone would capture (out-of-order segments
//     included),
//  3. run the HTTP filter over the capture, reassembling TCP streams and
//     decoding transactions back into a common-log-format trace,
//  4. validate the reconstructed log (§1.1) and simulate a cache on it.
package main

import (
	"bytes"
	"fmt"
	"log"

	"webcache"
)

func main() {
	original, _, err := webcache.GenerateWorkload("BL", 42, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. generated %d requests (%d days of BL at 1%% scale)\n",
		len(original.Requests), original.Days())

	var pcap bytes.Buffer
	if err := webcache.SynthesizeCapture(original, &pcap, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. synthesized %.2f MB of packet capture\n", float64(pcap.Len())/1e6)

	reconstructed, err := webcache.FilterCapture(&pcap, "BL-reconstructed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. filter reconstructed %d transactions\n", len(reconstructed.Requests))

	matches := 0
	for i := range reconstructed.Requests {
		if i < len(original.Requests) &&
			reconstructed.Requests[i].URL == original.Requests[i].URL &&
			reconstructed.Requests[i].Size == original.Requests[i].Size {
			matches++
		}
	}
	fmt.Printf("   %d/%d match the original URL and size exactly\n",
		matches, len(original.Requests))

	valid, vstats := webcache.ValidateTrace(reconstructed)
	fmt.Printf("4. validation kept %d of %d lines (dropped %d non-200, %d zero-size)\n",
		vstats.Kept, vstats.Input, vstats.DroppedStatus, vstats.DroppedZeroSize)

	pol, err := webcache.NewPolicy("SIZE", valid.Start)
	if err != nil {
		log.Fatal(err)
	}
	cache := webcache.NewCache(webcache.CacheConfig{Capacity: 8 << 20, Policy: pol, Seed: 1})
	for i := range valid.Requests {
		cache.Access(&valid.Requests[i])
	}
	st := cache.Stats()
	fmt.Printf("   simulated 8 MiB SIZE cache on the reconstructed log: HR %.1f%%, WHR %.1f%%\n",
		100*st.HitRate(), 100*st.WeightedHitRate())
}
