package proxy

// The paper's reference [8] is the Harvest hierarchical object cache,
// whose caches cooperate with the Internet Cache Protocol (ICP, later
// RFC 2186): before fetching from the origin, a proxy sends a tiny UDP
// ICP_QUERY to its sibling caches and fetches from any sibling that
// answers ICP_HIT. This file implements the ICPv2 wire format and the
// query/responder machinery so the live proxy can form the cooperative
// arrangements the paper's Experiment 3 simulates.

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"webcache/internal/obs"
)

// ICP opcodes (RFC 2186 §3).
const (
	ICPOpInvalid     = 0
	ICPOpQuery       = 1
	ICPOpHit         = 2
	ICPOpMiss        = 3
	ICPOpErr         = 4
	ICPOpMissNoFetch = 21
	ICPOpDenied      = 22
)

// ICPVersion is the protocol version this package speaks.
const ICPVersion = 2

// icpHeaderLen is the fixed header size in bytes.
const icpHeaderLen = 20

// maxICPPacket bounds datagram size (RFC 2186 recommends small URLs).
const maxICPPacket = 2048

// ICPMessage is one ICP datagram.
type ICPMessage struct {
	Opcode    uint8
	Version   uint8
	ReqNum    uint32
	Options   uint32
	OptData   uint32
	SenderIP  [4]byte
	RequestIP [4]byte // present only in queries
	URL       string
}

// MarshalICP encodes m. Queries carry the 4-byte requester address
// before the URL; all messages end the URL with a NUL.
func MarshalICP(m *ICPMessage) ([]byte, error) {
	urlLen := len(m.URL) + 1 // trailing NUL
	length := icpHeaderLen + urlLen
	if m.Opcode == ICPOpQuery {
		length += 4
	}
	if length > maxICPPacket {
		return nil, fmt.Errorf("proxy: ICP message too large (%d bytes)", length)
	}
	buf := make([]byte, length)
	buf[0] = m.Opcode
	buf[1] = m.Version
	binary.BigEndian.PutUint16(buf[2:], uint16(length))
	binary.BigEndian.PutUint32(buf[4:], m.ReqNum)
	binary.BigEndian.PutUint32(buf[8:], m.Options)
	binary.BigEndian.PutUint32(buf[12:], m.OptData)
	copy(buf[16:20], m.SenderIP[:])
	off := icpHeaderLen
	if m.Opcode == ICPOpQuery {
		copy(buf[off:off+4], m.RequestIP[:])
		off += 4
	}
	copy(buf[off:], m.URL)
	// buf[length-1] is already 0 (the NUL terminator).
	return buf, nil
}

// UnmarshalICP decodes a datagram.
func UnmarshalICP(data []byte) (*ICPMessage, error) {
	if len(data) < icpHeaderLen {
		return nil, fmt.Errorf("proxy: ICP datagram too short (%d bytes)", len(data))
	}
	m := &ICPMessage{
		Opcode:  data[0],
		Version: data[1],
		ReqNum:  binary.BigEndian.Uint32(data[4:]),
		Options: binary.BigEndian.Uint32(data[8:]),
		OptData: binary.BigEndian.Uint32(data[12:]),
	}
	copy(m.SenderIP[:], data[16:20])
	length := int(binary.BigEndian.Uint16(data[2:]))
	if length > len(data) {
		return nil, fmt.Errorf("proxy: ICP length field %d exceeds datagram size %d", length, len(data))
	}
	if length < icpHeaderLen {
		return nil, fmt.Errorf("proxy: ICP length field %d shorter than the header", length)
	}
	payload := data[icpHeaderLen:length]
	if m.Opcode == ICPOpQuery {
		if len(payload) < 4 {
			return nil, fmt.Errorf("proxy: ICP query lacks requester address")
		}
		copy(m.RequestIP[:], payload[:4])
		payload = payload[4:]
	}
	// Strip the trailing NUL.
	if n := len(payload); n > 0 && payload[n-1] == 0 {
		payload = payload[:n-1]
	}
	m.URL = string(payload)
	return m, nil
}

// ICPResponder answers ICP queries against a store over UDP.
type ICPResponder struct {
	store ObjectStore
	conn  *net.UDPConn

	mu      sync.Mutex
	closed  bool
	Queries int64
	Hits    int64
}

// NewICPResponder starts a responder listening on addr (e.g.
// "127.0.0.1:0"). Close it to release the socket.
func NewICPResponder(store ObjectStore, addr string) (*ICPResponder, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: resolving ICP address %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("proxy: listening for ICP on %q: %w", addr, err)
	}
	r := &ICPResponder{store: store, conn: conn}
	go r.serve()
	return r, nil
}

// Addr returns the bound UDP address.
func (r *ICPResponder) Addr() string { return r.conn.LocalAddr().String() }

// Close stops the responder.
func (r *ICPResponder) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.conn.Close()
}

func (r *ICPResponder) serve() {
	buf := make([]byte, maxICPPacket)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		msg, err := UnmarshalICP(buf[:n])
		if err != nil || msg.Opcode != ICPOpQuery {
			continue
		}
		r.mu.Lock()
		r.Queries++
		r.mu.Unlock()

		op := uint8(ICPOpMiss)
		if _, ok := r.store.Peek(msg.URL); ok {
			op = ICPOpHit
			r.mu.Lock()
			r.Hits++
			r.mu.Unlock()
		}
		reply := &ICPMessage{
			Opcode:  op,
			Version: ICPVersion,
			ReqNum:  msg.ReqNum,
			URL:     msg.URL,
		}
		out, err := MarshalICP(reply)
		if err != nil {
			continue
		}
		r.conn.WriteToUDP(out, peer)
	}
}

// Stats returns (queries answered, hits reported).
func (r *ICPResponder) Stats() (queries, hits int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Queries, r.Hits
}

// Sibling describes one cooperating cache: where to send ICP queries and
// which HTTP proxy to fetch through on a hit.
type Sibling struct {
	ICPAddr string // UDP host:port of the sibling's ICP responder
	Proxy   string // HTTP URL of the sibling's proxy listener
}

// ICPClient queries siblings.
type ICPClient struct {
	Timeout time.Duration
	// Queries / Replies, when non-nil, count the datagrams sent and the
	// replies received in time — the admin endpoint's view of sibling
	// protocol health.
	Queries *obs.Counter
	Replies *obs.Counter

	mu     sync.Mutex
	reqNum uint32
}

// QuerySiblings asks every sibling whether it caches url and returns the
// first sibling that answers ICP_HIT within the timeout, or nil.
func (c *ICPClient) QuerySiblings(siblings []Sibling, url string) *Sibling {
	if len(siblings) == 0 {
		return nil
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	c.mu.Lock()
	c.reqNum++
	reqNum := c.reqNum
	c.mu.Unlock()

	type answer struct {
		idx int
		hit bool
	}
	ch := make(chan answer, len(siblings))
	for i := range siblings {
		go func(i int) {
			hit, err := c.queryOne(siblings[i].ICPAddr, url, reqNum, timeout)
			ch <- answer{idx: i, hit: err == nil && hit}
		}(i)
	}
	for range siblings {
		if a := <-ch; a.hit {
			return &siblings[a.idx]
		}
	}
	return nil
}

// queryOne sends a single ICP_QUERY and waits for the reply.
func (c *ICPClient) queryOne(addr, url string, reqNum uint32, timeout time.Duration) (bool, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return false, fmt.Errorf("proxy: dialing ICP sibling %q: %w", addr, err)
	}
	defer conn.Close()
	msg := &ICPMessage{Opcode: ICPOpQuery, Version: ICPVersion, ReqNum: reqNum, URL: url}
	out, err := MarshalICP(msg)
	if err != nil {
		return false, err
	}
	if _, err := conn.Write(out); err != nil {
		return false, fmt.Errorf("proxy: sending ICP query: %w", err)
	}
	if c.Queries != nil {
		c.Queries.Inc()
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return false, err
	}
	buf := make([]byte, maxICPPacket)
	n, err := conn.Read(buf)
	if err != nil {
		return false, fmt.Errorf("proxy: awaiting ICP reply: %w", err)
	}
	reply, err := UnmarshalICP(buf[:n])
	if err != nil {
		return false, err
	}
	if c.Replies != nil {
		c.Replies.Inc()
	}
	if reply.ReqNum != reqNum {
		return false, fmt.Errorf("proxy: ICP reply for request %d, want %d", reply.ReqNum, reqNum)
	}
	return reply.Opcode == ICPOpHit, nil
}
