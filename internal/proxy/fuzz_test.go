package proxy

import "testing"

// FuzzUnmarshalICP: arbitrary datagrams must decode or error, never
// panic; decodable messages must re-marshal.
func FuzzUnmarshalICP(f *testing.F) {
	if seed, err := MarshalICP(&ICPMessage{Opcode: ICPOpQuery, Version: ICPVersion, ReqNum: 1, URL: "http://x/"}); err == nil {
		f.Add(seed)
	}
	if seed, err := MarshalICP(&ICPMessage{Opcode: ICPOpHit, Version: ICPVersion, URL: ""}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalICP(data)
		if err != nil {
			return
		}
		if m.Opcode == ICPOpQuery || m.Opcode == ICPOpHit || m.Opcode == ICPOpMiss {
			if _, err := MarshalICP(m); err != nil && len(m.URL) < 1500 {
				t.Fatalf("decoded message does not re-marshal: %v", err)
			}
		}
	})
}
