// Package proxy implements a working HTTP caching proxy whose eviction
// is driven by the paper's removal-policy engine — the deployable
// counterpart of the simulator, demonstrating the library as a network
// cache rather than a model of one.
package proxy

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

// Object is a cached HTTP response body plus the metadata needed to
// serve and revalidate it.
type Object struct {
	Body         []byte
	ContentType  string
	LastModified time.Time
	StoredAt     time.Time
}

// StoreStats counts store activity. Capacity is the store's current
// byte quota (rebalanced at runtime for a sharded store's shards); the
// Touch* fields account for the buffered hit path — drained touches
// were replayed into the policy, dropped ones hit a full buffer,
// stale ones outlived their entry (see SetTouchBuffer).
type StoreStats struct {
	Gets      int64
	Hits      int64
	Puts      int64
	Evictions int64
	Used      int64
	MaxUsed   int64
	Docs      int64
	Capacity  int64

	TouchDrained int64
	TouchDropped int64
	TouchStale   int64
}

// Store is a concurrency-safe, capacity-bounded object store whose
// removal victims are chosen by a policy.Policy (SIZE by default, the
// paper's recommendation for hit rate). All policy and map bookkeeping
// is guarded by one RWMutex; reads that mutate no shared state (Peek,
// Len, Stats — and Get, once a touch buffer is attached) take it
// shared, everything else exclusive. Get/Hit totals live in atomics so
// the read-locked hit path never writes shared struct fields. For
// parallel scaling across cores, wrap N of these in a ShardedStore.
type Store struct {
	mu       sync.RWMutex
	capacity int64
	pol      policy.Policy
	entries  map[string]*policy.Entry
	objects  map[string]*Object
	rnd      *rng.Rand
	stats    StoreStats // Gets/Hits/Capacity/Touch* tracked separately; see Stats
	now      func() time.Time
	hooks    core.CacheHooks

	gets atomic.Int64
	hits atomic.Int64

	// buf is the lossy touch ring of the buffered hit path; nil means
	// drain-synchronous mode (Get write-locks and touches inline). An
	// atomic pointer so Get can pick its path without any lock.
	buf atomic.Pointer[touchBuffer]

	// touchDrained/touchStale and drainScratch are drain-side state,
	// guarded by mu held exclusively.
	touchDrained int64
	touchStale   int64
	drainScratch []policy.TouchRecord
}

// NewStore returns a store with the given capacity in bytes and policy.
// A nil policy defaults to SIZE with a random secondary key. Capacity
// must be positive: a live proxy always has a disk/memory budget.
func NewStore(capacity int64, pol policy.Policy) *Store {
	if pol == nil {
		pol = policy.NewSorted([]policy.Key{policy.KeySize}, 0)
	}
	return &Store{
		capacity: capacity,
		pol:      pol,
		entries:  make(map[string]*policy.Entry),
		objects:  make(map[string]*Object),
		rnd:      rng.New(0x9e3779b97f4a7c15),
		now:      time.Now,
	}
}

// Reserve pre-sizes the store for an expected resident-document count:
// the entry and object maps allocate their buckets up front and the
// policy's backing structures grow through policy.Reserver — the same
// pre-sizing the simulator's SizeHint path does for core.Cache. It is
// purely a performance hint: call it before serving; a non-positive
// hint or a store already holding objects makes it a no-op (re-hashing
// a live map would cost more than incremental growth).
func (s *Store) Reserve(docs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if docs <= 0 || len(s.entries) > 0 {
		return
	}
	if r, ok := s.pol.(policy.Reserver); ok {
		r.Reserve(docs)
	}
	s.entries = make(map[string]*policy.Entry, docs)
	s.objects = make(map[string]*Object, docs)
}

// SetClock overrides the store's time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetSeed re-seeds the per-entry random tiebreak stream. cmd/livebench
// uses it to give the live store the same tiebreak sequence as a
// simulated core.Cache, making the two systems byte-for-byte comparable
// even for policies with frequent key ties (LRU at one-second timestamp
// resolution, LFU at low reference counts). Call before any Put.
func (s *Store) SetSeed(seed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rnd = rng.New(seed)
}

// SetHooks attaches the same nil-checked cache event hooks the
// simulated core.Cache fires, so the live store feeds the identical
// observability surface (hit/miss/evict/add events with the evicted
// entry's age and NREF). Call before serving; unset hooks cost one
// branch per event, same contract as core.
func (s *Store) SetHooks(h core.CacheHooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
}

// SetTouchBuffer switches the hit path between its two modes. slots > 0
// attaches a lossy touch ring of that many atomic slots: Get takes only
// the read lock and buffers the policy update, which is drained in
// recorded order under the write lock by the next Put, by the Get that
// crosses the half-full threshold (TryLock, never blocking), by
// FlushTouches, and by a Maintainer. slots <= 0 (the default) is the
// drain-synchronous deterministic mode: Get write-locks and calls
// pol.Touch inline, byte-for-byte the unbuffered hit path — the mode
// livebench and the equivalence tests rely on.
//
// In buffered mode the OnHit hook fires before the entry's ATime/NRef
// are updated (the update happens at drain time); inline mode fires it
// after. Call before serving, like SetSeed and SetHooks.
func (s *Store) SetTouchBuffer(slots int) {
	if slots <= 0 {
		s.buf.Store(nil)
		return
	}
	s.buf.Store(newTouchBuffer(slots))
}

// Get returns the cached object for url, updating recency/frequency
// bookkeeping on a hit — inline under the write lock in synchronous
// mode, via the touch buffer under the read lock in buffered mode.
func (s *Store) Get(url string) (*Object, bool) { return s.get(url, nil) }

// GetTraced is Get with the request's span timeline attached: the
// buffered hit path records a touch.enqueue span. A nil rt is exactly
// Get (the untraced branch costs one nil check per site).
func (s *Store) GetTraced(url string, rt *obs.ReqTrace) (*Object, bool) { return s.get(url, rt) }

func (s *Store) get(url string, rt *obs.ReqTrace) (*Object, bool) {
	buf := s.buf.Load()
	if buf == nil {
		return s.getSync(url)
	}
	s.mu.RLock()
	e, ok := s.entries[url]
	if !ok {
		if s.hooks.OnMiss != nil {
			// Size 0: a live miss's size is unknown until the origin
			// responds (the fetch path counts the bytes).
			s.hooks.OnMiss(0, s.now().Unix())
		}
		s.mu.RUnlock()
		s.gets.Add(1)
		return nil, false
	}
	obj := s.objects[url]
	at := s.now().Unix()
	if s.hooks.OnHit != nil {
		s.hooks.OnHit(e)
	}
	s.mu.RUnlock()
	s.gets.Add(1)
	s.hits.Add(1)
	// The recorded touch is applied later; if the ring just crossed
	// half full, try to drain now without ever blocking the hit.
	var sp obs.SpanID
	if rt != nil {
		sp = rt.BeginSpan(obs.PhaseTouchEnqueue)
	}
	crossed := buf.record(e, at)
	if rt != nil {
		rt.EndSpan(sp)
	}
	if crossed && s.mu.TryLock() {
		s.drainTouchesLocked()
		s.mu.Unlock()
	}
	return obj, true
}

// getSync is the drain-synchronous hit path: the pre-buffer behavior,
// preserved exactly for deterministic replays.
func (s *Store) getSync(url string) (*Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets.Add(1)
	e, ok := s.entries[url]
	if !ok {
		if s.hooks.OnMiss != nil {
			s.hooks.OnMiss(0, s.now().Unix())
		}
		return nil, false
	}
	e.ATime = s.now().Unix()
	e.NRef++
	s.pol.Touch(e)
	s.hits.Add(1)
	if s.hooks.OnHit != nil {
		s.hooks.OnHit(e)
	}
	return s.objects[url], true
}

// Peek reports whether url is cached, without updating recency,
// frequency or statistics. ICP responders use it so sibling queries do
// not distort the removal policy's bookkeeping.
func (s *Store) Peek(url string) (*Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[url]
	return obj, ok
}

// Put stores obj under url, evicting as needed. Objects larger than the
// whole store are not cached; Put reports whether it stored the object.
// Pending buffered touches are drained first, so victim selection sees
// the recency the hit path recorded.
func (s *Store) Put(url string, obj *Object) bool { return s.put(url, obj, nil) }

// PutTraced is Put with the request's span timeline attached: each
// victim the admission evicts becomes one evict span (annotated with
// the victim's bytes) and bumps the trace's eviction count. A nil rt
// is exactly Put.
func (s *Store) PutTraced(url string, obj *Object, rt *obs.ReqTrace) bool {
	return s.put(url, obj, rt)
}

func (s *Store) put(url string, obj *Object, rt *obs.ReqTrace) bool {
	size := int64(len(obj.Body))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainTouchesLocked()
	if size > s.capacity {
		return false
	}
	s.stats.Puts++
	// Replacement must be atomic: the old entry is taken out before the
	// eviction loop (its bytes are being superseded, and the policy must
	// not pick it as its own replacement's victim), but if no victim set
	// can make room for the new object, the old one is reinstated rather
	// than silently lost.
	old, hadOld := s.entries[url]
	var oldObj *Object
	if hadOld {
		oldObj = s.objects[url]
		s.removeLocked(old)
	}
	now := s.now().Unix()
	for s.stats.Used+size > s.capacity {
		var sp obs.SpanID
		if rt != nil {
			sp = rt.BeginSpan(obs.PhaseEvict)
		}
		v := s.pol.Victim(size)
		if v == nil {
			if rt != nil {
				// Arg -1: the victim search failed, admission denied.
				rt.EndSpanArg(sp, -1)
			}
			if hadOld {
				s.entries[url] = old
				s.objects[url] = oldObj
				s.pol.Add(old)
				s.stats.Used += old.Size
				s.stats.Docs++
			}
			return false
		}
		s.removeLocked(v)
		s.stats.Evictions++
		if rt != nil {
			rt.EndSpanArg(sp, v.Size)
			rt.CountEviction()
		}
		if s.hooks.OnEvict != nil {
			s.hooks.OnEvict(v, now)
		}
	}
	e := policy.NewEntry(url, size, trace.ClassifyURL(url), now, s.rnd.Uint64())
	s.entries[url] = e
	s.objects[url] = obj
	s.pol.Add(e)
	s.stats.Used += size
	s.stats.Docs++
	if s.stats.Used > s.stats.MaxUsed {
		s.stats.MaxUsed = s.stats.Used
	}
	if s.hooks.OnAdd != nil {
		s.hooks.OnAdd(e)
	}
	return true
}

// Refresh updates the stored-at time of url's object after a successful
// revalidation (304 from the origin).
func (s *Store) Refresh(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.objects[url]; ok {
		obj.StoredAt = s.now()
	}
}

// Remove drops url from the store.
func (s *Store) Remove(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[url]; ok {
		s.removeLocked(e)
	}
}

func (s *Store) removeLocked(e *policy.Entry) {
	s.pol.Remove(e)
	delete(s.entries, e.URL)
	delete(s.objects, e.URL)
	s.stats.Used -= e.Size
	s.stats.Docs--
}

// FlushTouches drains the touch buffer now, replaying every pending
// recorded hit into the policy, and returns the number applied. A
// no-op (0) in synchronous mode.
func (s *Store) FlushTouches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainTouchesLocked()
}

// drainTouchesLocked replays the buffered hits recorded up to now into
// the policy in ticket order. Caller holds mu exclusively. Records
// whose entry has been evicted, removed or replaced since the hit are
// discarded as stale (pointer-identity check), so the policy never
// sees a dead entry.
func (s *Store) drainTouchesLocked() int {
	b := s.buf.Load()
	if b == nil {
		return 0
	}
	head := b.head.Load()
	tail := b.tail.Load()
	if tail == head {
		return 0
	}
	n := uint64(len(b.slots))
	batch := s.drainScratch[:0]
	for t := tail; t != head; t++ {
		rec := b.slots[t%n].Swap(nil)
		if rec == nil {
			continue // dropped, or its writer is still publishing
		}
		if cur, ok := s.entries[rec.e.URL]; ok && cur == rec.e {
			batch = append(batch, policy.TouchRecord{Entry: rec.e, ATime: rec.at})
		} else {
			s.touchStale++
		}
		rec.e = nil
		touchRecPool.Put(rec)
	}
	b.tail.Store(head)
	policy.ReplayTouches(s.pol, batch)
	s.touchDrained += int64(len(batch))
	s.drainScratch = batch[:0]
	return len(batch)
}

// Len returns the number of cached objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats returns a snapshot of store counters. In synchronous mode the
// snapshot is exact (Gets/Hits are incremented under the lock Stats
// holds shared); in buffered mode the hit path increments them outside
// the lock, so the snapshot is monotonic but may be mid-update by up
// to the handful of Gets in flight.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Gets = s.gets.Load()
	st.Hits = s.hits.Load()
	st.Capacity = s.capacity
	st.TouchDrained = s.touchDrained
	st.TouchStale = s.touchStale
	if b := s.buf.Load(); b != nil {
		st.TouchDropped = b.dropped.Load()
	}
	return st
}

// Quota returns the store's current byte capacity. For a sharded
// store's shard this moves over time: the rebalancer shifts quota from
// cold shards to hot ones.
func (s *Store) Quota() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.capacity
}

// largestLocked returns the size of the largest resident entry (0 when
// empty). Caller holds mu.
func (s *Store) largestLocked() int64 {
	var largest int64
	for _, e := range s.entries {
		if e.Size > largest {
			largest = e.Size
		}
	}
	return largest
}

// donateQuota lowers the store's capacity by up to want bytes for the
// rebalancer, and returns the amount actually taken. The quota never
// drops below the bytes in use, the largest resident entry, or floor —
// recomputed here under the lock, so the invariant holds even if the
// shard admitted new objects since the rebalancer sampled it.
func (s *Store) donateQuota(want, floor int64) int64 {
	if want <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lowest := s.stats.Used
	if l := s.largestLocked(); l > lowest {
		lowest = l
	}
	if floor > lowest {
		lowest = floor
	}
	give := s.capacity - lowest
	if give <= 0 {
		return 0
	}
	if give > want {
		give = want
	}
	s.capacity -= give
	return give
}

// grantQuota raises the store's capacity by n bytes (the receiving side
// of a rebalance transfer).
func (s *Store) grantQuota(n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.capacity += n
	s.mu.Unlock()
}

// headerSubset copies the entity headers a 1.0-era cache preserves.
func headerSubset(h http.Header) (contentType string, lastMod time.Time) {
	contentType = h.Get("Content-Type")
	if v := h.Get("Last-Modified"); v != "" {
		if t, err := http.ParseTime(v); err == nil {
			lastMod = t
		}
	}
	return contentType, lastMod
}
