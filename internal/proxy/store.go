// Package proxy implements a working HTTP caching proxy whose eviction
// is driven by the paper's removal-policy engine — the deployable
// counterpart of the simulator, demonstrating the library as a network
// cache rather than a model of one.
package proxy

import (
	"net/http"
	"sync"
	"time"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

// Object is a cached HTTP response body plus the metadata needed to
// serve and revalidate it.
type Object struct {
	Body         []byte
	ContentType  string
	LastModified time.Time
	StoredAt     time.Time
}

// StoreStats counts store activity.
type StoreStats struct {
	Gets      int64
	Hits      int64
	Puts      int64
	Evictions int64
	Used      int64
	MaxUsed   int64
	Docs      int64
}

// Store is a concurrency-safe, capacity-bounded object store whose
// removal victims are chosen by a policy.Policy (SIZE by default, the
// paper's recommendation for hit rate). All bookkeeping is guarded by
// one lock; reads that touch no policy state (Peek, Len, Stats) take
// it shared, everything else exclusive. For parallel scaling across
// cores, wrap N of these in a ShardedStore.
type Store struct {
	mu       sync.RWMutex
	capacity int64
	pol      policy.Policy
	entries  map[string]*policy.Entry
	objects  map[string]*Object
	rnd      *rng.Rand
	stats    StoreStats
	now      func() time.Time
	hooks    core.CacheHooks
}

// NewStore returns a store with the given capacity in bytes and policy.
// A nil policy defaults to SIZE with a random secondary key. Capacity
// must be positive: a live proxy always has a disk/memory budget.
func NewStore(capacity int64, pol policy.Policy) *Store {
	if pol == nil {
		pol = policy.NewSorted([]policy.Key{policy.KeySize}, 0)
	}
	return &Store{
		capacity: capacity,
		pol:      pol,
		entries:  make(map[string]*policy.Entry),
		objects:  make(map[string]*Object),
		rnd:      rng.New(0x9e3779b97f4a7c15),
		now:      time.Now,
	}
}

// SetClock overrides the store's time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetSeed re-seeds the per-entry random tiebreak stream. cmd/livebench
// uses it to give the live store the same tiebreak sequence as a
// simulated core.Cache, making the two systems byte-for-byte comparable
// even for policies with frequent key ties (LRU at one-second timestamp
// resolution, LFU at low reference counts). Call before any Put.
func (s *Store) SetSeed(seed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rnd = rng.New(seed)
}

// SetHooks attaches the same nil-checked cache event hooks the
// simulated core.Cache fires, so the live store feeds the identical
// observability surface (hit/miss/evict/add events with the evicted
// entry's age and NREF). Call before serving; unset hooks cost one
// branch per event, same contract as core.
func (s *Store) SetHooks(h core.CacheHooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
}

// Get returns the cached object for url, updating recency/frequency
// bookkeeping on a hit.
func (s *Store) Get(url string) (*Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	e, ok := s.entries[url]
	if !ok {
		if s.hooks.OnMiss != nil {
			// Size 0: a live miss's size is unknown until the origin
			// responds (the fetch path counts the bytes).
			s.hooks.OnMiss(0, s.now().Unix())
		}
		return nil, false
	}
	e.ATime = s.now().Unix()
	e.NRef++
	s.pol.Touch(e)
	s.stats.Hits++
	if s.hooks.OnHit != nil {
		s.hooks.OnHit(e)
	}
	return s.objects[url], true
}

// Peek reports whether url is cached, without updating recency,
// frequency or statistics. ICP responders use it so sibling queries do
// not distort the removal policy's bookkeeping.
func (s *Store) Peek(url string) (*Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[url]
	return obj, ok
}

// Put stores obj under url, evicting as needed. Objects larger than the
// whole store are not cached; Put reports whether it stored the object.
func (s *Store) Put(url string, obj *Object) bool {
	size := int64(len(obj.Body))
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.capacity {
		return false
	}
	s.stats.Puts++
	// Replacement must be atomic: the old entry is taken out before the
	// eviction loop (its bytes are being superseded, and the policy must
	// not pick it as its own replacement's victim), but if no victim set
	// can make room for the new object, the old one is reinstated rather
	// than silently lost.
	old, hadOld := s.entries[url]
	var oldObj *Object
	if hadOld {
		oldObj = s.objects[url]
		s.removeLocked(old)
	}
	now := s.now().Unix()
	for s.stats.Used+size > s.capacity {
		v := s.pol.Victim(size)
		if v == nil {
			if hadOld {
				s.entries[url] = old
				s.objects[url] = oldObj
				s.pol.Add(old)
				s.stats.Used += old.Size
				s.stats.Docs++
			}
			return false
		}
		s.removeLocked(v)
		s.stats.Evictions++
		if s.hooks.OnEvict != nil {
			s.hooks.OnEvict(v, now)
		}
	}
	e := policy.NewEntry(url, size, trace.ClassifyURL(url), now, s.rnd.Uint64())
	s.entries[url] = e
	s.objects[url] = obj
	s.pol.Add(e)
	s.stats.Used += size
	s.stats.Docs++
	if s.stats.Used > s.stats.MaxUsed {
		s.stats.MaxUsed = s.stats.Used
	}
	if s.hooks.OnAdd != nil {
		s.hooks.OnAdd(e)
	}
	return true
}

// Refresh updates the stored-at time of url's object after a successful
// revalidation (304 from the origin).
func (s *Store) Refresh(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.objects[url]; ok {
		obj.StoredAt = s.now()
	}
}

// Remove drops url from the store.
func (s *Store) Remove(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[url]; ok {
		s.removeLocked(e)
	}
}

func (s *Store) removeLocked(e *policy.Entry) {
	s.pol.Remove(e)
	delete(s.entries, e.URL)
	delete(s.objects, e.URL)
	s.stats.Used -= e.Size
	s.stats.Docs--
}

// Len returns the number of cached objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// headerSubset copies the entity headers a 1.0-era cache preserves.
func headerSubset(h http.Header) (contentType string, lastMod time.Time) {
	contentType = h.Get("Content-Type")
	if v := h.Get("Last-Modified"); v != "" {
		if t, err := http.ParseTime(v); err == nil {
			lastMod = t
		}
	}
	return contentType, lastMod
}
