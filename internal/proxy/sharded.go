package proxy

// The single-mutex Store serializes every Get and Put — fine for a
// trace replay, fatal at "millions of users": on a many-core proxy the
// global lock is the whole hot path. ShardedStore removes the global
// serialization point by hashing each URL to one of N independent
// shards, each a complete single-mutex Store with its own policy
// instance, entry/object maps, lock, tiebreak stream, and capacity
// quota. Requests for different shards never share a lock, so hit
// throughput scales with cores until the memory system saturates
// (cmd/loadgen measures exactly this, single-mutex vs sharded, into
// the BENCH_proxy.json trajectory).
//
// Sharding trades two global properties for that parallelism, both
// documented rather than hidden:
//
//   - Capacity is partitioned, not pooled. Each shard enforces its own
//     quota (see the remainder rule at NewShardedStore), so a popular
//     shard evicts while an unpopular one has slack. With URL hashing
//     and N « distinct documents the imbalance is small, and the
//     paper's HR/WHR answers are unchanged in expectation — but an
//     object larger than one shard's quota is uncacheable even if the
//     summed capacity would hold it, so pick N with quota ≫ the
//     largest cacheable object (cmd/proxy's MaxObjectBytes).
//   - Policy state is per shard. Each shard's removal policy ranks
//     only its own residents, so a victim is the best candidate within
//     the incoming URL's shard, not globally. This is the standard
//     sharded-LRU approximation (memcached, Squid); at proxy
//     populations it does not measurably distort the taxonomy.
//
// With one shard both properties collapse back to the single store's:
// a 1-shard ShardedStore is byte-equivalent to Store under a fixed
// seed and clock (pinned by TestShardedOneShardByteEquivalent and
// exercised end-to-end by livebench -shards 1).

import (
	"sync"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
)

// ShardedStore is an N-way sharded ObjectStore: URL-hash routing over
// independent single-mutex shards.
type ShardedStore struct {
	shards []*Store

	// Rebalancer state (rebalance.go): one pass runs at a time, and
	// lastEvictions holds each shard's eviction count at the previous
	// pass so pressure is a per-interval delta, not a lifetime total.
	rebalMu       sync.Mutex
	lastEvictions []int64
}

// shardSeedStep derives shard i's tiebreak seed as base + i*step — the
// splitmix64 increment, so adjacent shard streams are uncorrelated.
// Shard 0's seed is the base itself, which is what makes the 1-shard
// store replay byte-identically to a Store given the same SetSeed.
const shardSeedStep = 0x9e3779b97f4a7c15

// NewShardedStore returns a store of the given total byte capacity
// split across shards. Each shard gets its own policy instance from
// newPolicy (nil defaults every shard to SIZE, matching NewStore).
//
// Quota remainder rule: every shard gets capacity/shards bytes, and
// the first capacity%shards shards get one extra byte each, so the
// quotas always sum to exactly the requested capacity.
func NewShardedStore(capacity int64, shards int, newPolicy func() policy.Policy) *ShardedStore {
	if shards < 1 {
		shards = 1
	}
	if newPolicy == nil {
		newPolicy = func() policy.Policy { return nil } // NewStore defaults nil to SIZE
	}
	s := &ShardedStore{
		shards:        make([]*Store, shards),
		lastEvictions: make([]int64, shards),
	}
	quota := capacity / int64(shards)
	remainder := capacity % int64(shards)
	for i := range s.shards {
		q := quota
		if int64(i) < remainder {
			q++
		}
		s.shards[i] = NewStore(q, newPolicy())
	}
	return s
}

// shardIndex routes url with FNV-1a 64 — chosen over maphash because it
// is seedless and therefore stable across processes: a replayed trace
// lands on the same shards every run, which keeps sharded replays
// reproducible.
func shardIndex(url string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (s *ShardedStore) shard(url string) *Store {
	return s.shards[shardIndex(url, len(s.shards))]
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Get returns the cached object for url from its shard.
func (s *ShardedStore) Get(url string) (*Object, bool) { return s.shard(url).Get(url) }

// GetTraced is Get with the request's span timeline attached: the
// shard-route decision becomes a route span annotated with the chosen
// shard index, and the shard's own traced hit path nests inside it.
func (s *ShardedStore) GetTraced(url string, rt *obs.ReqTrace) (*Object, bool) {
	if rt == nil {
		return s.Get(url)
	}
	sp := rt.BeginSpan(obs.PhaseRoute)
	idx := shardIndex(url, len(s.shards))
	rt.EndSpanArg(sp, int64(idx))
	rt.SetShard(idx)
	return s.shards[idx].GetTraced(url, rt)
}

// PutTraced is Put with the request's span timeline attached — route
// span plus the shard's admission/eviction spans.
func (s *ShardedStore) PutTraced(url string, obj *Object, rt *obs.ReqTrace) bool {
	if rt == nil {
		return s.Put(url, obj)
	}
	sp := rt.BeginSpan(obs.PhaseRoute)
	idx := shardIndex(url, len(s.shards))
	rt.EndSpanArg(sp, int64(idx))
	rt.SetShard(idx)
	return s.shards[idx].PutTraced(url, obj, rt)
}

// Peek reports whether url is cached, without policy side effects.
func (s *ShardedStore) Peek(url string) (*Object, bool) { return s.shard(url).Peek(url) }

// Put stores obj under url in its shard, evicting within that shard's
// quota as needed.
func (s *ShardedStore) Put(url string, obj *Object) bool { return s.shard(url).Put(url, obj) }

// Refresh re-stamps url's stored-at time after a revalidation.
func (s *ShardedStore) Refresh(url string) { s.shard(url).Refresh(url) }

// Remove drops url from its shard.
func (s *ShardedStore) Remove(url string) { s.shard(url).Remove(url) }

// Len returns the number of cached objects across all shards.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Stats aggregates counters across shards. Sums are exact; MaxUsed is
// the sum of per-shard high-water marks, an upper bound on the true
// global peak (shards peak at different times). Capacity sums to the
// requested global capacity whatever the rebalancer has shifted — the
// rebalance invariant made visible (a snapshot racing an in-flight
// transfer can read up to one rebalance step low, never high; see
// rebalance.go).
func (s *ShardedStore) Stats() StoreStats {
	var agg StoreStats
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Gets += st.Gets
		agg.Hits += st.Hits
		agg.Puts += st.Puts
		agg.Evictions += st.Evictions
		agg.Used += st.Used
		agg.MaxUsed += st.MaxUsed
		agg.Docs += st.Docs
		agg.Capacity += st.Capacity
		agg.TouchDrained += st.TouchDrained
		agg.TouchDropped += st.TouchDropped
		agg.TouchStale += st.TouchStale
	}
	return agg
}

// ShardStats returns each shard's own counter snapshot, in shard
// order — the admin surface's view of load balance across shards.
func (s *ShardedStore) ShardStats() []StoreStats {
	out := make([]StoreStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

// SetTouchBuffer gives every shard its own lossy touch ring of the
// given slot count (0 = the drain-synchronous deterministic mode; see
// Store.SetTouchBuffer). Per-shard rings keep the buffered hit path
// contention-free: a shard's ring is only drained under that shard's
// own write lock.
func (s *ShardedStore) SetTouchBuffer(slots int) {
	for _, sh := range s.shards {
		sh.SetTouchBuffer(slots)
	}
}

// FlushTouches drains every shard's touch buffer and returns the total
// number of recorded hits replayed into the policies.
func (s *ShardedStore) FlushTouches() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.FlushTouches()
	}
	return n
}

// Quotas returns each shard's current byte quota, in shard order. The
// values move under the rebalancer but always sum to the capacity the
// store was built with.
func (s *ShardedStore) Quotas() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Quota()
	}
	return out
}

// Reserve spreads an expected-documents hint evenly across the shards;
// each pre-sizes its maps and policy structures (see Store.Reserve).
func (s *ShardedStore) Reserve(docs int) {
	if docs <= 0 {
		return
	}
	per := (docs + len(s.shards) - 1) / len(s.shards)
	for _, sh := range s.shards {
		sh.Reserve(per)
	}
}

// SetClock overrides the time source of every shard.
func (s *ShardedStore) SetClock(now func() time.Time) {
	for _, sh := range s.shards {
		sh.SetClock(now)
	}
}

// SetSeed gives shard i the tiebreak seed seed + i*shardSeedStep (see
// shardSeedStep); shard 0 receives seed itself. Call before any Put.
func (s *ShardedStore) SetSeed(seed uint64) {
	for i, sh := range s.shards {
		sh.SetSeed(seed + uint64(i)*shardSeedStep)
	}
}

// SetHooks attaches the same event hooks to every shard — the merged
// arrangement: all shards' events land in one sink, which must be
// concurrency-safe (obs.EventRing and obs counters are). For events
// tagged with their shard of origin use SetHooksPerShard.
func (s *ShardedStore) SetHooks(h core.CacheHooks) {
	for _, sh := range s.shards {
		sh.SetHooks(h)
	}
}

// SetHooksPerShard attaches hooks(i) to shard i, so each shard's
// events can carry its ID (ShardedStoreHooks builds ring events tagged
// this way, keeping obs.EventRing traces and analysis.AnalyzeEvents
// attributable after the merge).
func (s *ShardedStore) SetHooksPerShard(hooks func(shard int) core.CacheHooks) {
	for i, sh := range s.shards {
		sh.SetHooks(hooks(i))
	}
}
