package proxy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webcache/internal/policy"
)

// raceImpls builds one store of each implementation behind the shared
// ObjectStore interface, so every concurrency test in this file runs
// against both the single-mutex Store and the ShardedStore (including
// the 1-shard edge case, whose routing and quota paths are live even
// though only one lock exists).
func raceImpls(capacity int64) map[string]func() ObjectStore {
	factory := func() policy.Policy {
		return policy.NewSorted([]policy.Key{policy.KeySize}, 0)
	}
	buffered := func(s ObjectStore) ObjectStore {
		s.SetTouchBuffer(128) // small ring: the drop path is exercised, not just the happy path
		return s
	}
	return map[string]func() ObjectStore{
		"single-mutex":       func() ObjectStore { return NewStore(capacity, factory()) },
		"sharded-1":          func() ObjectStore { return NewShardedStore(capacity, 1, factory) },
		"sharded-8":          func() ObjectStore { return NewShardedStore(capacity, 8, factory) },
		"single-buffered":    func() ObjectStore { return buffered(NewStore(capacity, factory())) },
		"sharded-8-buffered": func() ObjectStore { return buffered(NewShardedStore(capacity, 8, factory)) },
	}
}

// TestStoreRaceStress hammers every store implementation from many
// goroutines with the full interface surface — Get, Put, Peek, Remove,
// Stats, Len — and then checks the accounting invariants. Run with
// -race to verify the locking discipline (make race does).
func TestStoreRaceStress(t *testing.T) {
	const capacity = 64 << 10
	for name, mk := range raceImpls(capacity) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			const workers = 8
			const opsPerWorker = 2000
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						url := fmt.Sprintf("http://s/doc%d.html", (w*31+i)%200)
						switch i % 8 {
						case 0, 4:
							s.Put(url, &Object{Body: make([]byte, 100+(i%700)), StoredAt: time.Now()})
						case 1, 5:
							s.Get(url)
						case 2:
							s.Peek(url)
						case 3:
							if i%16 == 3 {
								s.Remove(url)
							} else {
								s.Get(url)
							}
						case 6:
							if st := s.Stats(); st.Used < 0 {
								panic("negative Used observed mid-run")
							}
						case 7:
							s.Len()
							s.Refresh(url)
						}
					}
				}(w)
			}
			wg.Wait()

			st := s.Stats()
			if st.Used < 0 || st.Used > capacity {
				t.Fatalf("used bytes out of range: %d", st.Used)
			}
			if int64(s.Len()) != st.Docs {
				t.Fatalf("Len %d != Docs %d", s.Len(), st.Docs)
			}
			if st.Gets == 0 || st.Puts == 0 {
				t.Fatalf("stress run recorded no traffic: %+v", st)
			}
		})
	}
}

// TestStoreConcurrentWithICP runs store mutations concurrently with ICP
// queries against the same store, for each implementation — the
// responder reads through the interface's Peek path.
func TestStoreConcurrentWithICP(t *testing.T) {
	for name, mk := range raceImpls(1 << 20) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			resp, err := NewICPResponder(s, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Close()

			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					s.Put(fmt.Sprintf("http://s/d%d.html", i%50), &Object{Body: make([]byte, 64), StoredAt: time.Now()})
				}
			}()
			go func() {
				defer wg.Done()
				c := &ICPClient{Timeout: 100 * time.Millisecond}
				sib := []Sibling{{ICPAddr: resp.Addr(), Proxy: "x"}}
				for i := 0; i < 100; i++ {
					c.QuerySiblings(sib, fmt.Sprintf("http://s/d%d.html", i%50))
				}
			}()
			wg.Wait()
		})
	}
}

// TestShardedConcurrentReplacement stresses the atomic-replacement path
// concurrently: many goroutines re-Put the same small URL population
// with varying sizes while others read, so replacements and evictions
// interleave. The invariant from the Put fix — a failed or successful
// replacement never leaks bytes — shows up as Used staying within
// capacity and matching the live document set.
func TestShardedConcurrentReplacement(t *testing.T) {
	const capacity = 16 << 10
	for name, mk := range raceImpls(capacity) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 1500; i++ {
						url := fmt.Sprintf("http://s/hot%d.html", i%16)
						if w%2 == 0 {
							s.Put(url, &Object{Body: make([]byte, 200+(w*131+i)%1800), StoredAt: time.Now()})
						} else {
							s.Get(url)
						}
					}
				}(w)
			}
			wg.Wait()

			st := s.Stats()
			if st.Used < 0 || st.Used > capacity {
				t.Fatalf("used bytes out of range after replacement stress: %d", st.Used)
			}
			if int64(s.Len()) != st.Docs {
				t.Fatalf("Len %d != Docs %d", s.Len(), st.Docs)
			}
		})
	}
}

// TestBufferedMaintenanceRaceStress runs the whole buffered machinery
// at once under the race detector: a sharded store with per-shard touch
// rings, worker goroutines on the full interface surface, a Maintainer
// draining and rebalancing on aggressive ticks, plus explicit
// concurrent FlushTouches and Rebalance callers. The invariants checked
// are the ones the design promises survive concurrency: the global
// quota sum is exact at every observation, every recorded touch is
// accounted exactly once (drained, dropped, or stale), and usage stays
// within each shard's moving quota.
func TestBufferedMaintenanceRaceStress(t *testing.T) {
	// One run per structural policy backend: the default SIZE (static
	// log2-size buckets), LRU (intrusive recency list), and LFU (NREF
	// frequency buckets) — the structures the drain-time ReplayTouches
	// now mutates under each shard's write lock, so this is where the
	// race detector watches them live under the Maintainer.
	for name, factory := range map[string]func() policy.Policy{
		"size": nil,
		"lru":  func() policy.Policy { return policy.NewLRU() },
		"lfu":  func() policy.Policy { return policy.NewLFU() },
	} {
		t.Run(name, func(t *testing.T) { bufferedMaintenanceRaceStress(t, factory) })
	}
}

func bufferedMaintenanceRaceStress(t *testing.T, factory func() policy.Policy) {
	const capacity = 64 << 10
	const shards = 8
	s := NewShardedStore(capacity, shards, factory)
	s.SetTouchBuffer(64)
	floor := MinShardQuota(capacity, shards)
	m := StartMaintenance(s, MaintOptions{
		DrainEvery:     time.Millisecond,
		RebalanceEvery: 2 * time.Millisecond,
		RebalanceStep:  1024,
		RebalanceFloor: floor,
	})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				url := fmt.Sprintf("http://s/doc%d.html", (w*17+i)%120)
				switch i % 8 {
				case 0:
					s.Put(url, &Object{Body: make([]byte, 200+(i%1800)), StoredAt: time.Now()})
				case 7:
					if i%32 == 7 {
						s.Remove(url)
					} else {
						s.FlushTouches()
					}
				default:
					s.Get(url)
				}
				if i%500 == 0 {
					// A snapshot racing an in-flight transfer may read the
					// sum up to one rebalance step low — never high, and
					// never low by more than the largest step in play.
					if got := s.Stats().Capacity; got > capacity || got < capacity-1024 {
						panic(fmt.Sprintf("quota sum %d outside [%d,%d] mid-run", got, capacity-1024, capacity))
					}
				}
			}
		}(w)
	}
	// A competing rebalancer: passes must serialize, not corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Rebalance(512, floor)
		}
	}()
	wg.Wait()
	m.Close()

	st := s.Stats()
	if st.Capacity != capacity {
		t.Fatalf("quota sum %d != capacity %d after run", st.Capacity, capacity)
	}
	if st.Used < 0 || st.Used > capacity {
		t.Fatalf("used bytes out of range: %d", st.Used)
	}
	if int64(s.Len()) != st.Docs {
		t.Fatalf("Len %d != Docs %d", s.Len(), st.Docs)
	}
	for i, sh := range s.shards {
		shst := sh.Stats()
		if shst.Used > shst.Capacity {
			t.Errorf("shard %d used %d exceeds its quota %d", i, shst.Used, shst.Capacity)
		}
	}
	// Close flushed the rings, so every hit is accounted at most once:
	// drained, dropped, or stale. A touch published after a drain already
	// passed its ticket can be stranded in its slot (the documented
	// missed-window case), so the accounting may fall short of Hits — but
	// never by more than one record per slot, and never over.
	applied := st.TouchDrained + st.TouchDropped + st.TouchStale
	if applied > st.Hits {
		t.Errorf("touch accounting overcounts: drained %d + dropped %d + stale %d = %d > Hits %d",
			st.TouchDrained, st.TouchDropped, st.TouchStale, applied, st.Hits)
	}
	if slack := st.Hits - applied; slack > int64(shards*64) {
		t.Errorf("touch accounting lost %d hits, more than one per ring slot (%d)", slack, shards*64)
	}
}
