package proxy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webcache/internal/policy"
)

// TestStoreConcurrentAccess hammers the store from many goroutines; run
// with -race to verify the locking discipline.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(64<<10, policy.NewSorted([]policy.Key{policy.KeySize}, 0))
	var wg sync.WaitGroup
	const workers = 8
	const opsPerWorker = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				url := fmt.Sprintf("http://s/doc%d.html", (w*31+i)%200)
				switch i % 4 {
				case 0:
					s.Put(url, &Object{Body: make([]byte, 100+(i%700)), StoredAt: time.Now()})
				case 1:
					s.Get(url)
				case 2:
					s.Peek(url)
				case 3:
					if i%16 == 3 {
						s.Remove(url)
					} else {
						s.Get(url)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Used < 0 || st.Used > 64<<10 {
		t.Fatalf("used bytes out of range: %d", st.Used)
	}
	if int64(s.Len()) != st.Docs {
		t.Fatalf("Len %d != Docs %d", s.Len(), st.Docs)
	}
}

// TestStoreConcurrentWithICP runs store mutations concurrently with ICP
// queries against the same store.
func TestStoreConcurrentWithICP(t *testing.T) {
	s := NewStore(1<<20, nil)
	resp, err := NewICPResponder(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Put(fmt.Sprintf("http://s/d%d.html", i%50), &Object{Body: make([]byte, 64), StoredAt: time.Now()})
		}
	}()
	go func() {
		defer wg.Done()
		c := &ICPClient{Timeout: 100 * time.Millisecond}
		sib := []Sibling{{ICPAddr: resp.Addr(), Proxy: "x"}}
		for i := 0; i < 100; i++ {
			c.QuerySiblings(sib, fmt.Sprintf("http://s/d%d.html", i%50))
		}
	}()
	wg.Wait()
}
