package proxy

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// shadowTrace builds a small deterministic request stream with enough
// reuse to produce hits and enough volume to force evictions at the
// test capacity.
func shadowTrace(n int) []trace.Request {
	reqs := make([]trace.Request, 0, n)
	for i := 0; i < n; i++ {
		doc := (i * 7) % 40
		reqs = append(reqs, trace.Request{
			Time: int64(1000 + i),
			URL:  fmt.Sprintf("http://origin.test/doc/%d", doc),
			Size: int64(500 + 300*(doc%5)),
			Type: trace.Text,
		})
	}
	return reqs
}

func TestShadowFleetMatchesSimulator(t *testing.T) {
	const capacity = 4000
	const seed = 42
	reqs := shadowTrace(400)

	specs := []string{"LRU", "SIZE", "LFU"}
	var now int64
	fleet, err := NewShadowFleet(ShadowOptions{
		Policies:   specs,
		Capacity:   capacity,
		QueueSlots: len(reqs) + 64, // drop-free
		Seed:       seed,
		Clock:      func() int64 { return now },
	})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	defer fleet.Close()

	for i := range reqs {
		now = reqs[i].Time
		// The deployed outcome is irrelevant to shadow-vs-sim equality;
		// alternate it to exercise both deployed paths.
		fleet.Observe(reqs[i].URL, reqs[i].Size, i%3 == 0)
	}
	fleet.Flush()
	rep := fleet.Report()

	if rep.Dropped != 0 {
		t.Fatalf("drop-free run dropped %d events", rep.Dropped)
	}
	if rep.Enqueued != int64(len(reqs)) || rep.Processed < rep.Enqueued {
		t.Fatalf("enqueued %d processed %d, want %d both", rep.Enqueued, rep.Processed, len(reqs))
	}

	// Each shadow must agree exactly with a fresh simulator run of the
	// same policy over the same trace — the cross-check invariant.
	for i, spec := range specs {
		pol, err := policy.Parse(spec, 0)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		sim := core.New(core.Config{
			Capacity:       capacity,
			Policy:         pol,
			Seed:           seed,
			ExcludeDynamic: true,
		})
		for j := range reqs {
			sim.Access(&reqs[j])
		}
		st := sim.Stats()
		sh := rep.Shadows[i]
		if sh.Policy != pol.Name() {
			t.Errorf("shadow %d policy = %q, want %q", i, sh.Policy, pol.Name())
		}
		if sh.Requests != st.Requests || sh.Hits != st.Hits {
			t.Errorf("%s: shadow %d/%d requests/hits, simulator %d/%d",
				spec, sh.Requests, sh.Hits, st.Requests, st.Hits)
		}
		if sh.Evictions != st.Evictions || sh.UsedBytes != st.Used || sh.Docs != st.Docs {
			t.Errorf("%s: shadow occupancy (%d ev, %d bytes, %d docs) != simulator (%d, %d, %d)",
				spec, sh.Evictions, sh.UsedBytes, sh.Docs, st.Evictions, st.Used, st.Docs)
		}
		if st.Requests > 0 && sh.HR != st.HitRate() {
			t.Errorf("%s: shadow HR %v != simulator %v", spec, sh.HR, st.HitRate())
		}
	}

	// Regret arithmetic: deployed window HR minus the shadow's.
	for _, sh := range rep.Shadows {
		want := rep.Deployed.WindowHR - sh.WindowHR
		if diff := sh.RegretHR - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: RegretHR = %v, want %v", sh.Policy, sh.RegretHR, want)
		}
	}
}

func TestShadowFleetRejectsBadOptions(t *testing.T) {
	if _, err := NewShadowFleet(ShadowOptions{Capacity: 100}); err == nil {
		t.Error("no policies: want error")
	}
	if _, err := NewShadowFleet(ShadowOptions{Policies: []string{"LRU"}}); err == nil {
		t.Error("no capacity: want error")
	}
	if _, err := NewShadowFleet(ShadowOptions{Policies: []string{"LRU", "NOSUCH"}, Capacity: 100}); err == nil {
		t.Error("unknown policy: want error")
	}
	// "lru" and "LRU" canonicalize to the same policy.
	if _, err := NewShadowFleet(ShadowOptions{Policies: []string{"lru", "LRU"}, Capacity: 100}); err == nil {
		t.Error("duplicate policy after canonicalization: want error")
	}
}

func TestShadowFleetLossyQueue(t *testing.T) {
	// A 4-slot ring with the worker wedged behind mu must drop the
	// overflow and count it, without blocking Observe.
	fleet, err := NewShadowFleet(ShadowOptions{
		Policies:   []string{"LRU"},
		Capacity:   1 << 20,
		QueueSlots: 4,
		Clock:      func() int64 { return 0 },
	})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	defer fleet.Close()

	fleet.mu.Lock() // wedge the drain
	for i := 0; i < 64; i++ {
		fleet.Observe(fmt.Sprintf("http://x.test/%d", i), 100, false)
	}
	dropped := fleet.ring.dropped.Load()
	fleet.mu.Unlock()

	if dropped < 60 {
		t.Fatalf("dropped = %d, want >= 60 with a wedged 4-slot ring", dropped)
	}
	fleet.Flush()
	rep := fleet.Report()
	if rep.Enqueued+rep.Dropped != 64 {
		t.Fatalf("enqueued %d + dropped %d != 64", rep.Enqueued, rep.Dropped)
	}
}

func TestShadowFleetConcurrentObserve(t *testing.T) {
	reqs := shadowTrace(50)
	fleet, err := NewShadowFleet(ShadowOptions{
		Policies:   []string{"LRU", "SIZE"},
		Capacity:   1 << 20,
		QueueSlots: 1 << 12,
	})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range reqs {
				fleet.Observe(reqs[i].URL, reqs[i].Size, i%2 == 0)
			}
		}()
	}
	wg.Wait()
	fleet.Close() // final drain
	rep := fleet.Report()
	if rep.Processed != rep.Enqueued {
		t.Fatalf("processed %d != enqueued %d after Close", rep.Processed, rep.Enqueued)
	}
	for _, sh := range rep.Shadows {
		if sh.Requests != rep.Processed {
			t.Fatalf("%s saw %d requests, want %d", sh.Policy, sh.Requests, rep.Processed)
		}
	}
	// Observe after Close is a no-op, not a panic or a queue write.
	fleet.Observe("http://late.test/x", 10, true)
	if got := fleet.Report().Enqueued; got != rep.Enqueued {
		t.Fatalf("Observe after Close enqueued an event: %d != %d", got, rep.Enqueued)
	}
	fleet.Close() // idempotent
}

func TestShadowFleetHandler(t *testing.T) {
	reqs := shadowTrace(100)
	var now int64
	fleet, err := NewShadowFleet(ShadowOptions{
		Policies:   []string{"LRU", "SIZE/NREF"},
		Capacity:   4000,
		QueueSlots: len(reqs) + 8,
		Clock:      func() int64 { return now },
	})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	defer fleet.Close()
	for i := range reqs {
		now = reqs[i].Time
		fleet.Observe(reqs[i].URL, reqs[i].Size, i%2 == 0)
	}
	fleet.Flush()

	h := fleet.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/shadow", nil))
	text := rec.Body.String()
	for _, want := range []string{"POLICY", "LRU", "SIZE/NREF", "deployed:", "queue:"} {
		if !strings.Contains(text, want) {
			t.Errorf("text response missing %q:\n%s", want, text)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/shadow?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var rep ShadowReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("json decode: %v\n%s", err, rec.Body.String())
	}
	if len(rep.Shadows) != 2 || rep.Enqueued != int64(len(reqs)) {
		t.Fatalf("json report = %+v", rep)
	}
}

func TestShadowFleetRegisterMetrics(t *testing.T) {
	reqs := shadowTrace(60)
	var now int64
	fleet, err := NewShadowFleet(ShadowOptions{
		Policies:   []string{"LRU", "SIZE/NREF"},
		Capacity:   4000,
		QueueSlots: len(reqs) + 8,
		Clock:      func() int64 { return now },
	})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	defer fleet.Close()
	reg := obs.NewRegistry()
	fleet.RegisterMetrics(reg)
	for i := range reqs {
		now = reqs[i].Time
		fleet.Observe(reqs[i].URL, reqs[i].Size, i%2 == 0)
	}
	fleet.Flush()

	snap := reg.Snapshot()
	for _, name := range []string{
		"store.shadow.drops",
		"store.shadow.pending",
		"store.shadow.enqueued",
		"store.shadow.processed",
		"store.shadow.LRU.window_hr_bp",
		"store.shadow.LRU.regret_bp",
		"store.shadow.SIZE-NREF.window_hr_bp", // "/" sanitized for the metric namespace
		"store.shadow.SIZE-NREF.requests",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %q", name)
		}
	}
	if got := snap["store.shadow.enqueued"]; got != int64(len(reqs)) {
		t.Errorf("store.shadow.enqueued = %v, want %d", got, len(reqs))
	}
	if got := snap["store.shadow.LRU.requests"]; got != int64(len(reqs)) {
		t.Errorf("store.shadow.LRU.requests = %v, want %d", got, len(reqs))
	}
}

func TestShadowFleetWindowDefaults(t *testing.T) {
	fleet, err := NewShadowFleet(ShadowOptions{Policies: []string{"LRU"}, Capacity: 100})
	if err != nil {
		t.Fatalf("NewShadowFleet: %v", err)
	}
	defer fleet.Close()
	if got := fleet.Window(); got != obs.DefaultWindow {
		t.Fatalf("default Window = %v, want %v", got, obs.DefaultWindow)
	}
	if got := fleet.Policies(); len(got) != 1 || got[0] != "LRU" {
		t.Fatalf("Policies = %v", got)
	}
}
