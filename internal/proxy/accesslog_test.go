package proxy

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"webcache/internal/trace"
)

func TestAccessLoggerEmitsCLF(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello log")
	}))
	defer origin.Close()

	srv := New(NewStore(1<<20, nil))
	var logBuf bytes.Buffer
	logger := NewAccessLogger(srv, &logBuf)
	fixed := time.Unix(811346712, 0)
	logger.SetClock(func() time.Time { return fixed })
	pts := httptest.NewServer(logger)
	defer pts.Close()

	target := origin.URL + "/page.html"
	proxyGet(t, pts.URL, target, nil)
	proxyGet(t, pts.URL, target, nil) // a hit; logged identically
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, stats, err := trace.ReadCLF(&logBuf, "proxylog")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 0 {
		t.Fatalf("proxy emitted malformed log lines: %v", stats.FirstError)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("%d log lines, want 2", len(tr.Requests))
	}
	for i, req := range tr.Requests {
		if req.URL != target {
			t.Errorf("line %d URL %q, want %q", i, req.URL, target)
		}
		if req.Status != 200 || req.Size != int64(len("hello log")) {
			t.Errorf("line %d status/size %d/%d", i, req.Status, req.Size)
		}
		if req.Time != fixed.Unix() {
			t.Errorf("line %d time %d, want %d", i, req.Time, fixed.Unix())
		}
	}

	// The proxy's own log round-trips into the simulator's validator.
	valid, vstats := trace.Validate(tr)
	if vstats.Kept != 2 || len(valid.Requests) != 2 {
		t.Fatalf("validation of proxy log: %+v", vstats)
	}
}

func TestAccessLoggerRecords404(t *testing.T) {
	origin := httptest.NewServer(http.NotFoundHandler())
	defer origin.Close()

	srv := New(NewStore(1<<20, nil))
	var logBuf bytes.Buffer
	logger := NewAccessLogger(srv, &logBuf)
	pts := httptest.NewServer(logger)
	defer pts.Close()

	proxyGet(t, pts.URL, origin.URL+"/missing.html", nil)
	logger.Flush()

	tr, _, err := trace.ReadCLF(&logBuf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 1 || tr.Requests[0].Status != 404 {
		t.Fatalf("log %+v", tr.Requests)
	}
}
