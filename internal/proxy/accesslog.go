package proxy

// The paper's U, G and C workloads are CERN proxy access logs (§2.1).
// This file gives the live proxy the same faculty: it can emit a common
// log format line per request, so a deployment's own traffic can be fed
// straight back into the simulator and analyzer (cmd/websim -trace,
// cmd/analyze -trace), exactly the loop the original study ran.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// recentLines is how many emitted log lines the logger retains for the
// admin /accesslog sample.
const recentLines = 128

// AccessLogger wraps an http.Handler (normally the proxy Server) and
// writes one common-log-format line per completed request. It can
// sample (log every nth request) for high-volume deployments, and
// retains the most recent emitted lines for the admin endpoint.
type AccessLogger struct {
	next http.Handler
	seen atomic.Uint64 // requests observed, pre-sampling

	mu      sync.Mutex
	w       *bufio.Writer // nil: retain-only mode (no log sink)
	now     func() time.Time
	every   uint64 // log every nth request; 1 = all
	lines   uint64 // lines actually emitted
	recent  [recentLines]string
	recentN uint64
}

// NewAccessLogger returns the wrapping handler; log lines go to w. A
// nil w keeps the logger in retain-only mode: lines are still formatted
// into the recent-lines buffer (the admin /accesslog view) but no
// stream is written.
func NewAccessLogger(next http.Handler, w io.Writer) *AccessLogger {
	l := &AccessLogger{next: next, now: time.Now, every: 1}
	if w != nil {
		l.w = bufio.NewWriterSize(w, 32*1024)
	}
	return l
}

// SetClock overrides the logger's time source (tests).
func (l *AccessLogger) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// SetSample makes the logger emit every nth request's line (n <= 1
// logs every request). Sampling is deterministic over the request
// arrival order — request 1, n+1, 2n+1, … are kept — so a sampled log
// scales back to totals by multiplying counts by n.
func (l *AccessLogger) SetSample(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 1 {
		n = 1
	}
	l.every = uint64(n)
}

// Lines returns the number of log lines emitted (post-sampling).
func (l *AccessLogger) Lines() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lines
}

// Recent returns the most recent emitted lines, oldest first.
func (l *AccessLogger) Recent() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.recentN
	if n > recentLines {
		n = recentLines
	}
	out := make([]string, 0, n)
	start := l.recentN - n
	for i := start; i < l.recentN; i++ {
		out = append(out, l.recent[i%recentLines])
	}
	return out
}

// Handler serves the recent sampled lines as plain text — mounted on
// the admin mux at /accesslog.
func (l *AccessLogger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, line := range l.Recent() {
			io.WriteString(w, line)
		}
	})
}

// Flush forces buffered log lines out.
func (l *AccessLogger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	return l.w.Flush()
}

// statusRecorder captures the response status and body size.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler.
func (l *AccessLogger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := l.seen.Add(1)
	rec := &statusRecorder{ResponseWriter: w}
	l.next.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}

	url := r.URL.String()
	if !r.URL.IsAbs() && r.Host != "" {
		url = "http://" + r.Host + r.URL.RequestURI()
	}
	client := r.RemoteAddr
	if i := strings.LastIndexByte(client, ':'); i > 0 {
		client = client[:i]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The sampling decision uses the pre-serve sequence number, so
	// which requests are kept is a function of arrival order alone.
	if l.every > 1 && (seq-1)%l.every != 0 {
		return
	}
	// A request the tracer sampled carries its ID on the response
	// (proxy.ServeHTTP sets X-Trace-Id); append it as an extended
	// key=value field — the same extension mechanism as lastmod=, so
	// trace.ParseCLFLine still ingests the line — and /accesslog rows
	// cross-reference /requests entries.
	traceField := ""
	if id := rec.Header().Get("X-Trace-Id"); id != "" {
		traceField = " trace=" + id
	}
	line := fmt.Sprintf("%s - - [%s] \"%s %s HTTP/1.0\" %d %d%s\n",
		client,
		l.now().UTC().Format("02/Jan/2006:15:04:05 -0700"),
		r.Method, url, rec.status, rec.bytes, traceField)
	l.lines++
	l.recent[l.recentN%recentLines] = line
	l.recentN++
	if l.w != nil {
		l.w.WriteString(line)
	}
}
