package proxy

// The paper's U, G and C workloads are CERN proxy access logs (§2.1).
// This file gives the live proxy the same faculty: it can emit a common
// log format line per request, so a deployment's own traffic can be fed
// straight back into the simulator and analyzer (cmd/websim -trace,
// cmd/analyze -trace), exactly the loop the original study ran.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// AccessLogger wraps an http.Handler (normally the proxy Server) and
// writes one common-log-format line per completed request.
type AccessLogger struct {
	next http.Handler

	mu  sync.Mutex
	w   *bufio.Writer
	now func() time.Time
}

// NewAccessLogger returns the wrapping handler; log lines go to w.
func NewAccessLogger(next http.Handler, w io.Writer) *AccessLogger {
	return &AccessLogger{next: next, w: bufio.NewWriterSize(w, 32*1024), now: time.Now}
}

// SetClock overrides the logger's time source (tests).
func (l *AccessLogger) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Flush forces buffered log lines out.
func (l *AccessLogger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// statusRecorder captures the response status and body size.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler.
func (l *AccessLogger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w}
	l.next.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}

	url := r.URL.String()
	if !r.URL.IsAbs() && r.Host != "" {
		url = "http://" + r.Host + r.URL.RequestURI()
	}
	client := r.RemoteAddr
	if i := strings.LastIndexByte(client, ':'); i > 0 {
		client = client[:i]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s - - [%s] \"%s %s HTTP/1.0\" %d %d\n",
		client,
		l.now().UTC().Format("02/Jan/2006:15:04:05 -0700"),
		r.Method, url, rec.status, rec.bytes)
}
