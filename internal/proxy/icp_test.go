package proxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestICPMarshalRoundTrip(t *testing.T) {
	for _, m := range []*ICPMessage{
		{Opcode: ICPOpQuery, Version: ICPVersion, ReqNum: 42,
			RequestIP: [4]byte{10, 0, 0, 1}, URL: "http://s.vt.edu/a.gif"},
		{Opcode: ICPOpHit, Version: ICPVersion, ReqNum: 7, URL: "http://s.vt.edu/b.html"},
		{Opcode: ICPOpMiss, Version: ICPVersion, ReqNum: 9, URL: ""},
	} {
		data, err := MarshalICP(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalICP(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Opcode != m.Opcode || got.ReqNum != m.ReqNum || got.URL != m.URL {
			t.Fatalf("round trip: %+v != %+v", got, m)
		}
		if m.Opcode == ICPOpQuery && got.RequestIP != m.RequestIP {
			t.Fatalf("requester address lost: %v", got.RequestIP)
		}
	}
}

func TestICPMarshalRoundTripProperty(t *testing.T) {
	f := func(reqNum uint32, urlBytes []byte) bool {
		// NUL bytes cannot appear in ICP URLs (NUL-terminated field).
		url := make([]byte, 0, len(urlBytes))
		for _, b := range urlBytes {
			if b != 0 {
				url = append(url, b)
			}
		}
		if len(url) > 1500 {
			url = url[:1500]
		}
		m := &ICPMessage{Opcode: ICPOpQuery, Version: ICPVersion, ReqNum: reqNum, URL: string(url)}
		data, err := MarshalICP(m)
		if err != nil {
			return false
		}
		got, err := UnmarshalICP(data)
		return err == nil && got.URL == m.URL && got.ReqNum == reqNum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestICPUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalICP([]byte{1, 2, 3}); err == nil {
		t.Fatal("short datagram accepted")
	}
	// Length field exceeding datagram size.
	m := &ICPMessage{Opcode: ICPOpHit, Version: ICPVersion, URL: "http://x/"}
	data, _ := MarshalICP(m)
	data[2], data[3] = 0xff, 0xff
	if _, err := UnmarshalICP(data); err == nil {
		t.Fatal("oversized length field accepted")
	}
	// Query without requester address.
	q := make([]byte, icpHeaderLen)
	q[0] = ICPOpQuery
	q[1] = ICPVersion
	q[2], q[3] = 0, icpHeaderLen
	if _, err := UnmarshalICP(q); err == nil {
		t.Fatal("query without requester address accepted")
	}
}

func TestICPMarshalTooLarge(t *testing.T) {
	huge := make([]byte, maxICPPacket)
	for i := range huge {
		huge[i] = 'a'
	}
	if _, err := MarshalICP(&ICPMessage{Opcode: ICPOpHit, URL: string(huge)}); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestICPResponderHitMiss(t *testing.T) {
	store := NewStore(1<<20, nil)
	store.Put("http://s/x.html", &Object{Body: []byte("cached"), StoredAt: time.Now()})
	resp, err := NewICPResponder(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()

	c := &ICPClient{Timeout: 500 * time.Millisecond}
	sib := []Sibling{{ICPAddr: resp.Addr(), Proxy: "http://unused"}}

	if got := c.QuerySiblings(sib, "http://s/x.html"); got == nil {
		t.Fatal("cached URL reported MISS")
	}
	if got := c.QuerySiblings(sib, "http://s/absent.html"); got != nil {
		t.Fatal("absent URL reported HIT")
	}
	q, h := resp.Stats()
	if q != 2 || h != 1 {
		t.Fatalf("responder stats queries=%d hits=%d", q, h)
	}
	// Peek-based answering must not perturb store recency stats.
	if st := store.Stats(); st.Gets != 0 {
		t.Fatalf("ICP queries counted as Gets: %+v", st)
	}
}

func TestICPQueryNoSiblings(t *testing.T) {
	c := &ICPClient{}
	if got := c.QuerySiblings(nil, "http://x/"); got != nil {
		t.Fatal("no-sibling query returned a sibling")
	}
}

func TestICPQueryDeadSibling(t *testing.T) {
	c := &ICPClient{Timeout: 50 * time.Millisecond}
	start := time.Now()
	got := c.QuerySiblings([]Sibling{{ICPAddr: "127.0.0.1:1", Proxy: "x"}}, "http://x/")
	if got != nil {
		t.Fatal("dead sibling reported HIT")
	}
	if time.Since(start) > time.Second {
		t.Fatal("dead-sibling query did not respect the timeout")
	}
}

// TestSiblingFetch is the full cooperative arrangement: two proxies, one
// holds the document; the other's miss is answered through the sibling
// without touching the origin.
func TestSiblingFetch(t *testing.T) {
	var originHits atomic.Int64
	body := "shared document body"
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits.Add(1)
		w.Header().Set("Last-Modified", "Mon, 17 Sep 1995 14:00:00 GMT")
		fmt.Fprint(w, body)
	}))
	defer origin.Close()

	// Sibling A: will hold the document.
	aStore := NewStore(1<<20, nil)
	a := New(aStore)
	aTS := httptest.NewServer(a)
	defer aTS.Close()
	aICP, err := NewICPResponder(aStore, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aICP.Close()

	// Proxy B: configured with A as a sibling.
	b := New(NewStore(1<<20, nil))
	b.Siblings = []Sibling{{ICPAddr: aICP.Addr(), Proxy: aTS.URL}}
	b.ICP.Timeout = 500 * time.Millisecond
	bTS := httptest.NewServer(b)
	defer bTS.Close()

	target := origin.URL + "/doc.html"

	// Warm sibling A through its own listener.
	proxyGet(t, aTS.URL, target, nil)
	if originHits.Load() != 1 {
		t.Fatalf("origin hits %d after warming A", originHits.Load())
	}

	// B misses locally, ICP finds A, fetch goes through A: the origin
	// must not be contacted again.
	resp, got := proxyGet(t, bTS.URL, target, nil)
	if got != body {
		t.Fatalf("body %q", got)
	}
	if originHits.Load() != 1 {
		t.Fatalf("origin contacted despite sibling hit (%d hits)", originHits.Load())
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if b.Stats().SiblingHits != 1 {
		t.Fatalf("B stats %+v", b.Stats())
	}
	if a.Stats().Hits != 1 {
		t.Fatalf("A stats %+v", a.Stats())
	}

	// B now caches its own copy; a repeat stays local.
	resp, _ = proxyGet(t, bTS.URL, target, nil)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("B did not cache the sibling-served document: %q", resp.Header.Get("X-Cache"))
	}
}

// TestSiblingMissFallsThrough: with an empty sibling, the fetch reaches
// the origin normally.
func TestSiblingMissFallsThrough(t *testing.T) {
	var originHits atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits.Add(1)
		fmt.Fprint(w, "from origin")
	}))
	defer origin.Close()

	emptyStore := NewStore(1<<20, nil)
	emptyICP, err := NewICPResponder(emptyStore, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer emptyICP.Close()

	b := New(NewStore(1<<20, nil))
	b.Siblings = []Sibling{{ICPAddr: emptyICP.Addr(), Proxy: "http://127.0.0.1:1"}}
	b.ICP.Timeout = 200 * time.Millisecond
	bTS := httptest.NewServer(b)
	defer bTS.Close()

	_, body := proxyGet(t, bTS.URL, origin.URL+"/x.html", nil)
	if body != "from origin" {
		t.Fatalf("body %q", body)
	}
	if originHits.Load() != 1 {
		t.Fatalf("origin hits %d", originHits.Load())
	}
	if b.Stats().SiblingHits != 0 {
		t.Fatal("phantom sibling hit recorded")
	}
}
