package proxy

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"webcache/internal/obs"
)

func TestStoreHooksFireOnStore(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewEventRing(64)
	st := NewStore(250, nil)
	st.SetHooks(StoreHooks(reg, ring))

	obj := func(n int) *Object { return &Object{Body: bytes.Repeat([]byte("x"), n)} }

	if _, ok := st.Get("http://a/1"); ok {
		t.Fatal("empty store reported a hit")
	}
	st.Put("http://a/1", obj(100))
	st.Put("http://a/2", obj(100))
	if _, ok := st.Get("http://a/1"); !ok {
		t.Fatal("expected hit")
	}
	// 100+100 resident; +100 forces one eviction.
	st.Put("http://a/3", obj(100))

	if got := reg.Counter("store.hits").Load(); got != 1 {
		t.Errorf("store.hits = %d, want 1", got)
	}
	if got := reg.Counter("store.misses").Load(); got != 1 {
		t.Errorf("store.misses = %d, want 1", got)
	}
	if got := reg.Counter("store.inserts").Load(); got != 3 {
		t.Errorf("store.inserts = %d, want 3", got)
	}
	if got := reg.Counter("store.evictions").Load(); got != 1 {
		t.Errorf("store.evictions = %d, want 1", got)
	}
	if got := reg.Counter("store.evicted_bytes").Load(); got != 100 {
		t.Errorf("store.evicted_bytes = %d, want 100", got)
	}

	hits, misses, evicts, adds := ring.Counts()
	if hits != 1 || misses != 1 || evicts != 1 || adds != 3 {
		t.Errorf("ring counts = (%d,%d,%d,%d), want (1,1,1,3)", hits, misses, evicts, adds)
	}
	// The hook stream must agree with the store's own counters.
	ss := st.Stats()
	if hits != ss.Hits || evicts != ss.Evictions {
		t.Errorf("ring (hits %d, evicts %d) disagrees with StoreStats (%d, %d)",
			hits, evicts, ss.Hits, ss.Evictions)
	}
}

func TestStoreWithoutHooksUnchanged(t *testing.T) {
	st := NewStore(1<<20, nil)
	st.Put("http://a/1", &Object{Body: []byte("hello")})
	if _, ok := st.Get("http://a/1"); !ok {
		t.Fatal("expected hit without hooks")
	}
	if got := st.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestProxyMetricsMatchStats(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "<html>doc</html>")
	}))
	defer origin.Close()

	reg := obs.NewRegistry()
	srv := New(NewStore(1<<20, nil))
	srv.Metrics = NewMetrics(reg)
	pts := httptest.NewServer(srv)
	defer pts.Close()

	for i := 0; i < 3; i++ {
		proxyGet(t, pts.URL, origin.URL+"/page.html", nil)
	}

	st := srv.Stats()
	if st.Requests != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 requests / 2 hits / 1 miss", st)
	}
	checks := map[string]int64{
		"proxy.requests":       st.Requests,
		"proxy.hits":           st.Hits,
		"proxy.misses":         st.Misses,
		"proxy.bytes_served":   st.BytesServed,
		"proxy.bytes_from_hit": st.BytesFromHit,
		"proxy.origin_fetches": 1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Load(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Counter("proxy.origin_bytes").Load(); got != int64(len("<html>doc</html>")) {
		t.Errorf("proxy.origin_bytes = %d, want body length", got)
	}
	lat := reg.Histogram("proxy.latency_ns")
	if lat.Count() != 3 {
		t.Errorf("latency count = %d, want 3", lat.Count())
	}
	if lat.Quantile(0.50) <= 0 {
		t.Errorf("latency p50 = %d, want > 0", lat.Quantile(0.50))
	}
}

// TestAccessLoggerSamplingConcurrent drives many concurrent writers
// through a sampling logger and checks the emitted line count is
// exactly seen/every, with no torn lines.
func TestAccessLoggerSamplingConcurrent(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	var buf syncBuffer
	l := NewAccessLogger(backend, &buf)
	l.SetSample(4)
	pts := httptest.NewServer(l)
	defer pts.Close()

	const writers, per = 8, 25 // 200 requests, every=4 → 50 lines
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < per; i++ {
				req, _ := http.NewRequest(http.MethodGet,
					fmt.Sprintf("%s/doc-%d-%d.html", pts.URL, wkr, i), nil)
				req.Host = "example.test"
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(wkr)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	const wantLines = writers * per / 4
	if got := l.Lines(); got != wantLines {
		t.Errorf("Lines() = %d, want %d", got, wantLines)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != wantLines {
		t.Fatalf("emitted %d lines, want %d", len(lines), wantLines)
	}
	for i, line := range lines {
		if !strings.Contains(line, "\"GET http://example.test/doc-") ||
			!strings.HasSuffix(line, " 200 2") {
			t.Errorf("line %d malformed (torn write?): %q", i, line)
		}
	}
	// Recent() serves the same lines to the admin endpoint.
	recent := l.Recent()
	if len(recent) != wantLines {
		t.Errorf("Recent() kept %d lines, want %d", len(recent), wantLines)
	}
}

func TestAccessLoggerNilWriter(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	l := NewAccessLogger(backend, nil)
	pts := httptest.NewServer(l)
	defer pts.Close()

	req, _ := http.NewRequest(http.MethodGet, pts.URL+"/x.html", nil)
	req.Host = "example.test"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush on nil-writer logger: %v", err)
	}
	if got := l.Lines(); got != 1 {
		t.Fatalf("Lines() = %d, want 1 (retain-only mode still counts)", got)
	}
	if recent := l.Recent(); len(recent) != 1 || !strings.Contains(recent[0], "/x.html") {
		t.Fatalf("Recent() = %v, want the one formatted line", recent)
	}
}

func TestAccessLoggerRecentWraps(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	l := NewAccessLogger(backend, nil)
	pts := httptest.NewServer(l)
	defer pts.Close()
	for i := 0; i < recentLines+10; i++ {
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/d%d", pts.URL, i), nil)
		req.Host = "example.test"
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	recent := l.Recent()
	if len(recent) != recentLines {
		t.Fatalf("Recent() kept %d lines, want %d", len(recent), recentLines)
	}
	if !strings.Contains(recent[len(recent)-1], fmt.Sprintf("/d%d ", recentLines+9)) {
		t.Errorf("newest line missing: %q", recent[len(recent)-1])
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
