package proxy

import (
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
)

// ObjectStore is the contract the serving path programs against: the
// policy-driven object cache behind proxy.Server, the ICP responder,
// livebench's replay, and loadgen's contention harness. Two
// implementations exist — the single-mutex Store and the N-way
// ShardedStore — and every consumer takes the interface so the two are
// interchangeable drop-ins (cmd/proxy selects with -shards).
//
// The determinism knobs (SetSeed, SetClock, SetHooks) are part of the
// interface because livebench's sim-vs-live byte-equivalence check
// needs them on whichever implementation it drives; call them before
// the first Put.
type ObjectStore interface {
	// Get returns the cached object for url, updating the removal
	// policy's recency/frequency bookkeeping on a hit.
	Get(url string) (*Object, bool)
	// Peek reports whether url is cached without touching policy state
	// or statistics (the ICP responder's read).
	Peek(url string) (*Object, bool)
	// Put stores obj under url, evicting victims as needed; it reports
	// whether the object was admitted.
	Put(url string, obj *Object) bool
	// Refresh re-stamps url's stored-at time after a 304 revalidation.
	Refresh(url string)
	// Remove drops url.
	Remove(url string)
	// Len returns the number of cached objects.
	Len() int
	// Stats returns a snapshot of store counters (aggregated across
	// shards for a sharded implementation).
	Stats() StoreStats

	// Reserve pre-sizes maps and policy structures for an expected
	// resident-document count; a pure performance hint, applied only
	// before the store holds objects.
	Reserve(docs int)
	// SetClock overrides the time source (tests, trace-time replays).
	SetClock(now func() time.Time)
	// SetSeed re-seeds the per-entry random tiebreak stream.
	SetSeed(seed uint64)
	// SetHooks attaches cache event hooks (hit/miss/evict/add).
	SetHooks(h core.CacheHooks)

	// SetTouchBuffer selects the hit path: slots > 0 attaches a lossy
	// per-shard touch ring and Get goes read-lock only; 0 (the
	// default) is the drain-synchronous deterministic mode where Get
	// updates the policy inline. Call before serving.
	SetTouchBuffer(slots int)
	// FlushTouches drains any buffered touches into the policy now and
	// returns how many were applied (0 in synchronous mode).
	FlushTouches() int
}

// TracedStore is the optional request-tracing extension of
// ObjectStore: Get/Put variants that record their phases (shard
// route, touch enqueue, eviction chain) into a sampled request's span
// timeline. The proxy type-asserts for it once at construction, so an
// ObjectStore that lacks it is simply served untraced — the same
// graceful-degradation shape as policy.Reserver. A nil rt must behave
// exactly like the untraced method.
type TracedStore interface {
	GetTraced(url string, rt *obs.ReqTrace) (*Object, bool)
	PutTraced(url string, obj *Object, rt *obs.ReqTrace) bool
}

// Both implementations must satisfy the serving-path contract, traced
// extension included.
var (
	_ ObjectStore = (*Store)(nil)
	_ ObjectStore = (*ShardedStore)(nil)
	_ TracedStore = (*Store)(nil)
	_ TracedStore = (*ShardedStore)(nil)
)
