package proxy

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/rng"
)

func mustPolicy(t *testing.T, spec string) policy.Policy {
	t.Helper()
	p, err := policy.Parse(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardedQuotaRemainderRule pins the documented capacity split:
// capacity/shards each, one extra byte to the first capacity%shards
// shards, quotas summing exactly to the requested capacity.
func TestShardedQuotaRemainderRule(t *testing.T) {
	cases := []struct {
		capacity int64
		shards   int
		want     []int64
	}{
		{103, 4, []int64{26, 26, 26, 25}},
		{100, 4, []int64{25, 25, 25, 25}},
		{7, 3, []int64{3, 2, 2}},
		{5, 8, []int64{1, 1, 1, 1, 1, 0, 0, 0}},
		{64 << 10, 1, []int64{64 << 10}},
	}
	for _, tc := range cases {
		s := NewShardedStore(tc.capacity, tc.shards, nil)
		var sum int64
		for i, sh := range s.shards {
			if sh.capacity != tc.want[i] {
				t.Errorf("capacity %d over %d shards: shard %d quota = %d, want %d",
					tc.capacity, tc.shards, i, sh.capacity, tc.want[i])
			}
			sum += sh.capacity
		}
		if sum != tc.capacity {
			t.Errorf("capacity %d over %d shards: quotas sum to %d", tc.capacity, tc.shards, sum)
		}
	}
}

// TestShardedRoutingIsStableAndSpread checks the FNV routing: the same
// URL always lands on the same shard, and a realistic URL population
// reaches every shard.
func TestShardedRoutingIsStableAndSpread(t *testing.T) {
	const shards = 8
	s := NewShardedStore(1<<20, shards, nil)
	seen := make([]int, shards)
	for i := 0; i < 1000; i++ {
		url := fmt.Sprintf("http://server%d.example.com/path/doc%d.html", i%17, i)
		idx := shardIndex(url, shards)
		if again := shardIndex(url, shards); again != idx {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", url, idx, again)
		}
		seen[idx]++
		s.Put(url, &Object{Body: make([]byte, 100), StoredAt: time.Now()})
		if _, ok := s.shards[idx].Peek(url); !ok {
			t.Fatalf("object %q not in its routed shard %d", url, idx)
		}
	}
	for i, n := range seen {
		if n == 0 {
			t.Errorf("shard %d received no URLs out of 1000", i)
		}
	}
	if s.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", s.Len())
	}
}

// TestShardedStatsAggregate checks that the interface-level counters
// are sums over shards.
func TestShardedStatsAggregate(t *testing.T) {
	s := NewShardedStore(1<<20, 4, nil)
	for i := 0; i < 100; i++ {
		url := fmt.Sprintf("http://h/doc%d.html", i)
		s.Put(url, &Object{Body: make([]byte, 64), StoredAt: time.Now()})
		s.Get(url)
		s.Get("http://h/missing.html")
	}
	st := s.Stats()
	if st.Puts != 100 || st.Gets != 200 || st.Hits != 100 || st.Docs != 100 {
		t.Errorf("aggregated stats = %+v", st)
	}
	if st.Used != 100*64 {
		t.Errorf("aggregated Used = %d, want %d", st.Used, 100*64)
	}
	var fromShards StoreStats
	for _, ss := range s.ShardStats() {
		fromShards.Gets += ss.Gets
		fromShards.Hits += ss.Hits
		fromShards.Puts += ss.Puts
		fromShards.Docs += ss.Docs
		fromShards.Used += ss.Used
		fromShards.MaxUsed += ss.MaxUsed
		fromShards.Evictions += ss.Evictions
		fromShards.Capacity += ss.Capacity
		fromShards.TouchDrained += ss.TouchDrained
		fromShards.TouchDropped += ss.TouchDropped
		fromShards.TouchStale += ss.TouchStale
	}
	if fromShards.Capacity != 1<<20 {
		t.Errorf("shard quotas sum to %d, want the requested capacity %d", fromShards.Capacity, 1<<20)
	}
	if !reflect.DeepEqual(st, fromShards) {
		t.Errorf("Stats() = %+v but ShardStats sums to %+v", st, fromShards)
	}
}

// TestShardedOneShardByteEquivalent replays one deterministic op
// sequence — fixed seed, fixed clock, eviction-heavy — against the
// single-mutex Store and a 1-shard ShardedStore, and requires
// identical counters, contents, and sizes. This is the contract that
// makes the sharded store a drop-in: with N=1 the quota rule, the seed
// derivation, and the routing all collapse to the single store's
// behavior exactly.
func TestShardedOneShardByteEquivalent(t *testing.T) {
	const capacity = 48 << 10
	for _, spec := range []string{"SIZE", "LRU", "LFU", "LRU-MIN"} {
		t.Run(spec, func(t *testing.T) {
			single := NewStore(capacity, mustPolicy(t, spec))
			sharded := NewShardedStore(capacity, 1, func() policy.Policy {
				p, _ := policy.Parse(spec, 0)
				return p
			})
			var now int64 = 1_000_000
			clock := func() time.Time { return time.Unix(now, 0) }
			both := []ObjectStore{single, sharded}
			for _, s := range both {
				s.SetSeed(0xfeedface)
				s.SetClock(clock)
			}

			r := rng.New(99)
			urls := make([]string, 400)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://host%d.example.com/doc%d.html", i%7, i)
			}
			for i := 0; i < 8000; i++ {
				now++
				url := urls[r.Intn(len(urls))]
				switch op := r.Intn(10); {
				case op < 5:
					a, aok := single.Get(url)
					b, bok := sharded.Get(url)
					if aok != bok || (aok && len(a.Body) != len(b.Body)) {
						t.Fatalf("op %d: Get(%q) diverged: %v/%v", i, url, aok, bok)
					}
				case op < 9:
					body := make([]byte, 64+r.Intn(512))
					obj := func() *Object { return &Object{Body: body, StoredAt: clock()} }
					if single.Put(url, obj()) != sharded.Put(url, obj()) {
						t.Fatalf("op %d: Put(%q) verdicts diverged", i, url)
					}
				default:
					single.Remove(url)
					sharded.Remove(url)
				}
			}

			if a, b := single.Stats(), sharded.Stats(); !reflect.DeepEqual(a, b) {
				t.Errorf("stats diverged:\n single: %+v\nsharded: %+v", a, b)
			}
			if single.Len() != sharded.Len() {
				t.Errorf("Len diverged: %d vs %d", single.Len(), sharded.Len())
			}
			if single.Stats().Evictions == 0 {
				t.Error("replay exercised no evictions — capacity too large for the test to mean anything")
			}
			for _, url := range urls {
				a, aok := single.Peek(url)
				b, bok := sharded.Peek(url)
				if aok != bok {
					t.Fatalf("Peek(%q) presence diverged: %v vs %v", url, aok, bok)
				}
				if aok && len(a.Body) != len(b.Body) {
					t.Fatalf("Peek(%q) sizes diverged: %d vs %d", url, len(a.Body), len(b.Body))
				}
			}
		})
	}
}

// nilVictimPolicy tracks membership but refuses to name eviction
// victims — the degenerate policy that exposes Put's replace-then-fail
// path.
type nilVictimPolicy struct{ n int }

func (p *nilVictimPolicy) Name() string               { return "NIL-VICTIM" }
func (p *nilVictimPolicy) Add(*policy.Entry)          { p.n++ }
func (p *nilVictimPolicy) Touch(*policy.Entry)        {}
func (p *nilVictimPolicy) Remove(*policy.Entry)       { p.n-- }
func (p *nilVictimPolicy) Victim(int64) *policy.Entry { return nil }
func (p *nilVictimPolicy) Len() int                   { return p.n }

// TestPutReplaceFailureKeepsOldObject is the regression test for the
// replace-then-fail object loss: replacing a cached object with a
// bigger version that cannot be admitted (no victim available) must
// leave the old object cached and the counters consistent, in both
// store implementations.
func TestPutReplaceFailureKeepsOldObject(t *testing.T) {
	impls := map[string]func() ObjectStore{
		"single-mutex": func() ObjectStore { return NewStore(100, &nilVictimPolicy{}) },
		"sharded": func() ObjectStore {
			return NewShardedStore(100, 1, func() policy.Policy { return &nilVictimPolicy{} })
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if !s.Put("http://h/a.html", &Object{Body: make([]byte, 60), StoredAt: time.Now()}) {
				t.Fatal("initial Put(a) rejected")
			}
			if !s.Put("http://h/b.html", &Object{Body: make([]byte, 30), StoredAt: time.Now()}) {
				t.Fatal("Put(b) rejected")
			}
			// Replacing a (60B) with an 80B version needs 110B total with
			// b resident; the policy names no victim, so the Put must fail
			// WITHOUT losing the old a.
			if s.Put("http://h/a.html", &Object{Body: make([]byte, 80), StoredAt: time.Now()}) {
				t.Fatal("oversized replacement admitted")
			}
			obj, ok := s.Get("http://h/a.html")
			if !ok {
				t.Fatal("old object lost by failed replacement")
			}
			if len(obj.Body) != 60 {
				t.Fatalf("object body = %d bytes, want the original 60", len(obj.Body))
			}
			st := s.Stats()
			if st.Used != 90 || st.Docs != 2 || st.Evictions != 0 {
				t.Errorf("stats after failed replacement = %+v, want Used 90, Docs 2, Evictions 0", st)
			}
			if s.Len() != 2 {
				t.Errorf("Len = %d, want 2", s.Len())
			}
			// A replacement that fits must still go through atomically.
			if !s.Put("http://h/a.html", &Object{Body: make([]byte, 10), StoredAt: time.Now()}) {
				t.Fatal("fitting replacement rejected")
			}
			if obj, _ := s.Get("http://h/a.html"); len(obj.Body) != 10 {
				t.Errorf("replacement body = %d bytes, want 10", len(obj.Body))
			}
			if st := s.Stats(); st.Used != 40 || st.Docs != 2 {
				t.Errorf("stats after successful replacement = %+v, want Used 40, Docs 2", st)
			}
		})
	}
}

// TestShardedHooksTagShard wires the per-shard observability hooks and
// checks that every ring event carries the shard that produced it, and
// that the merged counters see all shards.
func TestShardedHooksTagShard(t *testing.T) {
	const shards = 4
	reg := obs.NewRegistry()
	ring := obs.NewEventRing(1 << 10)
	s := NewShardedStore(1<<20, shards, nil)
	s.SetHooksPerShard(ShardedStoreHooks(reg, ring))

	const docs = 200
	for i := 0; i < docs; i++ {
		url := fmt.Sprintf("http://h/doc%d.html", i)
		s.Put(url, &Object{Body: make([]byte, 128), StoredAt: time.Now()})
		s.Get(url)
	}
	if got := reg.Counter("store.inserts").Load(); got != docs {
		t.Errorf("store.inserts = %d, want %d", got, docs)
	}
	if got := reg.Counter("store.hits").Load(); got != docs {
		t.Errorf("store.hits = %d, want %d", got, docs)
	}
	events := ring.Snapshot()
	if len(events) != 2*docs {
		t.Fatalf("ring holds %d events, want %d", len(events), 2*docs)
	}
	shardsSeen := map[int32]bool{}
	for _, ev := range events {
		if ev.Shard < 0 || int(ev.Shard) >= shards {
			t.Fatalf("event carries shard %d outside [0,%d)", ev.Shard, shards)
		}
		shardsSeen[ev.Shard] = true
	}
	if len(shardsSeen) != shards {
		t.Errorf("events reached %d shards, want all %d", len(shardsSeen), shards)
	}
}
