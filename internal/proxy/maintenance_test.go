package proxy

import (
	"fmt"
	"testing"
	"time"

	"webcache/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMaintainerDrainsIdleBuffer covers the gap the background drain
// exists for: touches recorded during a read-only lull (no Put to drain
// opportunistically, backlog below the threshold) still reach the
// policy, and the metrics mirror the store's counters.
func TestMaintainerDrainsIdleBuffer(t *testing.T) {
	s := NewStore(1<<20, nil)
	s.SetTouchBuffer(1024)
	s.Put("http://h/a.html", &Object{Body: make([]byte, 100), StoredAt: time.Now()})
	for i := 0; i < 10; i++ {
		s.Get("http://h/a.html")
	}
	if st := s.Stats(); st.TouchDrained != 0 {
		t.Fatalf("touches drained before the maintainer started: %d", st.TouchDrained)
	}

	reg := obs.NewRegistry()
	m := StartMaintenance(s, MaintOptions{
		DrainEvery:     time.Millisecond,
		RebalanceEvery: -1,
		Metrics:        NewMaintMetrics(reg, 1),
	})
	waitFor(t, 5*time.Second, func() bool { return s.Stats().TouchDrained == 10 }, "background drain")
	waitFor(t, 5*time.Second, func() bool { return reg.Gauge("store.touch_drained").Load() == 10 }, "gauge export")
	if got := reg.Counter("store.drains").Load(); got < 1 {
		t.Errorf("store.drains = %d, want at least 1", got)
	}
	m.Close()
}

// TestMaintainerCloseFlushes pins Close's contract: even with a drain
// period that never fires, stopping the maintainer applies whatever the
// buffer still holds.
func TestMaintainerCloseFlushes(t *testing.T) {
	s := NewStore(1<<20, nil)
	s.SetTouchBuffer(1024)
	s.Put("http://h/a.html", &Object{Body: make([]byte, 100), StoredAt: time.Now()})
	for i := 0; i < 5; i++ {
		s.Get("http://h/a.html")
	}
	m := StartMaintenance(s, MaintOptions{DrainEvery: time.Hour, RebalanceEvery: -1})
	m.Close()
	if st := s.Stats(); st.TouchDrained != 5 {
		t.Errorf("TouchDrained = %d after Close, want the 5 buffered hits", st.TouchDrained)
	}
}

// TestMaintainerRebalancesUnderPressure runs the full background loop
// against a sharded store with a deliberately skewed load and waits for
// the rebalancer to move quota toward the hot shard, with the exposition
// counters and per-shard gauges following.
func TestMaintainerRebalancesUnderPressure(t *testing.T) {
	const capacity = 64 << 10
	const shards = 4
	s := NewShardedStore(capacity, shards, nil)
	reg := obs.NewRegistry()
	m := StartMaintenance(s, MaintOptions{
		DrainEvery:     time.Millisecond,
		RebalanceEvery: time.Millisecond,
		RebalanceStep:  2048,
		Metrics:        NewMaintMetrics(reg, shards),
	})
	defer m.Close()

	hot := urlsForShard(shards, 0, 64)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("store.quota_moved_bytes").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rebalancer never moved quota despite sustained one-shard pressure")
		}
		for _, url := range hot {
			s.Put(url, &Object{Body: make([]byte, 1024), StoredAt: time.Now()})
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Counter("store.rebalances").Load(); got < 1 {
		t.Errorf("store.rebalances = %d, want at least 1", got)
	}
	waitFor(t, 5*time.Second, func() bool {
		return reg.Gauge("store.shard0.quota").Load() > capacity/shards
	}, "hot shard quota gauge above fair share")
	if got := s.Stats().Capacity; got != capacity {
		t.Fatalf("quota sum %d != capacity %d under the background rebalancer", got, capacity)
	}
	if q := s.shards[0].Quota(); q <= capacity/shards {
		t.Errorf("hot shard quota = %d, want above its fair share %d", q, capacity/shards)
	}
}

// TestNewMaintMetricsRegistersSurface checks the full metric surface is
// registered eagerly — the first /metrics scrape shows every name.
func TestNewMaintMetricsRegistersSurface(t *testing.T) {
	reg := obs.NewRegistry()
	NewMaintMetrics(reg, 4)
	snap := reg.Snapshot()
	want := []string{
		"store.touch_drained", "store.touch_dropped", "store.touch_stale",
		"store.drains", "store.rebalances", "store.quota_moved_bytes",
	}
	for i := 0; i < 4; i++ {
		want = append(want,
			fmt.Sprintf("store.shard%d.quota", i),
			fmt.Sprintf("store.shard%d.used", i),
			fmt.Sprintf("store.shard%d.pressure", i))
	}
	for _, name := range want {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %q not registered at construction", name)
		}
	}
	// A single-store metric set registers no per-shard gauges.
	reg2 := obs.NewRegistry()
	NewMaintMetrics(reg2, 1)
	if _, ok := reg2.Snapshot()["store.shard0.quota"]; ok {
		t.Error("single-store metrics registered per-shard gauges")
	}
}
