package proxy

// The Maintainer is the background half of buffered maintenance: a
// single goroutine per store that periodically drains the touch
// buffers (so a read-only lull cannot leave recorded hits unapplied
// forever — Put-driven and threshold-driven drains only fire under
// traffic) and, for a sharded store, runs the occupancy rebalancer.
// Both duties are off the serving path by construction: the drain
// takes each shard's write lock briefly, the rebalancer touches two
// shard locks per transfer.

import (
	"fmt"
	"sync"
	"time"

	"webcache/internal/obs"
)

// MaintMetrics is the observability surface of buffered maintenance
// and rebalancing, resolved from a registry once at startup (the same
// arrangement as proxy.Metrics). The touch gauges mirror the store's
// cumulative Touch* stats; the shard gauges (sharded stores only)
// report each shard's quota, usage, and last-pass eviction pressure.
type MaintMetrics struct {
	TouchDrained *obs.Gauge // store.touch_drained: hits replayed into policies
	TouchDropped *obs.Gauge // store.touch_dropped: hits lost to a full ring
	TouchStale   *obs.Gauge // store.touch_stale: hits whose entry died first
	Drains       *obs.Counter
	Rebalances   *obs.Counter // passes that moved quota
	QuotaMoved   *obs.Counter // store.quota_moved_bytes, cumulative

	shardQuota    []*obs.Gauge
	shardUsed     []*obs.Gauge
	shardPressure []*obs.Gauge
}

// NewMaintMetrics resolves the maintenance metric set from reg. shards
// is the shard count of a sharded store (pass 0 or 1 for a single
// store: no per-shard gauges). Every name is registered immediately so
// the /metrics exposition shows the full surface from the first scrape.
func NewMaintMetrics(reg *obs.Registry, shards int) *MaintMetrics {
	m := &MaintMetrics{
		TouchDrained: reg.Gauge("store.touch_drained"),
		TouchDropped: reg.Gauge("store.touch_dropped"),
		TouchStale:   reg.Gauge("store.touch_stale"),
		Drains:       reg.Counter("store.drains"),
		Rebalances:   reg.Counter("store.rebalances"),
		QuotaMoved:   reg.Counter("store.quota_moved_bytes"),
	}
	if shards > 1 {
		for i := 0; i < shards; i++ {
			m.shardQuota = append(m.shardQuota, reg.Gauge(fmt.Sprintf("store.shard%d.quota", i)))
			m.shardUsed = append(m.shardUsed, reg.Gauge(fmt.Sprintf("store.shard%d.used", i)))
			m.shardPressure = append(m.shardPressure, reg.Gauge(fmt.Sprintf("store.shard%d.pressure", i)))
		}
	}
	return m
}

// MaintOptions configures a Maintainer. Zero values pick defaults.
type MaintOptions struct {
	// DrainEvery is the touch-buffer drain period (default 50ms). Each
	// tick flushes pending recorded hits into the policies.
	DrainEvery time.Duration
	// RebalanceEvery is the quota-rebalance period for sharded stores
	// (default 2s; ignored for a single-mutex store). Negative disables
	// rebalancing.
	RebalanceEvery time.Duration
	// RebalanceStep bounds the bytes moved into one shard per pass
	// (default: an eighth of the fair per-shard share).
	RebalanceStep int64
	// RebalanceFloor is the minimum quota a donor shard keeps (default
	// MinShardQuota of the store's capacity and shard count).
	RebalanceFloor int64
	// Metrics receives drain/rebalance accounting when non-nil.
	Metrics *MaintMetrics
}

// Maintainer is a running background maintenance loop; Close stops it
// and waits for the goroutine to exit.
type Maintainer struct {
	store ObjectStore
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// StartMaintenance launches the maintenance goroutine for store. The
// drain tick applies on every store; the rebalance tick only fires
// when store is a *ShardedStore with more than one shard.
func StartMaintenance(store ObjectStore, o MaintOptions) *Maintainer {
	if o.DrainEvery <= 0 {
		o.DrainEvery = 50 * time.Millisecond
	}
	if o.RebalanceEvery == 0 {
		o.RebalanceEvery = 2 * time.Second
	}
	sharded, _ := store.(*ShardedStore)
	if sharded != nil && sharded.NumShards() < 2 {
		sharded = nil
	}
	if sharded != nil {
		capacity := sharded.Stats().Capacity
		if o.RebalanceStep <= 0 {
			o.RebalanceStep = MinShardQuota(capacity, sharded.NumShards())
		}
		if o.RebalanceFloor <= 0 {
			o.RebalanceFloor = MinShardQuota(capacity, sharded.NumShards())
		}
	}

	m := &Maintainer{store: store, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		drain := time.NewTicker(o.DrainEvery)
		defer drain.Stop()
		var rebalC <-chan time.Time
		if sharded != nil && o.RebalanceEvery > 0 {
			rebal := time.NewTicker(o.RebalanceEvery)
			defer rebal.Stop()
			rebalC = rebal.C
		}
		for {
			select {
			case <-m.stop:
				return
			case <-drain.C:
				if n := store.FlushTouches(); n > 0 && o.Metrics != nil {
					o.Metrics.Drains.Inc()
				}
				if o.Metrics != nil {
					st := store.Stats()
					o.Metrics.TouchDrained.Set(st.TouchDrained)
					o.Metrics.TouchDropped.Set(st.TouchDropped)
					o.Metrics.TouchStale.Set(st.TouchStale)
				}
			case <-rebalC:
				res := sharded.Rebalance(o.RebalanceStep, o.RebalanceFloor)
				if o.Metrics == nil {
					continue
				}
				if res.Moved > 0 {
					o.Metrics.Rebalances.Inc()
					o.Metrics.QuotaMoved.Add(res.Moved)
				}
				for i, st := range sharded.ShardStats() {
					if i >= len(o.Metrics.shardQuota) {
						break
					}
					o.Metrics.shardQuota[i].Set(st.Capacity)
					o.Metrics.shardUsed[i].Set(st.Used)
					o.Metrics.shardPressure[i].Set(res.Pressure[i])
				}
			}
		}
	}()
	return m
}

// Close stops the maintenance loop and waits for it to finish. A final
// flush applies whatever the buffers still hold. Idempotent.
func (m *Maintainer) Close() {
	m.once.Do(func() {
		close(m.stop)
		<-m.done
		m.store.FlushTouches()
	})
}
