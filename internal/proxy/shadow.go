package proxy

// The shadow fleet turns the live proxy into its own policy
// experiment. The paper's question — which removal policy maximizes
// HR/WHR — is answered offline by replaying traces through the
// simulator; a deployed proxy can only report the hit rate of the one
// policy it runs, so the operator never learns what SIZE vs LRU vs LFU
// *would have done* on today's traffic. A ShadowFleet maintains K
// metadata-only ghost caches (URL + size entries, no bodies — each a
// core.Cache at the deployed capacity running a candidate policy) and
// feeds them asynchronously off the live request stream: the serving
// path pays exactly one non-blocking enqueue per request into a lossy
// ring (the touchbuf.go discipline — drops are counted, never block),
// and a single worker goroutine replays the stream into every shadow.
//
// Each shadow reports lifetime and sliding-window HR/WHR plus
// *regret*: the deployed policy's window hit rate minus the shadow's.
// Negative regret means the shadow policy would have served more hits
// over the recent window — the signal to consider switching. The
// deployed side of that comparison is computed from the same event
// stream the shadows consume (each event carries the deployed
// hit/miss outcome), so queue drops degrade both sides of the regret
// equally and the windows stay like-for-like.
//
// Because a shadow is a real core.Cache, a drop-free run over a fixed
// trace reproduces the simulator's numbers exactly — livebench
// cross-checks a shadow's end-of-run HR against a fresh simulation of
// the same trace with the same policy, tying live observability
// byte-for-byte back to the paper's machinery.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// DefaultShadowQueueSlots sizes the fleet's lossy event ring when the
// options leave it zero: large enough that a worker keeping pace never
// drops, small enough to bound memory at a few hundred KB.
const DefaultShadowQueueSlots = 1 << 14

// shadowEvent is one observed request outcome: what was asked for and
// whether the deployed store had it. Events are pooled; the drain
// returns them after replay.
type shadowEvent struct {
	url  string
	size int64
	at   int64
	hit  bool
}

var shadowEventPool = sync.Pool{New: func() any { return new(shadowEvent) }}

// shadowRing is the fleet's lossy MPSC queue — the touchBuffer
// discipline over request events: a ticket per enqueue, CAS-published
// slots so a full slot drops the new event instead of overwriting an
// undrained one, tail advanced only by the drain.
type shadowRing struct {
	slots []atomic.Pointer[shadowEvent]
	head  atomic.Uint64
	tail  atomic.Uint64
	// dropped counts every lost event: full-ring fast-path drops (no
	// ticket taken) plus slot collisions discovered by the CAS. collided
	// counts only the latter, so enqueued = head − collided.
	dropped  atomic.Int64
	collided atomic.Int64
}

// full reports whether the ring has no free slots. The answer can be
// stale by a concurrent drain or enqueue — the CAS in record stays the
// authority — but it lets an overloaded hot path drop in two atomic
// loads instead of a pool round-trip plus a wasted ticket.
func (b *shadowRing) full() bool {
	return b.head.Load()-b.tail.Load() >= uint64(len(b.slots))
}

// record enqueues one event, or counts a drop when the slot is still
// occupied. Never blocks.
func (b *shadowRing) record(ev *shadowEvent) bool {
	t := b.head.Add(1) - 1
	if !b.slots[t%uint64(len(b.slots))].CompareAndSwap(nil, ev) {
		ev.url = ""
		shadowEventPool.Put(ev)
		b.dropped.Add(1)
		b.collided.Add(1)
		return false
	}
	return true
}

func (b *shadowRing) pending() int64 {
	return int64(b.head.Load() - b.tail.Load())
}

// shadow is one ghost cache: a candidate policy simulated at deployed
// capacity over the live URL/size stream.
type shadow struct {
	name  string
	cache *core.Cache
	hr    *obs.WindowedRate // unit-weighted window hit rate
	whr   *obs.WindowedRate // byte-weighted window hit rate
}

// ShadowOptions configures a ShadowFleet.
type ShadowOptions struct {
	// Policies are the candidate policy specs (policy.Parse syntax:
	// "LRU", "SIZE", "LFU", "SIZE/NREF", ...). One ghost cache per spec.
	Policies []string
	// Capacity is each ghost cache's byte capacity; normally the
	// deployed store's capacity so the comparison is like-for-like.
	Capacity int64
	// QueueSlots sizes the lossy event ring (0 = DefaultShadowQueueSlots).
	// For a drop-free deterministic run, size it to the trace.
	QueueSlots int
	// DayStart anchors day-based policy keys (DAY(ATIME), Pitkow/Recker).
	DayStart int64
	// Seed derives each ghost cache's random tiebreak stream. Every
	// shadow gets the same seed, so policies draw identical random
	// sequences per insert — the simulator's arrangement.
	Seed uint64
	// Window and Buckets set the sliding-window geometry for HR/WHR and
	// regret (zero = obs.DefaultWindow / obs.DefaultWindowBuckets).
	Window  time.Duration
	Buckets int
	// Clock supplies event timestamps in Unix seconds; livebench injects
	// the simulated trace clock. Nil = wall clock.
	Clock func() int64
}

// ShadowFleet runs the ghost caches. Observe is safe for concurrent
// use and never blocks; everything else happens on the fleet's worker
// goroutine or under its mutex.
type ShadowFleet struct {
	capacity int64
	window   time.Duration
	clock    func() int64
	// stampOnDrain moves the clock read off the hot path: with no
	// injected Clock, Observe leaves events unstamped and the drain
	// stamps each batch with one wall-clock read. An injected Clock
	// (livebench's simulated time) stamps at enqueue, where the caller's
	// notion of "now" is exact.
	stampOnDrain bool

	ring   *shadowRing
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	processed atomic.Int64

	// mu serializes the drain (worker or Flush) with report snapshots;
	// the ghost caches and deployed window rates are only touched under
	// it.
	mu      sync.Mutex
	shadows []*shadow
	depHR   *obs.WindowedRate
	depWHR  *obs.WindowedRate
}

// NewShadowFleet builds the ghost caches and starts the drain worker.
// Duplicate policies (after canonicalization) are rejected: each
// shadow must answer for a distinct candidate.
func NewShadowFleet(opts ShadowOptions) (*ShadowFleet, error) {
	if len(opts.Policies) == 0 {
		return nil, fmt.Errorf("proxy: shadow fleet needs at least one policy")
	}
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("proxy: shadow fleet needs a positive capacity")
	}
	slots := opts.QueueSlots
	if slots <= 0 {
		slots = DefaultShadowQueueSlots
	}
	clock := opts.Clock
	stampOnDrain := clock == nil
	if clock == nil {
		clock = func() int64 { return time.Now().Unix() }
	}
	f := &ShadowFleet{
		capacity:     opts.Capacity,
		clock:        clock,
		stampOnDrain: stampOnDrain,
		ring:         &shadowRing{slots: make([]atomic.Pointer[shadowEvent], slots)},
		notify:       make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		depHR:        obs.NewWindowedRate(opts.Window, opts.Buckets),
		depWHR:       obs.NewWindowedRate(opts.Window, opts.Buckets),
	}
	f.window = f.depHR.Window()
	seen := make(map[string]bool, len(opts.Policies))
	for _, spec := range opts.Policies {
		name, newPolicy, err := policy.Factory(spec, opts.DayStart)
		if err != nil {
			return nil, fmt.Errorf("proxy: shadow policy %q: %w", spec, err)
		}
		if seen[name] {
			return nil, fmt.Errorf("proxy: duplicate shadow policy %q", name)
		}
		seen[name] = true
		f.shadows = append(f.shadows, &shadow{
			name: name,
			cache: core.New(core.Config{
				Capacity:       opts.Capacity,
				Policy:         newPolicy(),
				Seed:           opts.Seed,
				ExcludeDynamic: true,
			}),
			hr:  obs.NewWindowedRate(opts.Window, opts.Buckets),
			whr: obs.NewWindowedRate(opts.Window, opts.Buckets),
		})
	}
	go f.worker()
	return f, nil
}

// Policies returns the canonical names of the fleet's candidates, in
// fleet order.
func (f *ShadowFleet) Policies() []string {
	names := make([]string, len(f.shadows))
	for i, sh := range f.shadows {
		names[i] = sh.name
	}
	return names
}

// Window returns the sliding-window length the fleet's rates cover.
func (f *ShadowFleet) Window() time.Duration { return f.window }

// Observe records one request outcome: the URL and response size, and
// whether the deployed store served it as a hit. This is the hot-path
// entry point — one pooled event, one atomic ticket, one CAS publish,
// one channel nudge; a full ring drops the event (counted) rather than
// block the request. In wall-clock mode the timestamp is deferred to
// the drain, so the serving path never reads the clock.
func (f *ShadowFleet) Observe(url string, size int64, deployedHit bool) {
	if f.closed.Load() {
		return
	}
	if f.ring.full() {
		// Saturated fleet: drop before paying for a pooled event or a
		// ticket, so shadowing that has fallen behind costs the serving
		// path almost nothing.
		f.ring.dropped.Add(1)
		return
	}
	ev := shadowEventPool.Get().(*shadowEvent)
	var at int64
	if !f.stampOnDrain {
		at = f.clock()
	}
	ev.url, ev.size, ev.at, ev.hit = url, size, at, deployedHit
	if f.ring.record(ev) {
		select {
		case f.notify <- struct{}{}:
		default: // worker already has a wakeup pending
		}
	}
}

// enqueuedCount derives the successful-enqueue total from the ring:
// every ticketed Observe either published or collided — no separate
// hot-path counter needed.
func (f *ShadowFleet) enqueuedCount() int64 {
	return int64(f.ring.head.Load()) - f.ring.collided.Load()
}

// worker drains the ring whenever nudged, until Close.
func (f *ShadowFleet) worker() {
	defer close(f.done)
	for {
		select {
		case <-f.notify:
			f.Flush()
		case <-f.stop:
			return
		}
	}
}

// Flush drains every pending event into the shadows now and returns
// the number applied. Livebench calls it before reading end-of-run
// numbers; the worker calls it on every wakeup.
func (f *ShadowFleet) Flush() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drainLocked()
}

// drainLocked replays pending events in ticket order. Caller holds
// f.mu. Slots whose writer is still mid-publish are skipped — like a
// touch drain, the event is then applied by a later drain or dropped
// by a later writer reusing the slot.
func (f *ShadowFleet) drainLocked() int {
	b := f.ring
	head := b.head.Load()
	tail := b.tail.Load()
	if tail == head {
		return 0
	}
	n := uint64(len(b.slots))
	applied := 0
	var batchAt int64
	if f.stampOnDrain {
		batchAt = f.clock()
	}
	for t := tail; t != head; t++ {
		ev := b.slots[t%n].Swap(nil)
		if ev == nil {
			continue
		}
		if f.stampOnDrain {
			// One clock read per batch: events drained together share a
			// timestamp, which at the trace's one-second resolution is the
			// same coarsening a logged trace would apply.
			ev.at = batchAt
		}
		f.applyLocked(ev)
		ev.url = ""
		shadowEventPool.Put(ev)
		applied++
	}
	b.tail.Store(head)
	f.processed.Add(int64(applied))
	return applied
}

// applyLocked feeds one event to the deployed window rates and every
// ghost cache.
func (f *ShadowFleet) applyLocked(ev *shadowEvent) {
	f.depHR.Observe(ev.hit)
	if ev.hit {
		f.depWHR.Record(ev.size, ev.size)
	} else {
		f.depWHR.Record(0, ev.size)
	}
	req := trace.Request{
		Time:   ev.at,
		URL:    ev.url,
		Status: http.StatusOK,
		Size:   ev.size,
		Type:   trace.ClassifyURL(ev.url),
	}
	for _, sh := range f.shadows {
		hit := sh.cache.Access(&req)
		sh.hr.Observe(hit)
		if hit {
			sh.whr.Record(ev.size, ev.size)
		} else {
			sh.whr.Record(0, ev.size)
		}
	}
}

// Close stops the worker and drains whatever is still queued, so
// end-of-run reports are complete. Idempotent; Observe after Close is
// a no-op.
func (f *ShadowFleet) Close() {
	if f.closed.Swap(true) {
		return
	}
	close(f.stop)
	<-f.done
	f.Flush()
}

// ShadowSnapshot is one ghost cache's report row.
type ShadowSnapshot struct {
	Policy   string `json:"policy"`
	Requests int64  `json:"requests"`
	Hits     int64  `json:"hits"`
	// Lifetime rates, in [0, 1].
	HR  float64 `json:"hr"`
	WHR float64 `json:"whr"`
	// Window rates over the fleet's sliding window.
	WindowHR  float64 `json:"window_hr"`
	WindowWHR float64 `json:"window_whr"`
	// Regret = deployed window rate − shadow window rate: negative means
	// this policy would have out-hit the deployed one recently.
	RegretHR  float64 `json:"regret_hr"`
	RegretWHR float64 `json:"regret_whr"`

	Evictions int64 `json:"evictions"`
	UsedBytes int64 `json:"used_bytes"`
	Docs      int64 `json:"docs"`
}

// ShadowDeployed is the deployed store's side of the regret
// comparison, computed from the same event stream the shadows consume.
type ShadowDeployed struct {
	WindowHR  float64 `json:"window_hr"`
	WindowWHR float64 `json:"window_whr"`
	HR        float64 `json:"hr"`
	WHR       float64 `json:"whr"`
}

// ShadowReport is the fleet's full snapshot.
type ShadowReport struct {
	Capacity  int64            `json:"capacity"`
	WindowSec float64          `json:"window_sec"`
	Enqueued  int64            `json:"enqueued"`
	Processed int64            `json:"processed"`
	Dropped   int64            `json:"dropped"`
	Pending   int64            `json:"pending"`
	Deployed  ShadowDeployed   `json:"deployed"`
	Shadows   []ShadowSnapshot `json:"shadows"`
}

// Report drains pending events and snapshots every shadow.
func (f *ShadowFleet) Report() ShadowReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drainLocked()
	rep := ShadowReport{
		Capacity:  f.capacity,
		WindowSec: f.window.Seconds(),
		Enqueued:  f.enqueuedCount(),
		Processed: f.processed.Load(),
		Dropped:   f.ring.dropped.Load(),
		Pending:   f.ring.pending(),
		Deployed: ShadowDeployed{
			WindowHR:  f.depHR.Rate(),
			WindowWHR: f.depWHR.Rate(),
			HR:        f.depHR.LifetimeRate(),
			WHR:       f.depWHR.LifetimeRate(),
		},
	}
	for _, sh := range f.shadows {
		st := sh.cache.Stats()
		rep.Shadows = append(rep.Shadows, ShadowSnapshot{
			Policy:    sh.name,
			Requests:  st.Requests,
			Hits:      st.Hits,
			HR:        st.HitRate(),
			WHR:       st.WeightedHitRate(),
			WindowHR:  sh.hr.Rate(),
			WindowWHR: sh.whr.Rate(),
			RegretHR:  rep.Deployed.WindowHR - sh.hr.Rate(),
			RegretWHR: rep.Deployed.WindowWHR - sh.whr.Rate(),
			Evictions: st.Evictions,
			UsedBytes: st.Used,
			Docs:      st.Docs,
		})
	}
	return rep
}

// sanitizeMetricName maps a policy name into the dotted metric
// namespace ("SIZE/NREF" → "SIZE-NREF").
func sanitizeMetricName(name string) string {
	return strings.ReplaceAll(name, "/", "-")
}

// bp converts a rate in [0, 1] to integer basis points, the registry's
// int64 currency for rates (5037 = 50.37%).
func bp(rate float64) int64 { return int64(rate*10000 + 0.5) }

// RegisterMetrics exposes the fleet on reg under store.shadow.*:
// queue health as computed gauges (drops, pending, enqueued,
// processed) and, per shadow, window HR/WHR/regret in basis points
// plus occupancy — all evaluated at scrape time, no refresh ticker.
// Rates read the windowed state under f.mu; the registry evaluates
// functions while holding its own mutex, and the fleet never calls
// into the registry, so the lock order is always registry → fleet.
func (f *ShadowFleet) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("store.shadow.drops", func() int64 { return f.ring.dropped.Load() })
	reg.GaugeFunc("store.shadow.pending", func() int64 { return f.ring.pending() })
	reg.GaugeFunc("store.shadow.enqueued", func() int64 { return f.enqueuedCount() })
	reg.GaugeFunc("store.shadow.processed", func() int64 { return f.processed.Load() })
	for _, sh := range f.shadows {
		sh := sh
		prefix := "store.shadow." + sanitizeMetricName(sh.name)
		reg.GaugeFunc(prefix+".window_hr_bp", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return bp(sh.hr.Rate())
		})
		reg.GaugeFunc(prefix+".window_whr_bp", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return bp(sh.whr.Rate())
		})
		reg.GaugeFunc(prefix+".regret_bp", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return bp(f.depHR.Rate()) - bp(sh.hr.Rate())
		})
		reg.GaugeFunc(prefix+".requests", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return sh.cache.Stats().Requests
		})
		reg.GaugeFunc(prefix+".hits", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return sh.cache.Stats().Hits
		})
		reg.GaugeFunc(prefix+".evictions", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return sh.cache.Stats().Evictions
		})
		reg.GaugeFunc(prefix+".used_bytes", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return sh.cache.Used()
		})
		reg.GaugeFunc(prefix+".docs", func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return sh.cache.Stats().Docs
		})
	}
}

// Handler returns the /shadow admin endpoint: a sorted text table by
// default, the full ShadowReport as JSON with ?format=json.
func (f *ShadowFleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := f.Report()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "shadow fleet: %d policies at capacity %d, window %s\n",
			len(rep.Shadows), rep.Capacity, f.window)
		fmt.Fprintf(w, "queue: enqueued %d  processed %d  dropped %d  pending %d\n",
			rep.Enqueued, rep.Processed, rep.Dropped, rep.Pending)
		fmt.Fprintf(w, "deployed: window HR %.2f%%  window WHR %.2f%%  lifetime HR %.2f%%  WHR %.2f%%\n\n",
			rep.Deployed.WindowHR*100, rep.Deployed.WindowWHR*100,
			rep.Deployed.HR*100, rep.Deployed.WHR*100)
		fmt.Fprintf(w, "%-18s %10s %10s %9s %9s %9s %9s %8s %12s\n",
			"POLICY", "REQS", "HITS", "winHR%", "winWHR%", "regHR", "regWHR", "DOCS", "USED")
		rows := append([]ShadowSnapshot(nil), rep.Shadows...)
		// Best recent performer first: most negative regret = biggest win
		// over the deployed policy.
		sort.Slice(rows, func(i, j int) bool { return rows[i].RegretHR < rows[j].RegretHR })
		for _, row := range rows {
			fmt.Fprintf(w, "%-18s %10d %10d %9.2f %9.2f %+9.4f %+9.4f %8d %12d\n",
				row.Policy, row.Requests, row.Hits,
				row.WindowHR*100, row.WindowWHR*100,
				row.RegretHR, row.RegretWHR,
				row.Docs, row.UsedBytes)
		}
	})
}
