package proxy

// The touch buffer is what makes the hit path read-mostly lock-free:
// instead of write-locking the shard to re-sort the policy heap on
// every hit (PR 6's bottleneck — sharding bought parallelism between
// shards but every hit still serialized within one), Get records the
// hit in a fixed-size ring of atomic slots and returns under the read
// lock. The ring is drained in batches under the write lock — by the
// next Put before it picks victims, by the Get that crosses the
// pending threshold (via TryLock, never blocking the hit), and by the
// background Maintainer — replaying the recorded hits into the policy
// in ticket order through policy.ReplayTouches.
//
// The buffer is deliberately lossy, the "lightweight buffered
// maintenance" arrangement production caches use (BP-Wrapper, Caffeine
// and the size-aware cache of Einziger et al. all decouple access
// recording from policy maintenance this way): when the ring is full
// the hit's recency update is dropped and counted, never blocked on.
// A dropped touch only costs policy fidelity — the object is still
// served — and under the zipf traffic that fills buffers fastest, the
// hot documents that overflow the ring are exactly the ones whose
// extra touches carry the least new information.
//
// Loss and ordering semantics, precisely:
//
//   - A recorded touch is applied at most once.
//   - Touches from one goroutine between two drains are applied in
//     recorded order (tickets are monotonic; the drain walks them in
//     order). Cross-goroutine order is the ticket order, which is a
//     valid linearization of the concurrent hits.
//   - A touch is dropped (and counted) when its slot still holds an
//     undrained record — the ring lapped the drainer.
//   - A writer that stalls between taking its ticket and publishing
//     the record can miss its drain window; its touch is then either
//     applied by a later drain or dropped by a later writer reusing
//     the slot. Still at-most-once, still counted on the drop side.
//   - A drained touch whose entry has since been evicted, removed, or
//     replaced is discarded as stale (pointer-identity check against
//     the live entry map) — the policy never sees a dead entry.
//
// Buffer size 0 disables the buffer entirely: Get takes the write lock
// and updates the policy inline, byte-for-byte the pre-buffer hit
// path. That is the drain-synchronous deterministic mode livebench and
// the equivalence tests run in, and it is the default everywhere a
// fixed eviction sequence matters.

import (
	"sync"
	"sync/atomic"

	"webcache/internal/policy"
)

// touchRec is one buffered hit. Records are pooled: the drain returns
// them after replay, so a steady hit stream allocates only while the
// pool warms up.
type touchRec struct {
	e  *policy.Entry
	at int64
}

var touchRecPool = sync.Pool{New: func() any { return new(touchRec) }}

// touchBuffer is the lossy ring. head is the global ticket counter
// (one per recorded hit, taken with a single atomic add); slot i%len
// is published with a CAS from nil so a full slot drops the new record
// instead of overwriting an undrained one. tail is the drain cursor —
// only advanced under the store's write lock, but read racily by the
// pending-count heuristic, hence atomic.
type touchBuffer struct {
	slots   []atomic.Pointer[touchRec]
	head    atomic.Uint64
	tail    atomic.Uint64
	dropped atomic.Int64
}

func newTouchBuffer(slots int) *touchBuffer {
	return &touchBuffer{slots: make([]atomic.Pointer[touchRec], slots)}
}

// record buffers one hit and reports whether the pending backlog has
// crossed the opportunistic-drain threshold (half the ring), so the
// caller can attempt a non-blocking drain.
func (b *touchBuffer) record(e *policy.Entry, at int64) bool {
	t := b.head.Add(1) - 1
	rec := touchRecPool.Get().(*touchRec)
	rec.e, rec.at = e, at
	if !b.slots[t%uint64(len(b.slots))].CompareAndSwap(nil, rec) {
		rec.e = nil
		touchRecPool.Put(rec)
		b.dropped.Add(1)
		return false
	}
	return t-b.tail.Load() >= uint64(len(b.slots)/2)
}

// pending estimates the undrained backlog (racy reads; heuristic only).
func (b *touchBuffer) pending() int64 {
	return int64(b.head.Load() - b.tail.Load())
}
