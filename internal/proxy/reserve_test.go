package proxy

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"webcache/internal/policy"
)

// fillMallocs populates a fresh store with docs documents and returns
// the number of heap allocations the fill performed.
func fillMallocs(docs int, reserve bool) uint64 {
	// A heap-backed policy, so policy.Reserver.Reserve has a backing
	// array to grow — the structural list/bucket backends mostly
	// pre-size nothing.
	pol := policy.NewSorted([]policy.Key{policy.KeyDayATime}, 0)
	s := NewStore(int64(docs)*1024, pol)
	if reserve {
		s.Reserve(docs)
	}
	urls := make([]string, docs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://reserve.example.com/doc%d", i)
	}
	body := make([]byte, 16) // well under the per-doc budget: no evictions
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, u := range urls {
		s.Put(u, &Object{Body: body})
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestReserveAllocationPin pins the point of Store.Reserve: with the
// expected-documents hint, filling the store to that population must
// allocate measurably less than growing incrementally — the map
// re-hashes and heap re-sizes are paid once, up front, outside the
// serving path.
func TestReserveAllocationPin(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1)) // keep GC assists out of the malloc counts
	const docs = 4096
	fillMallocs(docs, true) // warm both code paths once
	cold := fillMallocs(docs, false)
	reserved := fillMallocs(docs, true)
	// Incremental growth re-hashes two maps (~docs/8 buckets each,
	// doubling) and re-sizes the policy array; a generous floor of 32
	// saved allocations keeps the pin robust while still failing if
	// Reserve stops reaching either the maps or the policy.
	if reserved+32 > cold {
		t.Fatalf("Reserve saved too little: %d mallocs reserved vs %d unreserved", reserved, cold)
	}
	t.Logf("fill of %d docs: %d mallocs reserved, %d unreserved", docs, reserved, cold)
}

// TestShardedReserve checks the hint spreads across shards: after
// Reserve(docs), each shard accepts its share of a full-population fill
// without violating its quota bookkeeping, and a zero/negative hint is
// a no-op.
func TestShardedReserve(t *testing.T) {
	s := NewShardedStore(1<<20, 4, nil)
	s.Reserve(1000)
	s.Reserve(0)  // no-op
	s.Reserve(-5) // no-op
	for i := 0; i < 256; i++ {
		url := fmt.Sprintf("http://sharded.example.com/doc%d", i)
		if !s.Put(url, &Object{Body: make([]byte, 8)}) {
			t.Fatalf("put %d rejected after Reserve", i)
		}
	}
	if got := s.Len(); got != 256 {
		t.Fatalf("Len = %d after 256 puts, want 256", got)
	}
}

// TestReserveAfterServingIsNoop pins the documented contract: Reserve
// on a store already holding objects must not clear or replace the
// maps.
func TestReserveAfterServingIsNoop(t *testing.T) {
	s := NewStore(1<<20, nil)
	s.Put("http://late.example.com/a", &Object{Body: []byte("x")})
	s.Reserve(1024)
	if _, ok := s.Get("http://late.example.com/a"); !ok {
		t.Fatal("Reserve after first Put dropped a cached object")
	}
}
