package proxy

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"webcache/internal/rng"
)

// victimOrder empties a store through its policy's victim sequence —
// the total removal order every eviction decision flows from. Test-only
// and single-threaded.
func victimOrder(s *Store) []string {
	var order []string
	for {
		v := s.pol.Victim(1)
		if v == nil {
			return order
		}
		order = append(order, v.URL)
		s.Remove(v.URL)
	}
}

// TestBufferedStoreMatchesInline is the tentpole's correctness
// property: for a single writer with a ring large enough to never drop,
// the buffered hit path is observably equivalent to the inline one —
// identical counters, contents, entry state, and policy victim order —
// because drains replay the recorded touches in order before any
// operation that consults policy state (Put's victim selection).
//
// Drains fire at their natural times during the run (every Put, plus
// threshold TryLocks), not just at the end, so the test covers touches
// applied in mid-stream chunks interleaved with removals and
// replacements — the schedules a real serving process produces.
func TestBufferedStoreMatchesInline(t *testing.T) {
	const capacity = 48 << 10
	for _, spec := range []string{"SIZE", "LRU", "LFU", "LRU-MIN"} {
		t.Run(spec, func(t *testing.T) {
			inline := NewStore(capacity, mustPolicy(t, spec))
			buffered := NewStore(capacity, mustPolicy(t, spec))
			buffered.SetTouchBuffer(1 << 15)
			var now int64 = 1_000_000
			clock := func() time.Time { return time.Unix(now, 0) }
			for _, s := range []*Store{inline, buffered} {
				s.SetSeed(0xfeedface)
				s.SetClock(clock)
			}

			r := rng.New(321)
			urls := make([]string, 300)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://host%d.example.com/doc%d.html", i%5, i)
			}
			for i := 0; i < 10000; i++ {
				now++
				url := urls[r.Intn(len(urls))]
				switch op := r.Intn(10); {
				case op < 6:
					a, aok := inline.Get(url)
					b, bok := buffered.Get(url)
					if aok != bok || (aok && len(a.Body) != len(b.Body)) {
						t.Fatalf("op %d: Get(%q) diverged: %v/%v", i, url, aok, bok)
					}
				case op < 9:
					body := make([]byte, 64+r.Intn(512))
					obj := func() *Object { return &Object{Body: body, StoredAt: clock()} }
					if inline.Put(url, obj()) != buffered.Put(url, obj()) {
						t.Fatalf("op %d: Put(%q) verdicts diverged", i, url)
					}
				default:
					inline.Remove(url)
					buffered.Remove(url)
				}
			}
			buffered.FlushTouches()

			a, b := inline.Stats(), buffered.Stats()
			if b.TouchDropped != 0 {
				t.Fatalf("buffered run dropped %d touches — ring too small for exact equivalence", b.TouchDropped)
			}
			if a.TouchDrained != 0 || a.TouchStale != 0 {
				t.Fatalf("inline store reports buffered-path counters: %+v", a)
			}
			// The Touch* accounting is the buffered path's own bookkeeping;
			// everything else must match exactly.
			b.TouchDrained, b.TouchStale = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("stats diverged:\n  inline: %+v\nbuffered: %+v", a, b)
			}
			if a.Evictions == 0 {
				t.Error("replay exercised no evictions — capacity too large for the test to mean anything")
			}
			for _, url := range urls {
				x, xok := inline.Peek(url)
				y, yok := buffered.Peek(url)
				if xok != yok {
					t.Fatalf("Peek(%q) presence diverged: %v vs %v", url, xok, yok)
				}
				if xok && len(x.Body) != len(y.Body) {
					t.Fatalf("Peek(%q) sizes diverged: %d vs %d", url, len(x.Body), len(y.Body))
				}
				if xok {
					ea, eb := inline.entries[url], buffered.entries[url]
					if ea.ATime != eb.ATime || ea.NRef != eb.NRef {
						t.Fatalf("entry %q state diverged: inline ATime=%d NRef=%d, buffered ATime=%d NRef=%d",
							url, ea.ATime, ea.NRef, eb.ATime, eb.NRef)
					}
				}
			}
			vi, vb := victimOrder(inline), victimOrder(buffered)
			if len(vi) != len(vb) {
				t.Fatalf("victim drains returned %d vs %d entries", len(vi), len(vb))
			}
			for i := range vi {
				if vi[i] != vb[i] {
					t.Fatalf("victim order diverged at position %d: inline %s, buffered %s", i, vi[i], vb[i])
				}
			}
		})
	}
}
