package proxy

// The live serving path's observability glue: the same obs.Registry /
// obs.EventRing primitives the simulator feeds, resolved once at
// startup so the per-request cost is an atomic add per counter — the
// zero-overhead contract of core.CacheHooks extends to the proxy. With
// no Metrics attached every instrumentation site is one nil check.

import (
	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
)

// Metrics is the proxy's counter bundle, resolved from a registry once
// at construction. Counter names mirror the Stats fields plus the
// origin-side and latency measures the in-memory Stats never had.
type Metrics struct {
	Requests    *obs.Counter
	Hits        *obs.Counter
	Revalidated *obs.Counter
	Misses      *obs.Counter
	SiblingHits *obs.Counter
	Uncacheable *obs.Counter
	Errors      *obs.Counter

	BytesServed  *obs.Counter
	BytesFromHit *obs.Counter

	// OriginFetches / OriginBytes count upstream document fetches and
	// the body bytes they transferred — the traffic a cache exists to
	// avoid, so their ratio against BytesServed is the live WHR.
	OriginFetches *obs.Counter
	OriginBytes   *obs.Counter

	// ICPQueries / ICPReplies count sibling protocol exchanges from the
	// client side (queries sent, replies received in time).
	ICPQueries *obs.Counter
	ICPReplies *obs.Counter

	// Latency is the per-request service time in nanoseconds, from
	// accept to the last body byte; the admin /metrics exposition
	// derives p50/p95/p99 from it.
	Latency *obs.Histogram
}

// NewMetrics resolves the proxy counter set from reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Requests:      reg.Counter("proxy.requests"),
		Hits:          reg.Counter("proxy.hits"),
		Revalidated:   reg.Counter("proxy.revalidated"),
		Misses:        reg.Counter("proxy.misses"),
		SiblingHits:   reg.Counter("proxy.sibling_hits"),
		Uncacheable:   reg.Counter("proxy.uncacheable"),
		Errors:        reg.Counter("proxy.errors"),
		BytesServed:   reg.Counter("proxy.bytes_served"),
		BytesFromHit:  reg.Counter("proxy.bytes_from_hit"),
		OriginFetches: reg.Counter("proxy.origin_fetches"),
		OriginBytes:   reg.Counter("proxy.origin_bytes"),
		ICPQueries:    reg.Counter("proxy.icp_queries"),
		ICPReplies:    reg.Counter("proxy.icp_replies"),
		Latency:       reg.Histogram("proxy.latency_ns"),
	}
}

// StoreHooks builds cache event hooks feeding reg's store.* counters
// and, when ring is non-nil, the event-level trace — the live
// counterpart of the simulator's hook wiring, so a store's eviction
// stream carries the same age/NREF detail as a replay's. Live entries
// are string-indexed, so trace events carry ID -1.
func StoreHooks(reg *obs.Registry, ring *obs.EventRing) core.CacheHooks {
	return shardHooks(reg, ring, 0)
}

// ShardedStoreHooks returns the per-shard hook constructor a
// ShardedStore wires through SetHooksPerShard: every shard increments
// the same store.* counters (obs counters are atomic, so the merge is
// free), and ring events are tagged with the shard of origin — the
// merged obs.EventRing stays one timeline and analysis.AnalyzeEvents
// keeps working, but each event remains attributable.
func ShardedStoreHooks(reg *obs.Registry, ring *obs.EventRing) func(shard int) core.CacheHooks {
	return func(shard int) core.CacheHooks {
		return shardHooks(reg, ring, int32(shard))
	}
}

func shardHooks(reg *obs.Registry, ring *obs.EventRing, shard int32) core.CacheHooks {
	hits := reg.Counter("store.hits")
	misses := reg.Counter("store.misses")
	evictions := reg.Counter("store.evictions")
	evictedBytes := reg.Counter("store.evicted_bytes")
	inserts := reg.Counter("store.inserts")
	// Windowed hit/get counts give the deployed store a recent-window
	// hit rate alongside the lifetime ratio — the like-for-like side of
	// the shadow fleet's regret comparison. All shards feed the same
	// pair (atomic buckets merge for free, like the counters above);
	// the derived rate is computed at scrape time, in basis points.
	winHits := reg.Windowed("store.window_hits", 0, 0)
	winGets := reg.Windowed("store.window_gets", 0, 0)
	reg.GaugeFunc("store.window_hr_bp", func() int64 {
		gets := winGets.WindowTotal()
		if gets == 0 {
			return 0
		}
		return int64(float64(winHits.WindowTotal())/float64(gets)*10000 + 0.5)
	})
	if ring == nil {
		return core.CacheHooks{
			OnHit:   func(*policy.Entry) { hits.Inc(); winHits.Inc(); winGets.Inc() },
			OnMiss:  func(int64, int64) { misses.Inc(); winGets.Inc() },
			OnEvict: func(e *policy.Entry, now int64) { evictions.Inc(); evictedBytes.Add(e.Size) },
			OnAdd:   func(*policy.Entry) { inserts.Inc() },
		}
	}
	return core.CacheHooks{
		OnHit: func(e *policy.Entry) {
			hits.Inc()
			winHits.Inc()
			winGets.Inc()
			ring.Record(obs.Event{Kind: obs.EventHit, Time: e.ATime, ID: e.ID, Size: e.Size, NRef: e.NRef, Shard: shard})
		},
		OnMiss: func(size, now int64) {
			misses.Inc()
			winGets.Inc()
			ring.Record(obs.Event{Kind: obs.EventMiss, Time: now, ID: -1, Size: size, Shard: shard})
		},
		OnEvict: func(e *policy.Entry, now int64) {
			evictions.Inc()
			evictedBytes.Add(e.Size)
			ring.Record(obs.Event{Kind: obs.EventEvict, Time: now, ID: e.ID, Size: e.Size, Age: now - e.ETime, NRef: e.NRef, Shard: shard})
		},
		OnAdd: func(e *policy.Entry) {
			inserts.Inc()
			ring.Record(obs.Event{Kind: obs.EventAdd, Time: e.ETime, ID: e.ID, Size: e.Size, Shard: shard})
		},
	}
}
