package proxy

import (
	"fmt"
	"testing"
	"time"
)

// urlsForShard fabricates count distinct URLs that all route to the
// given shard of an n-shard store — the tool for building deliberately
// skewed loads.
func urlsForShard(n, shard, count int) []string {
	urls := make([]string, 0, count)
	for i := 0; len(urls) < count; i++ {
		url := fmt.Sprintf("http://skew.example.com/s%d/doc%d.html", shard, i)
		if shardIndex(url, n) == shard {
			urls = append(urls, url)
		}
	}
	return urls
}

// checkQuotaInvariants asserts the rebalancer's structural guarantees
// on every shard: quotas sum exactly to the built capacity, and no
// shard sits below its bytes in use, its largest resident entry, or the
// donor floor.
func checkQuotaInvariants(t *testing.T, s *ShardedStore, capacity, floor int64) {
	t.Helper()
	var sum int64
	for i, sh := range s.shards {
		q := sh.Quota()
		sum += q
		sh.mu.RLock()
		used, largest := sh.stats.Used, sh.largestLocked()
		sh.mu.RUnlock()
		if q < used {
			t.Fatalf("shard %d quota %d below bytes in use %d", i, q, used)
		}
		if q < largest {
			t.Fatalf("shard %d quota %d below its largest entry %d", i, q, largest)
		}
		if q < floor {
			t.Fatalf("shard %d quota %d below the donor floor %d", i, q, floor)
		}
	}
	if sum != capacity {
		t.Fatalf("shard quotas sum to %d, want exactly %d", sum, capacity)
	}
}

// TestRebalanceMovesQuotaToHotShard drives an eviction-heavy load into
// one shard and checks a pass moves exactly one bounded step of quota
// from pressure-free shards to the hot one, preserving the global sum.
func TestRebalanceMovesQuotaToHotShard(t *testing.T) {
	const (
		capacity = 64 << 10
		shards   = 4
		step     = 2048
	)
	floor := MinShardQuota(capacity, shards)
	s := NewShardedStore(capacity, shards, nil)
	obj := func(n int) *Object { return &Object{Body: make([]byte, n), StoredAt: time.Now()} }

	// Hammer shard 0 with more bytes than its 16KiB quota: evictions.
	for _, url := range urlsForShard(shards, 0, 64) {
		s.Put(url, obj(1024))
	}
	if s.shards[0].Stats().Evictions == 0 {
		t.Fatal("skewed load produced no evictions on the hot shard — setup broken")
	}

	res := s.Rebalance(step, floor)
	if res.Pressure[0] == 0 {
		t.Fatal("pass saw no pressure on the hot shard")
	}
	if res.Moved != step {
		t.Errorf("pass moved %d bytes, want exactly one step %d (donors had slack)", res.Moved, step)
	}
	for _, mv := range res.Moves {
		if mv.To != 0 {
			t.Errorf("quota moved to shard %d, want the hot shard 0 (move %+v)", mv.To, mv)
		}
		if mv.From == 0 {
			t.Errorf("hot shard donated to itself: %+v", mv)
		}
	}
	if q := s.shards[0].Quota(); q != capacity/shards+step {
		t.Errorf("hot shard quota = %d, want fair share + step = %d", q, capacity/shards+step)
	}
	checkQuotaInvariants(t, s, capacity, floor)

	// No new evictions since: pressure deltas are zero, nothing moves.
	res = s.Rebalance(step, floor)
	if res.Moved != 0 || len(res.Moves) != 0 {
		t.Errorf("pressure-free pass moved %d bytes (%d moves), want none", res.Moved, len(res.Moves))
	}
	checkQuotaInvariants(t, s, capacity, floor)
}

// TestRebalanceRepeatedPassesRespectFloor keeps the hot shard under
// pressure across many passes and checks donors are bled only down to
// the floor — never beyond — while the global sum stays exact.
func TestRebalanceRepeatedPassesRespectFloor(t *testing.T) {
	const (
		capacity = 64 << 10
		shards   = 4
		step     = 4096
	)
	floor := MinShardQuota(capacity, shards) // 2 KiB
	s := NewShardedStore(capacity, shards, nil)
	obj := func(n int) *Object { return &Object{Body: make([]byte, n), StoredAt: time.Now()} }

	hot := urlsForShard(shards, 0, 128)
	for pass := 0; pass < 20; pass++ {
		for _, url := range hot {
			s.Put(url, obj(1024))
		}
		res := s.Rebalance(step, floor)
		checkQuotaInvariants(t, s, capacity, floor)
		if res.Moved > step {
			t.Fatalf("pass %d moved %d bytes into one hot shard, step bound is %d", pass, res.Moved, step)
		}
	}
	// Cold empty shards end pinned at the floor; the hot shard holds the
	// rest of the capacity.
	for i := 1; i < shards; i++ {
		if q := s.shards[i].Quota(); q != floor {
			t.Errorf("cold shard %d quota = %d after sustained pressure, want bled to floor %d", i, q, floor)
		}
	}
	if q := s.shards[0].Quota(); q != capacity-int64(shards-1)*floor {
		t.Errorf("hot shard quota = %d, want all donatable capacity %d", q, capacity-int64(shards-1)*floor)
	}
}

// TestRebalanceDonorKeepsLargestEntry pins the donor's re-validation:
// a cold shard holding a large resident object cannot be bled below
// that object's size, whatever the floor argument says.
func TestRebalanceDonorKeepsLargestEntry(t *testing.T) {
	const capacity = 32 << 10 // 16 KiB per shard
	s := NewShardedStore(capacity, 2, nil)
	obj := func(n int) *Object { return &Object{Body: make([]byte, n), StoredAt: time.Now()} }

	// Which shard is cold is up to the hash; put the 10KiB resident on
	// one shard and pressure on the other.
	cold, hotIdx := 0, 1
	s.Put(urlsForShard(2, cold, 1)[0], obj(10<<10))
	hot := urlsForShard(2, hotIdx, 64)
	for pass := 0; pass < 10; pass++ {
		for _, url := range hot {
			s.Put(url, obj(1024))
		}
		s.Rebalance(16<<10, 1) // floor of 1 byte: the entry must protect itself
	}
	if q := s.shards[cold].Quota(); q != 10<<10 {
		t.Errorf("cold shard quota = %d, want exactly its largest resident entry %d", q, 10<<10)
	}
	if q := s.shards[hotIdx].Quota(); q != capacity-10<<10 {
		t.Errorf("hot shard quota = %d, want the remainder %d", q, capacity-10<<10)
	}
	checkQuotaInvariants(t, s, capacity, 1)
}

// TestRebalanceDegenerateCases: single shard, zero step, and no-slack
// stores must all be no-ops.
func TestRebalanceDegenerateCases(t *testing.T) {
	one := NewShardedStore(1<<20, 1, nil)
	if res := one.Rebalance(1024, 1); res.Moved != 0 {
		t.Errorf("1-shard rebalance moved %d bytes", res.Moved)
	}
	four := NewShardedStore(1<<20, 4, nil)
	if res := four.Rebalance(0, 1); res.Moved != 0 {
		t.Errorf("zero-step rebalance moved %d bytes", res.Moved)
	}
}

// TestMinShardQuota pins the default floor rule: an eighth of the fair
// per-shard share, never below one byte.
func TestMinShardQuota(t *testing.T) {
	cases := []struct {
		capacity int64
		shards   int
		want     int64
	}{
		{64 << 10, 4, 2048},
		{1 << 20, 8, 16384},
		{10, 4, 1},
		{100, 0, 12}, // shard count clamped to 1
	}
	for _, tc := range cases {
		if got := MinShardQuota(tc.capacity, tc.shards); got != tc.want {
			t.Errorf("MinShardQuota(%d, %d) = %d, want %d", tc.capacity, tc.shards, got, tc.want)
		}
	}
}
