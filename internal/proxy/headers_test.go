package proxy

import (
	"net/http"
	"testing"
	"time"
)

// TestHeaderSubset pins the entity-header extraction a 1.0-era cache
// performs on origin responses, including the malformed inputs a live
// proxy actually sees.
func TestHeaderSubset(t *testing.T) {
	valid := "Tue, 15 Nov 1994 08:12:31 GMT"
	validTime := time.Date(1994, time.November, 15, 8, 12, 31, 0, time.UTC)

	cases := []struct {
		name        string
		headers     http.Header
		wantType    string
		wantLastMod time.Time
	}{
		{
			name: "both present",
			headers: http.Header{
				"Content-Type":  {"text/html"},
				"Last-Modified": {valid},
			},
			wantType:    "text/html",
			wantLastMod: validTime,
		},
		{
			name:     "missing Last-Modified",
			headers:  http.Header{"Content-Type": {"image/gif"}},
			wantType: "image/gif",
		},
		{
			name: "malformed Last-Modified",
			headers: http.Header{
				"Content-Type":  {"text/plain"},
				"Last-Modified": {"not a date"},
			},
			wantType: "text/plain",
		},
		{
			name: "ANSI C asctime Last-Modified", // the third format ParseTime accepts
			headers: http.Header{
				"Last-Modified": {"Tue Nov 15 08:12:31 1994"},
			},
			wantLastMod: validTime,
		},
		{
			name: "empty Content-Type",
			headers: http.Header{
				"Content-Type":  {""},
				"Last-Modified": {valid},
			},
			wantLastMod: validTime,
		},
		{
			name:    "no entity headers at all",
			headers: http.Header{},
		},
		{
			name: "empty Last-Modified value",
			headers: http.Header{
				"Content-Type":  {"audio/basic"},
				"Last-Modified": {""},
			},
			wantType: "audio/basic",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotType, gotLastMod := headerSubset(tc.headers)
			if gotType != tc.wantType {
				t.Errorf("content type = %q, want %q", gotType, tc.wantType)
			}
			if !gotLastMod.Equal(tc.wantLastMod) {
				t.Errorf("last modified = %v, want %v", gotLastMod, tc.wantLastMod)
			}
		})
	}
}
