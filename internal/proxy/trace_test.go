package proxy

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// spanPhases collects the phase names a trace recorded, in order.
func spanPhases(rt *obs.ReqTrace) []string {
	spans := rt.Spans()
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Phase.String()
	}
	return out
}

func hasPhase(phases []string, name string) bool {
	for _, p := range phases {
		if p == name {
			return true
		}
	}
	return false
}

// TestStoreGetTracedTouchSpan pins that the buffered hit path's lossy
// ring enqueue is visible as a touch.enqueue span, and that the
// synchronous hit path records none (there is no enqueue to time).
func TestStoreGetTracedTouchSpan(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	s := NewStore(1000, nil)
	s.Put("http://a/x", &Object{Body: []byte("hello")})

	rt := tr.Begin()
	if _, ok := s.GetTraced("http://a/x", rt); !ok {
		t.Fatal("traced Get missed")
	}
	if phases := spanPhases(rt); hasPhase(phases, "touch.enqueue") {
		t.Fatalf("synchronous hit path recorded an enqueue span: %v", phases)
	}
	tr.End(rt)

	s.SetTouchBuffer(8)
	rt = tr.Begin()
	if _, ok := s.GetTraced("http://a/x", rt); !ok {
		t.Fatal("buffered traced Get missed")
	}
	if phases := spanPhases(rt); !hasPhase(phases, "touch.enqueue") {
		t.Fatalf("buffered hit path recorded no enqueue span: %v", phases)
	}
	tr.End(rt)

	// The untraced contract: GetTraced with a nil trace is exactly Get.
	if _, ok := s.GetTraced("http://a/x", nil); !ok {
		t.Fatal("nil-trace GetTraced missed")
	}
}

// TestStorePutTracedEvictionSpans pins the admission chain: each victim
// removal is one evict span annotated with the victim's size, and the
// trace's eviction counter matches.
func TestStorePutTracedEvictionSpans(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	s := NewStore(100, policy.NewSorted([]policy.Key{policy.KeySize}, 0))
	s.Put("http://a/big", &Object{Body: make([]byte, 60)})
	s.Put("http://a/small", &Object{Body: make([]byte, 30)})

	rt := tr.Begin()
	if !s.PutTraced("http://a/new", &Object{Body: make([]byte, 50)}, rt) {
		t.Fatal("traced Put rejected")
	}
	var evicted int64
	for _, sp := range rt.Spans() {
		if sp.Phase.String() == "evict" {
			evicted += sp.Arg
		}
	}
	if evicted != 60 {
		t.Fatalf("evict spans account for %d victim bytes, want 60", evicted)
	}
	if got := rt.Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	tr.End(rt)
	if recs := tr.Snapshot(); len(recs) != 1 || recs[0].Flag != "evict" {
		t.Fatalf("evicting put not reservoir-kept: %+v", recs)
	}
}

// TestShardedTracedRouteSpan pins the sharded wrappers: a route span
// carrying the chosen shard index, the trace's Shard field set, and the
// inner store's spans nested after it.
func TestShardedTracedRouteSpan(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	s := NewShardedStore(4096, 4, func() policy.Policy { return nil })
	rt := tr.Begin()
	if !s.PutTraced("http://a/x", &Object{Body: []byte("hello")}, rt) {
		t.Fatal("traced Put rejected")
	}
	tr.End(rt)

	rt = tr.Begin()
	if _, ok := s.GetTraced("http://a/x", rt); !ok {
		t.Fatal("traced Get missed")
	}
	spans := rt.Spans()
	if len(spans) == 0 || spans[0].Phase.String() != "route" {
		t.Fatalf("first span = %v, want route", spanPhases(rt))
	}
	if spans[0].Arg < 0 || spans[0].Arg >= 4 {
		t.Fatalf("route span arg %d outside shard range", spans[0].Arg)
	}
	if int64(rt.Shard) != spans[0].Arg {
		t.Fatalf("trace shard %d != routed shard %d", rt.Shard, spans[0].Arg)
	}
	tr.End(rt)

	if _, ok := s.GetTraced("http://a/x", nil); !ok {
		t.Fatal("nil-trace sharded GetTraced missed")
	}
}

// TestUntracedHitPathAllocs pins the disabled-tracing cost contract on
// the store: the nil-trace hit path allocates exactly as much as the
// plain one — nothing.
func TestUntracedHitPathAllocs(t *testing.T) {
	s := NewStore(1000, nil)
	s.Put("http://a/x", &Object{Body: []byte("hello")})
	if allocs := testing.AllocsPerRun(100, func() { s.Get("http://a/x") }); allocs > 0 {
		t.Fatalf("plain Get allocates %.1f times", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.GetTraced("http://a/x", nil) }); allocs > 0 {
		t.Fatalf("nil-trace GetTraced allocates %.1f times", allocs)
	}
}

// TestProxyTracingEndToEnd runs a real miss-then-hit through a traced
// proxy: both responses carry X-Trace-Id, the miss is reservoir-kept
// with the full phase chain (parse → store.get → origin TTFB → body →
// admit → serve), and the hit's chain stops at the store.
func TestProxyTracingEndToEnd(t *testing.T) {
	origin := &originServer{body: "<html>traced</html>", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	srv, pts := newProxyServer(t, time.Minute)
	tracer := obs.NewTracer(obs.TracerOptions{})
	srv.Tracer = tracer
	target := ots.URL + "/page.html"

	resp, _ := proxyGet(t, pts.URL, target, nil)
	missID := resp.Header.Get("X-Trace-Id")
	if missID == "" {
		t.Fatal("miss response has no X-Trace-Id")
	}
	resp, _ = proxyGet(t, pts.URL, target, nil)
	hitID := resp.Header.Get("X-Trace-Id")
	if hitID == "" || hitID == missID {
		t.Fatalf("hit trace ID %q (miss was %q)", hitID, missID)
	}

	records := map[string]obs.RequestRecord{}
	for _, rec := range tracer.Snapshot() {
		records[obs.FormatTraceID(rec.ID)] = rec
	}
	miss, ok := records[missID]
	if !ok {
		t.Fatalf("miss trace %s not kept; have %v", missID, records)
	}
	if miss.Verdict != "MISS" || miss.Flag != "miss" || miss.URL != target {
		t.Fatalf("miss record %+v", miss)
	}
	missPhases := make([]string, len(miss.Spans))
	for i, sp := range miss.Spans {
		missPhases[i] = sp.Phase
	}
	for _, want := range []string{"parse", "store.get", "origin.ttfb", "origin.body", "admit", "serve"} {
		if !hasPhase(missPhases, want) {
			t.Errorf("miss timeline missing %s: %v", want, missPhases)
		}
	}
	// Span offsets must nest inside the request's total.
	for _, sp := range miss.Spans {
		if sp.StartNs < 0 || sp.StartNs+sp.DurNs > miss.TotalNs {
			t.Errorf("span %s [%d, +%d] escapes request total %d", sp.Phase, sp.StartNs, sp.DurNs, miss.TotalNs)
		}
	}

	hit, ok := records[hitID]
	if !ok {
		t.Fatalf("hit trace %s not kept (default reservoir keeps 16 slowest)", hitID)
	}
	if hit.Verdict != "HIT" {
		t.Fatalf("hit record %+v", hit)
	}
	hitPhases := make([]string, len(hit.Spans))
	for i, sp := range hit.Spans {
		hitPhases[i] = sp.Phase
	}
	if !hasPhase(hitPhases, "store.get") || hasPhase(hitPhases, "origin.ttfb") || hasPhase(hitPhases, "admit") {
		t.Fatalf("hit timeline %v, want store.get without origin phases", hitPhases)
	}
}

// TestProxyTracingDisabled pins the off state: no tracer, no header —
// and no requests retained anywhere.
func TestProxyTracingDisabled(t *testing.T) {
	origin := &originServer{body: "plain", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()
	_, pts := newProxyServer(t, time.Minute)

	resp, _ := proxyGet(t, pts.URL, ots.URL+"/page.html", nil)
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("untraced proxy stamped X-Trace-Id %q", got)
	}
}

// TestProxyTracingSampling pins head sampling through the full proxy:
// with SampleEvery 2, alternate requests carry the header.
func TestProxyTracingSampling(t *testing.T) {
	origin := &originServer{body: "sampled", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()
	srv, pts := newProxyServer(t, time.Minute)
	srv.Tracer = obs.NewTracer(obs.TracerOptions{SampleEvery: 2})

	var traced int
	for i := 0; i < 6; i++ {
		resp, _ := proxyGet(t, pts.URL, ots.URL+"/page.html", nil)
		if resp.Header.Get("X-Trace-Id") != "" {
			traced++
		}
	}
	if traced != 3 {
		t.Fatalf("%d of 6 requests traced, want 3", traced)
	}
}

// TestAccessLogTraceCrossReference pins satellite wiring: a sampled
// request's access-log line carries trace=<id> matching its X-Trace-Id
// response header, and the extended line still round-trips through the
// simulator's CLF parser.
func TestAccessLogTraceCrossReference(t *testing.T) {
	origin := &originServer{body: "logged", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	srv := New(NewStore(1<<20, nil))
	srv.FreshFor = time.Minute
	srv.Tracer = obs.NewTracer(obs.TracerOptions{})
	logger := NewAccessLogger(srv, nil)
	pts := httptest.NewServer(logger)
	defer pts.Close()

	target := ots.URL + "/page.html"
	resp, _ := proxyGet(t, pts.URL, target, nil)
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id on traced response")
	}

	lines := logger.Recent()
	if len(lines) != 1 {
		t.Fatalf("%d log lines, want 1", len(lines))
	}
	line := lines[0]
	if !strings.Contains(line, " trace="+id) {
		t.Fatalf("log line %q does not reference trace %s", line, id)
	}
	req, err := trace.ParseCLFLine(strings.TrimSuffix(line, "\n"))
	if err != nil {
		t.Fatalf("extended line no longer parses as CLF: %v\n%s", err, line)
	}
	if req.URL != target || req.Size != int64(len("logged")) {
		t.Fatalf("round-tripped request %+v", req)
	}
}
