package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"webcache/internal/obs"
	"webcache/internal/origin"
)

// Stats counts proxy-level outcomes.
type Stats struct {
	Requests     int64
	Hits         int64 // served from cache without contacting the origin
	Revalidated  int64 // served from cache after a 304
	Misses       int64 // fetched from origin (or parent)
	SiblingHits  int64 // misses served through an ICP sibling
	Uncacheable  int64 // passed through without cache consideration
	Errors       int64
	BytesServed  int64
	BytesFromHit int64
}

// Server is an HTTP/1.0-style caching proxy. It handles proxy-form GET
// requests (absolute URI in the request line), caches static documents
// under the store's removal policy, revalidates stale entries with
// If-Modified-Since, and can chain to a parent proxy — the two-level
// arrangement of Experiment 3.
type Server struct {
	store ObjectStore
	// FreshFor is how long a cached object is served without
	// revalidation. 1995-era HTTP has no Cache-Control; a fixed
	// freshness window plus Last-Modified revalidation matches CERN
	// httpd behaviour.
	FreshFor time.Duration
	// MaxObjectBytes bounds what the proxy will buffer and cache.
	MaxObjectBytes int64
	// Transport performs origin fetches; configure http.Transport with
	// Proxy to chain to a parent cache. Defaults to
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Siblings are cooperating caches queried over ICP before a
	// cacheable miss goes to the origin (the Harvest arrangement of the
	// paper's reference [8]); a sibling answering ICP_HIT serves the
	// fetch instead.
	Siblings []Sibling
	// ICP issues the sibling queries.
	ICP ICPClient
	// Metrics, when non-nil, mirrors every outcome into a shared
	// obs.Registry (plus a per-request latency histogram) for the admin
	// endpoint. Nil — the default — costs one branch per site.
	Metrics *Metrics
	// Shadow, when non-nil, receives every successful GET outcome (URL,
	// body size, deployed hit-or-miss) for the ghost-cache fleet. The
	// per-request cost is one non-blocking enqueue; nil costs one branch.
	Shadow *ShadowFleet
	// Tracer, when non-nil, samples requests into per-phase span
	// timelines (parse, route, store get, origin dial/TTFB/body,
	// admission, eviction chain) and keeps the tail worth inspecting —
	// the /requests admin endpoint. Nil — the default — costs one
	// branch per request; unsampled requests cost one atomic add.
	Tracer *obs.Tracer

	// traced is the store's optional tracing extension, type-asserted
	// once here so the serving path never repeats the assertion.
	traced TracedStore

	stats struct {
		requests, hits, revalidated, misses atomic.Int64
		uncacheable, errors                 atomic.Int64
		bytesServed, bytesFromHit           atomic.Int64
		siblingHits                         atomic.Int64
	}
}

// New returns a caching proxy over the given store — the single-mutex
// Store or an N-way ShardedStore, whichever the deployment picked.
func New(store ObjectStore) *Server {
	s := &Server{
		store:          store,
		FreshFor:       5 * time.Minute,
		MaxObjectBytes: 8 << 20,
	}
	if ts, ok := store.(TracedStore); ok {
		s.traced = ts
	}
	return s
}

// Store exposes the underlying object store.
func (s *Server) Store() ObjectStore { return s.store }

// Stats returns a snapshot of proxy counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.stats.requests.Load(),
		Hits:         s.stats.hits.Load(),
		Revalidated:  s.stats.revalidated.Load(),
		Misses:       s.stats.misses.Load(),
		SiblingHits:  s.stats.siblingHits.Load(),
		Uncacheable:  s.stats.uncacheable.Load(),
		Errors:       s.stats.errors.Load(),
		BytesServed:  s.stats.bytesServed.Load(),
		BytesFromHit: s.stats.bytesFromHit.Load(),
	}
}

func (s *Server) transport() http.RoundTripper {
	if s.Transport != nil {
		return s.Transport
	}
	return http.DefaultTransport
}

// Cacheable reports whether a request/URL is cacheable under the
// paper-era rules: GET only, no dynamically generated documents (CGI
// paths or query strings), no authenticated content, and no client
// opt-out.
func Cacheable(r *http.Request) bool {
	if r.Method != http.MethodGet {
		return false
	}
	if r.URL.RawQuery != "" || strings.Contains(r.URL.Path, "cgi-bin") {
		return false
	}
	if r.Header.Get("Authorization") != "" {
		return false
	}
	return true
}

// storeGet routes a lookup through the store's tracing extension when
// this request is sampled; the untraced path is the plain Get.
func (s *Server) storeGet(key string, rt *obs.ReqTrace) (*Object, bool) {
	if rt == nil || s.traced == nil {
		return s.store.Get(key)
	}
	sp := rt.BeginSpan(obs.PhaseStoreGet)
	obj, ok := s.traced.GetTraced(key, rt)
	rt.EndSpan(sp)
	return obj, ok
}

// storePut routes an admission through the store's tracing extension
// when this request is sampled. The admit span (opened by the caller)
// wraps it, so eviction spans recorded by the store nest correctly.
func (s *Server) storePut(key string, obj *Object, rt *obs.ReqTrace) bool {
	if rt == nil || s.traced == nil {
		return s.store.Put(key, obj)
	}
	return s.traced.PutTraced(key, obj, rt)
}

// ServeHTTP implements the proxy.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if m := s.Metrics; m != nil {
		m.Requests.Inc()
		start := time.Now()
		defer func() { m.Latency.Observe(time.Since(start).Nanoseconds()) }()
	}
	rt := s.Tracer.Begin() // nil when untraced or unsampled; every rt method is nil-safe
	if rt != nil {
		// The ID goes out on the response (and into the access log), so
		// a slow request a client reports can be found in /requests.
		w.Header().Set("X-Trace-Id", obs.FormatTraceID(rt.ID))
		defer s.Tracer.End(rt)
	}

	parse := rt.BeginSpan(obs.PhaseParse)
	target := r.URL
	if !target.IsAbs() {
		// Accept origin-form requests too (reverse-proxy style) by
		// reconstructing the absolute URL from the Host header.
		if r.Host == "" {
			s.stats.errors.Add(1)
			if m := s.Metrics; m != nil {
				m.Errors.Inc()
			}
			rt.EndSpan(parse)
			rt.MarkError()
			rt.SetOutcome("ERROR", http.StatusBadRequest, 0)
			http.Error(w, "proxy: request URL is not absolute", http.StatusBadRequest)
			return
		}
		abs := *r.URL
		abs.Scheme = "http"
		abs.Host = r.Host
		target = &abs
	}

	if !Cacheable(r) {
		s.stats.uncacheable.Add(1)
		if m := s.Metrics; m != nil {
			m.Uncacheable.Inc()
		}
		rt.SetURL(target.String())
		rt.EndSpan(parse)
		s.passThrough(w, r, target, rt)
		return
	}

	key := target.String()
	noCache := strings.EqualFold(r.Header.Get("Pragma"), "no-cache")
	rt.SetURL(key)
	rt.EndSpan(parse)

	if obj, ok := s.storeGet(key, rt); ok && !noCache {
		age := time.Since(obj.StoredAt)
		if age <= s.FreshFor {
			s.serveObject(w, obj, "HIT", rt)
			s.stats.hits.Add(1)
			s.stats.bytesFromHit.Add(int64(len(obj.Body)))
			if m := s.Metrics; m != nil {
				m.Hits.Inc()
				m.BytesFromHit.Add(int64(len(obj.Body)))
			}
			if f := s.Shadow; f != nil {
				f.Observe(key, int64(len(obj.Body)), true)
			}
			return
		}
		reval := rt.BeginSpan(obs.PhaseRevalidate)
		ok := s.revalidate(key, obj, target)
		rt.EndSpan(reval)
		if ok {
			s.serveObject(w, obj, "REVALIDATED", rt)
			s.stats.revalidated.Add(1)
			s.stats.bytesFromHit.Add(int64(len(obj.Body)))
			if m := s.Metrics; m != nil {
				m.Revalidated.Inc()
				m.BytesFromHit.Add(int64(len(obj.Body)))
			}
			if f := s.Shadow; f != nil {
				f.Observe(key, int64(len(obj.Body)), true)
			}
			return
		}
		// Revalidation says the document changed (or failed); fall
		// through to a fresh fetch, replacing the stale copy.
	}

	s.fetchAndServe(w, r, target, key, rt)
}

// revalidate sends a conditional GET; true means the cached copy is
// still current (the origin answered 304).
func (s *Server) revalidate(key string, obj *Object, target *url.URL) bool {
	if obj.LastModified.IsZero() {
		return false
	}
	req, err := http.NewRequest(http.MethodGet, target.String(), nil)
	if err != nil {
		return false
	}
	req.Header.Set("If-Modified-Since", obj.LastModified.UTC().Format(http.TimeFormat))
	resp, err := s.transport().RoundTrip(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotModified {
		s.store.Refresh(key)
		return true
	}
	return false
}

// fetchAndServe fetches target from the origin (or parent proxy),
// serves it, and caches it when eligible.
func (s *Server) fetchAndServe(w http.ResponseWriter, r *http.Request, target *url.URL, key string, rt *obs.ReqTrace) {
	s.stats.misses.Add(1)
	if m := s.Metrics; m != nil {
		m.Misses.Inc()
	}
	req, err := http.NewRequest(http.MethodGet, target.String(), nil)
	if err != nil {
		s.countError(w, rt, fmt.Sprintf("proxy: building origin request: %v", err))
		return
	}
	copyHopByHopSafe(req.Header, r.Header)
	// A sampled miss watches the transport's own lifecycle callbacks:
	// origin.dial and origin.ttfb spans come from httptrace, so the
	// timeline attributes origin latency to the wire, not RoundTrip.
	req = origin.TraceRequest(req, rt)

	// Ask ICP siblings before going to the origin; a hit redirects the
	// fetch through the sibling's HTTP listener.
	tr := s.transport()
	if sib := s.ICP.QuerySiblings(s.Siblings, key); sib != nil {
		if sibURL, err := url.Parse(sib.Proxy); err == nil {
			tr = &http.Transport{Proxy: http.ProxyURL(sibURL)}
			s.stats.siblingHits.Add(1)
			if m := s.Metrics; m != nil {
				m.SiblingHits.Inc()
			}
		}
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		s.countError(w, rt, fmt.Sprintf("proxy: origin fetch failed: %v", err))
		return
	}
	defer resp.Body.Close()
	if m := s.Metrics; m != nil {
		m.OriginFetches.Inc()
	}

	if resp.StatusCode != http.StatusOK {
		// Serve non-200 responses uncached.
		n := s.relay(w, resp)
		rt.SetOutcome("MISS", resp.StatusCode, n)
		return
	}
	bodySpan := rt.BeginSpan(obs.PhaseBody)
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.MaxObjectBytes+1))
	rt.EndSpanArg(bodySpan, int64(len(body)))
	if err != nil {
		s.countError(w, rt, fmt.Sprintf("proxy: reading origin body: %v", err))
		return
	}
	if m := s.Metrics; m != nil {
		m.OriginBytes.Add(int64(len(body)))
	}
	contentType, lastMod := headerSubset(resp.Header)
	obj := &Object{
		Body:         body,
		ContentType:  contentType,
		LastModified: lastMod,
		StoredAt:     time.Now(),
	}
	if int64(len(body)) <= s.MaxObjectBytes {
		admit := rt.BeginSpan(obs.PhaseAdmit)
		stored := s.storePut(key, obj, rt)
		arg := int64(0)
		if stored {
			arg = 1
		}
		rt.EndSpanArg(admit, arg)
	}
	s.serveObject(w, obj, "MISS", rt)
	if f := s.Shadow; f != nil {
		f.Observe(key, int64(len(body)), false)
	}
}

// countError records an error outcome and answers 502.
func (s *Server) countError(w http.ResponseWriter, rt *obs.ReqTrace, msg string) {
	s.stats.errors.Add(1)
	if m := s.Metrics; m != nil {
		m.Errors.Inc()
	}
	rt.MarkError()
	rt.SetOutcome("ERROR", http.StatusBadGateway, 0)
	http.Error(w, msg, http.StatusBadGateway)
}

// serveObject writes a cached object to the client.
func (s *Server) serveObject(w http.ResponseWriter, obj *Object, verdict string, rt *obs.ReqTrace) {
	h := w.Header()
	if obj.ContentType != "" {
		h.Set("Content-Type", obj.ContentType)
	}
	if !obj.LastModified.IsZero() {
		h.Set("Last-Modified", obj.LastModified.UTC().Format(http.TimeFormat))
	}
	h.Set("Content-Length", fmt.Sprint(len(obj.Body)))
	h.Set("X-Cache", verdict)
	serve := rt.BeginSpan(obs.PhaseServe)
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(obj.Body)
	rt.EndSpan(serve)
	rt.SetOutcome(verdict, http.StatusOK, int64(n))
	s.stats.bytesServed.Add(int64(n))
	if m := s.Metrics; m != nil {
		m.BytesServed.Add(int64(n))
	}
}

// relay streams an origin response to the client without caching and
// returns the body bytes written.
func (s *Server) relay(w http.ResponseWriter, resp *http.Response) int64 {
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("X-Cache", "MISS")
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	s.stats.bytesServed.Add(n)
	if m := s.Metrics; m != nil {
		m.BytesServed.Add(n)
	}
	return n
}

// passThrough forwards an uncacheable request verbatim.
func (s *Server) passThrough(w http.ResponseWriter, r *http.Request, target *url.URL, rt *obs.ReqTrace) {
	req, err := http.NewRequest(r.Method, target.String(), r.Body)
	if err != nil {
		s.countError(w, rt, fmt.Sprintf("proxy: building pass-through request: %v", err))
		return
	}
	copyHopByHopSafe(req.Header, r.Header)
	req = origin.TraceRequest(req, rt)
	resp, err := s.transport().RoundTrip(req)
	if err != nil {
		s.countError(w, rt, fmt.Sprintf("proxy: pass-through fetch failed: %v", err))
		return
	}
	defer resp.Body.Close()
	n := s.relay(w, resp)
	rt.SetOutcome("UNCACHEABLE", resp.StatusCode, n)
	// Successful GETs the cache declined (CGI, query strings, client
	// opt-out) still reach the shadows: the simulator counts dynamic
	// requests as misses, so the fleet must see them too.
	if f := s.Shadow; f != nil && r.Method == http.MethodGet && resp.StatusCode == http.StatusOK {
		f.Observe(target.String(), n, false)
	}
}

// copyHopByHopSafe copies end-to-end request headers, dropping
// hop-by-hop ones.
func copyHopByHopSafe(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Proxy-Connection", "Keep-Alive", "Te",
			"Trailer", "Transfer-Encoding", "Upgrade", "Proxy-Authorization":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
