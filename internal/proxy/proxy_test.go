package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webcache/internal/policy"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore(1000, nil)
	obj := &Object{Body: []byte("hello"), ContentType: "text/plain", StoredAt: time.Now()}
	if !s.Put("http://a/x", obj) {
		t.Fatal("Put failed")
	}
	got, ok := s.Get("http://a/x")
	if !ok || string(got.Body) != "hello" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get("http://a/missing"); ok {
		t.Fatal("Get on missing key succeeded")
	}
	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Used != 5 || st.Docs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreEvictionBySize(t *testing.T) {
	s := NewStore(100, policy.NewSorted([]policy.Key{policy.KeySize}, 0))
	s.Put("http://a/big", &Object{Body: make([]byte, 70)})
	s.Put("http://a/small", &Object{Body: make([]byte, 20)})
	// Inserting 40 bytes forces eviction of the biggest object.
	s.Put("http://a/new", &Object{Body: make([]byte, 40)})
	if _, ok := s.Get("http://a/big"); ok {
		t.Fatal("SIZE policy kept the biggest object")
	}
	if _, ok := s.Get("http://a/small"); !ok {
		t.Fatal("small object evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Used > 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreRejectsOversized(t *testing.T) {
	s := NewStore(10, nil)
	if s.Put("http://a/huge", &Object{Body: make([]byte, 50)}) {
		t.Fatal("oversized Put succeeded")
	}
	if s.Len() != 0 {
		t.Fatal("oversized object stored")
	}
}

func TestStoreReplace(t *testing.T) {
	s := NewStore(1000, nil)
	s.Put("http://a/x", &Object{Body: []byte("v1")})
	s.Put("http://a/x", &Object{Body: []byte("version2")})
	got, _ := s.Get("http://a/x")
	if string(got.Body) != "version2" {
		t.Fatalf("body %q", got.Body)
	}
	if st := s.Stats(); st.Used != 8 || st.Docs != 1 {
		t.Fatalf("stats after replace %+v", st)
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(1000, nil)
	s.Put("http://a/x", &Object{Body: []byte("abc")})
	s.Remove("http://a/x")
	if s.Len() != 0 || s.Stats().Used != 0 {
		t.Fatal("Remove left residue")
	}
	s.Remove("http://a/x") // idempotent
}

// originServer is a configurable test origin.
type originServer struct {
	hits    atomic.Int64
	lastMod time.Time
	body    string
}

func (o *originServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o.hits.Add(1)
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if t, err := http.ParseTime(ims); err == nil && !o.lastMod.After(t.Add(time.Second)) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Last-Modified", o.lastMod.UTC().Format(http.TimeFormat))
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, o.body)
	}
}

// proxyGet issues a GET through the proxy for the origin URL.
func proxyGet(t *testing.T, proxyURL, target string, hdr http.Header) (*http.Response, string) {
	t.Helper()
	pu, err := url.Parse(proxyURL)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(pu)}}
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func newProxyServer(t *testing.T, freshFor time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(NewStore(1<<20, nil))
	srv.FreshFor = freshFor
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestProxyHitMiss(t *testing.T) {
	origin := &originServer{body: "<html>doc</html>", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	srv, pts := newProxyServer(t, time.Minute)
	target := ots.URL + "/page.html"

	resp, body := proxyGet(t, pts.URL, target, nil)
	if body != origin.body || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first fetch: %q %q", body, resp.Header.Get("X-Cache"))
	}
	resp, body = proxyGet(t, pts.URL, target, nil)
	if body != origin.body || resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second fetch: %q %q", body, resp.Header.Get("X-Cache"))
	}
	if origin.hits.Load() != 1 {
		t.Fatalf("origin contacted %d times, want 1", origin.hits.Load())
	}
	st := srv.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("proxy stats %+v", st)
	}
}

func TestProxyRevalidation(t *testing.T) {
	origin := &originServer{body: "stable content", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	srv, pts := newProxyServer(t, 0) // everything is stale immediately
	target := ots.URL + "/doc.html"

	proxyGet(t, pts.URL, target, nil)
	resp, body := proxyGet(t, pts.URL, target, nil)
	if resp.Header.Get("X-Cache") != "REVALIDATED" {
		t.Fatalf("X-Cache = %q, want REVALIDATED", resp.Header.Get("X-Cache"))
	}
	if body != origin.body {
		t.Fatalf("body %q", body)
	}
	if st := srv.Stats(); st.Revalidated != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The origin served the 304 cheaply but was contacted twice total.
	if origin.hits.Load() != 2 {
		t.Fatalf("origin hits %d", origin.hits.Load())
	}
}

func TestProxyChangedDocumentRefetched(t *testing.T) {
	origin := &originServer{body: "v1", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	_, pts := newProxyServer(t, 0)
	target := ots.URL + "/changing.html"

	proxyGet(t, pts.URL, target, nil)
	origin.body = "v2 much longer"
	origin.lastMod = time.Now().Add(time.Hour) // modified after the cached copy
	_, body := proxyGet(t, pts.URL, target, nil)
	if body != "v2 much longer" {
		t.Fatalf("stale body served: %q", body)
	}
}

func TestProxyUncacheable(t *testing.T) {
	origin := &originServer{body: "q", lastMod: time.Now()}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	srv, pts := newProxyServer(t, time.Minute)

	// Query strings are dynamic documents: never cached.
	proxyGet(t, pts.URL, ots.URL+"/search?q=x", nil)
	proxyGet(t, pts.URL, ots.URL+"/search?q=x", nil)
	if origin.hits.Load() != 2 {
		t.Fatalf("dynamic document served from cache (origin hits %d)", origin.hits.Load())
	}
	// Authorization suppresses caching too.
	proxyGet(t, pts.URL, ots.URL+"/private.html", http.Header{"Authorization": []string{"Basic xyz"}})
	proxyGet(t, pts.URL, ots.URL+"/private.html", http.Header{"Authorization": []string{"Basic xyz"}})
	if origin.hits.Load() != 4 {
		t.Fatalf("authorized document cached (origin hits %d)", origin.hits.Load())
	}
	if st := srv.Stats(); st.Uncacheable != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProxyPragmaNoCache(t *testing.T) {
	origin := &originServer{body: "fresh", lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	_, pts := newProxyServer(t, time.Hour)
	target := ots.URL + "/page.html"
	proxyGet(t, pts.URL, target, nil)
	resp, _ := proxyGet(t, pts.URL, target, http.Header{"Pragma": []string{"no-cache"}})
	if resp.Header.Get("X-Cache") == "HIT" {
		t.Fatal("Pragma: no-cache served from cache")
	}
}

func TestProxyNon200NotCached(t *testing.T) {
	ots := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ots.Close()

	srv, pts := newProxyServer(t, time.Minute)
	resp, _ := proxyGet(t, pts.URL, ots.URL+"/missing.html", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if srv.Store().Len() != 0 {
		t.Fatal("404 response cached")
	}
}

// TestProxyHierarchy chains a child proxy to a parent proxy: a document
// evicted nowhere is served from the parent on a child miss without
// touching the origin (Experiment 3's arrangement, live).
func TestProxyHierarchy(t *testing.T) {
	origin := &originServer{body: strings.Repeat("x", 1000), lastMod: time.Now().Add(-time.Hour)}
	ots := httptest.NewServer(origin.handler())
	defer ots.Close()

	parentSrv := New(NewStore(1<<20, nil))
	parentTS := httptest.NewServer(parentSrv)
	defer parentTS.Close()

	childSrv := New(NewStore(1<<20, nil))
	pu, _ := url.Parse(parentTS.URL)
	childSrv.Transport = &http.Transport{Proxy: http.ProxyURL(pu)}
	childTS := httptest.NewServer(childSrv)
	defer childTS.Close()

	target := ots.URL + "/shared.html"
	proxyGet(t, childTS.URL, target, nil) // populates both levels
	if origin.hits.Load() != 1 {
		t.Fatalf("origin hits %d", origin.hits.Load())
	}
	// Drop the document from the child only; the parent must answer.
	childSrv.Store().Remove(target)
	resp, body := proxyGet(t, childTS.URL, target, nil)
	if body != origin.body {
		t.Fatalf("body length %d", len(body))
	}
	if origin.hits.Load() != 1 {
		t.Fatalf("origin contacted again (%d hits); parent did not serve", origin.hits.Load())
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		// The child reports MISS; the parent served it (its stats say HIT).
		t.Fatalf("child X-Cache %q", resp.Header.Get("X-Cache"))
	}
	if parentSrv.Stats().Hits != 1 {
		t.Fatalf("parent stats %+v", parentSrv.Stats())
	}
}

func TestCacheableRules(t *testing.T) {
	mk := func(method, rawurl string, hdr http.Header) *http.Request {
		u, _ := url.Parse(rawurl)
		r := &http.Request{Method: method, URL: u, Header: hdr}
		if hdr == nil {
			r.Header = http.Header{}
		}
		return r
	}
	if !Cacheable(mk("GET", "http://a/x.html", nil)) {
		t.Error("plain GET not cacheable")
	}
	if Cacheable(mk("POST", "http://a/x.html", nil)) {
		t.Error("POST cacheable")
	}
	if Cacheable(mk("GET", "http://a/x?y=1", nil)) {
		t.Error("query cacheable")
	}
	if Cacheable(mk("GET", "http://a/cgi-bin/z", nil)) {
		t.Error("cgi-bin cacheable")
	}
	if Cacheable(mk("GET", "http://a/x.html", http.Header{"Authorization": []string{"Basic"}})) {
		t.Error("authorized cacheable")
	}
}
