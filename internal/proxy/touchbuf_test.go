package proxy

import (
	"testing"
	"time"

	"webcache/internal/policy"
)

// fixedClock returns a clock function backed by *sec, so tests advance
// time by incrementing the variable.
func fixedClock(sec *int64) func() time.Time {
	return func() time.Time { return time.Unix(*sec, 0) }
}

// TestTouchBufferDropsWhenFull exercises the ring's loss contract
// directly: once every slot holds an undrained record, further records
// are dropped and counted, never blocked on and never overwriting.
func TestTouchBufferDropsWhenFull(t *testing.T) {
	b := newTouchBuffer(4)
	e := policy.NewEntry("http://h/a.html", 1, 0, 0, 0)
	for i := 0; i < 10; i++ {
		b.record(e, int64(i))
	}
	if got := b.dropped.Load(); got != 6 {
		t.Errorf("dropped = %d, want 6 (10 records into 4 slots, nothing drained)", got)
	}
	if got := b.pending(); got != 10 {
		t.Errorf("pending = %d, want 10 (tickets taken, none drained)", got)
	}
	// The four slots hold the four earliest tickets — full slots reject
	// newcomers rather than overwriting undrained records.
	for i := range b.slots {
		rec := b.slots[i].Load()
		if rec == nil {
			t.Fatalf("slot %d empty after overflow", i)
		}
		if rec.at != int64(i) {
			t.Errorf("slot %d holds touch at=%d, want %d (earliest tickets win)", i, rec.at, i)
		}
	}
}

// TestTouchBufferDrainThreshold pins the opportunistic-drain signal:
// record reports true once the backlog reaches half the ring.
func TestTouchBufferDrainThreshold(t *testing.T) {
	b := newTouchBuffer(8)
	e := policy.NewEntry("http://h/a.html", 1, 0, 0, 0)
	for i := 0; i < 4; i++ {
		if b.record(e, int64(i)) {
			t.Fatalf("record %d crossed the threshold with backlog below half the ring", i)
		}
	}
	if !b.record(e, 4) {
		t.Error("record with backlog at half the ring did not signal a drain")
	}
}

// TestBufferedGetDefersTouch checks the division of labor in buffered
// mode: the hit itself leaves the entry untouched (no write under the
// read lock); the drain applies the recorded access time and reference
// count under the write lock.
func TestBufferedGetDefersTouch(t *testing.T) {
	var now int64 = 1000
	s := NewStore(1<<20, mustPolicy(t, "LRU"))
	s.SetClock(fixedClock(&now))
	s.SetTouchBuffer(1024)

	s.Put("http://h/a.html", &Object{Body: make([]byte, 100), StoredAt: time.Unix(now, 0)})
	e := s.entries["http://h/a.html"]
	now = 2000
	if _, ok := s.Get("http://h/a.html"); !ok {
		t.Fatal("Get missed a cached object")
	}
	if e.ATime != 1000 || e.NRef != 1 {
		t.Fatalf("buffered Get mutated the entry: ATime=%d NRef=%d, want untouched 1000/1", e.ATime, e.NRef)
	}
	if n := s.FlushTouches(); n != 1 {
		t.Fatalf("FlushTouches applied %d touches, want 1", n)
	}
	if e.ATime != 2000 || e.NRef != 2 {
		t.Fatalf("drain applied ATime=%d NRef=%d, want 2000/2", e.ATime, e.NRef)
	}
	st := s.Stats()
	if st.TouchDrained != 1 || st.TouchDropped != 0 || st.TouchStale != 0 {
		t.Errorf("touch counters = drained %d dropped %d stale %d, want 1/0/0",
			st.TouchDrained, st.TouchDropped, st.TouchStale)
	}
}

// TestDrainDiscardsStaleTouches covers both ways an entry dies between
// hit and drain — explicit removal and replacement by a new Put — and
// requires the drain to skip the dead pointer and count it stale.
func TestDrainDiscardsStaleTouches(t *testing.T) {
	var now int64 = 1000
	s := NewStore(1<<20, mustPolicy(t, "LRU"))
	s.SetClock(fixedClock(&now))
	s.SetTouchBuffer(1024)
	obj := func(n int) *Object { return &Object{Body: make([]byte, n), StoredAt: time.Unix(now, 0)} }

	// Removal: touch recorded, entry removed, drain must not replay it.
	s.Put("http://h/a.html", obj(100))
	s.Get("http://h/a.html")
	s.Remove("http://h/a.html")
	if n := s.FlushTouches(); n != 0 {
		t.Fatalf("flush after Remove applied %d touches, want 0", n)
	}
	if st := s.Stats(); st.TouchStale != 1 {
		t.Fatalf("TouchStale = %d after removed-entry flush, want 1", st.TouchStale)
	}

	// Replacement: the Put that replaces the entry drains first, so the
	// touch applies to the OLD entry (still live at drain time); a touch
	// recorded against the old pointer after replacement is stale.
	s.Put("http://h/b.html", obj(100))
	old := s.entries["http://h/b.html"]
	s.Get("http://h/b.html")
	s.Put("http://h/b.html", obj(200)) // drains (applies the pending touch), then replaces
	if st := s.Stats(); st.TouchDrained != 1 {
		t.Fatalf("TouchDrained = %d after replacement, want 1 (pre-replacement touch was live)", st.TouchDrained)
	}
	// Now record against the dead pointer directly (the window where a
	// concurrent Get raced the replacement) and flush.
	s.buf.Load().record(old, now)
	if n := s.FlushTouches(); n != 0 {
		t.Fatalf("flush of dead-pointer touch applied %d, want 0", n)
	}
	if st := s.Stats(); st.TouchStale != 2 {
		t.Fatalf("TouchStale = %d, want 2", st.TouchStale)
	}
}

// TestDrainAppliesRecordedOrder checks that the drain replays hits in
// ticket order with their recorded timestamps: after a flush the LRU
// victim is the document whose last recorded hit is oldest, regardless
// of drain timing.
func TestDrainAppliesRecordedOrder(t *testing.T) {
	var now int64 = 1000
	s := NewStore(1<<20, mustPolicy(t, "LRU"))
	s.SetClock(fixedClock(&now))
	s.SetTouchBuffer(1024)
	obj := func() *Object { return &Object{Body: make([]byte, 100), StoredAt: time.Unix(now, 0)} }

	s.Put("http://h/a.html", obj())
	now = 1001
	s.Put("http://h/b.html", obj())
	now = 1002
	s.Get("http://h/a.html")
	now = 1003
	s.Get("http://h/b.html")
	now = 1004
	s.Get("http://h/a.html")
	if n := s.FlushTouches(); n != 3 {
		t.Fatalf("FlushTouches applied %d touches, want 3", n)
	}
	// a's last hit (1004) is newer than b's (1003): LRU must evict b.
	v := s.pol.Victim(1)
	if v == nil || v.URL != "http://h/b.html" {
		t.Fatalf("victim after drain = %v, want b.html (oldest recorded access)", v)
	}
	if a := s.entries["http://h/a.html"]; a.ATime != 1004 || a.NRef != 3 {
		t.Errorf("a.html after drain: ATime=%d NRef=%d, want 1004/3", a.ATime, a.NRef)
	}
}

// TestSetTouchBufferZeroRestoresSyncMode checks the mode switch: slots
// 0 detaches the ring and Get goes back to inline write-locked touches.
func TestSetTouchBufferZeroRestoresSyncMode(t *testing.T) {
	var now int64 = 1000
	s := NewStore(1<<20, mustPolicy(t, "LRU"))
	s.SetClock(fixedClock(&now))
	s.SetTouchBuffer(64)
	s.SetTouchBuffer(0)
	s.Put("http://h/a.html", &Object{Body: make([]byte, 100), StoredAt: time.Unix(now, 0)})
	now = 2000
	s.Get("http://h/a.html")
	e := s.entries["http://h/a.html"]
	if e.ATime != 2000 || e.NRef != 2 {
		t.Fatalf("sync-mode Get deferred its touch: ATime=%d NRef=%d, want 2000/2", e.ATime, e.NRef)
	}
	if n := s.FlushTouches(); n != 0 {
		t.Fatalf("FlushTouches in sync mode applied %d, want 0", n)
	}
}
