package proxy

// The occupancy rebalancer closes the gap PR 6 documented: a sharded
// store partitions capacity into static per-shard quotas, so a shard
// that the URL hash happens to load heavily evicts constantly while an
// unpopular one sits half empty. The rebalancer runs off the serving
// path (the Maintainer ticks it) and shifts quota from cold shards to
// hot ones, where heat is eviction pressure — the number of evictions
// a shard performed since the previous pass. Occupancy alone is not a
// demand signal (a full shard that never evicts is in equilibrium);
// evictions are capacity misses by definition.
//
// Invariants, enforced structurally and unit-tested:
//
//   - The global sum of shard quotas equals the capacity the store was
//     built with, exactly, whenever no transfer is in flight: a taker
//     is credited precisely the bytes its donor debited. The debit
//     lands before the credit (never the other way round — a credit-
//     first order would let the summed quotas exceed capacity and admit
//     extra bytes), so a Stats() snapshot racing a transfer can read
//     the sum up to one step low, never high.
//   - A donor's quota never drops below its bytes in use, its largest
//     resident entry, or the configured floor. The donor re-checks
//     under its own lock at debit time (Store.donateQuota), so the
//     invariant survives racing admissions.
//   - A pass moves at most step bytes into any one shard — bounded
//     steps keep the quota field stable under noisy traffic instead of
//     sloshing capacity shard to shard.

import "sort"

// QuotaMove is one donor→taker transfer within a rebalance pass.
type QuotaMove struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Bytes int64 `json:"bytes"`
}

// RebalanceResult reports one pass: the per-shard eviction pressure
// observed (evictions since the previous pass) and the quota moved.
type RebalanceResult struct {
	Pressure []int64     `json:"pressure"`
	Moves    []QuotaMove `json:"moves,omitempty"`
	Moved    int64       `json:"moved"`
}

// Rebalance runs one rebalancing pass: shards with eviction pressure
// since the last pass gain quota, pressure-free shards with slack
// donate it. step bounds the bytes moved into any single shard this
// pass; floor is the minimum quota a donor may be left with (use
// MinShardQuota for a sane default — a floor keeps a cold shard from
// being bled to zero, which would strand it: a shard with no quota
// admits nothing, so it can never build the eviction pressure that
// would win its quota back). Passes are serialized; concurrent calls
// queue.
func (s *ShardedStore) Rebalance(step, floor int64) RebalanceResult {
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()

	n := len(s.shards)
	res := RebalanceResult{Pressure: make([]int64, n)}
	if n < 2 || step <= 0 {
		return res
	}

	type view struct {
		i        int
		pressure int64
		slack    int64 // quota - used: donatable headroom, pre-check only
	}
	views := make([]view, n)
	for i, sh := range s.shards {
		st := sh.Stats()
		p := st.Evictions - s.lastEvictions[i]
		s.lastEvictions[i] = st.Evictions
		res.Pressure[i] = p
		views[i] = view{i: i, pressure: p, slack: st.Capacity - st.Used}
	}

	var hot, cold []view
	for _, v := range views {
		if v.pressure > 0 {
			hot = append(hot, v)
		} else if v.slack > 0 {
			cold = append(cold, v)
		}
	}
	if len(hot) == 0 || len(cold) == 0 {
		return res
	}
	// Hottest takers first, slackest donors first; index breaks ties so
	// a pass is deterministic for a given snapshot.
	sort.Slice(hot, func(a, b int) bool {
		if hot[a].pressure != hot[b].pressure {
			return hot[a].pressure > hot[b].pressure
		}
		return hot[a].i < hot[b].i
	})
	sort.Slice(cold, func(a, b int) bool {
		if cold[a].slack != cold[b].slack {
			return cold[a].slack > cold[b].slack
		}
		return cold[a].i < cold[b].i
	})

	for _, h := range hot {
		need := step
		for d := range cold {
			if need <= 0 {
				break
			}
			if cold[d].slack <= 0 {
				continue
			}
			// The donor re-validates its own floor under its lock; got
			// may be less than asked (or zero) if traffic filled it in
			// the meantime.
			got := s.shards[cold[d].i].donateQuota(need, floor)
			if got == 0 {
				cold[d].slack = 0
				continue
			}
			s.shards[h.i].grantQuota(got)
			cold[d].slack -= got
			need -= got
			res.Moved += got
			res.Moves = append(res.Moves, QuotaMove{From: cold[d].i, To: h.i, Bytes: got})
		}
	}
	return res
}

// MinShardQuota is the default donor floor for a store of the given
// global capacity and shard count: an eighth of the fair per-shard
// share. Low enough that a truly idle shard hands most of its capacity
// to the hot ones, high enough that it can still admit typical
// documents and re-enter the game when its URLs come back.
func MinShardQuota(capacity int64, shards int) int64 {
	if shards < 1 {
		shards = 1
	}
	q := capacity / int64(shards) / 8
	if q < 1 {
		q = 1
	}
	return q
}
