package pqueue

import (
	"testing"

	"webcache/internal/rng"
)

// benchItems returns n items with pre-generated random keys, built
// outside the timed region.
func benchItems(n int) []*item {
	r := rng.New(17)
	items := make([]*item, n)
	for i := range items {
		items[i] = &item{key: r.Intn(1 << 20), idx: -1}
	}
	return items
}

func benchmarkPush(b *testing.B, n int) {
	items := benchItems(n)
	h := newHeap()
	h.Grow(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			h.Push(it)
		}
		b.StopTimer()
		h.Clear()
		b.StartTimer()
	}
}

func BenchmarkPush1k(b *testing.B)  { benchmarkPush(b, 1024) }
func BenchmarkPush16k(b *testing.B) { benchmarkPush(b, 16384) }

// BenchmarkFix re-sifts random items of a steady heap with fresh random
// keys — the dominant heap operation of a cache replay (every hit
// touches one entry).
func benchmarkFix(b *testing.B, n int) {
	items := benchItems(n)
	h := newHeap()
	h.Grow(n)
	for _, it := range items {
		h.Push(it)
	}
	r := rng.New(23)
	picks := make([]int, 4096)
	keys := make([]int, 4096)
	for i := range picks {
		picks[i] = r.Intn(n)
		keys[i] = r.Intn(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[picks[i%len(picks)]]
		it.key = keys[i%len(keys)]
		h.Fix(it)
	}
}

func BenchmarkFix1k(b *testing.B)  { benchmarkFix(b, 1024) }
func BenchmarkFix16k(b *testing.B) { benchmarkFix(b, 16384) }

// BenchmarkRemovePush removes a random item and pushes it back — the
// eviction/insert cycle of a full cache at steady state.
func BenchmarkRemovePush(b *testing.B) {
	const n = 4096
	items := benchItems(n)
	h := newHeap()
	h.Grow(n)
	for _, it := range items {
		h.Push(it)
	}
	r := rng.New(29)
	picks := make([]int, 4096)
	for i := range picks {
		picks[i] = r.Intn(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[picks[i%len(picks)]]
		h.Remove(it)
		h.Push(it)
	}
}

// BenchmarkFixSwapSift is BenchmarkFix16k under the ablation switch, so
// `go test -bench 'Fix16k|FixSwapSift'` shows the hole-based sift's
// contribution directly.
func BenchmarkFixSwapSift(b *testing.B) {
	DisableHoleSift = true
	defer func() { DisableHoleSift = false }()
	benchmarkFix(b, 16384)
}
