package pqueue

import (
	"sort"
	"testing"

	"webcache/internal/rng"
)

// item is a minimal heap element for testing.
type item struct {
	key int
	idx int
}

func (it *item) HeapIndex() int     { return it.idx }
func (it *item) SetHeapIndex(i int) { it.idx = i }

func newHeap() *Heap[*item] {
	return New(func(a, b *item) bool { return a.key < b.key })
}

func TestPushPopSorted(t *testing.T) {
	h := newHeap()
	r := rng.New(1)
	var want []int
	for i := 0; i < 500; i++ {
		k := r.Intn(1000)
		want = append(want, k)
		h.Push(&item{key: k, idx: -1})
	}
	sort.Ints(want)
	for i, w := range want {
		got, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap empty early", i)
		}
		if got.key != w {
			t.Fatalf("pop %d: got %d, want %d", i, got.key, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop on empty heap succeeded")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := newHeap()
	h.Push(&item{key: 5, idx: -1})
	h.Push(&item{key: 3, idx: -1})
	p1, ok := h.Peek()
	if !ok || p1.key != 3 {
		t.Fatalf("peek = %v, %v", p1, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("peek changed length to %d", h.Len())
	}
}

func TestFixAfterKeyChange(t *testing.T) {
	h := newHeap()
	items := make([]*item, 10)
	for i := range items {
		items[i] = &item{key: i, idx: -1}
		h.Push(items[i])
	}
	items[9].key = -1 // make the largest the smallest
	if !h.Fix(items[9]) {
		t.Fatal("Fix did not find the item")
	}
	got, _ := h.Pop()
	if got != items[9] {
		t.Fatalf("after Fix, head key = %d, want -1", got.key)
	}
	items[0].key = 100 // push the old smallest to the back
	if !h.Fix(items[0]) {
		t.Fatal("Fix did not find item 0")
	}
	var last *item
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		last = it
	}
	if last != items[0] {
		t.Fatalf("largest-keyed item not popped last (got key %d)", last.key)
	}
}

func TestRemoveMiddle(t *testing.T) {
	h := newHeap()
	items := make([]*item, 20)
	for i := range items {
		items[i] = &item{key: i, idx: -1}
		h.Push(items[i])
	}
	if !h.Remove(items[10]) {
		t.Fatal("Remove returned false for a present item")
	}
	if items[10].idx != -1 {
		t.Fatalf("removed item keeps heap index %d", items[10].idx)
	}
	if h.Remove(items[10]) {
		t.Fatal("Remove succeeded twice for the same item")
	}
	seen := 0
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		if it == items[10] {
			t.Fatal("removed item still popped")
		}
		seen++
	}
	if seen != 19 {
		t.Fatalf("popped %d items, want 19", seen)
	}
}

func TestRemoveForeignItem(t *testing.T) {
	h := newHeap()
	h.Push(&item{key: 1, idx: -1})
	foreign := &item{key: 2, idx: 0} // claims index 0 but is not in the heap
	if h.Remove(foreign) {
		t.Fatal("Remove succeeded for an item not on the heap")
	}
	if h.Len() != 1 {
		t.Fatalf("foreign remove disturbed heap: len %d", h.Len())
	}
}

func TestClear(t *testing.T) {
	h := newHeap()
	its := []*item{{key: 1, idx: -1}, {key: 2, idx: -1}}
	for _, it := range its {
		h.Push(it)
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatalf("Clear left %d items", h.Len())
	}
	for _, it := range its {
		if it.idx != -1 {
			t.Fatalf("Clear left index %d on item", it.idx)
		}
	}
}

// TestRandomOpsAgainstReference drives the heap with random operations
// and cross-checks every result against a naive reference.
func TestRandomOpsAgainstReference(t *testing.T) {
	h := newHeap()
	r := rng.New(42)
	var ref []*item

	refMin := func() *item {
		var m *item
		for _, it := range ref {
			if m == nil || it.key < m.key || (it.key == m.key && it.idx < m.idx) {
				// Tie order between equal keys is unspecified; only
				// compare keys below.
				if m == nil || it.key < m.key {
					m = it
				}
			}
		}
		return m
	}
	refRemove := func(target *item) {
		for i, it := range ref {
			if it == target {
				ref = append(ref[:i], ref[i+1:]...)
				return
			}
		}
		t.Fatal("reference remove: item missing")
	}

	for op := 0; op < 20000; op++ {
		switch r.Intn(4) {
		case 0: // push
			it := &item{key: r.Intn(100), idx: -1}
			h.Push(it)
			ref = append(ref, it)
		case 1: // pop
			got, ok := h.Pop()
			if !ok {
				if len(ref) != 0 {
					t.Fatalf("op %d: heap empty, reference has %d", op, len(ref))
				}
				continue
			}
			if m := refMin(); got.key != m.key {
				t.Fatalf("op %d: popped key %d, reference min %d", op, got.key, m.key)
			}
			refRemove(got)
		case 2: // fix a random item
			if len(ref) == 0 {
				continue
			}
			it := ref[r.Intn(len(ref))]
			it.key = r.Intn(100)
			if !h.Fix(it) {
				t.Fatalf("op %d: Fix lost an item", op)
			}
		case 3: // remove a random item
			if len(ref) == 0 {
				continue
			}
			it := ref[r.Intn(len(ref))]
			if !h.Remove(it) {
				t.Fatalf("op %d: Remove lost an item", op)
			}
			refRemove(it)
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: heap len %d, reference %d", op, h.Len(), len(ref))
		}
	}
}

func TestFixForeignItem(t *testing.T) {
	h := newHeap()
	h.Push(&item{key: 1, idx: -1})
	foreign := &item{key: 2, idx: 0} // claims index 0 but is not in the heap
	if h.Fix(foreign) {
		t.Fatal("Fix succeeded for an item not on the heap")
	}
	if got, _ := h.Peek(); got.key != 1 {
		t.Fatalf("foreign Fix disturbed heap: head key %d", got.key)
	}
}

// TestHoleSiftMatchesSwapSift drives two heaps through the same random
// operation sequence, one with the hole-based sifts and one with the
// original pairwise-swap sifts, and requires identical layouts after
// every operation: the ablation switch must only change speed.
func TestHoleSiftMatchesSwapSift(t *testing.T) {
	defer func() { DisableHoleSift = false }()
	hole, swap := newHeap(), newHeap()
	var holeItems, swapItems []*item
	r := rng.New(9)
	for op := 0; op < 5000; op++ {
		k := r.Intn(50)
		switch {
		case r.Intn(3) == 0 && len(holeItems) > 0:
			i := r.Intn(len(holeItems))
			holeItems[i].key, swapItems[i].key = k, k
			DisableHoleSift = false
			hole.Fix(holeItems[i])
			DisableHoleSift = true
			swap.Fix(swapItems[i])
		case r.Intn(4) == 0 && len(holeItems) > 0:
			i := r.Intn(len(holeItems))
			DisableHoleSift = false
			hole.Remove(holeItems[i])
			DisableHoleSift = true
			swap.Remove(swapItems[i])
			holeItems = append(holeItems[:i], holeItems[i+1:]...)
			swapItems = append(swapItems[:i], swapItems[i+1:]...)
		default:
			hi, si := &item{key: k, idx: -1}, &item{key: k, idx: -1}
			DisableHoleSift = false
			hole.Push(hi)
			DisableHoleSift = true
			swap.Push(si)
			holeItems = append(holeItems, hi)
			swapItems = append(swapItems, si)
		}
		if hole.Len() != swap.Len() {
			t.Fatalf("op %d: lengths diverge (%d vs %d)", op, hole.Len(), swap.Len())
		}
		for i := range hole.Items() {
			if hole.Items()[i].key != swap.Items()[i].key {
				t.Fatalf("op %d: layouts diverge at slot %d (%d vs %d)",
					op, i, hole.Items()[i].key, swap.Items()[i].key)
			}
		}
	}
}
