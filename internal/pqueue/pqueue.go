// Package pqueue implements a generic indexed binary min-heap.
//
// The cache removal policies keep every cached document on a heap ordered
// by the policy's sorting keys; the document at the head of the heap is
// the next removal victim (§1.2 of the paper). Unlike container/heap this
// heap tracks each element's position itself, so a policy can re-sift a
// document in O(log n) when one of its keys changes (e.g. ATIME or NREF
// on every access) without the caller maintaining index bookkeeping.
package pqueue

// Item is implemented by values stored on a Heap. The heap calls
// SetHeapIndex whenever the item moves and uses HeapIndex to locate it for
// Fix and Remove. Items must not be shared between heaps.
type Item interface {
	HeapIndex() int
	SetHeapIndex(int)
}

// Elem constrains heap elements to items with comparable identity (in
// practice pointer types), so Remove and Fix can verify membership
// with a direct == against the tracked slot instead of boxing both
// sides through the empty interface.
type Elem interface {
	comparable
	Item
}

// Heap is an indexed binary min-heap ordered by less. The zero value is
// not usable; construct with New.
type Heap[T Elem] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less (less(a, b) means a is closer
// to the head, i.e. removed sooner).
func New[T Elem](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Grow pre-sizes the backing array to hold at least n items without
// further re-allocation, for callers with a capacity hint. It never
// shrinks and has no effect on heap order.
func (h *Heap[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]T, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

// Len reports the number of items on the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds item to the heap.
func (h *Heap[T]) Push(item T) {
	h.items = append(h.items, item)
	i := len(h.items) - 1
	item.SetHeapIndex(i)
	h.up(i)
}

// Peek returns the head (next victim) without removing it. The boolean is
// false when the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the head. The boolean is false when empty.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	head := h.items[0]
	h.removeAt(0)
	return head, true
}

// Remove deletes item from the heap using its tracked index. It is a
// no-op (returning false) if the item is not on this heap.
func (h *Heap[T]) Remove(item T) bool {
	i := item.HeapIndex()
	if i < 0 || i >= len(h.items) || h.items[i] != item {
		return false
	}
	h.removeAt(i)
	return true
}

// Fix re-establishes heap order after item's keys changed. It reports
// whether the item was found on the heap.
func (h *Heap[T]) Fix(item T) bool {
	i := item.HeapIndex()
	if i < 0 || i >= len(h.items) || h.items[i] != item {
		return false
	}
	if !h.down(i) {
		h.up(i)
	}
	return true
}

// Items returns the heap's backing slice in heap order (not sorted).
// Callers must not mutate it; it is exposed for policies that need to
// scan all entries (e.g. LRU-MIN's threshold search).
func (h *Heap[T]) Items() []T { return h.items }

// Clear removes all items.
func (h *Heap[T]) Clear() {
	for _, it := range h.items {
		it.SetHeapIndex(-1)
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) removeAt(i int) {
	n := len(h.items) - 1
	item := h.items[i]
	if i != n {
		h.items[i] = h.items[n]
		h.items[i].SetHeapIndex(i)
	}
	var zero T
	h.items[n] = zero
	h.items = h.items[:n]
	item.SetHeapIndex(-1)
	if i < n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

// DisableHoleSift reverts up and down to the pairwise-swap sift of the
// original implementation. It exists so the benchmark harness can
// reconstruct the pre-optimization hot path; the comparison sequence and
// resulting heap layout are identical either way.
var DisableHoleSift bool

// up sifts i toward the root. The moving item is held aside while its
// ancestors shift down into the hole, then written once at its final
// position — one write and one SetHeapIndex per level instead of two.
func (h *Heap[T]) up(i int) {
	if DisableHoleSift {
		h.upSwap(i)
		return
	}
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(item, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		h.items[i].SetHeapIndex(i)
		i = parent
	}
	h.items[i] = item
	item.SetHeapIndex(i)
}

// down sifts i toward the leaves with the same hole scheme as up; it
// reports whether the item moved.
func (h *Heap[T]) down(i int) bool {
	if DisableHoleSift {
		return h.downSwap(i)
	}
	start := i
	item := h.items[i]
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], item) {
			break
		}
		h.items[i] = h.items[smallest]
		h.items[i].SetHeapIndex(i)
		i = smallest
	}
	if i == start {
		return false
	}
	h.items[i] = item
	item.SetHeapIndex(i)
	return true
}

func (h *Heap[T]) upSwap(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) downSwap(i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			break
		}
		h.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].SetHeapIndex(i)
	h.items[j].SetHeapIndex(j)
}
