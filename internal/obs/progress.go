package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live replays-completed / ETA surface: experiment entry
// points grow the total, every emitted replay snapshot marks one done,
// and a background ticker renders a line (websim writes it to stderr so
// the experiment tables on stdout stay byte-identical).
type Progress struct {
	label    string
	interval time.Duration
	total    atomic.Int64
	done     atomic.Int64
	start    time.Time

	mu      sync.Mutex
	w       io.Writer
	stop    chan struct{}
	started bool
	stopped bool
}

// NewProgress returns a progress surface writing to w every interval
// (0 = a 1-second default). Call Start to launch the ticker; AddTotal
// and Done are usable (and concurrency-safe) either way.
func NewProgress(w io.Writer, label string, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{
		label:    label,
		interval: interval,
		start:    time.Now(),
		w:        w,
		stop:     make(chan struct{}),
	}
}

// AddTotal grows the expected replay count by n.
func (p *Progress) AddTotal(n int) { p.total.Add(int64(n)) }

// Done marks n replays completed.
func (p *Progress) Done(n int) { p.done.Add(int64(n)) }

// Counts returns (done, total).
func (p *Progress) Counts() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

// Line renders the current progress line: completed/total, percentage,
// elapsed wall time, and a throughput-based ETA once anything finished.
func (p *Progress) Line() string {
	done, total := p.Counts()
	elapsed := time.Since(p.start).Round(100 * time.Millisecond)
	if total <= 0 {
		return fmt.Sprintf("%s: %d replays done, elapsed %s", p.label, done, elapsed)
	}
	pct := 100 * float64(done) / float64(total)
	eta := "?"
	if done > 0 && done < total {
		rem := time.Duration(float64(time.Since(p.start)) / float64(done) * float64(total-done))
		eta = rem.Round(100 * time.Millisecond).String()
	} else if done >= total {
		eta = "0s"
	}
	return fmt.Sprintf("%s: %d/%d replays (%.0f%%), elapsed %s, eta %s",
		p.label, done, total, pct, elapsed, eta)
}

// Start launches the ticker goroutine; it renders a line per interval
// until Stop. Starting an already-started or already-stopped progress
// is a no-op — without the started guard a double Start would leak a
// second ticker goroutine that Stop's single channel close does halt,
// but that duplicates every rendered line until then.
func (p *Progress) Start() {
	p.mu.Lock()
	if p.stopped || p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	stop := p.stop
	p.mu.Unlock()
	go func() {
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.render()
			}
		}
	}()
}

// Stop halts the ticker and renders one final line.
func (p *Progress) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	close(p.stop)
	p.mu.Unlock()
	p.render()
}

// render writes the current line under the writer lock.
func (p *Progress) render() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w != nil {
		fmt.Fprintln(p.w, p.Line())
	}
}
