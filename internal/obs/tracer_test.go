package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tracerClock is a settable fake time source; driving the tracer off it
// makes span offsets, durations and window rotation deterministic.
type tracerClock struct{ t time.Time }

func newTracerClock() *tracerClock {
	return &tracerClock{t: time.Unix(1700000000, 0).UTC()}
}
func (c *tracerClock) now() time.Time          { return c.t }
func (c *tracerClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if rt := tr.Begin(); rt != nil {
		t.Fatalf("nil tracer sampled a request: %+v", rt)
	}
	tr.End(nil)

	// A nil ReqTrace (the unsampled request) must accept every
	// instrumentation call as a no-op — sites carry no sampling branches.
	var rt *ReqTrace
	sp := rt.BeginSpan(PhaseParse)
	if sp != NoSpan {
		t.Fatalf("nil trace returned span %d", sp)
	}
	rt.EndSpan(sp)
	rt.EndSpanArg(sp, 7)
	rt.SetURL("http://e.com/")
	rt.SetOutcome("HIT", 200, 1)
	rt.MarkError()
	rt.CountEviction()
	rt.SetShard(3)
	if rt.Spans() != nil || rt.DroppedSpans() != 0 {
		t.Fatal("nil trace reported spans")
	}

	// End(nil) on a live tracer: the unsampled request's completion.
	live := NewTracer(TracerOptions{SampleEvery: 2})
	live.Begin()
	live.End(nil)
}

// TestTracerSamplingDeterministic pins the head-sampling rule: with
// SampleEvery = n, requests 1, n+1, 2n+1, … are traced — the same
// arrival-order discipline as AccessLogger.SetSample.
func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 3})
	var sampled []int
	for i := 1; i <= 10; i++ {
		rt := tr.Begin()
		if rt != nil {
			sampled = append(sampled, i)
			tr.End(rt)
		}
	}
	want := []int{1, 4, 7, 10}
	if fmt.Sprint(sampled) != fmt.Sprint(want) {
		t.Fatalf("sampled requests %v, want %v", sampled, want)
	}
	if st := tr.Stats(); st.Sampled != 4 {
		t.Fatalf("Sampled = %d, want 4", st.Sampled)
	}
}

// finish drives one Begin/End pair with the given duration and verdict.
func finish(tr *Tracer, c *tracerClock, d time.Duration, verdict string) *ReqTrace {
	rt := tr.Begin()
	c.advance(d)
	rt.SetOutcome(verdict, 200, 1)
	tr.End(rt)
	return rt
}

// TestReservoirKeepsSlowest pins the tail-sampling core: with the
// K-slowest heap full, a faster request is discarded and a slower one
// displaces the current minimum.
func TestReservoirKeepsSlowest(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{SlowestK: 2, Clock: c.now})

	finish(tr, c, 10*time.Millisecond, "HIT") // ID 1
	finish(tr, c, 30*time.Millisecond, "HIT") // ID 2
	finish(tr, c, 5*time.Millisecond, "HIT")  // ID 3: faster than both — discarded
	finish(tr, c, 20*time.Millisecond, "HIT") // ID 4: displaces ID 1

	recs := Snapshot2IDs(tr)
	if fmt.Sprint(recs) != "[2 4]" {
		t.Fatalf("kept %v, want [2 4] (the two slowest)", recs)
	}
	// ID 3 never entered the reservoir (discarded); ID 1 was kept and
	// later displaced, which is not a discard.
	st := tr.Stats()
	if st.Sampled != 4 || st.Kept != 3 || st.Discarded != 1 || st.Flagged != 0 {
		t.Fatalf("stats %+v, want sampled 4 kept 3 discarded 1", st)
	}
	for _, rec := range tr.Snapshot() {
		if rec.Flag != "slow" {
			t.Fatalf("unflagged keeper has flag %q", rec.Flag)
		}
	}
}

// Snapshot2IDs returns the kept trace IDs in ascending order.
func Snapshot2IDs(tr *Tracer) []uint64 {
	recs := tr.Snapshot()
	ids := make([]uint64, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	return ids
}

// TestReservoirFlaggedAlwaysKept pins that errored, missed, and
// evicting requests bypass the slowness competition entirely, and that
// the flagged ring recycles oldest-first at its cap.
func TestReservoirFlaggedAlwaysKept(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{SlowestK: 1, FlaggedCap: 2, Clock: c.now})

	// Fill the slow heap with one genuinely slow request.
	finish(tr, c, time.Second, "HIT") // ID 1

	// Zero-duration flagged requests: each would lose the slowness race.
	finish(tr, c, 0, "MISS") // ID 2
	rt := tr.Begin()         // ID 3: errored
	rt.MarkError()
	rt.SetOutcome("ERROR", 502, 0)
	tr.End(rt)
	rt = tr.Begin() // ID 4: evicting
	rt.CountEviction()
	rt.SetOutcome("HIT", 200, 1)
	tr.End(rt)

	// Cap is 2: ID 2 (oldest flagged) was recycled to admit ID 4.
	if got := fmt.Sprint(Snapshot2IDs(tr)); got != "[1 3 4]" {
		t.Fatalf("kept %v, want [1 3 4]", got)
	}
	flags := map[uint64]string{}
	for _, rec := range tr.Snapshot() {
		flags[rec.ID] = rec.Flag
	}
	if flags[3] != "error" || flags[4] != "evict" {
		t.Fatalf("flags = %v, want 3:error 4:evict", flags)
	}
	if st := tr.Stats(); st.Flagged != 3 {
		t.Fatalf("Flagged = %d, want 3", st.Flagged)
	}
}

// TestReservoirWindowRotation pins that a window boundary moves the
// closing window's slowest traces into the recent ring — still visible
// in the snapshot — and starts a fresh slowness competition.
func TestReservoirWindowRotation(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{SlowestK: 1, Window: time.Minute, Clock: c.now})

	finish(tr, c, 50*time.Millisecond, "HIT") // ID 1: window 1's slowest
	c.advance(2 * time.Minute)
	// ID 2 is much faster, but lands in a fresh window: it must be kept
	// rather than compared against ID 1.
	finish(tr, c, time.Millisecond, "HIT")

	if got := fmt.Sprint(Snapshot2IDs(tr)); got != "[1 2]" {
		t.Fatalf("kept %v, want [1 2] (rotation preserved window 1's keeper)", got)
	}
}

// TestSpanBufferOverflow pins the fixed-size span discipline: spans past
// maxSpans are counted, never grown into.
func TestSpanBufferOverflow(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{Clock: c.now})
	rt := tr.Begin()
	for i := 0; i < maxSpans+3; i++ {
		sp := rt.BeginSpan(PhaseEvict)
		if i < maxSpans && sp == NoSpan {
			t.Fatalf("span %d rejected below the cap", i)
		}
		if i >= maxSpans && sp != NoSpan {
			t.Fatalf("span %d accepted past the cap", i)
		}
		rt.EndSpan(sp)
	}
	if got := rt.DroppedSpans(); got != 3 {
		t.Fatalf("DroppedSpans = %d, want 3", got)
	}
	rt.SetOutcome("HIT", 200, 1)
	tr.End(rt)
	if st := tr.Stats(); st.DroppedSpans != 3 {
		t.Fatalf("stats DroppedSpans = %d, want 3", st.DroppedSpans)
	}
	rec := tr.Snapshot()[0]
	if rec.DroppedSpans != 3 || len(rec.Spans) != maxSpans {
		t.Fatalf("record has %d spans, %d dropped; want %d/3", len(rec.Spans), rec.DroppedSpans, maxSpans)
	}
}

// TestTracerChromeTraceGolden pins the request-tree export format
// byte-for-byte, the same discipline as the event ring's golden test:
// Perfetto compatibility must not drift silently. One sampled miss that
// evicted renders as a parent "request" span with nested phase spans.
func TestTracerChromeTraceGolden(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{Clock: c.now})

	rt := tr.Begin()
	rt.SetURL("http://e.com/a")
	parse := rt.BeginSpan(PhaseParse)
	c.advance(time.Millisecond)
	rt.EndSpan(parse)
	get := rt.BeginSpan(PhaseStoreGet)
	c.advance(2 * time.Millisecond)
	rt.EndSpan(get)
	admit := rt.BeginSpan(PhaseAdmit)
	ev := rt.BeginSpan(PhaseEvict)
	c.advance(time.Millisecond)
	rt.EndSpanArg(ev, 512)
	rt.CountEviction()
	c.advance(time.Millisecond)
	rt.EndSpanArg(admit, 1)
	rt.SetOutcome("MISS", 200, 2048)
	c.advance(time.Millisecond)
	tr.End(rt)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"request","ph":"X","ts":1700000000000000,"dur":6000,"pid":2,"tid":1,"args":{"bytes":2048,"evictions":1,"flag":"evict","status":200,"trace":"00000001","url":"http://e.com/a","verdict":"MISS"}},{"name":"parse","ph":"X","ts":1700000000000000,"dur":1000,"pid":2,"tid":1},{"name":"store.get","ph":"X","ts":1700000000001000,"dur":2000,"pid":2,"tid":1},{"name":"admit","ph":"X","ts":1700000000003000,"dur":2000,"pid":2,"tid":1,"args":{"arg":1}},{"name":"evict","ph":"X","ts":1700000000003000,"dur":1000,"pid":2,"tid":1,"args":{"arg":512}}]` + "\n"
	if buf.String() != want {
		t.Fatalf("Chrome trace drifted.\ngot:  %s\nwant: %s", buf.String(), want)
	}
}

// TestWriteCombinedChromeTrace pins the merged export: ring residency
// spans on pid 1 and request trees on pid 2 in one array, and an empty
// valid array when both sources are absent.
func TestWriteCombinedChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCombinedChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty combined trace = %q, want []", got)
	}

	c := newTracerClock()
	ring := NewEventRing(16)
	ring.Record(Event{Kind: EventAdd, Time: c.t.Unix(), ID: -1, Size: 100})
	ring.Record(Event{Kind: EventHit, Time: c.t.Unix() + 1, ID: -1, Size: 100})

	tr := NewTracer(TracerOptions{Clock: c.now})
	rt := tr.Begin()
	rt.SetURL("http://e.com/a")
	rt.SetOutcome("HIT", 200, 100)
	c.advance(time.Millisecond)
	tr.End(rt)

	buf.Reset()
	if err := WriteCombinedChromeTrace(&buf, ring, tr); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Pid  int    `json:"pid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("combined trace is not valid JSON: %v", err)
	}
	pids := map[int]int{}
	for _, e := range events {
		pids[e.Pid]++
	}
	if pids[1] == 0 || pids[2] == 0 {
		t.Fatalf("combined trace missing a source: pid counts %v", pids)
	}
}

// TestTracerHandler covers the /requests admin endpoint in both
// formats.
func TestTracerHandler(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{Clock: c.now})
	rt := tr.Begin()
	rt.SetURL("http://e.com/slow")
	sp := rt.BeginSpan(PhaseStoreGet)
	c.advance(4 * time.Millisecond)
	rt.EndSpan(sp)
	rt.SetOutcome("MISS", 200, 321)
	tr.End(rt)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/requests", nil))
	text := rec.Body.String()
	for _, want := range []string{
		"request traces: 1 sampled, 1 kept (1 flagged)",
		"00000001", "MISS", "store.get=4ms", "http://e.com/slow",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text view missing %q:\n%s", want, text)
		}
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/requests?format=json", nil))
	var doc struct {
		Stats    TracerStats     `json:"stats"`
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if doc.Stats.Sampled != 1 || len(doc.Requests) != 1 {
		t.Fatalf("JSON view = %+v", doc)
	}
	r := doc.Requests[0]
	if r.URL != "http://e.com/slow" || r.Flag != "miss" || len(r.Spans) != 1 || r.Spans[0].Phase != "store.get" {
		t.Fatalf("record = %+v", r)
	}
}

// TestTracerRegisterMetrics pins the proxy.trace_* exposition names CI
// greps for.
func TestTracerRegisterMetrics(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	reg := NewRegistry()
	tr.RegisterMetrics(reg, "proxy")
	tr.End(tr.Begin())

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"proxy.trace_sampled 1", "proxy.trace_kept 1",
		"proxy.trace_flagged", "proxy.trace_discarded", "proxy.trace_dropped_spans",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestPhaseString pins the wire names the exports and summaries use.
func TestPhaseString(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "phase(") {
			t.Errorf("phase %d has no name", p)
		}
	}
	if got := Phase(250).String(); got != "phase(250)" {
		t.Errorf("out-of-range phase = %q", got)
	}
}

// TestTracerSteadyStateAllocs pins the pooling contract: once the
// reservoir is warm, a sampled request that loses the slowness race
// (the common case) allocates nothing — Begin reuses a recycled trace
// and End recycles it back.
func TestTracerSteadyStateAllocs(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{SlowestK: 1, Clock: c.now})
	finish(tr, c, time.Hour, "HIT") // fill the heap with an unbeatable keeper

	allocs := testing.AllocsPerRun(200, func() {
		rt := tr.Begin()
		sp := rt.BeginSpan(PhaseStoreGet)
		rt.EndSpan(sp)
		rt.SetOutcome("HIT", 200, 1)
		tr.End(rt) // zero-duration: discarded and recycled
	})
	if allocs > 0 {
		t.Fatalf("steady-state sampled request allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkTracerDisabled prices the nil check the entire feature costs
// when off.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		rt := tr.Begin()
		rt.SetOutcome("HIT", 200, 1)
		tr.End(rt)
	}
}

// BenchmarkTracerSampled prices the full Begin/span/End path for a
// discarded (steady-state) request.
func BenchmarkTracerSampled(b *testing.B) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{SlowestK: 1, Clock: c.now})
	finish(tr, c, time.Hour, "HIT")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := tr.Begin()
		sp := rt.BeginSpan(PhaseStoreGet)
		rt.EndSpan(sp)
		rt.SetOutcome("HIT", 200, 1)
		tr.End(rt)
	}
}
