package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestServerHealthz(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", status, body)
	}
}

func TestServerHealthzDegraded(t *testing.T) {
	s := NewServer(ServerOptions{Healthz: func() error { return fmt.Errorf("store offline") }})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/healthz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "store offline") {
		t.Fatalf("degraded healthz = %d %q, want 503 with reason", status, body)
	}
}

func TestServerMetricsTextAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cache.hits").Add(7)
	reg.Histogram("latency_ns").Observe(1000)
	s := NewServer(ServerOptions{Registry: reg})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{"cache.hits 7", "latency_ns.count 1", "latency_ns.p50", "latency_ns.p99"} {
		if !strings.Contains(body, want) {
			t.Errorf("text exposition missing %q:\n%s", want, body)
		}
	}

	body, status = get(t, srv.URL+"/metrics?format=json")
	if status != http.StatusOK {
		t.Fatalf("metrics json status = %d", status)
	}
	var doc struct {
		Metrics    map[string]any `json:"metrics"`
		Histograms map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("json exposition unparsable: %v\n%s", err, body)
	}
	if doc.Metrics["cache.hits"].(float64) != 7 {
		t.Errorf("json cache.hits = %v, want 7", doc.Metrics["cache.hits"])
	}
	h := doc.Histograms["latency_ns"].(map[string]any)
	for _, key := range []string{"count", "sum", "p50", "p95", "p99", "buckets"} {
		if _, ok := h[key]; !ok {
			t.Errorf("json histogram missing %q: %v", key, h)
		}
	}
}

func TestServerMetricsWithoutRegistry(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, status := get(t, srv.URL+"/metrics"); status != http.StatusNotFound {
		t.Fatalf("metrics without registry = %d, want 404", status)
	}
}

func TestServerBuildinfo(t *testing.T) {
	s := NewServer(ServerOptions{BuildMeta: map[string]any{"cmd": "proxy", "policy": "LRU-MIN"}})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/buildinfo")
	if status != http.StatusOK {
		t.Fatalf("buildinfo status = %d", status)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("buildinfo unparsable: %v", err)
	}
	if doc["cmd"] != "proxy" || doc["policy"] != "LRU-MIN" {
		t.Errorf("buildinfo meta = %v, want cmd/policy merged in", doc)
	}
	for _, key := range []string{"go_version", "git_rev"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("buildinfo missing %q", key)
		}
	}
}

func TestServerTrace(t *testing.T) {
	ring := NewEventRing(8)
	ring.Record(Event{Kind: EventEvict, Time: 50, ID: 3, Size: 512, Age: 20, NRef: 4})
	s := NewServer(ServerOptions{Ring: ring})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace status = %d", status)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(body), &records); err != nil {
		t.Fatalf("trace unparsable: %v", err)
	}
	if len(records) != 1 || records[0]["ph"] != "X" {
		t.Fatalf("trace = %v, want one complete event", records)
	}
}

func TestServerTraceWithoutRing(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, status := get(t, srv.URL+"/trace"); status != http.StatusNotFound {
		t.Fatalf("trace without ring = %d, want 404", status)
	}
}

// TestServerRequests wires a tracer with one kept request into the
// admin server and reads it back through /requests in both formats,
// and through /trace as the combined export (ring residency on pid 1,
// request span trees on pid 2).
func TestServerRequests(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{Clock: c.now})
	rt := tr.Begin()
	rt.SetURL("http://e.com/slow")
	sp := rt.BeginSpan(PhaseStoreGet)
	c.advance(3 * time.Millisecond)
	rt.EndSpan(sp)
	rt.SetOutcome("MISS", 200, 64)
	tr.End(rt)

	ring := NewEventRing(8)
	ring.Record(Event{Kind: EventAdd, Time: 10, ID: 1, Size: 64})

	s := NewServer(ServerOptions{Ring: ring, Tracer: tr})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/requests")
	if status != http.StatusOK || !strings.Contains(body, "00000001") || !strings.Contains(body, "MISS") {
		t.Fatalf("requests table = %d %q", status, body)
	}
	body, status = get(t, srv.URL+"/requests?format=json")
	if status != http.StatusOK {
		t.Fatalf("requests json status = %d", status)
	}
	var doc struct {
		Requests []map[string]any `json:"requests"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("requests json unparsable: %v\n%s", err, body)
	}
	if len(doc.Requests) != 1 || doc.Requests[0]["url"] != "http://e.com/slow" {
		t.Fatalf("requests json = %v, want the one kept trace", doc.Requests)
	}

	body, status = get(t, srv.URL+"/trace")
	if status != http.StatusOK {
		t.Fatalf("combined trace status = %d", status)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("combined trace unparsable: %v", err)
	}
	pids := map[float64]int{}
	for _, ev := range events {
		pids[ev["pid"].(float64)]++
	}
	if pids[1] == 0 || pids[2] == 0 {
		t.Fatalf("combined trace missing a source: pid counts %v", pids)
	}

	if body, status = get(t, srv.URL+"/"); status != http.StatusOK || !strings.Contains(body, "/requests") {
		t.Fatalf("index does not list /requests: %d\n%s", status, body)
	}
}

// TestServerRequestsWithoutTracer mirrors TestServerTraceWithoutRing:
// no tracer attached means 404, not an empty page.
func TestServerRequestsWithoutTracer(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, status := get(t, srv.URL+"/requests"); status != http.StatusNotFound {
		t.Fatalf("requests without tracer = %d, want 404", status)
	}
}

// TestServerTraceTracerOnly pins that /trace works with only the
// request tracer attached (no event ring): the combined writer treats
// either source alone as exportable.
func TestServerTraceTracerOnly(t *testing.T) {
	c := newTracerClock()
	tr := NewTracer(TracerOptions{Clock: c.now})
	finish(tr, c, time.Millisecond, "HIT")
	s := NewServer(ServerOptions{Tracer: tr})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, status := get(t, srv.URL+"/trace")
	if status != http.StatusOK {
		t.Fatalf("tracer-only trace status = %d", status)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("tracer-only trace unparsable: %v", err)
	}
	if len(events) == 0 || events[0]["pid"].(float64) != 2 {
		t.Fatalf("tracer-only trace = %v, want pid-2 request spans", events)
	}
}

func TestServerEventsWithoutSource(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, status := get(t, srv.URL+"/events"); status != http.StatusNotFound {
		t.Fatalf("events without source = %d, want 404", status)
	}
}

func TestServerEventsPush(t *testing.T) {
	b := NewBroadcaster()
	s := NewServer(ServerOptions{Events: b})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}

	// The subscription registers during handler startup; wait for it so
	// the publish cannot race ahead of Subscribe.
	waitFor(t, func() bool { return b.Subscribers() == 1 })
	b.Publish(ReplaySnapshot{Policy: "SIZE", Workload: "U", Hits: 42})

	frame := readSSEFrame(t, bufio.NewReader(resp.Body))
	var snap ReplaySnapshot
	if err := json.Unmarshal([]byte(frame), &snap); err != nil {
		t.Fatalf("SSE frame unparsable: %v\n%s", err, frame)
	}
	if snap.Policy != "SIZE" || snap.Hits != 42 {
		t.Fatalf("SSE frame = %+v, want published snapshot", snap)
	}
}

func TestServerEventsPoll(t *testing.T) {
	calls := 0
	s := NewServer(ServerOptions{
		Snapshot:         func() any { calls++; return map[string]any{"requests": calls} },
		SnapshotInterval: 10 * time.Millisecond,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()

	// The first frame arrives immediately (no full-interval wait), and a
	// second follows from the ticker.
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		frame := readSSEFrame(t, br)
		var doc map[string]any
		if err := json.Unmarshal([]byte(frame), &doc); err != nil {
			t.Fatalf("poll frame %d unparsable: %v\n%s", i, err, frame)
		}
		if doc["requests"].(float64) < 1 {
			t.Fatalf("poll frame %d = %v, want requests >= 1", i, doc)
		}
	}
}

// TestServerEventsNoGoroutineLeak pins the SSE shutdown contract: open
// streams are released by Close, and disconnected clients release their
// handler goroutines. goleak-style — compare runtime.NumGoroutine
// before and after, with retries for scheduler lag.
func TestServerEventsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	b := NewBroadcaster()
	s := NewServer(ServerOptions{
		Events:           b,
		Snapshot:         func() any { return map[string]any{} },
		SnapshotInterval: 5 * time.Millisecond,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}

	// Open several streams, read a frame from each, then close the
	// server underneath them.
	var resps []*http.Response
	for i := 0; i < 3; i++ {
		resp, err := http.Get("http://" + addr.String() + "/events")
		if err != nil {
			t.Fatalf("GET /events: %v", err)
		}
		readSSEFrame(t, bufio.NewReader(resp.Body))
		resps = append(resps, resp)
	}
	waitFor(t, func() bool { return b.Subscribers() == 3 })

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, resp := range resps {
		io.Copy(io.Discard, resp.Body) // drain to EOF — server is gone
		resp.Body.Close()
	}

	// Handlers must have unsubscribed on the way out.
	waitFor(t, func() bool { return b.Subscribers() == 0 })
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestProgressNoGoroutineLeak covers the Progress side of the audit: a
// double Start must not launch a second ticker, and Stop must release
// the one that is running.
func TestProgressNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewProgress(io.Discard, "test", time.Millisecond)
	p.Start()
	p.Start() // must be a no-op, not a second ticker goroutine
	p.AddTotal(2)
	p.Done(1)
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	p.Start() // starting after stop stays a no-op
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestServerStartClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	s := NewServer(ServerOptions{Registry: reg})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	body, status := get(t, "http://"+addr.String()+"/metrics")
	if status != http.StatusOK || !strings.Contains(body, "up 1") {
		t.Fatalf("served metrics = %d %q", status, body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestServerIndexAndExtra(t *testing.T) {
	s := NewServer(ServerOptions{
		Extra: map[string]http.Handler{
			"/accesslog": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				io.WriteString(w, "log line\n")
			}),
		},
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, status := get(t, srv.URL+"/")
	if status != http.StatusOK {
		t.Fatalf("index status = %d", status)
	}
	for _, want := range []string{"/healthz", "/metrics", "/events", "/debug/pprof/", "/accesslog"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
	if body, status = get(t, srv.URL+"/accesslog"); status != http.StatusOK || body != "log line\n" {
		t.Fatalf("extra handler = %d %q", status, body)
	}
	if _, status = get(t, srv.URL+"/nonexistent"); status != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", status)
	}
}

func TestServerPprofIndex(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, status := get(t, srv.URL+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d, want profile listing", status)
	}
}

func TestBroadcasterDropsOnFullBuffer(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(1)
	b.Publish(2) // buffer full: dropped, not blocked
	if got := <-ch; got != 1 {
		t.Fatalf("first value = %v, want 1", got)
	}
	select {
	case v := <-ch:
		t.Fatalf("unexpected second value %v, want drop", v)
	default:
	}
	cancel()
	cancel() // idempotent
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() after cancel = %d, want 0", n)
	}
}

func TestObserverPublishesToBroadcaster(t *testing.T) {
	b := NewBroadcaster()
	ring := NewEventRing(8)
	o := New(Options{Events: b, Ring: ring})
	if o.Events() != b || o.Ring() != ring {
		t.Fatal("accessors do not return the attached ring/broadcaster")
	}
	ch, cancel := b.Subscribe(4)
	defer cancel()
	o.EmitReplay(ReplaySnapshot{Policy: "LRU", Workload: "U"})
	select {
	case v := <-ch:
		snap, ok := v.(ReplaySnapshot)
		if !ok || snap.Policy != "LRU" {
			t.Fatalf("published value = %#v, want the snapshot", v)
		}
	case <-time.After(time.Second):
		t.Fatal("snapshot was not published")
	}
}

// get fetches a URL and returns (body, status).
func get(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body), resp.StatusCode
}

// readSSEFrame reads one "data: ..." frame from an SSE stream.
func readSSEFrame(t *testing.T, br *bufio.Reader) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if strings.HasPrefix(line, "data: ") {
			return strings.TrimPrefix(line, "data: ")
		}
	}
	t.Fatal("no SSE data frame within deadline")
	return ""
}

// waitFor polls cond until true or a 2-second deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
