package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestEventRingRecordAndSnapshot(t *testing.T) {
	r := NewEventRing(4)
	if got := r.Cap(); got != 4 {
		t.Fatalf("Cap() = %d, want 4", got)
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len() on empty ring = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		r.Record(Event{Kind: EventMiss, Time: int64(i), Size: int64(10 * i)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot() len = %d, want 3", len(snap))
	}
	for i, ev := range snap {
		if ev.Time != int64(i) {
			t.Errorf("snapshot[%d].Time = %d, want %d (oldest first)", i, ev.Time, i)
		}
	}
}

func TestEventRingWrapKeepsNewest(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: EventHit, Time: int64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len() after wrap = %d, want 4", got)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	snap := r.Snapshot()
	want := []int64{6, 7, 8, 9}
	for i, ev := range snap {
		if ev.Time != want[i] {
			t.Errorf("snapshot[%d].Time = %d, want %d", i, ev.Time, want[i])
		}
	}
}

func TestEventRingCounts(t *testing.T) {
	r := NewEventRing(2) // smaller than the event stream: counts must survive wrap
	r.Record(Event{Kind: EventHit})
	r.Record(Event{Kind: EventHit})
	r.Record(Event{Kind: EventMiss})
	r.Record(Event{Kind: EventEvict})
	r.Record(Event{Kind: EventAdd})
	r.Record(Event{Kind: EventAdd})
	r.Record(Event{Kind: EventAdd})
	hits, misses, evicts, adds := r.Counts()
	if hits != 2 || misses != 1 || evicts != 1 || adds != 3 {
		t.Fatalf("Counts() = (%d,%d,%d,%d), want (2,1,1,3)", hits, misses, evicts, adds)
	}
}

func TestEventRingMinCapacity(t *testing.T) {
	r := NewEventRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1 (clamped)", r.Cap())
	}
	r.Record(Event{Kind: EventMiss, Time: 42})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Time != 42 {
		t.Fatalf("Snapshot() = %+v, want single event with Time 42", snap)
	}
}

func TestEventRingConcurrentRecord(t *testing.T) {
	r := NewEventRing(64)
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{Kind: EventKind(i % 4), Time: int64(i)})
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != writers*per {
		t.Fatalf("Total() = %d, want %d", got, writers*per)
	}
	hits, misses, evicts, adds := r.Counts()
	if hits+misses+evicts+adds != writers*per {
		t.Fatalf("Counts() sum = %d, want %d", hits+misses+evicts+adds, writers*per)
	}
}

// TestEventRingConcurrentWrap hammers a ring much smaller than the
// event stream: totals and per-kind counts must be exact despite every
// writer wrapping the buffer many times over, and the retained window
// must hold only intact events (a torn slot would surface as a payload
// that no writer produced).
func TestEventRingConcurrentWrap(t *testing.T) {
	const capacity, writers, per = 32, 8, 2000
	r := NewEventRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq := int64(w*per + i)
				// Size is derived from Time, so a reader can verify a
				// snapshot event was written atomically.
				r.Record(Event{Kind: EventKind(i % 4), Time: seq, Size: seq * 3})
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(); got != writers*per {
		t.Fatalf("Total() = %d, want %d", got, writers*per)
	}
	if got := r.Len(); got != capacity {
		t.Fatalf("Len() after heavy wrap = %d, want %d", got, capacity)
	}
	hits, misses, evicts, adds := r.Counts()
	if hits != writers*per/4 || misses != writers*per/4 || evicts != writers*per/4 || adds != writers*per/4 {
		t.Fatalf("Counts() = (%d,%d,%d,%d), want %d each", hits, misses, evicts, adds, writers*per/4)
	}
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("Snapshot() len = %d, want %d", len(snap), capacity)
	}
	for i, ev := range snap {
		if ev.Time < 0 || ev.Time >= writers*per || ev.Size != ev.Time*3 {
			t.Errorf("snapshot[%d] = %+v: torn or fabricated event", i, ev)
		}
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventHit:   "hit",
		EventMiss:  "miss",
		EventEvict: "evict",
		EventAdd:   "add",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	b, err := json.Marshal(EventEvict)
	if err != nil || string(b) != `"evict"` {
		t.Errorf("Marshal(EventEvict) = %s, %v; want \"evict\"", b, err)
	}
}

// TestChromeTraceGolden validates the Chrome trace-event export against
// the trace-event format's schema: a JSON array where every record has
// the required ph/ts/pid/name keys, evictions are complete ("X") events
// spanning the victim's residency window, and the rest are instants.
func TestChromeTraceGolden(t *testing.T) {
	r := NewEventRing(16)
	r.Record(Event{Kind: EventMiss, Time: 100, ID: -1, Size: 2048})
	r.Record(Event{Kind: EventAdd, Time: 100, ID: 7, Size: 2048})
	r.Record(Event{Kind: EventHit, Time: 160, ID: 7, Size: 2048, NRef: 2})
	r.Record(Event{Kind: EventEvict, Time: 400, ID: 7, Size: 2048, Age: 300, NRef: 2})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("export is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4", len(records))
	}
	for i, rec := range records {
		for _, key := range []string{"ph", "ts", "pid", "name"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("record %d missing required key %q: %v", i, key, rec)
			}
		}
	}

	// The eviction is a complete event spanning [Time-Age, Time] in µs.
	ev := records[3]
	if ev["ph"] != "X" {
		t.Errorf("evict ph = %v, want X", ev["ph"])
	}
	if got := ev["ts"].(float64); got != float64((400-300)*1e6) {
		t.Errorf("evict ts = %v, want %v", got, (400-300)*1e6)
	}
	if got := ev["dur"].(float64); got != float64(300*1e6) {
		t.Errorf("evict dur = %v, want %v", got, 300*1e6)
	}
	args := ev["args"].(map[string]any)
	if args["age"].(float64) != 300 || args["nref"].(float64) != 2 {
		t.Errorf("evict args = %v, want age=300 nref=2", args)
	}

	// Instants carry the mandatory scope and microsecond timestamps.
	for i, kind := range []string{"miss", "add", "hit"} {
		rec := records[i]
		if rec["name"] != kind {
			t.Errorf("record %d name = %v, want %s", i, rec["name"], kind)
		}
		if rec["ph"] != "i" || rec["s"] != "t" {
			t.Errorf("%s record ph/s = %v/%v, want i/t", kind, rec["ph"], rec["s"])
		}
	}
	// A miss has no known URL ID; the id arg must be omitted, not -1.
	missArgs := records[0]["args"].(map[string]any)
	if _, ok := missArgs["id"]; ok {
		t.Errorf("miss args include id = %v, want omitted for ID -1", missArgs["id"])
	}
	// Per-kind tid tracks keep the classes visually separate.
	seen := map[float64]string{}
	for _, rec := range records {
		tid := rec["tid"].(float64)
		name := rec["name"].(string)
		if prev, ok := seen[tid]; ok && prev != name {
			t.Errorf("tid %v shared by %s and %s", tid, prev, name)
		}
		seen[tid] = name
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEventRing(4).WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace on empty ring: %v", err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("empty export is not a JSON array: %v", err)
	}
	if len(records) != 0 {
		t.Fatalf("empty ring exported %d records", len(records))
	}
}

func BenchmarkEventRingRecord(b *testing.B) {
	r := NewEventRing(1 << 16)
	ev := Event{Kind: EventHit, Time: 1, ID: 7, Size: 1024, NRef: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func ExampleEventRing_Snapshot() {
	r := NewEventRing(8)
	r.Record(Event{Kind: EventMiss, Time: 1, ID: -1, Size: 100})
	r.Record(Event{Kind: EventAdd, Time: 1, ID: 3, Size: 100})
	for _, ev := range r.Snapshot() {
		fmt.Printf("%s t=%d size=%d\n", ev.Kind, ev.Time, ev.Size)
	}
	// Output:
	// miss t=1 size=100
	// add t=1 size=100
}
