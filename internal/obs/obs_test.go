package obs

import (
	"bytes"
	"encoding/json"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeLines parses a JSONL buffer into one map per line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("bad JSONL line %d: %v", len(out), err)
		}
		out = append(out, m)
	}
	return out
}

func TestObserverJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{
		Metrics: &buf,
		Meta:    map[string]any{"git_rev": "abc123", "tool": "websim"},
	})
	o.SetExperiment("2")
	o.EmitReplay(ReplaySnapshot{
		Workload: "BL", Policy: "SIZE/RANDOM", Capacity: 1000,
		Requests: 100, Hits: 40, Misses: 60, Evictions: 7,
		EvictedBytes: 7000, HeapPeak: 12, OccupancyHighWater: 990,
		ReplayNs: 14300, NsPerRequest: 143,
	})
	o.Registry().Counter("cache.hits").Add(40)
	if err := o.Close(RunSummary{Workers: 4}); err != nil {
		t.Fatal(err)
	}

	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL records, want header+replay+summary", len(lines))
	}
	h := lines[0]
	if h["record"] != "header" || h["schema"] != SchemaVersion || h["git_rev"] != "abc123" {
		t.Fatalf("header = %v", h)
	}
	r := lines[1]
	if r["record"] != "replay" || r["policy"] != "SIZE/RANDOM" || r["experiment"] != "2" {
		t.Fatalf("replay record = %v", r)
	}
	if r["heap_peak"] != float64(12) || r["occupancy_high_water"] != float64(990) {
		t.Fatalf("replay gauges = %v", r)
	}
	s := lines[2]
	if s["record"] != "summary" || s["replays"] != float64(1) {
		t.Fatalf("summary = %v", s)
	}
	metrics, ok := s["metrics"].(map[string]any)
	if !ok || metrics["cache.hits"] != float64(40) {
		t.Fatalf("summary metrics = %v", s["metrics"])
	}
}

func TestObserverInMemoryOnly(t *testing.T) {
	o := New(Options{})
	o.EmitReplay(ReplaySnapshot{Policy: "LRU", Requests: 10, ReplayNs: 1000})
	o.EmitReplay(ReplaySnapshot{Policy: "FIFO", Requests: 30, ReplayNs: 2000})
	if err := o.Close(RunSummary{}); err != nil {
		t.Fatal(err)
	}
	snaps := o.Snapshots()
	if len(snaps) != 2 || snaps[0].Policy != "LRU" || snaps[1].Policy != "FIFO" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if got, want := o.MeanNsPerRequest(), 3000.0/40; got != want {
		t.Fatalf("mean ns/request = %g, want %g", got, want)
	}
}

func TestObserverConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{Metrics: &buf})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				o.EmitReplay(ReplaySnapshot{Policy: "P", Requests: 1})
			}
		}()
	}
	wg.Wait()
	if got := len(o.Snapshots()); got != 400 {
		t.Fatalf("%d snapshots, want 400", got)
	}
	// Every streamed line must still be valid JSON (no torn writes).
	if got := len(decodeLines(t, &buf)); got != 401 { // header + 400 replays
		t.Fatalf("%d JSONL lines, want 401", got)
	}
}

func TestProgressCountsAndLine(t *testing.T) {
	p := NewProgress(nil, "websim", time.Hour)
	p.AddTotal(36)
	p.Done(9)
	done, total := p.Counts()
	if done != 9 || total != 36 {
		t.Fatalf("counts = %d/%d, want 9/36", done, total)
	}
	line := p.Line()
	for _, want := range []string{"websim:", "9/36", "25%", "eta"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	// No total yet: the line degrades to a plain completion count.
	q := NewProgress(nil, "bench", time.Hour)
	q.Done(3)
	if line := q.Line(); !strings.Contains(line, "3 replays done") {
		t.Fatalf("totalless line = %q", line)
	}
}

func TestProgressStopWritesFinalLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "websim", time.Hour)
	p.AddTotal(4)
	p.Done(4)
	p.Start()
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "4/4") || !strings.Contains(out, "100%") {
		t.Fatalf("final line = %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("double Stop wrote %d lines:\n%s", strings.Count(out, "\n"), out)
	}
}

// goroutineLabels dumps the debug-form goroutine profile, whose
// entries include each labeled goroutine's pprof label set.
func goroutineLabels(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSpanSetsPprofLabels(t *testing.T) {
	ran := false
	Span([]string{"policy", "SIZE/ATIME", "workload", "BL"}, func() {
		ran = true
		prof := goroutineLabels(t)
		if !strings.Contains(prof, `"policy":"SIZE/ATIME"`) {
			t.Errorf("goroutine profile inside span lacks the policy label:\n%s", prof)
		}
	})
	if !ran {
		t.Fatal("span body did not run")
	}
	if prof := goroutineLabels(t); strings.Contains(prof, `"policy":"SIZE/ATIME"`) {
		t.Error("policy label leaked past the span")
	}
}

func TestBuildInfoAndGitRev(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" {
		t.Fatal("BuildInfo has no Go version in a test binary")
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Fatalf("Build.String() = %q missing Go version", s)
	}
	// Inside the repo's work tree GitRev must resolve via the git
	// fallback; anywhere it must at least be non-empty.
	if rev := GitRev(); rev == "" {
		t.Fatal("GitRev returned empty")
	}
}
