package obs

import (
	"context"
	"runtime/pprof"
)

// Span runs fn with the given pprof label pairs attached to the
// goroutine, so CPU profile samples taken inside fn carry them
// (`go tool pprof -tagfocus policy=...`). Labels must come in
// key/value pairs. When fn returns the goroutine is unlabeled again;
// because the labels are rooted in context.Background, a nested Span
// replaces (not extends) the outer label set and its return clears the
// goroutine entirely — spans wrap whole replays, which do not nest, so
// composition would buy nothing, but the nested behavior is pinned by
// test so a future caller is not surprised.
//
// A span costs two goroutine label swaps — microseconds — so it wraps
// whole replays, never per-request work, and callers gate it on the
// observer being enabled.
func Span(labels []string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { fn() })
}
