package obs

import (
	"context"
	"runtime/pprof"
)

// Span runs fn with the given pprof label pairs attached to the
// goroutine, so CPU profile samples taken inside fn carry them
// (`go tool pprof -tagfocus policy=...`). Labels must come in
// key/value pairs. The previous label set is restored when fn returns.
//
// A span costs two goroutine label swaps — microseconds — so it wraps
// whole replays, never per-request work, and callers gate it on the
// observer being enabled.
func Span(labels []string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { fn() })
}
