package obs

// Windowed metrics: recent-window rates alongside the lifetime
// counters the registry already carries. A lifetime hit rate answers
// "how has this cache done since boot"; an operator watching a policy
// change, a flash crowd, or a shadow-policy comparison needs "how is
// it doing *now*" — the last minute, not the last month. The windowed
// layer answers that with a ring of time buckets: each observation
// lands in the bucket covering its timestamp, and the window total is
// the sum of the buckets still inside the sliding window. The estimate
// is bucket-granular (a window of B buckets is off by at most one
// bucket's worth of time at the trailing edge), which is exactly the
// resolution an operations dashboard needs and costs no per-event
// allocation or lock.

import (
	"sync/atomic"
	"time"
)

// DefaultWindow is the sliding-window length used where a caller does
// not choose one: long enough to smooth request-level noise, short
// enough that a policy or workload shift is visible within a minute.
const DefaultWindow = time.Minute

// DefaultWindowBuckets is the default bucket count per window; 12
// buckets give 5-second resolution on the default one-minute window.
const DefaultWindowBuckets = 12

// WindowedCounter counts events into a ring of time buckets, giving
// both a lifetime total and the total over the most recent window.
// Add and the readers are lock-free; concurrent adds racing a bucket's
// reuse (the ring coming back around to a stale epoch) may lose the
// few counts that land during the reset — bounded by one bucket
// rotation, an accepted imprecision for an observability rate. With a
// single writer (or a test's fake clock) the counts are exact.
type WindowedCounter struct {
	bucketNs int64
	epochs   []atomic.Int64 // bucket-epoch stamp per slot
	counts   []atomic.Int64
	total    atomic.Int64
	nowNs    func() int64
}

// NewWindowedCounter returns a counter whose WindowTotal covers the
// given window at the given bucket resolution. Non-positive arguments
// fall back to DefaultWindow / DefaultWindowBuckets.
func NewWindowedCounter(window time.Duration, buckets int) *WindowedCounter {
	if window <= 0 {
		window = DefaultWindow
	}
	if buckets < 1 {
		buckets = DefaultWindowBuckets
	}
	bucketNs := int64(window) / int64(buckets)
	if bucketNs < 1 {
		bucketNs = 1
	}
	return &WindowedCounter{
		bucketNs: bucketNs,
		epochs:   make([]atomic.Int64, buckets),
		counts:   make([]atomic.Int64, buckets),
		nowNs:    func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock overrides the counter's time source with a nanosecond
// clock (tests). Call before the first Add.
func (w *WindowedCounter) SetClock(nowNs func() int64) { w.nowNs = nowNs }

// Window returns the sliding-window length the counter covers.
func (w *WindowedCounter) Window() time.Duration {
	return time.Duration(w.bucketNs * int64(len(w.counts)))
}

// Add counts n into the current time bucket and the lifetime total.
func (w *WindowedCounter) Add(n int64) {
	w.total.Add(n)
	ep := w.nowNs() / w.bucketNs
	i := int(ep % int64(len(w.counts)))
	if w.epochs[i].Load() != ep {
		// The slot still holds a previous rotation; claim it for this
		// epoch. Only the goroutine that wins the swap resets the count,
		// so concurrent adds in the new epoch are kept (adds racing the
		// reset itself may be lost — see the type comment).
		if old := w.epochs[i].Swap(ep); old != ep {
			w.counts[i].Store(0)
		}
	}
	w.counts[i].Add(n)
}

// Inc counts one event.
func (w *WindowedCounter) Inc() { w.Add(1) }

// Total returns the lifetime total.
func (w *WindowedCounter) Total() int64 { return w.total.Load() }

// WindowTotal returns the total counted over the most recent window:
// the sum of every bucket whose epoch is still inside it.
func (w *WindowedCounter) WindowTotal() int64 {
	ep := w.nowNs() / w.bucketNs
	lo := ep - int64(len(w.counts)) + 1
	var sum int64
	for i := range w.counts {
		if e := w.epochs[i].Load(); e >= lo && e <= ep {
			sum += w.counts[i].Load()
		}
	}
	return sum
}

// WindowedRate tracks a part/whole pair over a sliding window — a hit
// rate (part = hits, whole = requests), a weighted hit rate (part =
// bytes served from cache, whole = bytes requested), a drop rate. Both
// components share the window geometry, so the ratio compares
// like-for-like time spans.
type WindowedRate struct {
	part, whole *WindowedCounter
}

// NewWindowedRate returns a rate over the given window and bucket
// count (zero values pick the defaults, as in NewWindowedCounter).
func NewWindowedRate(window time.Duration, buckets int) *WindowedRate {
	return &WindowedRate{
		part:  NewWindowedCounter(window, buckets),
		whole: NewWindowedCounter(window, buckets),
	}
}

// SetClock overrides both components' time source (tests).
func (r *WindowedRate) SetClock(nowNs func() int64) {
	r.part.SetClock(nowNs)
	r.whole.SetClock(nowNs)
}

// Record counts one observation: part of whole (e.g. Record(size, size)
// for a byte hit, Record(0, size) for a byte miss).
func (r *WindowedRate) Record(part, whole int64) {
	if part != 0 {
		r.part.Add(part)
	}
	r.whole.Add(whole)
}

// Observe counts one boolean outcome into a unit-weighted rate.
func (r *WindowedRate) Observe(hit bool) {
	if hit {
		r.Record(1, 1)
	} else {
		r.Record(0, 1)
	}
}

// Rate returns part/whole over the window, 0 when the window is empty.
func (r *WindowedRate) Rate() float64 {
	whole := r.whole.WindowTotal()
	if whole == 0 {
		return 0
	}
	return float64(r.part.WindowTotal()) / float64(whole)
}

// LifetimeRate returns part/whole since creation, 0 when empty.
func (r *WindowedRate) LifetimeRate() float64 {
	whole := r.whole.Total()
	if whole == 0 {
		return 0
	}
	return float64(r.part.Total()) / float64(whole)
}

// Window returns the sliding-window length the rate covers.
func (r *WindowedRate) Window() time.Duration { return r.part.Window() }

// WindowCounts returns the windowed (part, whole) totals.
func (r *WindowedRate) WindowCounts() (part, whole int64) {
	return r.part.WindowTotal(), r.whole.WindowTotal()
}

// LifetimeCounts returns the lifetime (part, whole) totals.
func (r *WindowedRate) LifetimeCounts() (part, whole int64) {
	return r.part.Total(), r.whole.Total()
}
