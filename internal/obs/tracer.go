package obs

// Request-lifecycle tracing. The proxy's histograms (metrics.go) can
// say that p99 is high; this file is the artifact that says why: each
// sampled request is recorded as a timeline of phases — parse, shard
// route, store get, touch-ring enqueue, origin dial / TTFB / body
// streaming, admission, the eviction chain a Put triggers — and a
// tail-based reservoir keeps exactly the requests worth looking at:
// the K slowest per window plus every one that errored, missed, or
// evicted something. The kept set is an admin endpoint (/requests) and
// exports through the same Chrome trace-event path as the event ring,
// so a slow request renders as a span tree in Perfetto next to the
// store's residency spans.
//
// The cost contract mirrors core.CacheHooks: a nil *Tracer (or an
// unsampled request's nil *ReqTrace) costs one branch per site, and
// the sampled path allocates nothing in steady state — span buffers
// are fixed-size arrays inside pooled ReqTrace objects, recycled when
// the reservoir discards or displaces a trace (the same
// record-into-recycled-object discipline as touchbuf's touchRecPool).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels one step of a request's lifecycle.
type Phase uint8

const (
	PhaseParse        Phase = iota // request line/URL normalization
	PhaseRoute                     // shard selection (sharded store only)
	PhaseStoreGet                  // store lookup incl. policy touch
	PhaseTouchEnqueue              // buffered hit path: lossy ring enqueue
	PhaseDial                      // origin TCP connect
	PhaseTTFB                      // origin request written → first response byte
	PhaseBody                      // origin body streaming into the object buffer
	PhaseAdmit                     // store admission (Put) incl. eviction chain
	PhaseEvict                     // one victim removal inside the admit span
	PhaseRevalidate                // conditional GET for a stale hit
	PhaseServe                     // writing the response to the client
	numPhases
)

var phaseNames = [numPhases]string{
	"parse", "route", "store.get", "touch.enqueue",
	"origin.dial", "origin.ttfb", "origin.body",
	"admit", "evict", "revalidate", "serve",
}

// String returns the phase's wire name ("parse", "origin.ttfb", ...).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// SpanID indexes an open span inside a ReqTrace; NoSpan means the span
// was not recorded (nil trace or a full span buffer) and is accepted
// by EndSpan as a no-op.
type SpanID int32

// NoSpan is the SpanID of a span that was never recorded.
const NoSpan SpanID = -1

// maxSpans bounds a trace's span buffer. A request is a handful of
// phases plus an eviction chain; 48 covers a Put that evicts dozens of
// small objects, and overflow is counted (DroppedSpans), never grown.
const maxSpans = 48

// SpanRec is one recorded phase: offsets are nanoseconds from the
// trace's start, so a whole timeline is 3 words per phase.
type SpanRec struct {
	Phase Phase
	Start int64 // ns since request start
	Dur   int64 // ns; 0 while open
	Arg   int64 // phase-specific annotation (shard index, victim bytes, admit verdict)
}

// ReqTrace is one sampled request's timeline. It is pooled: obtain one
// from Tracer.Begin, record spans, set the outcome fields, and hand it
// back with Tracer.End — after End the caller must not touch it (the
// reservoir owns it, and may recycle it into another request). All
// methods are nil-receiver-safe so instrumentation sites need no
// sampling checks of their own.
type ReqTrace struct {
	ID        uint64
	URL       string
	Verdict   string // HIT, REVALIDATED, MISS, UNCACHEABLE, ERROR
	Status    int
	Bytes     int64
	Err       bool
	Shard     int32 // -1 when the store is unsharded
	Evictions int32
	Wall      time.Time // wall-clock start; also the monotonic base
	Total     int64     // ns, set by Tracer.End

	tracer *Tracer

	// mu guards the span buffer: httptrace fires dial callbacks from
	// the transport's dialing goroutine while the request goroutine
	// owns the trace, so span recording must tolerate that overlap.
	mu      sync.Mutex
	nspans  int32
	dropped int32
	spans   [maxSpans]SpanRec
}

// BeginSpan opens a phase span at the current offset. Safe on a nil
// trace (returns NoSpan); when the span buffer is full the drop is
// counted and NoSpan returned.
func (rt *ReqTrace) BeginSpan(p Phase) SpanID {
	if rt == nil {
		return NoSpan
	}
	now := rt.tracer.since(rt.Wall)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.nspans) >= maxSpans {
		rt.dropped++
		return NoSpan
	}
	id := SpanID(rt.nspans)
	rt.spans[id] = SpanRec{Phase: p, Start: int64(now)}
	rt.nspans++
	return id
}

// EndSpan closes a span opened by BeginSpan. No-op on a nil trace or
// NoSpan.
func (rt *ReqTrace) EndSpan(id SpanID) { rt.EndSpanArg(id, 0) }

// EndSpanArg closes a span and attaches a phase-specific annotation
// (shard index for route, victim bytes for evict, 1/0 for admit).
func (rt *ReqTrace) EndSpanArg(id SpanID, arg int64) {
	if rt == nil || id == NoSpan {
		return
	}
	now := rt.tracer.since(rt.Wall)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if id < 0 || id >= SpanID(rt.nspans) {
		return
	}
	rt.spans[id].Dur = int64(now) - rt.spans[id].Start
	rt.spans[id].Arg = arg
}

// SetURL records the cache key. Nil-safe.
func (rt *ReqTrace) SetURL(url string) {
	if rt != nil {
		rt.URL = url
	}
}

// SetOutcome records the request's verdict, response status and body
// bytes. Nil-safe.
func (rt *ReqTrace) SetOutcome(verdict string, status int, bytes int64) {
	if rt != nil {
		rt.Verdict = verdict
		rt.Status = status
		rt.Bytes = bytes
	}
}

// MarkError flags the trace as errored; errored traces are always kept
// by the reservoir. Nil-safe.
func (rt *ReqTrace) MarkError() {
	if rt != nil {
		rt.Err = true
	}
}

// CountEviction bumps the eviction counter; any eviction makes the
// trace reservoir-kept. Nil-safe.
func (rt *ReqTrace) CountEviction() {
	if rt != nil {
		rt.Evictions++
	}
}

// SetShard records which shard served the request. Nil-safe.
func (rt *ReqTrace) SetShard(i int) {
	if rt != nil {
		rt.Shard = int32(i)
	}
}

// Spans copies out the recorded spans (tests and reports).
func (rt *ReqTrace) Spans() []SpanRec {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]SpanRec, rt.nspans)
	copy(out, rt.spans[:rt.nspans])
	return out
}

// DroppedSpans returns how many spans overflowed the buffer.
func (rt *ReqTrace) DroppedSpans() int {
	if rt == nil {
		return 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return int(rt.dropped)
}

func (rt *ReqTrace) reset(t *Tracer) {
	rt.ID = 0
	rt.URL = ""
	rt.Verdict = ""
	rt.Status = 0
	rt.Bytes = 0
	rt.Err = false
	rt.Shard = -1
	rt.Evictions = 0
	rt.Total = 0
	rt.tracer = t
	rt.nspans = 0
	rt.dropped = 0
}

// TracerOptions configures a Tracer; the zero value samples every
// request with the default reservoir shape.
type TracerOptions struct {
	// SampleEvery traces every nth request (head sampling); <= 1 means
	// every request. The decision is deterministic over arrival order,
	// like AccessLogger.SetSample.
	SampleEvery int
	// SlowestK is how many of the slowest requests per window the
	// reservoir keeps regardless of outcome (default 16).
	SlowestK int
	// Window is the slowest-K rotation period (default 1 minute).
	Window time.Duration
	// FlaggedCap bounds the always-keep ring of errored / missed /
	// evicting requests (default 64); oldest flagged traces are
	// recycled first.
	FlaggedCap int
	// RecentCap bounds how many previous-window slowest traces stay
	// visible after rotation (default 64).
	RecentCap int
	// Clock overrides the time source (tests). The default is
	// time.Now, whose monotonic reading makes span durations immune to
	// wall-clock steps.
	Clock func() time.Time
}

// Tracer samples requests into pooled ReqTraces and keeps the tail
// worth inspecting. All hot-path state is atomic; the mutex guards
// only the reservoir, which is touched once per *sampled* request at
// completion, never on the serving path of unsampled ones.
type Tracer struct {
	sampleEvery uint64
	slowestK    int
	window      time.Duration
	flaggedCap  int
	recentCap   int
	clock       func() time.Time // nil = real time (monotonic durations)

	seq  atomic.Uint64 // requests observed (sampling decision)
	ids  atomic.Uint64 // trace ID source
	pool sync.Pool

	sampled      atomic.Int64 // traces begun
	kept         atomic.Int64 // traces retained by the reservoir
	flagged      atomic.Int64 // retained because errored/missed/evicting
	discarded    atomic.Int64 // completed but not retained
	droppedSpans atomic.Int64 // span-buffer overflows across all traces

	mu          sync.Mutex
	windowStart time.Time
	slow        []*ReqTrace // current window's K slowest, min-heap by Total
	flaggedRing []*ReqTrace // always-keep ring, oldest overwritten
	flaggedNext int
	recent      []*ReqTrace // previous windows' slowest, oldest overwritten
	recentNext  int
}

// NewTracer returns a tracer with the given options.
func NewTracer(o TracerOptions) *Tracer {
	if o.SampleEvery < 1 {
		o.SampleEvery = 1
	}
	if o.SlowestK <= 0 {
		o.SlowestK = 16
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.FlaggedCap <= 0 {
		o.FlaggedCap = 64
	}
	if o.RecentCap <= 0 {
		o.RecentCap = 64
	}
	t := &Tracer{
		sampleEvery: uint64(o.SampleEvery),
		slowestK:    o.SlowestK,
		window:      o.Window,
		flaggedCap:  o.FlaggedCap,
		recentCap:   o.RecentCap,
		clock:       o.Clock,
		slow:        make([]*ReqTrace, 0, o.SlowestK),
		flaggedRing: make([]*ReqTrace, o.FlaggedCap),
		recent:      make([]*ReqTrace, o.RecentCap),
	}
	t.pool.New = func() any { return new(ReqTrace) }
	t.windowStart = t.now()
	return t
}

func (t *Tracer) now() time.Time {
	if t == nil || t.clock == nil {
		return time.Now()
	}
	return t.clock()
}

// since returns the elapsed time from t0, using the monotonic clock
// when the tracer runs on real time.
func (t *Tracer) since(t0 time.Time) time.Duration {
	if t == nil || t.clock == nil {
		return time.Since(t0)
	}
	return t.clock().Sub(t0)
}

// Begin starts a trace for the next request, or returns nil when the
// request falls outside the 1-in-N sample (or the tracer itself is
// nil — the disabled path is one nil check, like core.CacheHooks).
func (t *Tracer) Begin() *ReqTrace {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	if t.sampleEvery > 1 && (seq-1)%t.sampleEvery != 0 {
		return nil
	}
	rt := t.pool.Get().(*ReqTrace)
	rt.reset(t)
	rt.ID = t.ids.Add(1)
	rt.Wall = t.now()
	t.sampled.Add(1)
	return rt
}

// End completes a trace and runs the tail-sampling decision: flagged
// traces (error, miss, ≥1 eviction) always enter the bounded flagged
// ring; the rest compete for the window's K-slowest reservoir. Traces
// that lose are recycled into the pool. Nil-safe on both receivers.
func (t *Tracer) End(rt *ReqTrace) {
	if t == nil || rt == nil {
		return
	}
	rt.Total = int64(t.since(rt.Wall))
	if d := rt.DroppedSpans(); d > 0 {
		t.droppedSpans.Add(int64(d))
	}
	isFlagged := rt.Err || rt.Evictions > 0 || rt.Verdict == "MISS"

	t.mu.Lock()
	now := t.now()
	if now.Sub(t.windowStart) >= t.window {
		t.rotateLocked()
		t.windowStart = now
	}
	switch {
	case isFlagged:
		t.flagged.Add(1)
		t.kept.Add(1)
		if old := t.flaggedRing[t.flaggedNext]; old != nil {
			t.recycle(old)
		}
		t.flaggedRing[t.flaggedNext] = rt
		t.flaggedNext = (t.flaggedNext + 1) % t.flaggedCap
	case len(t.slow) < t.slowestK:
		t.kept.Add(1)
		t.slowPushLocked(rt)
	case rt.Total > t.slow[0].Total:
		t.kept.Add(1)
		t.recycle(t.slowPopLocked())
		t.slowPushLocked(rt)
	default:
		t.discarded.Add(1)
		t.recycle(rt)
	}
	t.mu.Unlock()
}

// recycle returns a displaced trace to the pool.
func (t *Tracer) recycle(rt *ReqTrace) {
	rt.URL = "" // drop the string reference now, not at reuse
	t.pool.Put(rt)
}

// rotateLocked moves the closing window's slowest traces into the
// recent ring. Caller holds t.mu.
func (t *Tracer) rotateLocked() {
	for _, rt := range t.slow {
		if old := t.recent[t.recentNext]; old != nil {
			t.recycle(old)
		}
		t.recent[t.recentNext] = rt
		t.recentNext = (t.recentNext + 1) % t.recentCap
	}
	t.slow = t.slow[:0]
}

// slowPushLocked / slowPopLocked maintain t.slow as a min-heap on
// Total, so the cheapest keeper is always at the root for displacement.
func (t *Tracer) slowPushLocked(rt *ReqTrace) {
	t.slow = append(t.slow, rt)
	i := len(t.slow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if t.slow[parent].Total <= t.slow[i].Total {
			break
		}
		t.slow[parent], t.slow[i] = t.slow[i], t.slow[parent]
		i = parent
	}
}

func (t *Tracer) slowPopLocked() *ReqTrace {
	root := t.slow[0]
	last := len(t.slow) - 1
	t.slow[0] = t.slow[last]
	t.slow = t.slow[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(t.slow) && t.slow[l].Total < t.slow[small].Total {
			small = l
		}
		if r < len(t.slow) && t.slow[r].Total < t.slow[small].Total {
			small = r
		}
		if small == i {
			break
		}
		t.slow[i], t.slow[small] = t.slow[small], t.slow[i]
		i = small
	}
	return root
}

// TracerStats is the tracer's counter snapshot.
type TracerStats struct {
	Sampled      int64 `json:"sampled"`
	Kept         int64 `json:"kept"`
	Flagged      int64 `json:"flagged"`
	Discarded    int64 `json:"discarded"`
	DroppedSpans int64 `json:"dropped_spans"`
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() TracerStats {
	return TracerStats{
		Sampled:      t.sampled.Load(),
		Kept:         t.kept.Load(),
		Flagged:      t.flagged.Load(),
		Discarded:    t.discarded.Load(),
		DroppedSpans: t.droppedSpans.Load(),
	}
}

// RegisterMetrics exposes the tracer's counters as computed gauges
// under prefix (e.g. "proxy" → proxy.trace_sampled), so /metrics
// carries the sampling health alongside the serving counters.
func (t *Tracer) RegisterMetrics(reg *Registry, prefix string) {
	reg.GaugeFunc(prefix+".trace_sampled", t.sampled.Load)
	reg.GaugeFunc(prefix+".trace_kept", t.kept.Load)
	reg.GaugeFunc(prefix+".trace_flagged", t.flagged.Load)
	reg.GaugeFunc(prefix+".trace_discarded", t.discarded.Load)
	reg.GaugeFunc(prefix+".trace_dropped_spans", t.droppedSpans.Load)
}

// SpanView is one phase of a reported request timeline.
type SpanView struct {
	Phase   string `json:"phase"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Arg     int64  `json:"arg,omitempty"`
}

// RequestRecord is one kept request, copied out of the reservoir — a
// value snapshot, safe to hold after the underlying trace is recycled.
type RequestRecord struct {
	ID           uint64     `json:"id"`
	Time         time.Time  `json:"time"`
	URL          string     `json:"url"`
	Verdict      string     `json:"verdict"`
	Status       int        `json:"status"`
	Bytes        int64      `json:"bytes"`
	Error        bool       `json:"error,omitempty"`
	Shard        int32      `json:"shard"`
	Evictions    int32      `json:"evictions,omitempty"`
	TotalNs      int64      `json:"total_ns"`
	Flag         string     `json:"flag"` // why it was kept: error|evict|miss|slow
	DroppedSpans int32      `json:"dropped_spans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

func (rt *ReqTrace) record() RequestRecord {
	rec := RequestRecord{
		ID:        rt.ID,
		Time:      rt.Wall,
		URL:       rt.URL,
		Verdict:   rt.Verdict,
		Status:    rt.Status,
		Bytes:     rt.Bytes,
		Error:     rt.Err,
		Shard:     rt.Shard,
		Evictions: rt.Evictions,
		TotalNs:   rt.Total,
	}
	switch {
	case rt.Err:
		rec.Flag = "error"
	case rt.Evictions > 0:
		rec.Flag = "evict"
	case rt.Verdict == "MISS":
		rec.Flag = "miss"
	default:
		rec.Flag = "slow"
	}
	rt.mu.Lock()
	rec.DroppedSpans = rt.dropped
	rec.Spans = make([]SpanView, rt.nspans)
	for i := int32(0); i < rt.nspans; i++ {
		s := rt.spans[i]
		rec.Spans[i] = SpanView{Phase: s.Phase.String(), StartNs: s.Start, DurNs: s.Dur, Arg: s.Arg}
	}
	rt.mu.Unlock()
	return rec
}

// Snapshot copies the kept requests out of the reservoir, slowest
// first (the /requests ordering).
func (t *Tracer) Snapshot() []RequestRecord {
	t.mu.Lock()
	out := make([]RequestRecord, 0, len(t.slow)+t.flaggedCap+t.recentCap)
	for _, rt := range t.slow {
		out = append(out, rt.record())
	}
	for _, rt := range t.flaggedRing {
		if rt != nil {
			out = append(out, rt.record())
		}
	}
	for _, rt := range t.recent {
		if rt != nil {
			out = append(out, rt.record())
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FormatTraceID renders a trace ID the way the access log and the
// X-Trace-Id response header carry it.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%08x", id) }

// spanSummary compresses a record's timeline into "phase=dur" pairs of
// the top slowest phases, durations aggregated per phase (an eviction
// chain reads as one evict=... figure).
func spanSummary(rec *RequestRecord, top int) string {
	type agg struct {
		phase string
		dur   int64
	}
	byPhase := map[string]int64{}
	order := make([]agg, 0, len(rec.Spans))
	for _, s := range rec.Spans {
		if _, seen := byPhase[s.Phase]; !seen {
			order = append(order, agg{phase: s.Phase})
		}
		byPhase[s.Phase] += s.DurNs
	}
	for i := range order {
		order[i].dur = byPhase[order[i].phase]
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].dur > order[j].dur })
	if len(order) > top {
		order = order[:top]
	}
	parts := make([]string, len(order))
	for i, a := range order {
		parts[i] = fmt.Sprintf("%s=%s", a.phase, time.Duration(a.dur).Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}

// Handler serves the reservoir: a text table by default, the full
// structured form (stats + per-request span timelines) with
// ?format=json — the same dual-format convention as /metrics and
// /shadow.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := t.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]any{
				"stats":    t.Stats(),
				"requests": recs,
			})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := t.Stats()
		fmt.Fprintf(w, "request traces: %d sampled, %d kept (%d flagged), %d discarded, %d spans dropped\n\n",
			st.Sampled, st.Kept, st.Flagged, st.Discarded, st.DroppedSpans)
		fmt.Fprintf(w, "%-10s %-12s %-11s %6s %10s %6s %-7s %-42s %s\n",
			"TRACE", "VERDICT", "TOTAL", "STATUS", "BYTES", "EVICT", "FLAG", "PHASES", "URL")
		for _, rec := range recs {
			fmt.Fprintf(w, "%-10s %-12s %-11s %6d %10d %6d %-7s %-42s %s\n",
				FormatTraceID(rec.ID), rec.Verdict,
				time.Duration(rec.TotalNs).Round(time.Microsecond),
				rec.Status, rec.Bytes, rec.Evictions, rec.Flag,
				spanSummary(&rec, 3), rec.URL)
		}
	})
}

// traceEvents renders the kept requests as Chrome trace-event records:
// one complete ("X") parent span per request and one nested child span
// per phase, all on the request's own tid under pid 2 — pid 1 is the
// event ring's residency view, so a combined export shows both side by
// side in Perfetto.
func (t *Tracer) traceEvents() []traceEvent {
	recs := t.Snapshot()
	// Oldest first so tid assignment is stable across exports.
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Time.Equal(recs[j].Time) {
			return recs[i].Time.Before(recs[j].Time)
		}
		return recs[i].ID < recs[j].ID
	})
	out := make([]traceEvent, 0, len(recs)*4)
	for i, rec := range recs {
		base := rec.Time.UnixMicro()
		tid := 1 + i
		parent := traceEvent{
			Name:  "request",
			Phase: "X",
			Ts:    base,
			Dur:   rec.TotalNs / 1e3,
			Pid:   2,
			Tid:   tid,
			Args: map[string]any{
				"trace":   FormatTraceID(rec.ID),
				"url":     rec.URL,
				"verdict": rec.Verdict,
				"status":  rec.Status,
				"bytes":   rec.Bytes,
				"flag":    rec.Flag,
			},
		}
		if rec.Evictions > 0 {
			parent.Args["evictions"] = rec.Evictions
		}
		if rec.Shard >= 0 {
			parent.Args["shard"] = rec.Shard
		}
		out = append(out, parent)
		for _, s := range rec.Spans {
			child := traceEvent{
				Name:  s.Phase,
				Phase: "X",
				Ts:    base + s.StartNs/1e3,
				Dur:   s.DurNs / 1e3,
				Pid:   2,
				Tid:   tid,
			}
			if s.Arg != 0 {
				child.Args = map[string]any{"arg": s.Arg}
			}
			out = append(out, child)
		}
	}
	return out
}

// WriteChromeTrace renders the kept requests alone as Chrome
// trace-event JSON. For the combined ring + tracer view use
// WriteCombinedChromeTrace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.traceEvents())
}

// WriteCombinedChromeTrace merges the event ring's residency spans
// (pid 1) and the tracer's request span trees (pid 2) into one Chrome
// trace-event JSON array — the /trace admin endpoint's export when
// both sources exist. Either source may be nil.
func WriteCombinedChromeTrace(w io.Writer, ring *EventRing, tracer *Tracer) error {
	out := make([]traceEvent, 0)
	if ring != nil {
		out = append(out, ring.traceEvents()...)
	}
	if tracer != nil {
		out = append(out, tracer.traceEvents()...)
	}
	return json.NewEncoder(w).Encode(out)
}
