package obs

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestProgressLineETA pins the ETA arithmetic (obs_test.go covers the
// line's shape; this covers its value): with the start time backdated a
// known amount, remaining = elapsed/done × (total-done).
func TestProgressLineETA(t *testing.T) {
	p := NewProgress(io.Discard, "exp1", 0)
	p.AddTotal(3)
	p.Done(1)
	// One replay took 40 minutes; two remain → ETA 1h20m.
	p.start = time.Now().Add(-40 * time.Minute)
	line := p.Line()
	if !strings.Contains(line, "exp1: 1/3 replays (33%)") {
		t.Errorf("line = %q, want 1/3 at 33%%", line)
	}
	m := regexp.MustCompile(`eta (\S+)$`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("line %q has no ETA", line)
	}
	eta, err := time.ParseDuration(m[1])
	if err != nil {
		t.Fatalf("unparseable ETA %q: %v", m[1], err)
	}
	// The test's own execution time sits between the backdating and the
	// render, so allow a second of slack around the exact 1h20m.
	want := 80 * time.Minute
	if diff := (eta - want).Abs(); diff > time.Second {
		t.Errorf("ETA = %s, want %s ± 1s", eta, want)
	}
}

// TestProgressLineETAEdges pins the ETA placeholder states: "?" before
// anything finishes, "0s" at completion, and 0s (not negative) when
// Done overshoots the total.
func TestProgressLineETAEdges(t *testing.T) {
	p := NewProgress(io.Discard, "exp2", 0)
	p.AddTotal(4)
	if line := p.Line(); !strings.Contains(line, "eta ?") {
		t.Errorf("zero-done line = %q, want eta ?", line)
	}
	p.Done(4)
	if line := p.Line(); !strings.Contains(line, "4/4 replays (100%)") || !strings.Contains(line, "eta 0s") {
		t.Errorf("complete line = %q, want 100%% and eta 0s", line)
	}
	p.Done(1) // overshoot (a retried replay) must not break the ETA
	if line := p.Line(); !strings.Contains(line, "eta 0s") {
		t.Errorf("overshot line = %q, want eta 0s", line)
	}
}

// TestProgressStartGuards covers the ticker lifecycle guards: double
// Start must not duplicate rendered lines, and Start after Stop must
// not revive the ticker (or panic on the closed stop channel).
func TestProgressStartGuards(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "exp3", time.Hour) // ticker never fires in-test
	p.AddTotal(2)
	p.Done(2)
	p.Start()
	p.Start() // guarded: must not leak a second ticker
	p.Stop()
	out := buf.String()
	if got := strings.Count(out, "exp3: 2/2"); got != 1 {
		t.Fatalf("final line rendered %d times, want 1:\n%s", got, out)
	}
	p.Start() // after Stop: no-op, no panic on the closed channel
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("Start after Stop produced output:\n%s", buf.String())
	}
}
