package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(17)
	g.Set(3)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	if got := g.Max(); got != 17 {
		t.Fatalf("gauge max = %d, want 17", got)
	}
	g.Add(20)
	if got, max := g.Load(), g.Max(); got != 23 || max != 23 {
		t.Fatalf("after Add: value %d max %d, want 23/23", got, max)
	}
	g.Add(-10)
	if got, max := g.Load(), g.Max(); got != 13 || max != 23 {
		t.Fatalf("after negative Add: value %d max %d, want 13/23", got, max)
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Set(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Max(); got != 7499 {
		t.Fatalf("concurrent gauge max = %d, want 7499", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 500, -2} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 503 {
		t.Fatalf("sum = %d, want 503", got)
	}
	if got, want := h.Mean(), 503.0/6; got != want {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	buckets := h.Buckets()
	// 0 and -2 land in the v<=0 bucket; 1,1 in [1,2); 3 in [2,4);
	// 500 in [256,512).
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
	if buckets[0].UpperBound != 0 || buckets[0].Count != 2 {
		t.Fatalf("v<=0 bucket = %+v, want {0 2}", buckets[0])
	}
	last := buckets[len(buckets)-1]
	if last.UpperBound != 512 || last.Count != 1 {
		t.Fatalf("top bucket = %+v, want {512 1}", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of exactly 1000: every quantile lands in the
	// [512, 1024) bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.50, 0.95, 0.99, 1.0} {
		got := h.Quantile(q)
		if got < 512 || got >= 1024 {
			t.Errorf("Quantile(%.2f) = %d, want within [512,1024)", q, got)
		}
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	// 90 small values and 10 large ones: p50 must sit in the small
	// bucket, p95/p99 in the large one — the latency-tail shape the
	// exposition exists to report.
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,16)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket [65536,131072)
	}
	if p50 := h.Quantile(0.50); p50 < 8 || p50 >= 16 {
		t.Errorf("p50 = %d, want within [8,16)", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 65536 || p95 >= 131072 {
		t.Errorf("p95 = %d, want within [65536,131072)", p95)
	}
	if p99 := h.Quantile(0.99); p99 < 65536 || p99 >= 131072 {
		t.Errorf("p99 = %d, want within [65536,131072)", p99)
	}
	// Interpolation is monotone inside the bucket.
	if h.Quantile(0.99) < h.Quantile(0.95) {
		t.Errorf("p99 %d < p95 %d", h.Quantile(0.99), h.Quantile(0.95))
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	var h Histogram
	h.Observe(-5)
	h.Observe(0)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("all-nonpositive Quantile = %d, want 0 (the v<=0 bucket)", got)
	}
	h.Observe(7)
	// Out-of-range q is clamped, not a panic.
	if got := h.Quantile(1.5); got < 4 || got >= 8 {
		t.Errorf("Quantile(1.5) = %d, want within [4,8)", got)
	}
	if got := h.Quantile(-0.5); got != 0 {
		t.Errorf("Quantile(-0.5) = %d, want 0 (lowest observation's bucket)", got)
	}
}

// TestHistogramQuantilePinned pins exact quantile values on a known
// distribution, the regression test for the rank computation: the rank
// is the nearest-rank ceil(q·n), not a floored index. Flooring
// understates upper quantiles by one whole observation — with two of
// 100 samples in the top bucket, a floored p99 reads the 98th smallest
// and misses the tail entirely.
func TestHistogramQuantilePinned(t *testing.T) {
	var h Histogram
	// 1024 observations, all in the [1024, 2048) bucket: quantiles are
	// pure within-bucket interpolation with no bucket-walk ambiguity.
	// p50: rank ceil(0.5·1024) = 512 → 1024 + (512-0.5)/1024·1024 = 1535.
	// p99: rank ceil(0.99·1024) = 1014 → 1024 + 1013 = 2037.
	for i := 0; i < 1024; i++ {
		h.Observe(1024 + int64(i)%1024)
	}
	if got := h.Quantile(0.50); got != 1535 {
		t.Errorf("p50 = %d, want 1535", got)
	}
	if got := h.Quantile(0.99); got != 2037 {
		t.Errorf("p99 = %d, want 2037", got)
	}

	// The floor-vs-ceil distinguisher: 98 fast observations and 2 slow
	// ones. The 99th smallest is slow, so p99 must land in the slow
	// bucket; floored rank (98) would report the fast bucket.
	var tail Histogram
	for i := 0; i < 98; i++ {
		tail.Observe(1)
	}
	tail.Observe(1 << 14)
	tail.Observe(1 << 14)
	if got := tail.Quantile(0.99); got < 1<<14 || got >= 1<<15 {
		t.Errorf("p99 = %d, want within the slow bucket [%d,%d)", got, 1<<14, 1<<15)
	}
}

func TestHistogramSnapshotHasQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(100)
	hs := r.HistogramSnapshot()
	m := hs["lat"].(map[string]any)
	for _, key := range []string{"p50", "p95", "p99"} {
		v, ok := m[key].(int64)
		if !ok {
			t.Fatalf("snapshot missing %s: %v", key, m)
		}
		if v < 64 || v >= 128 {
			t.Errorf("%s = %d, want within [64,128)", key, v)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 || len(h.Buckets()) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("cache.hits")
	c1.Add(7)
	if c2 := r.Counter("cache.hits"); c2 != c1 {
		t.Fatal("second Counter lookup returned a different instance")
	}
	if r.Counter("cache.misses") == c1 {
		t.Fatal("distinct names share a counter")
	}
	g := r.Gauge("cache.docs")
	g.Set(12)
	r.Histogram("replay.ns").Observe(100)

	snap := r.Snapshot()
	if snap["cache.hits"] != int64(7) {
		t.Fatalf("snapshot cache.hits = %v, want 7", snap["cache.hits"])
	}
	if snap["cache.docs"] != int64(12) || snap["cache.docs.max"] != int64(12) {
		t.Fatalf("snapshot gauge entries = %v / %v", snap["cache.docs"], snap["cache.docs.max"])
	}
	hs := r.HistogramSnapshot()
	if _, ok := hs["replay.ns"]; !ok {
		t.Fatal("histogram missing from snapshot")
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("h").Observe(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Sorted by name: a.count, b.count, then the histogram's derived rows.
	if !strings.HasPrefix(lines[0], "a.count 1") || !strings.HasPrefix(lines[1], "b.count 2") {
		t.Fatalf("text exposition not sorted:\n%s", out)
	}
	if !strings.Contains(out, "h.count 1") || !strings.Contains(out, "h.sum 5") {
		t.Fatalf("histogram rows missing:\n%s", out)
	}
	for _, want := range []string{"h.p50 ", "h.p95 ", "h.p99 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("quantile row %q missing:\n%s", want, out)
		}
	}
}
