package obs

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNs is a settable nanosecond clock for deterministic window tests.
type fakeNs struct{ v atomic.Int64 }

func (f *fakeNs) now() int64      { return f.v.Load() }
func (f *fakeNs) set(ns int64)    { f.v.Store(ns) }
func (f *fakeNs) advance(d int64) { f.v.Add(d) }

func TestWindowedCounterSlidesOut(t *testing.T) {
	clk := &fakeNs{}
	// 10-bucket window of 100ns → 10ns buckets.
	w := NewWindowedCounter(100, 10)
	w.SetClock(clk.now)
	if got := w.Window(); got != 100 {
		t.Fatalf("Window() = %v, want 100ns", got)
	}

	w.Add(3) // bucket epoch 0
	clk.set(55)
	w.Add(4) // bucket epoch 5
	if got := w.WindowTotal(); got != 7 {
		t.Fatalf("WindowTotal with both buckets live = %d, want 7", got)
	}
	if got := w.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}

	// Advance so epoch 0 falls outside the 10-bucket window but epoch 5
	// is still inside.
	clk.set(105) // epoch 10; window covers epochs 1..10
	if got := w.WindowTotal(); got != 4 {
		t.Fatalf("WindowTotal after first bucket expired = %d, want 4", got)
	}

	// Advance past everything: window empty, lifetime intact.
	clk.set(1000)
	if got := w.WindowTotal(); got != 0 {
		t.Fatalf("WindowTotal after window passed = %d, want 0", got)
	}
	if got := w.Total(); got != 7 {
		t.Fatalf("Total after window passed = %d, want 7", got)
	}
}

func TestWindowedCounterBucketReuse(t *testing.T) {
	clk := &fakeNs{}
	w := NewWindowedCounter(100, 10)
	w.SetClock(clk.now)

	w.Add(5) // epoch 0, slot 0
	// Come all the way around the ring to epoch 10, which reuses slot 0:
	// the old count must be discarded, not added to.
	clk.set(100)
	w.Add(2)
	if got := w.WindowTotal(); got != 2 {
		t.Fatalf("WindowTotal after slot reuse = %d, want 2 (stale count leaked)", got)
	}
	if got := w.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
}

func TestWindowedCounterDefaults(t *testing.T) {
	w := NewWindowedCounter(0, 0)
	if got := w.Window(); got != DefaultWindow {
		t.Fatalf("default Window() = %v, want %v", got, DefaultWindow)
	}
	w.Inc()
	if got, want := w.Total(), int64(1); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got := w.WindowTotal(); got != 1 {
		t.Fatalf("WindowTotal immediately after Inc = %d, want 1", got)
	}
}

func TestWindowedCounterConcurrentAdds(t *testing.T) {
	// Under a fixed clock there is no bucket rotation, so concurrent
	// adds must be exact in both totals.
	clk := &fakeNs{}
	w := NewWindowedCounter(time.Second, 4)
	w.SetClock(clk.now)

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				w.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := w.Total(), int64(writers*perWriter); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got, want := w.WindowTotal(), int64(writers*perWriter); got != want {
		t.Fatalf("WindowTotal = %d, want %d", got, want)
	}
}

func TestWindowedRate(t *testing.T) {
	clk := &fakeNs{}
	r := NewWindowedRate(100, 10)
	r.SetClock(clk.now)

	// Three hits out of four requests in the first bucket.
	r.Observe(true)
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if got := r.Rate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Rate = %v, want 0.75", got)
	}
	if got := r.LifetimeRate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("LifetimeRate = %v, want 0.75", got)
	}

	// A later bucket of all misses drags the window down; lifetime
	// follows a different trajectory.
	clk.set(55)
	r.Observe(false)
	r.Observe(false)
	part, whole := r.WindowCounts()
	if part != 3 || whole != 6 {
		t.Fatalf("WindowCounts = (%d, %d), want (3, 6)", part, whole)
	}

	// Slide the hit-heavy bucket out: the window is all misses now even
	// though lifetime still remembers the hits.
	clk.set(105)
	if got := r.Rate(); got != 0 {
		t.Fatalf("Rate after hit bucket expired = %v, want 0", got)
	}
	if got := r.LifetimeRate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("LifetimeRate = %v, want 0.5", got)
	}
	lp, lw := r.LifetimeCounts()
	if lp != 3 || lw != 6 {
		t.Fatalf("LifetimeCounts = (%d, %d), want (3, 6)", lp, lw)
	}

	// Empty window and empty lifetime both report 0, not NaN.
	empty := NewWindowedRate(0, 0)
	if got := empty.Rate(); got != 0 {
		t.Fatalf("empty Rate = %v, want 0", got)
	}
	if got := empty.LifetimeRate(); got != 0 {
		t.Fatalf("empty LifetimeRate = %v, want 0", got)
	}
}

func TestWindowedRateWeighted(t *testing.T) {
	clk := &fakeNs{}
	r := NewWindowedRate(time.Second, 4)
	r.SetClock(clk.now)
	r.Record(1000, 1000) // byte hit
	r.Record(0, 3000)    // byte miss
	if got := r.Rate(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("weighted Rate = %v, want 0.25", got)
	}
}

func TestRegistryWindowedAndGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	clk := &fakeNs{}
	w := reg.Windowed("store.window_gets", 100, 10)
	w.SetClock(clk.now)
	if again := reg.Windowed("store.window_gets", time.Hour, 2); again != w {
		t.Fatal("Windowed did not return the existing counter on second lookup")
	}
	w.Add(6)

	reg.GaugeFunc("store.window_hr_bp", func() int64 { return 1234 })

	snap := reg.Snapshot()
	if got := snap["store.window_gets"]; got != int64(6) {
		t.Fatalf("snapshot windowed value = %v, want 6", got)
	}
	if got := snap["store.window_hr_bp"]; got != int64(1234) {
		t.Fatalf("snapshot gauge-func value = %v, want 1234", got)
	}

	// The window slides out of the snapshot too.
	clk.set(1000)
	if got := reg.Snapshot()["store.window_gets"]; got != int64(0) {
		t.Fatalf("snapshot windowed value after expiry = %v, want 0", got)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()
	if !strings.Contains(text, "store.window_gets 0") {
		t.Fatalf("WriteText missing windowed line:\n%s", text)
	}
	if !strings.Contains(text, "store.window_hr_bp 1234") {
		t.Fatalf("WriteText missing gauge-func line:\n%s", text)
	}
}
