package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind labels one cache event in the trace ring.
type EventKind uint8

const (
	EventHit EventKind = iota
	EventMiss
	EventEvict
	EventAdd
	numEventKinds
)

var eventKindNames = [numEventKinds]string{"hit", "miss", "evict", "add"}

// String returns the kind's wire name ("hit", "miss", "evict", "add").
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Event is one cache event: the removal-policy engine's per-request
// outcome at full resolution, the raw material for the eviction-age and
// occupancy distributions the analysis layer computes (the per-policy
// views §3–4 of the paper aggregate into daily HR/WHR curves).
type Event struct {
	Kind EventKind `json:"kind"`
	// Time is the event time in Unix seconds — simulation time on the
	// trace-driven engine, wall clock on the live proxy store.
	Time int64 `json:"time"`
	// ID is the interned URL ID; -1 when the cache indexes by string
	// (the live proxy) or the document is unknown (misses).
	ID   int32 `json:"id"`
	Size int64 `json:"size"`
	// Age is set on evictions: seconds the victim was resident.
	Age int64 `json:"age,omitempty"`
	// NRef is set on hits and evictions: the entry's reference count.
	NRef int64 `json:"nref,omitempty"`
	// Shard tags events from a sharded store with their shard of
	// origin, so a merged ring stays attributable; 0 for unsharded
	// sources (and shard 0).
	Shard int32 `json:"shard,omitempty"`
}

// EventRing is a bounded ring buffer of cache events. Recording is a
// short uncontended mutex section (one slot store and two counter
// bumps, no allocation), cheap enough to hang off core.CacheHooks on
// the replay hot path; benchreplay's "observed" mode prices exactly
// this enabled path. When the ring wraps, the oldest events are
// overwritten — readers always see the most recent window.
type EventRing struct {
	mu     sync.Mutex
	buf    []Event
	total  uint64
	counts [numEventKinds]int64
}

// NewEventRing returns a ring retaining the last capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *EventRing) Record(ev Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
	if ev.Kind < numEventKinds {
		r.counts[ev.Kind]++
	}
	r.mu.Unlock()
}

// Cap returns the ring's capacity.
func (r *EventRing) Cap() int { return len(r.buf) }

// Len returns the number of events currently retained.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded, including the ones
// the ring has already overwritten.
func (r *EventRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Counts returns the per-kind event totals (hit, miss, evict, add)
// since the ring was created — these are not capped by the capacity.
func (r *EventRing) Counts() (hits, misses, evicts, adds int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[EventHit], r.counts[EventMiss], r.counts[EventEvict], r.counts[EventAdd]
}

// Snapshot copies the retained events out, oldest first.
func (r *EventRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total < n {
		out := make([]Event, r.total)
		copy(out, r.buf[:r.total])
		return out
	}
	out := make([]Event, n)
	head := r.total % n // oldest slot
	copy(out, r.buf[head:])
	copy(out[n-head:], r.buf[:head])
	return out
}

// traceEvent is one Chrome trace-event record (the "JSON Array Format"
// of the Trace Event specification, loadable in Perfetto and
// chrome://tracing). ph, ts, pid and name are the required keys.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the retained events as Chrome trace-event
// JSON. Hits, misses and adds become instant events ("ph":"i");
// evictions become complete events ("ph":"X") spanning the victim's
// residency window ([Time-Age, Time]), so a policy's eviction-age
// behaviour reads directly as span lengths on the timeline. Timestamps
// are microseconds as the format requires; each kind gets its own tid
// track so the four event classes separate visually.
func (r *EventRing) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.traceEvents())
}

// traceEvents renders the retained events as trace-event records, the
// shared building block of WriteChromeTrace and the combined ring +
// request-tracer export (WriteCombinedChromeTrace).
func (r *EventRing) traceEvents() []traceEvent {
	events := r.Snapshot()
	out := make([]traceEvent, 0, len(events))
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Kind.String(),
			Ts:   ev.Time * 1e6,
			Pid:  1,
			Tid:  1 + int(ev.Kind),
			Args: map[string]any{"size": ev.Size},
		}
		if ev.ID >= 0 {
			te.Args["id"] = ev.ID
		}
		switch ev.Kind {
		case EventEvict:
			te.Phase = "X"
			te.Ts = (ev.Time - ev.Age) * 1e6
			te.Dur = ev.Age * 1e6
			te.Args["age"] = ev.Age
			te.Args["nref"] = ev.NRef
		case EventHit:
			te.Phase = "i"
			te.Scope = "t"
			te.Args["nref"] = ev.NRef
		default:
			te.Phase = "i"
			te.Scope = "t"
		}
		out = append(out, te)
	}
	return out
}
