package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Broadcaster fans values out to event-stream subscribers. Publishing
// never blocks: a subscriber whose buffer is full misses that value
// (SSE consumers are monitors, not databases — the JSONL metric stream
// is the lossless record).
type Broadcaster struct {
	mu   sync.Mutex
	subs map[int]chan any
	next int
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[int]chan any)}
}

// Publish delivers v to every subscriber with buffer room.
func (b *Broadcaster) Publish(v any) {
	b.mu.Lock()
	for _, ch := range b.subs {
		select {
		case ch <- v:
		default:
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a subscriber with the given buffer size (min 1)
// and returns its channel plus a cancel function. Cancel is idempotent
// and must be called when the subscriber goes away, or the broadcaster
// retains the channel forever.
func (b *Broadcaster) Subscribe(buffer int) (<-chan any, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan any, buffer)
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = ch
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Subscribers returns the number of active subscriptions.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// ServerOptions configures an introspection Server. Every field is
// optional; endpoints whose backing source is absent answer 404.
type ServerOptions struct {
	// Registry backs /metrics.
	Registry *Registry
	// Ring backs /trace (Chrome trace-event JSON of recent cache events).
	Ring *EventRing
	// Tracer backs /requests (the tail-sampled request reservoir) and
	// joins /trace: with both sources the export is the combined view —
	// the ring's residency spans on pid 1, request span trees on pid 2.
	Tracer *Tracer
	// Events, when non-nil, is the push source for /events: every
	// published value becomes one SSE data frame (websim publishes
	// ReplaySnapshots as replays finish).
	Events *Broadcaster
	// Snapshot, when non-nil, is the poll source for /events: it is
	// called every SnapshotInterval and the result streamed as an SSE
	// frame (the proxy serves periodic serving-stats snapshots). Push
	// and poll sources compose; either alone enables /events.
	Snapshot func() any
	// SnapshotInterval is the poll period for Snapshot (default 1s).
	SnapshotInterval time.Duration
	// Healthz, when non-nil, lets /healthz report degraded state: a
	// non-nil error answers 503 with the message.
	Healthz func() error
	// BuildMeta is merged into the /buildinfo document (e.g. the
	// command name and flags), alongside the binary's build stamp.
	BuildMeta map[string]any
	// Extra mounts additional handlers on the admin mux (e.g. the
	// proxy's sampled access log at /accesslog).
	Extra map[string]http.Handler
}

// Server is the embeddable HTTP introspection surface: /metrics,
// /healthz, /buildinfo, /events (SSE), /trace and /debug/pprof/*. It
// is served on a dedicated admin address (never the traffic listener),
// so exposing pprof here leaks nothing to cache clients. The serving
// path is untouched when no Server is constructed — the whole surface
// reads the same lock-free primitives the hooks write, so scraping
// /metrics never perturbs the cache it describes.
type Server struct {
	opts ServerOptions
	mux  *http.ServeMux

	http      *http.Server
	closeOnce sync.Once
	done      chan struct{} // closed on Close; unblocks SSE handlers
	wg        sync.WaitGroup
}

// NewServer builds the introspection surface. Use Handler to embed it
// in an existing mux, or Start/Close to serve it on its own listener.
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux(), done: make(chan struct{})}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/buildinfo", s.handleBuildinfo)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/requests", s.handleRequests)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range opts.Extra {
		s.mux.Handle(path, h)
	}
	return s
}

// Handler returns the admin mux for embedding or testing.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0"). Call Close to stop.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on admin address %q: %w", addr, err)
	}
	s.http = &http.Server{Handler: s.mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.http.Serve(ln) // returns ErrServerClosed on Shutdown
	}()
	return ln.Addr(), nil
}

// Close stops the server: SSE streams are released first (they watch
// the done channel), then the listener drains. Idempotent; a Server
// that was never Started closes trivially.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	if s.http == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.http.Shutdown(ctx)
	s.wg.Wait()
	return err
}

// handleIndex lists the mounted endpoints — the curl entry point.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	paths := []string{"/healthz", "/metrics", "/metrics?format=json", "/buildinfo", "/events", "/trace", "/requests", "/debug/pprof/"}
	for p := range s.opts.Extra {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "webcache introspection endpoints:")
	for _, p := range paths {
		fmt.Fprintln(w, " ", p)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Healthz != nil {
		if err := s.opts.Healthz(); err != nil {
			http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleMetrics serves the registry: sorted "name value" text by
// default, the full structured form (counters, gauges, histograms with
// buckets and quantiles) with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.opts.Registry
	if reg == nil {
		http.Error(w, "no metric registry attached", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"metrics":    reg.Snapshot(),
			"histograms": reg.HistogramSnapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	reg.WriteText(w)
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	b := BuildInfo()
	doc := map[string]any{
		"path":       b.Path,
		"version":    b.Version,
		"go_version": b.GoVersion,
		"revision":   b.Revision,
		"dirty":      b.Dirty,
		"vcs_time":   b.Time,
		"git_rev":    GitRev(),
	}
	for k, v := range s.opts.BuildMeta {
		doc[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleTrace exports the event ring as Chrome trace-event JSON — save
// it and load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Ring == nil && s.opts.Tracer == nil {
		http.Error(w, "no event ring attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	WriteCombinedChromeTrace(w, s.opts.Ring, s.opts.Tracer)
}

// handleRequests serves the request tracer's tail-sampled reservoir:
// the slowest and flagged requests with their per-phase timelines.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if s.opts.Tracer == nil {
		http.Error(w, "no request tracer attached", http.StatusNotFound)
		return
	}
	s.opts.Tracer.Handler().ServeHTTP(w, r)
}

// handleEvents streams live state as server-sent events: one
// `data: <json>` frame per published value (push source) and/or per
// SnapshotInterval (poll source). The handler exits — releasing its
// goroutine — when the client disconnects or the server closes,
// whichever comes first; the leak test pins this.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Events == nil && s.opts.Snapshot == nil {
		http.Error(w, "no event source attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var sub <-chan any // nil channel: select case blocks forever
	if s.opts.Events != nil {
		ch, cancel := s.opts.Events.Subscribe(64)
		defer cancel()
		sub = ch
	}
	var tick <-chan time.Time
	if s.opts.Snapshot != nil {
		interval := s.opts.SnapshotInterval
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
		// An immediate first frame, so one-shot consumers (curl -m 1,
		// the smoke tests) see data without waiting a full interval.
		if !writeSSE(w, fl, s.opts.Snapshot()) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case v := <-sub:
			if !writeSSE(w, fl, v) {
				return
			}
		case <-tick:
			if !writeSSE(w, fl, s.opts.Snapshot()) {
				return
			}
		}
	}
}

// writeSSE writes one SSE data frame; false means the client is gone.
func writeSSE(w io.Writer, fl http.Flusher, v any) bool {
	data, err := json.Marshal(v)
	if err != nil {
		return false
	}
	if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
		return false
	}
	fl.Flush()
	return true
}
