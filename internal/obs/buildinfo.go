package obs

import (
	"fmt"
	"os/exec"
	"runtime/debug"
	"strings"
)

// Build identifies the binary that produced a metric stream.
type Build struct {
	Path      string // main module path
	Version   string // module version ("(devel)" for source builds)
	GoVersion string
	Revision  string // VCS revision, "" when stamped info is absent
	Dirty     bool
	Time      string // VCS commit time, "" when absent
}

// BuildInfo reads the binary's embedded build information
// (runtime/debug.ReadBuildInfo). VCS fields are stamped only when the
// binary was built from a checkout with `go build`; `go run` and test
// binaries leave them empty.
func BuildInfo() Build {
	b := Build{Version: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		case "vcs.time":
			b.Time = s.Value
		}
	}
	return b
}

// String renders the build stamp for -version output.
func (b Build) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s %s (%s, rev %s)", b.Path, b.Version, b.GoVersion, rev)
}

// GitRev identifies the current revision for metric attribution,
// preferring the binary's stamped VCS info and falling back to the
// working tree's `git rev-parse` (the same convention as benchreplay's
// BENCH_replay.json entries). Returns "unknown" when neither source is
// available.
func GitRev() string {
	if b := BuildInfo(); b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if b.Dirty {
			rev += "-dirty"
		}
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}
