package obs

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
)

// curGoroutineLabels captures this goroutine's pprof label set via the
// debug=1 goroutine profile: the profile groups goroutines by stack, so
// the block containing this helper's frame is the calling goroutine's,
// and its "# labels:" line (absent when unlabeled) is the label set.
// (obs_test.go's goroutineLabels returns the whole profile; here the
// nested-restoration assertions need this goroutine's labels alone.)
func curGoroutineLabels(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	for _, block := range strings.Split(buf.String(), "\n\n") {
		if !strings.Contains(block, "curGoroutineLabels") {
			continue
		}
		for _, line := range strings.Split(block, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "# labels:") {
				return strings.TrimSpace(line)
			}
		}
		return ""
	}
	t.Fatal("test goroutine not found in goroutine profile")
	return ""
}

// TestSpanRestoresLabelsWhenNested pins Span's documented nesting
// semantics: the inner span's labels replace the outer set while it
// runs (Span roots its labels in context.Background, not the current
// goroutine set), nothing leaks past the inner span's end, and the
// goroutine is unlabeled after the outermost span returns. Label
// hygiene is the contract; composition is explicitly not.
func TestSpanRestoresLabelsWhenNested(t *testing.T) {
	var during, afterInner, afterOuter string
	Span([]string{"outer", "a"}, func() {
		Span([]string{"inner", "b"}, func() {
			during = curGoroutineLabels(t)
		})
		afterInner = curGoroutineLabels(t)
	})
	afterOuter = curGoroutineLabels(t)

	if !strings.Contains(during, `"inner":"b"`) {
		t.Errorf("inner span labels missing: %q", during)
	}
	if strings.Contains(during, `"outer"`) {
		t.Errorf("nested span unexpectedly composes with the outer set: %q", during)
	}
	if strings.Contains(afterInner, `"inner"`) {
		t.Errorf("inner span labels leaked past its end: %q", afterInner)
	}
	if strings.Contains(afterOuter, `"outer"`) || strings.Contains(afterOuter, `"inner"`) {
		t.Errorf("span labels survived Span's return: %q", afterOuter)
	}
}
