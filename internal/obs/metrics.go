package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that also tracks its high
// water mark.
type Gauge struct{ v, max atomic.Int64 }

// Set records a new value and raises the high water mark if exceeded.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add shifts the value by delta and raises the high water mark if the
// result exceeds it.
func (g *Gauge) Add(delta int64) {
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// v<=0, bucket i holds [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram for non-negative
// values (nanoseconds, bytes, depths). Observations and reads may race
// benignly: a concurrent snapshot sees each observation in either the
// before or after state, never torn.
type Histogram struct {
	count, sum atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

// Observe records one value. Negative values count into bucket 0.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns the non-empty buckets as {upper bound, count} pairs
// in ascending order; the bound is exclusive (bucket i < 2^i).
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			bound := int64(0)
			if i > 0 && i < 63 {
				bound = int64(1) << uint(i)
			} else if i >= 63 {
				bound = 1<<63 - 1
			}
			out = append(out, HistBucket{UpperBound: bound, Count: n})
		}
	}
	return out
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	UpperBound int64 `json:"le"` // exclusive; 0 = the v<=0 bucket
	Count      int64 `json:"count"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// values from the power-of-two buckets, interpolating linearly inside
// the bucket holding the target rank. The estimate is exact for the
// bucket boundaries and within a factor of two elsewhere — good enough
// for the p50/p95/p99 latency lines the exposition reports. Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is 1-based: the rank-th smallest observation, by the
	// nearest-rank rule rank = ceil(q·n). Flooring here understates
	// upper quantiles by one whole observation (p99 of 100 samples
	// would read the 98th smallest instead of the 99th).
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		if i == 0 {
			return 0 // the v<=0 bucket
		}
		lo := int64(1) << uint(i-1)
		hi := int64(1<<63 - 1)
		if i < 63 {
			hi = lo << 1
		}
		// Midpoint-rank interpolation: the rank-th observation sits at
		// the centre of its 1/c slice of the bucket, so the estimate
		// stays strictly inside [lo, hi) even at the bucket edges.
		frac := (float64(rank-cum) - 0.5) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return 0
}

// Registry is a named collection of metrics. Get-or-create lookups
// take a mutex; the returned primitives are lock-free, so hooks hold a
// pointer and never touch the registry on the event path.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	winds  map[string]*WindowedCounter
	funcs  map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		winds:  make(map[string]*WindowedCounter),
		funcs:  make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Windowed returns the named windowed counter, creating it with the
// given window geometry on first use (zero values pick the package
// defaults). The geometry is fixed at creation: later calls return the
// existing counter regardless of the arguments.
func (r *Registry) Windowed(name string, window time.Duration, buckets int) *WindowedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.winds[name]
	if !ok {
		w = NewWindowedCounter(window, buckets)
		r.winds[name] = w
	}
	return w
}

// GaugeFunc registers a computed gauge: fn is evaluated at every
// snapshot/scrape rather than pushed to. Use it for values derived
// from other state (a windowed hit rate, a queue depth) so the surface
// is always current without a refresh ticker. Registering the same
// name again replaces the function. fn must not call back into the
// registry (the registry mutex is held during evaluation).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns every counter and gauge as a flat name→value map;
// gauges contribute both their value and a "name.max" high water mark,
// windowed counters their recent-window total under the bare name
// (lifetime totals live in the plain counters alongside them), and
// computed gauges their function's value at snapshot time.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counts)+2*len(r.gauges)+len(r.winds)+len(r.funcs))
	for name, c := range r.counts {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
		out[name+".max"] = g.Max()
	}
	for name, w := range r.winds {
		out[name] = w.WindowTotal()
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	return out
}

// HistogramSnapshot returns every histogram's count, sum and non-empty
// buckets keyed by name.
func (r *Registry) HistogramSnapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.hists))
	for name, h := range r.hists {
		out[name] = map[string]any{
			"count":   h.Count(),
			"sum":     h.Sum(),
			"p50":     h.Quantile(0.50),
			"p95":     h.Quantile(0.95),
			"p99":     h.Quantile(0.99),
			"buckets": h.Buckets(),
		}
	}
	return out
}

// WriteText renders all metrics in sorted "name value" lines.
// Histograms contribute count, sum and the p50/p95/p99 quantile
// estimates — the lines a latency report reads.
func (r *Registry) WriteText(w io.Writer) error {
	flat := r.Snapshot()
	for name, h := range r.HistogramSnapshot() {
		m := h.(map[string]any)
		flat[name+".count"] = m["count"]
		flat[name+".sum"] = m["sum"]
		flat[name+".p50"] = m["p50"]
		flat[name+".p95"] = m["p95"]
		flat[name+".p99"] = m["p99"]
	}
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %v\n", name, flat[name]); err != nil {
			return err
		}
	}
	return nil
}
