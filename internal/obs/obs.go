// Package obs is the simulator's observability layer: atomic metric
// primitives with a registry and text/JSONL exposition, per-replay
// metric snapshots, pprof label spans, a live progress surface, and
// build identification for metric attribution.
//
// The contract is zero overhead when disabled. Nothing in this package
// is consulted on the per-request hot path; the cache event hooks it
// feeds (core.CacheHooks) are nil-checked function slots that cost one
// predictable branch each when unset, and the replay spans and
// snapshots are per-replay (tens of thousands of requests), not
// per-request. The benchreplay harness measures the enabled-path cost
// as an explicit "observed" mode so the overhead is tracked in
// BENCH_replay.json alongside the engine's ns/request trajectory.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SchemaVersion identifies the JSONL metric record layout; bump it when
// a record's fields change meaning.
const SchemaVersion = "webcache-metrics/1"

// ReplaySnapshot is the per-replay metric record: one finite- or
// infinite-cache replay's outcome counters and timing, emitted as a
// JSONL line and retained in memory for aggregation. Every counter is
// copied out of core.Stats after the replay finishes, so emitting a
// snapshot can never perturb the simulation it describes.
type ReplaySnapshot struct {
	Record     string `json:"record"` // always "replay"
	Experiment string `json:"experiment,omitempty"`
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	Capacity   int64  `json:"capacity"` // bytes; 0 = infinite

	Requests       int64 `json:"requests"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	BytesRequested int64 `json:"bytes_requested"`
	BytesHit       int64 `json:"bytes_hit"`
	Evictions      int64 `json:"evictions"`
	EvictedBytes   int64 `json:"evicted_bytes"`
	SizeChanges    int64 `json:"size_changes"`

	// HeapPeak is the peak number of resident documents (the policy
	// heap's maximum depth); OccupancyHighWater is the peak resident
	// bytes (MaxUsed / MaxNeeded on an infinite cache).
	HeapPeak           int64 `json:"heap_peak"`
	OccupancyHighWater int64 `json:"occupancy_high_water"`

	ReplayNs     int64   `json:"replay_ns"`
	NsPerRequest float64 `json:"ns_per_request"`
}

// RunSummary is the end-of-run JSONL record: the runner's parallelism
// accounting plus the registry's accumulated event counters.
type RunSummary struct {
	Record       string         `json:"record"` // always "summary"
	Replays      int            `json:"replays"`
	Workers      int            `json:"workers,omitempty"`
	WallNs       int64          `json:"wall_ns,omitempty"`
	CPUNs        int64          `json:"cpu_ns,omitempty"`
	Speedup      float64        `json:"speedup,omitempty"`
	QueueWaitNs  int64          `json:"queue_wait_ns,omitempty"`
	MeanQueueNs  int64          `json:"mean_queue_wait_ns,omitempty"`
	PeakInFlight int            `json:"peak_in_flight,omitempty"`
	Metrics      map[string]any `json:"metrics,omitempty"`
	Histograms   map[string]any `json:"histograms,omitempty"`
	Generated    string         `json:"generated"`
}

// Observer is a session-level observability sink. A nil *Observer means
// observability is off; every integration point nil-checks before doing
// any work, so the disabled path costs one branch per replay.
//
// Observers are safe for concurrent use: replays fanned out by
// sim.Runner emit snapshots from many goroutines at once.
type Observer struct {
	reg      *Registry
	progress *Progress
	ring     *EventRing
	events   *Broadcaster

	mu         sync.Mutex
	sink       io.Writer // JSONL metric stream; nil = in-memory only
	enc        *json.Encoder
	snapshots  []ReplaySnapshot
	experiment string
}

// Options configures an Observer.
type Options struct {
	// Metrics, when non-nil, receives the JSONL metric stream: a header
	// record at construction, one "replay" record per snapshot, and a
	// "summary" record at Close.
	Metrics io.Writer
	// Meta is merged into the header record (e.g. git_rev, command
	// flags) so metric files are attributable like BENCH_replay.json
	// entries.
	Meta map[string]any
	// Progress, when non-nil, is advanced by one for every emitted
	// replay snapshot; pair it with AddReplays from the experiment
	// entry points.
	Progress *Progress
	// Ring, when non-nil, receives event-level cache traces
	// (hit/miss/evict/add) from the cache hooks — the source for the
	// Chrome trace export and the eviction-age histograms.
	Ring *EventRing
	// Events, when non-nil, has every emitted replay snapshot published
	// to it — the push source behind an introspection Server's /events
	// SSE stream.
	Events *Broadcaster
}

// New returns an observer. When opts.Metrics is set, the JSONL header
// record is written immediately.
func New(opts Options) *Observer {
	o := &Observer{
		reg:      NewRegistry(),
		progress: opts.Progress,
		ring:     opts.Ring,
		events:   opts.Events,
		sink:     opts.Metrics,
	}
	if o.sink != nil {
		o.enc = json.NewEncoder(o.sink)
		header := map[string]any{
			"record": "header",
			"schema": SchemaVersion,
		}
		for k, v := range opts.Meta {
			header[k] = v
		}
		o.mu.Lock()
		o.enc.Encode(header)
		o.mu.Unlock()
	}
	return o
}

// Registry returns the observer's metric registry, shared by the cache
// event hooks.
func (o *Observer) Registry() *Registry { return o.reg }

// Ring returns the event trace ring, nil when event tracing is off.
func (o *Observer) Ring() *EventRing { return o.ring }

// Events returns the snapshot broadcaster, nil when none is attached.
func (o *Observer) Events() *Broadcaster { return o.events }

// SetExperiment records the experiment name stamped on subsequent
// snapshots and pprof spans.
func (o *Observer) SetExperiment(name string) {
	o.mu.Lock()
	o.experiment = name
	o.mu.Unlock()
}

// Experiment returns the current experiment name.
func (o *Observer) Experiment() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.experiment
}

// AddReplays grows the progress total by n (no-op without a Progress).
func (o *Observer) AddReplays(n int) {
	if o.progress != nil {
		o.progress.AddTotal(n)
	}
}

// EmitReplay records one replay's snapshot: it is retained in memory,
// streamed as a JSONL line when a sink is attached, and counted toward
// progress.
func (o *Observer) EmitReplay(s ReplaySnapshot) {
	s.Record = "replay"
	if s.Experiment == "" {
		s.Experiment = o.Experiment()
	}
	o.mu.Lock()
	o.snapshots = append(o.snapshots, s)
	if o.enc != nil {
		o.enc.Encode(s)
	}
	o.mu.Unlock()
	if o.progress != nil {
		o.progress.Done(1)
	}
	if o.events != nil {
		o.events.Publish(s)
	}
}

// Snapshots returns a copy of every emitted replay snapshot, in
// emission order.
func (o *Observer) Snapshots() []ReplaySnapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]ReplaySnapshot, len(o.snapshots))
	copy(out, o.snapshots)
	return out
}

// Close writes the end-of-run summary record (runner accounting plus
// the registry's counters) and stops the progress surface. runner may
// be nil when no parallel pool was involved.
func (o *Observer) Close(sum RunSummary) error {
	if o.progress != nil {
		o.progress.Stop()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	sum.Record = "summary"
	sum.Replays = len(o.snapshots)
	sum.Metrics = o.reg.Snapshot()
	sum.Histograms = o.reg.HistogramSnapshot()
	sum.Generated = time.Now().UTC().Format(time.RFC3339)
	if o.enc != nil {
		return o.enc.Encode(sum)
	}
	return nil
}

// WriteText renders the registry in sorted "name value" lines — the
// human-readable exposition, handy in tests and ad-hoc dumps.
func (o *Observer) WriteText(w io.Writer) error {
	return o.reg.WriteText(w)
}

// MeanNsPerRequest averages ns/request over all emitted snapshots,
// weighted by request count.
func (o *Observer) MeanNsPerRequest() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var ns, reqs int64
	for i := range o.snapshots {
		ns += o.snapshots[i].ReplayNs
		reqs += o.snapshots[i].Requests
	}
	if reqs == 0 {
		return 0
	}
	return float64(ns) / float64(reqs)
}

// String summarizes the observer for debugging.
func (o *Observer) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return fmt.Sprintf("obs.Observer{experiment=%q, snapshots=%d}", o.experiment, len(o.snapshots))
}
