package origin

// The proxy's miss path is dominated by the origin: connection setup,
// the origin's think time, and the body transfer. This file turns the
// transport's own lifecycle callbacks (net/http/httptrace) into the
// request tracer's origin.dial and origin.ttfb spans, so a sampled
// miss's timeline attributes its latency to the wire rather than to
// an opaque RoundTrip blob.

import (
	"net/http"
	"net/http/httptrace"
	"sync"

	"webcache/internal/obs"
)

// ClientTrace returns an httptrace.ClientTrace that records the
// origin fetch's connection phases into rt:
//
//   - origin.dial spans ConnectStart → ConnectDone (absent entirely
//     when the transport reuses an idle connection),
//   - origin.ttfb spans request-written → first response byte, the
//     origin's think time.
//
// The transport may fire connect callbacks from its dialing goroutine
// (and dials two connections at once under happy-eyeballs), so the
// span IDs are guarded; ReqTrace's own span buffer is already
// goroutine-safe.
func ClientTrace(rt *obs.ReqTrace) *httptrace.ClientTrace {
	var mu sync.Mutex
	dial, ttfb := obs.NoSpan, obs.NoSpan
	return &httptrace.ClientTrace{
		ConnectStart: func(network, addr string) {
			mu.Lock()
			if dial == obs.NoSpan {
				dial = rt.BeginSpan(obs.PhaseDial)
			}
			mu.Unlock()
		},
		ConnectDone: func(network, addr string, err error) {
			mu.Lock()
			rt.EndSpan(dial)
			mu.Unlock()
		},
		WroteRequest: func(httptrace.WroteRequestInfo) {
			mu.Lock()
			if ttfb == obs.NoSpan {
				ttfb = rt.BeginSpan(obs.PhaseTTFB)
			}
			mu.Unlock()
		},
		GotFirstResponseByte: func() {
			mu.Lock()
			rt.EndSpan(ttfb)
			mu.Unlock()
		},
	}
}

// TraceRequest attaches ClientTrace(rt) to req's context and returns
// the derived request. A nil rt returns req unchanged, so callers need
// no sampling branch of their own.
func TraceRequest(req *http.Request, rt *obs.ReqTrace) *http.Request {
	if rt == nil {
		return req
	}
	return req.WithContext(httptrace.WithClientTrace(req.Context(), ClientTrace(rt)))
}
