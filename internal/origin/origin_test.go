package origin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webcache/internal/trace"
)

func testTrace() *trace.Trace {
	return &trace.Trace{Name: "t", Start: 800000000 - 800000000%86400, Requests: []trace.Request{
		{Time: 800000000, URL: "http://s1.vt.edu/a.gif", Status: 200, Size: 1000, Type: trace.Graphics},
		{Time: 800000010, URL: "http://s2.vt.edu/b.html", Status: 200, Size: 250, Type: trace.Text},
		{Time: 800000020, URL: "http://s1.vt.edu/broken.html", Status: 404, Size: 0, Type: trace.Text},
	}}
}

func TestFromTraceDocs(t *testing.T) {
	s := FromTrace(testTrace())
	if s.Docs() != 2 {
		t.Fatalf("Docs = %d, want 2 (the 404 is not servable)", s.Docs())
	}
}

func TestServeBodySize(t *testing.T) {
	s := FromTrace(testTrace())
	ts := httptest.NewServer(s)
	defer ts.Close()

	client := &http.Client{Transport: RewriteTransport(ts.Listener.Addr().String())}
	resp, err := client.Get("http://s1.vt.edu/a.gif")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 1000 {
		t.Fatalf("body %d bytes, want 1000", len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/gif" {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Fatal("no Last-Modified header")
	}
	// Deterministic body pattern.
	if body[0] != 'a' || body[25] != 'z' || body[26] != 'a' {
		t.Fatalf("unexpected pattern start: %q", body[:30])
	}
	n, by := s.Fetches()
	if n != 1 || by != 1000 {
		t.Fatalf("fetches %d/%d", n, by)
	}
}

func TestServeNotFound(t *testing.T) {
	s := FromTrace(testTrace())
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: RewriteTransport(ts.Listener.Addr().String())}
	resp, err := client.Get("http://s1.vt.edu/missing.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServeConditionalGet(t *testing.T) {
	s := FromTrace(testTrace())
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: RewriteTransport(ts.Listener.Addr().String())}

	req, err := http.NewRequest(http.MethodGet, "http://s2.vt.edu/b.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-Modified-Since", time.Now().UTC().Format(http.TimeFormat))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
}

func TestPatternReader(t *testing.T) {
	p := &patternReader{remaining: 60}
	got, err := io.ReadAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("read %d bytes", len(got))
	}
	if !strings.HasPrefix(string(got), "abcdefghijklmnopqrstuvwxyzabcdef") {
		t.Fatalf("pattern %q", got[:32])
	}
}

func TestHostOf(t *testing.T) {
	if got := HostOf("http://a.b.c/x"); got != "a.b.c" {
		t.Fatalf("HostOf = %q", got)
	}
	if got := HostOf("http://justhost"); got != "justhost" {
		t.Fatalf("HostOf = %q", got)
	}
}
