// Package origin implements a synthetic Web origin server that serves
// the document space of a trace: each URL gets a deterministic body of
// exactly the trace's size with a Last-Modified header. Together with
// the live proxy it closes the loop between the simulator and a real
// HTTP deployment — cmd/livebench replays a trace through both and
// compares the hit rates.
package origin

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"webcache/internal/trace"
)

// doc is one servable document.
type doc struct {
	size    int64
	lastMod time.Time
	ctype   string
}

// Server is an http.Handler serving a trace's document space. Requests
// are matched by reconstructing the absolute URL from the Host header
// and path, so a single listener serves every synthetic host as long as
// connections are dialed to it regardless of name (see RewriteTransport).
type Server struct {
	mu      sync.Mutex
	docs    map[string]doc
	fetches int64
	bytes   int64
}

// FromTrace builds a server from the trace's final size per URL.
func FromTrace(tr *trace.Trace) *Server {
	s := &Server{docs: make(map[string]doc, 1024)}
	base := time.Unix(tr.Start, 0).UTC()
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Status != 200 {
			continue
		}
		s.docs[r.URL] = doc{
			size:    r.Size,
			lastMod: base.Add(-24 * time.Hour),
			ctype:   contentTypeFor(r.Type),
		}
	}
	return s
}

// Docs returns the number of distinct documents served.
func (s *Server) Docs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs)
}

// Fetches returns how many 200 responses the origin has served and the
// bytes sent — the load a cache is supposed to absorb.
func (s *Server) Fetches() (n, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches, s.bytes
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	url := "http://" + r.Host + r.URL.RequestURI()
	s.mu.Lock()
	d, ok := s.docs[url]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" {
		if t, err := http.ParseTime(ims); err == nil && !d.lastMod.After(t.Add(time.Second)) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", d.ctype)
	w.Header().Set("Last-Modified", d.lastMod.Format(http.TimeFormat))
	w.Header().Set("Content-Length", fmt.Sprint(d.size))
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	n, _ := io.Copy(w, &patternReader{remaining: d.size})
	s.mu.Lock()
	s.fetches++
	s.bytes += n
	s.mu.Unlock()
}

// patternReader streams a deterministic byte pattern without allocating
// whole bodies.
type patternReader struct {
	remaining int64
	pos       int64
}

func (p *patternReader) Read(buf []byte) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := int64(len(buf))
	if n > p.remaining {
		n = p.remaining
	}
	for i := int64(0); i < n; i++ {
		buf[i] = 'a' + byte((p.pos+i)%26)
	}
	p.pos += n
	p.remaining -= n
	return int(n), nil
}

// RewriteTransport dials every outbound connection to a fixed address,
// so URLs with synthetic hosts (http://s5.world.example/...) resolve to
// the local origin server. The Host header still carries the synthetic
// name, which the origin uses to reconstruct the full URL.
func RewriteTransport(originAddr string) http.RoundTripper {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, originAddr)
		},
		MaxIdleConnsPerHost: 16,
	}
}

func contentTypeFor(t trace.DocType) string {
	switch t {
	case trace.Graphics:
		return "image/gif"
	case trace.Text:
		return "text/html"
	case trace.Audio:
		return "audio/basic"
	case trace.Video:
		return "video/mpeg"
	default:
		return "application/octet-stream"
	}
}

// HostOf is exported for tests: the host part of an absolute URL.
func HostOf(url string) string {
	s := strings.TrimPrefix(url, "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}
