package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d with identical seeds", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	s1 := a.Split()
	s2 := a.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("two splits produced the same first value")
	}
	// Splitting is itself deterministic.
	b := New(7)
	t1 := b.Split()
	u1, u2 := New(7).Split().Uint64(), t1.Uint64()
	if u1 != u2 {
		t.Fatalf("split determinism broken: %d != %d", u1, u2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(6)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d, want ~%.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(12)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(13)
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}
