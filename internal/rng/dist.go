package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws ranks in [1, N] with probability proportional to 1/rank^s.
// It uses rejection-inversion sampling (Hörmann & Derflinger 1996), which
// is O(1) per draw for any exponent s > 0, including s == 1.
type Zipf struct {
	r           *Rand
	n           float64
	s           float64
	oneMinusS   float64
	hIntegralX1 float64
	hIntegralN  float64
	accept      float64
}

// NewZipf returns a Zipf sampler over ranks 1..n with exponent s > 0.
func NewZipf(r *Rand, n int64, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("rng: Zipf needs n >= 1, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("rng: Zipf needs s > 0, got %v", s)
	}
	z := &Zipf{r: r, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.accept = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z, nil
}

// hIntegral is the antiderivative of h(x) = x^(-s):
// (x^(1-s)-1)/(1-s) for s != 1, log(x) for s == 1, computed stably.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x stably near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// helper2 computes expm1(x)/x stably near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6
}

// Rank returns the next Zipf-distributed rank in [1, n].
func (z *Zipf) Rank() int64 {
	for {
		u := z.hIntegralN + z.r.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.accept || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int64(k)
		}
	}
}

// LogNormal draws positive heavy-ish-tailed values; document body sizes in
// the workload generators are lognormal, matching the shape of Fig. 13.
type LogNormal struct {
	r     *Rand
	mu    float64
	sigma float64
}

// NewLogNormalMean returns a lognormal whose *mean* is mean and whose
// log-space standard deviation is sigma (mu is solved from the mean).
func NewLogNormalMean(r *Rand, mean, sigma float64) *LogNormal {
	mu := math.Log(mean) - sigma*sigma/2
	return &LogNormal{r: r, mu: mu, sigma: sigma}
}

// Draw returns the next lognormal variate.
func (l *LogNormal) Draw() float64 {
	return math.Exp(l.mu + l.sigma*l.r.NormFloat64())
}

// BoundedPareto draws values in [lo, hi] with tail exponent alpha; it
// models the long upper tail of audio/video document sizes.
type BoundedPareto struct {
	r        *Rand
	lo       float64
	alpha    float64
	loA, hiA float64
}

// NewBoundedPareto returns a bounded Pareto sampler. It panics on invalid
// parameters because the parameters are compile-time constants here.
func NewBoundedPareto(r *Rand, lo, hi, alpha float64) *BoundedPareto {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic(fmt.Sprintf("rng: invalid bounded Pareto (lo=%v hi=%v alpha=%v)", lo, hi, alpha))
	}
	return &BoundedPareto{
		r: r, lo: lo, alpha: alpha,
		loA: math.Pow(lo, alpha), hiA: math.Pow(hi, alpha),
	}
}

// Draw returns the next bounded Pareto variate by CDF inversion.
func (p *BoundedPareto) Draw() float64 {
	u := p.r.Float64()
	ha, la := p.hiA, p.loA
	v := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(v, -1/p.alpha)
}

// Categorical draws indices with fixed weights.
type Categorical struct {
	r   *Rand
	cum []float64
}

// NewCategorical builds a sampler over len(weights) categories. Weights
// need not sum to one; negative or NaN weights are an error.
func NewCategorical(r *Rand, weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: Categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rng: negative or NaN weight %v at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("rng: Categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Categorical{r: r, cum: cum}, nil
}

// Draw returns the next category index.
func (c *Categorical) Draw() int {
	u := c.r.Float64()
	return sort.SearchFloat64s(c.cum, u)
}

// Poisson returns a Poisson variate with the given mean (Knuth's method
// for small means, normal approximation above 60 — per-day request counts
// never need exactness in the far tail).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
