// Package rng provides a small, self-contained, deterministic random
// number generator and the distributions the workload generators need.
//
// The simulator's results must be reproducible across machines and Go
// releases, so nothing here depends on math/rand: the core generator is
// xoshiro256** seeded through splitmix64, both of which have fixed,
// published output sequences.
package rng

import "math"

// Rand is a deterministic pseudo-random source (xoshiro256**).
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed using
// splitmix64, as recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so splitting is itself
// reproducible. Use it to give each subsystem (sizes, arrival times,
// popularity) its own stream so adding draws to one does not perturb the
// others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) without modulo bias
// (Lemire's multiply-shift rejection method). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n { // -n%n == (2^64 - n) mod n
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
