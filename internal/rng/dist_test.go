package rng

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	r := New(1)
	if _, err := NewZipf(r, 0, 1); err == nil {
		t.Fatal("NewZipf(n=0) accepted")
	}
	if _, err := NewZipf(r, 10, 0); err == nil {
		t.Fatal("NewZipf(s=0) accepted")
	}
	if _, err := NewZipf(r, 10, math.NaN()); err == nil {
		t.Fatal("NewZipf(s=NaN) accepted")
	}
}

func TestZipfRange(t *testing.T) {
	r := New(2)
	for _, s := range []float64{0.5, 1.0, 1.5} {
		z, err := NewZipf(r, 100, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50000; i++ {
			if k := z.Rank(); k < 1 || k > 100 {
				t.Fatalf("s=%v: rank %d out of [1,100]", s, k)
			}
		}
	}
}

// TestZipfDistribution checks that empirical frequencies track 1/k^s.
func TestZipfDistribution(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.3} {
		r := New(3)
		const n, draws = 50, 400000
		z, err := NewZipf(r, n, s)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, n+1)
		for i := 0; i < draws; i++ {
			counts[z.Rank()]++
		}
		var h float64
		for k := 1; k <= n; k++ {
			h += math.Pow(float64(k), -s)
		}
		for k := 1; k <= 10; k++ { // head ranks have enough mass to test tightly
			want := draws * math.Pow(float64(k), -s) / h
			if got := counts[k]; math.Abs(got-want) > want*0.08 {
				t.Fatalf("s=%v rank %d: got %.0f draws, want ~%.0f", s, k, got, want)
			}
		}
	}
}

func TestZipfSingleton(t *testing.T) {
	z, err := NewZipf(New(4), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if k := z.Rank(); k != 1 {
			t.Fatalf("n=1 rank %d", k)
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	for _, tc := range []struct{ mean, sigma float64 }{
		{1000, 0.5}, {10000, 1.2}, {1e6, 0.8},
	} {
		l := NewLogNormalMean(New(5), tc.mean, tc.sigma)
		sum := 0.0
		const n = 300000
		for i := 0; i < n; i++ {
			sum += l.Draw()
		}
		got := sum / n
		if math.Abs(got-tc.mean) > tc.mean*0.05 {
			t.Fatalf("lognormal(mean=%v sigma=%v) sample mean %v", tc.mean, tc.sigma, got)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	l := NewLogNormalMean(New(6), 100, 2.0)
	for i := 0; i < 10000; i++ {
		if v := l.Draw(); v <= 0 {
			t.Fatalf("lognormal draw %v <= 0", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	p := NewBoundedPareto(New(7), 100, 1e6, 1.1)
	for i := 0; i < 100000; i++ {
		v := p.Draw()
		if v < 100 || v > 1e6 {
			t.Fatalf("bounded Pareto draw %v outside [100, 1e6]", v)
		}
	}
}

func TestBoundedParetoTail(t *testing.T) {
	// With alpha=1, P(X > x) ∝ (1/lo - 1/x); check the median is near the
	// analytic value lo*hi*2/(hi+lo) ≈ 2*lo for hi >> lo.
	p := NewBoundedPareto(New(8), 1000, 1e9, 1.0)
	const n = 200000
	over := 0
	for i := 0; i < n; i++ {
		if p.Draw() > 2000 {
			over++
		}
	}
	frac := float64(over) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(X > 2*lo) = %v, want ~0.5", frac)
	}
}

func TestBoundedParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounded Pareto accepted")
		}
	}()
	NewBoundedPareto(New(9), 10, 5, 1)
}

func TestCategoricalValidation(t *testing.T) {
	r := New(10)
	if _, err := NewCategorical(r, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewCategorical(r, []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewCategorical(r, []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	weights := []float64{5, 3, 2}
	c, err := NewCategorical(New(11), weights)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[c.Draw()]++
	}
	for i, w := range weights {
		want := n * w / 10
		if math.Abs(counts[i]-want) > want*0.05 {
			t.Fatalf("category %d: got %.0f, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	c, err := NewCategorical(New(12), []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		if c.Draw() == 1 {
			t.Fatal("zero-weight category drawn")
		}
	}
}
