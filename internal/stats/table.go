package stats

import (
	"fmt"
	"strings"
)

// Table renders fixed-width text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, ncols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
