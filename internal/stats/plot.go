package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders day series as an ASCII chart, giving cmd/websim a
// terminal rendering of the paper's figures. Multiple series share the
// axes; each is drawn with its own glyph.
type Plot struct {
	Width, Height int
	YMin, YMax    float64 // fixed y-range; equal values auto-scale
	YLabel        string
	XLabel        string

	series []plotSeries
}

type plotSeries struct {
	name   string
	glyph  byte
	points []DayPoint
}

// NewPlot returns a plot of the given size (sensible minimums applied).
func NewPlot(width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Plot{Width: width, Height: height}
}

// Add registers a named series drawn with glyph.
func (p *Plot) Add(name string, glyph byte, points []DayPoint) {
	p.series = append(p.series, plotSeries{name: name, glyph: glyph, points: points})
}

// Render draws the chart.
func (p *Plot) Render() string {
	if len(p.series) == 0 {
		return "(no series)\n"
	}
	xMin, xMax := math.MaxInt32, math.MinInt32
	yMin, yMax := p.YMin, p.YMax
	autoY := yMin == yMax
	if autoY {
		yMin, yMax = math.Inf(1), math.Inf(-1)
	}
	for _, s := range p.series {
		for _, pt := range s.points {
			if pt.Day < xMin {
				xMin = pt.Day
			}
			if pt.Day > xMax {
				xMax = pt.Day
			}
			if autoY {
				yMin = math.Min(yMin, pt.Value)
				yMax = math.Max(yMax, pt.Value)
			}
		}
	}
	if xMin > xMax {
		return "(empty series)\n"
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	put := func(day int, val float64, glyph byte) {
		x := 0
		if xMax > xMin {
			x = (day - xMin) * (p.Width - 1) / (xMax - xMin)
		}
		yFrac := (val - yMin) / (yMax - yMin)
		if yFrac < 0 {
			yFrac = 0
		}
		if yFrac > 1 {
			yFrac = 1
		}
		y := p.Height - 1 - int(math.Round(yFrac*float64(p.Height-1)))
		if x >= 0 && x < p.Width && y >= 0 && y < p.Height {
			grid[y][x] = glyph
		}
	}
	for _, s := range p.series {
		for _, pt := range s.points {
			put(pt.Day, pt.Value, s.glyph)
		}
	}

	var b strings.Builder
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", p.YLabel)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", yMax)
		case p.Height - 1:
			label = fmt.Sprintf("%7.1f ", yMin)
		case p.Height / 2:
			label = fmt.Sprintf("%7.1f ", (yMax+yMin)/2)
		}
		b.WriteString(label)
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("        +" + strings.Repeat("-", p.Width) + "\n")
	fmt.Fprintf(&b, "        %-*d%*d", p.Width/2, xMin, p.Width-p.Width/2, xMax)
	if p.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", p.XLabel)
	}
	b.WriteByte('\n')
	legend := make([]string, 0, len(p.series))
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.glyph, s.name))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Join(legend, "  "))
	return b.String()
}

// PlotPercentSeries is a convenience for the common figure shape: one or
// two hit-rate series in percent over days.
func PlotPercentSeries(yLabel string, named map[string][]DayPoint) string {
	p := NewPlot(72, 16)
	p.YMin, p.YMax = 0, 100
	p.YLabel = yLabel
	p.XLabel = "days since trace start"
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	i := 0
	// Deterministic ordering for stable output.
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pts := named[n]
		scaled := make([]DayPoint, len(pts))
		for j, pt := range pts {
			scaled[j] = DayPoint{Day: pt.Day, Value: 100 * pt.Value}
		}
		p.Add(n, glyphs[i%len(glyphs)], scaled)
		i++
	}
	return p.Render()
}
