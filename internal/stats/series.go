// Package stats provides the measurement machinery the paper's figures
// need: per-day hit-rate series with the paper's 7-day moving average,
// histograms, rank-frequency (Zipf) analysis, scatter summaries, and
// fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DayPoint is one recorded day of a daily series.
type DayPoint struct {
	Day   int     // day index since trace start
	Value float64 // e.g. that day's hit rate
}

// DailySeries accumulates a per-day ratio (hits/requests or bytes-hit/
// bytes-requested) and renders the paper's 7-day moving average.
//
// Days with no requests are not recorded; the moving average is taken
// over the previous seven *recorded* days, exactly as the paper handles
// the classroom workload ("every plotted point is the average of hit
// rates for the previous seven recorded days, no matter what amount of
// time has elapsed"). No point is produced for the first six recorded
// days.
type DailySeries struct {
	points []DayPoint
}

// Add records day's value. Days must be added in nondecreasing order;
// adding the same day again overwrites it.
func (s *DailySeries) Add(day int, value float64) {
	if n := len(s.points); n > 0 {
		last := &s.points[n-1]
		if day < last.Day {
			panic(fmt.Sprintf("stats: day %d added after day %d", day, last.Day))
		}
		if day == last.Day {
			last.Value = value
			return
		}
	}
	s.points = append(s.points, DayPoint{Day: day, Value: value})
}

// Raw returns the recorded daily points.
func (s *DailySeries) Raw() []DayPoint { return s.points }

// MovingAverage returns the 7-day moving average series: point i is the
// mean of recorded days i-6..i, emitted for i >= 6.
func (s *DailySeries) MovingAverage() []DayPoint {
	return s.MovingAverageN(7)
}

// MovingAverageN generalizes MovingAverage to an n-day window.
func (s *DailySeries) MovingAverageN(n int) []DayPoint {
	if n < 1 || len(s.points) < n {
		return nil
	}
	out := make([]DayPoint, 0, len(s.points)-n+1)
	sum := 0.0
	for i, p := range s.points {
		sum += p.Value
		if i >= n {
			sum -= s.points[i-n].Value
		}
		if i >= n-1 {
			out = append(out, DayPoint{Day: p.Day, Value: sum / float64(n)})
		}
	}
	return out
}

// Mean returns the mean of the recorded daily values (the paper's
// "averaged over all days in the trace" summary).
func (s *DailySeries) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// RatioTo divides this series' moving average by base's moving average
// day by day (the Experiment 2 "percent of infinite cache HR" curves).
// Days present in only one series are skipped; days where base is zero
// are skipped.
func (s *DailySeries) RatioTo(base *DailySeries) []DayPoint {
	bm := base.MovingAverage()
	baseByDay := make(map[int]float64, len(bm))
	for _, p := range bm {
		baseByDay[p.Day] = p.Value
	}
	var out []DayPoint
	for _, p := range s.MovingAverage() {
		b, ok := baseByDay[p.Day]
		if !ok || b == 0 {
			continue
		}
		out = append(out, DayPoint{Day: p.Day, Value: p.Value / b})
	}
	return out
}

// MeanRatioTo returns the mean of RatioTo — a single-number summary of
// how close a policy runs to the infinite-cache bound.
func (s *DailySeries) MeanRatioTo(base *DailySeries) float64 {
	r := s.RatioTo(base)
	if len(r) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r {
		sum += p.Value
	}
	return sum / float64(len(r))
}

// Summary holds basic order statistics of a sample.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P25, Median, P75 float64
	StdDev           float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	s.Min, s.Max = cp[0], cp[len(cp)-1]
	sum, sumSq := 0.0, 0.0
	for _, x := range cp {
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(s.N)
	variance := sumSq/float64(s.N) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.P25 = quantileSorted(cp, 0.25)
	s.Median = quantileSorted(cp, 0.5)
	s.P75 = quantileSorted(cp, 0.75)
	return s
}

// quantileSorted returns the q-quantile of sorted xs by linear
// interpolation.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[lo]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}
