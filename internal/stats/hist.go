package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values into fixed-width bins over [min, max); values
// outside the range land in the under/overflow counters. It renders
// Fig. 13 (document-size histogram).
type Histogram struct {
	Min, Max  float64
	BinWidth  float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	N         int64
}

// NewHistogram returns a histogram with nbins equal bins over [min, max).
func NewHistogram(min, max float64, nbins int) (*Histogram, error) {
	if !(max > min) || nbins < 1 {
		return nil, fmt.Errorf("stats: invalid histogram range [%v,%v) with %d bins", min, max, nbins)
	}
	return &Histogram{
		Min: min, Max: max,
		BinWidth: (max - min) / float64(nbins),
		Counts:   make([]int64, nbins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / h.BinWidth)
		if i >= len(h.Counts) { // guard float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Render draws a text histogram with the given maximum bar width.
func (h *Histogram) Render(barWidth int) string {
	var peak int64 = 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.BinWidth
		bar := int(float64(c) / float64(peak) * float64(barWidth))
		fmt.Fprintf(&b, "%12.0f %7d %s\n", lo, c, strings.Repeat("#", bar))
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "%12s %7d (overflow >= %.0f)\n", ">=", h.Overflow, h.Max)
	}
	return b.String()
}

// LogHistogram counts positive values into logarithmically spaced bins
// (powers of base), the natural view of heavy-tailed size distributions.
type LogHistogram struct {
	Base   float64
	Counts map[int]int64
	N      int64
}

// NewLogHistogram returns a log-binned histogram with the given base
// (use 2 for size classes, 10 for decades).
func NewLogHistogram(base float64) *LogHistogram {
	return &LogHistogram{Base: base, Counts: make(map[int]int64)}
}

// Add records one observation; non-positive values are ignored.
func (h *LogHistogram) Add(x float64) {
	if x <= 0 {
		return
	}
	h.N++
	h.Counts[int(math.Floor(math.Log(x)/math.Log(h.Base)))]++
}

// Bins returns the occupied bins in ascending order.
func (h *LogHistogram) Bins() []int {
	bins := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		bins = append(bins, b)
	}
	sort.Ints(bins)
	return bins
}

// RankCount is one (rank, count) point of a rank-frequency plot.
type RankCount struct {
	Rank  int
	Count int64
}

// RankFrequency sorts counts descending and returns (rank, count) pairs,
// the form of Figs. 1 and 2.
func RankFrequency(counts map[string]int64) []RankCount {
	vals := make([]int64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	out := make([]RankCount, len(vals))
	for i, c := range vals {
		out[i] = RankCount{Rank: i + 1, Count: c}
	}
	return out
}

// ZipfFit is a least-squares fit of log(count) = intercept - slope*log(rank).
type ZipfFit struct {
	Slope     float64 // the Zipf exponent estimate (positive)
	Intercept float64
	R2        float64
	N         int
}

// FitZipf fits a Zipf exponent to a rank-frequency sequence by linear
// regression in log-log space. Zero counts are skipped.
func FitZipf(rf []RankCount) ZipfFit {
	var xs, ys []float64
	for _, p := range rf {
		if p.Count <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.Rank)))
		ys = append(ys, math.Log(float64(p.Count)))
	}
	fit := ZipfFit{N: len(xs)}
	if len(xs) < 2 {
		return fit
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return fit
	}
	b := (n*sxy - sx*sy) / denom // slope in log-log space (negative)
	a := (sy - b*sx) / n
	fit.Slope = -b
	fit.Intercept = a
	ssTot := syy - sy*sy/n
	if ssTot > 0 {
		ssRes := 0.0
		for i := range xs {
			d := ys[i] - (a + b*xs[i])
			ssRes += d * d
		}
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit
}

// ScatterPoint is one (x, y) observation (Fig. 14: size vs
// inter-reference time).
type ScatterPoint struct {
	X, Y float64
}

// CenterOfMass returns the mean point of a scatter in log space, the
// quantity the paper reads off Fig. 14 ("the center of mass lies in a
// region with relatively small size but large interreference time").
// Non-positive coordinates are skipped.
func CenterOfMass(pts []ScatterPoint) (x, y float64) {
	var sx, sy float64
	n := 0
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		sx += math.Log(p.X)
		sy += math.Log(p.Y)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(sx / float64(n)), math.Exp(sy / float64(n))
}
