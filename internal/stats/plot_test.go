package stats

import (
	"strings"
	"testing"
)

func TestPlotEmpty(t *testing.T) {
	p := NewPlot(40, 10)
	if out := p.Render(); !strings.Contains(out, "no series") {
		t.Fatalf("empty plot: %q", out)
	}
	p.Add("x", '*', nil)
	if out := p.Render(); !strings.Contains(out, "empty series") {
		t.Fatalf("empty-series plot: %q", out)
	}
}

func TestPlotRendersPoints(t *testing.T) {
	p := NewPlot(40, 10)
	p.YMin, p.YMax = 0, 100
	p.Add("rising", '*', []DayPoint{{Day: 0, Value: 0}, {Day: 50, Value: 50}, {Day: 100, Value: 100}})
	out := p.Render()
	lines := strings.Split(out, "\n")
	// The top row must contain the 100-value point at the right edge,
	// the bottom data row the 0-value point at the left edge.
	var topRow, bottomRow string
	for _, l := range lines {
		if strings.Contains(l, "|") && strings.Contains(l, "*") {
			if topRow == "" {
				topRow = l
			}
			bottomRow = l
		}
	}
	if topRow == "" {
		t.Fatalf("no data rows in:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(topRow, " "), "*") {
		t.Errorf("top point not at right edge: %q", topRow)
	}
	if i := strings.Index(bottomRow, "*"); i != strings.Index(bottomRow, "|")+1 {
		t.Errorf("bottom point not at left edge: %q", bottomRow)
	}
	if !strings.Contains(out, "*=rising") {
		t.Error("legend missing")
	}
}

func TestPlotClampsOutOfRange(t *testing.T) {
	p := NewPlot(30, 8)
	p.YMin, p.YMax = 0, 1
	p.Add("wild", 'x', []DayPoint{{Day: 0, Value: -5}, {Day: 1, Value: 7}})
	out := p.Render()
	if !strings.Contains(out, "x") {
		t.Fatalf("clamped points vanished:\n%s", out)
	}
}

func TestPlotAutoScale(t *testing.T) {
	p := NewPlot(30, 8)
	p.Add("flat", '*', []DayPoint{{Day: 0, Value: 5}, {Day: 9, Value: 5}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestPlotPercentSeries(t *testing.T) {
	out := PlotPercentSeries("test figure", map[string][]DayPoint{
		"HR":  {{Day: 6, Value: 0.5}, {Day: 10, Value: 0.6}},
		"WHR": {{Day: 6, Value: 0.3}, {Day: 10, Value: 0.4}},
	})
	for _, want := range []string{"test figure", "HR", "WHR", "100.0", "0.0", "days since trace start"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Deterministic output across runs (map ordering must not leak).
	again := PlotPercentSeries("test figure", map[string][]DayPoint{
		"WHR": {{Day: 6, Value: 0.3}, {Day: 10, Value: 0.4}},
		"HR":  {{Day: 6, Value: 0.5}, {Day: 10, Value: 0.6}},
	})
	if out != again {
		t.Error("plot output depends on map iteration order")
	}
}
