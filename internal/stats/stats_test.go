package stats

import (
	"math"
	"strings"
	"testing"

	"webcache/internal/rng"
)

func TestDailySeriesBasics(t *testing.T) {
	var s DailySeries
	for d := 0; d < 10; d++ {
		s.Add(d, float64(d))
	}
	raw := s.Raw()
	if len(raw) != 10 {
		t.Fatalf("raw length %d", len(raw))
	}
	ma := s.MovingAverage()
	// First point at recorded day index 6: mean of 0..6 = 3.
	if len(ma) != 4 {
		t.Fatalf("MA length %d, want 4", len(ma))
	}
	if ma[0].Day != 6 || ma[0].Value != 3 {
		t.Fatalf("MA[0] = %+v, want day 6 value 3", ma[0])
	}
	if ma[3].Day != 9 || ma[3].Value != 6 {
		t.Fatalf("MA[3] = %+v, want day 9 value 6", ma[3])
	}
}

// TestMovingAverageRecordedDaysOnly mirrors the paper's classroom
// handling: the window spans recorded days, skipping silent ones.
func TestMovingAverageRecordedDaysOnly(t *testing.T) {
	var s DailySeries
	days := []int{0, 1, 2, 3, 7, 8, 9, 14} // gaps at weekends
	for i, d := range days {
		s.Add(d, float64(i))
	}
	ma := s.MovingAverage()
	if len(ma) != 2 {
		t.Fatalf("MA length %d, want 2", len(ma))
	}
	// First window: recorded values 0..6 -> mean 3, at day 9.
	if ma[0].Day != 9 || ma[0].Value != 3 {
		t.Fatalf("MA[0] = %+v", ma[0])
	}
	if ma[1].Day != 14 || ma[1].Value != 4 {
		t.Fatalf("MA[1] = %+v", ma[1])
	}
}

func TestDailySeriesOverwriteSameDay(t *testing.T) {
	var s DailySeries
	s.Add(3, 1)
	s.Add(3, 9)
	if got := s.Raw(); len(got) != 1 || got[0].Value != 9 {
		t.Fatalf("same-day add: %+v", got)
	}
}

func TestDailySeriesPanicsOnRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	var s DailySeries
	s.Add(5, 1)
	s.Add(4, 1)
}

func TestMean(t *testing.T) {
	var s DailySeries
	if s.Mean() != 0 {
		t.Fatal("empty mean")
	}
	s.Add(0, 2)
	s.Add(1, 4)
	if s.Mean() != 3 {
		t.Fatalf("mean %v", s.Mean())
	}
}

func TestRatioTo(t *testing.T) {
	var num, den DailySeries
	for d := 0; d < 20; d++ {
		num.Add(d, 0.4)
		den.Add(d, 0.8)
	}
	r := num.RatioTo(&den)
	if len(r) == 0 {
		t.Fatal("empty ratio series")
	}
	for _, p := range r {
		if math.Abs(p.Value-0.5) > 1e-12 {
			t.Fatalf("ratio at day %d = %v, want 0.5", p.Day, p.Value)
		}
	}
	if m := num.MeanRatioTo(&den); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("mean ratio %v", m)
	}
}

func TestRatioSkipsZeroBase(t *testing.T) {
	var num, den DailySeries
	for d := 0; d < 10; d++ {
		num.Add(d, 1)
		den.Add(d, 0)
	}
	if r := num.RatioTo(&den); len(r) != 0 {
		t.Fatalf("ratio against zero base: %v", r)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary N")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)   // underflow
	h.Add(0)    // bin 0
	h.Add(9.99) // bin 0
	h.Add(95)   // bin 9
	h.Add(100)  // overflow
	h.Add(150)  // overflow
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over %d/%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Fatal("render has no bars")
	}
	if _, err := NewHistogram(5, 5, 1); err == nil {
		t.Fatal("degenerate range accepted")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(2)
	h.Add(1)    // bin 0
	h.Add(3)    // bin 1
	h.Add(1024) // bin 10
	h.Add(0)    // ignored
	h.Add(-2)   // ignored
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 10 {
		t.Fatalf("bins %v", bins)
	}
}

func TestRankFrequency(t *testing.T) {
	rf := RankFrequency(map[string]int64{"a": 5, "b": 100, "c": 1})
	if len(rf) != 3 || rf[0].Count != 100 || rf[2].Count != 1 {
		t.Fatalf("rank frequency %v", rf)
	}
	if rf[0].Rank != 1 || rf[2].Rank != 3 {
		t.Fatalf("ranks %v", rf)
	}
}

// TestFitZipfRecoversSlope draws from a known Zipf law and checks the
// regression recovers the exponent.
func TestFitZipfRecoversSlope(t *testing.T) {
	r := rng.New(4)
	const n, draws = 200, 2_000_000
	s := 0.9
	z, err := rng.NewZipf(r, n, s)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for i := 0; i < draws; i++ {
		k := z.Rank()
		counts[string(rune(k))+string(rune(k>>8))] = counts[string(rune(k))+string(rune(k>>8))] + 1
	}
	fit := FitZipf(RankFrequency(counts))
	if math.Abs(fit.Slope-s) > 0.12 {
		t.Fatalf("fit slope %.3f, want ~%.2f", fit.Slope, s)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("fit R2 %.3f", fit.R2)
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if f := FitZipf(nil); f.N != 0 {
		t.Fatal("nil fit N")
	}
	if f := FitZipf([]RankCount{{Rank: 1, Count: 5}}); f.Slope != 0 {
		t.Fatalf("single-point fit slope %v", f.Slope)
	}
}

func TestCenterOfMass(t *testing.T) {
	pts := []ScatterPoint{{X: 10, Y: 1000}, {X: 1000, Y: 10}, {X: -1, Y: 5}}
	x, y := CenterOfMass(pts)
	if math.Abs(x-100) > 1e-9 || math.Abs(y-100) > 1e-9 {
		t.Fatalf("center (%v, %v), want (100, 100)", x, y)
	}
	if x, y := CenterOfMass(nil); x != 0 || y != 0 {
		t.Fatal("empty center")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") || !strings.Contains(out, "42") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}
