package capture

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"strings"

	"webcache/internal/rng"
	"webcache/internal/trace"
)

// Synthesizer renders Web requests as the Ethernet/IPv4/TCP packet
// exchanges a backbone monitor would capture: TCP handshake, HTTP
// request, segmented response, and connection teardown, one HTTP/1.0
// connection per request. It exists to exercise the §2.1 collection
// pipeline (tcpdump → filter → common log format) end to end.
type Synthesizer struct {
	// MSS bounds TCP payload per segment.
	MSS int
	// SnapBody caps the response body bytes actually emitted per
	// transaction; the real monitor captured packet prefixes, and the
	// filter recovers the full size from Content-Length. Zero emits
	// whole bodies.
	SnapBody int64
	// Shuffle reorders data segments within each transaction and
	// duplicates some, exercising the reassembler. Zero disables.
	Shuffle float64
	// Seed drives segment shuffling and port assignment.
	Seed uint64

	rnd      *rng.Rand
	nextPort uint16
}

// NewSynthesizer returns a synthesizer with sensible defaults
// (MSS 1460, bodies capped at 8 KiB, no shuffling).
func NewSynthesizer(seed uint64) *Synthesizer {
	return &Synthesizer{MSS: 1460, SnapBody: 8192, Seed: seed}
}

// WriteTrace renders every request of tr into w.
func (s *Synthesizer) WriteTrace(tr *trace.Trace, w *Writer) error {
	if s.rnd == nil {
		s.rnd = rng.New(s.Seed)
		s.nextPort = 1024
	}
	for i := range tr.Requests {
		if err := s.WriteRequest(&tr.Requests[i], w); err != nil {
			return fmt.Errorf("capture: synthesizing request %d: %w", i, err)
		}
	}
	return nil
}

// WriteRequest renders one request's connection into w.
func (s *Synthesizer) WriteRequest(req *trace.Request, w *Writer) error {
	if s.rnd == nil {
		s.rnd = rng.New(s.Seed)
		s.nextPort = 1024
	}
	clientIP := addrFor(req.Client, 10)
	serverIP := addrFor(hostOf(req.URL), 172)
	s.nextPort++
	if s.nextPort < 1024 {
		s.nextPort = 1024
	}
	conn := &connSynth{
		s: s, w: w,
		client: clientIP, server: serverIP,
		clientPort: s.nextPort, serverPort: 80,
		timeSec: req.Time,
	}

	reqLine := fmt.Sprintf("GET %s HTTP/1.0\r\nHost: %s\r\nUser-Agent: Mosaic/2.6\r\n\r\n", req.URL, hostOf(req.URL))
	respHdr := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Length: %d\r\nContent-Type: %s\r\n",
		req.Status, statusText(req.Status), req.Size, contentType(req.Type))
	if req.LastModified != 0 {
		respHdr += fmt.Sprintf("Last-Modified: %s\r\n", trace.FormatCLFTime(req.LastModified))
	}
	respHdr += "\r\n"

	body := req.Size
	if req.Status != 200 {
		body = 0
	}
	if s.SnapBody > 0 && body > s.SnapBody {
		body = s.SnapBody
	}
	return conn.exchange([]byte(reqLine), []byte(respHdr), body)
}

// connSynth emits the packets of one connection.
type connSynth struct {
	s          *Synthesizer
	w          *Writer
	client     netip.Addr
	server     netip.Addr
	clientPort uint16
	serverPort uint16
	timeSec    int64
	usec       int32
	ipID       uint16
	cliSeq     uint32
	srvSeq     uint32
}

func (c *connSynth) exchange(request, respHdr []byte, bodyLen int64) error {
	c.cliSeq = 1000
	c.srvSeq = 5000

	// Handshake.
	if err := c.emit(true, FlagSYN, nil); err != nil {
		return err
	}
	c.cliSeq++
	if err := c.emit(false, FlagSYN|FlagACK, nil); err != nil {
		return err
	}
	c.srvSeq++
	if err := c.emit(true, FlagACK, nil); err != nil {
		return err
	}

	// Request (client to server), segmented.
	if err := c.sendData(true, request); err != nil {
		return err
	}

	// Response: headers then body pattern, segmented, optionally
	// shuffled and duplicated to exercise reassembly.
	resp := make([]byte, 0, len(respHdr)+int(bodyLen))
	resp = append(resp, respHdr...)
	for i := int64(0); i < bodyLen; i++ {
		resp = append(resp, byte('a'+i%26))
	}
	if err := c.sendData(false, resp); err != nil {
		return err
	}

	// Teardown.
	if err := c.emit(false, FlagFIN|FlagACK, nil); err != nil {
		return err
	}
	c.srvSeq++
	if err := c.emit(true, FlagFIN|FlagACK, nil); err != nil {
		return err
	}
	c.cliSeq++
	return c.emit(false, FlagACK, nil)
}

// sendData segments payload and emits it, shuffling if configured.
func (c *connSynth) sendData(fromClient bool, payload []byte) error {
	mss := c.s.MSS
	if mss < 64 {
		mss = 64
	}
	type seg struct {
		seq  uint32
		data []byte
	}
	seq := c.srvSeq
	if fromClient {
		seq = c.cliSeq
	}
	var segs []seg
	for off := 0; off < len(payload); off += mss {
		end := off + mss
		if end > len(payload) {
			end = len(payload)
		}
		segs = append(segs, seg{seq: seq + uint32(off), data: payload[off:end]})
	}
	if fromClient {
		c.cliSeq += uint32(len(payload))
	} else {
		c.srvSeq += uint32(len(payload))
	}
	if p := c.s.Shuffle; p > 0 && len(segs) > 1 {
		// Duplicate a few segments, then shuffle.
		n := len(segs)
		for i := 0; i < n; i++ {
			if c.s.rnd.Float64() < p/2 {
				segs = append(segs, segs[i])
			}
		}
		c.s.rnd.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	}
	for _, sg := range segs {
		if err := c.emitSeq(fromClient, FlagACK|FlagPSH, sg.seq, sg.data); err != nil {
			return err
		}
	}
	return nil
}

// emit sends a packet with the current direction sequence number.
func (c *connSynth) emit(fromClient bool, flags uint8, payload []byte) error {
	seq := c.srvSeq
	if fromClient {
		seq = c.cliSeq
	}
	return c.emitSeq(fromClient, flags, seq, payload)
}

func (c *connSynth) emitSeq(fromClient bool, flags uint8, seq uint32, payload []byte) error {
	src, dst := c.server, c.client
	sport, dport := c.serverPort, c.clientPort
	if fromClient {
		src, dst = c.client, c.server
		sport, dport = c.clientPort, c.serverPort
	}
	c.ipID++
	c.usec += 40 + int32(c.s.rnd.Intn(200))
	if c.usec >= 1_000_000 {
		c.usec -= 1_000_000
		c.timeSec++
	}

	tcp := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Flags: flags, Window: 8192}
	eth := Ethernet{EtherType: EtherTypeIPv4}
	eth.Src[5], eth.Dst[5] = 1, 2
	ip := IPv4{TTL: 62, Protocol: ProtocolTCP, Src: src, Dst: dst, ID: c.ipID}

	buf := make([]byte, 0, 14+20+20+len(payload))
	buf = eth.AppendTo(buf)
	buf = ip.AppendTo(buf, 20+len(payload))
	buf = tcp.AppendTo(buf)
	buf = append(buf, payload...)
	return c.w.WritePacket(PacketRecord{TimeSec: c.timeSec, TimeUsec: c.usec, Data: buf})
}

// addrFor derives a stable IPv4 address from a name within the given /8.
func addrFor(name string, firstOctet byte) netip.Addr {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	return netip.AddrFrom4([4]byte{firstOctet, byte(v >> 16), byte(v >> 8), byte(v | 1)})
}

// hostOf extracts the host from an absolute URL.
func hostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		return "unknown.host"
	}
	return s
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

func contentType(t trace.DocType) string {
	switch t {
	case trace.Graphics:
		return "image/gif"
	case trace.Text:
		return "text/html"
	case trace.Audio:
		return "audio/basic"
	case trace.Video:
		return "video/mpeg"
	default:
		return "application/octet-stream"
	}
}
