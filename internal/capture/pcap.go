// Package capture implements the paper's §2.1 packet-collection
// substrate: a libpcap-format file reader and writer, Ethernet/IPv4/TCP
// frame decoding, and a synthesizer that renders a Web request trace as
// the packet stream a tcpdump monitor on the department backbone would
// have seen. The decoding API follows the layered style of gopacket
// (typed layers, explicit decode errors, no global state) using only the
// standard library.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Pcap file constants (classic pcap, not pcapng).
const (
	pcapMagic        = 0xa1b2c3d4 // microsecond timestamps, our byte order
	pcapMagicSwapped = 0xd4c3b2a1
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	// LinkTypeEthernet is the only link type this package emits or
	// decodes.
	LinkTypeEthernet = 1
	maxSnapLen       = 1 << 18
)

// PacketRecord is one captured packet: its timestamp and raw bytes
// starting at the Ethernet header.
type PacketRecord struct {
	TimeSec  int64 // Unix seconds
	TimeUsec int32
	Data     []byte
}

// Writer writes a pcap file.
type Writer struct {
	w       io.Writer
	snapLen uint32
	started bool
}

// NewWriter returns a pcap writer with the given snap length (0 means
// capture whole packets up to the format maximum).
func NewWriter(w io.Writer, snapLen uint32) *Writer {
	if snapLen == 0 || snapLen > maxSnapLen {
		snapLen = maxSnapLen
	}
	return &Writer{w: w, snapLen: snapLen}
}

// writeHeader emits the pcap global header.
func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone and sigfigs are zero.
	binary.LittleEndian.PutUint32(hdr[16:], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("capture: writing pcap header: %w", err)
	}
	w.started = true
	return nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(rec PacketRecord) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	data := rec.Data
	capLen := uint32(len(data))
	if capLen > w.snapLen {
		capLen = w.snapLen
		data = data[:capLen]
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(rec.TimeSec))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rec.TimeUsec))
	binary.LittleEndian.PutUint32(hdr[8:], capLen)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(rec.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("capture: writing packet header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("capture: writing packet data: %w", err)
	}
	return nil
}

// Reader reads a pcap file.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	snapLen uint32
	started bool
}

// NewReader returns a pcap reader; the global header is read lazily on
// the first Next call.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

func (r *Reader) readHeader() error {
	var hdr [24]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("capture: reading pcap header: %w", err)
	}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case pcapMagic:
		r.order = binary.LittleEndian
	case pcapMagicSwapped:
		r.order = binary.BigEndian
	default:
		return fmt.Errorf("capture: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := r.order.Uint32(hdr[20:]); lt != LinkTypeEthernet {
		return fmt.Errorf("capture: unsupported link type %d (want Ethernet)", lt)
	}
	r.snapLen = r.order.Uint32(hdr[16:])
	r.started = true
	return nil
}

// Next returns the next packet record, or io.EOF at the end of the file.
func (r *Reader) Next() (PacketRecord, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return PacketRecord{}, err
		}
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return PacketRecord{}, io.EOF
		}
		return PacketRecord{}, fmt.Errorf("capture: reading packet header: %w", err)
	}
	capLen := r.order.Uint32(hdr[8:])
	if capLen > maxSnapLen {
		return PacketRecord{}, fmt.Errorf("capture: packet capture length %d exceeds limit", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return PacketRecord{}, fmt.Errorf("capture: reading %d packet bytes: %w", capLen, err)
	}
	return PacketRecord{
		TimeSec:  int64(r.order.Uint32(hdr[0:])),
		TimeUsec: int32(r.order.Uint32(hdr[4:])),
		Data:     data,
	}, nil
}
