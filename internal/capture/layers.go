package capture

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// This file decodes and encodes the three layers the §2.1 filter needs:
// Ethernet II, IPv4 and TCP. Each layer follows the gopacket idiom of a
// typed struct with DecodeFrom returning the payload it carries.

// EtherTypeIPv4 is the Ethernet II type for IPv4.
const EtherTypeIPv4 = 0x0800

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// DecodeFrom parses the header from data and returns the payload.
func (e *Ethernet) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("capture: ethernet frame too short (%d bytes)", len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[14:], nil
}

// AppendTo appends the encoded header to buf and returns the result.
func (e *Ethernet) AppendTo(buf []byte) []byte {
	buf = append(buf, e.Dst[:]...)
	buf = append(buf, e.Src[:]...)
	return binary.BigEndian.AppendUint16(buf, e.EtherType)
}

// ProtocolTCP is the IPv4 protocol number for TCP.
const ProtocolTCP = 6

// IPv4 is an IPv4 header (options unsupported on encode, skipped on
// decode).
type IPv4 struct {
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	// TotalLen is the datagram length from the header; payload slicing
	// honors it so Ethernet padding is not mistaken for data.
	TotalLen uint16
	ID       uint16
}

// DecodeFrom parses the header from data and returns the IP payload.
func (ip *IPv4) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("capture: IPv4 header too short (%d bytes)", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("capture: IP version %d (want 4)", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, fmt.Errorf("capture: bad IPv4 header length %d", ihl)
	}
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	var src, dst [4]byte
	copy(src[:], data[12:16])
	copy(dst[:], data[16:20])
	ip.Src = netip.AddrFrom4(src)
	ip.Dst = netip.AddrFrom4(dst)
	end := int(ip.TotalLen)
	if end > len(data) || end < ihl {
		end = len(data)
	}
	return data[ihl:end], nil
}

// AppendTo appends the encoded header (20 bytes, checksum filled) with
// the given payload length recorded, and returns the result.
func (ip *IPv4) AppendTo(buf []byte, payloadLen int) []byte {
	start := len(buf)
	total := 20 + payloadLen
	buf = append(buf,
		0x45, 0, // version+IHL, DSCP
		byte(total>>8), byte(total),
		byte(ip.ID>>8), byte(ip.ID),
		0x40, 0, // flags: don't fragment
		ip.TTL, ip.Protocol,
		0, 0, // checksum placeholder
	)
	src := addr4(ip.Src)
	dst := addr4(ip.Dst)
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	sum := ipChecksum(buf[start : start+20])
	buf[start+10] = byte(sum >> 8)
	buf[start+11] = byte(sum)
	return buf
}

// addr4 returns the address's 4-byte form, mapping invalid or non-IPv4
// addresses to 0.0.0.0 so encoding never panics on zero values.
func addr4(a netip.Addr) [4]byte {
	if !a.IsValid() || !a.Is4() {
		return [4]byte{}
	}
	return a.As4()
}

// ipChecksum computes the RFC 1071 ones-complement checksum of hdr.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// TCP header flags.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// TCP is a TCP header (options skipped on decode, none on encode).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// DecodeFrom parses the header from data and returns the TCP payload.
func (t *TCP) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("capture: TCP header too short (%d bytes)", len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	off := int(data[12]>>4) * 4
	if off < 20 || len(data) < off {
		return nil, fmt.Errorf("capture: bad TCP data offset %d", off)
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	return data[off:], nil
}

// AppendTo appends the encoded 20-byte header (checksum left zero: the
// synthetic captures are not fed to real stacks) and returns the result.
func (t *TCP) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	buf = append(buf, 5<<4, t.Flags)
	buf = binary.BigEndian.AppendUint16(buf, t.Window)
	buf = append(buf, 0, 0, 0, 0) // checksum, urgent pointer
	return buf
}

// Packet is a fully decoded Ethernet/IPv4/TCP packet.
type Packet struct {
	TimeSec  int64
	TimeUsec int32
	Eth      Ethernet
	IP       IPv4
	TCP      TCP
	Payload  []byte
}

// Decode parses rec as Ethernet/IPv4/TCP. Non-IPv4 or non-TCP packets
// return ErrNotTCP so callers can skip them cheaply.
func Decode(rec PacketRecord) (*Packet, error) {
	p := &Packet{TimeSec: rec.TimeSec, TimeUsec: rec.TimeUsec}
	rest, err := p.Eth.DecodeFrom(rec.Data)
	if err != nil {
		return nil, err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		return nil, ErrNotTCP
	}
	rest, err = p.IP.DecodeFrom(rest)
	if err != nil {
		return nil, err
	}
	if p.IP.Protocol != ProtocolTCP {
		return nil, ErrNotTCP
	}
	p.Payload, err = p.TCP.DecodeFrom(rest)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// ErrNotTCP marks packets that are not IPv4/TCP; the §2.1 filter skips
// them (tcpdump filtered to TCP port 80 already, but robustness first).
var ErrNotTCP = fmt.Errorf("capture: not an IPv4/TCP packet")
