package capture

import (
	"bytes"
	"io"
	"testing"

	"webcache/internal/rng"
)

// TestDecodeNeverPanics feeds random byte soup to the packet decoder;
// every input must produce a value or an error, never a panic or an
// out-of-bounds access.
func TestDecodeNeverPanics(t *testing.T) {
	r := rng.New(555)
	for trial := 0; trial < 20000; trial++ {
		n := r.Intn(120)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		// Bias some packets toward being plausibly IPv4/TCP so the
		// deeper decode paths are exercised too.
		if n >= 34 && trial%3 == 0 {
			data[12], data[13] = 0x08, 0x00 // EtherType IPv4
			data[14] = 0x45                 // version 4, IHL 5
			data[23] = 6                    // protocol TCP
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Decode panicked on %x: %v", trial, data, p)
				}
			}()
			Decode(PacketRecord{TimeSec: 1, Data: data})
		}()
	}
}

// TestReaderNeverPanics feeds random streams to the pcap reader.
func TestReaderNeverPanics(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		if trial%2 == 0 && n >= 4 {
			// Valid magic, garbage after.
			data[0], data[1], data[2], data[3] = 0xd4, 0xc3, 0xb2, 0xa1
		}
		rd := NewReader(bytes.NewReader(data))
		for {
			_, err := rd.Next()
			if err != nil {
				break
			}
		}
	}
}

// TestReaderTruncatedPacket: a header announcing more bytes than the
// stream holds must error cleanly.
func TestReaderTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePacket(PacketRecord{TimeSec: 1, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rd := NewReader(bytes.NewReader(full[:len(full)-40]))
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated packet returned %v", err)
	}
}

// TestReaderRejectsHugeCapLen guards the allocation path.
func TestReaderRejectsHugeCapLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePacket(PacketRecord{TimeSec: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Inflate the caplen field of the first packet header (offset 24+8).
	raw[32], raw[33], raw[34], raw[35] = 0xff, 0xff, 0xff, 0x7f
	if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Fatal("absurd capture length accepted")
	}
}
