package capture

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"webcache/internal/rng"
	"webcache/internal/trace"
)

func TestPcapRoundTrip(t *testing.T) {
	r := rng.New(1)
	var recs []PacketRecord
	for i := 0; i < 200; i++ {
		data := make([]byte, 14+r.Intn(200))
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		recs = append(recs, PacketRecord{
			TimeSec:  800000000 + int64(i),
			TimeUsec: int32(r.Intn(1000000)),
			Data:     data,
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	for _, rec := range recs {
		if err := w.WritePacket(rec); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	for i, want := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.TimeSec != want.TimeSec || got.TimeUsec != want.TimeUsec || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("packet %d differs", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestPcapSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 64)
	big := make([]byte, 500)
	if err := w.WritePacket(PacketRecord{TimeSec: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 {
		t.Fatalf("captured %d bytes, want 64", len(rec.Data))
	}
}

func TestPcapBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 24))
	if _, err := NewReader(buf).Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeIPv4}
	e.Src = [6]byte{1, 2, 3, 4, 5, 6}
	e.Dst = [6]byte{9, 8, 7, 6, 5, 4}
	raw := e.AppendTo(nil)
	raw = append(raw, 0xde, 0xad)
	var got Ethernet
	payload, err := got.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("ethernet %+v != %+v", got, e)
	}
	if len(payload) != 2 || payload[0] != 0xde {
		t.Fatalf("payload %x", payload)
	}
	if _, err := got.DecodeFrom(raw[:10]); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TTL: 63, Protocol: ProtocolTCP,
		Src: netip.AddrFrom4([4]byte{10, 1, 2, 3}),
		Dst: netip.AddrFrom4([4]byte{172, 16, 0, 9}),
		ID:  4242,
	}
	payload := []byte("hello ipv4")
	raw := ip.AppendTo(nil, len(payload))
	raw = append(raw, payload...)
	var got IPv4
	gotPayload, err := got.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != ip.TTL || got.Protocol != ip.Protocol || got.ID != ip.ID {
		t.Fatalf("ipv4 %+v != %+v", got, ip)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload %q", gotPayload)
	}
	// The checksum must validate: re-summing the header yields zero.
	var sum uint32
	for i := 0; i+1 < 20; i += 2 {
		sum += uint32(raw[i])<<8 | uint32(raw[i+1])
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("header checksum does not validate (folded sum %#x)", sum)
	}
}

func TestIPv4HonorsTotalLen(t *testing.T) {
	ip := IPv4{TTL: 1, Protocol: ProtocolTCP,
		Src: netip.AddrFrom4([4]byte{1, 1, 1, 1}), Dst: netip.AddrFrom4([4]byte{2, 2, 2, 2})}
	raw := ip.AppendTo(nil, 4)
	raw = append(raw, 'a', 'b', 'c', 'd')
	raw = append(raw, 0, 0, 0, 0, 0, 0) // Ethernet padding
	var got IPv4
	payload, err := got.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abcd" {
		t.Fatalf("payload %q includes padding", payload)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{SrcPort: 3456, DstPort: 80, Seq: 1e9, Ack: 77, Flags: FlagACK | FlagPSH, Window: 4096}
	raw := tcp.AppendTo(nil)
	raw = append(raw, []byte("GET / HTTP/1.0\r\n")...)
	var got TCP
	payload, err := got.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != tcp.SrcPort || got.DstPort != tcp.DstPort || got.Seq != tcp.Seq ||
		got.Ack != tcp.Ack || got.Flags != tcp.Flags || got.Window != tcp.Window {
		t.Fatalf("tcp %+v != %+v", got, tcp)
	}
	if string(payload[:3]) != "GET" {
		t.Fatalf("payload %q", payload)
	}
}

func TestDecodeFullPacket(t *testing.T) {
	eth := Ethernet{EtherType: EtherTypeIPv4}
	ip := IPv4{TTL: 60, Protocol: ProtocolTCP,
		Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2})}
	tcp := TCP{SrcPort: 1024, DstPort: 80, Seq: 1, Flags: FlagSYN}
	payload := []byte("x")
	buf := eth.AppendTo(nil)
	buf = ip.AppendTo(buf, 20+len(payload))
	buf = tcp.AppendTo(buf)
	buf = append(buf, payload...)

	pkt, err := Decode(PacketRecord{TimeSec: 5, Data: buf})
	if err != nil {
		t.Fatal(err)
	}
	if pkt.TCP.DstPort != 80 || pkt.IP.Src.String() != "10.0.0.1" || string(pkt.Payload) != "x" {
		t.Fatalf("decoded %+v payload %q", pkt, pkt.Payload)
	}
}

func TestDecodeNonIPv4(t *testing.T) {
	eth := Ethernet{EtherType: 0x0806} // ARP
	buf := eth.AppendTo(nil)
	buf = append(buf, make([]byte, 28)...)
	if _, err := Decode(PacketRecord{Data: buf}); err != ErrNotTCP {
		t.Fatalf("err = %v, want ErrNotTCP", err)
	}
}

func TestSynthesizerDeterminism(t *testing.T) {
	tr := &trace.Trace{Start: 811296000, Requests: []trace.Request{
		{Time: 811296010, Client: "c1", URL: "http://s1.vt.edu/a.gif", Status: 200, Size: 5000, Type: trace.Graphics},
		{Time: 811296020, Client: "c2", URL: "http://s2.vt.edu/b.html", Status: 200, Size: 123, Type: trace.Text},
	}}
	render := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		if err := NewSynthesizer(9).WriteTrace(tr, w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("synthesizer is not deterministic")
	}
}

func TestSynthesizerSnapBody(t *testing.T) {
	tr := &trace.Trace{Start: 0, Requests: []trace.Request{
		{Time: 10, Client: "c", URL: "http://s.x/big.dat", Status: 200, Size: 1 << 20, Type: trace.Unknown},
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	syn := NewSynthesizer(1)
	syn.SnapBody = 4096
	if err := syn.WriteTrace(tr, w); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 64*1024 {
		t.Fatalf("capture is %d bytes; SnapBody did not cap the body", buf.Len())
	}
}

func TestAddrForStable(t *testing.T) {
	a1 := addrFor("client1.vt.edu", 10)
	a2 := addrFor("client1.vt.edu", 10)
	b := addrFor("client2.vt.edu", 10)
	if a1 != a2 {
		t.Fatal("addrFor not stable")
	}
	if a1 == b {
		t.Fatal("distinct names mapped to the same address")
	}
	if a1.As4()[0] != 10 {
		t.Fatalf("wrong /8: %v", a1)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.b.c/x/y.gif": "a.b.c",
		"http://host":          "host",
		"/no/host.gif":         "unknown.host",
	}
	for url, want := range cases {
		if got := hostOf(url); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestSynthesizerNon200NoBody(t *testing.T) {
	// Non-200 responses carry no body; the capture stays tiny and the
	// status text covers the error-code table.
	tr := &trace.Trace{Start: 0, Requests: []trace.Request{
		{Time: 10, Client: "c", URL: "http://s.x/gone.html", Status: 404, Size: 999999, Type: trace.Text},
		{Time: 20, Client: "c", URL: "http://s.x/moved.html", Status: 302, Size: 10, Type: trace.Text},
		{Time: 30, Client: "c", URL: "http://s.x/cold.html", Status: 304, Size: 0, Type: trace.Text},
		{Time: 40, Client: "c", URL: "http://s.x/err.html", Status: 500, Size: 0, Type: trace.Text},
		{Time: 50, Client: "c", URL: "http://s.x/deny.html", Status: 403, Size: 0, Type: trace.Text},
		{Time: 60, Client: "c", URL: "http://s.x/odd.html", Status: 299, Size: 0, Type: trace.Text},
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := NewSynthesizer(1).WriteTrace(tr, w); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 8192 {
		t.Fatalf("non-200 capture unexpectedly large: %d bytes", buf.Len())
	}
}

func TestContentTypes(t *testing.T) {
	want := map[trace.DocType]string{
		trace.Graphics: "image/gif",
		trace.Text:     "text/html",
		trace.Audio:    "audio/basic",
		trace.Video:    "video/mpeg",
		trace.Unknown:  "application/octet-stream",
	}
	for dt, ct := range want {
		if got := contentType(dt); got != ct {
			t.Errorf("contentType(%v) = %q, want %q", dt, got, ct)
		}
	}
}

func TestStatusTexts(t *testing.T) {
	for code, want := range map[int]string{
		200: "OK", 302: "Found", 304: "Not Modified", 403: "Forbidden",
		404: "Not Found", 500: "Internal Server Error", 999: "Unknown",
	} {
		if got := statusText(code); got != want {
			t.Errorf("statusText(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestSynthesizerTinyMSS(t *testing.T) {
	// MSS below the floor is clamped; the request still reconstructs
	// into many small segments without error.
	tr := &trace.Trace{Start: 0, Requests: []trace.Request{
		{Time: 10, Client: "c", URL: "http://s.x/a.html", Status: 200, Size: 5000, Type: trace.Text},
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	syn := NewSynthesizer(1)
	syn.MSS = 1 // clamped to 64
	syn.SnapBody = 0
	if err := syn.WriteTrace(tr, w); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	n := 0
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		n++
	}
	if n < 80 {
		t.Fatalf("only %d packets with a 64-byte MSS and 5000-byte body", n)
	}
}
