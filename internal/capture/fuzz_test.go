package capture

import "testing"

// FuzzDecode: arbitrary frame bytes must decode or error, never panic.
func FuzzDecode(f *testing.F) {
	eth := Ethernet{EtherType: EtherTypeIPv4}
	buf := eth.AppendTo(nil)
	ip := IPv4{TTL: 1, Protocol: ProtocolTCP}
	buf = ip.AppendTo(buf, 20)
	buf = (&TCP{SrcPort: 1, DstPort: 80}).AppendTo(buf)
	f.Add(buf)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(PacketRecord{TimeSec: 1, Data: data})
		if err == nil && pkt == nil {
			t.Fatal("nil packet without error")
		}
	})
}
