package core

import "webcache/internal/trace"

// TwoLevel models the paper's Experiment 3 hierarchy: a finite first
// level cache backed by a second level cache. A request missing L1 is
// forwarded to L2; an L2 hit returns a copy to L1, an L2 miss stores the
// document in both levels, so a document evicted from L1 is always still
// present in L2 (the paper's "primary cache sending replaced documents
// to a larger second level cache" arrangement).
type TwoLevel struct {
	L1 *Cache
	L2 *Cache

	requests int64
	bytes    int64
}

// NewTwoLevel builds a hierarchy from the two configurations. In the
// paper's Experiment 3, l1 has 10% of MaxNeeded with the SIZE policy and
// l2 is infinite.
func NewTwoLevel(l1, l2 Config) *TwoLevel {
	return &TwoLevel{L1: New(l1), L2: New(l2)}
}

// Access processes one request through the hierarchy and reports where
// it hit: (true, false) for an L1 hit, (false, true) for an L2 hit,
// (false, false) for a miss that went to the origin server.
func (t *TwoLevel) Access(req *trace.Request) (l1Hit, l2Hit bool) {
	t.requests++
	t.bytes += req.Size
	if t.L1.Access(req) {
		return true, false
	}
	// L1 missed and (re)inserted its copy; consult L2. L2.Access both
	// answers the consultation and keeps L2's copy current, inserting on
	// an L2 miss exactly as the paper describes.
	return false, t.L2.Access(req)
}

// L2HitRate returns the second level cache's hit rate measured over all
// client requests (the quantity plotted in Figs. 16-18), not just over
// the requests forwarded to L2.
func (t *TwoLevel) L2HitRate() float64 {
	if t.requests == 0 {
		return 0
	}
	return float64(t.L2.Stats().Hits) / float64(t.requests)
}

// L2WeightedHitRate returns the second level cache's byte hit rate over
// all client-requested bytes.
func (t *TwoLevel) L2WeightedHitRate() float64 {
	if t.bytes == 0 {
		return 0
	}
	return float64(t.L2.Stats().BytesHit) / float64(t.bytes)
}

// Requests returns the number of requests processed by the hierarchy.
func (t *TwoLevel) Requests() int64 { return t.requests }

// BytesRequested returns the bytes requested through the hierarchy.
func (t *TwoLevel) BytesRequested() int64 { return t.bytes }
