package core

import (
	"fmt"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/trace"
)

// TestAccessHitAllocs pins the steady-state allocation budget of the
// replay hot path: a cache hit — map lookup, metadata update, heap
// re-sift — must not allocate at all.
func TestAccessHitAllocs(t *testing.T) {
	pol := policy.NewSorted([]policy.Key{policy.KeySize, policy.KeyATime}, 0)
	c := New(Config{Capacity: 1 << 30, Policy: pol, Seed: 1})
	reqs := make([]trace.Request, 64)
	for i := range reqs {
		reqs[i] = trace.Request{
			Time: int64(i), URL: fmt.Sprintf("http://s/doc%02d", i),
			Size: int64(100 + i), Type: trace.Text,
		}
		c.Access(&reqs[i])
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		r := &reqs[i%len(reqs)]
		r.Time++
		if !c.Access(r) {
			t.Fatal("expected a hit")
		}
		i++
	})
	if avg != 0 {
		t.Errorf("Access hit allocates %.1f objects per request, want 0", avg)
	}
}

// TestEvictCycleAllocs checks that a full cache cycling through a fixed
// document population — every access a miss that evicts and re-inserts —
// recycles entries instead of allocating, once the pool is warm.
func TestEvictCycleAllocs(t *testing.T) {
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	c := New(Config{Capacity: 1000, Policy: pol, Seed: 2, SizeHint: 4})
	reqs := make([]trace.Request, 8)
	for i := range reqs {
		// Each document fills over half the cache, so every insert evicts.
		reqs[i] = trace.Request{
			Time: int64(i), URL: fmt.Sprintf("http://s/big%d", i),
			Size: 600, Type: trace.Text,
		}
		c.Access(&reqs[i])
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		r := &reqs[i%len(reqs)]
		r.Time++
		if c.Access(r) {
			t.Fatal("expected a miss")
		}
		i++
	})
	if avg != 0 {
		t.Errorf("evict/insert cycle allocates %.1f objects per request, want 0", avg)
	}
}

// internedAllocTrace builds a columnar view of nDocs documents of the
// given size, cycled through rounds times, for the interned-mode
// allocation pins.
func internedAllocTrace(nDocs, rounds int, size int64) *trace.Columnar {
	tr := &trace.Trace{Name: "alloc", Start: 0}
	for r := 0; r < rounds; r++ {
		for d := 0; d < nDocs; d++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: int64(r*nDocs + d), URL: fmt.Sprintf("http://s/doc%02d", d),
				Size: size, Type: trace.Text,
			})
		}
	}
	return tr.Columnar()
}

// TestAccessIndexHitAllocs pins the interned hot path: a hit — slice
// index, metadata update, heap re-sift — must not allocate. The entry
// table is pre-sized to the trace's ID count at construction, so the
// steady state touches no allocator at all.
func TestAccessIndexHitAllocs(t *testing.T) {
	col := internedAllocTrace(64, 2, 100)
	pol := policy.NewSorted([]policy.Key{policy.KeySize, policy.KeyATime}, 0)
	c := NewColumnar(Config{Capacity: 1 << 30, Policy: pol, Seed: 1, SizeHint: 64}, col)
	warm := col.Len() / 2
	for i := 0; i < warm; i++ {
		c.AccessIndex(i)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		if !c.AccessIndex(warm + i%warm) {
			t.Fatal("expected a hit")
		}
		i++
	})
	if avg != 0 {
		t.Errorf("interned hit allocates %.1f objects per request, want 0", avg)
	}
}

// TestEvictCycleAllocsInterned checks the interned evict→insert cycle:
// a full cache cycling through a fixed population recycles entries and
// never grows the ID table, so steady state allocates nothing.
func TestEvictCycleAllocsInterned(t *testing.T) {
	col := internedAllocTrace(8, 60, 600)
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	// Capacity holds one 600-byte document: every access evicts+inserts.
	c := NewColumnar(Config{Capacity: 1000, Policy: pol, Seed: 2, SizeHint: 4}, col)
	warm := 8 * 30
	for i := 0; i < warm; i++ {
		c.AccessIndex(i)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		if c.AccessIndex(warm + i%warm) {
			t.Fatal("expected a miss")
		}
		i++
	})
	if avg != 0 {
		t.Errorf("interned evict/insert cycle allocates %.1f objects per request, want 0", avg)
	}
}

// TestRecyclingDisabledWithObserver checks the safety gate: with an
// OnEvict observer set, evicted entries must never be recycled into
// later inserts, since the observer may retain them.
func TestRecyclingDisabledWithObserver(t *testing.T) {
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	var evicted []*policy.Entry
	c := New(Config{Capacity: 1000, Policy: pol, Seed: 3,
		OnEvict: func(e *policy.Entry) { evicted = append(evicted, e) }})
	for i := 0; i < 16; i++ {
		c.Access(&trace.Request{
			Time: int64(i), URL: fmt.Sprintf("http://s/big%d", i),
			Size: 600, Type: trace.Text,
		})
	}
	if len(evicted) == 0 {
		t.Fatal("no evictions observed")
	}
	for i, e := range evicted {
		for _, later := range evicted[i+1:] {
			if e == later {
				t.Fatal("evicted entry recycled while an OnEvict observer is set")
			}
		}
		if got := e.URL; got != fmt.Sprintf("http://s/big%d", i) {
			t.Fatalf("evicted entry %d mutated after observation: URL %q", i, got)
		}
	}
}
