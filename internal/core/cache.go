// Package core implements the paper's trace-driven proxy cache: a
// finite- or infinite-capacity document store whose removals are chosen
// by a pluggable policy (internal/policy), with the exact hit and
// consistency semantics of §1.1 of the paper.
//
// A request is a hit iff the cache holds a copy matching the requested
// URL *and* size; a size mismatch means the origin document changed, so
// the stale copy is invalidated and the request is a miss. Removal is
// on-demand: when a miss must store a document and free space is
// insufficient, victims are removed from the head of the policy's sorted
// order until the document fits (§1.2). A periodic sweep to a comfort
// level (the Pitkow/Recker variant of §1.3) is available as an option.
package core

import (
	"fmt"

	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

// Stats accumulates the simulator's response variables: hit rate,
// weighted (byte) hit rate, and maximum cache size needed, plus
// bookkeeping useful for analysis. Per-type rows support Experiment 4.
type Stats struct {
	Requests       int64
	Hits           int64
	BytesRequested int64
	BytesHit       int64

	Evictions    int64
	EvictedBytes int64
	Inserted     int64
	Bypassed     int64 // documents larger than the whole cache, never stored
	SizeChanges  int64 // cached copies invalidated by a size change

	Used    int64 // bytes currently cached
	MaxUsed int64 // peak bytes cached (MaxNeeded when capacity is infinite)
	Docs    int64 // documents currently cached
	MaxDocs int64 // peak documents cached (the policy heap's deepest point)

	ByType [trace.NumDocTypes]TypeStats
}

// TypeStats is the per-media-type slice of Stats.
type TypeStats struct {
	Requests       int64
	Hits           int64
	BytesRequested int64
	BytesHit       int64
}

// HitRate returns hits/requests (HR), in [0, 1].
func (s *Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// WeightedHitRate returns bytesHit/bytesRequested (WHR), in [0, 1].
func (s *Stats) WeightedHitRate() float64 {
	if s.BytesRequested == 0 {
		return 0
	}
	return float64(s.BytesHit) / float64(s.BytesRequested)
}

// Config configures a Cache.
type Config struct {
	// Capacity is the cache size in bytes; 0 or negative means infinite
	// (Experiment 1).
	Capacity int64
	// Policy selects removal victims. It may be nil for an infinite
	// cache, which never removes.
	Policy policy.Policy
	// Seed derives the per-entry random tiebreak values.
	Seed uint64
	// ExcludeDynamic, when set, never caches dynamically generated
	// documents (CGI paths / query strings). The paper's simulator
	// cached every valid request, so this defaults to off.
	ExcludeDynamic bool
	// LatencyOf, when non-nil, estimates the refetch latency of a URL in
	// seconds; it feeds the KeyLatency extension key.
	LatencyOf func(url string, size int64) float64
	// ExpiresOf, when non-nil, assigns an expiration time (Unix seconds;
	// 0 = never) to a document inserted at time now; it feeds the
	// ExpiredFirst policy wrapper (§5 open problem 4).
	ExpiresOf func(url string, size, now int64) int64
	// OnEvict, when non-nil, observes every evicted entry (used by
	// hierarchy experiments and tests). Setting it disables entry
	// recycling for evictions, since the observer may retain the entry.
	OnEvict func(e *policy.Entry)
	// Hooks observes per-request cache events for the observability
	// layer (internal/obs). Unlike OnEvict, hooks must not retain
	// entries past the call — recycling stays enabled — and unset slots
	// cost exactly one nil check each, preserving the hot path's
	// zero-overhead contract when observability is off.
	Hooks CacheHooks
	// SizeHint estimates how many documents will be resident at once.
	// The cache pre-sizes its URL index and the policy's heap (via
	// policy.Reserver) from it. Purely a performance hint: simulation
	// results are identical for any value, including zero.
	SizeHint int
}

// CacheHooks is the observability layer's view of a cache: one
// nil-checked function slot per event, fired on both the string-indexed
// (Access) and interned (AccessIndex) request paths at exactly the same
// points. The zero value disables every event. Hooks run synchronously
// on the replay goroutine and must be cheap (an atomic add) and must
// not retain the *policy.Entry: entries are recycled into later inserts
// once the hook returns.
type CacheHooks struct {
	// OnHit fires on every §1.1 hit, after the entry's metadata and the
	// policy order have been refreshed.
	OnHit func(e *policy.Entry)
	// OnMiss fires on every miss — including size-change invalidations —
	// with the requested document size and the request time, before any
	// insertion work.
	OnMiss func(size, now int64)
	// OnEvict fires for every policy-chosen victim, after removal, with
	// the eviction time — now-e.ETime is the victim's exact age in
	// cache, the quantity the eviction-age histograms bin.
	OnEvict func(e *policy.Entry, now int64)
	// OnAdd fires after a document is stored and handed to the policy.
	OnAdd func(e *policy.Entry)
}

// Any reports whether at least one hook slot is set.
func (h *CacheHooks) Any() bool {
	return h.OnHit != nil || h.OnMiss != nil || h.OnEvict != nil || h.OnAdd != nil
}

// DisableAllocOpts, when set before caches are constructed, turns off
// the allocation optimizations — entry recycling and capacity
// pre-sizing — so the benchmark harness can measure their
// contribution. Results are identical either way; it is not flipped in
// production paths.
var DisableAllocOpts bool

// Cache is a simulated proxy cache. It indexes resident documents
// either by URL string (New) or, when built over an interned columnar
// trace view (NewColumnar), by dense int32 URL ID — the two modes are
// behaviorally identical; the ID table just removes string hashing
// from the per-request path.
type Cache struct {
	cfg     Config
	entries map[string]*policy.Entry
	rnd     *rng.Rand
	stats   Stats
	now     int64

	// col and byID implement the interned mode: byID is the ID-indexed
	// entry table (nil slot = not cached), sized to col.NumIDs() at
	// construction so steady-state replay never grows it. entries is
	// nil in this mode.
	col  *trace.Columnar
	byID []*policy.Entry

	// nowPol caches the cfg.Policy type assertion so the per-request
	// hot path pays a nil check instead of an interface assertion.
	nowPol nowAware
	// pool recycles detached entries back into inserts; recycle gates
	// whether evicted entries may enter it (false when an OnEvict
	// observer could retain them).
	pool    policy.EntryPool
	recycle bool
}

// nowAware is implemented by policies that want the simulation clock
// (Pitkow/Recker's day test).
type nowAware interface{ SetNow(int64) }

// New returns a cache with the given configuration, indexing documents
// by URL string.
func New(cfg Config) *Cache {
	hint := 1024
	if !DisableAllocOpts && cfg.SizeHint > hint {
		hint = cfg.SizeHint
	}
	c := newCache(cfg)
	c.entries = make(map[string]*policy.Entry, hint)
	return c
}

// newCache builds the index-independent parts of a cache.
func newCache(cfg Config) *Cache {
	c := &Cache{
		cfg: cfg,
		rnd: rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
	c.nowPol, _ = cfg.Policy.(nowAware)
	c.recycle = !DisableAllocOpts && cfg.OnEvict == nil
	if !DisableAllocOpts && cfg.SizeHint > 0 {
		if r, ok := cfg.Policy.(policy.Reserver); ok {
			r.Reserve(cfg.SizeHint)
		}
	}
	return c
}

// Infinite reports whether the cache has unbounded capacity.
func (c *Cache) Infinite() bool { return c.cfg.Capacity <= 0 }

// Capacity returns the configured capacity (0 means infinite).
func (c *Cache) Capacity() int64 {
	if c.cfg.Capacity < 0 {
		return 0
	}
	return c.cfg.Capacity
}

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached documents.
func (c *Cache) Len() int { return int(c.stats.Docs) }

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.stats.Used }

// Contains reports whether the cache holds a copy of url with the given
// size (the §1.1 hit test) without touching any metadata.
func (c *Cache) Contains(url string, size int64) bool {
	if c.byID != nil {
		id, ok := c.col.ID(url)
		if !ok {
			return false
		}
		e := c.byID[id]
		return e != nil && e.Size == size
	}
	e, ok := c.entries[url]
	return ok && e.Size == size
}

// Access processes one validated trace request and reports whether it
// hit. All statistics are updated. On a cache built with NewColumnar,
// use AccessIndex instead — Access panics there, since a request not
// drawn from the interned trace has no ID to store an entry under.
func (c *Cache) Access(req *trace.Request) bool {
	if c.byID != nil {
		panic("core: Access called on an interned cache; use AccessIndex")
	}
	c.now = req.Time
	if c.nowPol != nil {
		c.nowPol.SetNow(req.Time)
	}

	c.stats.Requests++
	c.stats.BytesRequested += req.Size
	ts := &c.stats.ByType[req.Type]
	ts.Requests++
	ts.BytesRequested += req.Size

	if e, ok := c.entries[req.URL]; ok {
		if e.Size == req.Size {
			e.ATime = req.Time
			e.NRef++
			if c.cfg.Policy != nil {
				c.cfg.Policy.Touch(e)
			}
			c.stats.Hits++
			c.stats.BytesHit += req.Size
			ts.Hits++
			ts.BytesHit += req.Size
			if c.cfg.Hooks.OnHit != nil {
				c.cfg.Hooks.OnHit(e)
			}
			return true
		}
		// The document changed on the origin server: the cached copy is
		// inconsistent and must be replaced (§1.1).
		c.remove(e)
		c.stats.SizeChanges++
		if c.recycle {
			c.pool.Put(e)
		}
	}

	if c.cfg.Hooks.OnMiss != nil {
		c.cfg.Hooks.OnMiss(req.Size, req.Time)
	}
	c.insert(req)
	return false
}

// insert stores the document named by req, evicting as needed.
func (c *Cache) insert(req *trace.Request) {
	if c.cfg.ExcludeDynamic && trace.IsDynamic(req.URL) {
		return
	}
	if !c.Infinite() && req.Size > c.cfg.Capacity {
		// The document can never fit; serve it without caching. The
		// paper's traces never trigger this at the studied sizes, but a
		// robust cache must not empty itself trying.
		c.stats.Bypassed++
		return
	}
	if !c.Infinite() {
		for c.stats.Used+req.Size > c.cfg.Capacity {
			v := c.cfg.Policy.Victim(req.Size)
			if v == nil {
				// No removable documents remain; should be impossible
				// given the capacity check above.
				c.stats.Bypassed++
				return
			}
			c.evict(v)
		}
	}
	var e *policy.Entry
	if c.recycle {
		e = c.pool.Get(req.URL, req.Size, req.Type, req.Time, c.rnd.Uint64())
	} else {
		e = policy.NewEntry(req.URL, req.Size, req.Type, req.Time, c.rnd.Uint64())
	}
	if c.cfg.LatencyOf != nil {
		e.Latency = c.cfg.LatencyOf(req.URL, req.Size)
	}
	if c.cfg.ExpiresOf != nil {
		e.Expires = c.cfg.ExpiresOf(req.URL, req.Size, req.Time)
	}
	c.entries[req.URL] = e
	c.stats.Used += e.Size
	c.stats.Docs++
	c.stats.Inserted++
	if c.stats.Used > c.stats.MaxUsed {
		c.stats.MaxUsed = c.stats.Used
	}
	if c.stats.Docs > c.stats.MaxDocs {
		c.stats.MaxDocs = c.stats.Docs
	}
	if c.cfg.Policy != nil {
		c.cfg.Policy.Add(e)
	}
	if c.cfg.Hooks.OnAdd != nil {
		c.cfg.Hooks.OnAdd(e)
	}
}

// evict removes a policy-chosen victim and notifies the observer. When
// no observer can retain the entry it is recycled into the pool, so
// the eviction→insert cycle of a full cache allocates nothing.
func (c *Cache) evict(e *policy.Entry) {
	c.remove(e)
	c.stats.Evictions++
	c.stats.EvictedBytes += e.Size
	if c.cfg.Hooks.OnEvict != nil {
		c.cfg.Hooks.OnEvict(e, c.now)
	}
	if c.cfg.OnEvict != nil {
		c.cfg.OnEvict(e)
	}
	if c.recycle {
		c.pool.Put(e)
	}
}

// remove detaches e from the cache and policy without eviction stats.
func (c *Cache) remove(e *policy.Entry) {
	if c.byID != nil {
		c.byID[e.ID] = nil
	} else {
		delete(c.entries, e.URL)
	}
	c.stats.Used -= e.Size
	c.stats.Docs--
	if c.cfg.Policy != nil {
		c.cfg.Policy.Remove(e)
	}
}

// Sweep removes documents until used space is at most comfort*capacity
// (the Pitkow/Recker periodic removal of §1.3, run e.g. at the end of
// each simulated day). It returns the number of documents removed. Sweep
// on an infinite cache is a no-op.
func (c *Cache) Sweep(comfort float64) int {
	if c.Infinite() || c.cfg.Policy == nil {
		return 0
	}
	if comfort < 0 {
		comfort = 0
	}
	target := int64(comfort * float64(c.cfg.Capacity))
	removed := 0
	for c.stats.Used > target {
		v := c.cfg.Policy.Victim(0)
		if v == nil {
			break
		}
		c.evict(v)
		removed++
	}
	return removed
}

// CheckInvariants panics if the cache's bookkeeping is inconsistent; it
// is exercised by the property tests.
func (c *Cache) CheckInvariants() {
	var used, docs int64
	if c.byID != nil {
		for id, e := range c.byID {
			if e == nil {
				continue
			}
			if e.ID != int32(id) {
				panic(fmt.Sprintf("core: slot %d holds entry with ID %d", id, e.ID))
			}
			if e.URL != c.col.URLs[id] {
				panic(fmt.Sprintf("core: slot %d holds entry for %q, want %q", id, e.URL, c.col.URLs[id]))
			}
			used += e.Size
			docs++
		}
	} else {
		for url, e := range c.entries {
			if e.URL != url {
				panic(fmt.Sprintf("core: entry key %q holds entry for %q", url, e.URL))
			}
			used += e.Size
			docs++
		}
	}
	if used != c.stats.Used {
		panic(fmt.Sprintf("core: used bytes %d != recorded %d", used, c.stats.Used))
	}
	if docs != c.stats.Docs {
		panic(fmt.Sprintf("core: %d entries != recorded %d", docs, c.stats.Docs))
	}
	if !c.Infinite() && c.stats.Used > c.cfg.Capacity {
		panic(fmt.Sprintf("core: used %d exceeds capacity %d", c.stats.Used, c.cfg.Capacity))
	}
	if c.cfg.Policy != nil && int64(c.cfg.Policy.Len()) != docs {
		panic(fmt.Sprintf("core: policy tracks %d entries, cache holds %d", c.cfg.Policy.Len(), docs))
	}
}
