package core

import (
	"fmt"
	"reflect"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

// internedTestTrace synthesizes a reuse-heavy trace with size changes
// and CGI documents, validated-shaped (status 200, positive sizes).
func internedTestTrace(n int) *trace.Trace {
	r := rng.New(99)
	start := int64(800000000 - 800000000%86400)
	tr := &trace.Trace{Name: "synthetic", Start: start}
	sizes := make(map[int]int64)
	for i := 0; i < n; i++ {
		doc := int(r.Uint64() % 64)
		url := fmt.Sprintf("http://s%d.x/doc%d.html", doc%5, doc)
		if doc%7 == 0 {
			url = fmt.Sprintf("http://s1.x/cgi-bin/q%d", doc)
		}
		size, ok := sizes[doc]
		if !ok || r.Float64() < 0.05 { // occasional origin-side edit
			size = int64(64 + r.Uint64()%4096)
			sizes[doc] = size
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   start + int64(i)*800,
			Client: fmt.Sprintf("c%d", i%9),
			URL:    url,
			Status: 200,
			Size:   size,
			Type:   trace.ClassifyURL(url),
		})
	}
	return tr
}

// runBoth replays tr through a string-indexed and an ID-indexed cache
// built from identical configs and returns the per-request hit
// sequences and final stats of each.
func runBoth(t *testing.T, tr *trace.Trace, mkCfg func() Config) (hitsStr, hitsID []bool, statsStr, statsID Stats) {
	t.Helper()
	str := New(mkCfg())
	for i := range tr.Requests {
		hitsStr = append(hitsStr, str.Access(&tr.Requests[i]))
	}
	str.CheckInvariants()

	col := tr.Columnar()
	idc := NewColumnar(mkCfg(), col)
	for i := 0; i < col.Len(); i++ {
		hitsID = append(hitsID, idc.AccessIndex(i))
	}
	idc.CheckInvariants()
	return hitsStr, hitsID, str.Stats(), idc.Stats()
}

// TestInternedMatchesStringEngine checks the two index modes are
// behaviorally identical — per-request hit decisions and every
// statistic — across capacities and options.
func TestInternedMatchesStringEngine(t *testing.T) {
	tr := internedTestTrace(4000)
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"infinite", func() Config {
			return Config{Capacity: 0, Seed: 7}
		}},
		{"finite-size-policy", func() Config {
			return Config{
				Capacity: 20000,
				Policy:   policy.NewSorted([]policy.Key{policy.KeySize}, 0),
				Seed:     7,
				SizeHint: 16,
			}
		}},
		{"finite-lru-exclude-dynamic", func() Config {
			return Config{
				Capacity:       20000,
				Policy:         policy.NewLRU(),
				Seed:           7,
				ExcludeDynamic: true,
			}
		}},
		{"latency-hook", func() Config {
			return Config{
				Capacity:  20000,
				Policy:    policy.NewSorted([]policy.Key{policy.KeyLatency}, 0),
				Seed:      7,
				LatencyOf: func(url string, size int64) float64 { return float64(len(url)) + float64(size)/1024 },
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hitsStr, hitsID, statsStr, statsID := runBoth(t, tr, tc.cfg)
			if !reflect.DeepEqual(hitsStr, hitsID) {
				for i := range hitsStr {
					if hitsStr[i] != hitsID[i] {
						t.Fatalf("request %d (%s): string=%v interned=%v",
							i, tr.Requests[i].URL, hitsStr[i], hitsID[i])
					}
				}
			}
			if !reflect.DeepEqual(statsStr, statsID) {
				t.Fatalf("stats diverge:\nstring  %+v\ninterned %+v", statsStr, statsID)
			}
		})
	}
}

// TestInternedSweep checks the Pitkow/Recker periodic sweep behaves
// identically in both modes.
func TestInternedSweep(t *testing.T) {
	tr := internedTestTrace(2000)
	mk := func() Config {
		return Config{
			Capacity: 15000,
			Policy:   policy.NewSorted([]policy.Key{policy.KeyDayATime, policy.KeySize}, tr.Start),
			Seed:     3,
		}
	}
	str := New(mk())
	col := tr.Columnar()
	idc := NewColumnar(mk(), col)
	for i := range tr.Requests {
		str.Access(&tr.Requests[i])
		idc.AccessIndex(i)
		if i%500 == 499 {
			if a, b := str.Sweep(0.5), idc.Sweep(0.5); a != b {
				t.Fatalf("sweep at %d removed %d (string) vs %d (interned)", i, a, b)
			}
		}
	}
	if !reflect.DeepEqual(str.Stats(), idc.Stats()) {
		t.Fatalf("stats diverge after sweeps:\nstring  %+v\ninterned %+v", str.Stats(), idc.Stats())
	}
}

// TestInternedContainsAndLen checks the query helpers in interned mode.
func TestInternedContainsAndLen(t *testing.T) {
	tr := internedTestTrace(500)
	col := tr.Columnar()
	c := NewColumnar(Config{Capacity: 0, Seed: 1}, col)
	for i := 0; i < col.Len(); i++ {
		c.AccessIndex(i)
	}
	if !c.Interned() {
		t.Fatal("Interned() = false on a columnar cache")
	}
	last := map[string]int64{}
	for i := range tr.Requests {
		last[tr.Requests[i].URL] = tr.Requests[i].Size
	}
	for url, size := range last {
		if !c.Contains(url, size) {
			t.Fatalf("Contains(%q, %d) = false, want true", url, size)
		}
		if c.Contains(url, size+1) {
			t.Fatalf("Contains(%q, %d) = true for a mismatched size", url, size+1)
		}
	}
	if c.Contains("http://never.seen/x.html", 1) {
		t.Fatal("Contains found a URL outside the trace")
	}
	if c.Len() != len(last) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(last))
	}
}

// TestInternedAccessPanics pins the mixed-mode guard: feeding a raw
// Request to an interned cache is a programming error.
func TestInternedAccessPanics(t *testing.T) {
	tr := internedTestTrace(10)
	c := NewColumnar(Config{Capacity: 0, Seed: 1}, tr.Columnar())
	defer func() {
		if recover() == nil {
			t.Fatal("Access on an interned cache did not panic")
		}
	}()
	c.Access(&tr.Requests[0])
}
