package core

import (
	"fmt"

	"webcache/internal/trace"
)

// SharedL2 models §5 open problem 3 of the paper: several first-level
// caches, each serving its own client population, sharing a single
// second-level cache. A request enters through its population's L1; an
// L1 miss consults the shared L2, which answers from the commonality
// between populations ("how much commonality exists between the
// workloads if they share a single second level cache?").
type SharedL2 struct {
	l1s []*Cache
	l2  *Cache

	// Per-population accounting.
	popReqs  []int64
	popBytes []int64
	popL2Hit []int64
	popL2BH  []int64

	// crossHits counts L2 hits where the document was first brought into
	// L2 by a *different* population — the commonality the paper asks
	// about.
	crossHits  int64
	crossBytes int64
	firstBy    map[string]int // URL -> population that first inserted it
}

// NewSharedL2 builds n first-level caches from l1 configs (one per
// population) in front of a single cache built from l2.
func NewSharedL2(l1s []Config, l2 Config) *SharedL2 {
	s := &SharedL2{
		l2:       New(l2),
		popReqs:  make([]int64, len(l1s)),
		popBytes: make([]int64, len(l1s)),
		popL2Hit: make([]int64, len(l1s)),
		popL2BH:  make([]int64, len(l1s)),
		firstBy:  make(map[string]int),
	}
	for _, cfg := range l1s {
		s.l1s = append(s.l1s, New(cfg))
	}
	return s
}

// Populations returns the number of first-level caches.
func (s *SharedL2) Populations() int { return len(s.l1s) }

// L1 returns population i's first-level cache.
func (s *SharedL2) L1(i int) *Cache { return s.l1s[i] }

// L2 returns the shared second-level cache.
func (s *SharedL2) L2() *Cache { return s.l2 }

// Access processes a request from population pop and reports where it
// hit. It panics on an out-of-range population, which is a programming
// error in the caller.
func (s *SharedL2) Access(pop int, req *trace.Request) (l1Hit, l2Hit bool) {
	if pop < 0 || pop >= len(s.l1s) {
		panic(fmt.Sprintf("core: population %d out of range [0,%d)", pop, len(s.l1s)))
	}
	s.popReqs[pop]++
	s.popBytes[pop] += req.Size
	if s.l1s[pop].Access(req) {
		return true, false
	}
	hit := s.l2.Access(req)
	if hit {
		s.popL2Hit[pop]++
		s.popL2BH[pop] += req.Size
		if first, ok := s.firstBy[req.URL]; ok && first != pop {
			s.crossHits++
			s.crossBytes += req.Size
		}
	} else if _, ok := s.firstBy[req.URL]; !ok {
		s.firstBy[req.URL] = pop
	}
	return false, hit
}

// SharedL2Stats summarizes a shared-hierarchy run.
type SharedL2Stats struct {
	// PopL2HR and PopL2WHR report, per population, the fraction of its
	// requests (bytes) answered by the shared second level.
	PopL2HR  []float64
	PopL2WHR []float64
	// CrossHitFraction is the fraction of all L2 hits that were served
	// from a document a *different* population brought in — the
	// inter-workload commonality.
	CrossHitFraction  float64
	CrossByteFraction float64
	L2                Stats
}

// Stats computes the run summary.
func (s *SharedL2) Stats() SharedL2Stats {
	out := SharedL2Stats{L2: s.l2.Stats()}
	var totalL2Hits, totalL2BH int64
	for i := range s.l1s {
		hr, whr := 0.0, 0.0
		if s.popReqs[i] > 0 {
			hr = float64(s.popL2Hit[i]) / float64(s.popReqs[i])
		}
		if s.popBytes[i] > 0 {
			whr = float64(s.popL2BH[i]) / float64(s.popBytes[i])
		}
		out.PopL2HR = append(out.PopL2HR, hr)
		out.PopL2WHR = append(out.PopL2WHR, whr)
		totalL2Hits += s.popL2Hit[i]
		totalL2BH += s.popL2BH[i]
	}
	if totalL2Hits > 0 {
		out.CrossHitFraction = float64(s.crossHits) / float64(totalL2Hits)
	}
	if totalL2BH > 0 {
		out.CrossByteFraction = float64(s.crossBytes) / float64(totalL2BH)
	}
	return out
}
