// Interned mode: the cache indexes resident documents by the trace's
// dense int32 URL IDs instead of by URL string. A policy sweep interns
// the trace once (trace.Columnar) and every replay then runs map-free:
// the per-request path is a slice index, not a string hash, and the
// §1.1 dynamic-document test reads a per-ID table instead of
// re-classifying the URL. Simulation output is byte-identical to the
// string-indexed engine — same hit decisions, same RNG call sequence,
// same eviction order (the benchreplay harness and the sim equivalence
// tests enforce this).

package core

import (
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// NewColumnar returns a cache over the interned columnar trace view.
// The entry table is pre-sized to col.NumIDs() — exact, not a hint —
// so steady-state replay in this mode allocates nothing. Requests are
// fed with AccessIndex; Access panics in this mode.
func NewColumnar(cfg Config, col *trace.Columnar) *Cache {
	c := newCache(cfg)
	c.col = col
	c.byID = make([]*policy.Entry, col.NumIDs())
	return c
}

// Interned reports whether the cache indexes entries by interned ID.
func (c *Cache) Interned() bool { return c.byID != nil }

// AccessIndex processes request i of the attached columnar view and
// reports whether it hit. It is the interned counterpart of Access:
// statistics, hit rule, invalidation and eviction behavior are
// identical, only the entry lookup differs.
func (c *Cache) AccessIndex(i int) bool {
	col := c.col
	now := col.Times[i]
	size := col.Sizes[i]
	typ := col.Types[i]
	c.now = now
	if c.nowPol != nil {
		c.nowPol.SetNow(now)
	}

	c.stats.Requests++
	c.stats.BytesRequested += size
	ts := &c.stats.ByType[typ]
	ts.Requests++
	ts.BytesRequested += size

	id := col.IDs[i]
	if e := c.byID[id]; e != nil {
		if e.Size == size {
			e.ATime = now
			e.NRef++
			if c.cfg.Policy != nil {
				c.cfg.Policy.Touch(e)
			}
			c.stats.Hits++
			c.stats.BytesHit += size
			ts.Hits++
			ts.BytesHit += size
			if c.cfg.Hooks.OnHit != nil {
				c.cfg.Hooks.OnHit(e)
			}
			return true
		}
		// Size mismatch: the origin document changed, the cached copy
		// is inconsistent and must be replaced (§1.1).
		c.remove(e)
		c.stats.SizeChanges++
		if c.recycle {
			c.pool.Put(e)
		}
	}

	if c.cfg.Hooks.OnMiss != nil {
		c.cfg.Hooks.OnMiss(size, now)
	}
	c.insertID(id, size, typ, now)
	return false
}

// insertID stores document id, evicting as needed; it mirrors insert
// step for step so the two modes draw the same RNG sequence.
func (c *Cache) insertID(id int32, size int64, typ trace.DocType, now int64) {
	if c.cfg.ExcludeDynamic && c.col.Dynamic[id] {
		return
	}
	if !c.Infinite() && size > c.cfg.Capacity {
		c.stats.Bypassed++
		return
	}
	if !c.Infinite() {
		for c.stats.Used+size > c.cfg.Capacity {
			v := c.cfg.Policy.Victim(size)
			if v == nil {
				c.stats.Bypassed++
				return
			}
			c.evict(v)
		}
	}
	url := c.col.URLs[id]
	var e *policy.Entry
	if c.recycle {
		e = c.pool.Get(url, size, typ, now, c.rnd.Uint64())
	} else {
		e = policy.NewEntry(url, size, typ, now, c.rnd.Uint64())
	}
	e.ID = id
	if c.cfg.LatencyOf != nil {
		e.Latency = c.cfg.LatencyOf(url, size)
	}
	if c.cfg.ExpiresOf != nil {
		e.Expires = c.cfg.ExpiresOf(url, size, now)
	}
	c.byID[id] = e
	c.stats.Used += size
	c.stats.Docs++
	c.stats.Inserted++
	if c.stats.Used > c.stats.MaxUsed {
		c.stats.MaxUsed = c.stats.Used
	}
	if c.stats.Docs > c.stats.MaxDocs {
		c.stats.MaxDocs = c.stats.Docs
	}
	if c.cfg.Policy != nil {
		c.cfg.Policy.Add(e)
	}
	if c.cfg.Hooks.OnAdd != nil {
		c.cfg.Hooks.OnAdd(e)
	}
}
