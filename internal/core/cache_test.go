package core

import (
	"testing"

	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

func req(url string, size, t int64) *trace.Request {
	return &trace.Request{Time: t, URL: url, Status: 200, Size: size, Type: trace.ClassifyURL(url)}
}

func sizePolicy() policy.Policy {
	return policy.NewSorted([]policy.Key{policy.KeySize}, 0)
}

func TestHitRequiresURLAndSize(t *testing.T) {
	c := New(Config{Capacity: 0, Seed: 1})
	if c.Access(req("http://a/x.html", 100, 1)) {
		t.Fatal("first access hit")
	}
	if !c.Access(req("http://a/x.html", 100, 2)) {
		t.Fatal("same URL+size missed")
	}
	// Same URL, different size: the document changed -> miss, replace.
	if c.Access(req("http://a/x.html", 150, 3)) {
		t.Fatal("size-changed access hit")
	}
	st := c.Stats()
	if st.SizeChanges != 1 {
		t.Fatalf("SizeChanges = %d, want 1", st.SizeChanges)
	}
	// The replacement is the new size.
	if !c.Contains("http://a/x.html", 150) {
		t.Fatal("cache does not hold the new version")
	}
	if c.Contains("http://a/x.html", 100) {
		t.Fatal("cache claims to hold the stale version")
	}
	if !c.Access(req("http://a/x.html", 150, 4)) {
		t.Fatal("new version missed")
	}
}

func TestInfiniteCacheNeverEvicts(t *testing.T) {
	c := New(Config{Capacity: 0, Seed: 2})
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		size := int64(1 + r.Intn(100000))
		u := "http://s/doc" + itoa(r.Intn(1000)) + ".html"
		c.Access(req(u, size, int64(i)))
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("infinite cache evicted %d documents", st.Evictions)
	}
	if st.MaxUsed != st.Used && st.SizeChanges == 0 {
		t.Fatalf("MaxUsed %d != Used %d with no size changes", st.MaxUsed, st.Used)
	}
	c.CheckInvariants()
}

func TestEvictionMakesRoom(t *testing.T) {
	c := New(Config{Capacity: 1000, Policy: sizePolicy(), Seed: 3})
	c.Access(req("http://a/big.dat", 900, 1))
	c.Access(req("http://a/small.dat", 200, 2)) // must evict big
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if !c.Contains("http://a/small.dat", 200) || c.Contains("http://a/big.dat", 900) {
		t.Fatal("wrong resident set after eviction")
	}
	if st.Used != 200 {
		t.Fatalf("Used = %d, want 200", st.Used)
	}
	c.CheckInvariants()
}

func TestSizePolicyEvictsLargestFirst(t *testing.T) {
	c := New(Config{Capacity: 1000, Policy: sizePolicy(), Seed: 4})
	c.Access(req("http://a/a.dat", 500, 1))
	c.Access(req("http://a/b.dat", 300, 2))
	c.Access(req("http://a/c.dat", 150, 3))
	// 950 used; a 100-byte doc forces one eviction: the 500-byte doc.
	c.Access(req("http://a/d.dat", 100, 4))
	if c.Contains("http://a/a.dat", 500) {
		t.Fatal("SIZE policy did not evict the largest document")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestTooLargeDocumentBypasses(t *testing.T) {
	c := New(Config{Capacity: 100, Policy: sizePolicy(), Seed: 5})
	c.Access(req("http://a/small.dat", 60, 1))
	c.Access(req("http://a/huge.dat", 500, 2))
	st := c.Stats()
	if st.Bypassed != 1 {
		t.Fatalf("Bypassed = %d, want 1", st.Bypassed)
	}
	if !c.Contains("http://a/small.dat", 60) {
		t.Fatal("bypass evicted the resident document")
	}
	if st.Evictions != 0 {
		t.Fatalf("bypass caused %d evictions", st.Evictions)
	}
}

func TestExcludeDynamic(t *testing.T) {
	c := New(Config{Capacity: 0, Seed: 6, ExcludeDynamic: true})
	c.Access(req("http://a/cgi-bin/q", 100, 1))
	if c.Len() != 0 {
		t.Fatal("dynamic document cached despite ExcludeDynamic")
	}
	if c.Access(req("http://a/cgi-bin/q", 100, 2)) {
		t.Fatal("dynamic document hit")
	}
	c.Access(req("http://a/x.html", 100, 3))
	if c.Len() != 1 {
		t.Fatal("static document not cached")
	}
}

func TestPerTypeStats(t *testing.T) {
	c := New(Config{Capacity: 0, Seed: 7})
	c.Access(req("http://a/s.au", 1000, 1))
	c.Access(req("http://a/s.au", 1000, 2))
	c.Access(req("http://a/p.gif", 10, 3))
	st := c.Stats()
	au := st.ByType[trace.Audio]
	if au.Requests != 2 || au.Hits != 1 || au.BytesHit != 1000 || au.BytesRequested != 2000 {
		t.Fatalf("audio stats %+v", au)
	}
	gr := st.ByType[trace.Graphics]
	if gr.Requests != 1 || gr.Hits != 0 {
		t.Fatalf("graphics stats %+v", gr)
	}
}

func TestOnEvictObserver(t *testing.T) {
	var evicted []string
	c := New(Config{
		Capacity: 100,
		Policy:   policy.NewLRU(),
		Seed:     8,
		OnEvict:  func(e *policy.Entry) { evicted = append(evicted, e.URL) },
	})
	c.Access(req("http://a/1.dat", 60, 1))
	c.Access(req("http://a/2.dat", 60, 2))
	if len(evicted) != 1 || evicted[0] != "http://a/1.dat" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestSweep(t *testing.T) {
	c := New(Config{Capacity: 1000, Policy: sizePolicy(), Seed: 9})
	for i := 0; i < 9; i++ {
		c.Access(req("http://a/d"+itoa(i)+".dat", 100, int64(i)))
	}
	if c.Used() != 900 {
		t.Fatalf("Used = %d", c.Used())
	}
	removed := c.Sweep(0.5)
	if c.Used() > 500 {
		t.Fatalf("after Sweep(0.5), Used = %d", c.Used())
	}
	if removed == 0 {
		t.Fatal("Sweep removed nothing")
	}
	c.CheckInvariants()

	// Sweep on an infinite cache is a no-op.
	inf := New(Config{Capacity: 0, Seed: 10})
	inf.Access(req("http://a/x.dat", 10, 1))
	if n := inf.Sweep(0); n != 0 {
		t.Fatalf("infinite Sweep removed %d", n)
	}
}

func TestLatencyOf(t *testing.T) {
	// Verify LatencyOf feeds the KeyLatency extension key: the entry
	// cheapest to refetch is sacrificed first.
	c2 := New(Config{
		Capacity: 100, Seed: 12,
		Policy:    policy.NewSorted([]policy.Key{policy.KeyLatency}, 0),
		LatencyOf: func(url string, size int64) float64 { return float64(size) },
	})
	c2.Access(req("http://a/cheap.dat", 40, 1))  // latency 40
	c2.Access(req("http://a/costly.dat", 50, 2)) // latency 50
	c2.Access(req("http://a/new.dat", 50, 3))    // evicting cheap (40) suffices
	if c2.Contains("http://a/cheap.dat", 40) {
		t.Fatal("latency policy kept the cheapest-to-refetch document")
	}
	if !c2.Contains("http://a/costly.dat", 50) {
		t.Fatal("latency policy evicted the costliest document")
	}
}

// TestRandomTraceInvariants drives a small cache with a random request
// stream and checks bookkeeping invariants throughout.
func TestRandomTraceInvariants(t *testing.T) {
	policies := []func() policy.Policy{
		func() policy.Policy { return policy.NewSorted([]policy.Key{policy.KeySize}, 0) },
		func() policy.Policy { return policy.NewLRU() },
		func() policy.Policy { return policy.NewLFU() },
		func() policy.Policy { return policy.NewLRUMin() },
		func() policy.Policy { return policy.NewHyperG() },
		func() policy.Policy { return policy.NewPitkowRecker(0) },
		func() policy.Policy { return policy.NewGDS1() },
	}
	for pi, mk := range policies {
		pol := mk()
		c := New(Config{Capacity: 5000, Policy: pol, Seed: uint64(pi)})
		r := rng.New(uint64(100 + pi))
		for i := 0; i < 20000; i++ {
			u := "http://s/d" + itoa(r.Intn(300)) + ".dat"
			size := int64(1 + r.Intn(2000))
			// Reuse a stable size per URL most of the time so hits occur.
			if r.Float64() < 0.9 {
				size = int64(100 + len(u)*7)
			}
			c.Access(req(u, size, int64(i)))
			if i%997 == 0 {
				c.CheckInvariants()
			}
		}
		c.CheckInvariants()
		st := c.Stats()
		if st.Hits == 0 {
			t.Errorf("policy %s: no hits on a re-referencing stream", pol.Name())
		}
		if st.Used > 5000 {
			t.Errorf("policy %s: capacity exceeded: %d", pol.Name(), st.Used)
		}
	}
}

func TestHitRateAccessors(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.WeightedHitRate() != 0 {
		t.Fatal("zero stats should have zero rates")
	}
	s.Requests, s.Hits = 4, 1
	s.BytesRequested, s.BytesHit = 100, 25
	if s.HitRate() != 0.25 || s.WeightedHitRate() != 0.25 {
		t.Fatalf("rates %v/%v", s.HitRate(), s.WeightedHitRate())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
