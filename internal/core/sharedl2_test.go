package core

import (
	"testing"

	"webcache/internal/policy"
	"webcache/internal/trace"
)

func newSharedL2ForTest(pops int, l1Cap int64) *SharedL2 {
	cfgs := make([]Config, pops)
	for i := range cfgs {
		cfgs[i] = Config{
			Capacity: l1Cap,
			Policy:   policy.NewSorted([]policy.Key{policy.KeySize}, 0),
			Seed:     uint64(i + 1),
		}
	}
	return NewSharedL2(cfgs, Config{Capacity: 0, Seed: 99})
}

func TestSharedL2CrossPopulationHit(t *testing.T) {
	s := newSharedL2ForTest(2, 10000)
	r := req("http://a/shared.html", 500, 1)

	// Population 0 brings the document in.
	h1, h2 := s.Access(0, r)
	if h1 || h2 {
		t.Fatal("cold access hit")
	}
	// Population 1 misses its own L1 but hits the shared L2 — a
	// cross-population hit.
	r2 := *r
	r2.Time = 2
	h1, h2 = s.Access(1, &r2)
	if h1 || !h2 {
		t.Fatalf("population 1: l1=%v l2=%v, want shared L2 hit", h1, h2)
	}
	st := s.Stats()
	if st.CrossHitFraction != 1.0 {
		t.Fatalf("cross-hit fraction %v, want 1", st.CrossHitFraction)
	}
	if st.PopL2HR[1] == 0 {
		t.Fatal("population 1's L2 hit rate is zero")
	}
	if st.PopL2HR[0] != 0 {
		t.Fatal("population 0 credited with an L2 hit it never had")
	}
}

func TestSharedL2SamePopulationHitNotCross(t *testing.T) {
	s := newSharedL2ForTest(2, 600)
	// Two alternating large docs in population 0: L1 can hold only one,
	// so the second access of each hits L2 — but within one population.
	for i := 0; i < 6; i++ {
		u := "http://a/a.dat"
		if i%2 == 1 {
			u = "http://a/b.dat"
		}
		s.Access(0, req(u, 500, int64(i)))
	}
	st := s.Stats()
	if st.CrossHitFraction != 0 {
		t.Fatalf("cross-hit fraction %v for single-population traffic", st.CrossHitFraction)
	}
	if st.PopL2HR[0] == 0 {
		t.Fatal("population 0 never hit L2 despite thrashing")
	}
}

func TestSharedL2PanicsOnBadPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range population accepted")
		}
	}()
	s := newSharedL2ForTest(2, 100)
	s.Access(5, req("http://a/x.html", 10, 1))
}

func TestSharedL2Accessors(t *testing.T) {
	s := newSharedL2ForTest(3, 100)
	if s.Populations() != 3 {
		t.Fatalf("Populations = %d", s.Populations())
	}
	if s.L1(0) == nil || s.L2() == nil {
		t.Fatal("nil caches")
	}
	if s.L2().Capacity() != 0 {
		t.Fatal("L2 should be infinite")
	}
}

func TestSharedL2InclusionInvariant(t *testing.T) {
	// Every document present in any L1 must also be in the shared L2.
	s := newSharedL2ForTest(3, 2000)
	urls := []string{"http://a/1.gif", "http://a/2.gif", "http://a/3.gif", "http://a/4.gif"}
	sizes := []int64{400, 700, 900, 300}
	for i := 0; i < 300; i++ {
		k := i % len(urls)
		s.Access(i%3, &trace.Request{Time: int64(i), URL: urls[k], Status: 200, Size: sizes[k]})
	}
	for p := 0; p < 3; p++ {
		for k, u := range urls {
			if s.L1(p).Contains(u, sizes[k]) && !s.L2().Contains(u, sizes[k]) {
				t.Fatalf("population %d holds %s but shared L2 does not", p, u)
			}
		}
	}
	s.L2().CheckInvariants()
}
