package core

import (
	"testing"

	"webcache/internal/policy"
	"webcache/internal/rng"
	"webcache/internal/trace"
)

func newTestTwoLevel(l1Cap int64) *TwoLevel {
	return NewTwoLevel(
		Config{Capacity: l1Cap, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 1},
		Config{Capacity: 0, Seed: 2},
	)
}

func TestTwoLevelHitLevels(t *testing.T) {
	tl := newTestTwoLevel(1000)
	r1 := req("http://a/x.dat", 400, 1)

	h1, h2 := tl.Access(r1)
	if h1 || h2 {
		t.Fatal("cold access hit somewhere")
	}
	// Both levels now hold x.
	h1, h2 = tl.Access(req("http://a/x.dat", 400, 2))
	if !h1 || h2 {
		t.Fatalf("second access: l1=%v l2=%v, want L1 hit", h1, h2)
	}
	// Force x out of L1 by filling it with something smaller after a
	// larger doc (SIZE evicts largest).
	tl.Access(req("http://a/y.dat", 700, 3)) // evicts x (400) or fits? 400+700>1000 -> evicts x
	if tl.L1.Contains("http://a/x.dat", 400) {
		t.Fatal("x still in L1")
	}
	h1, h2 = tl.Access(req("http://a/x.dat", 400, 4))
	if h1 || !h2 {
		t.Fatalf("post-eviction access: l1=%v l2=%v, want L2 hit", h1, h2)
	}
}

// TestTwoLevelInclusion: any document evicted from L1 must still be in
// L2 (the paper's arrangement), so an L1 miss over previously seen
// documents always hits L2.
func TestTwoLevelInclusion(t *testing.T) {
	tl := newTestTwoLevel(3000)
	r := rng.New(9)
	sizes := map[string]int64{}
	for i := 0; i < 5000; i++ {
		u := "http://s/d" + itoa(r.Intn(200)) + ".dat"
		size, ok := sizes[u]
		if !ok {
			size = int64(100 + r.Intn(900))
			sizes[u] = size
		}
		h1, h2 := tl.Access(&trace.Request{Time: int64(i), URL: u, Status: 200, Size: size})
		seenBefore := i > 0 && h1 || h2 // not a strict check; the real assertion follows
		_ = seenBefore
		if !h1 && !h2 {
			// Full miss: legal only the first time a (url,size) appears.
			if tl.L2.Stats().SizeChanges == 0 {
				// With stable sizes, L2 is infinite so a full miss means
				// first occurrence; verify L2 now holds it.
				if !tl.L2.Contains(u, size) {
					t.Fatalf("after miss, L2 lacks %s", u)
				}
			}
		}
	}
	// Inclusion: everything in L1 is in L2.
	for u, size := range sizes {
		if tl.L1.Contains(u, size) && !tl.L2.Contains(u, size) {
			t.Fatalf("L1 holds %s but L2 does not", u)
		}
	}
	tl.L1.CheckInvariants()
	tl.L2.CheckInvariants()
}

func TestTwoLevelRates(t *testing.T) {
	tl := newTestTwoLevel(500)
	// One document cycles: first access misses both, later accesses hit
	// L1 (it fits), so L2 hit rate stays 0.
	for i := 0; i < 10; i++ {
		tl.Access(req("http://a/x.dat", 100, int64(i)))
	}
	if tl.Requests() != 10 {
		t.Fatalf("Requests = %d", tl.Requests())
	}
	if hr := tl.L2HitRate(); hr != 0 {
		t.Fatalf("L2HitRate = %v, want 0", hr)
	}
	// Two alternating documents too big to coexist in L1: every access
	// after the first pair hits L2, not L1.
	tl2 := newTestTwoLevel(500)
	for i := 0; i < 10; i++ {
		u := "http://a/a.dat"
		if i%2 == 1 {
			u = "http://a/b.dat"
		}
		tl2.Access(req(u, 400, int64(i)))
	}
	if hr := tl2.L2HitRate(); hr != 0.8 {
		t.Fatalf("alternating L2HitRate = %v, want 0.8", hr)
	}
	if whr := tl2.L2WeightedHitRate(); whr != 0.8 {
		t.Fatalf("alternating L2WHR = %v, want 0.8", whr)
	}
}

func TestPartitionedRouting(t *testing.T) {
	part := NewAudioPartitioned(
		Config{Capacity: 10000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 1},
		Config{Capacity: 10000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 2},
	)
	part.Access(&trace.Request{Time: 1, URL: "http://a/s.au", Status: 200, Size: 500, Type: trace.Audio})
	part.Access(&trace.Request{Time: 2, URL: "http://a/p.gif", Status: 200, Size: 300, Type: trace.Graphics})
	if part.Partition(0).Len() != 1 || part.Partition(1).Len() != 1 {
		t.Fatalf("partition sizes %d/%d", part.Partition(0).Len(), part.Partition(1).Len())
	}
	if part.Partition(0).Used() != 500 || part.Partition(1).Used() != 300 {
		t.Fatalf("partition bytes %d/%d", part.Partition(0).Used(), part.Partition(1).Used())
	}
	if part.Parts() != 2 {
		t.Fatalf("Parts = %d", part.Parts())
	}
}

func TestPartitionedIsolation(t *testing.T) {
	// A flood of audio must not evict non-audio documents.
	part := NewAudioPartitioned(
		Config{Capacity: 1000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 1},
		Config{Capacity: 1000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 2},
	)
	part.Access(&trace.Request{Time: 1, URL: "http://a/page.html", Status: 200, Size: 800, Type: trace.Text})
	for i := 0; i < 50; i++ {
		part.Access(&trace.Request{Time: int64(2 + i), URL: "http://a/s" + itoa(i) + ".au", Status: 200, Size: 900, Type: trace.Audio})
	}
	if !part.Partition(1).Contains("http://a/page.html", 800) {
		t.Fatal("audio flood displaced a non-audio document across partitions")
	}
}

func TestPartitionWHROverAll(t *testing.T) {
	part := NewAudioPartitioned(
		Config{Capacity: 10000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 1},
		Config{Capacity: 10000, Policy: policy.NewSorted([]policy.Key{policy.KeySize}, 0), Seed: 2},
	)
	au := &trace.Request{Time: 1, URL: "http://a/s.au", Status: 200, Size: 600, Type: trace.Audio}
	tx := &trace.Request{Time: 2, URL: "http://a/t.html", Status: 200, Size: 400, Type: trace.Text}
	part.Access(au) // miss
	part.Access(tx) // miss
	au2 := *au
	au2.Time = 3
	part.Access(&au2) // audio hit: 600 bytes
	// Total requested: 1600; audio partition hit bytes 600.
	if got := part.PartitionWHROverAll(0); got != 600.0/1600.0 {
		t.Fatalf("audio WHR over all = %v, want %v", got, 600.0/1600.0)
	}
	if got := part.PartitionWHROverAll(1); got != 0 {
		t.Fatalf("non-audio WHR over all = %v, want 0", got)
	}
}
