package core

import "webcache/internal/trace"

// Partitioned models Experiment 4: a cache split into independent
// partitions, each with its own capacity and policy, with requests
// routed to a partition by a classification function. The paper's
// instance routes audio to one partition and everything else to the
// other, with the audio partition getting 1/4, 1/2 or 3/4 of the total.
type Partitioned struct {
	parts []*Cache
	route func(*trace.Request) int

	requests int64
	bytes    int64
}

// NewPartitioned builds a partitioned cache. route must return a valid
// index into configs for every request.
func NewPartitioned(configs []Config, route func(*trace.Request) int) *Partitioned {
	parts := make([]*Cache, len(configs))
	for i, cfg := range configs {
		parts[i] = New(cfg)
	}
	return &Partitioned{parts: parts, route: route}
}

// NewAudioPartitioned builds the paper's two-partition audio/non-audio
// cache: partition 0 caches audio documents, partition 1 everything
// else. audioCap and otherCap are the partition capacities in bytes;
// the policies are constructed by the caller (Experiment 4 uses SIZE
// with a random secondary in both).
func NewAudioPartitioned(audio, other Config) *Partitioned {
	return NewPartitioned([]Config{audio, other}, func(r *trace.Request) int {
		if r.Type == trace.Audio {
			return 0
		}
		return 1
	})
}

// Access routes the request to its partition and reports a hit.
func (p *Partitioned) Access(req *trace.Request) bool {
	p.requests++
	p.bytes += req.Size
	return p.parts[p.route(req)].Access(req)
}

// Partition returns partition i's cache for inspection.
func (p *Partitioned) Partition(i int) *Cache { return p.parts[i] }

// Parts returns the number of partitions.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Requests returns the total requests processed.
func (p *Partitioned) Requests() int64 { return p.requests }

// BytesRequested returns the total bytes requested.
func (p *Partitioned) BytesRequested() int64 { return p.bytes }

// PartitionWHROverAll returns partition i's bytes hit divided by the
// bytes requested across *all* partitions — the paper's Figs. 19-20
// measure ("the WHRs reported are over all requests").
func (p *Partitioned) PartitionWHROverAll(i int) float64 {
	if p.bytes == 0 {
		return 0
	}
	return float64(p.parts[i].Stats().BytesHit) / float64(p.bytes)
}
