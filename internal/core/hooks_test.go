package core

import (
	"fmt"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/trace"
)

// hookCounts tallies every cache event for the hook tests.
type hookCounts struct {
	hits, misses, evicts, adds int64
	missBytes, evictBytes      int64
}

func (h *hookCounts) hooks() CacheHooks {
	return CacheHooks{
		OnHit:  func(e *policy.Entry) { h.hits++ },
		OnMiss: func(size, now int64) { h.misses++; h.missBytes += size },
		OnEvict: func(e *policy.Entry, now int64) {
			h.evicts++
			h.evictBytes += e.Size
		},
		OnAdd: func(e *policy.Entry) { h.adds++ },
	}
}

// hookTrace cycles nDocs documents rounds times with a small hot
// document interleaved between every pair, so hits (the hot document
// stays resident), misses, evictions (the cycle overflows capacity) and
// a §1.1 size-change invalidation (the hot document grows in the final
// round) all occur.
func hookTrace(nDocs, rounds int, size int64) *trace.Trace {
	tr := &trace.Trace{Name: "hooks", Start: 0}
	now := int64(0)
	add := func(url string, sz int64) {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: now, URL: url, Size: sz, Type: trace.Text,
		})
		now++
	}
	for r := 0; r < rounds; r++ {
		hotSize := int64(100)
		if r == rounds-1 {
			hotSize = 107
		}
		for d := 0; d < nDocs; d++ {
			add(fmt.Sprintf("http://s/doc%02d", d), size)
			add("http://s/hot", hotSize)
		}
	}
	return tr
}

// replayHooked runs tr through a hooked cache on the requested path and
// returns the observed event counts plus the final stats.
func replayHooked(t *testing.T, tr *trace.Trace, capacity int64, interned bool) (hookCounts, Stats) {
	t.Helper()
	var h hookCounts
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	cfg := Config{Capacity: capacity, Policy: pol, Seed: 9, Hooks: h.hooks()}
	if interned {
		col := tr.Columnar()
		c := NewColumnar(cfg, col)
		for i := 0; i < col.Len(); i++ {
			c.AccessIndex(i)
		}
		return h, c.Stats()
	}
	c := New(cfg)
	for i := range tr.Requests {
		c.Access(&tr.Requests[i])
	}
	return h, c.Stats()
}

// TestHooksMatchStats checks, on both request paths, that every hook
// fires exactly as often as the corresponding Stats counter: hits,
// misses (requests-hits), evictions and inserts.
func TestHooksMatchStats(t *testing.T) {
	tr := hookTrace(8, 5, 600)
	for _, interned := range []bool{false, true} {
		// Capacity 2000 holds three 600-byte documents: every round
		// evicts, and the size change invalidates.
		h, st := replayHooked(t, tr, 2000, interned)
		if h.hits != st.Hits {
			t.Errorf("interned=%v: OnHit fired %d times, stats say %d", interned, h.hits, st.Hits)
		}
		if want := st.Requests - st.Hits; h.misses != want {
			t.Errorf("interned=%v: OnMiss fired %d times, want %d", interned, h.misses, want)
		}
		if h.evicts != st.Evictions {
			t.Errorf("interned=%v: OnEvict fired %d times, stats say %d", interned, h.evicts, st.Evictions)
		}
		if h.evictBytes != st.EvictedBytes {
			t.Errorf("interned=%v: OnEvict saw %d bytes, stats say %d", interned, h.evictBytes, st.EvictedBytes)
		}
		if h.adds != st.Inserted {
			t.Errorf("interned=%v: OnAdd fired %d times, stats say %d inserts", interned, h.adds, st.Inserted)
		}
		if st.Evictions == 0 || st.Hits == 0 || st.SizeChanges == 0 {
			t.Errorf("interned=%v: trace did not exercise all events: %+v", interned, st)
		}
	}
}

// TestHooksIdenticalAcrossPaths checks the two request paths fire the
// same event sequence counts for the same trace.
func TestHooksIdenticalAcrossPaths(t *testing.T) {
	tr := hookTrace(8, 5, 600)
	hs, _ := replayHooked(t, tr, 2000, false)
	hi, _ := replayHooked(t, tr, 2000, true)
	if hs != hi {
		t.Fatalf("hook counts differ between paths:\n string: %+v\ninterned: %+v", hs, hi)
	}
}

// TestHooksDoNotPerturbSimulation checks that installing hooks changes
// no statistic: same trace, same seed, hooked and bare caches must end
// byte-identical.
func TestHooksDoNotPerturbSimulation(t *testing.T) {
	tr := hookTrace(8, 5, 600)
	for _, interned := range []bool{false, true} {
		_, hooked := replayHooked(t, tr, 2000, interned)
		pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
		cfg := Config{Capacity: 2000, Policy: pol, Seed: 9}
		var bare Stats
		if interned {
			col := tr.Columnar()
			c := NewColumnar(cfg, col)
			for i := 0; i < col.Len(); i++ {
				c.AccessIndex(i)
			}
			bare = c.Stats()
		} else {
			c := New(cfg)
			for i := range tr.Requests {
				c.Access(&tr.Requests[i])
			}
			bare = c.Stats()
		}
		if hooked != bare {
			t.Errorf("interned=%v: hooks perturbed stats:\nhooked: %+v\n  bare: %+v", interned, hooked, bare)
		}
	}
}

// TestMaxDocsTracksHeapPeak checks the MaxDocs high water mark: it must
// equal the deepest the resident-document count ever got.
func TestMaxDocsTracksHeapPeak(t *testing.T) {
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	c := New(Config{Capacity: 2000, Policy: pol, Seed: 1})
	for i := 0; i < 6; i++ {
		c.Access(&trace.Request{
			Time: int64(i), URL: fmt.Sprintf("http://s/d%d", i),
			Size: 600, Type: trace.Text,
		})
	}
	st := c.Stats()
	// Capacity 2000 / 600-byte docs = at most 3 resident at once.
	if st.MaxDocs != 3 {
		t.Fatalf("MaxDocs = %d, want 3 (stats %+v)", st.MaxDocs, st)
	}
	if st.Docs > st.MaxDocs {
		t.Fatalf("Docs %d exceeds MaxDocs %d", st.Docs, st.MaxDocs)
	}
}

// TestHookedAccessAllocs extends the zero-alloc pins to the enabled
// path: hooks that only touch captured counters must keep the hit and
// evict/insert cycles allocation-free on both engines.
func TestHookedAccessAllocs(t *testing.T) {
	var h hookCounts
	pol := policy.NewSorted([]policy.Key{policy.KeyATime}, 0)
	c := New(Config{Capacity: 1000, Policy: pol, Seed: 2, SizeHint: 4, Hooks: (&h).hooks()})
	reqs := make([]trace.Request, 8)
	for i := range reqs {
		reqs[i] = trace.Request{
			Time: int64(i), URL: fmt.Sprintf("http://s/big%d", i),
			Size: 600, Type: trace.Text,
		}
		c.Access(&reqs[i])
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		r := &reqs[i%len(reqs)]
		r.Time++
		c.Access(r)
		i++
	})
	if avg != 0 {
		t.Errorf("hooked evict/insert cycle allocates %.1f objects per request, want 0", avg)
	}

	col := internedAllocTrace(8, 60, 600)
	ci := NewColumnar(Config{Capacity: 1000, Policy: policy.NewSorted([]policy.Key{policy.KeyATime}, 0),
		Seed: 2, SizeHint: 4, Hooks: (&h).hooks()}, col)
	warm := 8 * 30
	for j := 0; j < warm; j++ {
		ci.AccessIndex(j)
	}
	j := 0
	avg = testing.AllocsPerRun(200, func() {
		ci.AccessIndex(warm + j%warm)
		j++
	})
	if avg != 0 {
		t.Errorf("hooked interned cycle allocates %.1f objects per request, want 0", avg)
	}
}

func TestCacheHooksAny(t *testing.T) {
	var h CacheHooks
	if h.Any() {
		t.Fatal("zero-value hooks report Any")
	}
	h.OnMiss = func(int64, int64) {}
	if !h.Any() {
		t.Fatal("hooks with OnMiss set report !Any")
	}
}
