// Command benchreplay measures the single-replay hot path on the
// paper's 36-policy Experiment 2 sweep and records the result as
// machine-readable JSON (BENCH_replay.json at the repo root), so the
// engine's ns-per-request trajectory is tracked PR over PR.
//
// It times the same sweep twice in one process:
//
//   - baseline: the pre-optimization engine, reconstructed through the
//     ablation switches — generic key-loop comparators
//     (policy.DisableCompiled), per-insert entry allocation and no
//     capacity pre-sizing (core.DisableAllocOpts), per-replay day
//     recomputation (sim.DisableDayIndex), and pairwise-swap heap
//     sifts (pqueue.DisableHoleSift);
//   - optimized: compiled comparators over cached derived keys, entry
//     recycling, pre-sized heaps, hole-based sifts, and the shared day
//     index.
//
// Both modes replay every combination with identical seeds, and the
// tool fails if any run's results differ between modes — the timing
// harness doubles as an end-to-end equivalence check for the compiled
// layer.
//
// Usage:
//
//	benchreplay                       # measure and print
//	benchreplay -out BENCH_replay.json
//	benchreplay -compare BENCH_replay.json   # print delta vs a saved run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"time"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/pqueue"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// Result is the JSON schema of BENCH_replay.json.
type Result struct {
	Benchmark         string  `json:"benchmark"`
	Workload          string  `json:"workload"`
	Scale             float64 `json:"scale"`
	Fraction          float64 `json:"fraction"`
	Policies          int     `json:"policies"`
	RequestsPerReplay int     `json:"requests_per_replay"`
	Reps              int     `json:"reps"`
	BaselineNsPerReq  float64 `json:"baseline_ns_per_request"`
	OptimizedNsPerReq float64 `json:"optimized_ns_per_request"`
	Speedup           float64 `json:"speedup"`
	IdenticalOutput   bool    `json:"identical_output"`
	GoMaxProcs        int     `json:"-"`
	Generated         string  `json:"generated"`
}

func main() {
	var (
		wl         = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		scale      = flag.Float64("scale", 0.05, "synthetic workload scale")
		fraction   = flag.Float64("fraction", 0.10, "cache size as a fraction of MaxNeeded")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		reps       = flag.Int("reps", 3, "repetitions per mode; the fastest is kept")
		out        = flag.String("out", "", "write the result as JSON to this file")
		compare    = flag.String("compare", "", "read a previous result from this file and print the delta")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement (both modes) to this file")
	)
	flag.Parse()

	if err := run(*wl, *scale, *fraction, *seed, *reps, *out, *compare, *cpuprofile); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		os.Exit(1)
	}
}

func run(wl string, scale, fraction float64, seed uint64, reps int, out, compare, cpuprofile string) error {
	if reps < 1 {
		reps = 1
	}
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return err
	}
	cfg.Scale = scale
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		return err
	}
	base := sim.Experiment1(tr, seed+1)
	combos := policy.AllCombos()
	tr.DayIndex() // build the shared index outside the timed region

	fmt.Printf("benchreplay: %s scale %g (%d requests), %d policies at %g×MaxNeeded, %d reps\n",
		tr.Name, scale, len(tr.Requests), len(combos), fraction, reps)

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Interleave the two modes rep by rep, keeping the fastest rep of
	// each, so machine-load drift during the run lands on both sides of
	// the ratio instead of skewing one.
	runner := sim.NewRunner(sim.RunnerConfig{Workers: 1})
	var baseRuns, optRuns []*sim.PolicyRun
	baseBest, optBest := maxDuration, maxDuration
	for r := 0; r < reps; r++ {
		var d time.Duration
		d, baseRuns = sweepOnce(runner, tr, base, combos, fraction, seed, true)
		if d < baseBest {
			baseBest = d
		}
		d, optRuns = sweepOnce(runner, tr, base, combos, fraction, seed, false)
		if d < optBest {
			optBest = d
		}
	}
	total := float64(len(combos) * len(tr.Requests))
	baseNs := float64(baseBest.Nanoseconds()) / total
	optNs := float64(optBest.Nanoseconds()) / total

	identical := reflect.DeepEqual(baseRuns, optRuns)
	if !identical {
		return fmt.Errorf("optimized sweep results differ from the generic baseline — the compiled layer is wrong")
	}

	res := Result{
		Benchmark:         "exp2-36policy-replay",
		Workload:          tr.Name,
		Scale:             scale,
		Fraction:          fraction,
		Policies:          len(combos),
		RequestsPerReplay: len(tr.Requests),
		Reps:              reps,
		BaselineNsPerReq:  baseNs,
		OptimizedNsPerReq: optNs,
		Speedup:           baseNs / optNs,
		IdenticalOutput:   identical,
		Generated:         time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("  baseline  (generic comparators, no alloc opts): %8.1f ns/request\n", res.BaselineNsPerReq)
	fmt.Printf("  optimized (compiled comparators, alloc-free):   %8.1f ns/request\n", res.OptimizedNsPerReq)
	fmt.Printf("  speedup: %.2f×  (outputs identical: %v)\n", res.Speedup, res.IdenticalOutput)

	if compare != "" {
		if err := printDelta(compare, res); err != nil {
			return err
		}
	}
	if out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", out)
	}
	return nil
}

const maxDuration = time.Duration(1<<63 - 1)

// sweepOnce times one execution of the full combo sweep in the given
// mode, returning the wall time and the run results for cross-mode
// comparison.
func sweepOnce(runner *sim.Runner, tr *trace.Trace, base *sim.Exp1Result, combos []policy.Combo, fraction float64, seed uint64, legacy bool) (time.Duration, []*sim.PolicyRun) {
	policy.DisableCompiled = legacy
	core.DisableAllocOpts = legacy
	sim.DisableDayIndex = legacy
	pqueue.DisableHoleSift = legacy
	defer func() {
		policy.DisableCompiled = false
		core.DisableAllocOpts = false
		sim.DisableDayIndex = false
		pqueue.DisableHoleSift = false
	}()

	// Settle garbage from the previous rep so neither mode pays for the
	// other's allocations.
	runtime.GC()
	start := time.Now()
	res := sim.Experiment2R(runner, tr, base, combos, fraction, seed+2)
	return time.Since(start), res.Runs
}

// printDelta reports this run against a previously saved result.
func printDelta(path string, cur Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("no saved result to compare against: %w", err)
	}
	var prev Result
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if prev.OptimizedNsPerReq <= 0 {
		return fmt.Errorf("%s has no optimized_ns_per_request", path)
	}
	delta := (cur.OptimizedNsPerReq - prev.OptimizedNsPerReq) / prev.OptimizedNsPerReq * 100
	fmt.Printf("  vs %s (%s): %8.1f → %8.1f ns/request (%+.1f%%)\n",
		path, prev.Generated, prev.OptimizedNsPerReq, cur.OptimizedNsPerReq, delta)
	return nil
}
