// Command benchreplay measures the single-replay hot path on the
// paper's 36-policy Experiment 2 sweep and records the result in a
// machine-readable trajectory (BENCH_replay.json at the repo root, one
// JSON array entry per recorded run), so the engine's ns-per-request
// history is tracked PR over PR.
//
// It times the same sweep five times in one process:
//
//   - baseline: the pre-optimization engine, reconstructed through the
//     ablation switches — generic key-loop comparators
//     (policy.DisableCompiled), per-insert entry allocation and no
//     capacity pre-sizing (core.DisableAllocOpts), per-replay day
//     recomputation (sim.DisableDayIndex), pairwise-swap heap sifts
//     (pqueue.DisableHoleSift), and the string-indexed entry map
//     (sim.DisableInterning);
//   - nointern: the compiled/alloc-free engine with only interning
//     disabled — the PR-2 endpoint, isolating the interned columnar
//     layer's contribution;
//   - nostructural: the interned engine with only the structural policy
//     backends disabled (policy.DisableStructural) — every combo back
//     on the generic heap, isolating the recency-list/frequency-bucket
//     layer's contribution;
//   - optimized: everything on — compiled comparators over cached
//     derived keys, entry recycling, pre-sized heaps, hole-based sifts,
//     the shared day index, and map-free ID-indexed replay over the
//     shared interned columnar trace view;
//   - observed: the optimized engine with the observability layer
//     attached (sim.Observer: cache event hooks, the event-trace ring,
//     pprof replay spans, JSONL snapshot emission) — the obs-on vs
//     obs-off ablation that prices the enabled path, recorded as
//     obs_overhead_pct.
//
// All modes replay every combination with identical seeds, and the tool
// fails if any run's results differ between modes — the timing harness
// doubles as an end-to-end equivalence check for the compiled layers
// and a proof that observation does not perturb simulation results.
//
// Usage:
//
//	benchreplay                       # measure and print
//	benchreplay -out BENCH_replay.json        # measure and append to the trajectory
//	benchreplay -compare BENCH_replay.json    # measure and print delta vs the last entry
//	benchreplay -diff BENCH_replay.json       # print delta between the last two entries (no run)
//	benchreplay -diff BENCH_replay.json -threshold 15  # also fail on a >15% optimized regression
//	benchreplay -check BENCH_replay.json      # schema-check the trajectory and exit (no run)
//	benchreplay -metrics-out m.jsonl          # also keep the observed mode's JSONL stream
//
// After the full-sweep modes it re-times the structural subset — the
// combos the capability check actually routes off the heap — with the
// structural backends on and off, pricing the layer where it applies
// (structural_subset_* fields).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/pqueue"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// Run is one measurement in the BENCH_replay.json trajectory.
type Run struct {
	Benchmark         string  `json:"benchmark"`
	GitRev            string  `json:"git_rev"`
	Workload          string  `json:"workload"`
	Scale             float64 `json:"scale"`
	Fraction          float64 `json:"fraction"`
	Policies          int     `json:"policies"`
	RequestsPerReplay int     `json:"requests_per_replay"`
	Reps              int     `json:"reps"`
	BaselineNsPerReq  float64 `json:"baseline_ns_per_request"`
	NoInternNsPerReq  float64 `json:"nointern_ns_per_request,omitempty"`
	OptimizedNsPerReq float64 `json:"optimized_ns_per_request"`
	ObservedNsPerReq  float64 `json:"observed_ns_per_request,omitempty"`
	Speedup           float64 `json:"speedup"`
	InterningSpeedup  float64 `json:"interning_speedup,omitempty"`
	ObsOverheadPct    float64 `json:"obs_overhead_pct,omitempty"`

	// The structural-backend ablation: the full sweep with every combo
	// forced back onto the heap, and the subset sweep over just the
	// combos the capability check routes to a structural backend —
	// where the layer's win is actually priced.
	NoStructuralNsPerReq float64 `json:"nostructural_ns_per_request,omitempty"`
	StructuralSpeedup    float64 `json:"structural_speedup,omitempty"`
	SubsetPolicies       int     `json:"structural_subset_policies,omitempty"`
	SubsetHeapNsPerReq   float64 `json:"structural_subset_nostructural_ns_per_request,omitempty"`
	SubsetNsPerReq       float64 `json:"structural_subset_ns_per_request,omitempty"`
	SubsetSpeedup        float64 `json:"structural_subset_speedup,omitempty"`

	IdenticalOutput bool                `json:"identical_output"`
	Ablations       map[string][]string `json:"ablations,omitempty"`
	Generated       string              `json:"generated"`
}

// modeAblations documents which switches each timed mode sets; it is
// recorded verbatim in every trajectory entry.
var modeAblations = map[string][]string{
	"baseline": {
		"policy.DisableCompiled", "core.DisableAllocOpts",
		"sim.DisableDayIndex", "pqueue.DisableHoleSift", "sim.DisableInterning",
		"policy.DisableStructural",
	},
	"nointern":     {"sim.DisableInterning"},
	"nostructural": {"policy.DisableStructural"},
	"optimized":    {},
	// Observability is off-by-default (sim.Observer == nil), so the
	// obs-on side of the ablation is the mode that *attaches* it.
	"observed": {"sim.Observer attached (cache hooks, event ring, pprof spans, JSONL snapshots)"},
}

func main() {
	var (
		wl         = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		scale      = flag.Float64("scale", 0.05, "synthetic workload scale")
		fraction   = flag.Float64("fraction", 0.10, "cache size as a fraction of MaxNeeded")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		reps       = flag.Int("reps", 3, "repetitions per mode; the fastest is kept")
		out        = flag.String("out", "", "append the result to this trajectory file")
		compare    = flag.String("compare", "", "measure and print the delta vs this trajectory's last entry")
		diff       = flag.String("diff", "", "print the delta between this trajectory's last two entries, without measuring")
		threshold  = flag.Float64("threshold", 0, "with -diff: exit non-zero if optimized ns/request regressed by more than this percent between the last two entries (0 = report only)")
		checkFlag  = flag.String("check", "", "schema-check this trajectory file and exit (no measurement)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement (all modes) to this file")
		metricsOut = flag.String("metrics-out", "", "write the observed mode's final JSONL metric stream to this file")
	)
	flag.Parse()

	var err error
	if *checkFlag != "" {
		err = checkTrajectory(*checkFlag)
	} else if *diff != "" {
		err = printTrajectoryDiff(*diff, *threshold)
	} else {
		err = run(*wl, *scale, *fraction, *seed, *reps, *out, *compare, *cpuprofile, *metricsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		os.Exit(1)
	}
}

func run(wl string, scale, fraction float64, seed uint64, reps int, out, compare, cpuprofile, metricsOut string) error {
	if reps < 1 {
		reps = 1
	}
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return err
	}
	cfg.Scale = scale
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		return err
	}
	base := sim.Experiment1(tr, seed+1)
	combos := policy.AllCombos()
	// Build the shared structures outside the timed region: the day
	// index and the interned columnar view are per-trace, decoded once.
	tr.DayIndex()
	tr.Columnar()

	fmt.Printf("benchreplay: %s scale %g (%d requests), %d policies at %g×MaxNeeded, %d reps\n",
		tr.Name, scale, len(tr.Requests), len(combos), fraction, reps)

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Interleave the four modes rep by rep, keeping the fastest rep of
	// each, so machine-load drift during the run lands on all sides of
	// the ratios instead of skewing one.
	runner := sim.NewRunner(sim.RunnerConfig{Workers: 1})
	type mode struct {
		legacy, nointern, nostructural, observed bool
		best                                     time.Duration
		runs                                     []*sim.PolicyRun
	}
	modes := []*mode{
		{legacy: true, nointern: true, nostructural: true, best: maxDuration}, // baseline
		{legacy: false, nointern: true, best: maxDuration},                    // nointern (PR-2 engine)
		{legacy: false, nostructural: true, best: maxDuration},                // heap fallback everywhere
		{legacy: false, best: maxDuration},                                    // optimized
		{legacy: false, observed: true, best: maxDuration},
	}
	var metricsFile *os.File
	if metricsOut != "" {
		metricsFile, err = os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer metricsFile.Close()
	}
	for r := 0; r < reps; r++ {
		for _, m := range modes {
			var mw io.Writer
			if m.observed {
				// Every observed rep pays for JSONL encoding; only the
				// final rep's stream is kept when -metrics-out is set.
				mw = io.Discard
				if metricsFile != nil && r == reps-1 {
					mw = metricsFile
				}
			}
			d, runs := sweepOnce(runner, tr, base, combos, fraction, seed, m.legacy, m.nointern, m.nostructural, mw)
			if d < m.best {
				m.best = d
			}
			m.runs = runs
		}
	}
	total := float64(len(combos) * len(tr.Requests))
	baseNs := float64(modes[0].best.Nanoseconds()) / total
	nointernNs := float64(modes[1].best.Nanoseconds()) / total
	nostructNs := float64(modes[2].best.Nanoseconds()) / total
	optNs := float64(modes[3].best.Nanoseconds()) / total
	obsNs := float64(modes[4].best.Nanoseconds()) / total

	identical := true
	for _, m := range modes[:len(modes)-1] {
		identical = identical && reflect.DeepEqual(m.runs, modes[3].runs)
	}
	identical = identical && reflect.DeepEqual(modes[4].runs, modes[3].runs)
	if !identical {
		return fmt.Errorf("sweep results differ between modes — an ablation layer changed behavior")
	}

	// Re-time just the structural subset — the combos whose capability
	// check actually leaves the heap — with the backends on and off, so
	// the trajectory prices the layer where it applies instead of
	// diluting it across the heap-bound stragglers. Same interleaving
	// and equivalence discipline as the full-sweep modes.
	var subset []policy.Combo
	for _, c := range combos {
		if c.New(tr.Start).Backend() != "heap" {
			subset = append(subset, c)
		}
	}
	type subMode struct {
		nostructural bool
		best         time.Duration
		runs         []*sim.PolicyRun
	}
	subModes := []*subMode{
		{nostructural: true, best: maxDuration},
		{best: maxDuration},
	}
	for r := 0; r < reps; r++ {
		for _, m := range subModes {
			d, runs := sweepOnce(runner, tr, base, subset, fraction, seed, false, false, m.nostructural, nil)
			if d < m.best {
				m.best = d
			}
			m.runs = runs
		}
	}
	if !reflect.DeepEqual(subModes[0].runs, subModes[1].runs) {
		return fmt.Errorf("structural subset results differ between backends")
	}
	subTotal := float64(len(subset) * len(tr.Requests))
	subHeapNs := float64(subModes[0].best.Nanoseconds()) / subTotal
	subNs := float64(subModes[1].best.Nanoseconds()) / subTotal

	res := Run{
		Benchmark:         "exp2-36policy-replay",
		GitRev:            gitRev(),
		Workload:          tr.Name,
		Scale:             scale,
		Fraction:          fraction,
		Policies:          len(combos),
		RequestsPerReplay: len(tr.Requests),
		Reps:              reps,
		BaselineNsPerReq:  baseNs,
		NoInternNsPerReq:  nointernNs,
		OptimizedNsPerReq: optNs,
		ObservedNsPerReq:  obsNs,
		Speedup:           baseNs / optNs,
		InterningSpeedup:  nointernNs / optNs,
		ObsOverheadPct:    (obsNs - optNs) / optNs * 100,
		IdenticalOutput:   identical,

		NoStructuralNsPerReq: nostructNs,
		StructuralSpeedup:    nostructNs / optNs,
		SubsetPolicies:       len(subset),
		SubsetHeapNsPerReq:   subHeapNs,
		SubsetNsPerReq:       subNs,
		SubsetSpeedup:        subHeapNs / subNs,

		Ablations: modeAblations,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("  baseline  (all ablation switches set):      %8.1f ns/request\n", res.BaselineNsPerReq)
	fmt.Printf("  nointern  (compiled engine, string map):    %8.1f ns/request\n", res.NoInternNsPerReq)
	fmt.Printf("  nostructural (every combo on the heap):     %8.1f ns/request\n", res.NoStructuralNsPerReq)
	fmt.Printf("  optimized (interned columnar, map-free):    %8.1f ns/request\n", res.OptimizedNsPerReq)
	fmt.Printf("  observed  (optimized + obs hooks/snapshots):%8.1f ns/request\n", res.ObservedNsPerReq)
	fmt.Printf("  speedup: %.2f× vs baseline, %.2f× vs nointern  (outputs identical: %v)\n",
		res.Speedup, res.InterningSpeedup, res.IdenticalOutput)
	fmt.Printf("  observability overhead when enabled: %+.1f%%\n", res.ObsOverheadPct)
	fmt.Printf("  structural subset (%d policies off the heap): %8.1f → %8.1f ns/request (%.2f× structural)\n",
		res.SubsetPolicies, res.SubsetHeapNsPerReq, res.SubsetNsPerReq, res.SubsetSpeedup)
	if metricsFile != nil {
		fmt.Printf("  observed metrics stream: %s\n", metricsOut)
	}

	if compare != "" {
		if err := printDelta(compare, res); err != nil {
			return err
		}
	}
	if out != "" {
		if err := appendRun(out, res); err != nil {
			return err
		}
		fmt.Printf("  appended to %s\n", out)
	}
	return nil
}

const maxDuration = time.Duration(1<<63 - 1)

// sweepOnce times one execution of the full combo sweep in the given
// mode, returning the wall time and the run results for cross-mode
// comparison. A non-nil metrics writer attaches the observability
// layer for the duration of the sweep (the "observed" mode), streaming
// its JSONL records there; the end-of-run summary is written outside
// the timed region.
func sweepOnce(runner *sim.Runner, tr *trace.Trace, base *sim.Exp1Result, combos []policy.Combo, fraction float64, seed uint64, legacy, nointern, nostructural bool, metrics io.Writer) (time.Duration, []*sim.PolicyRun) {
	policy.DisableCompiled = legacy
	core.DisableAllocOpts = legacy
	sim.DisableDayIndex = legacy
	pqueue.DisableHoleSift = legacy
	sim.DisableInterning = nointern
	policy.DisableStructural = nostructural
	defer func() {
		policy.DisableCompiled = false
		core.DisableAllocOpts = false
		sim.DisableDayIndex = false
		pqueue.DisableHoleSift = false
		sim.DisableInterning = false
		policy.DisableStructural = false
	}()
	if metrics != nil {
		o := obs.New(obs.Options{
			Metrics: metrics,
			Meta: map[string]any{
				"tool":     "benchreplay",
				"git_rev":  obs.GitRev(),
				"workload": tr.Name,
				"fraction": fraction,
				"policies": len(combos),
			},
			// The event ring rides along so the observed mode prices the
			// full enabled path: counter adds plus one ring slot store
			// per cache event — what cmd/proxy -admin and websim -listen
			// actually run.
			Ring: obs.NewEventRing(1 << 16),
		})
		o.SetExperiment("2all")
		sim.Observer = o
		defer func() {
			if err := sim.CloseObserver(runner); err != nil {
				fmt.Fprintln(os.Stderr, "benchreplay: writing metrics summary:", err)
			}
		}()
	}

	// Settle garbage from the previous rep so no mode pays for
	// another's allocations.
	runtime.GC()
	start := time.Now()
	res := sim.Experiment2R(runner, tr, base, combos, fraction, seed+2)
	return time.Since(start), res.Runs
}

// gitRev identifies the measured revision ("-dirty" when the tree has
// uncommitted changes), "unknown" outside a work tree.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}

// readTrajectory parses a trajectory file. A legacy file holding a
// single run object (the pre-trajectory schema) is read as a one-entry
// trajectory, so appending migrates it in place.
func readTrajectory(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var runs []Run
	if err := json.Unmarshal(data, &runs); err == nil {
		return runs, nil
	}
	var single Run
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return []Run{single}, nil
}

// appendRun adds res to the trajectory at path, creating it if absent.
func appendRun(path string, res Run) error {
	var runs []Run
	if _, err := os.Stat(path); err == nil {
		runs, err = readTrajectory(path)
		if err != nil {
			return err
		}
	}
	runs = append(runs, res)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printDelta reports a fresh measurement against the trajectory's last
// recorded entry.
func printDelta(path string, cur Run) error {
	runs, err := readTrajectory(path)
	if err != nil {
		return fmt.Errorf("no saved trajectory to compare against: %w", err)
	}
	if len(runs) == 0 {
		return fmt.Errorf("%s holds no runs", path)
	}
	prev := runs[len(runs)-1]
	if prev.OptimizedNsPerReq <= 0 {
		return fmt.Errorf("%s's last entry has no optimized_ns_per_request", path)
	}
	delta := (cur.OptimizedNsPerReq - prev.OptimizedNsPerReq) / prev.OptimizedNsPerReq * 100
	fmt.Printf("  vs %s (%s, %s): %8.1f → %8.1f ns/request (%+.1f%%)\n",
		path, prev.GitRev, prev.Generated, prev.OptimizedNsPerReq, cur.OptimizedNsPerReq, delta)
	return nil
}

// printTrajectoryDiff reports the delta between the last two recorded
// entries without running a measurement. A trajectory with fewer than
// two entries is not an error — there is simply nothing to diff yet —
// so the tool says so and exits cleanly (make bench-compare runs
// before the first bench-baseline on a fresh clone). A positive
// threshold turns the report into a regression gate: the diff fails if
// the newest entry's optimized ns/request is more than threshold
// percent above the previous one's (CI runs -threshold 15, so a
// recorded hot-path regression cannot land silently).
func printTrajectoryDiff(path string, threshold float64) error {
	runs, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(runs) < 2 {
		fmt.Printf("%s holds %d recorded run(s); two are needed to diff.\n", path, len(runs))
		fmt.Println("Run 'make bench-baseline' to append a measurement, then compare again.")
		return nil
	}
	a, b := runs[len(runs)-2], runs[len(runs)-1]
	if a.OptimizedNsPerReq <= 0 {
		return fmt.Errorf("%s's second-to-last entry has no optimized_ns_per_request", path)
	}
	delta := (b.OptimizedNsPerReq - a.OptimizedNsPerReq) / a.OptimizedNsPerReq * 100
	fmt.Printf("%s: last two entries\n", path)
	fmt.Printf("  %-10s %-20s %8s %8s %8s\n", "rev", "generated", "base", "opt", "speedup")
	for _, r := range []Run{a, b} {
		fmt.Printf("  %-10s %-20s %8.1f %8.1f %7.2f×\n",
			r.GitRev, r.Generated, r.BaselineNsPerReq, r.OptimizedNsPerReq, r.Speedup)
	}
	fmt.Printf("  optimized ns/request: %8.1f → %8.1f (%+.1f%%)\n",
		a.OptimizedNsPerReq, b.OptimizedNsPerReq, delta)
	if threshold > 0 && delta > threshold {
		return fmt.Errorf("optimized ns/request regressed %.1f%% (threshold %.1f%%)", delta, threshold)
	}
	return nil
}

// checkTrajectory validates a replay trajectory's schema: every entry
// must carry the core measurement fields, optional mode fields must
// travel together (a lone speedup with no measurement, or vice versa,
// means a writer bug), and recorded equivalence must never have been
// false. Old entries that predate a mode are fine — wholly absent
// optional groups are skipped.
func checkTrajectory(path string) error {
	runs, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("%s holds no runs", path)
	}
	for i, r := range runs {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s entry %d (%s): %s", path, i, r.GitRev, fmt.Sprintf(format, args...))
		}
		// git_rev may be empty in the earliest recorded entries.
		if r.Benchmark == "" || r.Generated == "" {
			return fail("missing benchmark/generated")
		}
		if r.Workload == "" || r.Policies < 1 || r.RequestsPerReplay < 1 || r.Reps < 1 {
			return fail("implausible sweep shape: workload %q, %d policies, %d requests, %d reps",
				r.Workload, r.Policies, r.RequestsPerReplay, r.Reps)
		}
		if r.BaselineNsPerReq <= 0 || r.OptimizedNsPerReq <= 0 || r.Speedup <= 0 {
			return fail("missing core measurements (baseline %.1f, optimized %.1f, speedup %.2f)",
				r.BaselineNsPerReq, r.OptimizedNsPerReq, r.Speedup)
		}
		if !r.IdenticalOutput {
			return fail("identical_output is false — an ablation mode diverged")
		}
		if (r.NoInternNsPerReq > 0) != (r.InterningSpeedup > 0) {
			return fail("nointern fields do not travel together")
		}
		// The nostructural mode's fields: all or none.
		structSet := r.NoStructuralNsPerReq != 0 || r.StructuralSpeedup != 0 ||
			r.SubsetPolicies != 0 || r.SubsetHeapNsPerReq != 0 ||
			r.SubsetNsPerReq != 0 || r.SubsetSpeedup != 0
		if structSet {
			if r.NoStructuralNsPerReq <= 0 || r.StructuralSpeedup <= 0 {
				return fail("nostructural mode fields incomplete (%.1f ns, %.2f×)",
					r.NoStructuralNsPerReq, r.StructuralSpeedup)
			}
			if r.SubsetPolicies < 1 || r.SubsetHeapNsPerReq <= 0 || r.SubsetNsPerReq <= 0 || r.SubsetSpeedup <= 0 {
				return fail("structural subset fields incomplete (%d policies, %.1f → %.1f ns, %.2f×)",
					r.SubsetPolicies, r.SubsetHeapNsPerReq, r.SubsetNsPerReq, r.SubsetSpeedup)
			}
			if r.SubsetPolicies > r.Policies {
				return fail("structural subset (%d) larger than the sweep (%d)", r.SubsetPolicies, r.Policies)
			}
		}
	}
	fmt.Printf("%s: schema ok (%d entries)\n", path, len(runs))
	return nil
}
