// Command benchreplay measures the single-replay hot path on the
// paper's 36-policy Experiment 2 sweep and records the result in a
// machine-readable trajectory (BENCH_replay.json at the repo root, one
// JSON array entry per recorded run), so the engine's ns-per-request
// history is tracked PR over PR.
//
// It times the same sweep four times in one process:
//
//   - baseline: the pre-optimization engine, reconstructed through the
//     ablation switches — generic key-loop comparators
//     (policy.DisableCompiled), per-insert entry allocation and no
//     capacity pre-sizing (core.DisableAllocOpts), per-replay day
//     recomputation (sim.DisableDayIndex), pairwise-swap heap sifts
//     (pqueue.DisableHoleSift), and the string-indexed entry map
//     (sim.DisableInterning);
//   - nointern: the compiled/alloc-free engine with only interning
//     disabled — the PR-2 endpoint, isolating the interned columnar
//     layer's contribution;
//   - optimized: everything on — compiled comparators over cached
//     derived keys, entry recycling, pre-sized heaps, hole-based sifts,
//     the shared day index, and map-free ID-indexed replay over the
//     shared interned columnar trace view;
//   - observed: the optimized engine with the observability layer
//     attached (sim.Observer: cache event hooks, the event-trace ring,
//     pprof replay spans, JSONL snapshot emission) — the obs-on vs
//     obs-off ablation that prices the enabled path, recorded as
//     obs_overhead_pct.
//
// All modes replay every combination with identical seeds, and the tool
// fails if any run's results differ between modes — the timing harness
// doubles as an end-to-end equivalence check for the compiled layers
// and a proof that observation does not perturb simulation results.
//
// Usage:
//
//	benchreplay                       # measure and print
//	benchreplay -out BENCH_replay.json        # measure and append to the trajectory
//	benchreplay -compare BENCH_replay.json    # measure and print delta vs the last entry
//	benchreplay -diff BENCH_replay.json       # print delta between the last two entries (no run)
//	benchreplay -metrics-out m.jsonl          # also keep the observed mode's JSONL stream
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/pqueue"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// Run is one measurement in the BENCH_replay.json trajectory.
type Run struct {
	Benchmark         string              `json:"benchmark"`
	GitRev            string              `json:"git_rev"`
	Workload          string              `json:"workload"`
	Scale             float64             `json:"scale"`
	Fraction          float64             `json:"fraction"`
	Policies          int                 `json:"policies"`
	RequestsPerReplay int                 `json:"requests_per_replay"`
	Reps              int                 `json:"reps"`
	BaselineNsPerReq  float64             `json:"baseline_ns_per_request"`
	NoInternNsPerReq  float64             `json:"nointern_ns_per_request,omitempty"`
	OptimizedNsPerReq float64             `json:"optimized_ns_per_request"`
	ObservedNsPerReq  float64             `json:"observed_ns_per_request,omitempty"`
	Speedup           float64             `json:"speedup"`
	InterningSpeedup  float64             `json:"interning_speedup,omitempty"`
	ObsOverheadPct    float64             `json:"obs_overhead_pct,omitempty"`
	IdenticalOutput   bool                `json:"identical_output"`
	Ablations         map[string][]string `json:"ablations,omitempty"`
	Generated         string              `json:"generated"`
}

// modeAblations documents which switches each timed mode sets; it is
// recorded verbatim in every trajectory entry.
var modeAblations = map[string][]string{
	"baseline": {
		"policy.DisableCompiled", "core.DisableAllocOpts",
		"sim.DisableDayIndex", "pqueue.DisableHoleSift", "sim.DisableInterning",
	},
	"nointern":  {"sim.DisableInterning"},
	"optimized": {},
	// Observability is off-by-default (sim.Observer == nil), so the
	// obs-on side of the ablation is the mode that *attaches* it.
	"observed": {"sim.Observer attached (cache hooks, event ring, pprof spans, JSONL snapshots)"},
}

func main() {
	var (
		wl         = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		scale      = flag.Float64("scale", 0.05, "synthetic workload scale")
		fraction   = flag.Float64("fraction", 0.10, "cache size as a fraction of MaxNeeded")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		reps       = flag.Int("reps", 3, "repetitions per mode; the fastest is kept")
		out        = flag.String("out", "", "append the result to this trajectory file")
		compare    = flag.String("compare", "", "measure and print the delta vs this trajectory's last entry")
		diff       = flag.String("diff", "", "print the delta between this trajectory's last two entries, without measuring")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement (all modes) to this file")
		metricsOut = flag.String("metrics-out", "", "write the observed mode's final JSONL metric stream to this file")
	)
	flag.Parse()

	var err error
	if *diff != "" {
		err = printTrajectoryDiff(*diff)
	} else {
		err = run(*wl, *scale, *fraction, *seed, *reps, *out, *compare, *cpuprofile, *metricsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		os.Exit(1)
	}
}

func run(wl string, scale, fraction float64, seed uint64, reps int, out, compare, cpuprofile, metricsOut string) error {
	if reps < 1 {
		reps = 1
	}
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return err
	}
	cfg.Scale = scale
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		return err
	}
	base := sim.Experiment1(tr, seed+1)
	combos := policy.AllCombos()
	// Build the shared structures outside the timed region: the day
	// index and the interned columnar view are per-trace, decoded once.
	tr.DayIndex()
	tr.Columnar()

	fmt.Printf("benchreplay: %s scale %g (%d requests), %d policies at %g×MaxNeeded, %d reps\n",
		tr.Name, scale, len(tr.Requests), len(combos), fraction, reps)

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Interleave the four modes rep by rep, keeping the fastest rep of
	// each, so machine-load drift during the run lands on all sides of
	// the ratios instead of skewing one.
	runner := sim.NewRunner(sim.RunnerConfig{Workers: 1})
	type mode struct {
		legacy, nointern, observed bool
		best                       time.Duration
		runs                       []*sim.PolicyRun
	}
	modes := []*mode{
		{legacy: true, nointern: true, best: maxDuration},  // baseline
		{legacy: false, nointern: true, best: maxDuration}, // nointern (PR-2 engine)
		{legacy: false, nointern: false, best: maxDuration},
		{legacy: false, nointern: false, observed: true, best: maxDuration},
	}
	var metricsFile *os.File
	if metricsOut != "" {
		metricsFile, err = os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer metricsFile.Close()
	}
	for r := 0; r < reps; r++ {
		for _, m := range modes {
			var mw io.Writer
			if m.observed {
				// Every observed rep pays for JSONL encoding; only the
				// final rep's stream is kept when -metrics-out is set.
				mw = io.Discard
				if metricsFile != nil && r == reps-1 {
					mw = metricsFile
				}
			}
			d, runs := sweepOnce(runner, tr, base, combos, fraction, seed, m.legacy, m.nointern, mw)
			if d < m.best {
				m.best = d
			}
			m.runs = runs
		}
	}
	total := float64(len(combos) * len(tr.Requests))
	baseNs := float64(modes[0].best.Nanoseconds()) / total
	nointernNs := float64(modes[1].best.Nanoseconds()) / total
	optNs := float64(modes[2].best.Nanoseconds()) / total
	obsNs := float64(modes[3].best.Nanoseconds()) / total

	identical := reflect.DeepEqual(modes[0].runs, modes[2].runs) &&
		reflect.DeepEqual(modes[1].runs, modes[2].runs) &&
		reflect.DeepEqual(modes[3].runs, modes[2].runs)
	if !identical {
		return fmt.Errorf("sweep results differ between modes — an ablation layer changed behavior")
	}

	res := Run{
		Benchmark:         "exp2-36policy-replay",
		GitRev:            gitRev(),
		Workload:          tr.Name,
		Scale:             scale,
		Fraction:          fraction,
		Policies:          len(combos),
		RequestsPerReplay: len(tr.Requests),
		Reps:              reps,
		BaselineNsPerReq:  baseNs,
		NoInternNsPerReq:  nointernNs,
		OptimizedNsPerReq: optNs,
		ObservedNsPerReq:  obsNs,
		Speedup:           baseNs / optNs,
		InterningSpeedup:  nointernNs / optNs,
		ObsOverheadPct:    (obsNs - optNs) / optNs * 100,
		IdenticalOutput:   identical,
		Ablations:         modeAblations,
		Generated:         time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("  baseline  (all ablation switches set):      %8.1f ns/request\n", res.BaselineNsPerReq)
	fmt.Printf("  nointern  (compiled engine, string map):    %8.1f ns/request\n", res.NoInternNsPerReq)
	fmt.Printf("  optimized (interned columnar, map-free):    %8.1f ns/request\n", res.OptimizedNsPerReq)
	fmt.Printf("  observed  (optimized + obs hooks/snapshots):%8.1f ns/request\n", res.ObservedNsPerReq)
	fmt.Printf("  speedup: %.2f× vs baseline, %.2f× vs nointern  (outputs identical: %v)\n",
		res.Speedup, res.InterningSpeedup, res.IdenticalOutput)
	fmt.Printf("  observability overhead when enabled: %+.1f%%\n", res.ObsOverheadPct)
	if metricsFile != nil {
		fmt.Printf("  observed metrics stream: %s\n", metricsOut)
	}

	if compare != "" {
		if err := printDelta(compare, res); err != nil {
			return err
		}
	}
	if out != "" {
		if err := appendRun(out, res); err != nil {
			return err
		}
		fmt.Printf("  appended to %s\n", out)
	}
	return nil
}

const maxDuration = time.Duration(1<<63 - 1)

// sweepOnce times one execution of the full combo sweep in the given
// mode, returning the wall time and the run results for cross-mode
// comparison. A non-nil metrics writer attaches the observability
// layer for the duration of the sweep (the "observed" mode), streaming
// its JSONL records there; the end-of-run summary is written outside
// the timed region.
func sweepOnce(runner *sim.Runner, tr *trace.Trace, base *sim.Exp1Result, combos []policy.Combo, fraction float64, seed uint64, legacy, nointern bool, metrics io.Writer) (time.Duration, []*sim.PolicyRun) {
	policy.DisableCompiled = legacy
	core.DisableAllocOpts = legacy
	sim.DisableDayIndex = legacy
	pqueue.DisableHoleSift = legacy
	sim.DisableInterning = nointern
	defer func() {
		policy.DisableCompiled = false
		core.DisableAllocOpts = false
		sim.DisableDayIndex = false
		pqueue.DisableHoleSift = false
		sim.DisableInterning = false
	}()
	if metrics != nil {
		o := obs.New(obs.Options{
			Metrics: metrics,
			Meta: map[string]any{
				"tool":     "benchreplay",
				"git_rev":  obs.GitRev(),
				"workload": tr.Name,
				"fraction": fraction,
				"policies": len(combos),
			},
			// The event ring rides along so the observed mode prices the
			// full enabled path: counter adds plus one ring slot store
			// per cache event — what cmd/proxy -admin and websim -listen
			// actually run.
			Ring: obs.NewEventRing(1 << 16),
		})
		o.SetExperiment("2all")
		sim.Observer = o
		defer func() {
			if err := sim.CloseObserver(runner); err != nil {
				fmt.Fprintln(os.Stderr, "benchreplay: writing metrics summary:", err)
			}
		}()
	}

	// Settle garbage from the previous rep so no mode pays for
	// another's allocations.
	runtime.GC()
	start := time.Now()
	res := sim.Experiment2R(runner, tr, base, combos, fraction, seed+2)
	return time.Since(start), res.Runs
}

// gitRev identifies the measured revision ("-dirty" when the tree has
// uncommitted changes), "unknown" outside a work tree.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}

// readTrajectory parses a trajectory file. A legacy file holding a
// single run object (the pre-trajectory schema) is read as a one-entry
// trajectory, so appending migrates it in place.
func readTrajectory(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var runs []Run
	if err := json.Unmarshal(data, &runs); err == nil {
		return runs, nil
	}
	var single Run
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return []Run{single}, nil
}

// appendRun adds res to the trajectory at path, creating it if absent.
func appendRun(path string, res Run) error {
	var runs []Run
	if _, err := os.Stat(path); err == nil {
		runs, err = readTrajectory(path)
		if err != nil {
			return err
		}
	}
	runs = append(runs, res)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printDelta reports a fresh measurement against the trajectory's last
// recorded entry.
func printDelta(path string, cur Run) error {
	runs, err := readTrajectory(path)
	if err != nil {
		return fmt.Errorf("no saved trajectory to compare against: %w", err)
	}
	if len(runs) == 0 {
		return fmt.Errorf("%s holds no runs", path)
	}
	prev := runs[len(runs)-1]
	if prev.OptimizedNsPerReq <= 0 {
		return fmt.Errorf("%s's last entry has no optimized_ns_per_request", path)
	}
	delta := (cur.OptimizedNsPerReq - prev.OptimizedNsPerReq) / prev.OptimizedNsPerReq * 100
	fmt.Printf("  vs %s (%s, %s): %8.1f → %8.1f ns/request (%+.1f%%)\n",
		path, prev.GitRev, prev.Generated, prev.OptimizedNsPerReq, cur.OptimizedNsPerReq, delta)
	return nil
}

// printTrajectoryDiff reports the delta between the last two recorded
// entries without running a measurement. A trajectory with fewer than
// two entries is not an error — there is simply nothing to diff yet —
// so the tool says so and exits cleanly (make bench-compare runs
// before the first bench-baseline on a fresh clone).
func printTrajectoryDiff(path string) error {
	runs, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(runs) < 2 {
		fmt.Printf("%s holds %d recorded run(s); two are needed to diff.\n", path, len(runs))
		fmt.Println("Run 'make bench-baseline' to append a measurement, then compare again.")
		return nil
	}
	a, b := runs[len(runs)-2], runs[len(runs)-1]
	if a.OptimizedNsPerReq <= 0 {
		return fmt.Errorf("%s's second-to-last entry has no optimized_ns_per_request", path)
	}
	delta := (b.OptimizedNsPerReq - a.OptimizedNsPerReq) / a.OptimizedNsPerReq * 100
	fmt.Printf("%s: last two entries\n", path)
	fmt.Printf("  %-10s %-20s %8s %8s %8s\n", "rev", "generated", "base", "opt", "speedup")
	for _, r := range []Run{a, b} {
		fmt.Printf("  %-10s %-20s %8.1f %8.1f %7.2f×\n",
			r.GitRev, r.Generated, r.BaselineNsPerReq, r.OptimizedNsPerReq, r.Speedup)
	}
	fmt.Printf("  optimized ns/request: %8.1f → %8.1f (%+.1f%%)\n",
		a.OptimizedNsPerReq, b.OptimizedNsPerReq, delta)
	return nil
}
