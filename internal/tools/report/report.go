// Command report runs every experiment at full scale (the paper's trace
// volumes) and prints the numbers recorded in EXPERIMENTS.md. The
// independent replays of each section fan out across a sim.Runner pool;
// the output is byte-identical for any worker count (the golden-file
// test enforces this).
package main

import (
	"fmt"
	"io"

	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/stats"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// Options configures one report run.
type Options struct {
	// Scale shrinks the synthetic workloads (1.0 = paper volume).
	Scale float64
	// Seed is the workload generation seed (the per-experiment seeds are
	// fixed, as recorded in EXPERIMENTS.md).
	Seed uint64
	// Workers bounds the replay pool; 0 means GOMAXPROCS.
	Workers int
}

func hostOf(url string) string {
	s := url
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "://" {
			s = s[i+3:]
			break
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

// Run generates every workload, drives all experiments through a
// parallel runner, and writes the report to w. It returns the runner's
// accounting so the caller can print the achieved speedup (timing is
// deliberately kept out of w: the report itself must be deterministic).
func Run(w io.Writer, opts Options) sim.RunnerStats {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	runner := sim.NewRunner(sim.RunnerConfig{Workers: opts.Workers})

	fmt.Fprintln(w, "## Experiment 1 (Figs. 3-7, MaxNeeded)")
	cfgs := workload.All(opts.Seed, opts.Scale)
	type wlResult struct {
		tr   *trace.Trace
		base *sim.Exp1Result
		line string
	}
	gen := sim.RunAll(runner, len(cfgs), func(i int) wlResult {
		cfg := cfgs[i]
		tr, vs, err := workload.GenerateValidated(cfg)
		if err != nil {
			panic(err)
		}
		b := sim.Experiment1(tr, 7)
		line := fmt.Sprintf("%-3s reqs=%d bytes=%.2fGB days=%d szchg=%.2f%% | MaxNeeded=%.0fMB meanHR=%.1f%% meanWHR=%.1f%% aggHR=%.1f%% aggWHR=%.1f%%",
			cfg.Name, len(tr.Requests), float64(tr.TotalBytes())/1e9, tr.Days(), 100*vs.SizeChangeFraction(),
			float64(b.MaxNeeded)/1e6, 100*b.MeanHR, 100*b.MeanWHR, 100*b.AggHR, 100*b.AggWHR)
		return wlResult{tr: tr, base: b, line: line}
	})
	traces := map[string]*trace.Trace{}
	bases := map[string]*sim.Exp1Result{}
	for i, cfg := range cfgs {
		traces[cfg.Name] = gen[i].tr
		bases[cfg.Name] = gen[i].base
		fmt.Fprintln(w, gen[i].line)
	}

	fmt.Fprintln(w, "\n## Experiment 2 primaries at 10% and 50% (Figs. 8-12, HR/inf %)")
	type cell struct {
		name string
		frac float64
	}
	var cells []cell
	for _, name := range workload.Names {
		for _, frac := range []float64{0.10, 0.50} {
			cells = append(cells, cell{name, frac})
		}
	}
	exp2 := sim.RunAll(runner, len(cells), func(i int) *sim.Exp2Result {
		c := cells[i]
		return sim.Experiment2R(runner, traces[c.name], bases[c.name], policy.PrimaryCombos(), c.frac, 99)
	})
	for i, c := range cells {
		fmt.Fprintf(w, "%-3s %.0f%%:", c.name, 100*c.frac)
		for _, run := range exp2[i].Runs {
			fmt.Fprintf(w, "  %s=%.1f/%.1f", run.Policy[:len(run.Policy)-7], 100*run.HRRatioMean, 100*run.WHRRatioMean)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n## Experiment 2 secondary keys on G at 10% (Fig. 15)")
	sec := sim.Experiment2SecondaryR(runner, traces["G"], bases["G"], 0.10, 7)
	for _, sr := range sec.Runs {
		fmt.Fprintf(w, "  %-11s WHRvsRand=%.2f%% peak=%.2f%% HRvsRand=%.2f%%\n",
			sr.Secondary, 100*sr.WHRvsRandom, 100*sr.PeakWHRvsRandom, 100*sr.HRvsRandom)
	}

	fmt.Fprintln(w, "\n## Experiment 3 (Figs. 16-18): L2 over all requests")
	exp3Names := []string{"BR", "C", "G"}
	exp3 := sim.RunAll(runner, len(exp3Names), func(i int) *sim.Exp3Result {
		return sim.Experiment3(traces[exp3Names[i]], bases[exp3Names[i]], 0.10, 3)
	})
	for i, name := range exp3Names {
		r := exp3[i]
		fmt.Fprintf(w, "%-3s meanL2HR=%.2f%% meanL2WHR=%.2f%% (L1: HR=%.1f%% WHR=%.1f%%)\n",
			name, 100*r.MeanL2HR, 100*r.MeanL2WHR, 100*r.L1Final.HitRate(), 100*r.L1Final.WeightedHitRate())
	}

	fmt.Fprintln(w, "\n## Experiment 4 (Figs. 19-20): BR partitioned, 10% MaxNeeded")
	e4 := sim.Experiment4R(runner, traces["BR"], bases["BR"], 0.10, 5)
	for _, p := range e4.Partitions {
		fmt.Fprintf(w, "  audio-share=%.0f%% audioWHR=%.2f%% nonaudioWHR=%.2f%% total=%.2f%%\n",
			100*p.AudioShare, 100*p.AggAudioWHR, 100*p.AggNonAudioWHR, 100*p.AggTotalWHR)
	}
	fmt.Fprintf(w, "  infinite: audioWHR=%.2f%% nonaudioWHR=%.2f%%\n",
		100*e4.InfiniteAudioWHR.Mean(), 100*e4.InfiniteNonAudioWHR.Mean())

	fmt.Fprintln(w, "\n## Figures 1-2, 13-14 (BL structure)")
	bl := traces["BL"]
	srv := map[string]int64{}
	urlBytes := map[string]int64{}
	var total int64
	last := map[string]int64{}
	var pts []stats.ScatterPoint
	seen := map[string]bool{}
	small, uniq := 0, 0
	for i := range bl.Requests {
		r := &bl.Requests[i]
		srv[hostOf(r.URL)]++
		urlBytes[r.URL] += r.Size
		total += r.Size
		if prev, ok := last[r.URL]; ok && r.Time > prev {
			pts = append(pts, stats.ScatterPoint{X: float64(r.Size), Y: float64(r.Time - prev)})
		}
		last[r.URL] = r.Time
		if !seen[r.URL] {
			seen[r.URL] = true
			uniq++
			if r.Size < 1024 {
				small++
			}
		}
	}
	fit := stats.FitZipf(stats.RankFrequency(srv))
	fmt.Fprintf(w, "Fig1: %d servers, zipf slope %.2f (R2 %.2f)\n", len(srv), fit.Slope, fit.R2)
	rf := stats.RankFrequency(urlBytes)
	var cum int64
	half := len(rf)
	for k, p := range rf {
		cum += p.Count
		if cum >= total/2 {
			half = k + 1
			break
		}
	}
	fmt.Fprintf(w, "Fig2: %d unique URLs; top %d URLs return 50%% of bytes\n", len(rf), half)
	// Request-weighted size distribution (Fig 13).
	reqSmall, req1to20 := 0, 0
	for i := range bl.Requests {
		if bl.Requests[i].Size < 1024 {
			reqSmall++
		}
		if bl.Requests[i].Size < 20480 {
			req1to20++
		}
	}
	fmt.Fprintf(w, "Fig13: %.1f%% of requests <1KB, %.1f%% <20KB (unique docs <1KB: %.1f%%)\n",
		100*float64(reqSmall)/float64(len(bl.Requests)),
		100*float64(req1to20)/float64(len(bl.Requests)),
		100*float64(small)/float64(uniq))
	cx, cy := stats.CenterOfMass(pts)
	fmt.Fprintf(w, "Fig14: center of mass size=%.0fB interref=%.1fh (%d points)\n", cx, cy/3600, len(pts))

	fmt.Fprintln(w, "\n## Experiment 5 (§5 open problem 3): shared L2, BL client split")
	popCounts := []int{2, 4, 8}
	exp5 := sim.RunAll(runner, len(popCounts), func(i int) *sim.Exp5Result {
		return sim.Experiment5R(runner, traces["BL"], bases["BL"], popCounts[i], 0.10, 31)
	})
	for i, pops := range popCounts {
		r5 := exp5[i]
		fmt.Fprintf(w, "  populations=%d sharedL2HR=%.2f%% privateL2HR=%.2f%% gain=%+.2f%% crossHits=%.1f%% crossBytes=%.1f%%\n",
			pops, 100*r5.SharedL2HR, 100*r5.PrivateL2HR, 100*r5.SharingGainHR,
			100*r5.Shared.CrossHitFraction, 100*r5.Shared.CrossByteFraction)
	}

	fmt.Fprintln(w, "\n## Classic policies at 10% (Table 3 set + extensions), BL")
	cl := sim.ExperimentClassicsR(runner, traces["BL"], bases["BL"], 0.10, 11)
	for _, run := range cl.Runs {
		fmt.Fprintf(w, "  %-14s HR/inf=%.1f%% WHR/inf=%.1f%% HR=%.1f%% WHR=%.1f%%\n",
			run.Policy, 100*run.HRRatioMean, 100*run.WHRRatioMean,
			100*run.Final.HitRate(), 100*run.Final.WeightedHitRate())
	}
	return runner.Stats()
}
