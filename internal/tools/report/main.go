// Command report runs every experiment at full scale (the paper's trace
// volumes) and prints the numbers recorded in EXPERIMENTS.md.
package main

import (
	"fmt"

	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/stats"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func hostOf(url string) string {
	s := url
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "://" {
			s = s[i+3:]
			break
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

func main() {
	traces := map[string]*trace.Trace{}
	bases := map[string]*sim.Exp1Result{}

	fmt.Println("## Experiment 1 (Figs. 3-7, MaxNeeded)")
	for _, cfg := range workload.All(42, 1.0) {
		tr, vs, err := workload.GenerateValidated(cfg)
		if err != nil {
			panic(err)
		}
		traces[cfg.Name] = tr
		b := sim.Experiment1(tr, 7)
		bases[cfg.Name] = b
		fmt.Printf("%-3s reqs=%d bytes=%.2fGB days=%d szchg=%.2f%% | MaxNeeded=%.0fMB meanHR=%.1f%% meanWHR=%.1f%% aggHR=%.1f%% aggWHR=%.1f%%\n",
			cfg.Name, len(tr.Requests), float64(tr.TotalBytes())/1e9, tr.Days(), 100*vs.SizeChangeFraction(),
			float64(b.MaxNeeded)/1e6, 100*b.MeanHR, 100*b.MeanWHR, 100*b.AggHR, 100*b.AggWHR)
	}

	fmt.Println("\n## Experiment 2 primaries at 10% and 50% (Figs. 8-12, HR/inf %)")
	for _, name := range workload.Names {
		for _, frac := range []float64{0.10, 0.50} {
			res := sim.Experiment2(traces[name], bases[name], policy.PrimaryCombos(), frac, 99)
			fmt.Printf("%-3s %.0f%%:", name, 100*frac)
			for _, run := range res.Runs {
				fmt.Printf("  %s=%.1f/%.1f", run.Policy[:len(run.Policy)-7], 100*run.HRRatioMean, 100*run.WHRRatioMean)
			}
			fmt.Println()
		}
	}

	fmt.Println("\n## Experiment 2 secondary keys on G at 10% (Fig. 15)")
	sec := sim.Experiment2Secondary(traces["G"], bases["G"], 0.10, 7)
	for _, sr := range sec.Runs {
		fmt.Printf("  %-11s WHRvsRand=%.2f%% peak=%.2f%% HRvsRand=%.2f%%\n",
			sr.Secondary, 100*sr.WHRvsRandom, 100*sr.PeakWHRvsRandom, 100*sr.HRvsRandom)
	}

	fmt.Println("\n## Experiment 3 (Figs. 16-18): L2 over all requests")
	for _, name := range []string{"BR", "C", "G"} {
		r := sim.Experiment3(traces[name], bases[name], 0.10, 3)
		fmt.Printf("%-3s meanL2HR=%.2f%% meanL2WHR=%.2f%% (L1: HR=%.1f%% WHR=%.1f%%)\n",
			name, 100*r.MeanL2HR, 100*r.MeanL2WHR, 100*r.L1Final.HitRate(), 100*r.L1Final.WeightedHitRate())
	}

	fmt.Println("\n## Experiment 4 (Figs. 19-20): BR partitioned, 10% MaxNeeded")
	e4 := sim.Experiment4(traces["BR"], bases["BR"], 0.10, 5)
	for _, p := range e4.Partitions {
		fmt.Printf("  audio-share=%.0f%% audioWHR=%.2f%% nonaudioWHR=%.2f%% total=%.2f%%\n",
			100*p.AudioShare, 100*p.AggAudioWHR, 100*p.AggNonAudioWHR, 100*p.AggTotalWHR)
	}
	fmt.Printf("  infinite: audioWHR=%.2f%% nonaudioWHR=%.2f%%\n",
		100*e4.InfiniteAudioWHR.Mean(), 100*e4.InfiniteNonAudioWHR.Mean())

	fmt.Println("\n## Figures 1-2, 13-14 (BL structure)")
	bl := traces["BL"]
	srv := map[string]int64{}
	urlBytes := map[string]int64{}
	var total int64
	last := map[string]int64{}
	var pts []stats.ScatterPoint
	seen := map[string]bool{}
	small, uniq := 0, 0
	for i := range bl.Requests {
		r := &bl.Requests[i]
		srv[hostOf(r.URL)]++
		urlBytes[r.URL] += r.Size
		total += r.Size
		if prev, ok := last[r.URL]; ok && r.Time > prev {
			pts = append(pts, stats.ScatterPoint{X: float64(r.Size), Y: float64(r.Time - prev)})
		}
		last[r.URL] = r.Time
		if !seen[r.URL] {
			seen[r.URL] = true
			uniq++
			if r.Size < 1024 {
				small++
			}
		}
	}
	fit := stats.FitZipf(stats.RankFrequency(srv))
	fmt.Printf("Fig1: %d servers, zipf slope %.2f (R2 %.2f)\n", len(srv), fit.Slope, fit.R2)
	rf := stats.RankFrequency(urlBytes)
	var cum int64
	half := len(rf)
	for k, p := range rf {
		cum += p.Count
		if cum >= total/2 {
			half = k + 1
			break
		}
	}
	fmt.Printf("Fig2: %d unique URLs; top %d URLs return 50%% of bytes\n", len(rf), half)
	// Request-weighted size distribution (Fig 13).
	reqSmall, req1to20 := 0, 0
	for i := range bl.Requests {
		if bl.Requests[i].Size < 1024 {
			reqSmall++
		}
		if bl.Requests[i].Size < 20480 {
			req1to20++
		}
	}
	fmt.Printf("Fig13: %.1f%% of requests <1KB, %.1f%% <20KB (unique docs <1KB: %.1f%%)\n",
		100*float64(reqSmall)/float64(len(bl.Requests)),
		100*float64(req1to20)/float64(len(bl.Requests)),
		100*float64(small)/float64(uniq))
	cx, cy := stats.CenterOfMass(pts)
	fmt.Printf("Fig14: center of mass size=%.0fB interref=%.1fh (%d points)\n", cx, cy/3600, len(pts))

	fmt.Println("\n## Experiment 5 (§5 open problem 3): shared L2, BL client split")
	for _, pops := range []int{2, 4, 8} {
		r5 := sim.Experiment5(traces["BL"], bases["BL"], pops, 0.10, 31)
		fmt.Printf("  populations=%d sharedL2HR=%.2f%% privateL2HR=%.2f%% gain=%+.2f%% crossHits=%.1f%% crossBytes=%.1f%%\n",
			pops, 100*r5.SharedL2HR, 100*r5.PrivateL2HR, 100*r5.SharingGainHR,
			100*r5.Shared.CrossHitFraction, 100*r5.Shared.CrossByteFraction)
	}

	fmt.Println("\n## Classic policies at 10% (Table 3 set + extensions), BL")
	cl := sim.ExperimentClassics(traces["BL"], bases["BL"], 0.10, 11)
	for _, run := range cl.Runs {
		fmt.Printf("  %-14s HR/inf=%.1f%% WHR/inf=%.1f%% HR=%.1f%% WHR=%.1f%%\n",
			run.Policy, 100*run.HRRatioMean, 100*run.WHRRatioMean,
			100*run.Final.HitRate(), 100*run.Final.WeightedHitRate())
	}
}
