package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "synthetic workload scale (1.0 = paper volume)")
		seed    = flag.Uint64("seed", 42, "workload generation seed")
		workers = flag.Int("workers", 0, "parallel replay workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	st := Run(os.Stdout, Options{Scale: *scale, Seed: *seed, Workers: *workers})
	fmt.Fprintf(os.Stderr, "report: %d replays on %d workers, wall %.1fs, cpu %.1fs, speedup %.2fx\n",
		st.RunsFinished, st.Workers, st.Wall.Seconds(), st.CPU.Seconds(), st.Speedup())
}
