package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

const (
	goldenScale = 0.02
	goldenSeed  = 42
)

// TestReportGolden pins the full report output on a reduced fixed-seed
// workload. A runner refactor that reorders rows, changes a seed
// derivation, or lets worker scheduling leak into results shows up here
// as a diff. Regenerate deliberately with: go test ./internal/tools/report -update
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	Run(&buf, Options{Scale: goldenScale, Seed: goldenSeed, Workers: 1})

	golden := filepath.Join("testdata", "report_small.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report output diverged from %s;\nrerun with -update if the change is intended.\ngot %d bytes, want %d", golden, buf.Len(), len(want))
		diffAt := 0
		for diffAt < len(want) && diffAt < buf.Len() && want[diffAt] == buf.Bytes()[diffAt] {
			diffAt++
		}
		lo := diffAt - 80
		if lo < 0 {
			lo = 0
		}
		hiW, hiG := diffAt+80, diffAt+80
		if hiW > len(want) {
			hiW = len(want)
		}
		if hiG > buf.Len() {
			hiG = buf.Len()
		}
		t.Logf("first difference at byte %d:\n want …%q\n got  …%q", diffAt, want[lo:hiW], buf.Bytes()[lo:hiG])
	}
}

// TestReportParallelMatchesSequential is the report-level determinism
// gate: any worker count must produce the same bytes.
func TestReportParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	Run(&seq, Options{Scale: goldenScale, Seed: goldenSeed, Workers: 1})
	Run(&par, Options{Scale: goldenScale, Seed: goldenSeed, Workers: 8})
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("8-worker report differs from sequential report")
	}
}
