// Command calib prints the workload generators' emergent statistics
// next to the paper's published targets: valid requests, bytes
// transferred, MaxNeeded, infinite-cache hit rates and the Table 4 type
// mix. It is the tuning loop the calibration tests automate.
package main

import (
	"fmt"

	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func main() {
	targets := map[string]struct {
		maxNeeded float64 // MB
		reqs      int
		bytes     float64 // MB
	}{
		"U": {1400, 173384, 2190}, "G": {413, 46834, 610.92},
		"C": {221, 30316, 405.7}, "BR": {198, 180132, 9610}, "BL": {408, 53881, 644.55},
	}
	for _, cfg := range workload.All(42, 1.0) {
		tr, vstats, err := workload.GenerateValidated(cfg)
		if err != nil {
			panic(err)
		}
		r := sim.Experiment1(tr, 7)
		t := targets[cfg.Name]
		fmt.Printf("%-3s reqs=%d (want %d)  bytes=%.0fMB (want %.0f)  MaxNeeded=%.0fMB (want %.0f)  days=%d\n",
			cfg.Name, len(tr.Requests), t.reqs, float64(tr.TotalBytes())/1e6, t.bytes,
			float64(r.MaxNeeded)/1e6, t.maxNeeded, tr.Days())
		fmt.Printf("    aggHR=%.1f%% aggWHR=%.1f%% meanDailyHR=%.1f%% meanDailyWHR=%.1f%%  szchg=%.2f%%\n",
			r.AggHR*100, r.AggWHR*100, r.MeanHR*100, r.MeanWHR*100, vstats.SizeChangeFraction()*100)
		// type mix
		var totB int64
		for i := range tr.Requests {
			totB += tr.Requests[i].Size
		}
		for dt := trace.DocType(0); dt < trace.NumDocTypes; dt++ {
			var nreq, nb int64
			for i := range tr.Requests {
				if tr.Requests[i].Type == dt {
					nreq++
					nb += tr.Requests[i].Size
				}
			}
			if nreq == 0 {
				continue
			}
			fmt.Printf("    %-10s refs=%5.2f%% bytes=%5.2f%%\n", dt,
				100*float64(nreq)/float64(len(tr.Requests)), 100*float64(nb)/float64(totB))
		}
	}
}
