package analysis

import (
	"fmt"
	"strings"

	"webcache/internal/stats"
)

// Render prints the report as a §2.2-style characterization.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace %s: %d requests, %.2f MB, %d days\n",
		r.Name, r.Requests, float64(r.Bytes)/1e6, r.Days)
	if r.Requests == 0 {
		return b.String()
	}

	fmt.Fprintf(&b, "\nFile type distribution (Table 4 view)\n")
	t := stats.NewTable("File type", "%Refs", "%Bytes", "Refs", "MB")
	for _, row := range r.Types {
		t.AddRow(row.Type.String(),
			fmt.Sprintf("%.2f", 100*row.RefShare),
			fmt.Sprintf("%.2f", 100*row.ByteShare),
			row.Refs,
			fmt.Sprintf("%.1f", float64(row.Bytes)/1e6))
	}
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nRequest rate: mean %.0f/day, peak %.0f/day over %d active days\n",
		r.DailyReqRate.Mean, r.DailyReqRate.Max, r.ActiveDays)

	fmt.Fprintf(&b, "\nConcentration (Figs. 1-2)\n")
	fmt.Fprintf(&b, "  unique URLs %d (one-timers %.1f%%), servers %d, clients %d\n",
		r.UniqueURLs, 100*r.OneTimerFrac, r.UniqueServers, r.UniqueClients)
	fmt.Fprintf(&b, "  top 10 URLs draw %.1f%% of requests; %d URLs return 50%% of bytes\n",
		100*r.Top10URLShare, r.URLsForHalf)
	fmt.Fprintf(&b, "  server popularity: Zipf slope %.2f (R² %.2f over %d servers)\n",
		r.ServerZipf.Slope, r.ServerZipf.R2, r.ServerZipf.N)
	fmt.Fprintf(&b, "  infinite-cache HR bound (1 - uniques/requests): %.1f%%\n",
		100*r.ConcentrationSummary())

	fmt.Fprintf(&b, "\nDocument sizes (Fig. 13), request weighted\n")
	fmt.Fprintf(&b, "  mean %.0f B, median %.0f B, p75 %.0f B, max %.0f B\n",
		r.SizeSummary.Mean, r.SizeSummary.Median, r.SizeSummary.P75, r.SizeSummary.Max)
	fmt.Fprintf(&b, "  %.1f%% of requests under 1 KB, %.1f%% under 10 KB\n",
		100*r.ReqUnder1KB, 100*r.ReqUnder10KB)
	fmt.Fprintf(&b, "  unique-document bytes (≈MaxNeeded): %.1f MB\n", float64(r.UniqueDocBytes)/1e6)
	if r.SizeHist != nil {
		b.WriteString(r.SizeHist.Render(50))
	}

	fmt.Fprintf(&b, "\nTemporal locality (Fig. 14)\n")
	fmt.Fprintf(&b, "  %d re-references; center of mass %.0f B × %.1f h\n",
		r.InterrefCount, r.InterrefCenterX, r.InterrefCenterY/3600)
	fmt.Fprintf(&b, "  inter-reference time: median %.1f h, p25 %.1f h, p75 %.1f h\n",
		r.InterrefSummary.Median/3600, r.InterrefSummary.P25/3600, r.InterrefSummary.P75/3600)
	if r.TemporalLocalityWeak(3600) {
		fmt.Fprintf(&b, "  -> weak temporal locality: LRU-style keys will perform poorly (§4.3)\n")
	} else {
		fmt.Fprintf(&b, "  -> strong temporal locality: recency keys are viable on this trace\n")
	}
	return b.String()
}
