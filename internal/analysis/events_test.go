package analysis

import (
	"strings"
	"testing"

	"webcache/internal/obs"
)

func TestProfileEvents(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.EventMiss, Time: 10, ID: -1, Size: 100},
		{Kind: obs.EventAdd, Time: 10, ID: 1, Size: 100},
		{Kind: obs.EventMiss, Time: 20, ID: -1, Size: 300},
		{Kind: obs.EventAdd, Time: 20, ID: 2, Size: 300},
		{Kind: obs.EventHit, Time: 30, ID: 1, Size: 100, NRef: 2},
		{Kind: obs.EventEvict, Time: 50, ID: 2, Size: 300, Age: 30, NRef: 1},
		{Kind: obs.EventAdd, Time: 50, ID: 3, Size: 250},
	}
	p := ProfileEvents(events)

	if p.Events != 7 || p.Hits != 1 || p.Misses != 2 || p.Adds != 3 || p.Evictions != 1 {
		t.Fatalf("counts = %+v, want 7 events / 1 hit / 2 misses / 3 adds / 1 eviction", p)
	}
	if p.EvictionAges.Mean != 30 || p.EvictionAges.Max != 30 {
		t.Errorf("eviction ages = %+v, want mean/max 30", p.EvictionAges)
	}
	if p.EvictedNRefs.Mean != 1 {
		t.Errorf("evicted NREFs mean = %v, want 1", p.EvictedNRefs.Mean)
	}
	// Occupancy trajectory: +100, +300, -300, +250.
	want := []OccupancySample{
		{Time: 10, Bytes: 100},
		{Time: 20, Bytes: 400},
		{Time: 50, Bytes: 100},
		{Time: 50, Bytes: 350},
	}
	if len(p.Occupancy) != len(want) {
		t.Fatalf("occupancy has %d samples, want %d", len(p.Occupancy), len(want))
	}
	for i, s := range want {
		if p.Occupancy[i] != s {
			t.Errorf("occupancy[%d] = %+v, want %+v", i, p.Occupancy[i], s)
		}
	}
	if p.OccupancyMax != 400 {
		t.Errorf("occupancy max = %d, want 400", p.OccupancyMax)
	}
	// Age 30 lands in the 2^4 class.
	if got := p.EvictionAgeHist.Counts[4]; got != 1 {
		t.Errorf("age-class counts = %v, want one in class 4", p.EvictionAgeHist.Counts)
	}
}

func TestAnalyzeEventsFromRing(t *testing.T) {
	ring := obs.NewEventRing(16)
	ring.Record(obs.Event{Kind: obs.EventAdd, Time: 1, ID: 1, Size: 50})
	ring.Record(obs.Event{Kind: obs.EventEvict, Time: 9, ID: 1, Size: 50, Age: 8, NRef: 3})
	p := AnalyzeEvents(ring)
	if p.Adds != 1 || p.Evictions != 1 {
		t.Fatalf("profile = %+v, want 1 add / 1 eviction", p)
	}
	if p.EvictionAges.Median != 8 {
		t.Errorf("median age = %v, want 8", p.EvictionAges.Median)
	}
}

func TestAnalyzeEventsNilRing(t *testing.T) {
	p := AnalyzeEvents(nil)
	if p.Events != 0 {
		t.Fatalf("nil ring profiled %d events", p.Events)
	}
}

// TestAnalyzeEventsEmptyRing pins the zero-event path: a ring that has
// recorded nothing profiles cleanly and the report degrades to the
// header line alone (no eviction or occupancy sections).
func TestAnalyzeEventsEmptyRing(t *testing.T) {
	p := AnalyzeEvents(obs.NewEventRing(16))
	if p.Events != 0 || p.Hits != 0 || p.Misses != 0 || p.Adds != 0 || p.Evictions != 0 {
		t.Fatalf("empty ring profile = %+v, want all zeros", p)
	}
	if len(p.Occupancy) != 0 || p.OccupancyMax != 0 {
		t.Fatalf("empty ring produced occupancy samples: %+v", p)
	}
	var sb strings.Builder
	if err := p.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "events profiled: 0") {
		t.Errorf("report missing zero-count header:\n%s", out)
	}
	for _, absent := range []string{"eviction age", "occupancy high water"} {
		if strings.Contains(out, absent) {
			t.Errorf("empty-ring report includes %q section:\n%s", absent, out)
		}
	}
}

// TestAnalyzeEventsUnwrappedRing covers the short-run case the doc
// comment promises: when fewer events than the capacity were recorded,
// the profile covers the entire stream in insertion order.
func TestAnalyzeEventsUnwrappedRing(t *testing.T) {
	ring := obs.NewEventRing(16)
	ring.Record(obs.Event{Kind: obs.EventMiss, Time: 5, ID: -1, Size: 200})
	ring.Record(obs.Event{Kind: obs.EventAdd, Time: 5, ID: 4, Size: 200})
	ring.Record(obs.Event{Kind: obs.EventHit, Time: 8, ID: 4, Size: 200, NRef: 2})
	p := AnalyzeEvents(ring)
	if p.Events != 3 || p.Misses != 1 || p.Adds != 1 || p.Hits != 1 || p.Evictions != 0 {
		t.Fatalf("profile = %+v, want the full 3-event stream", p)
	}
	if uint64(p.Events) != ring.Total() {
		t.Errorf("profiled %d events but ring recorded %d — unwrapped window must be the whole stream", p.Events, ring.Total())
	}
	if len(p.Occupancy) != 1 || p.Occupancy[0] != (OccupancySample{Time: 5, Bytes: 200}) {
		t.Errorf("occupancy = %+v, want one +200 sample at t=5", p.Occupancy)
	}
	if p.OccupancyMax != 200 {
		t.Errorf("occupancy max = %d, want 200", p.OccupancyMax)
	}
}

func TestEventProfileWriteReport(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.EventAdd, Time: 10, ID: 1, Size: 100},
		{Kind: obs.EventEvict, Time: 70, ID: 1, Size: 100, Age: 60, NRef: 2},
	}
	var sb strings.Builder
	if err := ProfileEvents(events).WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"events profiled: 2", "eviction age", "eviction-age classes", "occupancy high water"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
