package analysis

import (
	"strings"
	"testing"

	"webcache/internal/trace"
	"webcache/internal/workload"
)

func blTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := workload.BL(42)
	cfg.Scale = 0.1
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(&trace.Trace{Name: "empty"})
	if r.Requests != 0 || r.Bytes != 0 {
		t.Fatalf("empty report %+v", r)
	}
	if out := r.Render(); !strings.Contains(out, "empty") {
		t.Fatal("render lost the trace name")
	}
}

func TestAnalyzeHandBuilt(t *testing.T) {
	tr := &trace.Trace{Name: "hand", Start: 0, Requests: []trace.Request{
		{Time: 10, Client: "c1", URL: "http://s1/a.gif", Status: 200, Size: 500, Type: trace.Graphics},
		{Time: 20, Client: "c2", URL: "http://s1/b.html", Status: 200, Size: 2000, Type: trace.Text},
		{Time: 3630, Client: "c1", URL: "http://s1/a.gif", Status: 200, Size: 500, Type: trace.Graphics},
		{Time: 4000, Client: "c1", URL: "http://s2/c.au", Status: 200, Size: 9000, Type: trace.Audio},
	}}
	r := Analyze(tr)
	if r.Requests != 4 || r.Bytes != 12000 {
		t.Fatalf("requests/bytes %d/%d", r.Requests, r.Bytes)
	}
	if r.UniqueURLs != 3 || r.UniqueServers != 2 || r.UniqueClients != 2 {
		t.Fatalf("uniques %d/%d/%d", r.UniqueURLs, r.UniqueServers, r.UniqueClients)
	}
	if r.InterrefCount != 1 {
		t.Fatalf("interref count %d", r.InterrefCount)
	}
	if r.InterrefSummary.Median != 3620 {
		t.Fatalf("interref median %v", r.InterrefSummary.Median)
	}
	// a.gif: one re-reference; one-timers are b and c -> 2/3.
	if got := r.OneTimerFrac; got < 0.66 || got > 0.67 {
		t.Fatalf("one-timer fraction %v", got)
	}
	if r.ReqUnder1KB != 0.5 {
		t.Fatalf("under-1KB %v", r.ReqUnder1KB)
	}
	// MaxTheoreticalH = 1 - 3/4.
	if got := r.ConcentrationSummary(); got != 0.25 {
		t.Fatalf("concentration %v", got)
	}
	if len(r.Types) != 3 {
		t.Fatalf("%d type rows", len(r.Types))
	}
}

func TestAnalyzeBLMatchesPaperShape(t *testing.T) {
	r := Analyze(blTrace(t))
	if !r.ZipfLike() {
		t.Errorf("server popularity not Zipf-like: %+v", r.ServerZipf)
	}
	if !r.TemporalLocalityWeak(3600) {
		t.Errorf("temporal locality unexpectedly strong: median %v s", r.InterrefSummary.Median)
	}
	if r.ReqUnder10KB < 0.5 {
		t.Errorf("only %.2f of requests under 10KB; Fig. 13 mass should be small", r.ReqUnder10KB)
	}
	if r.URLsForHalf > r.UniqueURLs/10 {
		t.Errorf("byte concentration too weak: %d of %d URLs for half the bytes",
			r.URLsForHalf, r.UniqueURLs)
	}
	// The type table must cover all requests.
	var refs int64
	for _, row := range r.Types {
		refs += row.Refs
	}
	if int(refs) != r.Requests {
		t.Errorf("type rows cover %d of %d requests", refs, r.Requests)
	}
}

func TestRenderContainsSections(t *testing.T) {
	out := Analyze(blTrace(t)).Render()
	for _, want := range []string{
		"File type distribution", "Concentration", "Document sizes",
		"Temporal locality", "Zipf slope", "MaxNeeded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestHostOf(t *testing.T) {
	if got := hostOf("http://a.b/x"); got != "a.b" {
		t.Fatalf("hostOf = %q", got)
	}
	if got := hostOf("noscheme/path"); got != "noscheme" {
		t.Fatalf("hostOf = %q", got)
	}
}

func TestRequestRateStats(t *testing.T) {
	tr := &trace.Trace{Name: "rate", Start: 0, Requests: []trace.Request{
		{Time: 10, URL: "http://s/a.html", Status: 200, Size: 1},
		{Time: 20, URL: "http://s/b.html", Status: 200, Size: 1},
		{Time: 86400 + 10, URL: "http://s/c.html", Status: 200, Size: 1},
	}}
	r := Analyze(tr)
	if r.ActiveDays != 2 {
		t.Fatalf("ActiveDays = %d", r.ActiveDays)
	}
	if r.DailyReqRate.Mean != 1.5 || r.DailyReqRate.Max != 2 {
		t.Fatalf("daily rate %+v", r.DailyReqRate)
	}
	if out := r.Render(); !strings.Contains(out, "Request rate") {
		t.Fatal("render missing request rate")
	}
}
