// Package analysis characterizes Web request traces the way §2.2 of the
// paper does (using the authors' Chitra95 toolset): file-type mixes,
// popularity concentration, size distributions and temporal locality.
// Its report reproduces the quantities behind Figures 1, 2, 13 and 14
// for any common-log-format trace, synthetic or real.
package analysis

import (
	"math"
	"sort"

	"webcache/internal/stats"
	"webcache/internal/trace"
)

// TypeRow is one row of the Table 4 view.
type TypeRow struct {
	Type      trace.DocType
	Refs      int64
	Bytes     int64
	RefShare  float64
	ByteShare float64
}

// Report is a full trace characterization.
type Report struct {
	Name     string
	Requests int
	Days     int
	Bytes    int64

	// Table 4 view.
	Types []TypeRow

	// Concentration (Figs. 1-2).
	UniqueURLs      int
	UniqueServers   int
	UniqueClients   int
	OneTimerFrac    float64 // URLs referenced exactly once
	Top10URLShare   float64 // fraction of requests going to the 10 hottest URLs
	URLsForHalf     int     // URLs covering 50% of bytes (Fig. 2)
	ServerZipf      stats.ZipfFit
	URLZipf         stats.ZipfFit
	MaxTheoreticalH float64 // 1 - uniques/requests: the infinite-cache HR bound

	// Size distribution (Fig. 13), request weighted.
	SizeSummary    stats.Summary
	ReqUnder1KB    float64
	ReqUnder10KB   float64
	SizeHist       *stats.Histogram
	UniqueDocBytes int64 // the MaxNeeded approximation

	// Request rate (§2.2: "average request rates under 2000 per day").
	ActiveDays   int
	DailyReqRate stats.Summary

	// Temporal locality (Fig. 14).
	InterrefCount   int
	InterrefCenterX float64 // bytes
	InterrefCenterY float64 // seconds
	InterrefSummary stats.Summary
}

// Analyze characterizes a (validated) trace.
func Analyze(tr *trace.Trace) *Report {
	r := &Report{
		Name:     tr.Name,
		Requests: len(tr.Requests),
		Days:     tr.Days(),
	}
	if len(tr.Requests) == 0 {
		return r
	}

	var typeRefs [trace.NumDocTypes]int64
	var typeBytes [trace.NumDocTypes]int64
	urlCount := map[string]int64{}
	urlBytes := map[string]int64{}
	serverCount := map[string]int64{}
	clientSet := map[string]struct{}{}
	lastSeen := map[string]int64{}
	uniqueSize := map[string]int64{}

	dayCounts := map[int]float64{}

	hist, _ := stats.NewHistogram(0, 20480, 40)
	var pts []stats.ScatterPoint
	var interref []float64
	var under1k, under10k int

	for i := range tr.Requests {
		req := &tr.Requests[i]
		r.Bytes += req.Size
		typeRefs[req.Type]++
		typeBytes[req.Type] += req.Size
		dayCounts[req.Day(tr.Start)]++
		urlCount[req.URL]++
		urlBytes[req.URL] += req.Size
		serverCount[hostOf(req.URL)]++
		clientSet[req.Client] = struct{}{}
		uniqueSize[req.URL] = req.Size

		hist.Add(float64(req.Size))
		if req.Size < 1024 {
			under1k++
		}
		if req.Size < 10240 {
			under10k++
		}
		if prev, ok := lastSeen[req.URL]; ok && req.Time > prev {
			dt := float64(req.Time - prev)
			pts = append(pts, stats.ScatterPoint{X: float64(req.Size), Y: dt})
			interref = append(interref, dt)
		}
		lastSeen[req.URL] = req.Time
	}

	for dt := trace.DocType(0); dt < trace.NumDocTypes; dt++ {
		if typeRefs[dt] == 0 {
			continue
		}
		r.Types = append(r.Types, TypeRow{
			Type:      dt,
			Refs:      typeRefs[dt],
			Bytes:     typeBytes[dt],
			RefShare:  float64(typeRefs[dt]) / float64(r.Requests),
			ByteShare: float64(typeBytes[dt]) / float64(r.Bytes),
		})
	}

	r.UniqueURLs = len(urlCount)
	r.UniqueServers = len(serverCount)
	r.UniqueClients = len(clientSet)
	r.MaxTheoreticalH = 1 - float64(r.UniqueURLs)/float64(r.Requests)

	oneTimers := 0
	counts := make([]int64, 0, len(urlCount))
	for _, c := range urlCount {
		if c == 1 {
			oneTimers++
		}
		counts = append(counts, c)
	}
	r.OneTimerFrac = float64(oneTimers) / float64(r.UniqueURLs)
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var top10 int64
	for i := 0; i < len(counts) && i < 10; i++ {
		top10 += counts[i]
	}
	r.Top10URLShare = float64(top10) / float64(r.Requests)

	rfBytes := stats.RankFrequency(urlBytes)
	var cum int64
	r.URLsForHalf = len(rfBytes)
	for i, p := range rfBytes {
		cum += p.Count
		if cum >= r.Bytes/2 {
			r.URLsForHalf = i + 1
			break
		}
	}
	r.ServerZipf = stats.FitZipf(stats.RankFrequency(serverCount))
	r.URLZipf = stats.FitZipf(stats.RankFrequency(urlCount))

	sizes := make([]float64, 0, len(tr.Requests))
	for i := range tr.Requests {
		sizes = append(sizes, float64(tr.Requests[i].Size))
	}
	r.SizeSummary = stats.Summarize(sizes)
	r.ReqUnder1KB = float64(under1k) / float64(r.Requests)
	r.ReqUnder10KB = float64(under10k) / float64(r.Requests)
	r.SizeHist = hist
	for _, s := range uniqueSize {
		r.UniqueDocBytes += s
	}

	r.ActiveDays = len(dayCounts)
	perDay := make([]float64, 0, len(dayCounts))
	for _, c := range dayCounts {
		perDay = append(perDay, c)
	}
	r.DailyReqRate = stats.Summarize(perDay)

	r.InterrefCount = len(pts)
	r.InterrefCenterX, r.InterrefCenterY = stats.CenterOfMass(pts)
	r.InterrefSummary = stats.Summarize(interref)
	return r
}

// hostOf extracts the server from an absolute URL.
func hostOf(url string) string {
	s := url
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "://" {
			s = s[i+3:]
			break
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

// TemporalLocalityWeak reports whether the trace exhibits the paper's
// §4.3 finding: the median inter-reference time exceeds the given
// threshold (the paper reads ~4 hours off Fig. 14 and concludes LRU
// keys poorly).
func (r *Report) TemporalLocalityWeak(thresholdSeconds float64) bool {
	return r.InterrefSummary.Median >= thresholdSeconds
}

// ZipfLike reports whether server popularity follows a Zipf law with a
// respectable fit, the Fig. 1 observation.
func (r *Report) ZipfLike() bool {
	return r.ServerZipf.N >= 10 && r.ServerZipf.R2 >= 0.8 &&
		r.ServerZipf.Slope > 0.5 && r.ServerZipf.Slope < 2.5
}

// ConcentrationSummary quantifies the paper's closing observation that
// "users do not aimlessly and randomly request Web pages": the expected
// hit rate a cache could reach purely from re-references.
func (r *Report) ConcentrationSummary() float64 {
	return math.Max(0, r.MaxTheoreticalH)
}
