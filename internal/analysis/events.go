package analysis

// Event-level cache profiling: where analysis.Analyze characterizes a
// request trace (what was asked for), AnalyzeEvents characterizes a
// cache's behaviour under a policy — eviction-age and occupancy
// distributions over time, the view Einziger et al. and Olmos et al.
// use to diagnose removal policies, built from the obs.EventRing the
// cache hooks feed.

import (
	"fmt"
	"io"
	"sort"

	"webcache/internal/obs"
	"webcache/internal/stats"
)

// OccupancySample is the resident byte count after one cache event —
// the occupancy trajectory sampled at event resolution.
type OccupancySample struct {
	Time  int64 // event time, Unix seconds
	Bytes int64 // resident bytes after the event
}

// EventProfile summarizes a cache event stream.
type EventProfile struct {
	Events int // events profiled (the ring's retained window)

	Hits, Misses, Evictions, Adds int

	// Eviction-age view: how long victims were resident before the
	// policy removed them. A SIZE-like policy shows long tails (big
	// documents die young, small ones grow old); LRU's ages concentrate
	// near the recency horizon.
	EvictionAges    stats.Summary       // seconds
	EvictionAgeHist *stats.LogHistogram // power-of-two age classes
	EvictedNRefs    stats.Summary       // victims' reference counts

	// Occupancy view: resident bytes over the event window,
	// reconstructed from add/evict sizes (relative to the window's
	// start, which is 0 for a trace covering the whole run).
	Occupancy    []OccupancySample
	OccupancyMax int64
}

// AnalyzeEvents profiles the events retained in ring. The ring is a
// bounded window: for short runs it is the whole event stream, for long
// ones the most recent Cap() events — Events reports which.
func AnalyzeEvents(ring *obs.EventRing) *EventProfile {
	if ring == nil {
		return &EventProfile{}
	}
	return ProfileEvents(ring.Snapshot())
}

// ProfileEvents profiles an explicit event slice (oldest first).
func ProfileEvents(events []obs.Event) *EventProfile {
	p := &EventProfile{
		Events:          len(events),
		EvictionAgeHist: stats.NewLogHistogram(2),
	}
	var ages, nrefs []float64
	var resident int64
	for _, ev := range events {
		switch ev.Kind {
		case obs.EventHit:
			p.Hits++
		case obs.EventMiss:
			p.Misses++
		case obs.EventAdd:
			p.Adds++
			resident += ev.Size
		case obs.EventEvict:
			p.Evictions++
			resident -= ev.Size
			ages = append(ages, float64(ev.Age))
			nrefs = append(nrefs, float64(ev.NRef))
			if ev.Age > 0 {
				p.EvictionAgeHist.Add(float64(ev.Age))
			}
		}
		if ev.Kind == obs.EventAdd || ev.Kind == obs.EventEvict {
			p.Occupancy = append(p.Occupancy, OccupancySample{Time: ev.Time, Bytes: resident})
			if resident > p.OccupancyMax {
				p.OccupancyMax = resident
			}
		}
	}
	p.EvictionAges = stats.Summarize(ages)
	p.EvictedNRefs = stats.Summarize(nrefs)
	return p
}

// WriteReport renders the profile as text: the per-kind event counts,
// the eviction-age distribution (summary plus power-of-two class
// table), and the occupancy high-water mark.
func (p *EventProfile) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "events profiled: %d (hits %d, misses %d, adds %d, evictions %d)\n",
		p.Events, p.Hits, p.Misses, p.Adds, p.Evictions)
	if p.Evictions > 0 {
		fmt.Fprintf(w, "eviction age (s): mean %.1f median %.1f max %.1f\n",
			p.EvictionAges.Mean, p.EvictionAges.Median, p.EvictionAges.Max)
		fmt.Fprintf(w, "evicted NREF: mean %.2f median %.1f\n",
			p.EvictedNRefs.Mean, p.EvictedNRefs.Median)
		fmt.Fprintln(w, "eviction-age classes (power-of-two seconds):")
		bins := p.EvictionAgeHist.Bins()
		sort.Ints(bins)
		for _, b := range bins {
			lo := int64(1) << uint(b)
			fmt.Fprintf(w, "  >=%8ds  %d\n", lo, p.EvictionAgeHist.Counts[b])
		}
	}
	if len(p.Occupancy) > 0 {
		_, err := fmt.Fprintf(w, "occupancy high water (relative bytes): %d over %d samples\n",
			p.OccupancyMax, len(p.Occupancy))
		return err
	}
	return nil
}
