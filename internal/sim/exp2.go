package sim

import (
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// Exp2Result reports Experiment 2 for one workload at one cache size:
// every requested key combination's run, ranked against the infinite
// baseline (§3.2, Figs. 8–12).
type Exp2Result struct {
	Workload string
	Base     *Exp1Result
	Fraction float64
	Runs     []*PolicyRun
}

// Experiment2 runs the given key combinations on tr with a cache sized
// at fraction×MaxNeeded. Pass policy.PrimaryCombos() for the Figs. 8–12
// sweep or policy.AllCombos() for the full 36-policy design.
func Experiment2(tr *trace.Trace, base *Exp1Result, combos []policy.Combo, fraction float64, seed uint64) *Exp2Result {
	capacity := capacityFor(base, fraction)
	res := &Exp2Result{Workload: tr.Name, Base: base, Fraction: fraction}
	for i, c := range combos {
		pol := c.New(tr.Start)
		run := RunPolicy(tr, base, pol, capacity, seed+uint64(i)*7919, RunOptions{})
		run.Policy = c.String()
		res.Runs = append(res.Runs, run)
	}
	return res
}

// ExperimentClassics runs the literature policies of Table 3 (plus the
// extension policies) at fraction×MaxNeeded.
func ExperimentClassics(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2Result {
	capacity := capacityFor(base, fraction)
	pols := []policy.Policy{
		policy.NewFIFO(),
		policy.NewLRU(),
		policy.NewLFU(),
		policy.NewLRUMin(),
		policy.NewHyperG(),
		policy.NewPitkowRecker(tr.Start),
		policy.NewGDS1(),
		policy.NewGDSBytes(),
	}
	res := &Exp2Result{Workload: tr.Name, Base: base, Fraction: fraction}
	for i, pol := range pols {
		res.Runs = append(res.Runs, RunPolicy(tr, base, pol, capacity, seed+uint64(i)*104729, RunOptions{}))
	}
	return res
}

// SecondaryRun scores one secondary key against the random-secondary
// baseline (Fig. 15).
type SecondaryRun struct {
	Secondary string
	Run       *PolicyRun
	// WHRvsRandom and HRvsRandom are the mean ratios of this run's
	// daily rates to the random-secondary run's (1.0 = no effect; the
	// paper reports ≈1.01 at best).
	WHRvsRandom float64
	HRvsRandom  float64
	// PeakWHRvsRandom is the maximum daily ratio (the paper quotes NREF
	// peaking at 1.05).
	PeakWHRvsRandom float64
}

// Exp2SecondaryResult reports the Fig. 15 sweep: primary ⌊log2 SIZE⌋,
// each other key as secondary, scored against a random secondary.
type Exp2SecondaryResult struct {
	Workload string
	Fraction float64
	Random   *PolicyRun
	Runs     []*SecondaryRun
}

// Experiment2Secondary performs the Fig. 15 study on tr.
func Experiment2Secondary(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2SecondaryResult {
	capacity := capacityFor(base, fraction)
	randomRun := RunPolicy(tr, base,
		policy.Combo{Primary: policy.KeyLog2Size, Secondary: policy.KeyRandom}.New(tr.Start),
		capacity, seed, RunOptions{})
	res := &Exp2SecondaryResult{Workload: tr.Name, Fraction: fraction, Random: randomRun}
	for i, c := range policy.SecondaryCombos() {
		if c.Secondary == policy.KeyRandom {
			continue
		}
		run := RunPolicy(tr, base, c.New(tr.Start), capacity, seed+uint64(i+1)*31337, RunOptions{})
		sr := &SecondaryRun{
			Secondary:   c.Secondary.String(),
			Run:         run,
			WHRvsRandom: run.Rates.WHR.MeanRatioTo(randomRun.Rates.WHR),
			HRvsRandom:  run.Rates.HR.MeanRatioTo(randomRun.Rates.HR),
		}
		for _, p := range run.Rates.WHR.RatioTo(randomRun.Rates.WHR) {
			if p.Value > sr.PeakWHRvsRandom {
				sr.PeakWHRvsRandom = p.Value
			}
		}
		res.Runs = append(res.Runs, sr)
	}
	return res
}

func capacityFor(base *Exp1Result, fraction float64) int64 {
	capacity := int64(fraction * float64(base.MaxNeeded))
	if capacity < 1 {
		capacity = 1
	}
	return capacity
}
