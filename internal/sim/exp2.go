package sim

import (
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// Exp2Result reports Experiment 2 for one workload at one cache size:
// every requested key combination's run, ranked against the infinite
// baseline (§3.2, Figs. 8–12).
type Exp2Result struct {
	Workload string
	Base     *Exp1Result
	Fraction float64
	Runs     []*PolicyRun
}

// Experiment2 runs the given key combinations on tr with a cache sized
// at fraction×MaxNeeded. Pass policy.PrimaryCombos() for the Figs. 8–12
// sweep or policy.AllCombos() for the full 36-policy design. Runs fan
// out across the default runner's worker pool.
func Experiment2(tr *trace.Trace, base *Exp1Result, combos []policy.Combo, fraction float64, seed uint64) *Exp2Result {
	return Experiment2R(DefaultRunner(), tr, base, combos, fraction, seed)
}

// Experiment2R is Experiment2 on an explicit runner. Each run builds
// its policy and cache inside the worker, so runs share only the
// read-only trace and baseline; results come back in combo order.
func Experiment2R(r *Runner, tr *trace.Trace, base *Exp1Result, combos []policy.Combo, fraction float64, seed uint64) *Exp2Result {
	capacity := capacityFor(base, fraction)
	if Observer != nil {
		Observer.AddReplays(len(combos))
	}
	runs := RunAll(r, len(combos), func(i int) *PolicyRun {
		c := combos[i]
		run := RunPolicy(tr, base, c.New(tr.Start), capacity, seed+uint64(i)*7919, RunOptions{Label: c.String()})
		run.Policy = c.String()
		return run
	})
	return &Exp2Result{Workload: tr.Name, Base: base, Fraction: fraction, Runs: runs}
}

// ExperimentClassics runs the literature policies of Table 3 (plus the
// extension policies) at fraction×MaxNeeded.
func ExperimentClassics(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2Result {
	return ExperimentClassicsR(DefaultRunner(), tr, base, fraction, seed)
}

// ExperimentClassicsR is ExperimentClassics on an explicit runner.
func ExperimentClassicsR(r *Runner, tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2Result {
	capacity := capacityFor(base, fraction)
	// Constructors, not policies: each worker builds its own policy so
	// no mutable state crosses goroutines.
	mks := []func() policy.Policy{
		func() policy.Policy { return policy.NewFIFO() },
		func() policy.Policy { return policy.NewLRU() },
		func() policy.Policy { return policy.NewLFU() },
		func() policy.Policy { return policy.NewLRUMin() },
		func() policy.Policy { return policy.NewHyperG() },
		func() policy.Policy { return policy.NewPitkowRecker(tr.Start) },
		func() policy.Policy { return policy.NewGDS1() },
		func() policy.Policy { return policy.NewGDSBytes() },
	}
	if Observer != nil {
		Observer.AddReplays(len(mks))
	}
	runs := RunAll(r, len(mks), func(i int) *PolicyRun {
		return RunPolicy(tr, base, mks[i](), capacity, seed+uint64(i)*104729, RunOptions{})
	})
	return &Exp2Result{Workload: tr.Name, Base: base, Fraction: fraction, Runs: runs}
}

// SecondaryRun scores one secondary key against the random-secondary
// baseline (Fig. 15).
type SecondaryRun struct {
	Secondary string
	Run       *PolicyRun
	// WHRvsRandom and HRvsRandom are the mean ratios of this run's
	// daily rates to the random-secondary run's (1.0 = no effect; the
	// paper reports ≈1.01 at best).
	WHRvsRandom float64
	HRvsRandom  float64
	// PeakWHRvsRandom is the maximum daily ratio (the paper quotes NREF
	// peaking at 1.05).
	PeakWHRvsRandom float64
}

// Exp2SecondaryResult reports the Fig. 15 sweep: primary ⌊log2 SIZE⌋,
// each other key as secondary, scored against a random secondary.
type Exp2SecondaryResult struct {
	Workload string
	Fraction float64
	Random   *PolicyRun
	Runs     []*SecondaryRun
}

// Experiment2Secondary performs the Fig. 15 study on tr.
func Experiment2Secondary(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2SecondaryResult {
	return Experiment2SecondaryR(DefaultRunner(), tr, base, fraction, seed)
}

// Experiment2SecondaryR is Experiment2Secondary on an explicit runner:
// the random-secondary baseline and the five keyed runs are independent
// replays, so all six fan out together and the vs-random ratios are
// computed once every run is back.
func Experiment2SecondaryR(r *Runner, tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp2SecondaryResult {
	capacity := capacityFor(base, fraction)
	type job struct {
		combo policy.Combo
		seed  uint64
	}
	jobs := []job{{policy.Combo{Primary: policy.KeyLog2Size, Secondary: policy.KeyRandom}, seed}}
	for i, c := range policy.SecondaryCombos() {
		if c.Secondary == policy.KeyRandom {
			continue
		}
		jobs = append(jobs, job{c, seed + uint64(i+1)*31337})
	}
	if Observer != nil {
		Observer.AddReplays(len(jobs))
	}
	runs := RunAll(r, len(jobs), func(i int) *PolicyRun {
		j := jobs[i]
		return RunPolicy(tr, base, j.combo.New(tr.Start), capacity, j.seed, RunOptions{Label: j.combo.String()})
	})
	randomRun := runs[0]
	res := &Exp2SecondaryResult{Workload: tr.Name, Fraction: fraction, Random: randomRun}
	for i, run := range runs[1:] {
		sr := &SecondaryRun{
			Secondary:   jobs[i+1].combo.Secondary.String(),
			Run:         run,
			WHRvsRandom: run.Rates.WHR.MeanRatioTo(randomRun.Rates.WHR),
			HRvsRandom:  run.Rates.HR.MeanRatioTo(randomRun.Rates.HR),
		}
		for _, p := range run.Rates.WHR.RatioTo(randomRun.Rates.WHR) {
			if p.Value > sr.PeakWHRvsRandom {
				sr.PeakWHRvsRandom = p.Value
			}
		}
		res.Runs = append(res.Runs, sr)
	}
	return res
}

func capacityFor(base *Exp1Result, fraction float64) int64 {
	capacity := int64(fraction * float64(base.MaxNeeded))
	if capacity < 1 {
		capacity = 1
	}
	return capacity
}
