package sim

import (
	"runtime"
	"testing"
	"time"

	"webcache/internal/policy"
)

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(RunnerConfig{})
	if r.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers %d, want GOMAXPROCS=%d", r.Workers(), runtime.GOMAXPROCS(0))
	}
	if r := NewRunner(RunnerConfig{Workers: -3}); r.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative workers not defaulted: %d", r.Workers())
	}
	if r := NewRunner(RunnerConfig{Workers: 5}); r.Workers() != 5 {
		t.Fatalf("explicit workers %d, want 5", r.Workers())
	}
}

func TestRunAllPreservesInputOrder(t *testing.T) {
	r := NewRunner(RunnerConfig{Workers: 8})
	// Jobs finish in scrambled order (later indices do less work), but
	// results must land at their input index.
	got := RunAll(r, 64, func(i int) int {
		n := 0
		for k := 0; k < (64-i)*1000; k++ {
			n += k % 7
		}
		_ = n
		return i * i
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestRunnerDoZeroAndOne(t *testing.T) {
	r := NewRunner(RunnerConfig{Workers: 4})
	r.Do(0, func(int) { t.Fatal("job ran for n=0") })
	ran := false
	r.Do(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single job did not run")
	}
	st := r.Stats()
	if st.RunsStarted != 1 || st.RunsFinished != 1 {
		t.Fatalf("stats after two Do calls: %+v", st)
	}
}

func TestRunnerNestedDo(t *testing.T) {
	// A job that submits to the same runner must complete even when the
	// pool is saturated: the submitting goroutine runs its own jobs.
	r := NewRunner(RunnerConfig{Workers: 2})
	total := 0
	results := RunAll(r, 4, func(i int) int {
		inner := RunAll(r, 3, func(j int) int { return j + 1 })
		return inner[0] + inner[1] + inner[2]
	})
	for _, v := range results {
		total += v
	}
	if total != 4*6 {
		t.Fatalf("nested fan-out total %d, want 24", total)
	}
}

// TestRunnerStress pushes 200 small replays through a 16-worker pool;
// under -race this is the concurrency gate for the whole package.
func TestRunnerStress(t *testing.T) {
	tr := dayTrace(40)
	base := Experiment1(tr, 1)
	r := NewRunner(RunnerConfig{Workers: 16})
	runs := RunAll(r, 200, func(i int) *PolicyRun {
		combo := policy.Combo{
			Primary:   policy.TableOneKeys[i%len(policy.TableOneKeys)],
			Secondary: policy.KeyRandom,
		}
		return RunPolicy(tr, base, combo.New(tr.Start), base.MaxNeeded/4, uint64(i), RunOptions{})
	})
	for i, run := range runs {
		if run == nil {
			t.Fatalf("run %d missing", i)
		}
		if run.Final.Requests != int64(len(tr.Requests)) {
			t.Fatalf("run %d processed %d of %d requests", i, run.Final.Requests, len(tr.Requests))
		}
	}
	// Identical (combo, seed) inputs must give identical results no
	// matter which worker ran them.
	seq := NewRunner(RunnerConfig{Workers: 1})
	again := RunAll(seq, 200, func(i int) *PolicyRun {
		combo := policy.Combo{
			Primary:   policy.TableOneKeys[i%len(policy.TableOneKeys)],
			Secondary: policy.KeyRandom,
		}
		return RunPolicy(tr, base, combo.New(tr.Start), base.MaxNeeded/4, uint64(i), RunOptions{})
	})
	for i := range runs {
		if runs[i].Final != again[i].Final {
			t.Fatalf("run %d differs between 16-worker and sequential execution", i)
		}
	}

	st := r.Stats()
	if st.RunsStarted != 200 || st.RunsFinished != 200 {
		t.Fatalf("counters: %+v", st)
	}
	if st.PeakInFlight < 1 || st.PeakInFlight > 16 {
		t.Fatalf("peak in-flight %d outside [1, 16]", st.PeakInFlight)
	}
	if st.Wall <= 0 || st.CPU <= 0 {
		t.Fatalf("timing not recorded: wall=%v cpu=%v", st.Wall, st.CPU)
	}
	if st.Speedup() <= 0 {
		t.Fatalf("speedup %v", st.Speedup())
	}
}

func TestRunnerStatsIdle(t *testing.T) {
	r := NewRunner(RunnerConfig{Workers: 4})
	st := r.Stats()
	if st.RunsStarted != 0 || st.Wall != 0 || st.CPU != 0 || st.Speedup() != 0 {
		t.Fatalf("idle runner stats: %+v", st)
	}
	if st.QueueWait != 0 {
		t.Fatalf("idle queue wait %v", st.QueueWait)
	}
	if st.Workers != 4 {
		t.Fatalf("workers %d", st.Workers)
	}
}

// TestRunnerStatsAccounting is the table-driven contract for the
// runner's counters: every (workers, jobs) shape must balance started
// against finished, bound peak in-flight by the pool, and record
// non-negative monotone timing.
func TestRunnerStatsAccounting(t *testing.T) {
	cases := []struct {
		name          string
		workers, jobs int
	}{
		{"sequential", 1, 10},
		{"undersubscribed", 8, 3},
		{"saturated", 2, 40},
		{"single job", 4, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner(RunnerConfig{Workers: tc.workers})
			r.Do(tc.jobs, func(i int) {
				n := 0
				for k := 0; k < 20000; k++ {
					n += k % 3
				}
				_ = n
			})
			st := r.Stats()
			if st.RunsStarted != int64(tc.jobs) || st.RunsFinished != int64(tc.jobs) {
				t.Fatalf("started/finished = %d/%d, want %d/%d",
					st.RunsStarted, st.RunsFinished, tc.jobs, tc.jobs)
			}
			maxInFlight := tc.workers
			if tc.jobs < maxInFlight {
				maxInFlight = tc.jobs
			}
			if st.PeakInFlight < 1 || st.PeakInFlight > maxInFlight {
				t.Fatalf("peak in-flight %d outside [1, %d]", st.PeakInFlight, maxInFlight)
			}
			if st.Wall <= 0 || st.CPU <= 0 {
				t.Fatalf("timing not recorded: %+v", st)
			}
			if st.QueueWait < 0 {
				t.Fatalf("negative queue wait %v", st.QueueWait)
			}
			// Wait is summed over jobs: it can never exceed jobs × wall.
			if st.QueueWait > time.Duration(tc.jobs)*st.Wall {
				t.Fatalf("queue wait %v exceeds jobs×wall %v", st.QueueWait, time.Duration(tc.jobs)*st.Wall)
			}
		})
	}
}

// TestRunnerQueueWaitGrowsWhenSaturated checks that a saturated pool
// records queueing delay: with one worker and several slow jobs, later
// jobs wait for earlier ones, so the summed wait must cover at least
// the serialized portion before the last job.
func TestRunnerQueueWaitGrowsWhenSaturated(t *testing.T) {
	r := NewRunner(RunnerConfig{Workers: 1})
	const jobs = 4
	const nap = 10 * time.Millisecond
	r.Do(jobs, func(i int) { time.Sleep(nap) })
	st := r.Stats()
	// Job k starts after k naps; summed wait ≈ (1+2+3)×nap. Allow wide
	// scheduling slack but require over half of one nap.
	if st.QueueWait < nap/2 {
		t.Fatalf("queue wait %v on a saturated 1-worker pool, want ≥ %v", st.QueueWait, nap/2)
	}
}
