package sim

import (
	"math"
	"strings"
	"testing"
)

func TestServerOf(t *testing.T) {
	cases := []struct {
		url, want string
	}{
		{"http://www.bu.edu/courses/cs101.html", "www.bu.edu"},
		{"http://host/", "host"},
		{"http://host", "host"},
		{"https://a.b.c:8080/x/y", "a.b.c:8080"},
		{"no-scheme/path", "no-scheme"},
		{"bare", "bare"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := serverOf(tc.url); got != tc.want {
			t.Errorf("serverOf(%q) = %q, want %q", tc.url, got, tc.want)
		}
	}
}

func TestServerRTTDeterministicAndBounded(t *testing.T) {
	m := DefaultNetModel()
	servers := []string{"a.edu", "b.com", "c.org", "www.bu.edu", "x", ""}
	for _, s := range servers {
		rtt := m.ServerRTT(s)
		if rtt < m.MinRTT || rtt > m.MaxRTT {
			t.Errorf("ServerRTT(%q) = %g outside [%g, %g]", s, rtt, m.MinRTT, m.MaxRTT)
		}
		if again := m.ServerRTT(s); again != rtt {
			t.Errorf("ServerRTT(%q) not deterministic: %g then %g", s, rtt, again)
		}
	}
	// Distinct servers should not all collapse to one RTT.
	if m.ServerRTT("a.edu") == m.ServerRTT("b.com") && m.ServerRTT("b.com") == m.ServerRTT("c.org") {
		t.Error("three distinct servers share an RTT; hash looks degenerate")
	}
}

func TestNetModelPricing(t *testing.T) {
	m := &NetModel{
		LocalRTT:       0.010,
		LocalBandwidth: 1000,
		MinRTT:         0.100,
		MaxRTT:         0.100, // pin the WAN RTT so the arithmetic is exact
		WANBandwidth:   500,
	}
	const size = 1000
	// Serving from cache: two local round trips plus the local transfer.
	wantServe := 2*0.010 + float64(size)/1000
	if got := m.CacheServe(size); math.Abs(got-wantServe) > 1e-12 {
		t.Errorf("CacheServe = %g, want %g", got, wantServe)
	}
	// Origin fetch: two WAN round trips, the WAN transfer, then the
	// local serve leg.
	wantFetch := 2*0.100 + float64(size)/500 + wantServe
	if got := m.OriginFetch("s", size); math.Abs(got-wantFetch) > 1e-12 {
		t.Errorf("OriginFetch = %g, want %g", got, wantFetch)
	}
	// RefetchLatency prices the URL's host like OriginFetch.
	if got := m.RefetchLatency("http://s/x", size); math.Abs(got-wantFetch) > 1e-12 {
		t.Errorf("RefetchLatency = %g, want %g", got, wantFetch)
	}
	// A larger document must never be cheaper on either leg.
	if m.OriginFetch("s", 2000) <= m.OriginFetch("s", 1000) {
		t.Error("OriginFetch not monotone in size")
	}
}

func TestDefaultNetModelConstants(t *testing.T) {
	m := DefaultNetModel()
	if m.MinRTT >= m.MaxRTT {
		t.Fatalf("MinRTT %g >= MaxRTT %g", m.MinRTT, m.MaxRTT)
	}
	if m.WANBandwidth >= m.LocalBandwidth {
		t.Fatalf("WAN bandwidth %g not below LAN %g", m.WANBandwidth, m.LocalBandwidth)
	}
}

func TestExperiment6(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	r := NewRunner(RunnerConfig{Workers: 2})
	specs := []string{"SIZE", "LRU", "LATENCY"}
	res, err := Experiment6R(r, tr, base, specs, 0.25, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != tr.Name || len(res.Runs) != len(specs) {
		t.Fatalf("result shape: %+v", res)
	}
	for i, run := range res.Runs {
		if run.Policy != specs[i] {
			t.Errorf("run %d policy %q, want %q (input order must be preserved)", i, run.Policy, specs[i])
		}
		if run.NoCache <= 0 {
			t.Errorf("%s: no-cache cost %g", run.Policy, run.NoCache)
		}
		if run.WithCache > run.NoCache {
			t.Errorf("%s: cache made latency worse: %g > %g", run.Policy, run.WithCache, run.NoCache)
		}
		if run.SavedFraction < 0 || run.SavedFraction > 1 {
			t.Errorf("%s: saved fraction %g outside [0,1]", run.Policy, run.SavedFraction)
		}
		if run.HR < 0 || run.HR > 1 || run.WHR < 0 || run.WHR > 1 {
			t.Errorf("%s: rates HR=%g WHR=%g", run.Policy, run.HR, run.WHR)
		}
		// A cache with hits must save something under the model.
		if run.HR > 0 && run.SavedFraction == 0 {
			t.Errorf("%s: hits but zero latency saved", run.Policy)
		}
	}
}

func TestExperiment6DeterministicAcrossWorkers(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	specs := []string{"SIZE", "LRU", "NREF", "LATENCY"}
	one, err := Experiment6R(NewRunner(RunnerConfig{Workers: 1}), tr, base, specs, 0.25, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Experiment6R(NewRunner(RunnerConfig{Workers: 8}), tr, base, specs, 0.25, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Runs {
		if *one.Runs[i] != *eight.Runs[i] {
			t.Errorf("run %d differs across worker counts:\n1: %+v\n8: %+v", i, one.Runs[i], eight.Runs[i])
		}
	}
}

func TestExperiment6RejectsBadSpec(t *testing.T) {
	tr := dayTrace(10)
	base := Experiment1(tr, 1)
	if _, err := Experiment6(tr, base, []string{"SIZE", "NOT-A-POLICY"}, 0.25, nil, 1); err == nil {
		t.Fatal("invalid policy spec accepted")
	}
}

func TestRenderExp6(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	res, err := Experiment6R(NewRunner(RunnerConfig{Workers: 2}), tr, base, []string{"SIZE", "LRU"}, 0.25, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderExp6(res)
	for _, want := range []string{"Experiment 6", tr.Name, "SIZE", "LRU", "Latency saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}
