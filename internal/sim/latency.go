package sim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/stats"
	"webcache/internal/trace"
)

// Experiment 6 (extension): the paper's third criterion. §1 lists three
// quantities a proxy can reduce — requests reaching servers, network
// volume, and "the latency that an end-user experiences"; the authors
// could only study the first two ("our traces have insufficient
// information on timing... a measure such as transfer time avoided is
// appropriate"). With a synthetic network cost model the third becomes
// measurable: every request is priced as connection setup plus transfer
// at the bottleneck bandwidth, and each policy is scored by the fraction
// of total retrieval time its cache avoids. This also evaluates the §5
// refetch-latency sorting key against SIZE on the objective it was
// designed for.

// NetModel prices retrievals with 1995-era constants.
type NetModel struct {
	// LocalRTT and LocalBandwidth describe the client↔proxy path.
	LocalRTT       float64 // seconds
	LocalBandwidth float64 // bytes/second
	// MinRTT/MaxRTT bound per-server round trips; a server's RTT is a
	// deterministic hash of its name (nearby campus servers to
	// transatlantic links).
	MinRTT, MaxRTT float64
	// WANBandwidth is the bottleneck transfer rate from origin servers.
	WANBandwidth float64
}

// DefaultNetModel returns constants plausible for 1995: 10 ms LAN RTT,
// 1 MB/s LAN, 50–600 ms WAN RTTs, 25 kB/s WAN transfer.
func DefaultNetModel() *NetModel {
	return &NetModel{
		LocalRTT:       0.010,
		LocalBandwidth: 1 << 20,
		MinRTT:         0.050,
		MaxRTT:         0.600,
		WANBandwidth:   25 * 1024,
	}
}

// ServerRTT returns the deterministic round-trip time to a server.
func (m *NetModel) ServerRTT(server string) float64 {
	h := fnv.New32a()
	h.Write([]byte(server))
	frac := float64(h.Sum32()%1000) / 999
	return m.MinRTT + frac*(m.MaxRTT-m.MinRTT)
}

// OriginFetch prices retrieving size bytes from the named server
// through the proxy: TCP setup + request round trip, then the transfer.
func (m *NetModel) OriginFetch(server string, size int64) float64 {
	rtt := m.ServerRTT(server)
	return 2*rtt + float64(size)/m.WANBandwidth + m.CacheServe(size)
}

// CacheServe prices serving size bytes from the proxy to the client.
func (m *NetModel) CacheServe(size int64) float64 {
	return 2*m.LocalRTT + float64(size)/m.LocalBandwidth
}

// RefetchLatency is the LatencyOf hook for core.Config: the estimated
// cost of refetching a document, which the KeyLatency policy sorts on.
func (m *NetModel) RefetchLatency(url string, size int64) float64 {
	return m.OriginFetch(serverOf(url), size)
}

// serverOf extracts the host from an absolute URL.
func serverOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}

// LatencyRun scores one policy on the latency criterion.
type LatencyRun struct {
	Policy string
	// NoCache and WithCache are total user-perceived retrieval seconds.
	NoCache   float64
	WithCache float64
	// SavedFraction is the paper's "transfer time avoided": the share of
	// retrieval time the cache eliminated.
	SavedFraction float64
	HR, WHR       float64
}

// Exp6Result compares policies on latency saved.
type Exp6Result struct {
	Workload string
	Fraction float64
	Model    *NetModel
	Runs     []*LatencyRun
}

// Experiment6 replays tr through each policy spec at fraction×MaxNeeded
// and measures transfer time avoided under the model (nil = defaults).
func Experiment6(tr *trace.Trace, base *Exp1Result, specs []string, fraction float64, model *NetModel, seed uint64) (*Exp6Result, error) {
	return Experiment6R(DefaultRunner(), tr, base, specs, fraction, model, seed)
}

// Experiment6R is Experiment6 on an explicit runner: specs are
// validated up front, then each priced replay fans out with its policy
// and cache built inside the worker.
func Experiment6R(r *Runner, tr *trace.Trace, base *Exp1Result, specs []string, fraction float64, model *NetModel, seed uint64) (*Exp6Result, error) {
	if model == nil {
		model = DefaultNetModel()
	}
	for _, spec := range specs {
		if _, err := policy.Parse(spec, tr.Start); err != nil {
			return nil, fmt.Errorf("sim: experiment 6 policy %q: %w", spec, err)
		}
	}
	capacity := capacityFor(base, fraction)
	if Observer != nil {
		Observer.AddReplays(len(specs))
	}
	runs := RunAll(r, len(specs), func(i int) *LatencyRun {
		spec := specs[i]
		pol, err := policy.Parse(spec, tr.Start)
		if err != nil { // validated above; unreachable
			panic(err)
		}
		cfg := core.Config{
			Capacity:  capacity,
			Policy:    pol,
			Seed:      seed + uint64(i)*101,
			LatencyOf: model.RefetchLatency,
		}
		o := Observer
		if o != nil {
			cfg.Hooks = cacheHooks(o)
		}
		cache := core.New(cfg)
		run := &LatencyRun{Policy: spec}
		replay := func() {
			for j := range tr.Requests {
				req := &tr.Requests[j]
				cost := model.OriginFetch(serverOf(req.URL), req.Size)
				run.NoCache += cost
				if cache.Access(req) {
					run.WithCache += model.CacheServe(req.Size)
				} else {
					run.WithCache += cost
				}
			}
		}
		if o != nil {
			observeReplay(o, spec, tr.Name, capacity, replay, cache.Stats)
		} else {
			replay()
		}
		st := cache.Stats()
		run.HR = st.HitRate()
		run.WHR = st.WeightedHitRate()
		if run.NoCache > 0 {
			run.SavedFraction = 1 - run.WithCache/run.NoCache
		}
		return run
	})
	return &Exp6Result{Workload: tr.Name, Fraction: fraction, Model: model, Runs: runs}, nil
}

// RenderExp6 prints the latency comparison, best saver first.
func RenderExp6(r *Exp6Result) string {
	runs := make([]*LatencyRun, len(r.Runs))
	copy(runs, r.Runs)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].SavedFraction > runs[j].SavedFraction })
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 6 — workload %s, latency saved at %.0f%% of MaxNeeded\n", r.Workload, 100*r.Fraction)
	fmt.Fprintf(&b, "  (network model: WAN RTT %.0f-%.0f ms, WAN %.0f kB/s)\n",
		1000*r.Model.MinRTT, 1000*r.Model.MaxRTT, r.Model.WANBandwidth/1024)
	t := stats.NewTable("Policy", "Latency saved %", "HR %", "WHR %", "No-cache hours", "Cached hours")
	for _, run := range runs {
		t.AddRow(run.Policy,
			fmt.Sprintf("%.2f", 100*run.SavedFraction),
			fmt.Sprintf("%.1f", 100*run.HR),
			fmt.Sprintf("%.1f", 100*run.WHR),
			fmt.Sprintf("%.1f", run.NoCache/3600),
			fmt.Sprintf("%.1f", run.WithCache/3600))
	}
	b.WriteString(t.String())
	return b.String()
}
