package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner fans independent cache replays out across a bounded pool of
// goroutines. Every experiment in this package is a set of replays that
// share only a read-only *trace.Trace and baseline result; all mutable
// per-run state (the Cache, the Policy, the replay counters) is built
// inside the submitted job, so runs never share memory and the results
// are byte-identical to a sequential execution regardless of worker
// count or completion order. The determinism tests in
// determinism_test.go enforce that contract.
//
// Do may be called reentrantly (a job may itself submit work to the
// same runner): the submitting goroutine always participates as a
// worker, so nested submissions make progress even when every pool slot
// is busy.
type Runner struct {
	workers int

	// Helper-goroutine budget shared by all Do calls on this runner, so
	// nested fan-outs cannot multiply the pool beyond the configured
	// bound. Capacity is workers-1: the caller of Do is always the
	// remaining worker.
	helpers chan struct{}

	started   atomic.Int64
	finished  atomic.Int64
	inFlight  atomic.Int64
	peak      atomic.Int64
	cpuNanos  atomic.Int64
	waitNanos atomic.Int64

	mu          sync.Mutex
	activeCalls int
	wallStart   time.Time
	wall        time.Duration
}

// RunnerConfig configures a Runner.
type RunnerConfig struct {
	// Workers bounds the number of replays running concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
}

// RunnerStats is a snapshot of a runner's accounting, used by the
// report tool to print the parallel speedup.
type RunnerStats struct {
	Workers      int
	RunsStarted  int64
	RunsFinished int64
	PeakInFlight int
	// Wall is the union of time intervals during which at least one Do
	// call was active; CPU is the summed duration of every job. Their
	// ratio is the effective parallel speedup.
	Wall time.Duration
	CPU  time.Duration
	// QueueWait is the summed delay between each job's submission (its
	// Do call starting) and a worker claiming it — the time work spent
	// queued behind a saturated pool. QueueWait/RunsFinished is the
	// mean per-job wait the observability summary reports.
	QueueWait time.Duration
}

// Speedup returns CPU/Wall: how many sequential seconds of replay work
// were retired per wall-clock second.
func (s RunnerStats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.CPU) / float64(s.Wall)
}

// NewRunner returns a runner with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: w, helpers: make(chan struct{}, w-1)}
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// Stats returns a snapshot of the runner's accumulated accounting.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	wall := r.wall
	if r.activeCalls > 0 {
		wall += time.Since(r.wallStart)
	}
	r.mu.Unlock()
	return RunnerStats{
		Workers:      r.workers,
		RunsStarted:  r.started.Load(),
		RunsFinished: r.finished.Load(),
		PeakInFlight: int(r.peak.Load()),
		Wall:         wall,
		CPU:          time.Duration(r.cpuNanos.Load()),
		QueueWait:    time.Duration(r.waitNanos.Load()),
	}
}

// Do runs job(0)..job(n-1) on the pool and returns once all have
// finished. Jobs are claimed in index order but may complete in any
// order; the caller is responsible for writing results to per-index
// slots (see RunAll).
func (r *Runner) Do(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	r.enterCall()
	defer r.exitCall()

	submitted := time.Now()
	var next atomic.Int64
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			r.runJob(i, submitted, job)
		}
	}

	var wg sync.WaitGroup
spawn:
	for k := 0; k < r.workers-1 && k < n-1; k++ {
		select {
		case r.helpers <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-r.helpers }()
				worker()
			}()
		default: // pool exhausted (nested Do); the caller still runs
			break spawn
		}
	}
	worker()
	wg.Wait()
}

func (r *Runner) runJob(i int, submitted time.Time, job func(i int)) {
	r.started.Add(1)
	cur := r.inFlight.Add(1)
	for {
		p := r.peak.Load()
		if cur <= p || r.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	begin := time.Now()
	r.waitNanos.Add(int64(begin.Sub(submitted)))
	defer func() {
		r.cpuNanos.Add(int64(time.Since(begin)))
		r.inFlight.Add(-1)
		r.finished.Add(1)
	}()
	job(i)
}

func (r *Runner) enterCall() {
	r.mu.Lock()
	r.activeCalls++
	if r.activeCalls == 1 {
		r.wallStart = time.Now()
	}
	r.mu.Unlock()
}

func (r *Runner) exitCall() {
	r.mu.Lock()
	r.activeCalls--
	if r.activeCalls == 0 {
		r.wall += time.Since(r.wallStart)
	}
	r.mu.Unlock()
}

// RunAll runs job(0)..job(n-1) on the pool and returns the results in
// input order, regardless of completion order.
func RunAll[T any](r *Runner, n int, job func(i int) T) []T {
	out := make([]T, n)
	r.Do(n, func(i int) { out[i] = job(i) })
	return out
}

var (
	defaultRunner     *Runner
	defaultRunnerOnce sync.Once
)

// DefaultRunner returns the shared package-level runner
// (GOMAXPROCS workers), used by the experiment entry points that do not
// take an explicit runner.
func DefaultRunner() *Runner {
	defaultRunnerOnce.Do(func() { defaultRunner = NewRunner(RunnerConfig{}) })
	return defaultRunner
}
