package sim

import (
	"testing"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/pqueue"
)

// Full-replay microbenchmarks per policy family, the hot path the
// compiled-comparator work targets. Each reports ns/request alongside
// ns/op, and each family runs in two modes: the optimized engine and
// the pre-optimization engine reconstructed through the ablation
// switches, so
//
//	go test ./internal/sim -bench Replay -benchmem
//
// shows the compiled layer's contribution per family. The 36-policy
// aggregate number lives in BENCH_replay.json (make bench-baseline).

// replayFamilies samples one representative policy per structural
// family: a single-key heap, a two-key heap, a day-keyed heap, the
// scan-based LRU-MIN, the three-key Hyper-G, and the float-priority
// GreedyDual-Size.
var replayFamilies = []struct {
	name string
	spec string
}{
	{"Size", "SIZE"},
	{"SizeATime", "SIZE/ATIME"},
	{"PitkowRecker", "Pitkow-Recker"},
	{"LRUMin", "LRU-MIN"},
	{"HyperG", "Hyper-G"},
	{"GDSize", "GD-Size(1)"},
}

func benchmarkReplayPolicy(b *testing.B, spec string, legacy bool) {
	tr, base := benchExp2Workload(b)
	policy.DisableCompiled = legacy
	core.DisableAllocOpts = legacy
	DisableDayIndex = legacy
	pqueue.DisableHoleSift = legacy
	DisableInterning = legacy
	defer func() {
		policy.DisableCompiled = false
		core.DisableAllocOpts = false
		DisableDayIndex = false
		pqueue.DisableHoleSift = false
		DisableInterning = false
	}()
	capacity := base.MaxNeeded / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.Parse(spec, tr.Start)
		if err != nil {
			b.Fatal(err)
		}
		run := RunPolicy(tr, base, pol, capacity, 3, RunOptions{})
		if run.Final.Requests == 0 {
			b.Fatal("empty replay")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr.Requests)), "ns/request")
}

func BenchmarkReplay(b *testing.B) {
	for _, f := range replayFamilies {
		b.Run(f.name, func(b *testing.B) { benchmarkReplayPolicy(b, f.spec, false) })
	}
}

func BenchmarkReplayGeneric(b *testing.B) {
	for _, f := range replayFamilies {
		b.Run(f.name, func(b *testing.B) { benchmarkReplayPolicy(b, f.spec, true) })
	}
}
