package sim

import (
	"hash/fnv"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/trace"
)

// Experiment 5 implements §5 open problem 3 of the paper: "How would
// this hit rate change if a single second level cache handled misses
// from a set of primary caches? ... how much commonality exists between
// the workloads if they share a single second level cache?"
//
// The client population of one workload is split into P sub-populations
// by client name (labs within the department); each gets its own
// first-level cache of (fraction × MaxNeeded)/P with the SIZE policy,
// and all of them share one infinite second-level cache. The same split
// is also run with *private* second-level caches, so the sharing gain
// and the cross-population commonality are measured directly.

// Exp5Result reports the shared-L2 study.
type Exp5Result struct {
	Workload    string
	Populations int
	Fraction    float64

	// Shared hierarchy results.
	Shared core.SharedL2Stats
	// SharedL2HR / WHR over all requests and bytes.
	SharedL2HR  float64
	SharedL2WHR float64

	// Private: the same populations with a private infinite L2 each.
	PrivateL2HR  float64
	PrivateL2WHR float64

	// SharingGainHR is SharedL2HR − PrivateL2HR: the extra hit rate that
	// exists only because the populations share the second level.
	SharingGainHR  float64
	SharingGainWHR float64
}

// Experiment5 runs the shared-L2 study with P populations.
func Experiment5(tr *trace.Trace, base *Exp1Result, populations int, fraction float64, seed uint64) *Exp5Result {
	return Experiment5R(DefaultRunner(), tr, base, populations, fraction, seed)
}

// Experiment5R is Experiment5 on an explicit runner. The shared-L2 and
// private-L2 hierarchies never exchange state, so the two full-trace
// passes run as independent jobs; each builds its own caches inside the
// worker.
func Experiment5R(r *Runner, tr *trace.Trace, base *Exp1Result, populations int, fraction float64, seed uint64) *Exp5Result {
	if populations < 1 {
		populations = 1
	}
	perL1 := capacityFor(base, fraction) / int64(populations)
	if perL1 < 1 {
		perL1 = 1
	}

	mkL1 := func(i int) core.Config {
		return core.Config{
			Capacity: perL1,
			Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
			Seed:     seed + uint64(i)*31,
		}
	}

	var reqs, bytes int64
	var sharedHits, sharedBH, privHits, privBH int64
	var sharedStats core.SharedL2Stats
	r.Do(2, func(j int) {
		if j == 0 {
			// Shared run: every population misses into one infinite L2.
			l1s := make([]core.Config, populations)
			for i := range l1s {
				l1s[i] = mkL1(i)
			}
			shared := core.NewSharedL2(l1s, core.Config{Capacity: 0, Seed: seed + 1000})
			for i := range tr.Requests {
				req := &tr.Requests[i]
				pop := populationOf(req.Client, populations)
				reqs++
				bytes += req.Size
				if _, h2 := shared.Access(pop, req); h2 {
					sharedHits++
					sharedBH += req.Size
				}
			}
			sharedStats = shared.Stats()
			return
		}
		// Private run: per-population two-level hierarchies.
		private := make([]*core.TwoLevel, populations)
		for i := range private {
			private[i] = core.NewTwoLevel(mkL1(i+populations), core.Config{Capacity: 0, Seed: seed + 2000 + uint64(i)})
		}
		for i := range tr.Requests {
			req := &tr.Requests[i]
			if _, h2 := private[populationOf(req.Client, populations)].Access(req); h2 {
				privHits++
				privBH += req.Size
			}
		}
	})

	res := &Exp5Result{
		Workload:    tr.Name,
		Populations: populations,
		Fraction:    fraction,
		Shared:      sharedStats,
	}
	if reqs > 0 {
		res.SharedL2HR = float64(sharedHits) / float64(reqs)
		res.PrivateL2HR = float64(privHits) / float64(reqs)
		res.SharingGainHR = res.SharedL2HR - res.PrivateL2HR
	}
	if bytes > 0 {
		res.SharedL2WHR = float64(sharedBH) / float64(bytes)
		res.PrivateL2WHR = float64(privBH) / float64(bytes)
		res.SharingGainWHR = res.SharedL2WHR - res.PrivateL2WHR
	}
	return res
}

// populationOf assigns a client to one of n populations by name hash,
// so a client is always in the same population.
func populationOf(client string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(client))
	return int(h.Sum32() % uint32(n))
}
