package sim

import (
	"reflect"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// The runner's headline guarantee: for every experiment, the results of
// a parallel execution are deeply equal to a sequential one. These
// tests run each experiment under Workers:1 and Workers:8 on seeded
// workloads and require reflect.DeepEqual; they are the gate a runner
// refactor must pass, and `make race` runs them under the race
// detector.

// detTrace generates a reduced validated workload for determinism runs.
func detTrace(t *testing.T, name string, genSeed uint64) *trace.Trace {
	t.Helper()
	cfg, err := workload.ByName(name, genSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scale = 0.02
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func seqAndPar() (*Runner, *Runner) {
	return NewRunner(RunnerConfig{Workers: 1}), NewRunner(RunnerConfig{Workers: 8})
}

// requireEqual fails unless got (parallel) deeply equals want
// (sequential).
func requireEqual(t *testing.T, what string, want, got any) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: parallel result differs from sequential", what)
	}
}

// TestDeterminismSeedMatrix runs the primary-key sweep of Experiment 2
// across 3 experiment seeds × 2 workloads; it is fast enough to stay in
// -short mode.
func TestDeterminismSeedMatrix(t *testing.T) {
	seq, par := seqAndPar()
	for _, wl := range []string{"C", "BL"} {
		tr := detTrace(t, wl, 5)
		base := Experiment1(tr, 1)
		for _, seed := range []uint64{1, 2, 3} {
			want := Experiment2R(seq, tr, base, policy.PrimaryCombos(), 0.10, seed)
			got := Experiment2R(par, tr, base, policy.PrimaryCombos(), 0.10, seed)
			requireEqual(t, "Experiment2 "+wl, want, got)
		}
	}
}

func TestDeterminismExperiment2AllCombos(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "C", 7)
	base := Experiment1(tr, 1)
	requireEqual(t, "Experiment2 all combos",
		Experiment2R(seq, tr, base, policy.AllCombos(), 0.10, 2),
		Experiment2R(par, tr, base, policy.AllCombos(), 0.10, 2))
}

func TestDeterminismExperiment2Secondary(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "G", 11)
	base := Experiment1(tr, 1)
	requireEqual(t, "Experiment2Secondary",
		Experiment2SecondaryR(seq, tr, base, 0.10, 2),
		Experiment2SecondaryR(par, tr, base, 0.10, 2))
}

func TestDeterminismClassics(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "BL", 13)
	base := Experiment1(tr, 1)
	requireEqual(t, "ExperimentClassics",
		ExperimentClassicsR(seq, tr, base, 0.10, 2),
		ExperimentClassicsR(par, tr, base, 0.10, 2))
}

func TestDeterminismTwoLevelStudy(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "C", 17)
	base := Experiment1(tr, 1)
	fractions := []float64{0.05, 0.10, 0.50}
	requireEqual(t, "TwoLevelStudy",
		TwoLevelStudy(seq, tr, base, fractions, 3),
		TwoLevelStudy(par, tr, base, fractions, 3))
}

func TestDeterminismPartitionStudy(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "BR", 19)
	base := Experiment1(tr, 1)
	requireEqual(t, "Experiment4",
		Experiment4R(seq, tr, base, 0.10, 2),
		Experiment4R(par, tr, base, 0.10, 2))
}

func TestDeterminismSharedL2(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "BL", 23)
	base := Experiment1(tr, 1)
	requireEqual(t, "Experiment5",
		Experiment5R(seq, tr, base, 4, 0.10, 2),
		Experiment5R(par, tr, base, 4, 0.10, 2))
}

func TestDeterminismExperiment6(t *testing.T) {
	seq, par := seqAndPar()
	tr := detTrace(t, "BL", 29)
	base := Experiment1(tr, 1)
	specs := []string{"SIZE", "LATENCY", "LRU", "GD-Latency"}
	want, err := Experiment6R(seq, tr, base, specs, 0.10, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Experiment6R(par, tr, base, specs, 0.10, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "Experiment6", want, got)
}

// TestDeterminismRepeatedParallel guards against order-dependent state
// inside a single runner: the same submission twice on one pool must
// agree with itself.
func TestDeterminismRepeatedParallel(t *testing.T) {
	_, par := seqAndPar()
	tr := detTrace(t, "C", 31)
	base := Experiment1(tr, 1)
	a := Experiment2R(par, tr, base, policy.PrimaryCombos(), 0.10, 9)
	b := Experiment2R(par, tr, base, policy.PrimaryCombos(), 0.10, 9)
	requireEqual(t, "repeated parallel Experiment2", a, b)
}
