package sim

import (
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/policy"
)

// Observer, when non-nil, is the session's observability sink: every
// RunPolicy/Experiment1/Experiment6 replay runs under pprof labels
// (policy=, workload=, experiment=) and emits an obs.ReplaySnapshot
// with its outcome counters and timing, and every cache is built with
// event hooks feeding the observer's metric registry.
//
// It is nil by default — the disabled path costs one nil check per
// replay and nothing per request (see core.CacheHooks) — and is set
// before an experiment starts (websim wires it from -metrics-out /
// -progress), never mid-run: replays fan out across goroutines and
// consult it once at start.
var Observer *obs.Observer

// cacheHooks builds core event hooks feeding o's registry and, when o
// carries an event ring, the event-level trace. The counters are
// resolved once per replay here, so the per-event work is a single
// atomic add (plus one ring slot store when tracing is on — the cost
// benchreplay's "observed" mode prices).
func cacheHooks(o *obs.Observer) core.CacheHooks {
	reg := o.Registry()
	hits := reg.Counter("cache.hits")
	misses := reg.Counter("cache.misses")
	evictions := reg.Counter("cache.evictions")
	evictedBytes := reg.Counter("cache.evicted_bytes")
	inserts := reg.Counter("cache.inserts")
	ring := o.Ring()
	if ring == nil {
		return core.CacheHooks{
			OnHit:   func(*policy.Entry) { hits.Inc() },
			OnMiss:  func(int64, int64) { misses.Inc() },
			OnEvict: func(e *policy.Entry, now int64) { evictions.Inc(); evictedBytes.Add(e.Size) },
			OnAdd:   func(*policy.Entry) { inserts.Inc() },
		}
	}
	return core.CacheHooks{
		OnHit: func(e *policy.Entry) {
			hits.Inc()
			// e.ATime was just refreshed to the request time — it is the
			// event timestamp, no extra plumbing needed.
			ring.Record(obs.Event{Kind: obs.EventHit, Time: e.ATime, ID: e.ID, Size: e.Size, NRef: e.NRef})
		},
		OnMiss: func(size, now int64) {
			misses.Inc()
			ring.Record(obs.Event{Kind: obs.EventMiss, Time: now, ID: -1, Size: size})
		},
		OnEvict: func(e *policy.Entry, now int64) {
			evictions.Inc()
			evictedBytes.Add(e.Size)
			ring.Record(obs.Event{Kind: obs.EventEvict, Time: now, ID: e.ID, Size: e.Size, Age: now - e.ETime, NRef: e.NRef})
		},
		OnAdd: func(e *policy.Entry) {
			inserts.Inc()
			// e.ETime is the insert time by construction.
			ring.Record(obs.Event{Kind: obs.EventAdd, Time: e.ETime, ID: e.ID, Size: e.Size})
		},
	}
}

// observeReplay runs fn (one whole-trace replay) under pprof labels and
// emits its snapshot: fn's wall time plus the cache's final counters.
// stats must read the replay's cache after fn returns.
func observeReplay(o *obs.Observer, policyName, workloadName string, capacity int64, fn func(), stats func() core.Stats) {
	labels := []string{
		"policy", policyName,
		"workload", workloadName,
		"experiment", o.Experiment(),
	}
	start := time.Now()
	obs.Span(labels, fn)
	elapsed := time.Since(start)
	st := stats()
	snap := obs.ReplaySnapshot{
		Workload:           workloadName,
		Policy:             policyName,
		Capacity:           capacity,
		Requests:           st.Requests,
		Hits:               st.Hits,
		Misses:             st.Requests - st.Hits,
		BytesRequested:     st.BytesRequested,
		BytesHit:           st.BytesHit,
		Evictions:          st.Evictions,
		EvictedBytes:       st.EvictedBytes,
		SizeChanges:        st.SizeChanges,
		HeapPeak:           st.MaxDocs,
		OccupancyHighWater: st.MaxUsed,
		ReplayNs:           elapsed.Nanoseconds(),
	}
	if st.Requests > 0 {
		snap.NsPerRequest = float64(elapsed.Nanoseconds()) / float64(st.Requests)
	}
	o.EmitReplay(snap)
}

// runnerSummary converts a runner's accounting into the observer's
// end-of-run summary record.
func runnerSummary(st RunnerStats) obs.RunSummary {
	sum := obs.RunSummary{
		Workers:      st.Workers,
		WallNs:       st.Wall.Nanoseconds(),
		CPUNs:        st.CPU.Nanoseconds(),
		Speedup:      st.Speedup(),
		QueueWaitNs:  st.QueueWait.Nanoseconds(),
		PeakInFlight: st.PeakInFlight,
	}
	if st.RunsFinished > 0 {
		sum.MeanQueueNs = st.QueueWait.Nanoseconds() / st.RunsFinished
	}
	return sum
}

// CloseObserver emits the end-of-run summary built from r's accounting
// (r may be nil) into the current Observer and detaches it. It is the
// CLI-facing teardown: call it once after the last experiment.
func CloseObserver(r *Runner) error {
	o := Observer
	if o == nil {
		return nil
	}
	Observer = nil
	var sum obs.RunSummary
	if r != nil {
		sum = runnerSummary(r.Stats())
	}
	return o.Close(sum)
}
