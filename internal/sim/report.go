package sim

import (
	"fmt"
	"sort"
	"strings"

	"webcache/internal/policy"
	"webcache/internal/stats"
	"webcache/internal/trace"
)

// This file renders experiment results as the text tables and figure
// series the paper reports, shared by cmd/websim and the EXPERIMENTS.md
// generator.

// RenderTable1 prints the sorting-key taxonomy (Table 1).
func RenderTable1() string {
	t := stats.NewTable("Key", "Definition", "Sort Order")
	for _, k := range policy.TableOneKeys {
		t.AddRow(k.String(), k.Definition(), k.SortOrder())
	}
	return t.String()
}

// RenderTable3 prints the literature-policy mapping (Table 3).
func RenderTable3() string {
	t := stats.NewTable("Policy", "Equivalent sorting procedure")
	t.AddRow("FIFO", "ETIME, remove smallest")
	t.AddRow("LRU", "ATIME, remove smallest")
	t.AddRow("LFU", "NREF, remove smallest")
	t.AddRow("Hyper-G", "NREF, then ATIME, then SIZE (largest)")
	t.AddRow("Pitkow/Recker", "DAY(ATIME) if any docs not accessed today, else SIZE (largest)")
	t.AddRow("LRU-MIN", "LRU within halving size-threshold classes of the incoming size")
	return t.String()
}

// RenderTypeMix prints a Table 4 column for a trace: per-type share of
// references and bytes.
func RenderTypeMix(tr *trace.Trace) string {
	var reqs [trace.NumDocTypes]int64
	var bytes [trace.NumDocTypes]int64
	var totReq, totBytes int64
	for i := range tr.Requests {
		r := &tr.Requests[i]
		reqs[r.Type]++
		bytes[r.Type] += r.Size
		totReq++
		totBytes += r.Size
	}
	t := stats.NewTable("File type", "%Refs", "%Bytes")
	for dt := trace.DocType(0); dt < trace.NumDocTypes; dt++ {
		if reqs[dt] == 0 {
			continue
		}
		t.AddRow(dt.String(),
			fmt.Sprintf("%.2f", 100*float64(reqs[dt])/float64(totReq)),
			fmt.Sprintf("%.2f", 100*float64(bytes[dt])/float64(totBytes)))
	}
	return t.String()
}

// RenderExp1 prints the Experiment 1 summary plus the Figs. 3-7 series.
func RenderExp1(r *Exp1Result, series bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 1 — workload %s (infinite cache)\n", r.Workload)
	fmt.Fprintf(&b, "  MaxNeeded       %s\n", fmtBytes(r.MaxNeeded))
	fmt.Fprintf(&b, "  mean daily HR   %6.2f%%   mean daily WHR %6.2f%%\n", 100*r.MeanHR, 100*r.MeanWHR)
	fmt.Fprintf(&b, "  aggregate HR    %6.2f%%   aggregate WHR  %6.2f%%\n", 100*r.AggHR, 100*r.AggWHR)
	if series {
		b.WriteString(renderSeries("day  HR%  WHR% (7-day moving average)",
			r.Rates.HR.MovingAverage(), r.Rates.WHR.MovingAverage()))
	}
	return b.String()
}

// RenderExp2 prints the Experiment 2 ranking (the content of Figs. 8-12
// summarized as mean ratio-to-infinite), sorted by HR ratio.
func RenderExp2(r *Exp2Result) string {
	runs := make([]*PolicyRun, len(r.Runs))
	copy(runs, r.Runs)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].HRRatioMean > runs[j].HRRatioMean })
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 2 — workload %s, cache = %.0f%% of MaxNeeded (%s)\n",
		r.Workload, 100*r.Fraction, fmtBytes(int64(r.Fraction*float64(r.Base.MaxNeeded))))
	t := stats.NewTable("Policy", "HR/inf %", "WHR/inf %", "HR %", "WHR %", "Evictions")
	for _, run := range runs {
		t.AddRow(run.Policy,
			fmt.Sprintf("%.1f", 100*run.HRRatioMean),
			fmt.Sprintf("%.1f", 100*run.WHRRatioMean),
			fmt.Sprintf("%.1f", 100*run.Final.HitRate()),
			fmt.Sprintf("%.1f", 100*run.Final.WeightedHitRate()),
			run.Final.Evictions)
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderExp2Series prints one policy's Figs. 8-12 curve: the per-day
// ratio of its HR moving average to the infinite cache's.
func RenderExp2Series(r *Exp2Result, policyName string) string {
	for _, run := range r.Runs {
		if run.Policy != policyName {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s on %s: %% of infinite-cache HR by day\n", policyName, r.Workload)
		for _, p := range run.Rates.HR.RatioTo(r.Base.Rates.HR) {
			fmt.Fprintf(&b, "%4d  %6.1f\n", p.Day, 100*p.Value)
		}
		return b.String()
	}
	return fmt.Sprintf("policy %q not in result\n", policyName)
}

// RenderExp2Secondary prints the Fig. 15 summary.
func RenderExp2Secondary(r *Exp2SecondaryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 2 (secondary keys) — workload %s, primary LOG2SIZE, cache = %.0f%% of MaxNeeded\n",
		r.Workload, 100*r.Fraction)
	t := stats.NewTable("Secondary", "WHR vs random %", "peak WHR vs random %", "HR vs random %")
	for _, sr := range r.Runs {
		t.AddRow(sr.Secondary,
			fmt.Sprintf("%.2f", 100*sr.WHRvsRandom),
			fmt.Sprintf("%.2f", 100*sr.PeakWHRvsRandom),
			fmt.Sprintf("%.2f", 100*sr.HRvsRandom))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderExp3 prints the Experiment 3 summary plus optional Figs. 16-18
// series.
func RenderExp3(r *Exp3Result, series bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 3 — workload %s, L1 = %.0f%% of MaxNeeded (SIZE), infinite L2\n",
		r.Workload, 100*r.Fraction)
	fmt.Fprintf(&b, "  mean L2 HR  %6.2f%%   mean L2 WHR %6.2f%%   (over all client requests)\n",
		100*r.MeanL2HR, 100*r.MeanL2WHR)
	fmt.Fprintf(&b, "  L1 aggregate HR %6.2f%%  WHR %6.2f%%\n",
		100*r.L1Final.HitRate(), 100*r.L1Final.WeightedHitRate())
	if series {
		b.WriteString(renderSeries("day  L2HR%  L2WHR% (7-day moving average)",
			r.L2HR.MovingAverage(), r.L2WHR.MovingAverage()))
	}
	return b.String()
}

// RenderExp4 prints the Experiment 4 summary (Figs. 19-20).
func RenderExp4(r *Exp4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 4 — workload %s, partitioned cache, total = %.0f%% of MaxNeeded\n",
		r.Workload, 100*r.Fraction)
	t := stats.NewTable("Audio share", "Audio WHR %", "Non-audio WHR %", "Total WHR %")
	for _, p := range r.Partitions {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*p.AudioShare),
			fmt.Sprintf("%.2f", 100*p.AggAudioWHR),
			fmt.Sprintf("%.2f", 100*p.AggNonAudioWHR),
			fmt.Sprintf("%.2f", 100*p.AggTotalWHR))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Infinite-cache reference: audio WHR %.2f%%, non-audio WHR %.2f%% (means over days)\n",
		100*r.InfiniteAudioWHR.Mean(), 100*r.InfiniteNonAudioWHR.Mean())
	return b.String()
}

// renderSeries prints two aligned day series.
func renderSeries(header string, a, b []stats.DayPoint) string {
	byDay := make(map[int]float64, len(b))
	for _, p := range b {
		byDay[p.Day] = p.Value
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %s\n", header)
	for _, p := range a {
		fmt.Fprintf(&sb, "  %4d  %6.2f  %6.2f\n", p.Day, 100*p.Value, 100*byDay[p.Day])
	}
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// RenderExp5 prints the shared-L2 study (paper §5, open problem 3).
func RenderExp5(r *Exp5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 5 — workload %s split into %d client populations, shared infinite L2\n",
		r.Workload, r.Populations)
	fmt.Fprintf(&b, "  shared L2:  HR %6.2f%%  WHR %6.2f%%   (over all requests)\n",
		100*r.SharedL2HR, 100*r.SharedL2WHR)
	fmt.Fprintf(&b, "  private L2: HR %6.2f%%  WHR %6.2f%%\n",
		100*r.PrivateL2HR, 100*r.PrivateL2WHR)
	fmt.Fprintf(&b, "  sharing gain: HR %+.2f%%  WHR %+.2f%%\n",
		100*r.SharingGainHR, 100*r.SharingGainWHR)
	fmt.Fprintf(&b, "  cross-population L2 hits: %.1f%% of L2 hits (%.1f%% of L2 bytes)\n",
		100*r.Shared.CrossHitFraction, 100*r.Shared.CrossByteFraction)
	t := stats.NewTable("Population", "L2 HR %", "L2 WHR %")
	for i := range r.Shared.PopL2HR {
		t.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.2f", 100*r.Shared.PopL2HR[i]),
			fmt.Sprintf("%.2f", 100*r.Shared.PopL2WHR[i]))
	}
	b.WriteString(t.String())
	return b.String()
}
