// Package sim drives the paper's four experiments (Table 5) over
// validated traces: infinite-cache bounds (Experiment 1), the 36-policy
// removal comparison (Experiment 2, Figs. 8–12 and 15), the two-level
// hierarchy (Experiment 3, Figs. 16–18) and the media-partitioned cache
// (Experiment 4, Figs. 19–20).
package sim

import (
	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/stats"
	"webcache/internal/trace"
)

// Accessor is anything that can process a request and report a hit; it
// is satisfied by *core.Cache and adapters over the hierarchy types.
type Accessor interface {
	Access(req *trace.Request) bool
}

// DailyRates holds a per-day HR and WHR series for one cache run.
type DailyRates struct {
	HR  *stats.DailySeries
	WHR *stats.DailySeries
}

// replayState incrementally computes daily hit rates from snapshot
// deltas of a cache's counters.
type replayState struct {
	rates           DailyRates
	day             int
	started         bool
	dayReqs, dayHit int64
	dayBytes, dayBH int64
}

// observe records one request outcome at the given day index.
func (st *replayState) observe(day int, hit bool, size int64) {
	if st.started && day != st.day {
		st.flush()
	}
	st.day = day
	st.started = true
	st.dayReqs++
	st.dayBytes += size
	if hit {
		st.dayHit++
		st.dayBH += size
	}
}

func (st *replayState) flush() {
	if st.dayReqs == 0 {
		return
	}
	st.rates.HR.Add(st.day, float64(st.dayHit)/float64(st.dayReqs))
	if st.dayBytes > 0 {
		st.rates.WHR.Add(st.day, float64(st.dayBH)/float64(st.dayBytes))
	} else {
		st.rates.WHR.Add(st.day, 0)
	}
	st.dayReqs, st.dayHit, st.dayBytes, st.dayBH = 0, 0, 0, 0
}

// DisableDayIndex, when set, makes Replay recompute each request's day
// index per replay instead of reading the trace's shared precomputed
// index. It exists for the benchmark harness to measure the
// precomputation's contribution; results are identical either way.
var DisableDayIndex bool

// DisableInterning, when set, makes Experiment1 and RunPolicy replay
// through the string-indexed engine instead of the interned columnar
// one. It exists for the benchmark harness to measure interning's
// contribution; results are identical either way (the equivalence test
// and benchreplay's cross-mode DeepEqual enforce it).
var DisableInterning bool

// Replay feeds every request of tr through cache and returns the daily
// HR/WHR series. onDayEnd, when non-nil, runs at each day boundary (used
// by the periodic-sweep ablation). The per-request day indexes come
// from the trace's shared precomputed table (trace.DayIndex), so a
// policy sweep divides each timestamp once rather than once per run;
// the replay state itself lives on the stack and the loop allocates
// only the returned daily series.
func Replay(tr *trace.Trace, cache Accessor, onDayEnd func(day int)) DailyRates {
	var st replayState
	st.rates = DailyRates{HR: &stats.DailySeries{}, WHR: &stats.DailySeries{}}
	var days []int32
	if !DisableDayIndex {
		days = tr.DayIndex()
	}
	prevDay := -1
	for i := range tr.Requests {
		req := &tr.Requests[i]
		var day int
		if days != nil {
			day = int(days[i])
		} else {
			day = req.Day(tr.Start)
		}
		if prevDay >= 0 && day != prevDay && onDayEnd != nil {
			onDayEnd(prevDay)
		}
		hit := cache.Access(req)
		st.observe(day, hit, req.Size)
		prevDay = day
	}
	if prevDay >= 0 && onDayEnd != nil {
		onDayEnd(prevDay)
	}
	st.flush()
	return st.rates
}

// ReplayColumnar is Replay over the interned columnar view: every
// per-request field (ID, size, time, day, type) is a column read, and
// the cache's entry lookup is a slice index. Output is byte-identical
// to Replay on the trace the view was built from.
func ReplayColumnar(col *trace.Columnar, cache *core.Cache, onDayEnd func(day int)) DailyRates {
	var st replayState
	st.rates = DailyRates{HR: &stats.DailySeries{}, WHR: &stats.DailySeries{}}
	prevDay := -1
	for i := range col.IDs {
		day := int(col.Day[i])
		if prevDay >= 0 && day != prevDay && onDayEnd != nil {
			onDayEnd(prevDay)
		}
		hit := cache.AccessIndex(i)
		st.observe(day, hit, col.Sizes[i])
		prevDay = day
	}
	if prevDay >= 0 && onDayEnd != nil {
		onDayEnd(prevDay)
	}
	st.flush()
	return st.rates
}

// Exp1Result reports Experiment 1 for one workload: the maximum
// achievable hit rates (infinite cache) and MaxNeeded, the cache size at
// which no document is ever removed (§3.1 objectives 1 and 2).
type Exp1Result struct {
	Workload  string
	Rates     DailyRates
	Final     core.Stats
	MaxNeeded int64
	// MeanHR and MeanWHR are daily rates averaged over recorded days,
	// the paper's "averaged over all days in the trace" summary.
	MeanHR, MeanWHR float64
	// AggHR and AggWHR are whole-trace aggregates.
	AggHR, AggWHR float64
}

// Experiment1 simulates tr through an infinite cache.
func Experiment1(tr *trace.Trace, seed uint64) *Exp1Result {
	cfg := core.Config{Capacity: 0, Seed: seed}
	o := Observer
	if o != nil {
		o.AddReplays(1)
		cfg.Hooks = cacheHooks(o)
	}
	var cache *core.Cache
	var rates DailyRates
	replay := func() {
		if DisableInterning {
			cache = core.New(cfg)
			rates = Replay(tr, cache, nil)
		} else {
			col := tr.Columnar()
			cache = core.NewColumnar(cfg, col)
			rates = ReplayColumnar(col, cache, nil)
		}
	}
	if o != nil {
		observeReplay(o, "(infinite)", tr.Name, 0, replay, func() core.Stats { return cache.Stats() })
	} else {
		replay()
	}
	final := cache.Stats()
	return &Exp1Result{
		Workload:  tr.Name,
		Rates:     rates,
		Final:     final,
		MaxNeeded: final.MaxUsed,
		MeanHR:    rates.HR.Mean(),
		MeanWHR:   rates.WHR.Mean(),
		AggHR:     final.HitRate(),
		AggWHR:    final.WeightedHitRate(),
	}
}

// PolicyRun reports one finite-cache run of Experiment 2.
type PolicyRun struct {
	Policy   string
	Fraction float64 // cache size as a fraction of MaxNeeded
	Capacity int64
	Rates    DailyRates
	Final    core.Stats
	// HRRatioMean and WHRRatioMean are the mean ratios of this run's
	// 7-day-averaged daily rates to the infinite cache's (the y-axis of
	// Figs. 8–12, as a fraction of 1).
	HRRatioMean  float64
	WHRRatioMean float64
}

// RunOptions tunes a single finite-cache run.
type RunOptions struct {
	// Sweep, when positive, runs a periodic end-of-day removal down to
	// this fraction of capacity (the Pitkow/Recker comfort level, §1.3).
	Sweep float64
	// ExcludeDynamic never caches CGI/query documents.
	ExcludeDynamic bool
	// LatencyOf feeds the KeyLatency extension key.
	LatencyOf func(url string, size int64) float64
	// Label names the run in observability output (pprof labels and
	// metric snapshots); empty means the policy's own Name. Experiment 2
	// passes the combo's "PRIMARY/SECONDARY" grid notation, which a
	// random-secondary policy's Name abbreviates.
	Label string
}

// RunPolicy replays tr through a finite cache of the given capacity and
// policy, and scores it against the Experiment 1 baseline. Unless
// DisableInterning is set, the replay runs over the trace's shared
// interned columnar view (built once per trace, fanned out read-only to
// every run of a sweep) through an ID-indexed cache.
func RunPolicy(tr *trace.Trace, base *Exp1Result, pol policy.Policy, capacity int64, seed uint64, opts RunOptions) *PolicyRun {
	cfg := core.Config{
		Capacity:       capacity,
		Policy:         pol,
		Seed:           seed,
		ExcludeDynamic: opts.ExcludeDynamic,
		LatencyOf:      opts.LatencyOf,
		SizeHint:       sizeHint(base, capacity),
	}
	o := Observer
	if o != nil {
		cfg.Hooks = cacheHooks(o)
	}
	var cache *core.Cache
	var rates DailyRates
	replay := func() {
		if DisableInterning {
			cache = core.New(cfg)
			var onDay func(int)
			if opts.Sweep > 0 {
				onDay = func(int) { cache.Sweep(opts.Sweep) }
			}
			rates = Replay(tr, cache, onDay)
		} else {
			col := tr.Columnar()
			cache = core.NewColumnar(cfg, col)
			var onDay func(int)
			if opts.Sweep > 0 {
				onDay = func(int) { cache.Sweep(opts.Sweep) }
			}
			rates = ReplayColumnar(col, cache, onDay)
		}
	}
	if o != nil {
		label := opts.Label
		if label == "" {
			label = pol.Name()
		}
		observeReplay(o, label, tr.Name, capacity, replay, func() core.Stats { return cache.Stats() })
	} else {
		replay()
	}
	run := &PolicyRun{
		Policy:   pol.Name(),
		Capacity: capacity,
		Rates:    rates,
		Final:    cache.Stats(),
	}
	if base != nil {
		run.HRRatioMean = rates.HR.MeanRatioTo(base.Rates.HR)
		run.WHRRatioMean = rates.WHR.MeanRatioTo(base.Rates.WHR)
		if base.MaxNeeded > 0 {
			run.Fraction = float64(capacity) / float64(base.MaxNeeded)
		}
	}
	return run
}

// sizeHint estimates how many documents a cache of the given capacity
// holds at once, from the infinite-cache baseline's mean document
// size, with 3× headroom: size-keyed policies evict large documents
// first and so retain far more documents than the mean size predicts.
// It is only a pre-sizing hint; any value yields identical results.
func sizeHint(base *Exp1Result, capacity int64) int {
	if base == nil || base.MaxNeeded <= 0 || base.Final.Docs <= 0 || capacity <= 0 {
		return 0
	}
	docs := 3 * capacity * base.Final.Docs / base.MaxNeeded
	if docs > base.Final.Docs {
		docs = base.Final.Docs
	}
	return int(docs)
}
