package sim

import (
	"strings"
	"testing"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// dayTrace builds a trace with a fixed per-day request pattern: each day
// re-requests one popular document and one fresh document.
func dayTrace(days int) *trace.Trace {
	tr := &trace.Trace{Name: "synthetic", Start: 0}
	for d := 0; d < days; d++ {
		base := int64(d) * 86400
		tr.Requests = append(tr.Requests,
			trace.Request{Time: base + 10, URL: "http://s/hot.html", Status: 200, Size: 100, Type: trace.Text},
			trace.Request{Time: base + 20, URL: "http://s/day" + itoa(d) + ".html", Status: 200, Size: 50, Type: trace.Text},
		)
	}
	return tr
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestReplayDailyRates(t *testing.T) {
	tr := dayTrace(10)
	cache := core.New(core.Config{Capacity: 0, Seed: 1})
	rates := Replay(tr, cache, nil)
	raw := rates.HR.Raw()
	if len(raw) != 10 {
		t.Fatalf("%d recorded days, want 10", len(raw))
	}
	// Day 0: both requests miss -> HR 0. Later days: hot hits, fresh
	// misses -> HR 0.5.
	if raw[0].Value != 0 {
		t.Fatalf("day 0 HR %v", raw[0].Value)
	}
	for _, p := range raw[1:] {
		if p.Value != 0.5 {
			t.Fatalf("day %d HR %v, want 0.5", p.Day, p.Value)
		}
	}
	// WHR: day>0 hits 100 of 150 bytes.
	whr := rates.WHR.Raw()
	if v := whr[3].Value; v < 0.66 || v > 0.67 {
		t.Fatalf("WHR %v, want 2/3", v)
	}
}

func TestReplayOnDayEnd(t *testing.T) {
	tr := dayTrace(5)
	cache := core.New(core.Config{Capacity: 0, Seed: 1})
	var boundaries []int
	Replay(tr, cache, func(day int) { boundaries = append(boundaries, day) })
	if len(boundaries) != 5 {
		t.Fatalf("day-end callbacks: %v", boundaries)
	}
	if boundaries[0] != 0 || boundaries[4] != 4 {
		t.Fatalf("boundaries %v", boundaries)
	}
}

func TestExperiment1Accounting(t *testing.T) {
	tr := dayTrace(15)
	res := Experiment1(tr, 1)
	// MaxNeeded = hot(100) + 15 daily docs (50 each).
	if want := int64(100 + 15*50); res.MaxNeeded != want {
		t.Fatalf("MaxNeeded %d, want %d", res.MaxNeeded, want)
	}
	if res.AggHR <= 0.4 || res.AggHR >= 0.5 {
		t.Fatalf("AggHR %v (14 hits of 30 requests expected)", res.AggHR)
	}
	if res.Workload != "synthetic" {
		t.Fatalf("workload %q", res.Workload)
	}
}

func TestRunPolicyRatios(t *testing.T) {
	tr := dayTrace(20)
	base := Experiment1(tr, 1)
	// A cache big enough for everything must match the infinite bound.
	pol := policy.NewSorted([]policy.Key{policy.KeySize}, tr.Start)
	run := RunPolicy(tr, base, pol, base.MaxNeeded, 2, RunOptions{})
	if run.HRRatioMean < 0.999 || run.HRRatioMean > 1.001 {
		t.Fatalf("full-size cache HR ratio %v, want 1", run.HRRatioMean)
	}
	if run.Fraction != 1.0 {
		t.Fatalf("fraction %v", run.Fraction)
	}
}

func TestRunPolicySweep(t *testing.T) {
	tr := dayTrace(20)
	base := Experiment1(tr, 1)
	pol := policy.NewSorted([]policy.Key{policy.KeySize}, tr.Start)
	run := RunPolicy(tr, base, pol, 200, 3, RunOptions{Sweep: 0.25})
	// With a nightly sweep to 25% of 200 bytes, the 100-byte hot doc is
	// removed every night, so it misses every morning: HR 0.
	if run.Final.Hits != 0 {
		t.Fatalf("sweep variant still hit %d times", run.Final.Hits)
	}
}

func TestExperiment2RunsAllCombos(t *testing.T) {
	cfg := workload.C(5)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment2(tr, base, policy.AllCombos(), 0.10, 2)
	if len(res.Runs) != 36 {
		t.Fatalf("%d runs, want 36", len(res.Runs))
	}
	for _, run := range res.Runs {
		if run.Final.Requests == 0 {
			t.Fatalf("run %s processed nothing", run.Policy)
		}
		if run.Final.Used > run.Capacity {
			t.Fatalf("run %s exceeded capacity", run.Policy)
		}
	}
}

// TestExperiment2SizeWinsHR is the paper's headline on a reduced
// workload: SIZE must beat ATIME and ETIME on hit rate.
func TestExperiment2SizeWinsHR(t *testing.T) {
	cfg := workload.BL(9)
	cfg.Scale = 0.10
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment2(tr, base, policy.PrimaryCombos(), 0.10, 2)
	byName := map[string]*PolicyRun{}
	for _, run := range res.Runs {
		byName[run.Policy] = run
	}
	size := byName["SIZE/RANDOM"].HRRatioMean
	atime := byName["ATIME/RANDOM"].HRRatioMean
	etime := byName["ETIME/RANDOM"].HRRatioMean
	nref := byName["NREF/RANDOM"].HRRatioMean
	if !(size > nref && nref > atime && atime > etime) {
		t.Fatalf("HR ranking violated: SIZE %.3f NREF %.3f ATIME %.3f ETIME %.3f",
			size, nref, atime, etime)
	}
}

func TestExperiment2Secondary(t *testing.T) {
	cfg := workload.G(11)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment2Secondary(tr, base, 0.10, 2)
	if len(res.Runs) != 5 {
		t.Fatalf("%d secondary runs, want 5", len(res.Runs))
	}
	for _, sr := range res.Runs {
		// The paper's conclusion: secondary keys are insignificant.
		if sr.WHRvsRandom < 0.80 || sr.WHRvsRandom > 1.25 {
			t.Errorf("secondary %s WHR vs random = %.3f; expected near 1", sr.Secondary, sr.WHRvsRandom)
		}
	}
}

func TestExperiment3L2AboveL1Misses(t *testing.T) {
	cfg := workload.C(13)
	cfg.Scale = 0.10
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment3(tr, base, 0.10, 2)
	if res.MeanL2WHR <= 0 {
		t.Fatal("L2 WHR is zero; the second level never helped")
	}
	// The paper's observation: with SIZE in L1, the L2's WHR exceeds its
	// HR because the documents displaced to L2 are large.
	if res.MeanL2WHR <= res.MeanL2HR {
		t.Fatalf("L2 WHR %.3f <= L2 HR %.3f; displaced documents should be large",
			res.MeanL2WHR, res.MeanL2HR)
	}
	// Conservation: L1 hits + L2 hits <= total requests.
	if res.L1Final.Hits+res.L2Final.Hits > res.L1Final.Requests {
		t.Fatal("hit accounting exceeds request count")
	}
}

func TestExperiment4Partitions(t *testing.T) {
	cfg := workload.BR(17)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment4(tr, base, 0.10, 2)
	if len(res.Partitions) != 3 {
		t.Fatalf("%d partitions, want 3", len(res.Partitions))
	}
	shares := []float64{0.25, 0.50, 0.75}
	var prevAudio float64 = -1
	for i, p := range res.Partitions {
		if p.AudioShare != shares[i] {
			t.Fatalf("partition %d share %v", i, p.AudioShare)
		}
		if p.AggTotalWHR < 0 || p.AggTotalWHR > 1 {
			t.Fatalf("total WHR %v", p.AggTotalWHR)
		}
		// Audio WHR must not decrease as the audio partition grows.
		if p.AggAudioWHR+1e-9 < prevAudio {
			t.Fatalf("audio WHR decreased when its partition grew: %v -> %v", prevAudio, p.AggAudioWHR)
		}
		prevAudio = p.AggAudioWHR
	}
}

func TestRenderers(t *testing.T) {
	cfg := workload.C(19)
	cfg.Scale = 0.03
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	e2 := Experiment2(tr, base, policy.PrimaryCombos(), 0.10, 2)
	for name, out := range map[string]string{
		"table1":    RenderTable1(),
		"table3":    RenderTable3(),
		"typemix":   RenderTypeMix(tr),
		"exp1":      RenderExp1(base, true),
		"exp2":      RenderExp2(e2),
		"exp2serie": RenderExp2Series(e2, "SIZE/RANDOM"),
		"exp2sec":   RenderExp2Secondary(Experiment2Secondary(tr, base, 0.10, 3)),
		"exp3":      RenderExp3(Experiment3(tr, base, 0.10, 4), true),
		"exp4":      RenderExp4(Experiment4(tr, base, 0.10, 5)),
	} {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("renderer %s produced nothing", name)
		}
	}
	if out := RenderExp2Series(e2, "NOPE"); !strings.Contains(out, "not in result") {
		t.Error("missing-policy series did not report absence")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		500:     "500 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestExperiment5SharedL2(t *testing.T) {
	cfg := workload.BL(23)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment5(tr, base, 4, 0.10, 2)
	if res.Populations != 4 || len(res.Shared.PopL2HR) != 4 {
		t.Fatalf("population accounting: %+v", res)
	}
	// Sharing can only help: the shared L2 holds a superset of every
	// private L2's contents.
	if res.SharingGainHR < 0 || res.SharingGainWHR < 0 {
		t.Fatalf("sharing hurt: gain HR %.4f WHR %.4f", res.SharingGainHR, res.SharingGainWHR)
	}
	// With 185 clients split four ways over one document population,
	// commonality must be substantial (the paper's §5 conjecture).
	if res.Shared.CrossHitFraction < 0.3 {
		t.Fatalf("cross-population hit fraction only %.3f", res.Shared.CrossHitFraction)
	}
	if out := RenderExp5(res); !strings.Contains(out, "sharing gain") {
		t.Fatal("RenderExp5 output incomplete")
	}
}

func TestPopulationOfStable(t *testing.T) {
	a := populationOf("client7.world.example", 4)
	for i := 0; i < 10; i++ {
		if populationOf("client7.world.example", 4) != a {
			t.Fatal("population assignment not stable")
		}
	}
	if a < 0 || a >= 4 {
		t.Fatalf("population %d out of range", a)
	}
}

func TestExperiment6LatencyModel(t *testing.T) {
	m := DefaultNetModel()
	// RTT is deterministic and bounded.
	r1 := m.ServerRTT("s1.vt.edu")
	if r1 != m.ServerRTT("s1.vt.edu") {
		t.Fatal("ServerRTT not deterministic")
	}
	if r1 < m.MinRTT || r1 > m.MaxRTT {
		t.Fatalf("RTT %v outside [%v, %v]", r1, m.MinRTT, m.MaxRTT)
	}
	// Serving from cache is strictly cheaper than an origin fetch.
	if m.CacheServe(10000) >= m.OriginFetch("s1.vt.edu", 10000) {
		t.Fatal("cache serve not cheaper than origin fetch")
	}
	// Larger documents cost more.
	if m.OriginFetch("s1.vt.edu", 1000) >= m.OriginFetch("s1.vt.edu", 100000) {
		t.Fatal("origin fetch not monotone in size")
	}
}

func TestExperiment6Runs(t *testing.T) {
	cfg := workload.BL(31)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res, err := Experiment6(tr, base, []string{"SIZE", "LATENCY", "GD-Latency"}, 0.10, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("%d runs", len(res.Runs))
	}
	byName := map[string]*LatencyRun{}
	for _, run := range res.Runs {
		if run.SavedFraction < 0 || run.SavedFraction > 1 {
			t.Fatalf("%s saved fraction %v", run.Policy, run.SavedFraction)
		}
		if run.WithCache > run.NoCache {
			t.Fatalf("%s: cache made latency worse overall", run.Policy)
		}
		byName[run.Policy] = run
	}
	// The popularity-blind LATENCY key must lose to both SIZE and the
	// GreedyDual blend — the Experiment 6 finding.
	if byName["LATENCY"].SavedFraction >= byName["SIZE"].SavedFraction {
		t.Error("pure LATENCY key unexpectedly beat SIZE on latency saved")
	}
	if byName["LATENCY"].SavedFraction >= byName["GD-Latency"].SavedFraction {
		t.Error("pure LATENCY key unexpectedly beat GD-Latency")
	}
	if out := RenderExp6(res); !strings.Contains(out, "Latency saved") {
		t.Error("RenderExp6 incomplete")
	}
	if _, err := Experiment6(tr, base, []string{"BOGUS"}, 0.1, nil, 1); err == nil {
		t.Error("bad policy spec accepted")
	}
}
