package sim

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"webcache/internal/obs"
	"webcache/internal/policy"
)

// withObserver installs o as the package observer for the test's
// duration. The observer is package state, so these tests cannot run
// in parallel with each other — none call t.Parallel.
func withObserver(t *testing.T, o *obs.Observer) {
	t.Helper()
	prev := Observer
	Observer = o
	t.Cleanup(func() { Observer = prev })
}

// stripTiming zeroes a snapshot's wall-clock fields so runs can be
// compared across worker counts.
func stripTiming(s obs.ReplaySnapshot) obs.ReplaySnapshot {
	s.ReplayNs = 0
	s.NsPerRequest = 0
	return s
}

// sortSnaps orders snapshots by policy name: parallel runs emit in
// completion order, which is not deterministic.
func sortSnaps(snaps []obs.ReplaySnapshot) {
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Policy < snaps[j].Policy })
}

// TestObserverSnapshotsMatchStats runs a small sweep under an observer
// and checks each snapshot mirrors its run's final stats.
func TestObserverSnapshotsMatchStats(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	o := obs.New(obs.Options{})
	o.SetExperiment("2")
	withObserver(t, o)

	r := NewRunner(RunnerConfig{Workers: 1})
	combos := policy.PrimaryCombos()[:4]
	res := Experiment2R(r, tr, base, combos, 0.25, 5)

	snaps := o.Snapshots()
	if len(snaps) != len(combos) {
		t.Fatalf("%d snapshots for %d replays", len(snaps), len(combos))
	}
	byPolicy := map[string]obs.ReplaySnapshot{}
	for _, s := range snaps {
		if s.Experiment != "2" {
			t.Errorf("snapshot experiment = %q, want 2", s.Experiment)
		}
		if s.Workload != tr.Name {
			t.Errorf("snapshot workload = %q, want %q", s.Workload, tr.Name)
		}
		byPolicy[s.Policy] = s
	}
	for _, run := range res.Runs {
		s, ok := byPolicy[run.Policy]
		if !ok {
			t.Fatalf("no snapshot for policy %q (have %v)", run.Policy, byPolicy)
		}
		st := run.Final
		if s.Requests != st.Requests || s.Hits != st.Hits || s.Misses != st.Requests-st.Hits ||
			s.Evictions != st.Evictions || s.EvictedBytes != st.EvictedBytes ||
			s.HeapPeak != st.MaxDocs || s.OccupancyHighWater != st.MaxUsed {
			t.Errorf("policy %q: snapshot %+v does not mirror stats %+v", run.Policy, s, st)
		}
		if s.Capacity != run.Capacity {
			t.Errorf("policy %q: snapshot capacity %d, want %d", run.Policy, s.Capacity, run.Capacity)
		}
		if s.ReplayNs <= 0 {
			t.Errorf("policy %q: no replay timing recorded", run.Policy)
		}
	}
}

// TestObserverSnapshotsWorkerInvariant is the determinism contract for
// the observability layer: the same sweep observed with 1 and 8 workers
// must emit identical snapshots (modulo wall-clock timing and emission
// order) — parallelism may never leak into the metrics.
func TestObserverSnapshotsWorkerInvariant(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	combos := policy.PrimaryCombos()

	runOnce := func(workers int) []obs.ReplaySnapshot {
		o := obs.New(obs.Options{})
		withObserver(t, o)
		r := NewRunner(RunnerConfig{Workers: workers})
		Experiment2R(r, tr, base, combos, 0.25, 5)
		snaps := o.Snapshots()
		for i := range snaps {
			snaps[i] = stripTiming(snaps[i])
		}
		sortSnaps(snaps)
		return snaps
	}

	one := runOnce(1)
	eight := runOnce(8)
	if len(one) != len(combos) || len(eight) != len(combos) {
		t.Fatalf("snapshot counts: 1-worker %d, 8-worker %d, want %d", len(one), len(eight), len(combos))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("snapshot %d differs between worker counts:\n1: %+v\n8: %+v", i, one[i], eight[i])
		}
	}
}

// TestObserverResultsUnperturbed checks the acceptance contract from
// the simulation side: enabling the observer must not change any run
// result.
func TestObserverResultsUnperturbed(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	combos := policy.PrimaryCombos()[:6]
	r := NewRunner(RunnerConfig{Workers: 4})

	bare := Experiment2R(r, tr, base, combos, 0.25, 5)

	withObserver(t, obs.New(obs.Options{}))
	observed := Experiment2R(r, tr, base, combos, 0.25, 5)

	for i := range bare.Runs {
		if bare.Runs[i].Final != observed.Runs[i].Final {
			t.Errorf("run %d (%s): stats differ with observer enabled", i, bare.Runs[i].Policy)
		}
		if bare.Runs[i].HRRatioMean != observed.Runs[i].HRRatioMean {
			t.Errorf("run %d (%s): HR ratio differs with observer enabled", i, bare.Runs[i].Policy)
		}
	}
}

// TestObserverRegistryCountsAggregate checks the cache event hooks sum
// across every replay of a sweep.
func TestObserverRegistryCountsAggregate(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	o := obs.New(obs.Options{})
	withObserver(t, o)
	r := NewRunner(RunnerConfig{Workers: 4})
	res := Experiment2R(r, tr, base, policy.PrimaryCombos()[:4], 0.25, 5)

	var hits, misses, evictions int64
	for _, run := range res.Runs {
		hits += run.Final.Hits
		misses += run.Final.Requests - run.Final.Hits
		evictions += run.Final.Evictions
	}
	// The Experiment1 baseline above ran unobserved; the registry holds
	// exactly the sweep's events.
	reg := o.Registry()
	if got := reg.Counter("cache.hits").Load(); got != hits {
		t.Errorf("registry hits = %d, want %d", got, hits)
	}
	if got := reg.Counter("cache.misses").Load(); got != misses {
		t.Errorf("registry misses = %d, want %d", got, misses)
	}
	if got := reg.Counter("cache.evictions").Load(); got != evictions {
		t.Errorf("registry evictions = %d, want %d", got, evictions)
	}
}

// TestCloseObserverSummary checks CloseObserver writes the runner's
// accounting as the JSONL summary record and detaches the observer.
func TestCloseObserverSummary(t *testing.T) {
	tr := dayTrace(30)
	base := Experiment1(tr, 1)
	var buf bytes.Buffer
	o := obs.New(obs.Options{Metrics: &buf})
	withObserver(t, o)
	r := NewRunner(RunnerConfig{Workers: 2})
	Experiment2R(r, tr, base, policy.PrimaryCombos()[:3], 0.25, 5)

	if err := CloseObserver(r); err != nil {
		t.Fatal(err)
	}
	if Observer != nil {
		t.Fatal("CloseObserver did not detach the observer")
	}
	if err := CloseObserver(r); err != nil { // idempotent on nil
		t.Fatal(err)
	}

	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	var last map[string]any
	for dec.More() {
		last = nil
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
	}
	if last["record"] != "summary" {
		t.Fatalf("last record = %v, want summary", last)
	}
	if last["replays"] != float64(3) {
		t.Fatalf("summary replays = %v, want 3", last["replays"])
	}
	if last["workers"] != float64(2) {
		t.Fatalf("summary workers = %v, want 2", last["workers"])
	}
	if _, ok := last["metrics"].(map[string]any); !ok {
		t.Fatalf("summary has no metrics map: %v", last)
	}
}
