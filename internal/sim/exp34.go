package sim

import (
	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/stats"
	"webcache/internal/trace"
)

// Exp3Result reports Experiment 3: a finite L1 (SIZE policy) in front of
// an infinite L2, with the L2's HR and WHR measured over *all* client
// requests (Figs. 16–18).
type Exp3Result struct {
	Workload string
	Fraction float64
	L1HR     *stats.DailySeries
	L1WHR    *stats.DailySeries
	L2HR     *stats.DailySeries // daily L2 hits / daily requests
	L2WHR    *stats.DailySeries // daily L2 bytes hit / daily bytes
	L1Final  core.Stats
	L2Final  core.Stats
	// Means over recorded days.
	MeanL2HR, MeanL2WHR float64
}

// TwoLevelStudy runs Experiment 3 at each L1 fraction, fanning the
// independent hierarchy replays across the runner's pool. Results come
// back in fraction order.
func TwoLevelStudy(r *Runner, tr *trace.Trace, base *Exp1Result, fractions []float64, seed uint64) []*Exp3Result {
	return RunAll(r, len(fractions), func(i int) *Exp3Result {
		return Experiment3(tr, base, fractions[i], seed+uint64(i)*17)
	})
}

// Experiment3 replays tr through the two-level hierarchy with L1 sized
// at fraction×MaxNeeded using the best Experiment 2 policy (SIZE with a
// random secondary, per §4.6) and an infinite L2.
func Experiment3(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp3Result {
	l1Cap := capacityFor(base, fraction)
	tl := core.NewTwoLevel(
		core.Config{
			Capacity: l1Cap,
			Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
			Seed:     seed,
		},
		core.Config{Capacity: 0, Seed: seed + 1},
	)

	res := &Exp3Result{
		Workload: tr.Name, Fraction: fraction,
		L1HR: &stats.DailySeries{}, L1WHR: &stats.DailySeries{},
		L2HR: &stats.DailySeries{}, L2WHR: &stats.DailySeries{},
	}

	day := -1
	var reqs, l1Hits, l2Hits, bytes, l1BH, l2BH int64
	flush := func() {
		if reqs == 0 {
			return
		}
		res.L1HR.Add(day, float64(l1Hits)/float64(reqs))
		res.L2HR.Add(day, float64(l2Hits)/float64(reqs))
		if bytes > 0 {
			res.L1WHR.Add(day, float64(l1BH)/float64(bytes))
			res.L2WHR.Add(day, float64(l2BH)/float64(bytes))
		}
		reqs, l1Hits, l2Hits, bytes, l1BH, l2BH = 0, 0, 0, 0, 0, 0
	}
	for i := range tr.Requests {
		req := &tr.Requests[i]
		if d := req.Day(tr.Start); d != day {
			flush()
			day = d
		}
		h1, h2 := tl.Access(req)
		reqs++
		bytes += req.Size
		if h1 {
			l1Hits++
			l1BH += req.Size
		}
		if h2 {
			l2Hits++
			l2BH += req.Size
		}
	}
	flush()
	res.L1Final = tl.L1.Stats()
	res.L2Final = tl.L2.Stats()
	res.MeanL2HR = res.L2HR.Mean()
	res.MeanL2WHR = res.L2WHR.Mean()
	return res
}

// Exp4Partition reports one partition split of Experiment 4.
type Exp4Partition struct {
	AudioShare float64 // fraction of total capacity given to audio
	// Daily WHR of each class measured over all requested bytes
	// (the paper: "the WHRs reported are over all requests").
	AudioWHR    *stats.DailySeries
	NonAudioWHR *stats.DailySeries
	AudioFinal  core.Stats
	OtherFinal  core.Stats
	// Whole-trace aggregates over all requested bytes.
	AggAudioWHR    float64
	AggNonAudioWHR float64
	AggTotalWHR    float64
}

// Exp4Result reports Experiment 4: the audio/non-audio partitioned cache
// on workload BR at three partition splits, with the infinite cache's
// per-class WHR as the reference curves of Figs. 19–20.
type Exp4Result struct {
	Workload string
	Fraction float64
	// InfiniteAudioWHR and InfiniteNonAudioWHR are the infinite-cache
	// per-class daily WHR over all bytes (the "Infinite Cache ... WHR"
	// curves).
	InfiniteAudioWHR    *stats.DailySeries
	InfiniteNonAudioWHR *stats.DailySeries
	Partitions          []*Exp4Partition
}

// Experiment4 runs the partitioned cache with audio shares 1/4, 1/2 and
// 3/4 of fraction×MaxNeeded total capacity, policy SIZE/random in both
// partitions.
func Experiment4(tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp4Result {
	return PartitionStudy(DefaultRunner(), tr, base, fraction, []float64{0.25, 0.50, 0.75}, seed)
}

// Experiment4R is Experiment4 on an explicit runner.
func Experiment4R(r *Runner, tr *trace.Trace, base *Exp1Result, fraction float64, seed uint64) *Exp4Result {
	return PartitionStudy(r, tr, base, fraction, []float64{0.25, 0.50, 0.75}, seed)
}

// PartitionStudy generalizes Experiment 4 to arbitrary audio shares.
// The infinite-cache reference replay and each partition split are
// independent full-trace replays, so all of them fan out across the
// runner together; partitions come back in share order.
func PartitionStudy(r *Runner, tr *trace.Trace, base *Exp1Result, fraction float64, shares []float64, seed uint64) *Exp4Result {
	total := capacityFor(base, fraction)
	res := &Exp4Result{Workload: tr.Name, Fraction: fraction}
	res.Partitions = make([]*Exp4Partition, len(shares))

	// Job 0 is the infinite-cache reference; job i+1 is share i.
	r.Do(1+len(shares), func(j int) {
		if j == 0 {
			res.InfiniteAudioWHR, res.InfiniteNonAudioWHR = perClassWHR(tr, core.New(core.Config{Capacity: 0, Seed: seed}))
			return
		}
		i := j - 1
		share := shares[i]
		audioCap := int64(share * float64(total))
		otherCap := total - audioCap
		part := core.NewAudioPartitioned(
			core.Config{
				Capacity: audioCap,
				Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
				Seed:     seed + uint64(i)*13,
			},
			core.Config{
				Capacity: otherCap,
				Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
				Seed:     seed + uint64(i)*13 + 1,
			},
		)
		p := &Exp4Partition{AudioShare: share}
		p.AudioWHR, p.NonAudioWHR = perClassWHR(tr, part)
		p.AudioFinal = part.Partition(0).Stats()
		p.OtherFinal = part.Partition(1).Stats()
		if tb := part.BytesRequested(); tb > 0 {
			p.AggAudioWHR = float64(p.AudioFinal.BytesHit) / float64(tb)
			p.AggNonAudioWHR = float64(p.OtherFinal.BytesHit) / float64(tb)
			p.AggTotalWHR = p.AggAudioWHR + p.AggNonAudioWHR
		}
		res.Partitions[i] = p
	})
	return res
}

// perClassWHR replays tr through cache and returns daily (audio bytes
// hit / all bytes requested) and (non-audio bytes hit / all bytes
// requested) series.
func perClassWHR(tr *trace.Trace, cache Accessor) (audio, nonAudio *stats.DailySeries) {
	audio, nonAudio = &stats.DailySeries{}, &stats.DailySeries{}
	day := -1
	var bytes, audioBH, otherBH int64
	flush := func() {
		if bytes == 0 {
			return
		}
		audio.Add(day, float64(audioBH)/float64(bytes))
		nonAudio.Add(day, float64(otherBH)/float64(bytes))
		bytes, audioBH, otherBH = 0, 0, 0
	}
	for i := range tr.Requests {
		req := &tr.Requests[i]
		if d := req.Day(tr.Start); d != day {
			flush()
			day = d
		}
		hit := cache.Access(req)
		bytes += req.Size
		if hit {
			if req.Type == trace.Audio {
				audioBH += req.Size
			} else {
				otherBH += req.Size
			}
		}
	}
	flush()
	return audio, nonAudio
}
