package sim

import (
	"strings"
	"testing"

	"webcache/internal/core"
	"webcache/internal/policy"
	"webcache/internal/workload"
)

// TestFullGridSizePrimaryDominates runs the paper's complete 36-policy
// design on a reduced workload and checks the structural finding of
// Experiment 2: every SIZE- or LOG2SIZE-primary combination beats every
// combination with any other primary key on hit rate, and the secondary
// key never changes which primary wins.
func TestFullGridSizePrimaryDominates(t *testing.T) {
	cfg := workload.BL(3)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment2(tr, base, policy.AllCombos(), 0.10, 2)
	if len(res.Runs) != 36 {
		t.Fatalf("%d runs", len(res.Runs))
	}

	worstSize := 2.0
	bestOther := -1.0
	var worstSizeName, bestOtherName string
	for _, run := range res.Runs {
		sizePrimary := strings.HasPrefix(run.Policy, "SIZE/") || strings.HasPrefix(run.Policy, "LOG2SIZE/")
		if sizePrimary {
			if run.HRRatioMean < worstSize {
				worstSize, worstSizeName = run.HRRatioMean, run.Policy
			}
		} else if run.HRRatioMean > bestOther {
			bestOther, bestOtherName = run.HRRatioMean, run.Policy
		}
	}
	if worstSize <= bestOther {
		t.Fatalf("size-primary dominance violated: worst size-primary %s=%.3f <= best other %s=%.3f",
			worstSizeName, worstSize, bestOtherName, bestOther)
	}
}

// TestExperiment2FiftyPercent checks Table 5's second cache level: at
// 50% of MaxNeeded every primary key runs close to the infinite bound
// and SIZE is essentially optimal.
func TestExperiment2FiftyPercent(t *testing.T) {
	cfg := workload.G(5)
	cfg.Scale = 0.10
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)
	res := Experiment2(tr, base, policy.PrimaryCombos(), 0.50, 2)
	for _, run := range res.Runs {
		if run.HRRatioMean < 0.70 {
			t.Errorf("%s at 50%%: HR ratio %.3f, expected near-optimal", run.Policy, run.HRRatioMean)
		}
		if strings.HasPrefix(run.Policy, "SIZE/") && run.HRRatioMean < 0.97 {
			t.Errorf("SIZE at 50%%: HR ratio %.3f, expected ~1", run.HRRatioMean)
		}
	}
}

// TestTwoLevelFiniteL2: the hierarchy also works with a bounded second
// level (a deployment reality the paper's infinite-L2 idealizes).
func TestTwoLevelFiniteL2(t *testing.T) {
	cfg := workload.C(7)
	cfg.Scale = 0.05
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Experiment1(tr, 1)

	infinite := Experiment3(tr, base, 0.10, 3)

	// A custom finite-L2 run via the core types.
	tl := core.NewTwoLevel(
		core.Config{
			Capacity: base.MaxNeeded / 10,
			Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
			Seed:     1,
		},
		core.Config{
			Capacity: base.MaxNeeded / 2,
			Policy:   policy.Combo{Primary: policy.KeySize, Secondary: policy.KeyRandom}.New(tr.Start),
			Seed:     2,
		},
	)
	var reqs, l2hits int64
	for i := range tr.Requests {
		_, h2 := tl.Access(&tr.Requests[i])
		reqs++
		if h2 {
			l2hits++
		}
	}
	finiteHR := float64(l2hits) / float64(reqs)
	if finiteHR < 0 || finiteHR > 1 {
		t.Fatalf("finite L2 HR %v", finiteHR)
	}
	// A bounded L2 cannot beat the infinite one.
	if finiteHR > infinite.MeanL2HR+0.10 {
		t.Fatalf("finite L2 HR %.3f implausibly exceeds infinite %.3f", finiteHR, infinite.MeanL2HR)
	}
	tl.L1.CheckInvariants()
	tl.L2.CheckInvariants()
}
