package sim

import (
	"runtime"
	"sync"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// The sequential/parallel benchmark pair quantifies the runner's
// speedup on the full 36-policy design of Experiment 2 — the sweep the
// report tool spends most of its time in. On an N-core machine the
// parallel variant should approach N× the sequential throughput, since
// the 36 replays are independent and CPU-bound.

var (
	benchWorkloadOnce sync.Once
	benchWorkloadTr   *trace.Trace
	benchWorkloadBase *Exp1Result
	benchWorkloadErr  error
)

// benchExp2Workload returns the benchmark workload and its Experiment 1
// baseline, generated once and shared across every benchmark in the
// package so the generation cost never leaks into a timed region.
func benchExp2Workload(b *testing.B) (*trace.Trace, *Exp1Result) {
	b.Helper()
	benchWorkloadOnce.Do(func() {
		cfg := workload.BL(3)
		cfg.Scale = 0.05
		tr, _, err := workload.GenerateValidated(cfg)
		if err != nil {
			benchWorkloadErr = err
			return
		}
		tr.DayIndex()
		benchWorkloadTr = tr
		benchWorkloadBase = Experiment1(tr, 1)
	})
	if benchWorkloadErr != nil {
		b.Fatal(benchWorkloadErr)
	}
	return benchWorkloadTr, benchWorkloadBase
}

func benchmarkExperiment2(b *testing.B, workers int) {
	tr, base := benchExp2Workload(b)
	combos := policy.AllCombos()
	r := NewRunner(RunnerConfig{Workers: workers})
	var bytes int64
	for i := range tr.Requests {
		bytes += tr.Requests[i].Size
	}
	b.SetBytes(bytes * int64(len(combos)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Experiment2R(r, tr, base, combos, 0.10, 2)
		if len(res.Runs) != len(combos) {
			b.Fatalf("%d runs", len(res.Runs))
		}
	}
	b.StopTimer()
	st := r.Stats()
	b.ReportMetric(st.Speedup(), "speedup")
}

// BenchmarkExperiment2Sequential is the pre-runner baseline: the same
// 36 replays on a single worker.
func BenchmarkExperiment2Sequential(b *testing.B) {
	benchmarkExperiment2(b, 1)
}

// BenchmarkExperiment2Parallel fans the 36 replays across GOMAXPROCS
// workers.
func BenchmarkExperiment2Parallel(b *testing.B) {
	benchmarkExperiment2(b, runtime.GOMAXPROCS(0))
}
