package sim

import (
	"reflect"
	"testing"

	"webcache/internal/policy"
)

// The interned columnar engine's contract: every experiment that runs
// through RunPolicy produces results deeply equal to the string-indexed
// engine's. These tests flip DisableInterning around the same seeded
// workloads and require reflect.DeepEqual, the sim-level counterpart of
// core's TestInternedMatchesStringEngine.

// runBothModes invokes f once per interning mode (string engine first)
// and returns the two results.
func runBothModes(f func() any) (str, interned any) {
	DisableInterning = true
	str = f()
	DisableInterning = false
	interned = f()
	return str, interned
}

func TestInterningExperiment1(t *testing.T) {
	for _, wl := range []string{"C", "BL"} {
		tr := detTrace(t, wl, 5)
		str, interned := runBothModes(func() any { return Experiment1(tr, 1) })
		if !reflect.DeepEqual(str, interned) {
			t.Errorf("Experiment1 %s: interned result differs from string engine", wl)
		}
	}
}

func TestInterningExperiment2(t *testing.T) {
	r := DefaultRunner()
	for _, wl := range []string{"C", "BL"} {
		tr := detTrace(t, wl, 5)
		base := Experiment1(tr, 1)
		str, interned := runBothModes(func() any {
			return Experiment2R(r, tr, base, policy.PrimaryCombos(), 0.10, 2)
		})
		if !reflect.DeepEqual(str, interned) {
			t.Errorf("Experiment2 %s: interned result differs from string engine", wl)
		}
	}
}

func TestInterningExperiment2Secondary(t *testing.T) {
	r := DefaultRunner()
	tr := detTrace(t, "G", 11)
	base := Experiment1(tr, 1)
	str, interned := runBothModes(func() any {
		return Experiment2SecondaryR(r, tr, base, 0.10, 2)
	})
	if !reflect.DeepEqual(str, interned) {
		t.Error("Experiment2Secondary: interned result differs from string engine")
	}
}

func TestInterningClassics(t *testing.T) {
	r := DefaultRunner()
	tr := detTrace(t, "C", 7)
	base := Experiment1(tr, 1)
	str, interned := runBothModes(func() any {
		return ExperimentClassicsR(r, tr, base, 0.10, 2)
	})
	if !reflect.DeepEqual(str, interned) {
		t.Error("ExperimentClassics: interned result differs from string engine")
	}
}
