package trace

import (
	"testing"
)

func TestClassifyURL(t *testing.T) {
	cases := []struct {
		url  string
		want DocType
	}{
		{"http://a.example/img/logo.gif", Graphics},
		{"http://a.example/pic.JPG", Graphics},
		{"http://a.example/pic.jpeg", Graphics},
		{"http://a.example/icon.xbm", Graphics},
		{"http://a.example/index.html", Text},
		{"http://a.example/paper.ps", Text},
		{"http://a.example/notes.txt", Text},
		{"http://a.example/dir/", Text},
		{"http://a.example/", Text},
		{"http://a.example/song.au", Audio},
		{"http://a.example/clip.wav", Audio},
		{"http://a.example/movie.mpg", Video},
		{"http://a.example/movie.qt", Video},
		{"http://a.example/cgi-bin/search", CGI},
		{"http://a.example/page.html?q=1", CGI},
		{"http://a.example/data.xyz", Unknown},
		{"http://a.example/README", Unknown},
		{"/relative/path.gif", Graphics},
		{"http://a.example/weird.", Unknown},
		{"http://a.example/page.html#frag", Text},
	}
	for _, tc := range cases {
		if got := ClassifyURL(tc.url); got != tc.want {
			t.Errorf("ClassifyURL(%q) = %v, want %v", tc.url, got, tc.want)
		}
	}
}

func TestIsDynamic(t *testing.T) {
	if !IsDynamic("http://a/cgi-bin/x") {
		t.Error("cgi-bin not dynamic")
	}
	if !IsDynamic("http://a/x.html?q=1") {
		t.Error("query string not dynamic")
	}
	if IsDynamic("http://a/x.html") {
		t.Error("plain html marked dynamic")
	}
}

func TestDocTypeString(t *testing.T) {
	names := map[DocType]string{
		Graphics: "Graphics", Text: "Text/html", Audio: "Audio",
		Video: "Video", CGI: "CGI", Unknown: "Unknown",
	}
	for dt, want := range names {
		if got := dt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", dt, got, want)
		}
	}
}

func TestRequestDay(t *testing.T) {
	start := int64(800000000) - 800000000%86400
	r := Request{Time: start + 86400*3 + 100}
	if d := r.Day(start); d != 3 {
		t.Fatalf("Day = %d, want 3", d)
	}
}

func TestTraceDays(t *testing.T) {
	start := int64(86400 * 1000)
	tr := &Trace{Start: start, Requests: []Request{
		{Time: start + 10},
		{Time: start + 86400*4 + 5},
	}}
	if d := tr.Days(); d != 5 {
		t.Fatalf("Days = %d, want 5", d)
	}
	empty := &Trace{}
	if d := empty.Days(); d != 0 {
		t.Fatalf("empty Days = %d, want 0", d)
	}
}

func TestTotalBytes(t *testing.T) {
	tr := &Trace{Requests: []Request{{Size: 10}, {Size: 32}}}
	if n := tr.TotalBytes(); n != 42 {
		t.Fatalf("TotalBytes = %d, want 42", n)
	}
}

func TestValidateStatusFilter(t *testing.T) {
	raw := &Trace{Requests: []Request{
		{URL: "http://a/x.html", Status: 200, Size: 100, Time: 1},
		{URL: "http://a/x.html", Status: 304, Size: 0, Time: 2},
		{URL: "http://a/y.html", Status: 404, Size: 50, Time: 3},
		{URL: "http://a/x.html", Status: 200, Size: 100, Time: 4},
	}}
	valid, stats := Validate(raw)
	if stats.Kept != 2 || stats.DroppedStatus != 2 {
		t.Fatalf("kept=%d droppedStatus=%d, want 2/2", stats.Kept, stats.DroppedStatus)
	}
	if len(valid.Requests) != 2 {
		t.Fatalf("validated trace has %d requests", len(valid.Requests))
	}
}

func TestValidateZeroSizeRules(t *testing.T) {
	raw := &Trace{Requests: []Request{
		{URL: "http://a/unseen.html", Status: 200, Size: 0, Time: 1},  // dropped: zero-size first occurrence
		{URL: "http://a/known.html", Status: 200, Size: 500, Time: 2}, // kept
		{URL: "http://a/known.html", Status: 200, Size: 0, Time: 3},   // kept with inherited size 500
	}}
	valid, stats := Validate(raw)
	if stats.DroppedZeroSize != 1 {
		t.Fatalf("DroppedZeroSize = %d, want 1", stats.DroppedZeroSize)
	}
	if stats.InheritedSize != 1 {
		t.Fatalf("InheritedSize = %d, want 1", stats.InheritedSize)
	}
	if len(valid.Requests) != 2 {
		t.Fatalf("kept %d requests, want 2", len(valid.Requests))
	}
	if got := valid.Requests[1].Size; got != 500 {
		t.Fatalf("inherited size = %d, want 500", got)
	}
}

func TestValidateSizeChangeCounting(t *testing.T) {
	raw := &Trace{Requests: []Request{
		{URL: "http://a/d.html", Status: 200, Size: 100, Time: 1},
		{URL: "http://a/d.html", Status: 200, Size: 100, Time: 2}, // same size re-ref
		{URL: "http://a/d.html", Status: 200, Size: 120, Time: 3}, // changed
		{URL: "http://a/d.html", Status: 200, Size: 120, Time: 4}, // same again
	}}
	_, stats := Validate(raw)
	if stats.ReReferences != 3 || stats.SizeChanges != 1 {
		t.Fatalf("reRefs=%d changes=%d, want 3/1", stats.ReReferences, stats.SizeChanges)
	}
	if f := stats.SizeChangeFraction(); f < 0.33 || f > 0.34 {
		t.Fatalf("SizeChangeFraction = %v, want 1/3", f)
	}
}

func TestValidateInheritedAfterChange(t *testing.T) {
	// A zero-size entry after a size change inherits the *latest* size.
	raw := &Trace{Requests: []Request{
		{URL: "http://a/d.html", Status: 200, Size: 100, Time: 1},
		{URL: "http://a/d.html", Status: 200, Size: 250, Time: 2},
		{URL: "http://a/d.html", Status: 200, Size: 0, Time: 3},
	}}
	valid, _ := Validate(raw)
	if got := valid.Requests[2].Size; got != 250 {
		t.Fatalf("inherited %d, want 250", got)
	}
}

func TestValidateEmptyFraction(t *testing.T) {
	var s ValidateStats
	if f := s.SizeChangeFraction(); f != 0 {
		t.Fatalf("empty SizeChangeFraction = %v", f)
	}
}

func TestValidateSetsStart(t *testing.T) {
	raw := &Trace{Requests: []Request{
		{URL: "http://a/d.html", Status: 200, Size: 10, Time: 86400*100 + 7},
	}}
	valid, _ := Validate(raw)
	if valid.Start != 86400*100 {
		t.Fatalf("Start = %d, want %d", valid.Start, 86400*100)
	}
}
