package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"webcache/internal/rng"
)

func TestParseCLFLine(t *testing.T) {
	line := `burrow.cs.vt.edu - - [17/Sep/1995:14:05:12 +0000] "GET http://www.w3.org/a.html HTTP/1.0" 200 2326`
	req, err := ParseCLFLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "burrow.cs.vt.edu" {
		t.Errorf("client %q", req.Client)
	}
	if req.URL != "http://www.w3.org/a.html" {
		t.Errorf("url %q", req.URL)
	}
	if req.Status != 200 || req.Size != 2326 {
		t.Errorf("status/size %d/%d", req.Status, req.Size)
	}
	if req.Type != Text {
		t.Errorf("type %v", req.Type)
	}
	if req.Time != 811346712 {
		t.Errorf("time %d", req.Time)
	}
}

func TestParseCLFLineExtended(t *testing.T) {
	line := `c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 99 lastmod=811000000`
	req, err := ParseCLFLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if req.LastModified != 811000000 {
		t.Fatalf("lastmod %d", req.LastModified)
	}
}

func TestParseCLFLineDashSize(t *testing.T) {
	line := `c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 304 -`
	req, err := ParseCLFLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if req.Size != 0 || req.Status != 304 {
		t.Fatalf("size/status %d/%d", req.Size, req.Status)
	}
}

func TestParseCLFLineMalformed(t *testing.T) {
	bad := []string{
		"",
		"host",
		"host - -",
		`host - - [baddate] "GET /x HTTP/1.0" 200 5`,
		`host - - [17/Sep/1995:14:05:12 +0000] GET /x 200 5`,
		`host - - [17/Sep/1995:14:05:12 +0000] "GEThttp" 200 5`,
		`host - - [17/Sep/1995:14:05:12 +0000] "GET /x HTTP/1.0" abc 5`,
		`host - - [17/Sep/1995:14:05:12 +0000] "GET /x HTTP/1.0" 200 -5`,
		`host - - [17/Sep/1995:14:05:12 +0000] "GET /x HTTP/1.0" 200`,
		`host - - [17/Sep/1995:14:05:12 +0000] "GET /x HTTP/1.0`,
	}
	for _, line := range bad {
		if _, err := ParseCLFLine(line); err == nil {
			t.Errorf("ParseCLFLine(%q) accepted", line)
		}
	}
}

func TestCLFRoundTrip(t *testing.T) {
	tr := &Trace{Name: "rt", Start: 811296000, Requests: []Request{
		{Time: 811296010, Client: "c1.vt.edu", URL: "http://s1.vt.edu/a.gif", Status: 200, Size: 1234, Type: Graphics},
		{Time: 811296020, Client: "c2.vt.edu", URL: "http://s1.vt.edu/b.html", Status: 404, Size: 0, Type: Text},
		{Time: 811296030, Client: "c1.vt.edu", URL: "http://s2.vt.edu/c.au", Status: 200, Size: 999999, Type: Audio, LastModified: 811000000},
	}}
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr, true); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadCLF(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 0 {
		t.Fatalf("%d malformed lines: %v", stats.Malformed, stats.FirstError)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("round trip %d != %d requests", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], got.Requests[i]
		if a.Time != b.Time || a.Client != b.Client || a.URL != b.URL ||
			a.Status != b.Status || a.Size != b.Size || a.LastModified != b.LastModified {
			t.Fatalf("request %d mismatch:\n  wrote %+v\n  read  %+v", i, a, b)
		}
	}
	if got.Start != tr.Start {
		t.Fatalf("Start %d != %d", got.Start, tr.Start)
	}
}

// TestCLFRoundTripProperty fuzzes random requests through write+read.
func TestCLFRoundTripProperty(t *testing.T) {
	r := rng.New(99)
	f := func(tsOff uint32, size uint32, status8 uint8) bool {
		status := []int{200, 304, 404, 500}[int(status8)%4]
		req := Request{
			Time:   811296000 + int64(tsOff%(numDays*86400)),
			Client: "c" + string(rune('a'+r.Intn(26))),
			URL:    "http://s.vt.edu/p" + string(rune('a'+r.Intn(26))) + ".gif",
			Status: status,
			Size:   int64(size % (1 << 30)),
		}
		tr := &Trace{Requests: []Request{req}}
		var buf bytes.Buffer
		if err := WriteCLF(&buf, tr, false); err != nil {
			return false
		}
		got, _, err := ReadCLF(&buf, "x")
		if err != nil || len(got.Requests) != 1 {
			return false
		}
		g := got.Requests[0]
		return g.Time == req.Time && g.URL == req.URL && g.Status == req.Status && g.Size == req.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// numDays bounds the random timestamp offset in the property test.
const numDays = 365

func TestReadCLFSkipsMalformed(t *testing.T) {
	log := strings.Join([]string{
		`c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 10`,
		`garbage line`,
		``,
		`c2 - - [17/Sep/1995:14:05:13 +0000] "GET http://s/b.gif HTTP/1.0" 200 20`,
	}, "\n")
	tr, stats, err := ReadCLF(strings.NewReader(log), "x")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parsed != 2 || stats.Malformed != 1 {
		t.Fatalf("parsed=%d malformed=%d", stats.Parsed, stats.Malformed)
	}
	if stats.FirstError == nil || !strings.Contains(stats.FirstError.Error(), "line 2") {
		t.Fatalf("FirstError = %v", stats.FirstError)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("%d requests", len(tr.Requests))
	}
}

func TestFormatCLFTimeStable(t *testing.T) {
	if got := FormatCLFTime(811346712); got != "17/Sep/1995:14:05:12 +0000" {
		t.Fatalf("FormatCLFTime = %q", got)
	}
}
