package trace

// Validation implements §1.1 of the paper: which logged requests count as
// part of the simulated trace, and how zero-size log entries are handled.
//
// Rules, verbatim from the paper:
//
//  1. The server return code must be 200. Client/server errors and
//     requests satisfied by the client's own cache (304) are dropped.
//  2. If the log records a size of 0 for a URL that has not been seen
//     before, the request is discarded.
//  3. If the log records a size of 0 for a URL previously seen with a
//     non-zero size, the URL is assumed unmodified: the request is kept
//     and assigned the last known size.

// ValidateStats reports what Validate did and the size-change statistics
// the paper quotes (0.5%–4.1% of re-referenced URLs change size).
type ValidateStats struct {
	Input           int // requests examined
	Kept            int // requests in the validated trace
	DroppedStatus   int // non-200 requests dropped
	DroppedZeroSize int // zero-size first-occurrence requests dropped
	InheritedSize   int // zero-size requests assigned the last known size
	SizeChanges     int // re-references whose size differed from the last known size
	ReReferences    int // re-references to a previously seen URL
}

// SizeChangeFraction returns the fraction of re-references that observed
// a changed size (the paper's 0.5%–4.1% consistency statistic).
func (s *ValidateStats) SizeChangeFraction() float64 {
	if s.ReReferences == 0 {
		return 0
	}
	return float64(s.SizeChanges) / float64(s.ReReferences)
}

// Validate applies §1.1 to raw and returns the validated trace along with
// statistics. The input is not modified. Requests in the result carry the
// (possibly inherited) size actually used by the simulator, so hit rate
// and weighted hit rate are measured against the same exact trace.
func Validate(raw *Trace) (*Trace, *ValidateStats) {
	stats := &ValidateStats{Input: len(raw.Requests)}
	out := &Trace{Name: raw.Name, Start: raw.Start}
	out.Requests = make([]Request, 0, len(raw.Requests))
	lastSize := make(map[string]int64, 1024)

	for i := range raw.Requests {
		r := raw.Requests[i]
		if r.Status != 200 {
			stats.DroppedStatus++
			continue
		}
		prev, seen := lastSize[r.URL]
		if r.Size == 0 {
			if !seen {
				stats.DroppedZeroSize++
				continue
			}
			r.Size = prev
			stats.InheritedSize++
		}
		if seen {
			stats.ReReferences++
			if r.Size != prev {
				stats.SizeChanges++
			}
		}
		lastSize[r.URL] = r.Size
		stats.Kept++
		out.Requests = append(out.Requests, r)
	}
	if len(out.Requests) > 0 && out.Start == 0 {
		first := out.Requests[0].Time
		out.Start = first - first%86400
	}
	return out, stats
}
