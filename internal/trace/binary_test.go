package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestBinaryRoundTrip checks that the binary format reproduces a trace
// exactly: name, start, and every request field.
func TestBinaryRoundTrip(t *testing.T) {
	tr := internTestTrace()
	tr.Requests[2].LastModified = tr.Requests[2].Time - 1000
	tr.Requests[3].Status = 404
	tr.Requests[4].Size = 0

	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Start != tr.Start {
		t.Fatalf("header %q/%d, want %q/%d", got.Name, got.Start, tr.Name, tr.Start)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatalf("requests differ after round trip:\n got %+v\nwant %+v", got.Requests, tr.Requests)
	}
}

// TestBinaryRoundTripEmpty covers the zero-request edge.
func TestBinaryRoundTripEmpty(t *testing.T) {
	tr := &Trace{Name: "empty", Start: 86400}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "empty" || got.Start != 86400 || len(got.Requests) != 0 {
		t.Fatalf("bad empty round trip: %+v", got)
	}
}

// TestBinaryFile exercises the file helpers, including the atomic
// write-then-rename.
func TestBinaryFile(t *testing.T) {
	tr := internTestTrace()
	path := filepath.Join(t.TempDir(), "t.wct")
	if err := WriteBinaryFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatal("file round trip lost requests")
	}
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".wct-*"))
	if len(leftovers) != 0 {
		t.Fatalf("temporary files left behind: %v", leftovers)
	}
}

// TestBinaryRejectsCorruption checks that bad magic and truncated input
// produce errors, not panics or garbage traces.
func TestBinaryRejectsCorruption(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Fatal("accepted bad magic")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, internTestTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{5, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("accepted truncation at %d bytes", n)
		}
	}
}

// TestReadBinaryFileMissing checks the error path for an absent cache.
func TestReadBinaryFileMissing(t *testing.T) {
	if _, err := ReadBinaryFile(filepath.Join(t.TempDir(), "missing.wct")); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}
