package trace

import "sort"

// Transformations used when assembling studies from collected logs: the
// paper merges concurrent captures (BR and BL were collected together),
// restricts to client subsets (workload G is "a popular time-shared
// client"), and trims to measurement windows (BL's Figs. 1-2 cover
// Sep 17 – Oct 31). These helpers never mutate their inputs.

// Merge combines traces into one, ordered by request time. The result
// is named name and starts at the earliest midnight.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
	}
	out.Requests = make([]Request, 0, total)
	for _, t := range traces {
		out.Requests = append(out.Requests, t.Requests...)
	}
	sort.SliceStable(out.Requests, func(i, j int) bool {
		return out.Requests[i].Time < out.Requests[j].Time
	})
	if len(out.Requests) > 0 {
		first := out.Requests[0].Time
		out.Start = first - first%86400
	}
	return out
}

// FilterClients returns the sub-trace of requests whose client passes
// keep. Start is preserved so day indices stay comparable with the
// parent trace.
func FilterClients(t *Trace, keep func(client string) bool) *Trace {
	out := &Trace{Name: t.Name, Start: t.Start}
	for i := range t.Requests {
		if keep(t.Requests[i].Client) {
			out.Requests = append(out.Requests, t.Requests[i])
		}
	}
	return out
}

// Window returns the sub-trace of requests with day index in
// [fromDay, toDay] relative to t.Start. Start is preserved.
func Window(t *Trace, fromDay, toDay int) *Trace {
	out := &Trace{Name: t.Name, Start: t.Start}
	for i := range t.Requests {
		if d := t.Requests[i].Day(t.Start); d >= fromDay && d <= toDay {
			out.Requests = append(out.Requests, t.Requests[i])
		}
	}
	return out
}

// Rebase shifts all request times so the trace starts at newStart's
// midnight, aligning traces collected in different semesters for merged
// studies.
func Rebase(t *Trace, newStart int64) *Trace {
	newStart -= newStart % 86400
	delta := newStart - t.Start
	out := &Trace{Name: t.Name, Start: newStart}
	out.Requests = make([]Request, len(t.Requests))
	copy(out.Requests, t.Requests)
	for i := range out.Requests {
		out.Requests[i].Time += delta
		if out.Requests[i].LastModified != 0 {
			out.Requests[i].LastModified += delta
		}
	}
	return out
}
