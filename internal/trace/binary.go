package trace

// Binary trace format: a compact, URL-interned on-disk encoding of a
// trace, so repeated experiment invocations load the trace in one pass
// instead of re-running the synthetic generator (or re-parsing a log).
// The layout is columnar in spirit — string tables up front, then
// varint-packed per-request tuples referencing them by dense ID — and
// round-trips a trace exactly: ReadBinary(WriteBinary(tr)) reproduces
// Name, Start and every Request field bit for bit, so simulation
// results are identical whether the trace was generated or loaded.
//
//	magic "WCT1"
//	name        (uvarint len + bytes)
//	start       (varint, Unix seconds)
//	url table   (uvarint count, then len+bytes each; index = URL ID)
//	client table(uvarint count, then len+bytes each; index = client ID)
//	requests    (uvarint count, then per request:
//	             time delta from previous request (varint),
//	             client ID, URL ID, status (uvarints),
//	             size, last-modified (varints), type (uvarint))
//
// Deltas make timestamps one or two bytes each on sorted traces, and
// the shared string tables mean a loaded trace is already interned:
// requests referencing the same URL share one string.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// binMagic identifies (and versions) the binary trace format.
const binMagic = "WCT1"

// binary format sanity bounds: a corrupt length prefix must produce an
// error, not an arbitrarily large allocation.
const (
	maxBinString = 1 << 24 // longest URL/client/name accepted
	maxBinCount  = 1 << 31 // most table entries / requests accepted
)

// WriteBinary writes tr in the binary trace format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := putString(tr.Name); err != nil {
		return err
	}
	if err := putVarint(tr.Start); err != nil {
		return err
	}

	// Build the string tables in first-appearance order.
	urls := NewInterner(len(tr.Requests) / 3)
	clients := NewInterner(256)
	for i := range tr.Requests {
		urls.Intern(tr.Requests[i].URL)
		clients.Intern(tr.Requests[i].Client)
	}
	for _, table := range [][]string{urls.URLs(), clients.URLs()} {
		if err := putUvarint(uint64(len(table))); err != nil {
			return err
		}
		for _, s := range table {
			if err := putString(s); err != nil {
				return err
			}
		}
	}

	if err := putUvarint(uint64(len(tr.Requests))); err != nil {
		return err
	}
	prev := tr.Start
	for i := range tr.Requests {
		r := &tr.Requests[i]
		uid, _ := urls.Lookup(r.URL)
		cid, _ := clients.Lookup(r.Client)
		if err := putVarint(r.Time - prev); err != nil {
			return err
		}
		prev = r.Time
		if err := putUvarint(uint64(cid)); err != nil {
			return err
		}
		if err := putUvarint(uint64(uid)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Status)); err != nil {
			return err
		}
		if err := putVarint(r.Size); err != nil {
			return err
		}
		if err := putVarint(r.LastModified); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Type)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading binary magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("trace: not a binary trace (magic %q, want %q)", magic, binMagic)
	}
	getUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: reading %s: %w", what, err)
		}
		return v, nil
	}
	getVarint := func(what string) (int64, error) {
		v, err := binary.ReadVarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: reading %s: %w", what, err)
		}
		return v, nil
	}
	getString := func(what string) (string, error) {
		n, err := getUvarint(what + " length")
		if err != nil {
			return "", err
		}
		if n > maxBinString {
			return "", fmt.Errorf("trace: %s length %d exceeds limit", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("trace: reading %s: %w", what, err)
		}
		return string(b), nil
	}
	getTable := func(what string) ([]string, error) {
		n, err := getUvarint(what + " count")
		if err != nil {
			return nil, err
		}
		if n > maxBinCount {
			return nil, fmt.Errorf("trace: %s count %d exceeds limit", what, n)
		}
		table := make([]string, 0, min(int(n), 1<<20))
		for i := uint64(0); i < n; i++ {
			s, err := getString(what)
			if err != nil {
				return nil, err
			}
			table = append(table, s)
		}
		return table, nil
	}

	tr := &Trace{}
	var err error
	if tr.Name, err = getString("trace name"); err != nil {
		return nil, err
	}
	if tr.Start, err = getVarint("trace start"); err != nil {
		return nil, err
	}
	urls, err := getTable("url")
	if err != nil {
		return nil, err
	}
	clients, err := getTable("client")
	if err != nil {
		return nil, err
	}

	n, err := getUvarint("request count")
	if err != nil {
		return nil, err
	}
	if n > maxBinCount {
		return nil, fmt.Errorf("trace: request count %d exceeds limit", n)
	}
	tr.Requests = make([]Request, 0, min(int(n), 1<<20))
	prev := tr.Start
	for i := uint64(0); i < n; i++ {
		var req Request
		delta, err := getVarint("request time")
		if err != nil {
			return nil, err
		}
		req.Time = prev + delta
		prev = req.Time
		cid, err := getUvarint("client ID")
		if err != nil {
			return nil, err
		}
		if cid >= uint64(len(clients)) {
			return nil, fmt.Errorf("trace: client ID %d out of range (%d clients)", cid, len(clients))
		}
		req.Client = clients[cid]
		uid, err := getUvarint("URL ID")
		if err != nil {
			return nil, err
		}
		if uid >= uint64(len(urls)) {
			return nil, fmt.Errorf("trace: URL ID %d out of range (%d urls)", uid, len(urls))
		}
		req.URL = urls[uid]
		status, err := getUvarint("status")
		if err != nil {
			return nil, err
		}
		req.Status = int(status)
		if req.Size, err = getVarint("size"); err != nil {
			return nil, err
		}
		if req.LastModified, err = getVarint("last-modified"); err != nil {
			return nil, err
		}
		typ, err := getUvarint("type")
		if err != nil {
			return nil, err
		}
		if typ >= NumDocTypes {
			return nil, fmt.Errorf("trace: document type %d out of range", typ)
		}
		req.Type = DocType(typ)
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// WriteBinaryFile writes tr to path via a temporary file and rename, so
// a concurrent reader never observes a half-written cache.
func WriteBinaryFile(path string, tr *Trace) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".wct-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteBinary(tmp, tr); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadBinaryFile reads a binary trace from path.
func ReadBinaryFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
