package trace

// Columnar is the interned struct-of-arrays view of a trace: one int32
// URL ID, size, time, day index and document type per request, plus
// per-ID tables derived from each distinct URL exactly once. The view
// is built in a single decode pass (Trace.Columnar) and is read-only
// afterwards, so a policy sweep fans the same view out to every worker
// and replays it with no string hashing, no day division and no URL
// re-classification per request.
type Columnar struct {
	Name  string
	Start int64 // Unix seconds of the first day's midnight

	// Per-request columns, all of length Len().
	IDs   []int32   // interned URL ID
	Sizes []int64   // bytes transferred (after §1.1 validation)
	Times []int64   // Unix seconds
	Day   []int32   // day index relative to Start
	Types []DocType // the request's logged media type (drives per-type stats)

	// Per-ID tables, all of length NumIDs(), indexed by interned ID.
	URLs []string // ID → URL, for reporting and the LatencyOf/ExpiresOf hooks
	// Class is ClassifyURL(URL) computed once per distinct URL; Dynamic
	// is Class == CGI, the §1.1 dynamically-generated test that the
	// string engine re-derives from the URL on every insert.
	Class   []DocType
	Dynamic []bool

	in *Interner
}

// BuildColumnar interns every URL of tr and materializes the columnar
// view. hint pre-sizes the interner (expected distinct-URL count); any
// value yields the same view.
func BuildColumnar(tr *Trace, hint int) *Columnar {
	n := len(tr.Requests)
	c := &Columnar{
		Name:  tr.Name,
		Start: tr.Start,
		IDs:   make([]int32, n),
		Sizes: make([]int64, n),
		Times: make([]int64, n),
		Day:   make([]int32, n),
		Types: make([]DocType, n),
		in:    NewInterner(hint),
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		c.IDs[i] = c.in.Intern(r.URL)
		c.Sizes[i] = r.Size
		c.Times[i] = r.Time
		c.Day[i] = int32((r.Time - tr.Start) / 86400)
		c.Types[i] = r.Type
	}
	c.URLs = c.in.URLs()
	c.Class = make([]DocType, len(c.URLs))
	c.Dynamic = make([]bool, len(c.URLs))
	for id, url := range c.URLs {
		dt := ClassifyURL(url)
		c.Class[id] = dt
		c.Dynamic[id] = dt == CGI
	}
	return c
}

// Len returns the number of requests in the view.
func (c *Columnar) Len() int { return len(c.IDs) }

// NumIDs returns the number of distinct URLs (IDs are 0..NumIDs()-1).
func (c *Columnar) NumIDs() int { return len(c.URLs) }

// ID returns the interned ID of url, if url appears in the trace.
func (c *Columnar) ID(url string) (int32, bool) { return c.in.Lookup(url) }

// Columnar returns the interned columnar view of t, built once and
// shared between replays (safe for concurrent use; the requests must
// not be mutated afterwards, the same contract as DayIndex). Traces
// produced by the transform helpers get a fresh view.
func (t *Trace) Columnar() *Columnar {
	t.colOnce.Do(func() {
		t.col = BuildColumnar(t, len(t.Requests)/3)
	})
	return t.col
}
