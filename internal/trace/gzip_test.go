package trace

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

func writeLog(t *testing.T, path string, gz bool) {
	t.Helper()
	tr := &Trace{Requests: []Request{
		{Time: 811296010, Client: "c1", URL: "http://s/a.gif", Status: 200, Size: 10, Type: Graphics},
		{Time: 811296020, Client: "c2", URL: "http://s/b.html", Status: 200, Size: 20, Type: Text},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if gz {
		zw := gzip.NewWriter(f)
		if err := WriteCLF(zw, tr, false); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := WriteCLF(f, tr, false); err != nil {
		t.Fatal(err)
	}
}

func TestReadCLFFilePlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	writeLog(t, path, false)
	tr, stats, err := ReadCLFFile(path, "plain")
	if err != nil || stats.Parsed != 2 || len(tr.Requests) != 2 {
		t.Fatalf("plain read: %v, %+v", err, stats)
	}
}

func TestReadCLFFileGzipBySuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log.gz")
	writeLog(t, path, true)
	tr, _, err := ReadCLFFile(path, "gz")
	if err != nil || len(tr.Requests) != 2 {
		t.Fatalf("gz read: %v, %d requests", err, len(tr.Requests))
	}
}

func TestReadCLFFileGzipByMagic(t *testing.T) {
	// Gzipped content without the .gz suffix: detected by magic bytes.
	path := filepath.Join(t.TempDir(), "sneaky.log")
	writeLog(t, path, true)
	tr, _, err := ReadCLFFile(path, "magic")
	if err != nil || len(tr.Requests) != 2 {
		t.Fatalf("magic read: %v, %d requests", err, len(tr.Requests))
	}
}

func TestReadCLFFileMissing(t *testing.T) {
	if _, _, err := ReadCLFFile("/nonexistent/x.log", "x"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCLFFileCorruptGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log.gz")
	if err := os.WriteFile(path, []byte{0x1f, 0x8b, 0xff, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCLFFile(path, "bad"); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
