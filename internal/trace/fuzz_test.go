package trace

import (
	"bytes"
	"testing"
)

// FuzzParseCLFLine: arbitrary log lines must parse or error, never
// panic, and accepted lines must re-serialize consistently.
func FuzzParseCLFLine(f *testing.F) {
	f.Add(`c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 10`)
	f.Add(`c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 10 lastmod=811000000`)
	f.Add(`host - - [date] "GET" 200`)
	f.Add(``)
	f.Add(`"""[[[]]]`)
	f.Fuzz(func(t *testing.T, line string) {
		req, err := ParseCLFLine(line)
		if err != nil {
			return
		}
		if req.Size < 0 {
			t.Fatalf("accepted negative size: %q", line)
		}
		if req.URL == "" {
			t.Fatalf("accepted empty URL: %q", line)
		}
	})
}

// FuzzInterner: URL↔ID round-trips for arbitrary strings, distinct
// URLs never collide on an ID, and the §1.1 hit rule — a request hits
// iff URL *and* size match — is preserved when URLs are replaced by
// interned IDs.
func FuzzInterner(f *testing.F) {
	f.Add("http://s/a.gif", "http://s/b.gif", int64(100), int64(100))
	f.Add("http://s/a.gif", "http://s/a.gif", int64(100), int64(200))
	f.Add("", "\x00", int64(0), int64(0))
	f.Add("u", "u", int64(-5), int64(-5))
	f.Fuzz(func(t *testing.T, urlA, urlB string, sizeA, sizeB int64) {
		in := NewInterner(0)
		idA := in.Intern(urlA)
		idB := in.Intern(urlB)
		// Bijection: ID equality must coincide with URL equality.
		if (urlA == urlB) != (idA == idB) {
			t.Fatalf("IDs %d,%d for URLs %q,%q: interning broke URL identity", idA, idB, urlA, urlB)
		}
		// Round trip both directions.
		if in.URL(idA) != urlA || in.URL(idB) != urlB {
			t.Fatalf("URL(ID) round trip lost a URL: %q,%q", in.URL(idA), in.URL(idB))
		}
		for _, u := range []string{urlA, urlB} {
			id, ok := in.Lookup(u)
			if !ok || in.URL(id) != u {
				t.Fatalf("Lookup(%q) = %d,%v: not the interned ID", u, id, ok)
			}
		}
		// Re-interning is stable.
		if in.Intern(urlA) != idA || in.Intern(urlB) != idB {
			t.Fatal("re-interning changed an ID")
		}
		// §1.1 hit rule: a cached copy of (urlA, sizeA) serves a request
		// for (urlB, sizeB) iff URL and size both match — identically
		// under string comparison and under interned-ID comparison.
		hitByURL := urlA == urlB && sizeA == sizeB
		hitByID := idA == idB && sizeA == sizeB
		if hitByURL != hitByID {
			t.Fatalf("hit rule diverged: byURL=%v byID=%v for %q/%d vs %q/%d",
				hitByURL, hitByID, urlA, sizeA, urlB, sizeB)
		}
	})
}

// FuzzReadBinary: arbitrary bytes must parse or error, never panic, and
// anything WriteBinary produced must re-read exactly.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, internTestTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(binMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
	})
}

// FuzzClassifyURL: the classifier is total over strings.
func FuzzClassifyURL(f *testing.F) {
	f.Add("http://a/x.gif")
	f.Add("")
	f.Add("cgi-bin")
	f.Add("http://")
	f.Add("...///...")
	f.Fuzz(func(t *testing.T, url string) {
		if dt := ClassifyURL(url); dt >= NumDocTypes {
			t.Fatalf("invalid type %d for %q", dt, url)
		}
	})
}
