package trace

import "testing"

// FuzzParseCLFLine: arbitrary log lines must parse or error, never
// panic, and accepted lines must re-serialize consistently.
func FuzzParseCLFLine(f *testing.F) {
	f.Add(`c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 10`)
	f.Add(`c1 - - [17/Sep/1995:14:05:12 +0000] "GET http://s/a.gif HTTP/1.0" 200 10 lastmod=811000000`)
	f.Add(`host - - [date] "GET" 200`)
	f.Add(``)
	f.Add(`"""[[[]]]`)
	f.Fuzz(func(t *testing.T, line string) {
		req, err := ParseCLFLine(line)
		if err != nil {
			return
		}
		if req.Size < 0 {
			t.Fatalf("accepted negative size: %q", line)
		}
		if req.URL == "" {
			t.Fatalf("accepted empty URL: %q", line)
		}
	})
}

// FuzzClassifyURL: the classifier is total over strings.
func FuzzClassifyURL(f *testing.F) {
	f.Add("http://a/x.gif")
	f.Add("")
	f.Add("cgi-bin")
	f.Add("http://")
	f.Add("...///...")
	f.Fuzz(func(t *testing.T, url string) {
		if dt := ClassifyURL(url); dt >= NumDocTypes {
			t.Fatalf("invalid type %d for %q", dt, url)
		}
	})
}
