package trace

// Interner assigns each distinct URL a dense int32 ID, so the replay
// engine can index entries by integer instead of hashing URL strings on
// every request. A trace is interned exactly once (Trace.Columnar); the
// 36-policy Experiment 2 sweep then replays the same columnar view 36
// times with no per-request string work.
//
// IDs are dense: the i-th distinct URL (in first-appearance order)
// gets ID i, so a slice of length Len() indexed by ID covers every
// interned URL. The §1.1 hit rule — a request hits iff the cache holds
// a copy matching the requested URL *and* size — survives interning
// because the URL↔ID mapping is a bijection: ID equality is URL
// equality (FuzzInterner pins this).
type Interner struct {
	ids  map[string]int32
	urls []string
}

// NewInterner returns an interner pre-sized for about hint distinct
// URLs. The hint is purely a performance lever (it pre-sizes the map
// and the ID→URL table); any value, including zero, yields the same
// mapping.
func NewInterner(hint int) *Interner {
	if hint < 16 {
		hint = 16
	}
	return &Interner{
		ids:  make(map[string]int32, hint),
		urls: make([]string, 0, hint),
	}
}

// Intern returns the ID of url, assigning the next dense ID on first
// sight.
func (in *Interner) Intern(url string) int32 {
	if id, ok := in.ids[url]; ok {
		return id
	}
	id := int32(len(in.urls))
	in.ids[url] = id
	in.urls = append(in.urls, url)
	return id
}

// Lookup returns the ID of url without assigning one.
func (in *Interner) Lookup(url string) (int32, bool) {
	id, ok := in.ids[url]
	return id, ok
}

// URL returns the URL for an assigned ID.
func (in *Interner) URL(id int32) string { return in.urls[id] }

// Len returns the number of distinct URLs interned.
func (in *Interner) Len() int { return len(in.urls) }

// URLs returns the ID→URL table (shared, not copied; callers must not
// mutate it).
func (in *Interner) URLs() []string { return in.urls }
