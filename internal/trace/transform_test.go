package trace

import (
	"strings"
	"testing"
)

func mkTrace(name string, start int64, times ...int64) *Trace {
	t := &Trace{Name: name, Start: start}
	for i, ts := range times {
		t.Requests = append(t.Requests, Request{
			Time: ts, Client: "c" + string(rune('a'+i%3)),
			URL: "http://s/x.html", Status: 200, Size: 10,
		})
	}
	return t
}

func TestMergeOrdersByTime(t *testing.T) {
	a := mkTrace("a", 0, 100, 300, 500)
	b := mkTrace("b", 0, 200, 400)
	m := Merge("ab", a, b)
	if len(m.Requests) != 5 {
		t.Fatalf("merged %d requests", len(m.Requests))
	}
	for i := 1; i < len(m.Requests); i++ {
		if m.Requests[i].Time < m.Requests[i-1].Time {
			t.Fatalf("merge not ordered at %d", i)
		}
	}
	if m.Start != 0 {
		t.Fatalf("merged start %d", m.Start)
	}
	// Inputs untouched.
	if len(a.Requests) != 3 || len(b.Requests) != 2 {
		t.Fatal("merge mutated inputs")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge("empty")
	if len(m.Requests) != 0 || m.Start != 0 {
		t.Fatalf("empty merge %+v", m)
	}
}

func TestFilterClients(t *testing.T) {
	a := mkTrace("a", 0, 1, 2, 3, 4, 5, 6)
	f := FilterClients(a, func(c string) bool { return strings.HasSuffix(c, "a") })
	if len(f.Requests) != 2 {
		t.Fatalf("filtered %d requests", len(f.Requests))
	}
	for i := range f.Requests {
		if f.Requests[i].Client != "ca" {
			t.Fatalf("wrong client %q", f.Requests[i].Client)
		}
	}
	if f.Start != a.Start {
		t.Fatal("filter changed Start")
	}
}

func TestWindow(t *testing.T) {
	a := mkTrace("a", 0, 10, 86400+10, 2*86400+10, 3*86400+10)
	w := Window(a, 1, 2)
	if len(w.Requests) != 2 {
		t.Fatalf("window kept %d requests", len(w.Requests))
	}
	if d := w.Requests[0].Day(w.Start); d != 1 {
		t.Fatalf("first windowed day %d", d)
	}
}

func TestRebase(t *testing.T) {
	a := mkTrace("a", 86400*100, 86400*100+500)
	a.Requests[0].LastModified = 86400*99 + 7
	r := Rebase(a, 86400*200+5000) // mid-day value is floored to midnight
	if r.Start != 86400*200 {
		t.Fatalf("rebased start %d", r.Start)
	}
	if got := r.Requests[0].Time; got != 86400*200+500 {
		t.Fatalf("rebased time %d", got)
	}
	if got := r.Requests[0].LastModified; got != 86400*199+7 {
		t.Fatalf("rebased lastmod %d", got)
	}
	// Original unchanged.
	if a.Requests[0].Time != 86400*100+500 {
		t.Fatal("rebase mutated input")
	}
}

func TestMergeRebasedWorkloadsValidate(t *testing.T) {
	// The Exp5-style composition: two sub-traces rebased to a common
	// origin and merged must still validate cleanly.
	a := mkTrace("a", 86400*10, 86400*10+100, 86400*11+100)
	b := mkTrace("b", 86400*50, 86400*50+200)
	m := Merge("combined", Rebase(a, 0), Rebase(b, 0))
	valid, stats := Validate(m)
	if stats.Kept != 3 || len(valid.Requests) != 3 {
		t.Fatalf("validation of merged trace: %+v", stats)
	}
	if m.Requests[0].Time > m.Requests[1].Time {
		t.Fatal("merged rebased trace out of order")
	}
}
