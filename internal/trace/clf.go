package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements reading and writing of the NCSA/CERN "common log
// format" used by the paper's traces (§2.1), plus the extended fields the
// authors appended for the backbone workloads (Last-Modified).
//
// A common log format line is
//
//	host ident authuser [date] "request" status bytes
//
// e.g.
//
//	burrow.cs.vt.edu - - [17/Sep/1995:14:05:12 +0000] "GET http://www.w3.org/a.html HTTP/1.0" 200 2326
//
// The extended form appends "lastmod=<unix>" after the byte count.

// WriteCLF writes the trace to w in (extended) common log format.
// When extended is true, a lastmod=<unix> field is appended to requests
// that carry a Last-Modified time.
func WriteCLF(w io.Writer, t *Trace, extended bool) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range t.Requests {
		r := &t.Requests[i]
		sizeField := strconv.FormatInt(r.Size, 10)
		if r.Size == 0 {
			sizeField = "0"
		}
		if _, err := fmt.Fprintf(bw, "%s - - [%s] \"GET %s HTTP/1.0\" %d %s",
			r.Client, FormatCLFTime(r.Time), r.URL, r.Status, sizeField); err != nil {
			return fmt.Errorf("trace: writing line %d: %w", i, err)
		}
		if extended && r.LastModified != 0 {
			if _, err := fmt.Fprintf(bw, " lastmod=%d", r.LastModified); err != nil {
				return fmt.Errorf("trace: writing line %d: %w", i, err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: writing line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ParseError records a malformed trace line.
type ParseError struct {
	Line int
	Text string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %v (%q)", e.Line, e.Err, truncate(e.Text, 80))
}

func (e *ParseError) Unwrap() error { return e.Err }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ReadCLF parses an (extended) common log format stream. Malformed lines
// are skipped but counted; the first malformed line's error is returned
// in *ReadStats for diagnosis. Name and Start of the returned trace are
// set from name and the first request's midnight.
func ReadCLF(r io.Reader, name string) (*Trace, *ReadStats, error) {
	stats := &ReadStats{}
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		req, err := ParseCLFLine(line)
		if err != nil {
			stats.Malformed++
			if stats.FirstError == nil {
				stats.FirstError = &ParseError{Line: lineNo, Text: line, Err: err}
			}
			continue
		}
		stats.Parsed++
		t.Requests = append(t.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("trace: reading log: %w", err)
	}
	if len(t.Requests) > 0 {
		first := t.Requests[0].Time
		t.Start = first - first%86400
	}
	return t, stats, nil
}

// ReadStats summarizes a ReadCLF pass.
type ReadStats struct {
	Parsed     int
	Malformed  int
	FirstError error
}

// ParseCLFLine parses a single (extended) common log format line.
func ParseCLFLine(line string) (Request, error) {
	var req Request

	// host ident authuser
	host, rest, ok := cutField(line)
	if !ok {
		return req, fmt.Errorf("missing host field")
	}
	req.Client = host
	if _, rest, ok = cutField(rest); !ok { // ident
		return req, fmt.Errorf("missing ident field")
	}
	if _, rest, ok = cutField(rest); !ok { // authuser
		return req, fmt.Errorf("missing authuser field")
	}

	// [date]
	rest = strings.TrimLeft(rest, " ")
	if len(rest) == 0 || rest[0] != '[' {
		return req, fmt.Errorf("missing [date] field")
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return req, fmt.Errorf("unterminated [date] field")
	}
	ts, err := time.Parse(clfTimeLayout, rest[1:end])
	if err != nil {
		return req, fmt.Errorf("bad timestamp: %w", err)
	}
	req.Time = ts.Unix()
	rest = rest[end+1:]

	// "request"
	rest = strings.TrimLeft(rest, " ")
	if len(rest) == 0 || rest[0] != '"' {
		return req, fmt.Errorf("missing request field")
	}
	end = strings.IndexByte(rest[1:], '"')
	if end < 0 {
		return req, fmt.Errorf("unterminated request field")
	}
	reqLine := rest[1 : 1+end]
	rest = rest[end+2:]
	parts := strings.Fields(reqLine)
	if len(parts) < 2 {
		return req, fmt.Errorf("short request line %q", reqLine)
	}
	req.URL = parts[1]
	req.Type = ClassifyURL(req.URL)

	// status bytes [lastmod=...]
	statusField, rest, ok := cutField(rest)
	if !ok {
		return req, fmt.Errorf("missing status field")
	}
	status, err := strconv.Atoi(statusField)
	if err != nil {
		return req, fmt.Errorf("bad status %q", statusField)
	}
	req.Status = status

	sizeField, rest, _ := cutField(rest)
	if sizeField == "" {
		return req, fmt.Errorf("missing size field")
	}
	if sizeField == "-" {
		req.Size = 0
	} else {
		size, err := strconv.ParseInt(sizeField, 10, 64)
		if err != nil || size < 0 {
			return req, fmt.Errorf("bad size %q", sizeField)
		}
		req.Size = size
	}

	// Optional extended fields.
	for {
		var field string
		field, rest, ok = cutField(rest)
		if field == "" {
			break
		}
		if v, found := strings.CutPrefix(field, "lastmod="); found {
			lm, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad lastmod %q", v)
			}
			req.LastModified = lm
		}
		if !ok {
			break
		}
	}
	return req, nil
}

// cutField returns the next space-delimited field and the remainder.
func cutField(s string) (field, rest string, ok bool) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return "", "", false
	}
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", true
}
