package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// OpenCLFFile opens a common-log-format file, transparently decoding
// gzip (by .gz suffix or magic bytes) — archived proxy logs almost
// always arrive compressed. The returned closer releases both layers.
func OpenCLFFile(path string) (io.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	magic, err := br.Peek(2)
	isGzip := strings.HasSuffix(path, ".gz") || (err == nil && magic[0] == 0x1f && magic[1] == 0x8b)
	if !isGzip {
		return br, f, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: opening gzip log %q: %w", path, err)
	}
	return zr, &multiCloser{zr, f}, nil
}

// ReadCLFFile parses a (possibly gzipped) log file.
func ReadCLFFile(path, name string) (*Trace, *ReadStats, error) {
	r, c, err := OpenCLFFile(path)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	return ReadCLF(r, name)
}

// multiCloser closes a chain of resources in order.
type multiCloser []io.Closer

func (m *multiCloser) Close() error {
	var first error
	for _, c := range *m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
