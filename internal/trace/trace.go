// Package trace defines the Web request model used throughout the
// simulator, the common log format reader/writer, the file-type
// classification of Table 4, and the trace validation rules of §1.1 of
// the paper (status-200 filtering and zero-size inheritance).
package trace

import (
	"strings"
	"sync"
	"time"
)

// DocType is the media classification of a document, grouped by filename
// extension exactly as in §2.2/Table 4 of the paper.
type DocType uint8

// Document type categories from Table 4.
const (
	Graphics    DocType = iota // .gif .jpg .jpeg .xbm .png .bmp .tif .tiff
	Text                       // .html .htm .txt .ps .tex .doc .pdf and bare directories
	Audio                      // .au .wav .snd .aif .aiff .mp2 .ra .ram
	Video                      // .mpg .mpeg .mov .avi .qt .fli
	CGI                        // cgi-bin paths and URLs with query strings
	Unknown                    // everything else
	NumDocTypes = 6
)

// String returns the Table 4 row label for the type.
func (t DocType) String() string {
	switch t {
	case Graphics:
		return "Graphics"
	case Text:
		return "Text/html"
	case Audio:
		return "Audio"
	case Video:
		return "Video"
	case CGI:
		return "CGI"
	default:
		return "Unknown"
	}
}

// extType maps a lower-case filename extension (without the dot) to a type.
var extType = map[string]DocType{
	"gif": Graphics, "jpg": Graphics, "jpeg": Graphics, "jpe": Graphics,
	"xbm": Graphics, "xpm": Graphics, "png": Graphics, "bmp": Graphics,
	"tif": Graphics, "tiff": Graphics, "pcx": Graphics, "ico": Graphics,

	"html": Text, "htm": Text, "txt": Text, "text": Text, "ps": Text,
	"tex": Text, "dvi": Text, "doc": Text, "pdf": Text, "man": Text,
	"md": Text, "me": Text, "c": Text, "h": Text, "java": Text,

	"au": Audio, "wav": Audio, "snd": Audio, "aif": Audio, "aiff": Audio,
	"aifc": Audio, "mp2": Audio, "mpa": Audio, "ra": Audio, "ram": Audio,
	"mid": Audio, "midi": Audio,

	"mpg": Video, "mpeg": Video, "mpe": Video, "mov": Video, "avi": Video,
	"qt": Video, "fli": Video, "movie": Video,
}

// ClassifyURL returns the DocType for a URL path, following the paper's
// extension grouping. CGI is recognized from "cgi-bin" path components or
// a query string, which also marks the document dynamically generated.
func ClassifyURL(url string) DocType {
	// Strip scheme and host if present; we only care about the path.
	path := url
	if i := strings.Index(path, "://"); i >= 0 {
		path = path[i+3:]
		if j := strings.IndexByte(path, '/'); j >= 0 {
			path = path[j:]
		} else {
			path = "/"
		}
	}
	if i := strings.IndexByte(path, '#'); i >= 0 {
		path = path[:i]
	}
	if strings.Contains(path, "cgi-bin") || strings.ContainsRune(path, '?') {
		return CGI
	}
	// Last path segment's extension.
	seg := path
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	if seg == "" { // directory request -> an HTML index page
		return Text
	}
	dot := strings.LastIndexByte(seg, '.')
	if dot < 0 || dot == len(seg)-1 {
		return Unknown
	}
	ext := strings.ToLower(seg[dot+1:])
	if t, ok := extType[ext]; ok {
		return t
	}
	return Unknown
}

// IsDynamic reports whether the URL names a dynamically generated
// document (CGI path or query string), which a real proxy would not
// cache. The paper's simulator includes these requests; the simulator
// here has an option to exclude them.
func IsDynamic(url string) bool { return ClassifyURL(url) == CGI }

// Request is one client URL request: a single line of a (possibly
// extended) common log format trace after parsing.
type Request struct {
	Time   int64  // Unix seconds
	Client string // remote host field
	URL    string // request URL (as logged)
	Status int    // HTTP status code
	Size   int64  // bytes transferred (response body size); 0 is meaningful (§1.1)
	Type   DocType
	// LastModified is the optional Last-Modified header time (extended
	// field, present in workloads BR and BL); zero when absent.
	LastModified int64
}

// Day returns the request's day index relative to a trace start time,
// both in Unix seconds. Day boundaries are UTC midnights from start.
func (r *Request) Day(start int64) int {
	return int((r.Time - start) / 86400)
}

// Trace is an ordered sequence of requests plus its start time.
type Trace struct {
	Name     string
	Start    int64 // Unix seconds of the first day's midnight
	Requests []Request

	// dayIdx caches per-request day indexes relative to Start, built
	// lazily by DayIndex. A policy sweep replays the same trace dozens
	// of times; sharing one index avoids re-dividing every request's
	// timestamp per replay.
	dayOnce sync.Once
	dayIdx  []int32

	// col caches the interned columnar view (Columnar), built lazily
	// once per trace and shared by every replay of a sweep.
	colOnce sync.Once
	col     *Columnar
}

// DayIndex returns Requests[i].Day(t.Start) for every i, computed once
// and shared between replays (safe for concurrent use; the requests
// must not be mutated afterwards). Traces produced by the transform
// helpers get a fresh index.
func (t *Trace) DayIndex() []int32 {
	t.dayOnce.Do(func() {
		idx := make([]int32, len(t.Requests))
		for i := range t.Requests {
			idx[i] = int32(t.Requests[i].Day(t.Start))
		}
		t.dayIdx = idx
	})
	return t.dayIdx
}

// Days returns the number of calendar days the trace spans (at least 1
// for a non-empty trace).
func (t *Trace) Days() int {
	if len(t.Requests) == 0 {
		return 0
	}
	last := t.Requests[len(t.Requests)-1].Time
	return int((last-t.Start)/86400) + 1
}

// TotalBytes returns the sum of the sizes of all requests.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for i := range t.Requests {
		n += t.Requests[i].Size
	}
	return n
}

// clfTimeLayout is the common log format timestamp layout.
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// FormatCLFTime renders a Unix time in common log format (UTC).
func FormatCLFTime(unix int64) string {
	return time.Unix(unix, 0).UTC().Format(clfTimeLayout)
}
