package trace

import (
	"fmt"
	"testing"
)

// internTestTrace builds a small trace with URL reuse, size changes,
// CGI documents and multiple days.
func internTestTrace() *Trace {
	start := int64(800000000 - 800000000%86400)
	urls := []string{
		"http://s1.x/a.gif", "http://s1.x/b.html", "http://s2.x/cgi-bin/q1",
		"http://s1.x/a.gif", "http://s3.x/c.mpg", "http://s1.x/b.html",
		"http://s1.x/a.gif", "http://s2.x/cgi-bin/q1",
	}
	tr := &Trace{Name: "T", Start: start}
	for i, u := range urls {
		tr.Requests = append(tr.Requests, Request{
			Time:   start + int64(i)*40000, // crosses day boundaries
			Client: fmt.Sprintf("c%d", i%3),
			URL:    u,
			Status: 200,
			Size:   int64(100 + 10*(i%4)),
			Type:   ClassifyURL(u),
		})
	}
	return tr
}

// TestInternerDenseRoundTrip checks that IDs are dense, stable, and
// bijective with URLs.
func TestInternerDenseRoundTrip(t *testing.T) {
	in := NewInterner(0)
	urls := []string{"a", "b", "c", "a", "b", "d"}
	want := []int32{0, 1, 2, 0, 1, 3}
	for i, u := range urls {
		if id := in.Intern(u); id != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", u, id, want[i])
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for _, u := range []string{"a", "b", "c", "d"} {
		id, ok := in.Lookup(u)
		if !ok {
			t.Fatalf("Lookup(%q) missed", u)
		}
		if got := in.URL(id); got != u {
			t.Fatalf("URL(%d) = %q, want %q", id, got, u)
		}
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Fatal("Lookup found a never-interned URL")
	}
}

// TestColumnarMatchesTrace checks every column against the row-oriented
// request it was decoded from, and the per-ID tables against one
// classification of each distinct URL.
func TestColumnarMatchesTrace(t *testing.T) {
	tr := internTestTrace()
	col := tr.Columnar()
	if col.Len() != len(tr.Requests) {
		t.Fatalf("Len = %d, want %d", col.Len(), len(tr.Requests))
	}
	if col.Name != tr.Name || col.Start != tr.Start {
		t.Fatalf("header %q/%d, want %q/%d", col.Name, col.Start, tr.Name, tr.Start)
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		id := col.IDs[i]
		if url := col.URLs[id]; url != r.URL {
			t.Fatalf("req %d: ID %d maps to %q, want %q", i, id, url, r.URL)
		}
		if col.Sizes[i] != r.Size || col.Times[i] != r.Time || col.Types[i] != r.Type {
			t.Fatalf("req %d: columns (%d,%d,%v) != request (%d,%d,%v)",
				i, col.Sizes[i], col.Times[i], col.Types[i], r.Size, r.Time, r.Type)
		}
		if int(col.Day[i]) != r.Day(tr.Start) {
			t.Fatalf("req %d: day %d, want %d", i, col.Day[i], r.Day(tr.Start))
		}
	}
	for id, url := range col.URLs {
		if col.Class[id] != ClassifyURL(url) {
			t.Fatalf("ID %d: class %v, want %v", id, col.Class[id], ClassifyURL(url))
		}
		if col.Dynamic[id] != IsDynamic(url) {
			t.Fatalf("ID %d: dynamic %v, want %v", id, col.Dynamic[id], IsDynamic(url))
		}
		got, ok := col.ID(url)
		if !ok || got != int32(id) {
			t.Fatalf("ID(%q) = %d,%v, want %d", url, got, ok, id)
		}
	}
}

// TestColumnarShared checks that the view is built once and shared, the
// sweep-level contract Experiment 2 relies on.
func TestColumnarShared(t *testing.T) {
	tr := internTestTrace()
	if a, b := tr.Columnar(), tr.Columnar(); a != b {
		t.Fatal("Columnar built a second view for the same trace")
	}
}
