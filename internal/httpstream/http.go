package httpstream

import (
	"bytes"
	"strconv"
	"strings"
	"time"

	"webcache/internal/trace"
)

// conn tracks one TCP connection's two directions and the HTTP
// transaction state machine over them. HTTP/1.0 semantics with serial
// keep-alive are supported, which covers 1995-era Web traffic.
type conn struct {
	clientKey FlowKey
	toServer  *stream
	toClient  *stream
	// lastTime is the most recent packet timestamp on the connection,
	// used to stamp requests with their arrival time.
	lastTime int64

	// Pending requests awaiting their responses, in order.
	requests []pendingRequest
	// Response parsing state.
	respHeaderDone bool
	respStatus     int
	respLength     int64 // -1 when unknown (read until close)
	respLastMod    int64
	respBodySeen   int64
}

type pendingRequest struct {
	url     string
	client  string
	timeSec int64
	valid   bool // GET with parseable request line
	aborted bool
}

// extract parses as many complete transactions as possible, appending
// them to out, and returns the updated slice.
func (c *conn) extract(out []trace.Request) []trace.Request {
	c.parseRequests()
	return c.parseResponses(out)
}

// parseRequests consumes request lines + headers from the client stream.
func (c *conn) parseRequests() {
	for {
		data := c.toServer.available()
		idx := bytes.Index(data, []byte("\r\n\r\n"))
		if idx < 0 {
			return
		}
		head := data[:idx]
		c.toServer.consume(idx + 4)
		line := head
		if i := bytes.IndexByte(line, '\r'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(string(line))
		pr := pendingRequest{timeSec: c.lastTime, client: c.clientKey.SrcAddr.String()}
		if len(fields) >= 2 && fields[0] == "GET" {
			pr.valid = true
			pr.url = fields[1]
			if !strings.Contains(pr.url, "://") {
				// Origin-form request: reconstruct the absolute URL from
				// the Host header, as the paper's filter did from the
				// packet's destination.
				host := headerValue(head, "Host")
				if host == "" {
					host = c.clientKey.DstAddr.String()
				}
				pr.url = "http://" + host + pr.url
			}
		}
		c.requests = append(c.requests, pr)
	}
}

// parseResponses consumes responses from the server stream, pairing them
// with pending requests in order.
func (c *conn) parseResponses(out []trace.Request) []trace.Request {
	for {
		if !c.respHeaderDone {
			data := c.toClient.available()
			idx := bytes.Index(data, []byte("\r\n\r\n"))
			if idx < 0 {
				return out
			}
			head := data[:idx]
			c.toClient.consume(idx + 4)
			c.respStatus = parseStatus(head)
			c.respLength = -1
			if v := headerValue(head, "Content-Length"); v != "" {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
					c.respLength = n
				}
			}
			c.respLastMod = 0
			if v := headerValue(head, "Last-Modified"); v != "" {
				if t, err := time.Parse("02/Jan/2006:15:04:05 -0700", v); err == nil {
					c.respLastMod = t.Unix()
				} else if t, err := time.Parse(time.RFC1123, v); err == nil {
					c.respLastMod = t.Unix()
				}
			}
			c.respBodySeen = 0
			c.respHeaderDone = true
		}
		// Swallow body bytes. When Content-Length is known we only need
		// to skip what was actually captured (the monitor may truncate
		// bodies); the logged size comes from the header.
		if c.respLength >= 0 {
			data := c.toClient.available()
			want := c.respLength - c.respBodySeen
			take := int64(len(data))
			if take > want {
				take = want
			}
			c.toClient.consume(int(take))
			c.respBodySeen += take
			if c.respBodySeen < c.respLength && !c.toClient.finSeen {
				// More body may arrive; but if the capture truncates
				// bodies, the next response header signals completion.
				if next := bytes.Index(c.toClient.available(), []byte("HTTP/")); next != 0 {
					if next < 0 {
						return out
					}
					c.toClient.consume(next)
				}
			}
		} else {
			// No Content-Length: body runs to connection close.
			if !c.toClient.finSeen {
				return out
			}
			c.respBodySeen += int64(len(c.toClient.available()))
			c.toClient.consume(len(c.toClient.available()))
		}

		// Transaction complete: pair with the oldest pending request.
		size := c.respLength
		if size < 0 {
			size = c.respBodySeen
		}
		if len(c.requests) == 0 {
			// Response with no captured request (capture started mid
			// connection); drop it.
			c.respHeaderDone = false
			continue
		}
		pr := c.requests[0]
		c.requests = c.requests[1:]
		c.respHeaderDone = false
		if !pr.valid || pr.aborted {
			continue
		}
		out = append(out, trace.Request{
			Time:         pr.timeSec,
			Client:       pr.client,
			URL:          pr.url,
			Status:       c.respStatus,
			Size:         size,
			Type:         trace.ClassifyURL(pr.url),
			LastModified: c.respLastMod,
		})
	}
}

// setTime records the most recent packet timestamp on the connection.
func (c *conn) setTime(sec int64) { c.lastTime = sec }

// parseStatus extracts the status code from a response status line.
func parseStatus(head []byte) int {
	line := head
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(string(line))
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/") {
		return 0
	}
	code, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0
	}
	return code
}

// headerValue finds a header's value (case-insensitive) in a raw header
// block.
func headerValue(head []byte, name string) string {
	for _, line := range strings.Split(string(head), "\r\n") {
		if i := strings.IndexByte(line, ':'); i > 0 {
			if strings.EqualFold(strings.TrimSpace(line[:i]), name) {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}
