package httpstream

import (
	"net/netip"
	"testing"

	"webcache/internal/capture"
	"webcache/internal/rng"
)

// TestFilterSurvivesGarbagePayloads throws random TCP payloads at the
// filter: whatever arrives on port 80 must be digested without panics
// and without unbounded memory (the pending-segment cap).
func TestFilterSurvivesGarbagePayloads(t *testing.T) {
	r := rng.New(999)
	f := NewFilter()
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	for i := 0; i < 5000; i++ {
		payload := make([]byte, r.Intn(400))
		for j := range payload {
			payload[j] = byte(r.Uint64())
		}
		pkt := &capture.Packet{
			TimeSec: int64(i),
			IP:      capture.IPv4{Src: src, Dst: dst, Protocol: capture.ProtocolTCP},
			TCP: capture.TCP{
				SrcPort: uint16(1024 + i%7),
				DstPort: 80,
				Seq:     uint32(r.Uint64()),
				Flags:   uint8(r.Uint64()) & (capture.FlagSYN | capture.FlagACK | capture.FlagPSH | capture.FlagFIN),
			},
			Payload: payload,
		}
		f.FeedPacket(pkt)
	}
	f.Finish("garbage")
}

// TestFilterBoundsPendingMemory: a flood of out-of-order segments that
// never become contiguous must hit the per-direction cap rather than
// buffering forever.
func TestFilterBoundsPendingMemory(t *testing.T) {
	s := newStream()
	s.syn(0)
	// Never send seq 1, so nothing drains; offer far more than the cap.
	seg := make([]byte, 64*1024)
	for i := 0; i < 200; i++ {
		s.data(uint32(2+i*70000), seg)
	}
	if s.bytesHeld > maxPendingBytes {
		t.Fatalf("pending buffer grew to %d, cap is %d", s.bytesHeld, maxPendingBytes)
	}
}

// TestFilterHalfOpenConnections: requests with no response (aborted
// transfers) must not produce log lines, matching the paper's
// "non-aborted document requests" filter.
func TestFilterHalfOpenConnections(t *testing.T) {
	f := NewFilter()
	src := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	dst := netip.AddrFrom4([4]byte{172, 16, 0, 2})
	req := []byte("GET http://s.vt.edu/x.html HTTP/1.0\r\n\r\n")
	f.FeedPacket(&capture.Packet{
		TimeSec: 1,
		IP:      capture.IPv4{Src: src, Dst: dst, Protocol: capture.ProtocolTCP},
		TCP:     capture.TCP{SrcPort: 2000, DstPort: 80, Seq: 1, Flags: capture.FlagPSH | capture.FlagACK},
		Payload: req,
	})
	tr := f.Finish("halfopen")
	if len(tr.Requests) != 0 {
		t.Fatalf("aborted request produced %d log lines", len(tr.Requests))
	}
}

// TestFilterResponseWithoutRequest: a response seen without its request
// (capture started mid-connection) is dropped, not mispaired.
func TestFilterResponseWithoutRequest(t *testing.T) {
	f := NewFilter()
	src := netip.AddrFrom4([4]byte{172, 16, 0, 3})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 3})
	resp := []byte("HTTP/1.0 200 OK\r\nContent-Length: 3\r\n\r\nabc")
	f.FeedPacket(&capture.Packet{
		TimeSec: 1,
		IP:      capture.IPv4{Src: src, Dst: dst, Protocol: capture.ProtocolTCP},
		TCP:     capture.TCP{SrcPort: 80, DstPort: 2000, Seq: 1, Flags: capture.FlagPSH | capture.FlagACK},
		Payload: resp,
	})
	tr := f.Finish("orphan")
	if len(tr.Requests) != 0 {
		t.Fatalf("orphan response produced %d log lines", len(tr.Requests))
	}
}

// TestFilterNonGETRequests: POSTs complete the transaction pairing but
// yield no log line (the paper's filter logged document GETs).
func TestFilterNonGETRequests(t *testing.T) {
	f := NewFilter()
	src := netip.AddrFrom4([4]byte{10, 0, 0, 4})
	dst := netip.AddrFrom4([4]byte{172, 16, 0, 4})
	feed := func(fromClient bool, seq uint32, payload []byte) {
		ip := capture.IPv4{Src: src, Dst: dst, Protocol: capture.ProtocolTCP}
		tcp := capture.TCP{SrcPort: 2001, DstPort: 80, Seq: seq, Flags: capture.FlagPSH | capture.FlagACK}
		if !fromClient {
			ip.Src, ip.Dst = dst, src
			tcp.SrcPort, tcp.DstPort = 80, 2001
		}
		f.FeedPacket(&capture.Packet{TimeSec: 2, IP: ip, TCP: tcp, Payload: payload})
	}
	feed(true, 1, []byte("POST http://s.vt.edu/form HTTP/1.0\r\n\r\n"))
	feed(false, 1, []byte("HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok"))
	tr := f.Finish("post")
	if len(tr.Requests) != 0 {
		t.Fatalf("POST produced %d log lines", len(tr.Requests))
	}
}
