package httpstream

import (
	"fmt"
	"io"
	"sort"

	"webcache/internal/capture"
	"webcache/internal/trace"
)

// Filter converts a packet capture into a common-log-format request
// trace: the Go equivalent of the PERL filter the paper ran over its
// tcpdump output (§2.1).
type Filter struct {
	// Port restricts processing to connections with this server port
	// (default 80, matching the paper's tcpdump filter).
	Port uint16

	conns map[FlowKey]*conn // keyed by the client→server direction
	out   []trace.Request

	// Stats.
	Packets    int
	NonTCP     int
	Decoded    int
	Transacted int
}

// NewFilter returns a filter for server port 80.
func NewFilter() *Filter {
	return &Filter{Port: 80, conns: make(map[FlowKey]*conn)}
}

// FeedRecord ingests one captured packet record.
func (f *Filter) FeedRecord(rec capture.PacketRecord) {
	f.Packets++
	pkt, err := capture.Decode(rec)
	if err != nil {
		f.NonTCP++
		return
	}
	f.FeedPacket(pkt)
}

// FeedPacket ingests one decoded packet.
func (f *Filter) FeedPacket(pkt *capture.Packet) {
	if pkt.TCP.SrcPort != f.Port && pkt.TCP.DstPort != f.Port {
		return
	}
	f.Decoded++

	toServer := pkt.TCP.DstPort == f.Port
	key := FlowKey{SrcAddr: pkt.IP.Src, DstAddr: pkt.IP.Dst, SrcPort: pkt.TCP.SrcPort, DstPort: pkt.TCP.DstPort}
	clientKey := key
	if !toServer {
		clientKey = key.Reverse()
	}
	c, ok := f.conns[clientKey]
	if !ok {
		c = &conn{clientKey: clientKey, toServer: newStream(), toClient: newStream()}
		f.conns[clientKey] = c
	}
	c.setTime(pkt.TimeSec)

	dir := c.toClient
	if toServer {
		dir = c.toServer
	}
	if pkt.TCP.Flags&capture.FlagSYN != 0 {
		dir.syn(pkt.TCP.Seq)
	}
	if len(pkt.Payload) > 0 {
		dir.data(pkt.TCP.Seq, pkt.Payload)
	}
	if pkt.TCP.Flags&(capture.FlagFIN|capture.FlagRST) != 0 {
		dir.fin()
	}

	before := len(f.out)
	f.out = c.extract(f.out)
	f.Transacted += len(f.out) - before
}

// Run reads an entire pcap stream and returns the reconstructed trace,
// sorted by request time. name labels the trace.
func (f *Filter) Run(r io.Reader, name string) (*trace.Trace, error) {
	pr := capture.NewReader(r)
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("httpstream: reading capture: %w", err)
		}
		f.FeedRecord(rec)
	}
	return f.Finish(name), nil
}

// Finish flushes connections that ended without FIN processing (e.g.
// truncated captures) and returns the accumulated trace.
func (f *Filter) Finish(name string) *trace.Trace {
	// Final extraction pass for connections whose close-delimited bodies
	// are complete only now.
	for _, c := range f.conns {
		c.toClient.fin()
		c.toServer.fin()
		before := len(f.out)
		f.out = c.extract(f.out)
		f.Transacted += len(f.out) - before
	}
	sort.SliceStable(f.out, func(i, j int) bool { return f.out[i].Time < f.out[j].Time })
	tr := &trace.Trace{Name: name, Requests: f.out}
	if len(tr.Requests) > 0 {
		first := tr.Requests[0].Time
		tr.Start = first - first%86400
	}
	return tr
}
