package httpstream

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"webcache/internal/capture"
	"webcache/internal/rng"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// TestStreamInOrder: contiguous segments reassemble directly.
func TestStreamInOrder(t *testing.T) {
	s := newStream()
	s.syn(999)
	s.data(1000, []byte("hello "))
	s.data(1006, []byte("world"))
	if got := string(s.available()); got != "hello world" {
		t.Fatalf("reassembled %q", got)
	}
}

// TestStreamOutOfOrder: segments arriving in any order reassemble.
func TestStreamOutOfOrder(t *testing.T) {
	s := newStream()
	s.syn(0)
	s.data(7, []byte("cde"))
	s.data(4, []byte("abc")) // still a gap: seq 1..3 missing
	if got := string(s.available()); got != "" {
		t.Fatalf("premature data %q", got)
	}
	s.data(1, []byte("xyz"))
	if got := string(s.available()); got != "xyzabccde" {
		t.Fatalf("reassembled %q", got)
	}
}

// TestStreamDuplicatesAndOverlap: retransmissions are deduplicated.
func TestStreamDuplicatesAndOverlap(t *testing.T) {
	s := newStream()
	s.syn(0)
	s.data(1, []byte("abcdef"))
	s.data(1, []byte("abcdef")) // exact duplicate
	s.data(4, []byte("defghi")) // overlapping extension
	if got := string(s.available()); got != "abcdefghi" {
		t.Fatalf("reassembled %q", got)
	}
}

// TestStreamRandomized: random segmentations with shuffling and
// duplication always reconstruct the original byte string.
func TestStreamRandomized(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(5000)
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(r.Uint64())
		}
		type seg struct {
			seq  uint32
			data []byte
		}
		var segs []seg
		isn := uint32(r.Uint64())
		for off := 0; off < n; {
			l := 1 + r.Intn(700)
			if off+l > n {
				l = n - off
			}
			segs = append(segs, seg{seq: isn + 1 + uint32(off), data: payload[off : off+l]})
			off += l
		}
		// Duplicate ~20% of segments and shuffle everything.
		for i := 0; i < len(segs); i++ {
			if r.Float64() < 0.2 {
				segs = append(segs, segs[i])
			}
		}
		r.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })

		s := newStream()
		s.syn(isn)
		for _, sg := range segs {
			s.data(sg.seq, sg.data)
		}
		if !bytes.Equal(s.available(), payload) {
			t.Fatalf("trial %d: reassembly mismatch (%d bytes in, %d out)", trial, n, len(s.available()))
		}
	}
}

func TestStreamMidConnectionAdoption(t *testing.T) {
	s := newStream() // no SYN seen
	s.data(5000, []byte("late capture"))
	if got := string(s.available()); got != "late capture" {
		t.Fatalf("adopted %q", got)
	}
}

func TestStreamConsumeCompaction(t *testing.T) {
	s := newStream()
	s.syn(0)
	big := bytes.Repeat([]byte("x"), 200*1024)
	s.data(1, big)
	s.consume(150 * 1024)
	if got := len(s.available()); got != 50*1024 {
		t.Fatalf("available %d after consume", got)
	}
}

func TestSeqLessWraparound(t *testing.T) {
	if !seqLess(0xfffffff0, 0x10) {
		t.Fatal("sequence wraparound not handled")
	}
	if seqLess(0x10, 0xfffffff0) {
		t.Fatal("sequence comparison inverted at wrap")
	}
}

func TestParseStatus(t *testing.T) {
	if got := parseStatus([]byte("HTTP/1.0 404 Not Found\r\nX: y")); got != 404 {
		t.Fatalf("status %d", got)
	}
	if got := parseStatus([]byte("garbage")); got != 0 {
		t.Fatalf("garbage status %d", got)
	}
}

func TestHeaderValue(t *testing.T) {
	head := []byte("HTTP/1.0 200 OK\r\nContent-Length: 123\r\ncontent-type:  text/html \r\n")
	if v := headerValue(head, "Content-Length"); v != "123" {
		t.Fatalf("Content-Length %q", v)
	}
	if v := headerValue(head, "CONTENT-TYPE"); v != "text/html" {
		t.Fatalf("Content-Type %q", v)
	}
	if v := headerValue(head, "Missing"); v != "" {
		t.Fatalf("missing header %q", v)
	}
}

// makeTrace builds a small deterministic trace for pipeline tests.
func makeTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "t", Start: 811296000}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   811296000 + int64(i*3),
			Client: fmt.Sprintf("client%d.vt.edu", i%7),
			URL:    fmt.Sprintf("http://s%d.cs.vt.edu/doc/t%d.html", i%3+1, i),
			Status: 200,
			Size:   int64(100 + i*37),
			Type:   trace.Text,
		})
	}
	return tr
}

// runPipeline synthesizes packets for tr and filters them back.
func runPipeline(t *testing.T, tr *trace.Trace, mutate func(*capture.Synthesizer)) *trace.Trace {
	t.Helper()
	var buf bytes.Buffer
	w := capture.NewWriter(&buf, 0)
	syn := capture.NewSynthesizer(5)
	if mutate != nil {
		mutate(syn)
	}
	if err := syn.WriteTrace(tr, w); err != nil {
		t.Fatal(err)
	}
	got, err := NewFilter().Run(&buf, "reconstructed")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFilterReconstructsTrace(t *testing.T) {
	tr := makeTrace(60)
	got := runPipeline(t, tr, nil)
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("reconstructed %d of %d requests", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], got.Requests[i]
		if a.URL != b.URL || a.Size != b.Size || a.Status != b.Status || a.Time != b.Time {
			t.Fatalf("request %d: want %+v, got %+v", i, a, b)
		}
	}
}

func TestFilterWithShuffledSegments(t *testing.T) {
	tr := makeTrace(40)
	got := runPipeline(t, tr, func(s *capture.Synthesizer) { s.Shuffle = 0.8; s.MSS = 256 })
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("reconstructed %d of %d requests under shuffle", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if tr.Requests[i].Size != got.Requests[i].Size {
			t.Fatalf("request %d size %d != %d", i, got.Requests[i].Size, tr.Requests[i].Size)
		}
	}
}

func TestFilterTruncatedBodies(t *testing.T) {
	// Bodies capped at 1 KiB: sizes must still come from Content-Length.
	tr := makeTrace(20)
	for i := range tr.Requests {
		tr.Requests[i].Size = int64(50_000 + i)
	}
	got := runPipeline(t, tr, func(s *capture.Synthesizer) { s.SnapBody = 1024 })
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("reconstructed %d of %d with truncated bodies", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if got.Requests[i].Size != tr.Requests[i].Size {
			t.Fatalf("request %d: size %d, want %d (from Content-Length)",
				i, got.Requests[i].Size, tr.Requests[i].Size)
		}
	}
}

func TestFilterIgnoresOtherPorts(t *testing.T) {
	f := NewFilter()
	// A TCP packet on port 443 must be skipped.
	eth := capture.Ethernet{EtherType: capture.EtherTypeIPv4}
	ip := capture.IPv4{TTL: 3, Protocol: capture.ProtocolTCP,
		Src: netip.AddrFrom4([4]byte{1, 2, 3, 4}), Dst: netip.AddrFrom4([4]byte{5, 6, 7, 8})}
	tcp := capture.TCP{SrcPort: 5555, DstPort: 443, Seq: 1}
	buf := eth.AppendTo(nil)
	buf = ip.AppendTo(buf, 20)
	buf = tcp.AppendTo(buf)
	f.FeedRecord(capture.PacketRecord{TimeSec: 1, Data: buf})
	if f.Decoded != 0 {
		t.Fatalf("port-443 packet processed (Decoded=%d)", f.Decoded)
	}
	out := f.Finish("x")
	if len(out.Requests) != 0 {
		t.Fatalf("phantom transactions: %d", len(out.Requests))
	}
}

func TestFilterEndToEndWorkload(t *testing.T) {
	cfg := workload.BL(77)
	cfg.Scale = 0.003
	raw, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := capture.NewWriter(&buf, 0)
	syn := capture.NewSynthesizer(3)
	syn.Shuffle = 0.4
	if err := syn.WriteTrace(raw, w); err != nil {
		t.Fatal(err)
	}
	got, err := NewFilter().Run(&buf, "BL")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(raw.Requests) {
		t.Fatalf("pipeline reconstructed %d of %d requests", len(got.Requests), len(raw.Requests))
	}
	// The reconstructed trace validates identically to the original:
	// same kept count, same hit/miss-relevant fields.
	v1, s1 := trace.Validate(raw)
	v2, s2 := trace.Validate(got)
	if s1.Kept != s2.Kept {
		t.Fatalf("validation kept %d vs %d", s1.Kept, s2.Kept)
	}
	for i := range v1.Requests {
		if v1.Requests[i].URL != v2.Requests[i].URL || v1.Requests[i].Size != v2.Requests[i].Size {
			t.Fatalf("validated request %d differs", i)
		}
	}
}

// TestCloseDelimitedBody: HTTP/1.0 responses without Content-Length run
// to connection close; the filter must size them by observed bytes.
func TestCloseDelimitedBody(t *testing.T) {
	c := &conn{toServer: newStream(), toClient: newStream()}
	c.setTime(42)
	c.toServer.syn(0)
	c.toClient.syn(0)
	c.toServer.data(1, []byte("GET http://s.vt.edu/old.html HTTP/1.0\r\n\r\n"))
	c.toClient.data(1, []byte("HTTP/1.0 200 OK\r\nServer: CERN/3.0\r\n\r\nbody-without-length"))
	var out []trace.Request
	out = c.extract(out)
	if len(out) != 0 {
		t.Fatal("transaction completed before FIN")
	}
	c.toClient.fin()
	out = c.extract(out)
	if len(out) != 1 {
		t.Fatalf("%d transactions after FIN", len(out))
	}
	if out[0].Size != int64(len("body-without-length")) {
		t.Fatalf("size %d, want observed body length", out[0].Size)
	}
	if out[0].Time != 42 {
		t.Fatalf("time %d", out[0].Time)
	}
}

// TestKeepAliveSequentialTransactions: two requests on one connection
// pair with their responses in order.
func TestKeepAliveSequentialTransactions(t *testing.T) {
	c := &conn{toServer: newStream(), toClient: newStream()}
	c.setTime(1)
	c.toServer.syn(0)
	c.toClient.syn(0)
	c.toServer.data(1, []byte(
		"GET http://s.vt.edu/a.html HTTP/1.0\r\n\r\nGET http://s.vt.edu/b.gif HTTP/1.0\r\n\r\n"))
	c.toClient.data(1, []byte(
		"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\naaHTTP/1.0 404 Not Found\r\nContent-Length: 3\r\n\r\nbbb"))
	var out []trace.Request
	out = c.extract(out)
	if len(out) != 2 {
		t.Fatalf("%d transactions", len(out))
	}
	if out[0].URL != "http://s.vt.edu/a.html" || out[0].Status != 200 || out[0].Size != 2 {
		t.Fatalf("first transaction %+v", out[0])
	}
	if out[1].URL != "http://s.vt.edu/b.gif" || out[1].Status != 404 || out[1].Size != 3 {
		t.Fatalf("second transaction %+v", out[1])
	}
}

// TestOriginFormHostReconstruction: origin-form requests get their URL
// rebuilt from the Host header.
func TestOriginFormHostReconstruction(t *testing.T) {
	c := &conn{toServer: newStream(), toClient: newStream()}
	c.setTime(1)
	c.toServer.syn(0)
	c.toClient.syn(0)
	c.toServer.data(1, []byte("GET /p/q.html HTTP/1.0\r\nHost: www.vt.edu\r\n\r\n"))
	c.toClient.data(1, []byte("HTTP/1.0 200 OK\r\nContent-Length: 1\r\n\r\nx"))
	var out []trace.Request
	out = c.extract(out)
	if len(out) != 1 || out[0].URL != "http://www.vt.edu/p/q.html" {
		t.Fatalf("reconstructed %+v", out)
	}
}
