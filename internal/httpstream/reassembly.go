// Package httpstream reconstructs HTTP transactions from captured TCP
// segments and emits them as common-log-format requests — the filter of
// §2.1 of the paper ("this trace is then passed through a filter that
// decodes the HTTP packet headers and generates a log file of all
// non-aborted document requests in the common log format").
package httpstream

import (
	"fmt"
	"net/netip"
	"sort"
)

// FlowKey identifies one direction of a TCP connection.
type FlowKey struct {
	SrcAddr netip.Addr
	DstAddr netip.Addr
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the opposite direction's key.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcAddr: k.DstAddr, DstAddr: k.SrcAddr, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", k.SrcAddr, k.SrcPort, k.DstAddr, k.DstPort)
}

// stream reassembles one direction of a connection from TCP segments,
// tolerating out-of-order delivery, duplicates and overlaps.
type stream struct {
	established bool
	nextSeq     uint32
	buf         []byte            // contiguous reassembled data not yet consumed
	consumed    int               // bytes of buf already consumed by the parser
	pending     map[uint32][]byte // out-of-order segments keyed by sequence number
	finSeen     bool
	bytesHeld   int
}

// maxPendingBytes bounds out-of-order buffering per direction so a
// malformed capture cannot exhaust memory.
const maxPendingBytes = 4 << 20

func newStream() *stream { return &stream{pending: map[uint32][]byte{}} }

// syn records the ISN from a SYN segment.
func (s *stream) syn(seq uint32) {
	s.established = true
	s.nextSeq = seq + 1
}

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// data ingests one data segment.
func (s *stream) data(seq uint32, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if !s.established {
		// Capture started mid-connection; adopt this segment's sequence.
		s.established = true
		s.nextSeq = seq
	}
	if seqLess(seq, s.nextSeq) {
		// Retransmission or partial overlap: trim the already-seen prefix.
		skip := s.nextSeq - seq
		if uint32(len(payload)) <= skip {
			return
		}
		payload = payload[skip:]
		seq = s.nextSeq
	}
	if seq == s.nextSeq {
		s.buf = append(s.buf, payload...)
		s.nextSeq += uint32(len(payload))
		s.drain()
		return
	}
	// Out of order: hold for later, bounded.
	if s.bytesHeld+len(payload) > maxPendingBytes {
		return
	}
	if old, ok := s.pending[seq]; !ok || len(payload) > len(old) {
		s.bytesHeld += len(payload) - len(s.pending[seq])
		cp := make([]byte, len(payload))
		copy(cp, payload)
		s.pending[seq] = cp
	}
}

// drain moves now-contiguous pending segments into buf.
func (s *stream) drain() {
	for len(s.pending) > 0 {
		// Find a pending segment that starts at or before nextSeq.
		var keys []uint32
		for k := range s.pending {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return seqLess(keys[i], keys[j]) })
		progressed := false
		for _, k := range keys {
			seg := s.pending[k]
			if seqLess(s.nextSeq, k) {
				break // gap remains
			}
			delete(s.pending, k)
			s.bytesHeld -= len(seg)
			if skip := s.nextSeq - k; skip > 0 {
				if uint32(len(seg)) <= skip {
					continue
				}
				seg = seg[skip:]
			}
			s.buf = append(s.buf, seg...)
			s.nextSeq += uint32(len(seg))
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// fin marks the stream closed.
func (s *stream) fin() { s.finSeen = true }

// available returns unconsumed reassembled bytes.
func (s *stream) available() []byte { return s.buf[s.consumed:] }

// consume marks n bytes as consumed and compacts occasionally.
func (s *stream) consume(n int) {
	s.consumed += n
	if s.consumed > 64*1024 && s.consumed*2 > len(s.buf) {
		s.buf = append([]byte(nil), s.buf[s.consumed:]...)
		s.consumed = 0
	}
}
