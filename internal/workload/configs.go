package workload

import (
	"fmt"
	"strings"

	"webcache/internal/trace"
)

// The five workload configurations below reproduce §2 and Table 4 of the
// paper. RefShare/ByteShare columns are copied from Table 4. The
// NewDocProb values (α_t) are solved by hand from two constraints per
// workload and recorded with their derivations:
//
//	Σ_t α_t·refShare_t  = m        (first-reference fraction ≈ 1 − max HR)
//	Σ_t α_t·byteShare_t = β        (MaxNeeded / TotalBytes)
//
// so that an infinite cache reaches the paper's maximum hit rates and
// needs roughly the paper's MaxNeeded bytes (§4.1: U 1400 MB, G 413 MB,
// C 221 MB, BR 198 MB, BL 408 MB).

// Paper trace start dates (midnight UTC).
const (
	startU  = 796608000 // 31 Mar 1995
	startG  = 790560000 // 20 Jan 1995
	startC  = 790214400 // 16 Jan 1995
	startBR = 811296000 // 17 Sep 1995
	startBL = 811296000 // 17 Sep 1995
)

// U returns the Undergrad workload: ~30 lab workstations, 190 days,
// 173,384 valid accesses, 2.19 GB (§2). Calendar: spring semester, a
// break dip near day 65, and a fall-semester surge (to ~5000 req/day)
// with new users from day 155 (§4.1, Fig. 3).
//
// Note: Table 4's published U %Bytes column sums to 128.23%; shares are
// used as relative weights (normalized), and the α values are solved
// against the normalized shares: β = 1400/2190 = 0.639, m ≈ 0.53.
// With α(A)=α(V)=0.95, α(Unknown)=0.75, α(CGI)=0.80:
// graphics/text α = (0.639 − 0.325)/0.612 ≈ 0.51, nudged to 0.46 so the
// fall-surge NewDocBoost still lands the paper's ~50% maximum HR.
func U(seed uint64) Config {
	return Config{
		Name: "U", Seed: seed,
		Days: 190, Requests: 173384, TotalBytes: 2_190_000_000,
		Types: []TypeSpec{
			{Type: trace.Graphics, RefShare: 0.5300, ByteShare: 0.4743, NewDocProb: 0.46, SizeSigma: 1.7},
			{Type: trace.Text, RefShare: 0.4146, ByteShare: 0.3105, NewDocProb: 0.46, SizeSigma: 1.7},
			{Type: trace.Audio, RefShare: 0.0009, ByteShare: 0.0315, NewDocProb: 0.95, SizeSigma: 0.5, RecencyBias: 0.8},
			{Type: trace.Video, RefShare: 0.0019, ByteShare: 0.1829, NewDocProb: 0.95, SizeSigma: 0.6, RecencyBias: 0.8},
			{Type: trace.CGI, RefShare: 0.0013, ByteShare: 0.0008, NewDocProb: 0.80, SizeSigma: 1.0},
			{Type: trace.Unknown, RefShare: 0.0512, ByteShare: 0.2823, NewDocProb: 0.75, SizeSigma: 1.8, RecencyBias: 0.6},
		},
		ZipfS: 0.85, UniformMix: 0.25,
		Servers: 900, ServerZipfS: 1.0,
		Domain: "vt.edu", Clients: 30,
		StartDay: startU,
		DayWeight: func(d int) float64 {
			w := weekdayWeight(d, 0.45)
			switch {
			case d >= 60 && d <= 75: // break between spring and summer
				w *= 0.35
			case d >= 155: // fall semester surge
				w *= 2.6
			}
			return w
		},
		NewDocBoost: func(d int) float64 {
			switch {
			case d >= 60 && d <= 75:
				return 1.30 // transient users during the break
			case d >= 155:
				return 1.25 // new users in the fall
			}
			return 1
		},
		SizeChangeProb: 0.010, ZeroSizeProb: 0.003, NoiseFrac: 0.05,
	}
}

// G returns the Graduate workload: one time-shared client, ≥25 users,
// spring 1995, 46,834 valid accesses, 610.92 MB. Hit rates jump near the
// end of the semester (Fig. 4) — modelled by halving NewDocProb then.
//
// α solve: m = 0.52, β = 413/610.92 = 0.676.
// With α(A)=0.90, α(V)=0.97, α(U)=0.95, α(CGI)=0.80:
// graphics/text α = (0.676 − 0.3647)/0.6195 ≈ 0.50, nudged to 0.54 to
// offset the end-of-semester NewDocBoost reduction.
func G(seed uint64) Config {
	return Config{
		Name: "G", Seed: seed,
		Days: 79, Requests: 46834, TotalBytes: 610_920_000,
		Types: []TypeSpec{
			{Type: trace.Graphics, RefShare: 0.5145, ByteShare: 0.3539, NewDocProb: 0.54, SizeSigma: 1.7},
			{Type: trace.Text, RefShare: 0.4523, ByteShare: 0.2656, NewDocProb: 0.54, SizeSigma: 1.7},
			{Type: trace.Audio, RefShare: 0.0007, ByteShare: 0.0147, NewDocProb: 0.90, SizeSigma: 0.5, RecencyBias: 0.8},
			{Type: trace.Video, RefShare: 0.0035, ByteShare: 0.2577, NewDocProb: 0.97, SizeSigma: 0.6, RecencyBias: 0.8},
			{Type: trace.CGI, RefShare: 0.0015, ByteShare: 0.0012, NewDocProb: 0.80, SizeSigma: 1.0},
			{Type: trace.Unknown, RefShare: 0.0276, ByteShare: 0.1058, NewDocProb: 0.95, SizeSigma: 1.8, RecencyBias: 0.6},
		},
		ZipfS: 0.85, UniformMix: 0.25,
		Servers: 700, ServerZipfS: 1.0,
		Domain: "cs.vt.edu", Clients: 25,
		StartDay:  startG,
		DayWeight: func(d int) float64 { return weekdayWeight(d, 0.55) },
		NewDocBoost: func(d int) float64 {
			if d >= 70 {
				return 0.5 // end-of-semester review of familiar pages
			}
			return 1
		},
		SizeChangeProb: 0.008, ZeroSizeProb: 0.003, NoiseFrac: 0.05,
	}
}

// C returns the Classroom workload: 26 workstations, four multimedia
// class sessions per week in spring 1995, 30,316 valid accesses,
// 405.7 MB. Requests occur only on class days; hit rates start high,
// sag, and rise again before the final exam (Fig. 5).
//
// α solve: m = 0.50, β = 221/405.7 = 0.545.
// With α(A)=0.60, α(CGI)=0.80, α(U)=0.70 fixed, solving the two-by-two
// system for x = α(graphics/text) and y = α(video):
// 0.9684x + 0.0034y = 0.480, 0.5505x + 0.3915y = 0.507 ⇒ x≈0.49, y≈0.60.
func C(seed uint64) Config {
	return Config{
		Name: "C", Seed: seed,
		Days: 100, Requests: 30316, TotalBytes: 405_700_000,
		Types: []TypeSpec{
			{Type: trace.Graphics, RefShare: 0.4078, ByteShare: 0.3542, NewDocProb: 0.49, SizeSigma: 1.7},
			{Type: trace.Text, RefShare: 0.5606, ByteShare: 0.1963, NewDocProb: 0.49, SizeSigma: 1.7},
			{Type: trace.Audio, RefShare: 0.0021, ByteShare: 0.0293, NewDocProb: 0.60, SizeSigma: 0.5, RecencyBias: 0.8},
			{Type: trace.Video, RefShare: 0.0034, ByteShare: 0.3915, NewDocProb: 0.60, SizeSigma: 0.6, RecencyBias: 0.8},
			{Type: trace.CGI, RefShare: 0.0012, ByteShare: 0.0003, NewDocProb: 0.80, SizeSigma: 1.0},
			{Type: trace.Unknown, RefShare: 0.0249, ByteShare: 0.0284, NewDocProb: 0.70, SizeSigma: 1.8},
		},
		ZipfS: 0.85, UniformMix: 0.25,
		Servers: 150, ServerZipfS: 1.0,
		Domain: "vt.edu", Clients: 26,
		StartDay: startC,
		DayWeight: func(d int) float64 {
			// Class meets Monday–Thursday; occasional field trips drop a
			// class day deterministically.
			dow := d % 7
			if dow > 3 {
				return 0
			}
			if d%23 == 2 { // field trip
				return 0
			}
			return 1
		},
		NewDocBoost: func(d int) float64 {
			switch {
			case d < 10: // instructor walks the class through fixed pages
				return 0.55
			case d >= 85: // final-exam review of earlier material
				return 0.40
			}
			return 1.15
		},
		SizeChangeProb: 0.006, ZeroSizeProb: 0.003, NoiseFrac: 0.05,
	}
}

// BR returns the Backbone-Remote workload: every request from outside
// .cs.vt.edu to servers inside it, 38 days, 180,132 valid accesses,
// 9.61 GB — 88% of the bytes are audio from a single popular site (§1,
// Table 4; video's 0.00% refs row is folded into Unknown).
//
// α solve: m ≈ 0.021, β = 198 MB / 9.61 GB = 0.0206.
// α(audio) = 0.0216 gives ≈100 unique audio files of ≈1.8 MB (≈182 MB),
// and α(graphics/text) = 0.02 covers the remaining unique bytes.
func BR(seed uint64) Config {
	return Config{
		Name: "BR", Seed: seed,
		Days: 38, Requests: 180132, TotalBytes: 9_610_000_000,
		Types: []TypeSpec{
			{Type: trace.Graphics, RefShare: 0.6166, ByteShare: 0.0809, NewDocProb: 0.020, SizeSigma: 1.2},
			{Type: trace.Text, RefShare: 0.3411, ByteShare: 0.0401, NewDocProb: 0.020, SizeSigma: 1.4},
			{Type: trace.Audio, RefShare: 0.0257, ByteShare: 0.8778, NewDocProb: 0.0216, SizeSigma: 0.25},
			{Type: trace.CGI, RefShare: 0.0022, ByteShare: 0.0001, NewDocProb: 0.30, SizeSigma: 1.0},
			{Type: trace.Unknown, RefShare: 0.0144, ByteShare: 0.0011, NewDocProb: 0.05, SizeSigma: 1.5},
		},
		ZipfS: 1.00, UniformMix: 0.20,
		Servers: 12, ServerZipfS: 0.9, AudioServer: true,
		Domain: "cs.vt.edu", Clients: 6000,
		StartDay:       startBR,
		DayWeight:      func(d int) float64 { return weekdayWeight(d, 0.75) },
		SizeChangeProb: 0.005, ZeroSizeProb: 0.003, NoiseFrac: 0.05,
		Extended: true,
	}
}

// BL returns the Backbone-Local workload: every request from inside the
// CS department to any server in the world, 37 days, 53,881 valid
// accesses, 644.55 MB, 2543 servers, ~36k unique URLs (§2.2, Figs. 1-2).
//
// α solve: m = 0.58, β = 408/644.55 = 0.633.
// With α(A)=0.85, α(V)=0.90, α(U)=0.80, α(CGI)=0.90:
// graphics/text α = (0.633 − 0.208)/0.7556 ≈ 0.56.
func BL(seed uint64) Config {
	return Config{
		Name: "BL", Seed: seed,
		Days: 37, Requests: 53881, TotalBytes: 644_550_000,
		Types: []TypeSpec{
			{Type: trace.Graphics, RefShare: 0.5113, ByteShare: 0.4626, NewDocProb: 0.56, SizeSigma: 1.7},
			{Type: trace.Text, RefShare: 0.4338, ByteShare: 0.2930, NewDocProb: 0.56, SizeSigma: 1.7},
			{Type: trace.Audio, RefShare: 0.0025, ByteShare: 0.1791, NewDocProb: 0.85, SizeSigma: 0.5, RecencyBias: 0.8},
			{Type: trace.Video, RefShare: 0.0004, ByteShare: 0.0358, NewDocProb: 0.90, SizeSigma: 0.6, RecencyBias: 0.8},
			{Type: trace.CGI, RefShare: 0.0095, ByteShare: 0.0005, NewDocProb: 0.90, SizeSigma: 1.0},
			{Type: trace.Unknown, RefShare: 0.0425, ByteShare: 0.0289, NewDocProb: 0.80, SizeSigma: 1.8, RecencyBias: 0.5},
		},
		ZipfS: 0.85, UniformMix: 0.25,
		Servers: 2543, ServerZipfS: 1.0,
		Domain: "world.example", Clients: 185,
		StartDay:       startBL,
		DayWeight:      func(d int) float64 { return weekdayWeight(d, 0.6) },
		SizeChangeProb: 0.013, ZeroSizeProb: 0.003, NoiseFrac: 0.05,
		Extended: true,
	}
}

// weekdayWeight gives weekdays weight 1 and weekends the given factor.
// Day 0 is taken as a Monday.
func weekdayWeight(d int, weekend float64) float64 {
	if dow := d % 7; dow >= 5 {
		return weekend
	}
	return 1
}

// Names lists the five paper workloads in the paper's order.
var Names = []string{"U", "G", "C", "BR", "BL"}

// ByName returns the named workload config ("U", "G", "C", "BR", "BL").
func ByName(name string, seed uint64) (Config, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "U":
		return U(seed), nil
	case "G":
		return G(seed), nil
	case "C":
		return C(seed), nil
	case "BR":
		return BR(seed), nil
	case "BL":
		return BL(seed), nil
	}
	return Config{}, fmt.Errorf("workload: unknown workload %q (want U, G, C, BR or BL)", name)
}

// All returns the five paper workloads at the given seed and scale.
func All(seed uint64, scale float64) []Config {
	cfgs := make([]Config, 0, len(Names))
	for i, n := range Names {
		cfg, _ := ByName(n, seed+uint64(i))
		cfg.Scale = scale
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// GenerateValidated generates cfg and applies the §1.1 validation,
// returning the simulator-ready trace and the validation statistics.
func GenerateValidated(cfg Config) (*trace.Trace, *trace.ValidateStats, error) {
	raw, err := Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	valid, stats := trace.Validate(raw)
	return valid, stats, nil
}
