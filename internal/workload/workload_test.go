package workload

import (
	"math"
	"testing"

	"webcache/internal/sim"
	"webcache/internal/trace"
)

// genValid generates and validates a workload at the given scale.
func genValid(t *testing.T, cfg Config, scale float64) (*trace.Trace, *trace.ValidateStats) {
	t.Helper()
	cfg.Scale = scale
	tr, stats, err := GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, stats
}

func TestDeterminism(t *testing.T) {
	a, _ := genValid(t, BL(7), 0.02)
	b, _ := genValid(t, BL(7), 0.02)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := genValid(t, BL(7), 0.02)
	b, _ := genValid(t, BL(8), 0.02)
	if len(a.Requests) == len(b.Requests) {
		same := true
		for i := range a.Requests {
			if a.Requests[i].URL != b.Requests[i].URL {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTimestampsNondecreasing(t *testing.T) {
	tr, _ := genValid(t, U(3), 0.02)
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatalf("request %d time %d < previous %d", i, tr.Requests[i].Time, tr.Requests[i-1].Time)
		}
	}
}

func TestTypeConsistentWithURL(t *testing.T) {
	tr, _ := genValid(t, G(4), 0.02)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if got := trace.ClassifyURL(r.URL); got != r.Type {
			t.Fatalf("request %d: URL %q classifies as %v but carries type %v", i, r.URL, got, r.Type)
		}
	}
}

func TestScaleControlsVolume(t *testing.T) {
	small, _ := genValid(t, C(5), 0.05)
	large, _ := genValid(t, C(5), 0.10)
	ratio := float64(len(large.Requests)) / float64(len(small.Requests))
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("doubling scale changed volume by %.2f×, want ~2×", ratio)
	}
}

func TestRequestCountNearTarget(t *testing.T) {
	for _, cfg := range All(11, 0.2) {
		tr, _ := genValid(t, cfg, 0.2)
		want := float64(cfg.Requests) * 0.2
		got := float64(len(tr.Requests))
		if math.Abs(got-want) > want*0.05 {
			t.Errorf("%s: %d valid requests, want ~%.0f", cfg.Name, len(tr.Requests), want)
		}
	}
}

// TestTypeMixMatchesTable4 checks the reference shares against the
// paper's Table 4 within two percentage points.
func TestTypeMixMatchesTable4(t *testing.T) {
	for _, cfg := range All(13, 0.2) {
		tr, _ := genValid(t, cfg, 0.2)
		var counts [trace.NumDocTypes]int
		for i := range tr.Requests {
			counts[tr.Requests[i].Type]++
		}
		for _, spec := range cfg.Types {
			got := float64(counts[spec.Type]) / float64(len(tr.Requests))
			if math.Abs(got-spec.RefShare) > 0.02 {
				t.Errorf("%s %v: ref share %.4f, want %.4f±0.02", cfg.Name, spec.Type, got, spec.RefShare)
			}
		}
	}
}

// TestByteMixMatchesTable4 checks byte shares (normalized). Byte shares
// are much noisier than reference shares: at reduced scale a rare type's
// whole byte volume comes from a catalog of a few dozen documents, so
// the tolerance has a share-proportional component.
func TestByteMixMatchesTable4(t *testing.T) {
	for _, cfg := range All(17, 0.3) {
		tr, _ := genValid(t, cfg, 0.3)
		var bytes [trace.NumDocTypes]int64
		var total int64
		for i := range tr.Requests {
			bytes[tr.Requests[i].Type] += tr.Requests[i].Size
			total += tr.Requests[i].Size
		}
		var shareSum float64
		for _, spec := range cfg.Types {
			shareSum += spec.ByteShare
		}
		for _, spec := range cfg.Types {
			want := spec.ByteShare / shareSum
			got := float64(bytes[spec.Type]) / float64(total)
			tol := 0.05 + 0.12*want
			if math.Abs(got-want) > tol {
				t.Errorf("%s %v: byte share %.4f, want %.4f±%.3f", cfg.Name, spec.Type, got, want, tol)
			}
		}
	}
}

// TestClassroomCalendar: workload C must have requests only on class
// days (Mon-Thu pattern with deterministic field trips).
func TestClassroomCalendar(t *testing.T) {
	tr, _ := genValid(t, C(19), 0.2)
	for i := range tr.Requests {
		d := tr.Requests[i].Day(tr.Start)
		if dow := d % 7; dow > 3 {
			t.Fatalf("request on non-class day %d (dow %d)", d, dow)
		}
		if d%23 == 2 {
			t.Fatalf("request on field-trip day %d", d)
		}
	}
}

// TestNoiseAndValidation: the raw trace must contain invalid lines that
// validation removes.
func TestNoiseAndValidation(t *testing.T) {
	cfg := BL(23)
	cfg.Scale = 0.05
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := trace.Validate(raw)
	if stats.DroppedStatus == 0 {
		t.Error("no non-200 noise lines generated")
	}
	if stats.InheritedSize == 0 {
		t.Error("no zero-size inheritance lines generated")
	}
	if stats.SizeChanges == 0 {
		t.Error("no size changes generated")
	}
	frac := stats.SizeChangeFraction()
	if frac <= 0 || frac > 0.05 {
		t.Errorf("size-change fraction %.4f outside the paper's 0.5%%-4.1%% ballpark", frac)
	}
}

func TestExtendedLastModified(t *testing.T) {
	tr, _ := genValid(t, BR(29), 0.02)
	withLM := 0
	for i := range tr.Requests {
		if tr.Requests[i].LastModified != 0 {
			withLM++
		}
	}
	if withLM == 0 {
		t.Fatal("BR is an extended workload but carries no Last-Modified times")
	}
}

func TestBRAudioConcentration(t *testing.T) {
	tr, _ := genValid(t, BR(31), 0.2)
	// All audio URLs live on server 1 (the popular artist site).
	audioURLs := map[string]bool{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Type == trace.Audio {
			audioURLs[r.URL] = true
			if len(r.URL) < 12 || r.URL[:12] != "http://s1.cs" {
				t.Fatalf("audio URL %q not on the dedicated server", r.URL)
			}
		}
	}
	if len(audioURLs) == 0 {
		t.Fatal("no audio URLs in BR")
	}
	// The audio catalog must be tiny relative to requests (the paper's
	// ~96 unique songs at full scale; proportionally fewer references
	// but a similarly small catalog here).
	if len(audioURLs) > 150 {
		t.Fatalf("BR has %d unique audio URLs; expected strong concentration", len(audioURLs))
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names {
		cfg, err := ByName(n, 1)
		if err != nil || cfg.Name != n {
			t.Errorf("ByName(%q) = %v, %v", n, cfg.Name, err)
		}
	}
	if _, err := ByName("XX", 1); err == nil {
		t.Error("ByName accepted XX")
	}
	if cfg, err := ByName("br", 1); err != nil || cfg.Name != "BR" {
		t.Error("ByName not case-insensitive")
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := Config{Name: "bad"}
	if _, err := Generate(bad); err == nil {
		t.Error("empty config accepted")
	}
	cfg := BL(1)
	cfg.Types = []TypeSpec{{Type: trace.Text, RefShare: 0.5, ByteShare: 1}}
	if _, err := Generate(cfg); err == nil {
		t.Error("ref shares summing to 0.5 accepted")
	}
}

func TestMeanSizeNormalization(t *testing.T) {
	// U's byte shares sum to 1.2823 in the paper; MeanSize must
	// normalize them so the per-type means weighted by refs reproduce
	// the trace's overall mean size.
	cfg := U(1)
	var weighted float64
	for _, spec := range cfg.Types {
		weighted += spec.RefShare * cfg.MeanSize(spec)
	}
	overall := float64(cfg.TotalBytes) / float64(cfg.Requests)
	if math.Abs(weighted-overall) > overall*0.01 {
		t.Fatalf("ref-weighted mean %.0f, want %.0f", weighted, overall)
	}
}

// TestUCalendarEffects verifies §4.1's narrative structure in U: the
// semester-break dip around day 65 and the fall-semester volume surge
// from day 155.
func TestUCalendarEffects(t *testing.T) {
	tr, _ := genValid(t, U(41), 0.3)
	perDay := map[int]int{}
	for i := range tr.Requests {
		perDay[tr.Requests[i].Day(tr.Start)]++
	}
	mean := func(from, to int) float64 {
		sum, n := 0, 0
		for d := from; d <= to; d++ {
			sum += perDay[d]
			n++
		}
		return float64(sum) / float64(n)
	}
	spring := mean(20, 55)
	breakWeeks := mean(62, 73)
	fall := mean(160, 185)
	if breakWeeks >= spring*0.7 {
		t.Errorf("break volume %.0f/day not clearly below spring %.0f/day", breakWeeks, spring)
	}
	if fall <= spring*1.5 {
		t.Errorf("fall volume %.0f/day lacks the paper's surge over spring %.0f/day", fall, spring)
	}
}

// TestWeekendVolumeLower checks the weekly cycle (day 0 is a Monday).
func TestWeekendVolumeLower(t *testing.T) {
	tr, _ := genValid(t, BL(43), 0.3)
	var weekday, weekend, weekdayDays, weekendDays float64
	perDay := map[int]int{}
	for i := range tr.Requests {
		perDay[tr.Requests[i].Day(tr.Start)]++
	}
	for d, n := range perDay {
		if d%7 >= 5 {
			weekend += float64(n)
			weekendDays++
		} else {
			weekday += float64(n)
			weekdayDays++
		}
	}
	if weekendDays == 0 || weekdayDays == 0 {
		t.Fatal("missing day classes")
	}
	if weekend/weekendDays >= weekday/weekdayDays {
		t.Error("weekend volume not below weekday volume")
	}
}

// TestGFinalsReviewRaisesHitRate: G's NewDocBoost drop after day 70 must
// lift the infinite-cache hit rate at the end of the semester (Fig. 4's
// late jump).
func TestGFinalsReviewRaisesHitRate(t *testing.T) {
	cfg := G(47)
	cfg.Scale = 0.5
	tr, _, err := GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Experiment1(tr, 1)
	var mid, late []float64
	for _, p := range res.Rates.HR.Raw() {
		switch {
		case p.Day >= 30 && p.Day < 65:
			mid = append(mid, p.Value)
		case p.Day >= 72:
			late = append(late, p.Value)
		}
	}
	if len(mid) == 0 || len(late) == 0 {
		t.Fatal("missing day ranges")
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(late) <= avg(mid)+0.03 {
		t.Errorf("late-semester HR %.3f not clearly above mid-semester %.3f", avg(late), avg(mid))
	}
}
