package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"webcache/internal/trace"
)

// This file lets users define custom workloads in JSON instead of Go
// (tracegen -config), covering everything the built-in five use. The
// calendar functions, which cannot be serialized directly, are expressed
// as a weekend weight plus piecewise day spans.

// SpanSpec scales a quantity over an inclusive day range.
type SpanSpec struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Factor float64 `json:"factor"`
}

// JSONType is the serialized TypeSpec.
type JSONType struct {
	Type        string  `json:"type"` // Graphics, Text, Audio, Video, CGI, Unknown
	RefShare    float64 `json:"refShare"`
	ByteShare   float64 `json:"byteShare"`
	NewDocProb  float64 `json:"newDocProb"`
	SizeSigma   float64 `json:"sizeSigma,omitempty"`
	RecencyBias float64 `json:"recencyBias,omitempty"`
}

// JSONConfig is the serialized workload definition.
type JSONConfig struct {
	Name       string     `json:"name"`
	Seed       uint64     `json:"seed,omitempty"`
	Days       int        `json:"days"`
	Requests   int        `json:"requests"`
	TotalBytes int64      `json:"totalBytes"`
	Types      []JSONType `json:"types"`

	ZipfS      float64 `json:"zipfS,omitempty"`
	UniformMix float64 `json:"uniformMix,omitempty"`

	Servers     int     `json:"servers,omitempty"`
	ServerZipfS float64 `json:"serverZipfS,omitempty"`
	AudioServer bool    `json:"audioServer,omitempty"`
	Domain      string  `json:"domain,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	StartDay    int64   `json:"startDay,omitempty"`

	// WeekendWeight scales Saturday/Sunday volume (day 0 is a Monday);
	// zero means no weekly cycle. VolumeSpans and NewDocSpans apply
	// multiplicative factors over day ranges (semester breaks, review
	// weeks). ClassDays, when non-empty, restricts requests to those
	// days of the week (0=Monday), as in the Classroom workload.
	WeekendWeight float64    `json:"weekendWeight,omitempty"`
	VolumeSpans   []SpanSpec `json:"volumeSpans,omitempty"`
	NewDocSpans   []SpanSpec `json:"newDocSpans,omitempty"`
	ClassDays     []int      `json:"classDays,omitempty"`

	SizeChangeProb float64 `json:"sizeChangeProb,omitempty"`
	ZeroSizeProb   float64 `json:"zeroSizeProb,omitempty"`
	NoiseFrac      float64 `json:"noiseFrac,omitempty"`
	Extended       bool    `json:"extended,omitempty"`
	Scale          float64 `json:"scale,omitempty"`
}

// ParseDocType resolves a JSON type name.
func ParseDocType(s string) (trace.DocType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "graphics":
		return trace.Graphics, nil
	case "text", "text/html", "html":
		return trace.Text, nil
	case "audio":
		return trace.Audio, nil
	case "video":
		return trace.Video, nil
	case "cgi":
		return trace.CGI, nil
	case "unknown":
		return trace.Unknown, nil
	}
	return 0, fmt.Errorf("workload: unknown document type %q", s)
}

// FromJSON decodes a workload definition.
func FromJSON(r io.Reader) (Config, error) {
	var jc JSONConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return Config{}, fmt.Errorf("workload: decoding JSON config: %w", err)
	}
	return jc.Config()
}

// Config converts the JSON form to a runnable Config.
func (jc *JSONConfig) Config() (Config, error) {
	if jc.Name == "" {
		return Config{}, fmt.Errorf("workload: JSON config needs a name")
	}
	cfg := Config{
		Name: jc.Name, Seed: jc.Seed,
		Days: jc.Days, Requests: jc.Requests, TotalBytes: jc.TotalBytes,
		ZipfS: jc.ZipfS, UniformMix: jc.UniformMix,
		Servers: max(jc.Servers, 1), ServerZipfS: jc.ServerZipfS,
		AudioServer: jc.AudioServer,
		Domain:      jc.Domain, Clients: max(jc.Clients, 1),
		StartDay:       jc.StartDay,
		SizeChangeProb: jc.SizeChangeProb, ZeroSizeProb: jc.ZeroSizeProb,
		NoiseFrac: jc.NoiseFrac, Extended: jc.Extended, Scale: jc.Scale,
	}
	if cfg.Domain == "" {
		cfg.Domain = "example.net"
	}
	for _, jt := range jc.Types {
		dt, err := ParseDocType(jt.Type)
		if err != nil {
			return Config{}, err
		}
		cfg.Types = append(cfg.Types, TypeSpec{
			Type: dt, RefShare: jt.RefShare, ByteShare: jt.ByteShare,
			NewDocProb: jt.NewDocProb, SizeSigma: jt.SizeSigma,
			RecencyBias: jt.RecencyBias,
		})
	}

	weekend := jc.WeekendWeight
	volSpans := append([]SpanSpec(nil), jc.VolumeSpans...)
	classDays := append([]int(nil), jc.ClassDays...)
	cfg.DayWeight = func(d int) float64 {
		if len(classDays) > 0 {
			ok := false
			for _, cd := range classDays {
				if d%7 == cd {
					ok = true
					break
				}
			}
			if !ok {
				return 0
			}
		}
		w := 1.0
		if weekend > 0 && d%7 >= 5 {
			w = weekend
		}
		for _, sp := range volSpans {
			if d >= sp.From && d <= sp.To {
				w *= sp.Factor
			}
		}
		return w
	}
	newDocSpans := append([]SpanSpec(nil), jc.NewDocSpans...)
	if len(newDocSpans) > 0 {
		cfg.NewDocBoost = func(d int) float64 {
			b := 1.0
			for _, sp := range newDocSpans {
				if d >= sp.From && d <= sp.To {
					b *= sp.Factor
				}
			}
			return b
		}
	}
	return cfg, nil
}
