// Package workload synthesizes the paper's five Virginia Tech traces.
//
// The original logs (Undergrad, Graduate, Classroom, Backbone-Remote,
// Backbone-Local; §2 of the paper) are not publicly available, so each
// workload is replaced by a deterministic generator calibrated to every
// statistic the paper publishes about it:
//
//   - duration, valid request count and bytes transferred (§2),
//   - the file-type mix by references and by bytes (Table 4),
//   - MaxNeeded, the cache size at which no removal ever occurs (§4.1),
//   - the implied infinite-cache hit rate (Figs. 3–7),
//   - URL/server popularity concentration (Figs. 1–2, Zipf),
//   - the document-size distribution shape (Fig. 13),
//   - calendar structure: weekly cycles, the semester break and fall
//     surge in U, the 4-day class week and final-exam review in C,
//     the end-of-semester review in G (§4.1).
//
// The generator is an independent-reference model with document birth:
// each request either mints a never-seen URL (probability NewDocProb of
// its type) or re-references an existing URL drawn by a Zipf law over
// the type's catalog. Per-type NewDocProb values are solved from two
// published constraints — Σ α·refShare = overall first-reference
// fraction (1 − infinite HR) and Σ α·byteShare = MaxNeeded/TotalBytes —
// so the emergent MaxNeeded and maximum hit rates land near the paper's.
package workload

import (
	"fmt"
	"math"
	"sort"

	"webcache/internal/rng"
	"webcache/internal/trace"
)

// TypeSpec calibrates one media type of a workload.
type TypeSpec struct {
	Type      trace.DocType
	RefShare  float64 // Table 4 %Refs / 100
	ByteShare float64 // Table 4 %Bytes / 100
	// NewDocProb is the probability that a request of this type mints a
	// new URL (the α_t solved in the package comment).
	NewDocProb float64
	// SizeSigma is the log-space standard deviation of the lognormal
	// document-size distribution; the mean is derived from RefShare,
	// ByteShare and the workload totals.
	SizeSigma float64
	// RecencyBias is the probability that a re-reference of this type
	// goes to one of the type's recently minted documents instead of a
	// Zipf draw over the whole catalog. It models the paper's Fig. 14
	// observation that large (audio/video) files receive repeated
	// references hours apart, without changing the byte or uniqueness
	// calibration (the selected document's size is identically
	// distributed either way).
	RecencyBias float64
}

// Config fully describes a synthetic workload.
type Config struct {
	Name       string
	Seed       uint64
	Days       int
	Requests   int   // target number of valid requests at Scale 1.0
	TotalBytes int64 // target bytes transferred at Scale 1.0

	Types []TypeSpec

	// ZipfS is the popularity exponent over each type's catalog;
	// UniformMix is the probability of drawing uniformly instead,
	// flattening the tail.
	ZipfS      float64
	UniformMix float64

	// Servers is the server-pool size; ServerZipfS skews URL-to-server
	// assignment (Fig. 1). AudioServer forces every audio URL onto
	// server 1 (the BR workload's single popular audio site).
	Servers     int
	ServerZipfS float64
	AudioServer bool

	Domain  string // server DNS suffix, e.g. "cs.vt.edu"
	Clients int    // client-pool size

	// StartDay is the Unix time of the trace's first midnight.
	StartDay int64

	// DayWeight returns the relative request volume of day d (0-based);
	// nil means uniform. Zero-weight days get no requests (Classroom).
	DayWeight func(d int) float64
	// NewDocBoost returns a multiplier on NewDocProb for day d; nil
	// means 1. It models semester effects on reference locality.
	NewDocBoost func(d int) float64

	// SizeChangeProb is the per-re-reference probability that the
	// document was modified to a new size (§1.1 reports 0.5%–4.1%).
	SizeChangeProb float64
	// ZeroSizeProb is the per-re-reference probability that the log
	// records size 0 (the validator inherits the last known size).
	ZeroSizeProb float64
	// NoiseFrac adds this fraction of invalid lines (non-200 statuses
	// and zero-size first references) on top of the valid requests.
	NoiseFrac float64

	// Extended marks the trace as carrying Last-Modified times (BR, BL).
	Extended bool

	// Scale multiplies per-day request volume; 1.0 reproduces the paper
	// scale, smaller values give cheap benchmark-sized traces with the
	// same per-request statistics. Zero means 1.0.
	Scale float64
}

// scaled returns the effective total valid-request target.
func (c *Config) scaled() int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(math.Round(float64(c.Requests) * s))
	if n < 1 {
		n = 1
	}
	return n
}

// MeanSize returns the calibrated mean document size of type spec t.
// Byte shares are normalized to sum to one: Table 4's U column sums to
// 128.23% in the published text (an inconsistency in the paper; the
// other four columns sum to ~100%), so shares are treated as relative
// weights.
func (c *Config) MeanSize(t TypeSpec) float64 {
	if t.RefShare <= 0 {
		return 1
	}
	var byteSum float64
	for _, ts := range c.Types {
		byteSum += ts.ByteShare
	}
	if byteSum <= 0 {
		byteSum = 1
	}
	return float64(c.TotalBytes) * (t.ByteShare / byteSum) / (float64(c.Requests) * t.RefShare)
}

// doc is one catalog entry during generation.
type doc struct {
	url     string
	size    int64
	lastMod int64
}

// typeState is the per-type generation state.
type typeState struct {
	spec     TypeSpec
	meanSize float64
	sizeDist *rng.LogNormal
	docs     []doc
	zipf     *rng.Zipf
	zipfN    int
	ext      string
	nextID   int
}

const (
	minDocSize = 64
	maxDocSize = 32 << 20
)

// Generate produces the raw synthetic trace (including invalid noise
// lines). Run trace.Validate on it before simulation, exactly as the
// paper validates its logs.
func Generate(cfg Config) (*trace.Trace, error) {
	if cfg.Days < 1 || cfg.Requests < 1 || cfg.TotalBytes < 1 {
		return nil, fmt.Errorf("workload %q: need positive Days/Requests/TotalBytes", cfg.Name)
	}
	var refSum float64
	for _, t := range cfg.Types {
		refSum += t.RefShare
	}
	if math.Abs(refSum-1) > 0.02 {
		return nil, fmt.Errorf("workload %q: type ref shares sum to %.3f, want 1", cfg.Name, refSum)
	}

	base := rng.New(cfg.Seed)
	rTypes := base.Split()   // type selection
	rDocs := base.Split()    // new-vs-old and popularity draws
	rSizes := base.Split()   // size draws
	rTimes := base.Split()   // timestamps
	rNoise := base.Split()   // invalid lines
	rClients := base.Split() // client selection
	rServers := base.Split() // server assignment

	// Per-type state.
	states := make([]*typeState, len(cfg.Types))
	weights := make([]float64, len(cfg.Types))
	for i, spec := range cfg.Types {
		mean := cfg.MeanSize(spec)
		sigma := spec.SizeSigma
		if sigma <= 0 {
			sigma = 1.2
		}
		states[i] = &typeState{
			spec:     spec,
			meanSize: mean,
			sizeDist: rng.NewLogNormalMean(rSizes, mean, sigma),
			ext:      extFor(spec.Type),
		}
		weights[i] = spec.RefShare
	}
	typePick, err := rng.NewCategorical(rTypes, weights)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", cfg.Name, err)
	}

	serverZipf, err := rng.NewZipf(rServers, int64(max(cfg.Servers, 1)), nz(cfg.ServerZipfS, 1.0))
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", cfg.Name, err)
	}
	clientZipf, err := rng.NewZipf(rClients, int64(max(cfg.Clients, 1)), 0.6)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", cfg.Name, err)
	}

	// Per-day request budget.
	dayCounts := splitByDay(cfg, rTimes)

	tr := &trace.Trace{Name: cfg.Name, Start: cfg.StartDay}
	total := 0
	for _, n := range dayCounts {
		total += n
	}
	tr.Requests = make([]trace.Request, 0, total+int(float64(total)*cfg.NoiseFrac)+16)

	for day, n := range dayCounts {
		if n == 0 {
			continue
		}
		nNoise := 0
		if cfg.NoiseFrac > 0 {
			nNoise = int(float64(n) * cfg.NoiseFrac)
		}
		times := dayTimes(cfg.StartDay, day, n+nNoise, rTimes)
		boost := 1.0
		if cfg.NewDocBoost != nil {
			boost = cfg.NewDocBoost(day)
		}
		// Interleave noise uniformly among valid requests.
		noiseLeft := nNoise
		for i, ts := range times {
			remaining := len(times) - i
			if noiseLeft > 0 && rNoise.Float64() < float64(noiseLeft)/float64(remaining) {
				tr.Requests = append(tr.Requests, noiseRequest(cfg, states, ts, rNoise, clientZipf))
				noiseLeft--
				continue
			}
			req := validRequest(cfg, states, typePick, serverZipf, clientZipf, rDocs, rSizes, boost, ts)
			tr.Requests = append(tr.Requests, req)
		}
	}
	return tr, nil
}

// validRequest draws one valid (status 200) request at time ts.
func validRequest(cfg Config, states []*typeState, typePick *rng.Categorical,
	serverZipf, clientZipf *rng.Zipf, rDocs, rSizes *rng.Rand, boost float64, ts int64) trace.Request {

	st := states[typePick.Draw()]
	alpha := st.spec.NewDocProb * boost
	if alpha > 1 {
		alpha = 1
	}

	var d *doc
	fresh := len(st.docs) == 0 || rDocs.Float64() < alpha
	if fresh {
		d = mintDoc(cfg, st, serverZipf, rSizes, ts)
	} else {
		d = pickDoc(st, rDocs, cfg)
		// Occasionally the origin document was modified to a new size
		// since the last reference (§1.1).
		if cfg.SizeChangeProb > 0 && rDocs.Float64() < cfg.SizeChangeProb {
			d.size = perturbSize(d.size, rSizes)
			d.lastMod = ts
		}
	}

	size := d.size
	if !fresh && cfg.ZeroSizeProb > 0 && rDocs.Float64() < cfg.ZeroSizeProb {
		size = 0 // validator will inherit the last known size
	}
	return trace.Request{
		Time:         ts,
		Client:       clientName(cfg, clientZipf),
		URL:          d.url,
		Status:       200,
		Size:         size,
		Type:         st.spec.Type,
		LastModified: lastModFor(cfg, d),
	}
}

// mintDoc creates a new catalog document for st.
func mintDoc(cfg Config, st *typeState, serverZipf *rng.Zipf, rSizes *rng.Rand, ts int64) *doc {
	srv := serverZipf.Rank()
	if cfg.AudioServer && st.spec.Type == trace.Audio {
		srv = 1
	}
	st.nextID++
	url := fmt.Sprintf("http://s%d.%s%s%d%s", srv, cfg.Domain, pathPrefix(st.spec.Type), st.nextID, st.ext)
	size := drawSize(st, rSizes)
	st.docs = append(st.docs, doc{url: url, size: size, lastMod: ts - 86400*int64(1+rSizes.Intn(60))})
	return &st.docs[len(st.docs)-1]
}

// recencyWindow is how many most-recently-minted documents a
// recency-biased re-reference chooses among.
const recencyWindow = 100

// pickDoc draws an existing document: with probability RecencyBias one
// of the recently minted documents, otherwise by Zipf popularity over
// birth order mixed with a uniform component.
func pickDoc(st *typeState, rDocs *rng.Rand, cfg Config) *doc {
	n := len(st.docs)
	if b := st.spec.RecencyBias; b > 0 && rDocs.Float64() < b {
		w := recencyWindow
		if w > n {
			w = n
		}
		return &st.docs[n-1-rDocs.Intn(w)]
	}
	if cfg.UniformMix > 0 && rDocs.Float64() < cfg.UniformMix {
		return &st.docs[rDocs.Intn(n)]
	}
	// Rebuild the Zipf sampler lazily as the catalog grows.
	if st.zipf == nil || n > st.zipfN+st.zipfN/8 {
		z, err := rng.NewZipf(rDocs, int64(n), nz(cfg.ZipfS, 0.85))
		if err != nil {
			return &st.docs[rDocs.Intn(n)]
		}
		st.zipf, st.zipfN = z, n
	}
	rank := st.zipf.Rank()
	if rank > int64(n) {
		rank = int64(n)
	}
	return &st.docs[rank-1]
}

func drawSize(st *typeState, rSizes *rng.Rand) int64 {
	s := int64(math.Round(st.sizeDist.Draw()))
	if s < minDocSize {
		s = minDocSize
	}
	if s > maxDocSize {
		s = maxDocSize
	}
	return s
}

// perturbSize returns a size different from old, modelling a document
// edit.
func perturbSize(old int64, r *rng.Rand) int64 {
	factor := 0.8 + 0.45*r.Float64()
	s := int64(math.Round(float64(old) * factor))
	if s < minDocSize {
		s = minDocSize
	}
	if s == old {
		s++
	}
	return s
}

// noiseRequest emits an invalid line: a non-200 status, or a zero-size
// first reference, both of which §1.1 drops.
func noiseRequest(cfg Config, states []*typeState, ts int64, r *rng.Rand, clientZipf *rng.Zipf) trace.Request {
	statuses := []int{304, 304, 304, 404, 403, 500, 302}
	status := statuses[r.Intn(len(statuses))]
	url := fmt.Sprintf("http://s1.%s/noise/n%d.html", cfg.Domain, r.Intn(1<<20))
	size := int64(0)
	if status == 302 {
		// A zero-size 200 for a never-seen URL is also invalid (§1.1).
		status = 200
		url = fmt.Sprintf("http://s1.%s/noise/z%d.html", cfg.Domain, r.Intn(1<<20))
	}
	return trace.Request{
		Time:   ts,
		Client: clientName(cfg, clientZipf),
		URL:    url,
		Status: status,
		Size:   size,
		Type:   trace.ClassifyURL(url),
	}
}

func clientName(cfg Config, z *rng.Zipf) string {
	return fmt.Sprintf("client%d.%s", z.Rank(), cfg.Domain)
}

func lastModFor(cfg Config, d *doc) int64 {
	if !cfg.Extended {
		return 0
	}
	return d.lastMod
}

// splitByDay apportions the valid-request budget across days using
// DayWeight, with Poisson jitter.
func splitByDay(cfg Config, r *rng.Rand) []int {
	weights := make([]float64, cfg.Days)
	sum := 0.0
	for d := range weights {
		w := 1.0
		if cfg.DayWeight != nil {
			w = cfg.DayWeight(d)
		}
		if w < 0 {
			w = 0
		}
		weights[d] = w
		sum += w
	}
	counts := make([]int, cfg.Days)
	if sum == 0 {
		return counts
	}
	n := cfg.scaled()
	for d, w := range weights {
		if w == 0 {
			continue
		}
		counts[d] = r.Poisson(float64(n) * w / sum)
	}
	return counts
}

// dayTimes draws n request times within day d, shaped toward working
// hours (08:00–23:00 with a midday peak), sorted ascending.
func dayTimes(start int64, day, n int, r *rng.Rand) []int64 {
	times := make([]int64, n)
	dayStart := start + int64(day)*86400
	for i := range times {
		// Sum of two uniforms gives a triangular peak at the middle of
		// the active window.
		frac := (r.Float64() + r.Float64()) / 2
		sec := 8*3600 + int64(frac*float64(15*3600))
		times[i] = dayStart + sec
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

func pathPrefix(t trace.DocType) string {
	switch t {
	case trace.Graphics:
		return "/img/g"
	case trace.Text:
		return "/doc/t"
	case trace.Audio:
		return "/audio/a"
	case trace.Video:
		return "/video/v"
	case trace.CGI:
		return "/cgi-bin/q"
	default:
		return "/misc/u"
	}
}

func extFor(t trace.DocType) string {
	switch t {
	case trace.Graphics:
		return ".gif"
	case trace.Text:
		return ".html"
	case trace.Audio:
		return ".au"
	case trace.Video:
		return ".mpg"
	case trace.CGI:
		return "" // cgi-bin path alone classifies as CGI
	default:
		return ".dat"
	}
}

func nz(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
