package workload

import (
	"strings"
	"testing"

	"webcache/internal/trace"
)

const sampleJSON = `{
  "name": "lab",
  "seed": 9,
  "days": 14,
  "requests": 2000,
  "totalBytes": 20000000,
  "types": [
    {"type": "Graphics", "refShare": 0.6, "byteShare": 0.5, "newDocProb": 0.4},
    {"type": "Text", "refShare": 0.39, "byteShare": 0.3, "newDocProb": 0.5},
    {"type": "Video", "refShare": 0.01, "byteShare": 0.2, "newDocProb": 0.8, "sizeSigma": 0.6, "recencyBias": 0.7}
  ],
  "zipfS": 0.9,
  "servers": 20,
  "clients": 10,
  "weekendWeight": 0.5,
  "volumeSpans": [{"from": 5, "to": 7, "factor": 0}],
  "newDocSpans": [{"from": 10, "to": 13, "factor": 0.5}],
  "sizeChangeProb": 0.01,
  "noiseFrac": 0.05
}`

func TestFromJSONGenerates(t *testing.T) {
	cfg, err := FromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	tr, stats, err := GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept < 1800 || stats.Kept > 2200 {
		t.Fatalf("kept %d requests, want ~2000", stats.Kept)
	}
	// The volume span zeroes days 5-7 entirely.
	for i := range tr.Requests {
		d := tr.Requests[i].Day(tr.Start)
		if d >= 5 && d <= 7 {
			t.Fatalf("request on silenced day %d", d)
		}
	}
	// Type mix respected.
	var video int
	for i := range tr.Requests {
		if tr.Requests[i].Type == trace.Video {
			video++
		}
	}
	frac := float64(video) / float64(len(tr.Requests))
	if frac < 0.002 || frac > 0.03 {
		t.Fatalf("video share %.4f, want ~0.01", frac)
	}
}

func TestFromJSONClassDays(t *testing.T) {
	js := `{"name":"cls","days":14,"requests":500,"totalBytes":1000000,
	  "types":[{"type":"Text","refShare":1.0,"byteShare":1.0,"newDocProb":0.5}],
	  "classDays":[0,2]}`
	cfg, err := FromJSON(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := GenerateValidated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Requests {
		if dow := tr.Requests[i].Day(tr.Start) % 7; dow != 0 && dow != 2 {
			t.Fatalf("request on non-class weekday %d", dow)
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{"days": 1}`, // no name
		`{"name":"x","days":1,"requests":1,"totalBytes":1,"types":[{"type":"Bogus","refShare":1,"byteShare":1,"newDocProb":0.5}]}`,
		`{"name":"x","unknownField":true}`,
		`{"name":"x","days":1,"requests":1,"totalBytes":1,"types":[{"type":"Text","refShare":0.4,"byteShare":1,"newDocProb":0.5}]}`, // shares don't sum (caught by Generate)
	}
	for i, js := range cases[:4] {
		if _, err := FromJSON(strings.NewReader(js)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	cfg, err := FromJSON(strings.NewReader(cases[4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(cfg); err == nil {
		t.Error("non-unit ref shares accepted by Generate")
	}
}

func TestParseDocType(t *testing.T) {
	good := map[string]trace.DocType{
		"Graphics": trace.Graphics, "text": trace.Text, "AUDIO": trace.Audio,
		"video": trace.Video, "cgi": trace.CGI, "unknown": trace.Unknown,
		"html": trace.Text,
	}
	for s, want := range good {
		got, err := ParseDocType(s)
		if err != nil || got != want {
			t.Errorf("ParseDocType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDocType("nope"); err == nil {
		t.Error("bad type accepted")
	}
}
