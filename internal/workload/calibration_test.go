package workload

import (
	"testing"

	"webcache/internal/sim"
)

// Calibration tests check the generators against the paper's published
// per-workload statistics (§2, §4.1). They run the full-scale traces
// through the infinite-cache simulator, so they are skipped in -short
// mode.

// paperTargets records the published numbers: valid requests, bytes
// transferred, MaxNeeded (§4.1), and a plausible band for the maximum
// hit rate read off Figs. 3-7.
var paperTargets = map[string]struct {
	requests   int
	totalBytes float64
	maxNeeded  float64
	hrLo, hrHi float64
}{
	"U":  {173384, 2.19e9, 1400e6, 0.40, 0.65},
	"G":  {46834, 610.92e6, 413e6, 0.40, 0.65},
	"C":  {30316, 405.7e6, 221e6, 0.40, 0.70},
	"BR": {180132, 9.61e9, 198e6, 0.93, 1.00},
	"BL": {53881, 644.55e6, 408e6, 0.30, 0.55},
}

func TestCalibrationAgainstPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration in -short mode")
	}
	for _, cfg := range All(42, 1.0) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			target := paperTargets[cfg.Name]
			tr, _, err := GenerateValidated(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := float64(len(tr.Requests)), float64(target.requests); relErr(got, want) > 0.05 {
				t.Errorf("valid requests %0.f, want %.0f±5%%", got, want)
			}
			if got, want := float64(tr.TotalBytes()), target.totalBytes; relErr(got, want) > 0.15 {
				t.Errorf("bytes transferred %.2e, want %.2e±15%%", got, want)
			}

			res := sim.Experiment1(tr, 7)
			if got, want := float64(res.MaxNeeded), target.maxNeeded; relErr(got, want) > 0.15 {
				t.Errorf("MaxNeeded %.0f MB, want %.0f MB±15%%", got/1e6, want/1e6)
			}
			if res.MeanHR < target.hrLo || res.MeanHR > target.hrHi {
				t.Errorf("mean daily HR %.3f outside the paper band [%.2f, %.2f]",
					res.MeanHR, target.hrLo, target.hrHi)
			}
			// Figs. 3-7: HR is (nearly always) at or above WHR, and BR's
			// WHR is extreme.
			if cfg.Name == "BR" && res.MeanWHR < 0.90 {
				t.Errorf("BR mean WHR %.3f, paper reports ~95%%", res.MeanWHR)
			}
		})
	}
}

// TestDurationsMatchPaper checks trace lengths: U 190 days, G/C spring
// semester, BR 38 days, BL 37 days.
func TestDurationsMatchPaper(t *testing.T) {
	want := map[string]int{"U": 190, "G": 79, "C": 100, "BR": 38, "BL": 37}
	for _, cfg := range All(3, 0.05) {
		tr, _, err := GenerateValidated(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := tr.Days(); d > want[cfg.Name] || d < want[cfg.Name]-7 {
			t.Errorf("%s spans %d days, want ≈%d", cfg.Name, d, want[cfg.Name])
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
