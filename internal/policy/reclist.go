package policy

// touchMode says how a Touch can move an entry within a recencyList,
// given which keys of the order the touch mutates.
type touchMode uint8

const (
	// touchNone: no touched key participates in the order (e.g. pure
	// FIFO, ETIME/SIZE) — the entry's position is already correct.
	touchNone touchMode = iota
	// touchLocal: the primary is fixed but a touched key is the
	// secondary (e.g. ETIME/ATIME) — the entry moves only within its
	// equal-primary run, in either direction.
	touchLocal
	// touchTail: the primary itself is touched to the current maximum
	// (ATIME-primary, DAY(ATIME)/ATIME) — reinsert scanning from the
	// tail.
	touchTail
)

// inListIdx is the heapIdx sentinel marking an entry as linked into a
// recencyList (lists have no array index; the field is otherwise unused
// while the entry belongs to a list-backed policy).
const inListIdx = -2

// recencyList keeps entries in a doubly-linked list maintained in
// exactly the comparator's ascending order: head is the victim.
//
// Insertion scans backward from the tail with the full comparator, so
// the list is correct for any inputs; it is *fast* because the combos
// routed here insert and touch entries whose primary key is the current
// clock maximum — the scan stops within the run of entries sharing that
// timestamp, which real traces keep short (same-second arrivals).
// Non-monotone clocks only lengthen the scan, never break the order.
type recencyList struct {
	head, tail *Entry
	n          int
	less       func(a, b *Entry) bool
	mode       touchMode
}

func newRecencyList(less func(a, b *Entry) bool, mode touchMode) *recencyList {
	return &recencyList{less: less, mode: mode}
}

func (l *recencyList) kind() string { return "list" }
func (l *recencyList) Len() int     { return l.n }
func (l *recencyList) Grow(int)     {}
func (l *recencyList) Peek() *Entry { return l.head }

func (l *recencyList) Add(e *Entry) {
	l.insertFromTail(e)
	e.heapIdx = inListIdx
	l.n++
}

func (l *recencyList) Remove(e *Entry) {
	if e.heapIdx != inListIdx {
		return
	}
	l.unlink(e)
	e.heapIdx = -1
	l.n--
}

func (l *recencyList) Touch(e *Entry) {
	if e.heapIdx != inListIdx || l.mode == touchNone {
		return
	}
	if l.mode == touchTail {
		// The touched keys rose to the clock maximum, so the
		// destination sits inside the tail's equal-timestamp run:
		// reinsert scanning backward from the tail instead of walking
		// forward from here (which would traverse everything between
		// the old and new positions). Skip the unlink when the local
		// order still holds — in a sorted list that pins the global
		// position, e.g. a re-hit within the same second.
		if (e.next == nil || !l.less(e.next, e)) &&
			(e.prev == nil || !l.less(e, e.prev)) {
			return
		}
		l.unlink(e)
		l.insertFromTail(e)
		return
	}
	// touchLocal: the primary is fixed, so the entry moves only within
	// its equal-primary run — a short bidirectional scan.
	if next := e.next; next != nil && l.less(next, e) {
		// Moved tailward (the common case: keys increased).
		at := next
		l.unlink(e)
		for at.next != nil && l.less(at.next, e) {
			at = at.next
		}
		l.insertAfter(e, at)
		return
	}
	if prev := e.prev; prev != nil && l.less(e, prev) {
		// Moved headward — reachable only through a clock regression,
		// but the scan keeps the order exact regardless.
		at := prev
		l.unlink(e)
		for at != nil && l.less(e, at) {
			at = at.prev
		}
		l.insertAfter(e, at)
	}
}

// insertFromTail places e at its sorted position, scanning backward
// from the tail.
func (l *recencyList) insertFromTail(e *Entry) {
	at := l.tail
	for at != nil && l.less(e, at) {
		at = at.prev
	}
	l.insertAfter(e, at)
}

// insertAfter links e directly after at; at == nil inserts at the head.
func (l *recencyList) insertAfter(e, at *Entry) {
	if at == nil {
		e.prev = nil
		e.next = l.head
		if l.head != nil {
			l.head.prev = e
		} else {
			l.tail = e
		}
		l.head = e
		return
	}
	e.prev = at
	e.next = at.next
	if at.next != nil {
		at.next.prev = e
	} else {
		l.tail = e
	}
	at.next = e
}

func (l *recencyList) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev = nil
	e.next = nil
}
