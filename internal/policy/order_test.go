package policy

import (
	"fmt"
	"testing"

	"webcache/internal/trace"
)

// The parallel experiment runner builds one heap-based policy per
// worker and relies on every comparator being a strict weak ordering —
// in fact, because RANDOM and then URL are always appended as final
// tiebreaks, a strict *total* order. These property tests check
// irreflexivity, asymmetry, transitivity and totality for every
// comparator the 36-policy design can construct, on a sample designed
// to collide on every individual key.

// orderSample returns entries with deliberate collisions in SIZE,
// ⌊log2 SIZE⌋, ETIME, ATIME, DAY(ATIME), NREF, TYPE and LATENCY, plus
// one pair sharing even the RANDOM value so only the URL tiebreak
// separates them.
func orderSample() []*Entry {
	sizes := []int64{100, 100, 2048, 3000, 4096, 65536}
	times := []int64{0, 3600, 3600, 90000, 90000, 200000}
	nrefs := []int64{1, 1, 2, 5}
	types := []trace.DocType{trace.Text, trace.Graphics, trace.Audio, trace.Text}
	var entries []*Entry
	id := 0
	rand := uint64(1)
	for _, size := range sizes {
		for _, at := range times {
			e := NewEntry(fmt.Sprintf("http://s/doc%03d", id), size, types[id%len(types)], times[id%len(times)], rand)
			e.ATime = at
			e.NRef = nrefs[id%len(nrefs)]
			e.Latency = float64(id%5) * 0.25
			entries = append(entries, e)
			id++
			rand += 7919
		}
	}
	// A pair equal on every key including RANDOM: only the URL breaks
	// the tie, which keeps the order total.
	twinA := NewEntry("http://s/twin-a", 2048, trace.Text, 3600, 42)
	twinB := NewEntry("http://s/twin-b", 2048, trace.Text, 3600, 42)
	twinA.NRef, twinB.NRef = 3, 3
	return append(entries, twinA, twinB)
}

// comboKeys mirrors Combo.New: a RANDOM secondary is left to the
// universal tiebreak.
func comboKeys(c Combo) []Key {
	if c.Secondary == KeyRandom {
		return []Key{c.Primary}
	}
	return []Key{c.Primary, c.Secondary}
}

func checkStrictTotalOrder(t *testing.T, name string, less func(a, b *Entry) bool, sample []*Entry) {
	t.Helper()
	for _, a := range sample {
		if less(a, a) {
			t.Fatalf("%s: not irreflexive at %s", name, a.URL)
		}
	}
	for _, a := range sample {
		for _, b := range sample {
			if a == b {
				continue
			}
			ab, ba := less(a, b), less(b, a)
			if ab && ba {
				t.Fatalf("%s: not asymmetric on %s, %s", name, a.URL, b.URL)
			}
			if !ab && !ba {
				t.Fatalf("%s: not total on %s, %s (distinct entries compare equal)", name, a.URL, b.URL)
			}
		}
	}
	for _, a := range sample {
		for _, b := range sample {
			if !less(a, b) {
				continue
			}
			for _, c := range sample {
				if less(b, c) && !less(a, c) {
					t.Fatalf("%s: not transitive on %s < %s < %s", name, a.URL, b.URL, c.URL)
				}
			}
		}
	}
}

func TestAllCombosStrictWeakOrdering(t *testing.T) {
	sample := orderSample()
	for _, dayStart := range []int64{0, 500} {
		for _, c := range AllCombos() {
			less := Less(comboKeys(c), dayStart)
			checkStrictTotalOrder(t, fmt.Sprintf("%s@%d", c, dayStart), less, sample)
		}
	}
}

// TestExtensionKeysStrictWeakOrdering covers the §5 extension keys the
// combos do not reach.
func TestExtensionKeysStrictWeakOrdering(t *testing.T) {
	sample := orderSample()
	for _, keys := range [][]Key{
		{KeyType},
		{KeyLatency},
		{KeyType, KeyLatency},
		{KeyRandom},
	} {
		name := ""
		for _, k := range keys {
			name += "/" + k.String()
		}
		checkStrictTotalOrder(t, name, Less(keys, 0), sample)
	}
}

// TestComparatorAgreesWithHeapVictim cross-checks the ordering against
// the heap: for a SIZE-primary policy the victim must always be a
// minimal element under the comparator (here: the largest file).
func TestComparatorAgreesWithHeapVictim(t *testing.T) {
	p := NewSorted([]Key{KeySize}, 0)
	sample := orderSample()
	for _, e := range sample {
		p.Add(e)
	}
	less := Less([]Key{KeySize}, 0)
	v := p.Victim(0)
	if v == nil {
		t.Fatal("no victim")
	}
	for _, e := range sample {
		if e != v && less(e, v) {
			t.Fatalf("heap victim %s is not minimal: %s sorts before it", v.URL, e.URL)
		}
	}
}
