package policy

import "webcache/internal/pqueue"

// ExpiredFirst wraps another policy with the Harvest cache's behaviour
// cited in §5 open problem 4 of the paper: "the Harvest cache tries to
// remove expired documents first". Victim selection prefers the cached
// document whose expiration time is furthest in the past; only when no
// document has expired does the inner policy choose.
//
// Expiration times come from Entry.Expires (Unix seconds; zero means
// no expiry). The cache drives the clock through SetNow.
type ExpiredFirst struct {
	inner Policy
	now   int64
	heap  *pqueue.Heap[*expiryNode]
	nodes map[*Entry]*expiryNode
}

// expiryNode gives each entry a second heap position independent of the
// inner policy's.
type expiryNode struct {
	e   *Entry
	idx int
}

func (n *expiryNode) HeapIndex() int     { return n.idx }
func (n *expiryNode) SetHeapIndex(i int) { n.idx = i }

// NewExpiredFirst wraps inner.
func NewExpiredFirst(inner Policy) *ExpiredFirst {
	p := &ExpiredFirst{inner: inner, nodes: make(map[*Entry]*expiryNode)}
	p.heap = pqueue.New(func(a, b *expiryNode) bool {
		if a.e.Expires != b.e.Expires {
			return a.e.Expires < b.e.Expires
		}
		if a.e.Rand != b.e.Rand {
			return a.e.Rand < b.e.Rand
		}
		return a.e.URL < b.e.URL
	})
	return p
}

// Name implements Policy.
func (p *ExpiredFirst) Name() string { return "ExpiredFirst(" + p.inner.Name() + ")" }

// SetNow advances the policy's clock (called by the cache per request).
func (p *ExpiredFirst) SetNow(now int64) {
	p.now = now
	if inner, ok := p.inner.(interface{ SetNow(int64) }); ok {
		inner.SetNow(now)
	}
}

// Add implements Policy.
func (p *ExpiredFirst) Add(e *Entry) {
	p.inner.Add(e)
	if e.Expires > 0 {
		n := &expiryNode{e: e, idx: -1}
		p.nodes[e] = n
		p.heap.Push(n)
	}
}

// Touch implements Policy. A refreshed entry may carry a new expiry.
func (p *ExpiredFirst) Touch(e *Entry) {
	p.inner.Touch(e)
	if n, ok := p.nodes[e]; ok {
		p.heap.Fix(n)
	} else if e.Expires > 0 {
		n := &expiryNode{e: e, idx: -1}
		p.nodes[e] = n
		p.heap.Push(n)
	}
}

// Remove implements Policy.
func (p *ExpiredFirst) Remove(e *Entry) {
	p.inner.Remove(e)
	if n, ok := p.nodes[e]; ok {
		p.heap.Remove(n)
		delete(p.nodes, e)
	}
}

// Victim implements Policy: the longest-expired document if any has
// expired, otherwise the inner policy's choice.
func (p *ExpiredFirst) Victim(incoming int64) *Entry {
	if head, ok := p.heap.Peek(); ok && head.e.Expires <= p.now {
		return head.e
	}
	return p.inner.Victim(incoming)
}

// Len implements Policy.
func (p *ExpiredFirst) Len() int { return p.inner.Len() }

// ExpiredCount reports how many tracked documents are currently expired
// (an O(n log n) scan; intended for tests and reports, not hot paths).
func (p *ExpiredFirst) ExpiredCount() int {
	n := 0
	for _, node := range p.nodes {
		if node.e.Expires <= p.now {
			n++
		}
	}
	return n
}
