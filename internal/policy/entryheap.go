package policy

import "webcache/internal/pqueue"

// entryHeap is the indexed binary min-heap the heap-based policies keep
// their entries on. It mirrors pqueue.Heap exactly — same operation
// semantics, same comparison sequence, same hole-based sift with the
// same pqueue.DisableHoleSift ablation switch — but is concrete over
// *Entry: the index bookkeeping compiles to direct e.heapIdx loads and
// stores instead of method calls through the generics dictionary, which
// matters in the sift loops at the bottom of every replay.
type entryHeap struct {
	items []*Entry
	less  func(a, b *Entry) bool
}

func newEntryHeap(less func(a, b *Entry) bool) *entryHeap {
	return &entryHeap{less: less}
}

// Grow pre-sizes the backing array to hold at least n entries.
func (h *entryHeap) Grow(n int) {
	if cap(h.items) < n {
		items := make([]*Entry, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

func (h *entryHeap) Len() int { return len(h.items) }

func (h *entryHeap) Push(e *Entry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	e.heapIdx = i
	h.up(i)
}

// Peek returns the head (next victim) without removing it.
func (h *entryHeap) Peek() (*Entry, bool) {
	if len(h.items) == 0 {
		return nil, false
	}
	return h.items[0], true
}

func (h *entryHeap) Pop() (*Entry, bool) {
	if len(h.items) == 0 {
		return nil, false
	}
	head := h.items[0]
	h.removeAt(0)
	return head, true
}

// Remove deletes e from the heap using its tracked index; it reports
// false (and does nothing) when e is not on this heap.
func (h *entryHeap) Remove(e *Entry) bool {
	i := e.heapIdx
	if i < 0 || i >= len(h.items) || h.items[i] != e {
		return false
	}
	h.removeAt(i)
	return true
}

// Fix re-establishes heap order after e's keys changed.
func (h *entryHeap) Fix(e *Entry) bool {
	i := e.heapIdx
	if i < 0 || i >= len(h.items) || h.items[i] != e {
		return false
	}
	if !h.down(i) {
		h.up(i)
	}
	return true
}

// Items returns the backing slice in heap order; callers must not
// mutate it.
func (h *entryHeap) Items() []*Entry { return h.items }

func (h *entryHeap) removeAt(i int) {
	n := len(h.items) - 1
	e := h.items[i]
	if i != n {
		h.items[i] = h.items[n]
		h.items[i].heapIdx = i
	}
	h.items[n] = nil
	h.items = h.items[:n]
	e.heapIdx = -1
	if i < n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h *entryHeap) up(i int) {
	if pqueue.DisableHoleSift {
		h.upSwap(i)
		return
	}
	e := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(e, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		h.items[i].heapIdx = i
		i = parent
	}
	h.items[i] = e
	e.heapIdx = i
}

func (h *entryHeap) down(i int) bool {
	if pqueue.DisableHoleSift {
		return h.downSwap(i)
	}
	start := i
	e := h.items[i]
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], e) {
			break
		}
		h.items[i] = h.items[smallest]
		h.items[i].heapIdx = i
		i = smallest
	}
	if i == start {
		return false
	}
	h.items[i] = e
	e.heapIdx = i
	return true
}

func (h *entryHeap) upSwap(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *entryHeap) downSwap(i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			break
		}
		h.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

func (h *entryHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}
