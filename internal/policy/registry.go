package policy

import (
	"fmt"
	"strings"
)

// Combo is one cell of the paper's experiment design: a primary and a
// secondary sorting key (the tertiary key is always RANDOM).
type Combo struct {
	Primary   Key
	Secondary Key
}

// String returns "PRIMARY/SECONDARY" in the paper's notation.
func (c Combo) String() string {
	return c.Primary.String() + "/" + c.Secondary.String()
}

// New constructs the sorted policy for the combo. dayStart anchors
// DAY(ATIME).
func (c Combo) New(dayStart int64) *Sorted {
	if c.Secondary == KeyRandom {
		// RANDOM is the universal tiebreak appended by NewSorted.
		return NewSorted([]Key{c.Primary}, dayStart)
	}
	return NewSorted([]Key{c.Primary, c.Secondary}, dayStart)
}

// AllCombos returns the paper's 36 primary/secondary combinations: each
// Table 1 key as primary, crossed with the five other Table 1 keys plus
// RANDOM as secondary (§1.2: "This gives 36 combinations of primary and
// secondary keys, and thus 36 policies").
func AllCombos() []Combo {
	var combos []Combo
	for _, p := range TableOneKeys {
		for _, s := range TableOneKeys {
			if s == p {
				continue
			}
			combos = append(combos, Combo{Primary: p, Secondary: s})
		}
		combos = append(combos, Combo{Primary: p, Secondary: KeyRandom})
	}
	return combos
}

// PrimaryCombos returns each Table 1 key with a random secondary — the
// policies plotted in Figures 8–12.
func PrimaryCombos() []Combo {
	combos := make([]Combo, 0, len(TableOneKeys))
	for _, p := range TableOneKeys {
		combos = append(combos, Combo{Primary: p, Secondary: KeyRandom})
	}
	return combos
}

// SecondaryCombos returns ⌊log2 SIZE⌋ crossed with every other Table 1
// key plus RANDOM as secondary — the policies of Figure 15.
func SecondaryCombos() []Combo {
	var combos []Combo
	for _, s := range TableOneKeys {
		if s == KeyLog2Size {
			continue
		}
		combos = append(combos, Combo{Primary: KeyLog2Size, Secondary: s})
	}
	combos = append(combos, Combo{Primary: KeyLog2Size, Secondary: KeyRandom})
	return combos
}

// ParseKey resolves the paper's notation (case-insensitive) to a Key.
func ParseKey(s string) (Key, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SIZE":
		return KeySize, nil
	case "LOG2SIZE", "LOG2(SIZE)", "FLOORLOG2SIZE":
		return KeyLog2Size, nil
	case "ETIME":
		return KeyETime, nil
	case "ATIME":
		return KeyATime, nil
	case "DAY(ATIME)", "DAYATIME":
		return KeyDayATime, nil
	case "NREF", "NREFS":
		return KeyNRef, nil
	case "RANDOM", "RAND":
		return KeyRandom, nil
	case "TYPE":
		return KeyType, nil
	case "LATENCY":
		return KeyLatency, nil
	}
	return 0, fmt.Errorf("policy: unknown key %q", s)
}

// Parse builds a policy from a specification string: either a literature
// policy name (FIFO, LRU, LFU, LRU-MIN, HYPER-G, PITKOW/RECKER,
// GD-SIZE(1), GD-SIZE(SIZE)) or a slash-separated key list such as
// "SIZE/NREF". dayStart anchors day-based keys.
func Parse(spec string, dayStart int64) (Policy, error) {
	switch strings.ToUpper(strings.TrimSpace(spec)) {
	case "FIFO":
		return NewFIFO(), nil
	case "LRU":
		return NewLRU(), nil
	case "LFU":
		return NewLFU(), nil
	case "LRU-MIN", "LRUMIN":
		return NewLRUMin(), nil
	case "HYPER-G", "HYPERG":
		return NewHyperG(), nil
	case "PITKOW/RECKER", "PITKOW-RECKER", "PR":
		return NewPitkowRecker(dayStart), nil
	case "GD-SIZE(1)", "GDS1", "GDS":
		return NewGDS1(), nil
	case "GD-SIZE(SIZE)", "GDSBYTES":
		return NewGDSBytes(), nil
	case "GD-LATENCY", "GDLATENCY":
		return NewGDSLatency(), nil
	}
	parts := strings.Split(spec, "/")
	keys := make([]Key, 0, len(parts))
	for _, part := range parts {
		k, err := ParseKey(part)
		if err != nil {
			return nil, fmt.Errorf("policy: bad spec %q: %w", spec, err)
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("policy: empty spec")
	}
	return NewSorted(keys, dayStart), nil
}

// Factory validates a specification string once and returns a
// constructor producing fresh, independent Policy instances for it —
// the registry lookup callers use when they need several caches
// running the same policy (one per shard, one per shadow) or want
// flag errors surfaced at startup rather than at first use. The
// returned name is the canonical spelling (Policy.Name of a probe
// instance), stable across equivalent spellings of spec.
func Factory(spec string, dayStart int64) (name string, make func() Policy, err error) {
	probe, err := Parse(spec, dayStart)
	if err != nil {
		return "", nil, err
	}
	// Parse validated spec; re-parsing cannot fail, so the constructor
	// swallows the impossible error instead of making callers re-handle
	// it on every instantiation.
	return probe.Name(), func() Policy {
		p, _ := Parse(spec, dayStart)
		return p
	}, nil
}
