package policy

// Compiled comparators: unrolled, specialization-per-combination
// removal-order comparators over the Entry's cached derived sort keys.
//
// The generic Less loops over a key slice and switch-dispatches per
// key, recomputing ⌊log2 SIZE⌋ and DAY(ATIME) on every comparison —
// fine for an oracle, wasteful for the heap sifts that dominate a
// replay (every hit re-sifts the touched entry, every eviction sifts
// the root). CompileLess instead returns a dedicated straight-line
// function for each key combination the paper's experiment design can
// construct: the six single-key policies, all 30 two-key combinations
// of Table 1 (the 36-policy design of §1.2 once the RANDOM secondary
// is folded into the universal tiebreak), the Pitkow/Recker pair, the
// Hyper-G triple of Table 3, and the §5 extension keys. Each compares
// precomputed fields directly — Log2Size and DayATime are maintained
// on the entry (see Entry.SyncDerived) rather than derived per call.
//
// Every specialization is semantically identical to Less on entries
// whose derived keys are in sync; TestCompiledMatchesGeneric checks
// the agreement pairwise on randomized, collision-heavy populations.

// DisableCompiled, when set before policies are constructed, forces
// every comparator back to the generic key-loop Less. It exists so the
// benchmark harness (internal/tools/benchreplay, the sim replay
// benchmarks) can measure the compiled layer's contribution; it is not
// flipped in production paths.
var DisableCompiled bool

// CompileLess returns the removal-order comparator for the key
// sequence, specialized when a compiled form exists and falling back
// to the generic Less otherwise. The two are interchangeable except
// for speed; like Less, the returned function orders entries that
// should be removed sooner first, with the universal RANDOM-then-URL
// tiebreak appended.
//
// Comparators that involve KeyDayATime read Entry.DayATime, which the
// day-keyed policies maintain; hand-built entries must call
// SyncDerived with the same dayStart first.
func CompileLess(keys []Key, dayStart int64) func(a, b *Entry) bool {
	if !DisableCompiled {
		if f := compiledFor(keys); f != nil {
			return f
		}
	}
	return Less(keys, dayStart)
}

// compiledFor returns the dedicated comparator for the key sequence,
// or nil when only the generic loop covers it.
func compiledFor(keys []Key) func(a, b *Entry) bool {
	switch len(keys) {
	case 1:
		return compiledOne(keys[0])
	case 2:
		if keys[1] == KeyRandom {
			// RANDOM as an explicit secondary collapses into the
			// universal tiebreak: any later key is masked by the URL
			// tiebreak only when Rand values collide, exactly as the
			// single-key form behaves.
			return compiledOne(keys[0])
		}
		return compiledTwo(keys[0], keys[1])
	case 3:
		if keys[0] == KeyNRef && keys[1] == KeyATime && keys[2] == KeySize {
			return lessHyperG // Table 3: Hyper-G
		}
	}
	return nil
}

func compiledOne(k Key) func(a, b *Entry) bool {
	switch k {
	case KeySize:
		return lessSize
	case KeyLog2Size:
		return lessLog2
	case KeyETime:
		return lessETime
	case KeyATime:
		return lessATime
	case KeyDayATime:
		return lessDay
	case KeyNRef:
		return lessNRef
	case KeyRandom:
		return lessTie
	case KeyType:
		return lessType
	case KeyLatency:
		return lessLatency
	}
	return nil
}

func compiledTwo(p, s Key) func(a, b *Entry) bool {
	switch [2]Key{p, s} {
	case [2]Key{KeySize, KeyLog2Size}:
		return lessSizeLog2
	case [2]Key{KeySize, KeyETime}:
		return lessSizeETime
	case [2]Key{KeySize, KeyATime}:
		return lessSizeATime
	case [2]Key{KeySize, KeyDayATime}:
		return lessSizeDay
	case [2]Key{KeySize, KeyNRef}:
		return lessSizeNRef
	case [2]Key{KeyLog2Size, KeySize}:
		return lessLog2Size
	case [2]Key{KeyLog2Size, KeyETime}:
		return lessLog2ETime
	case [2]Key{KeyLog2Size, KeyATime}:
		return lessLog2ATime
	case [2]Key{KeyLog2Size, KeyDayATime}:
		return lessLog2Day
	case [2]Key{KeyLog2Size, KeyNRef}:
		return lessLog2NRef
	case [2]Key{KeyETime, KeySize}:
		return lessETimeSize
	case [2]Key{KeyETime, KeyLog2Size}:
		return lessETimeLog2
	case [2]Key{KeyETime, KeyATime}:
		return lessETimeATime
	case [2]Key{KeyETime, KeyDayATime}:
		return lessETimeDay
	case [2]Key{KeyETime, KeyNRef}:
		return lessETimeNRef
	case [2]Key{KeyATime, KeySize}:
		return lessATimeSize
	case [2]Key{KeyATime, KeyLog2Size}:
		return lessATimeLog2
	case [2]Key{KeyATime, KeyETime}:
		return lessATimeETime
	case [2]Key{KeyATime, KeyDayATime}:
		return lessATimeDay
	case [2]Key{KeyATime, KeyNRef}:
		return lessATimeNRef
	case [2]Key{KeyDayATime, KeySize}:
		return lessDaySize
	case [2]Key{KeyDayATime, KeyLog2Size}:
		return lessDayLog2
	case [2]Key{KeyDayATime, KeyETime}:
		return lessDayETime
	case [2]Key{KeyDayATime, KeyATime}:
		return lessDayATime
	case [2]Key{KeyDayATime, KeyNRef}:
		return lessDayNRef
	case [2]Key{KeyNRef, KeySize}:
		return lessNRefSize
	case [2]Key{KeyNRef, KeyLog2Size}:
		return lessNRefLog2
	case [2]Key{KeyNRef, KeyETime}:
		return lessNRefETime
	case [2]Key{KeyNRef, KeyATime}:
		return lessNRefATime
	case [2]Key{KeyNRef, KeyDayATime}:
		return lessNRefDay
	}
	return nil
}

// lessTie is the universal final tiebreak: the stable per-entry random
// value, then the URL. It is the whole comparator for a pure-RANDOM
// policy and the tail of every other specialization.
func lessTie(a, b *Entry) bool {
	if a.Rand != b.Rand {
		return a.Rand < b.Rand
	}
	return a.URL < b.URL
}

// Single-key specializations (removal order per Table 1: SIZE and
// LOG2SIZE remove the largest first, the time- and count-valued keys
// remove the smallest first).

func lessSize(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessLog2(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessETime(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessATime(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessDay(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

func lessNRef(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessType(a, b *Entry) bool {
	if a.typeRank != b.typeRank {
		return a.typeRank < b.typeRank
	}
	return lessTie(a, b)
}

// lessLatency mirrors the generic three-way float comparison exactly:
// two strict comparisons, so non-ordered values (a defensive NaN) fall
// through to the tiebreak just as compareKey's 0 result does.
func lessLatency(a, b *Entry) bool {
	if a.Latency < b.Latency {
		return true
	}
	if b.Latency < a.Latency {
		return false
	}
	return lessTie(a, b)
}

// Two-key specializations: the 30 ordered Table 1 pairs of the
// 36-policy design (the six RANDOM-secondary cells reduce to the
// single-key forms above).

func lessSizeLog2(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessSizeETime(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessSizeATime(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessSizeDay(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

func lessSizeNRef(a, b *Entry) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessLog2Size(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessLog2ETime(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessLog2ATime(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessLog2Day(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

func lessLog2NRef(a, b *Entry) bool {
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessETimeSize(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessETimeLog2(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessETimeATime(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessETimeDay(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

func lessETimeNRef(a, b *Entry) bool {
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessATimeSize(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessATimeLog2(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessATimeETime(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessATimeDay(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

func lessATimeNRef(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessDaySize(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessDayLog2(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessDayETime(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessDayATime(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessDayNRef(a, b *Entry) bool {
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	return lessTie(a, b)
}

func lessNRefSize(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}

func lessNRefLog2(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.Log2Size != b.Log2Size {
		return a.Log2Size > b.Log2Size
	}
	return lessTie(a, b)
}

func lessNRefETime(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.ETime != b.ETime {
		return a.ETime < b.ETime
	}
	return lessTie(a, b)
}

func lessNRefATime(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	return lessTie(a, b)
}

func lessNRefDay(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.DayATime != b.DayATime {
		return a.DayATime < b.DayATime
	}
	return lessTie(a, b)
}

// lessHyperG is the Table 3 Hyper-G order: least referenced, then
// least recently used, then largest first.
func lessHyperG(a, b *Entry) bool {
	if a.NRef != b.NRef {
		return a.NRef < b.NRef
	}
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	return lessTie(a, b)
}
