package policy

import "testing"

func TestFactoryProducesIndependentInstances(t *testing.T) {
	name, make, err := Factory("SIZE/NREF", 0)
	if err != nil {
		t.Fatalf("Factory: %v", err)
	}
	if name != "SIZE/NREF" {
		t.Fatalf("canonical name = %q, want SIZE/NREF", name)
	}
	a, b := make(), make()
	if a == b {
		t.Fatal("Factory returned the same instance twice")
	}
	if a.Name() != name || b.Name() != name {
		t.Fatalf("instance names %q / %q, want %q", a.Name(), b.Name(), name)
	}
	// Instances must not share state: filling one leaves the other empty.
	e := NewEntry("http://a.test/x", 100, 0, 1, 1)
	a.Add(e)
	if a.Len() != 1 || b.Len() != 0 {
		t.Fatalf("Len a=%d b=%d, want 1 and 0", a.Len(), b.Len())
	}
}

func TestFactoryCanonicalizesSpellings(t *testing.T) {
	for spec, want := range map[string]string{
		"lru":           "LRU",
		"LRU":           "LRU",
		"HYPERG":        "Hyper-G",
		"PITKOW-RECKER": "Pitkow/Recker",
	} {
		name, _, err := Factory(spec, 0)
		if err != nil {
			t.Errorf("Factory(%q): %v", spec, err)
			continue
		}
		if name != want {
			t.Errorf("Factory(%q) name = %q, want %q", spec, name, want)
		}
	}
}

func TestFactoryRejectsBadSpec(t *testing.T) {
	for _, spec := range []string{"", "NOSUCH", "SIZE/NOSUCH"} {
		if _, _, err := Factory(spec, 0); err == nil {
			t.Errorf("Factory(%q): want error", spec)
		}
	}
}
