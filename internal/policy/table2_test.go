package policy

import (
	"strings"
	"testing"

	"webcache/internal/trace"
)

// This file encodes the paper's Table 2 worked example as a golden test:
// a 42.5 kB cache, the 15-request trace over documents A–H, the sorted
// removal lists for five key combinations, and the documents each policy
// removes to admit a new 1.5 kB document I.
//
// Sizes use 1 kB = 1024 bytes, which is the only interpretation
// consistent with the paper's ⌊log2 SIZE⌋ row (e.g. E = 8 kB is in class
// 13, so E must be 8192 bytes, not 8000).

var table2Docs = map[string]int64{
	"A": 1946,  // 1.9 kB
	"B": 1229,  // 1.2 kB
	"C": 9216,  // 9 kB
	"D": 15360, // 15 kB
	"E": 8192,  // 8 kB
	"F": 307,   // 0.3 kB
	"G": 1946,  // 1.9 kB
	"H": 5325,  // 5.2 kB
}

// table2Trace is the upper table: (time, URL) pairs.
var table2Trace = []struct {
	time int64
	url  string
}{
	{1, "A"}, {2, "B"}, {3, "C"}, {4, "B"}, {5, "B"}, {6, "A"},
	{7, "D"}, {8, "E"}, {9, "C"}, {10, "D"}, {11, "F"}, {12, "G"},
	{13, "A"}, {14, "D"}, {15, "H"},
}

// replayTable2 feeds the example trace into a fresh policy and returns
// the entry map. Entries receive distinct Rand values but no two
// documents tie on all paper keys, so the random tiebreak never decides.
func replayTable2(p Policy) map[string]*Entry {
	entries := make(map[string]*Entry)
	var randSeq uint64
	for _, step := range table2Trace {
		if e, ok := entries[step.url]; ok {
			e.ATime = step.time
			e.NRef++
			p.Touch(e)
			continue
		}
		randSeq++
		e := NewEntry(step.url, table2Docs[step.url], trace.Unknown, step.time, randSeq*0x9e3779b9)
		entries[step.url] = e
		p.Add(e)
	}
	return entries
}

// drainOrder destructively extracts the policy's full removal order for
// a given incoming size.
func drainOrder(p Policy, incoming int64) string {
	var order []string
	for {
		v := p.Victim(incoming)
		if v == nil {
			break
		}
		order = append(order, v.URL)
		p.Remove(v)
	}
	return strings.Join(order, " ")
}

// victimsFor simulates the paper's removal loop: evict from the head of
// the order until 1.5 kB (1536 bytes) of free space exists in the
// exactly-full 42.5 kB cache.
func victimsFor(p Policy, entries map[string]*Entry, need int64) []string {
	var victims []string
	freed := int64(0)
	for freed < need {
		v := p.Victim(need)
		if v == nil {
			break
		}
		victims = append(victims, v.URL)
		freed += v.Size
		p.Remove(v)
	}
	return victims
}

func TestTable2KeyValues(t *testing.T) {
	p := NewSorted([]Key{KeyETime}, 0)
	entries := replayTable2(p)

	wantNRef := map[string]int64{"A": 3, "B": 3, "C": 2, "D": 3, "E": 1, "F": 1, "G": 1, "H": 1}
	wantATime := map[string]int64{"A": 13, "B": 5, "C": 9, "D": 14, "E": 8, "F": 11, "G": 12, "H": 15}
	wantETime := map[string]int64{"A": 1, "B": 2, "C": 3, "D": 7, "E": 8, "F": 11, "G": 12, "H": 15}
	wantLog2 := map[string]int{"A": 10, "B": 10, "C": 13, "D": 13, "E": 13, "F": 8, "G": 10, "H": 12}

	for url, e := range entries {
		if e.NRef != wantNRef[url] {
			t.Errorf("%s: NREF = %d, want %d", url, e.NRef, wantNRef[url])
		}
		if e.ATime != wantATime[url] {
			t.Errorf("%s: ATIME = %d, want %d", url, e.ATime, wantATime[url])
		}
		if e.ETime != wantETime[url] {
			t.Errorf("%s: ETIME = %d, want %d", url, e.ETime, wantETime[url])
		}
		if got := log2Floor(e.Size); got != wantLog2[url] {
			t.Errorf("%s: log2(SIZE) = %d, want %d", url, got, wantLog2[url])
		}
	}
}

// TestTable2SortedLists verifies the bottom table's full sorted lists.
func TestTable2SortedLists(t *testing.T) {
	cases := []struct {
		name string
		keys []Key
		want string
	}{
		{"SIZE/ATIME", []Key{KeySize, KeyATime}, "D C E H G A B F"},
		{"LOG2SIZE/ATIME", []Key{KeyLog2Size, KeyATime}, "E C D H B G A F"},
		{"ETIME", []Key{KeyETime}, "A B C D E F G H"},
		{"ATIME", []Key{KeyATime}, "B E C F G A D H"},
		{"NREF/ETIME", []Key{KeyNRef, KeyETime}, "E F G H C A B D"},
	}
	for _, tc := range cases {
		p := NewSorted(tc.keys, 0)
		replayTable2(p)
		if got := drainOrder(p, 1536); got != tc.want {
			t.Errorf("%s sorted list = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestTable2Victims verifies the asterisked removals: the documents each
// policy evicts to admit the 1.5 kB document I.
func TestTable2Victims(t *testing.T) {
	cases := []struct {
		name string
		keys []Key
		want string
	}{
		{"SIZE/ATIME", []Key{KeySize, KeyATime}, "D"},
		{"LOG2SIZE/ATIME", []Key{KeyLog2Size, KeyATime}, "E"},
		{"ETIME", []Key{KeyETime}, "A"},
		{"ATIME", []Key{KeyATime}, "B E"}, // LRU removes B then E, as §1.2 narrates
		{"NREF/ETIME", []Key{KeyNRef, KeyETime}, "E"},
	}
	for _, tc := range cases {
		p := NewSorted(tc.keys, 0)
		entries := replayTable2(p)
		got := strings.Join(victimsFor(p, entries, 1536), " ")
		if got != tc.want {
			t.Errorf("%s victims = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestTable2CacheExactlyFull checks the example's premise: the eight
// documents exactly fill the cache.
func TestTable2CacheExactlyFull(t *testing.T) {
	var sum int64
	for _, s := range table2Docs {
		sum += s
	}
	// 42.5 kB at 1024 bytes/kB is 43520; byte rounding of the fractional
	// sizes puts the exact sum one byte over.
	if sum != 43521 {
		t.Fatalf("document sizes sum to %d, want 43521 (~42.5 kB)", sum)
	}
}
