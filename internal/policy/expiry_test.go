package policy

import (
	"testing"

	"webcache/internal/rng"
)

func TestExpiredFirstPrefersExpired(t *testing.T) {
	p := NewExpiredFirst(NewSorted([]Key{KeySize}, 0))
	fresh := entry("fresh-big", 10000, 1, 1, 1, 1)
	fresh.Expires = 1000
	stale := entry("stale-small", 10, 2, 2, 1, 2)
	stale.Expires = 50
	p.Add(fresh)
	p.Add(stale)

	p.SetNow(100) // stale has expired, fresh has not
	if v := p.Victim(0); v == nil || v.URL != "stale-small" {
		t.Fatalf("victim = %v, want the expired document", v)
	}
	if n := p.ExpiredCount(); n != 1 {
		t.Fatalf("ExpiredCount = %d", n)
	}

	p.Remove(stale)
	// Nothing expired now: fall back to the inner SIZE order.
	if v := p.Victim(0); v == nil || v.URL != "fresh-big" {
		t.Fatalf("victim = %v, want inner policy's choice", v)
	}
}

func TestExpiredFirstOldestExpiryFirst(t *testing.T) {
	p := NewExpiredFirst(NewLRU())
	a := entry("a", 10, 1, 9, 1, 1)
	a.Expires = 30
	b := entry("b", 10, 2, 1, 1, 2)
	b.Expires = 10
	p.Add(a)
	p.Add(b)
	p.SetNow(100)
	// Both expired; b expired first.
	if v := p.Victim(0); v.URL != "b" {
		t.Fatalf("victim %s, want the longest-expired", v.URL)
	}
}

func TestExpiredFirstNoExpiryEntries(t *testing.T) {
	p := NewExpiredFirst(NewLRU())
	a := entry("a", 10, 1, 1, 1, 1) // Expires 0: never
	p.Add(a)
	p.SetNow(1 << 40)
	if v := p.Victim(0); v != a {
		t.Fatalf("victim %v", v)
	}
	if n := p.ExpiredCount(); n != 0 {
		t.Fatalf("never-expiring entry counted as expired (%d)", n)
	}
}

func TestExpiredFirstTouchRefreshesExpiry(t *testing.T) {
	p := NewExpiredFirst(NewLRU())
	a := entry("a", 10, 1, 1, 1, 1)
	a.Expires = 10
	b := entry("b", 10, 2, 2, 1, 2)
	b.Expires = 20
	p.Add(a)
	p.Add(b)
	p.SetNow(100)
	// Refresh a far into the future (a revalidation): b becomes first.
	a.Expires = 1000
	p.Touch(a)
	if v := p.Victim(0); v.URL != "b" {
		t.Fatalf("victim %s after refresh, want b", v.URL)
	}
}

func TestExpiredFirstName(t *testing.T) {
	p := NewExpiredFirst(NewLRU())
	if p.Name() != "ExpiredFirst(LRU)" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestExpiredFirstRandomOps(t *testing.T) {
	p := NewExpiredFirst(NewSorted([]Key{KeySize}, 0))
	r := rng.New(5)
	live := map[string]*Entry{}
	seq := 0
	for op := 0; op < 4000; op++ {
		p.SetNow(int64(op))
		switch r.Intn(3) {
		case 0:
			seq++
			e := entry("u"+itoa(seq), int64(1+r.Intn(1000)), int64(op), int64(op), 1, uint64(seq)*777)
			if r.Float64() < 0.7 {
				e.Expires = int64(op + r.Intn(100))
			}
			p.Add(e)
			live[e.URL] = e
		case 1:
			for _, e := range live {
				e.ATime = int64(op)
				if e.Expires > 0 {
					e.Expires = int64(op + r.Intn(100))
				}
				p.Touch(e)
				break
			}
		case 2:
			v := p.Victim(0)
			if v == nil {
				if len(live) != 0 {
					t.Fatalf("op %d: no victim with %d live entries", op, len(live))
				}
				continue
			}
			// Invariant: if any entry has expired, the victim must be
			// an expired one.
			anyExpired := false
			for _, e := range live {
				if e.Expires > 0 && e.Expires <= int64(op) {
					anyExpired = true
					break
				}
			}
			if anyExpired && (v.Expires == 0 || v.Expires > int64(op)) {
				t.Fatalf("op %d: victim %s not expired although expired entries exist", op, v.URL)
			}
			p.Remove(v)
			delete(live, v.URL)
		}
		if p.Len() != len(live) {
			t.Fatalf("op %d: Len %d != %d", op, p.Len(), len(live))
		}
	}
}
