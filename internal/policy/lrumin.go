package policy

import "fmt"

// LRUMin implements the LRU-MIN policy of Abrams et al. 1995 exactly as
// §1.2 of the paper describes it:
//
//	To make room for an incoming document of size S, first consider the
//	cached documents with size >= S; if any exist, remove the least
//	recently used of them. Otherwise consider documents with size >= S/2,
//	then S/4, and so on, applying LRU within the first non-empty
//	threshold class.
//
// Unlike the ⌊log2 SIZE⌋/ATIME member of the taxonomy, LRU-MIN's
// thresholds are relative to the *incoming* document size, so it is not a
// static sort; the paper notes the two behave similarly but are not
// identical, which the benchmarks in this repository confirm.
//
// The implementation keeps one LRU list per ⌊log2 size⌋ class, so a
// victim search touches at most one list scan (the boundary class) plus
// one candidate per higher class.
type LRUMin struct {
	buckets [maxSizeClass + 1]lruList
	count   int
}

// maxSizeClass covers sizes up to 2^48-1 bytes, far beyond any document.
const maxSizeClass = 48

// lruList is a doubly linked list of entries ordered from least to most
// recently used, using the Entry's intrusive prev/next pointers.
type lruList struct {
	head, tail *Entry // head = least recently used
	n          int
}

func (l *lruList) pushBack(e *Entry) {
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

func (l *lruList) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// NewLRUMin returns an LRU-MIN policy.
func NewLRUMin() *LRUMin { return &LRUMin{} }

// Name implements Policy.
func (p *LRUMin) Name() string { return "LRU-MIN" }

func sizeClass(size int64) int {
	c := log2Floor(size)
	if c > maxSizeClass {
		c = maxSizeClass
	}
	return c
}

// Add implements Policy. The size class is the entry's cached
// Log2Size, clamped.
func (p *LRUMin) Add(e *Entry) {
	c := int(e.Log2Size)
	if c > maxSizeClass {
		c = maxSizeClass
	}
	e.bucket = c
	p.buckets[c].pushBack(e)
	p.count++
}

// Touch implements Policy: move to the most-recently-used end.
func (p *LRUMin) Touch(e *Entry) {
	if e.bucket < 0 {
		return
	}
	l := &p.buckets[e.bucket]
	l.remove(e)
	l.pushBack(e)
}

// Remove implements Policy.
func (p *LRUMin) Remove(e *Entry) {
	if e.bucket < 0 {
		return
	}
	p.buckets[e.bucket].remove(e)
	e.bucket = -1
	p.count--
}

// Victim implements Policy with the threshold-halving search described
// above. incoming is the size of the document being admitted.
func (p *LRUMin) Victim(incoming int64) *Entry {
	if p.count == 0 {
		return nil
	}
	if incoming < 1 {
		incoming = 1
	}
	for threshold := incoming; ; threshold /= 2 {
		if v := p.lruAtLeast(threshold); v != nil {
			return v
		}
		if threshold <= 1 {
			// Thresholds exhausted; fall back to global LRU so the
			// eviction loop always makes progress.
			return p.lruAtLeast(0)
		}
	}
}

// lruAtLeast returns the least recently used entry with Size >= threshold,
// or nil if none exists. Ties on ATime break on the entry's random value
// then URL, keeping the policy deterministic.
func (p *LRUMin) lruAtLeast(threshold int64) *Entry {
	boundary := 0
	if threshold > 0 {
		boundary = sizeClass(threshold)
	}
	var best *Entry
	consider := func(e *Entry) {
		if e == nil {
			return
		}
		if best == nil || olderThan(e, best) {
			best = e
		}
	}
	// Classes strictly above the boundary contain only sizes >= threshold;
	// their LRU head is the only candidate each contributes.
	for c := boundary + 1; c <= maxSizeClass; c++ {
		consider(p.buckets[c].head)
	}
	// The boundary class straddles the threshold: scan it for the least
	// recently used entry that is actually >= threshold.
	for e := p.buckets[boundary].head; e != nil; e = e.next {
		if e.Size >= threshold {
			consider(e)
		}
	}
	return best
}

// olderThan reports whether a should be evicted before b under LRU with
// deterministic tiebreaks.
func olderThan(a, b *Entry) bool {
	if a.ATime != b.ATime {
		return a.ATime < b.ATime
	}
	if a.Rand != b.Rand {
		return a.Rand < b.Rand
	}
	return a.URL < b.URL
}

// Len implements Policy.
func (p *LRUMin) Len() int { return p.count }

// checkInvariants panics if internal bookkeeping is inconsistent; used by
// property tests.
func (p *LRUMin) checkInvariants() {
	total := 0
	for c := range p.buckets {
		n := 0
		for e := p.buckets[c].head; e != nil; e = e.next {
			if e.bucket != c {
				panic(fmt.Sprintf("policy: entry %q in bucket %d has bucket field %d", e.URL, c, e.bucket))
			}
			n++
		}
		if n != p.buckets[c].n {
			panic(fmt.Sprintf("policy: bucket %d length %d != recorded %d", c, n, p.buckets[c].n))
		}
		total += n
	}
	if total != p.count {
		panic(fmt.Sprintf("policy: total entries %d != count %d", total, p.count))
	}
}
