package policy

import (
	"testing"

	"webcache/internal/trace"
)

func entry(url string, size, etime, atime, nref int64, rand uint64) *Entry {
	e := NewEntry(url, size, trace.Unknown, etime, rand)
	e.ATime = atime
	e.NRef = nref
	return e
}

func TestLog2Floor(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9},
		{1024, 10}, {8191, 12}, {8192, 13}, {1 << 20, 20},
	}
	for _, tc := range cases {
		if got := log2Floor(tc.size); got != tc.want {
			t.Errorf("log2Floor(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestKeyDirections(t *testing.T) {
	big := entry("big", 10000, 5, 50, 7, 1)
	small := entry("small", 10, 2, 20, 2, 2)

	// SIZE: bigger removed first.
	if compareKey(KeySize, big, small, 0) >= 0 {
		t.Error("SIZE should remove the larger document first")
	}
	// ETIME: earlier entry removed first.
	if compareKey(KeyETime, small, big, 0) >= 0 {
		t.Error("ETIME should remove the older entry first")
	}
	// ATIME: least recently used removed first.
	if compareKey(KeyATime, small, big, 0) >= 0 {
		t.Error("ATIME should remove the least recently used first")
	}
	// NREF: fewest references removed first.
	if compareKey(KeyNRef, small, big, 0) >= 0 {
		t.Error("NREF should remove the least referenced first")
	}
	// RANDOM: by the entry's Rand value.
	if compareKey(KeyRandom, big, small, 0) >= 0 {
		t.Error("RANDOM should order by Rand ascending")
	}
}

func TestKeyDayATime(t *testing.T) {
	dayStart := int64(0)
	a := entry("a", 10, 0, 86400*2+100, 1, 1)  // day 2
	b := entry("b", 10, 0, 86400*2+5000, 1, 2) // day 2, later in the day
	c := entry("c", 10, 0, 86400*5, 1, 3)      // day 5
	if compareKey(KeyDayATime, a, b, dayStart) != 0 {
		t.Error("same-day accesses should tie under DAY(ATIME)")
	}
	if compareKey(KeyDayATime, a, c, dayStart) >= 0 {
		t.Error("earlier day should be removed first")
	}
}

func TestKeyType(t *testing.T) {
	mk := func(dt trace.DocType) *Entry {
		e := NewEntry("x", 10, dt, 1, 1)
		return e
	}
	video, text := mk(trace.Video), mk(trace.Text)
	if compareKey(KeyType, video, text, 0) >= 0 {
		t.Error("TYPE should remove video before text")
	}
}

func TestKeyLatency(t *testing.T) {
	cheap := entry("cheap", 10, 1, 1, 1, 1)
	cheap.Latency = 0.01
	costly := entry("costly", 10, 1, 1, 1, 2)
	costly.Latency = 3.0
	if compareKey(KeyLatency, cheap, costly, 0) >= 0 {
		t.Error("LATENCY should remove the cheapest-to-refetch first")
	}
}

func TestLessTotalOrder(t *testing.T) {
	// Even fully tied entries must have a strict deterministic order via
	// Rand then URL.
	less := Less([]Key{KeySize}, 0)
	a := entry("a", 10, 1, 1, 1, 5)
	b := entry("b", 10, 1, 1, 1, 5)
	if !less(a, b) || less(b, a) {
		t.Error("URL tiebreak not applied for fully tied entries")
	}
	c := entry("c", 10, 1, 1, 1, 1)
	if !less(c, a) {
		t.Error("Rand tiebreak not applied")
	}
}

func TestKeyStrings(t *testing.T) {
	for _, k := range []Key{KeySize, KeyLog2Size, KeyETime, KeyATime, KeyDayATime, KeyNRef, KeyRandom, KeyType, KeyLatency} {
		if k.String() == "" || k.Definition() == "" || k.SortOrder() == "" {
			t.Errorf("key %d has empty description fields", k)
		}
	}
	if s := Key(99).String(); s != "Key(99)" {
		t.Errorf("unknown key String = %q", s)
	}
}

func TestParseKey(t *testing.T) {
	good := map[string]Key{
		"SIZE": KeySize, "size": KeySize, "LOG2SIZE": KeyLog2Size,
		"ETIME": KeyETime, "ATIME": KeyATime, "DAY(ATIME)": KeyDayATime,
		"NREF": KeyNRef, "NREFS": KeyNRef, "RANDOM": KeyRandom,
		"TYPE": KeyType, "LATENCY": KeyLatency,
	}
	for s, want := range good {
		got, err := ParseKey(s)
		if err != nil || got != want {
			t.Errorf("ParseKey(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKey("BOGUS"); err == nil {
		t.Error("ParseKey accepted BOGUS")
	}
}

func TestAllCombosCount(t *testing.T) {
	combos := AllCombos()
	if len(combos) != 36 {
		t.Fatalf("AllCombos returned %d combinations, want the paper's 36", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if c.Primary == c.Secondary {
			t.Errorf("combo %v has equal primary and secondary", c)
		}
		if seen[c.String()] {
			t.Errorf("duplicate combo %v", c)
		}
		seen[c.String()] = true
	}
}

func TestPrimaryAndSecondaryCombos(t *testing.T) {
	if got := len(PrimaryCombos()); got != 6 {
		t.Fatalf("PrimaryCombos = %d, want 6", got)
	}
	sc := SecondaryCombos()
	if got := len(sc); got != 6 {
		t.Fatalf("SecondaryCombos = %d, want 6 (5 keys + random)", got)
	}
	for _, c := range sc {
		if c.Primary != KeyLog2Size {
			t.Errorf("secondary combo %v does not use LOG2SIZE primary", c)
		}
	}
}

func TestParsePolicySpecs(t *testing.T) {
	for _, spec := range []string{
		"FIFO", "LRU", "LFU", "LRU-MIN", "Hyper-G", "Pitkow/Recker",
		"GD-Size(1)", "GD-Size(SIZE)", "SIZE", "SIZE/NREF", "log2size/atime",
	} {
		p, err := Parse(spec, 0)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("Parse(%q) returned unnamed policy", spec)
		}
	}
	for _, spec := range []string{"", "SIZE/", "NOPE", "SIZE/NOPE"} {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
