package policy

// sizeBuckets realizes SIZE- and LOG2SIZE-primary orders with a static
// index: 64 buckets addressed by the entry's cached ⌊log2 Size⌋
// (Entry.Log2Size — already maintained for the LOG2SIZE comparators,
// and monotone in Size, so bucket order is primary order for both
// keys). Largest-first removal means the victim lives in the highest
// non-empty bucket; within a bucket a small entryHeap over the full
// comparator settles the residual order (for SIZE primaries that
// residual still begins with the exact byte size, which varies only
// within one power of two per bucket).
//
// Size never changes in place — a size mismatch replaces the entry — so
// entries never migrate between buckets: Add and Remove touch exactly
// one bucket, and Touch either does nothing (static secondary) or
// re-sifts within the entry's bucket (ATIME/DAY/NREF secondary).
type sizeBuckets struct {
	buckets [64]entryHeap
	// maxB is a high-water hint: no bucket above it is non-empty. Peek
	// walks it downward lazily; Add raises it. -1 when empty.
	maxB       int
	n          int
	fixOnTouch bool
}

func newSizeBuckets(less func(a, b *Entry) bool, fixOnTouch bool) *sizeBuckets {
	s := &sizeBuckets{maxB: -1, fixOnTouch: fixOnTouch}
	for i := range s.buckets {
		s.buckets[i].less = less
	}
	return s
}

func (s *sizeBuckets) kind() string { return "size" }
func (s *sizeBuckets) Len() int     { return s.n }
func (s *sizeBuckets) Grow(int)     {}

func (s *sizeBuckets) Add(e *Entry) {
	i := int(e.Log2Size)
	s.buckets[i].Push(e)
	if i > s.maxB {
		s.maxB = i
	}
	s.n++
}

func (s *sizeBuckets) Touch(e *Entry) {
	if s.fixOnTouch {
		s.buckets[e.Log2Size].Fix(e)
	}
}

func (s *sizeBuckets) Remove(e *Entry) {
	if s.buckets[e.Log2Size].Remove(e) {
		s.n--
	}
}

func (s *sizeBuckets) Peek() *Entry {
	for i := s.maxB; i >= 0; i-- {
		if s.buckets[i].Len() > 0 {
			s.maxB = i
			e, _ := s.buckets[i].Peek()
			return e
		}
	}
	s.maxB = -1
	return nil
}
