package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"webcache/internal/trace"
)

// benchComparatorPairs builds a fixed pool of entries with the derived
// keys synced, plus a pre-drawn index sequence, so the benchmark loops
// measure only comparator calls.
func benchComparatorPairs(dayStart int64) ([]*Entry, []int) {
	r := rand.New(rand.NewSource(7))
	entries := randomEntries(r, 512)
	for _, e := range entries {
		e.SyncDerived(dayStart)
	}
	picks := make([]int, 4096)
	for i := range picks {
		picks[i] = r.Intn(len(entries))
	}
	return entries, picks
}

// comparatorCases are the key sequences whose comparators dominate the
// replay sweeps: the workhorse Experiment 2 pair, the day-keyed
// Pitkow/Recker pair, and the Hyper-G triple.
var comparatorCases = []struct {
	name string
	keys []Key
}{
	{"SIZE-ATIME", []Key{KeySize, KeyATime}},
	{"DAYATIME-SIZE", []Key{KeyDayATime, KeySize}},
	{"NREF-ATIME-SIZE", []Key{KeyNRef, KeyATime, KeySize}},
}

func benchmarkComparator(b *testing.B, compile func([]Key, int64) func(a, b *Entry) bool) {
	const dayStart = 500
	for _, tc := range comparatorCases {
		b.Run(tc.name, func(b *testing.B) {
			less := compile(tc.keys, dayStart)
			entries, picks := benchComparatorPairs(dayStart)
			b.ReportAllocs()
			b.ResetTimer()
			sink := false
			for i := 0; i < b.N; i++ {
				a := entries[picks[i%len(picks)]]
				c := entries[picks[(i+1)%len(picks)]]
				sink = less(a, c) != sink
			}
			_ = sink
		})
	}
}

// BenchmarkCompileLess measures the specialized comparators.
func BenchmarkCompileLess(b *testing.B) {
	benchmarkComparator(b, CompileLess)
}

// BenchmarkGenericLess measures the generic key-loop comparator the
// compiled ones replace (and are property-tested against).
func BenchmarkGenericLess(b *testing.B) {
	benchmarkComparator(b, Less)
}

// benchClassifyURLs is a pool of URLs across the classifier's suffix
// classes, including the cgi-bin/query forms ExcludeDynamic probes.
func benchClassifyURLs() []string {
	urls := make([]string, 512)
	for i := range urls {
		switch i % 4 {
		case 0:
			urls[i] = fmt.Sprintf("http://s%d.example/img/pic%d.gif", i%7, i)
		case 1:
			urls[i] = fmt.Sprintf("http://s%d.example/doc%d.html", i%7, i)
		case 2:
			urls[i] = fmt.Sprintf("http://s%d.example/cgi-bin/search?q=%d", i%7, i)
		default:
			urls[i] = fmt.Sprintf("http://s%d.example/media/clip%d.mpg", i%7, i)
		}
	}
	return urls
}

// BenchmarkClassifyPerRequest measures re-classifying the URL on every
// request, the pre-interning cost the per-ID tables remove: the string
// engine's ExcludeDynamic check paid this suffix scan on each insert.
func BenchmarkClassifyPerRequest(b *testing.B) {
	urls := benchClassifyURLs()
	b.ReportAllocs()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = trace.IsDynamic(urls[i%len(urls)]) != sink
	}
	_ = sink
}

// BenchmarkClassifyPerID measures the interned engine's replacement: a
// one-time classification per distinct URL amortized into a table, with
// each request paying only an indexed load.
func BenchmarkClassifyPerID(b *testing.B) {
	urls := benchClassifyURLs()
	dynamic := make([]bool, len(urls))
	for id, u := range urls {
		dynamic[id] = trace.IsDynamic(u)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = dynamic[i%len(dynamic)] != sink
	}
	_ = sink
}
