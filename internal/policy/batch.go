package policy

// Batched policy maintenance: the live store's lock-free hit path does
// not call Touch inline — it records each hit in a lossy buffer and
// replays the buffer into the policy in batches under the write lock
// (internal/proxy's touch buffer). This file is the policy-side entry
// point for that replay.
//
// The contract is strict sequential equivalence: replaying a batch must
// leave the policy in exactly the state that calling the inline hit
// sequence (stamp ATime, increment NRef, Touch) per record would have —
// including the heap's internal array order, because array order breaks
// key ties and therefore decides future victims. That is why the batch
// path interleaves field updates with re-sorts record by record instead
// of stamping every entry first: a comparator run for record k reads
// the *other* entries' keys, so stamping record k+1 early would change
// comparison outcomes mid-sift. TestTouchBatchMatchesInline pins the
// equivalence across the taxonomy.

// TouchRecord is one buffered hit: the entry that was accessed and the
// access timestamp recorded at hit time (not at drain time, so recency
// order among buffered hits is preserved).
type TouchRecord struct {
	Entry *Entry
	ATime int64
}

// TouchBatcher is an optional Policy extension: policies that can apply
// a recorded hit sequence in one call implement it, and ReplayTouches
// dispatches to it — one type assertion per drained batch instead of
// per touch. Implementations must be sequentially equivalent to the
// inline loop (see the package comment above).
type TouchBatcher interface {
	TouchBatch(batch []TouchRecord)
}

// ReplayTouches applies a recorded hit sequence to p in order. Each
// record stamps its entry's ATime, increments NRef, and re-sorts the
// entry — exactly the inline hit path, batched. Callers must hold
// whatever lock guards p and the entries.
func ReplayTouches(p Policy, batch []TouchRecord) {
	if len(batch) == 0 {
		return
	}
	if b, ok := p.(TouchBatcher); ok {
		b.TouchBatch(batch)
		return
	}
	for i := range batch {
		e := batch[i].Entry
		e.ATime = batch[i].ATime
		e.NRef++
		p.Touch(e)
	}
}

// TouchBatch implements TouchBatcher for the taxonomy's generic sorted
// policy. The body is the canonical inline loop: Sorted.Touch is a
// single heap Fix, so there is no cheaper batch shape that preserves
// array-order equivalence (re-heapifying would reorder tied entries).
func (p *Sorted) TouchBatch(batch []TouchRecord) {
	for i := range batch {
		e := batch[i].Entry
		e.ATime = batch[i].ATime
		e.NRef++
		p.Touch(e)
	}
}
