package policy

// freqBuckets realizes NREF-primary orders (LFU, Hyper-G, NREF/*) with
// the classic O(1)-LFU bucket layout: one bucket per distinct reference
// count, linked in ascending NREF order, with the next victim always in
// the lowest bucket. A touch increments NREF by exactly one, so an
// entry's promotion target is almost always the neighbouring bucket —
// no search, one map hit avoided.
//
// The one deviation from the textbook design: each bucket is a small
// entryHeap over the *full* comparator rather than an insertion-ordered
// intrusive list. The taxonomy's residual order inside a bucket —
// secondary key, then the Rand/URL tiebreak — is randomized, not FIFO,
// so an insertion-ordered list could not reproduce the heap oracle's
// victim sequence. Because buckets partition on the primary and the
// bucket list is NREF-sorted, the minimum of the lowest bucket under
// the full comparator is exactly the global minimum; per-bucket heaps
// are small (the residual population of one reference count), so sifts
// are shallow.
type freqBuckets struct {
	less   func(a, b *Entry) bool
	byNRef map[int64]*freqBucket
	min    *freqBucket // lowest-NREF bucket; head of the bucket list
	n      int
	hint   int // Grow hint, applied to the NREF==1 bucket on creation

	// spare recycles the most recently emptied bucket (and its heap's
	// backing array) so steady promote/evict traffic at the high end of
	// the bucket list does not churn allocations.
	spare *freqBucket
}

type freqBucket struct {
	nref       int64
	heap       entryHeap
	prev, next *freqBucket
}

func newFreqBuckets(less func(a, b *Entry) bool) *freqBuckets {
	return &freqBuckets{less: less, byNRef: make(map[int64]*freqBucket)}
}

func (f *freqBuckets) kind() string { return "freq" }
func (f *freqBuckets) Len() int     { return f.n }

func (f *freqBuckets) Grow(n int) {
	f.hint = n
	if f.min != nil && f.min.nref == 1 {
		f.min.heap.Grow(n)
	}
}

func (f *freqBuckets) Peek() *Entry {
	if f.min == nil {
		return nil
	}
	// Empty buckets are unlinked eagerly, so min is never empty.
	e, _ := f.min.heap.Peek()
	return e
}

func (f *freqBuckets) Add(e *Entry) {
	b := f.bucketFor(e.NRef)
	b.heap.Push(e)
	e.bucket = int(e.NRef)
	f.n++
}

func (f *freqBuckets) Touch(e *Entry) {
	old := f.byNRef[int64(e.bucket)]
	if old == nil {
		return
	}
	if int64(e.bucket) == e.NRef {
		// NRef unchanged (already re-stamped) — only the residual
		// order can have moved.
		old.heap.Fix(e)
		return
	}
	if !old.heap.Remove(e) {
		return // not ours
	}
	// Promotion target: the +1 neighbour in the common case.
	nb := old.next
	if nb == nil || nb.nref != e.NRef {
		nb = f.bucketFor(e.NRef)
	}
	if old.heap.Len() == 0 {
		f.dropBucket(old)
	}
	nb.heap.Push(e)
	e.bucket = int(e.NRef)
}

func (f *freqBuckets) Remove(e *Entry) {
	b := f.byNRef[int64(e.bucket)]
	if b == nil || !b.heap.Remove(e) {
		return
	}
	f.n--
	if b.heap.Len() == 0 {
		f.dropBucket(b)
	}
}

// bucketFor returns the bucket for exactly nref references, creating
// and linking it in ascending position when absent. The walk starts at
// the lowest bucket: creation traffic is dominated by nref == 1 (every
// miss), which is the head.
func (f *freqBuckets) bucketFor(nref int64) *freqBucket {
	if b := f.byNRef[nref]; b != nil {
		return b
	}
	var prev *freqBucket
	for cur := f.min; cur != nil && cur.nref < nref; cur = cur.next {
		prev = cur
	}
	return f.insertBucket(nref, prev)
}

// insertBucket links a new (or recycled) bucket for nref directly after
// prev (nil = new lowest).
func (f *freqBuckets) insertBucket(nref int64, prev *freqBucket) *freqBucket {
	b := f.spare
	if b != nil {
		f.spare = nil
		b.nref = nref
	} else {
		b = &freqBucket{nref: nref, heap: entryHeap{less: f.less}}
	}
	if prev == nil {
		b.prev = nil
		b.next = f.min
		if f.min != nil {
			f.min.prev = b
		}
		f.min = b
	} else {
		b.prev = prev
		b.next = prev.next
		if prev.next != nil {
			prev.next.prev = b
		}
		prev.next = b
	}
	f.byNRef[nref] = b
	if nref == 1 && f.hint > 0 {
		b.heap.Grow(f.hint)
	}
	return b
}

// dropBucket unlinks an emptied bucket so Peek's lowest-bucket
// invariant holds, keeping one around for recycling.
func (f *freqBuckets) dropBucket(b *freqBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		f.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	delete(f.byNRef, b.nref)
	b.prev = nil
	b.next = nil
	if f.spare == nil {
		f.spare = b
	}
}
