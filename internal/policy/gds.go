package policy

// GreedyDualSize implements GreedyDual-Size (Cao & Irani 1997). It
// POST-DATES the paper and is included only as a flagged baseline showing
// where size-aware removal went next: GD-Size(1) generalizes the paper's
// SIZE key by aging it with an inflation value L, so recency information
// is blended in rather than ignored.
//
// Each cached document has priority H = L + cost/size; on a hit H is
// recomputed with the current L; the victim is the minimum-H document,
// and L rises to the evicted H. With cost = 1 ("GD-Size(1)") the policy
// optimizes hit rate; with cost = size ("GD-Size(size)", H = L + 1) it
// degenerates toward LRU and favors byte hit rate.
type GreedyDualSize struct {
	heap *entryHeap
	l    float64
	cost func(e *Entry) float64
	name string
}

// NewGDS1 returns GD-Size with uniform miss cost 1 (maximizes hit rate).
func NewGDS1() *GreedyDualSize {
	return newGDS("GD-Size(1)", func(*Entry) float64 { return 1 })
}

// NewGDSBytes returns GD-Size with miss cost equal to document size
// (every document's priority is L+1; the policy becomes LRU-like and
// favors weighted hit rate).
func NewGDSBytes() *GreedyDualSize {
	return newGDS("GD-Size(size)", func(e *Entry) float64 { return float64(e.Size) })
}

func newGDS(name string, cost func(e *Entry) float64) *GreedyDualSize {
	g := &GreedyDualSize{cost: cost, name: name}
	g.heap = newEntryHeap(lessPrio)
	return g
}

// lessPrio orders by the cached GD-Size priority with the universal
// tiebreak; a named function rather than a per-policy closure so every
// GD-Size instance shares one comparator, like the compiled taxonomy
// comparators.
func lessPrio(a, b *Entry) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return lessTie(a, b)
}

// Name implements Policy.
func (g *GreedyDualSize) Name() string { return g.name }

func (g *GreedyDualSize) priority(e *Entry) float64 {
	size := float64(e.Size)
	if size < 1 {
		size = 1
	}
	return g.l + g.cost(e)/size
}

// Add implements Policy.
func (g *GreedyDualSize) Add(e *Entry) {
	e.prio = g.priority(e)
	g.heap.Push(e)
}

// Touch implements Policy: refresh the priority with the current L.
func (g *GreedyDualSize) Touch(e *Entry) {
	e.prio = g.priority(e)
	g.heap.Fix(e)
}

// Remove implements Policy. When the removed entry is the current
// minimum (an eviction), L inflates to its priority, aging the rest of
// the cache relative to future insertions.
func (g *GreedyDualSize) Remove(e *Entry) {
	if head, ok := g.heap.Peek(); ok && head == e && e.prio > g.l {
		g.l = e.prio
	}
	g.heap.Remove(e)
}

// Victim implements Policy.
func (g *GreedyDualSize) Victim(int64) *Entry {
	head, ok := g.heap.Peek()
	if !ok {
		return nil
	}
	return head
}

// Len implements Policy.
func (g *GreedyDualSize) Len() int { return g.heap.Len() }

// Reserve implements Reserver.
func (g *GreedyDualSize) Reserve(n int) { g.heap.Grow(n) }

// NewGDSLatency returns GD-Size with miss cost equal to the document's
// estimated refetch latency (H = L + latency/size): the principled way
// to optimize the paper's third criterion, blending the §5 refetch-
// latency idea with popularity aging instead of sorting on latency
// alone.
func NewGDSLatency() *GreedyDualSize {
	return newGDS("GD-Latency", func(e *Entry) float64 { return e.Latency })
}
