package policy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"webcache/internal/trace"
)

// randomEntries returns n entries whose field values are drawn from
// deliberately small domains, so every individual key collides often and
// the comparators are forced through their secondary keys, the RANDOM
// tiebreak, and finally the URL tiebreak. Two entries carry a NaN
// latency to pin the KeyLatency NaN handling.
func randomEntries(r *rand.Rand, n int) []*Entry {
	types := []trace.DocType{trace.Graphics, trace.Text, trace.Audio, trace.Video, trace.CGI, trace.Unknown}
	sizes := []int64{1, 2, 100, 1024, 1500, 2048, 65536}
	entries := make([]*Entry, n)
	for i := range entries {
		e := NewEntry(fmt.Sprintf("http://s/rand%04d", i), sizes[r.Intn(len(sizes))],
			types[r.Intn(len(types))], int64(r.Intn(4))*43200, uint64(r.Intn(6)))
		e.ATime = int64(r.Intn(6)) * 43200
		e.NRef = int64(1 + r.Intn(3))
		e.Latency = float64(r.Intn(4)) * 0.5
		if i%29 == 0 {
			e.Latency = math.NaN()
		}
		entries[i] = e
	}
	return entries
}

// compiledKeySets enumerates every key sequence the simulator can hand
// to CompileLess: the single keys (including the §5 extensions), every
// ordered Table 1 pair with and without an explicit RANDOM secondary,
// the experiment-design combos, the Pitkow/Recker pair, the Hyper-G
// triple, and a set only the generic fallback covers.
func compiledKeySets() [][]Key {
	sets := [][]Key{
		{KeySize}, {KeyLog2Size}, {KeyETime}, {KeyATime}, {KeyDayATime},
		{KeyNRef}, {KeyRandom}, {KeyType}, {KeyLatency},
		{KeyDayATime, KeySize},       // Pitkow/Recker
		{KeyNRef, KeyATime, KeySize}, // Hyper-G
		{KeyType, KeyLatency},        // extension pair (generic fallback)
		{KeySize, KeyATime, KeyNRef}, // unspecialized triple (generic fallback)
	}
	for _, p := range TableOneKeys {
		sets = append(sets, []Key{p, KeyRandom})
		for _, s := range TableOneKeys {
			if s != p {
				sets = append(sets, []Key{p, s})
			}
		}
	}
	for _, c := range AllCombos() {
		sets = append(sets, comboKeys(c))
	}
	return sets
}

// TestCompiledMatchesGeneric checks, pairwise over randomized
// collision-heavy populations and several day anchors, that the
// comparator CompileLess returns agrees exactly with the generic Less —
// the compiled layer's correctness oracle.
func TestCompiledMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	entries := randomEntries(r, 80)
	for _, dayStart := range []int64{0, 500, 86400} {
		for _, e := range entries {
			e.SyncDerived(dayStart)
		}
		for _, keys := range compiledKeySets() {
			name := ""
			for _, k := range keys {
				name += "/" + k.String()
			}
			compiled := CompileLess(keys, dayStart)
			generic := Less(keys, dayStart)
			for _, a := range entries {
				for _, b := range entries {
					if got, want := compiled(a, b), generic(a, b); got != want {
						t.Fatalf("%s@%d: compiled(%s, %s) = %v, generic = %v",
							name, dayStart, a.URL, b.URL, got, want)
					}
				}
			}
		}
	}
}

// TestCompiledCoversExperimentDesign asserts that every comparator of
// the paper's experiment design gets a dedicated specialization rather
// than the generic fallback: the Table 1 singles, all 36 combos, the
// Pitkow/Recker pair, and the Hyper-G triple.
func TestCompiledCoversExperimentDesign(t *testing.T) {
	check := func(keys []Key) {
		t.Helper()
		if compiledFor(keys) == nil {
			t.Errorf("no compiled specialization for %v", keys)
		}
	}
	for _, k := range TableOneKeys {
		check([]Key{k})
	}
	for _, c := range AllCombos() {
		check(comboKeys(c))
	}
	check([]Key{KeyDayATime, KeySize})
	check([]Key{KeyNRef, KeyATime, KeySize})
}

// TestDisableCompiledFallsBack checks the ablation switch: with
// compiled comparators off, CompileLess must still produce the same
// order (via the generic path).
func TestDisableCompiledFallsBack(t *testing.T) {
	DisableCompiled = true
	defer func() { DisableCompiled = false }()
	r := rand.New(rand.NewSource(11))
	entries := randomEntries(r, 40)
	for _, e := range entries {
		e.SyncDerived(0)
	}
	less := CompileLess([]Key{KeySize, KeyATime}, 0)
	generic := Less([]Key{KeySize, KeyATime}, 0)
	for _, a := range entries {
		for _, b := range entries {
			if less(a, b) != generic(a, b) {
				t.Fatalf("disabled CompileLess disagrees with Less on %s, %s", a.URL, b.URL)
			}
		}
	}
}

// TestEntryPoolRecycles checks that Get reuses a Put entry and resets it
// to the NewEntry state.
func TestEntryPoolRecycles(t *testing.T) {
	var p EntryPool
	e := NewEntry("http://s/old", 100, trace.Text, 10, 1)
	e.NRef = 9
	e.Latency = 2.5
	e.Expires = 99
	p.Put(e)
	if p.Len() != 1 {
		t.Fatalf("pool len = %d, want 1", p.Len())
	}
	got := p.Get("http://s/new", 2048, trace.Graphics, 20, 7)
	if got != e {
		t.Fatal("Get did not reuse the pooled entry")
	}
	want := NewEntry("http://s/new", 2048, trace.Graphics, 20, 7)
	if *got != *want {
		t.Fatalf("recycled entry %+v differs from fresh entry %+v", got, want)
	}
	if p.Len() != 0 {
		t.Fatalf("pool len after Get = %d, want 0", p.Len())
	}
	if fresh := p.Get("http://s/fresh", 1, trace.Text, 1, 1); fresh == nil || fresh == e {
		t.Fatal("empty pool did not allocate a fresh entry")
	}
}
