package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"webcache/internal/trace"
)

// withStructural builds a policy with the structural fast path forced
// on or off, restoring the ablation switch afterwards.
func withStructural(enabled bool, build func() *Sorted) *Sorted {
	old := DisableStructural
	DisableStructural = !enabled
	p := build()
	DisableStructural = old
	return p
}

// TestStructuralBackendSelection pins which backend every taxonomy
// combo (and classic) is routed to: the proven set must actually leave
// the heap, and everything else must stay on it.
func TestStructuralBackendSelection(t *testing.T) {
	wantFor := func(c Combo) string {
		switch c.Primary {
		case KeySize, KeyLog2Size:
			return "size"
		case KeyETime, KeyATime:
			return "list"
		case KeyDayATime:
			if c.Secondary == KeyATime {
				return "list"
			}
			return "heap"
		case KeyNRef:
			return "freq"
		}
		return "heap"
	}
	for _, c := range AllCombos() {
		p := c.New(0)
		if got, want := p.Backend(), wantFor(c); got != want {
			t.Errorf("%s: backend %q, want %q", c, got, want)
		}
		off := withStructural(false, func() *Sorted { return c.New(0) })
		if got := off.Backend(); got != "heap" {
			t.Errorf("%s: DisableStructural backend %q, want heap", c, got)
		}
	}
	classics := []struct {
		p    *Sorted
		want string
	}{
		{NewFIFO(), "list"},
		{NewLRU(), "list"},
		{NewLFU(), "freq"},
		{NewHyperG(), "freq"},
	}
	for _, c := range classics {
		if got := c.p.Backend(); got != c.want {
			t.Errorf("%s: backend %q, want %q", c.p.Name(), got, c.want)
		}
	}
	// Extension keys and mid-sequence RANDOM have no structural proof.
	for _, keys := range [][]Key{
		{KeyType, KeyATime},
		{KeyLatency},
		{KeyRandom, KeySize},
		{KeyATime, KeyRandom, KeySize},
	} {
		if got := NewSorted(keys, 0).Backend(); got != "heap" {
			t.Errorf("keys %v: backend %q, want heap", keys, got)
		}
	}
	// A trailing RANDOM is redundant with the universal tiebreak and
	// must not cost the fast path.
	if got := NewSorted([]Key{KeyATime, KeyRandom}, 0).Backend(); got != "list" {
		t.Errorf("ATIME/RANDOM: backend %q, want list", got)
	}
}

// structuralHarness drives one policy pair — structural backend vs heap
// oracle — through an identical randomized Add/Touch/Remove/Victim
// script and requires victim agreement at every probe and in the final
// full drain. Entries are paired, not shared: the backends use the
// intrusive Entry fields, so each side owns its own copies with
// identical sort keys.
type structuralHarness struct {
	t          *testing.T
	name       string
	fast, orcl *Sorted
	fastE      []*Entry
	orclE      []*Entry
	now        int64
	nextURL    int
}

func newStructuralHarness(t *testing.T, name string, build func() *Sorted) *structuralHarness {
	return &structuralHarness{
		t:    t,
		name: name,
		fast: withStructural(true, build),
		orcl: withStructural(false, build),
		now:  100,
	}
}

// sizes mixes tiny, shared, and huge values so entries collide in
// log2-size buckets and tie on the SIZE key itself.
var harnessSizes = []int64{0, 1, 3, 512, 513, 4096, 4096, 100_000, 1 << 21}

func (h *structuralHarness) step(rng *rand.Rand) {
	switch op := rng.Intn(10); {
	case op < 4 || len(h.fastE) == 0: // add
		url := fmt.Sprintf("http://h/%d", h.nextURL)
		h.nextURL++
		size := harnessSizes[rng.Intn(len(harnessSizes))]
		// A coarse Rand domain forces tiebreak collisions down to the
		// URL comparison.
		rv := rng.Uint64() >> 60
		fe := NewEntry(url, size, trace.Graphics, h.now, rv)
		oe := NewEntry(url, size, trace.Graphics, h.now, rv)
		h.fast.Add(fe)
		h.orcl.Add(oe)
		h.fastE = append(h.fastE, fe)
		h.orclE = append(h.orclE, oe)
	case op < 8: // touch
		i := rng.Intn(len(h.fastE))
		h.now = h.advance(rng)
		fe, oe := h.fastE[i], h.orclE[i]
		fe.ATime, oe.ATime = h.now, h.now
		fe.NRef++
		oe.NRef++
		h.fast.Touch(fe)
		h.orcl.Touch(oe)
	case op < 9: // remove a random entry
		i := rng.Intn(len(h.fastE))
		h.fast.Remove(h.fastE[i])
		h.orcl.Remove(h.orclE[i])
		h.fastE[i] = h.fastE[len(h.fastE)-1]
		h.orclE[i] = h.orclE[len(h.orclE)-1]
		h.fastE = h.fastE[:len(h.fastE)-1]
		h.orclE = h.orclE[:len(h.orclE)-1]
	default: // probe the victim
		h.compareVictims("probe")
	}
}

func (h *structuralHarness) advance(rng *rand.Rand) int64 {
	switch rng.Intn(12) {
	case 0:
		return h.now + 30000 // cross a DAY(ATIME) boundary now and then
	case 1:
		return h.now - 3 // clock regression: order must survive, just slower
	case 2, 3, 4, 5:
		return h.now // same-second run
	default:
		return h.now + int64(rng.Intn(3))
	}
}

func (h *structuralHarness) compareVictims(stage string) {
	fv, ov := h.fast.Victim(0), h.orcl.Victim(0)
	switch {
	case (fv == nil) != (ov == nil):
		h.t.Fatalf("%s [%s]: victim nil mismatch: fast=%v oracle=%v", h.name, stage, fv, ov)
	case fv != nil && (fv.URL != ov.URL || fv.NRef != ov.NRef || fv.ATime != ov.ATime):
		h.t.Fatalf("%s [%s]: victim mismatch: fast=%s(nref=%d atime=%d) oracle=%s(nref=%d atime=%d)",
			h.name, stage, fv.URL, fv.NRef, fv.ATime, ov.URL, ov.NRef, ov.ATime)
	}
	if h.fast.Len() != h.orcl.Len() {
		h.t.Fatalf("%s [%s]: len mismatch: fast=%d oracle=%d", h.name, stage, h.fast.Len(), h.orcl.Len())
	}
}

// drain pops both sides to empty, requiring the full victim sequence to
// agree — this is the total-order equality check.
func (h *structuralHarness) drain() {
	for h.orcl.Len() > 0 {
		h.compareVictims("drain")
		fv, ov := h.fast.Victim(0), h.orcl.Victim(0)
		h.fast.Remove(fv)
		h.orcl.Remove(ov)
	}
	h.compareVictims("drained")
}

func runStructuralScript(t *testing.T, name string, build func() *Sorted, seed int64, steps int) {
	h := newStructuralHarness(t, name, build)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		h.step(rng)
	}
	h.drain()
}

// TestStructuralMatchesHeapDrainOrder is the tentpole's hard
// requirement: for all 36 taxonomy combos plus FIFO/LRU/LFU/Hyper-G,
// the structural backend's victim order must equal the heap oracle's
// under randomized Add/Touch/Remove interleavings, victim for victim,
// through a full drain.
func TestStructuralMatchesHeapDrainOrder(t *testing.T) {
	steps := 1500
	if testing.Short() {
		steps = 400
	}
	for _, c := range AllCombos() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runStructuralScript(t, c.String(), func() *Sorted { return c.New(0) }, seed, steps)
			}
		})
	}
	classics := []struct {
		name  string
		build func() *Sorted
	}{
		{"FIFO", func() *Sorted { return NewFIFO() }},
		{"LRU", func() *Sorted { return NewLRU() }},
		{"LFU", func() *Sorted { return NewLFU() }},
		{"Hyper-G", func() *Sorted { return NewHyperG() }},
	}
	for _, c := range classics {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runStructuralScript(t, c.name, c.build, seed, steps)
			}
		})
	}
}

// FuzzStructuralVsHeap lets the fuzzer hunt for op sequences that split
// the structural backends from the heap oracle across every registered
// combo.
func FuzzStructuralVsHeap(f *testing.F) {
	f.Add(int64(1), uint16(64))
	f.Add(int64(42), uint16(200))
	f.Add(int64(-7), uint16(17))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		steps := int(n%512) + 8
		for _, c := range AllCombos() {
			runStructuralScript(t, c.String(), func() *Sorted { return c.New(0) }, seed, steps)
		}
		runStructuralScript(t, "Hyper-G", func() *Sorted { return NewHyperG() }, seed, steps)
	})
}
