package policy

import (
	"fmt"
	"math/bits"

	"webcache/internal/trace"
)

// Key is one sorting key from Table 1 of the paper, plus RANDOM and the
// two future-work keys from §5 (document type and refetch latency).
type Key uint8

// Sorting keys. The removal order of each key is built in (Table 1):
// SIZE and Log2Size remove the largest first; ETIME, ATIME, DAY(ATIME)
// and NREF remove the smallest first.
const (
	KeySize     Key = iota // largest file removed first
	KeyLog2Size            // one of the largest files removed first
	KeyETime               // oldest cache entry removed first (FIFO)
	KeyATime               // least recently used removed first (LRU)
	KeyDayATime            // last accessed the most days ago removed first
	KeyNRef                // least referenced removed first (LFU)
	KeyRandom              // uniformly random
	// Extension keys (paper §5, open problem 1).
	KeyType    // least latency-critical document type removed first
	KeyLatency // cheapest document to refetch removed first
)

// TableOneKeys are the six keys of Table 1, in the paper's order.
var TableOneKeys = []Key{KeySize, KeyLog2Size, KeyETime, KeyATime, KeyDayATime, KeyNRef}

// String returns the paper's notation for the key.
func (k Key) String() string {
	switch k {
	case KeySize:
		return "SIZE"
	case KeyLog2Size:
		return "LOG2SIZE"
	case KeyETime:
		return "ETIME"
	case KeyATime:
		return "ATIME"
	case KeyDayATime:
		return "DAY(ATIME)"
	case KeyNRef:
		return "NREF"
	case KeyRandom:
		return "RANDOM"
	case KeyType:
		return "TYPE"
	case KeyLatency:
		return "LATENCY"
	default:
		return fmt.Sprintf("Key(%d)", uint8(k))
	}
}

// Definition returns the Table 1 definition of the key.
func (k Key) Definition() string {
	switch k {
	case KeySize:
		return "size of a cached document (in bytes)"
	case KeyLog2Size:
		return "floor of the log (base 2) of SIZE"
	case KeyETime:
		return "time document entered the cache"
	case KeyATime:
		return "time of last document access (recency)"
	case KeyDayATime:
		return "day of last document access"
	case KeyNRef:
		return "number of document references"
	case KeyRandom:
		return "uniformly random tiebreak"
	case KeyType:
		return "latency priority of the document's media type"
	case KeyLatency:
		return "estimated refetch latency of the document"
	default:
		return "unknown"
	}
}

// SortOrder returns the Table 1 removal-order description.
func (k Key) SortOrder() string {
	switch k {
	case KeySize:
		return "largest file removed first"
	case KeyLog2Size:
		return "one of the largest files removed first"
	case KeyETime:
		return "oldest access removed first (FIFO)"
	case KeyATime:
		return "least recently used files removed first (LRU)"
	case KeyDayATime:
		return "files last accessed the most days ago removed first"
	case KeyNRef:
		return "least referenced files removed first (LFU)"
	case KeyRandom:
		return "random file removed first"
	case KeyType:
		return "lowest-priority media type removed first"
	case KeyLatency:
		return "cheapest-to-refetch file removed first"
	default:
		return "unknown"
	}
}

// log2Floor returns ⌊log2(size)⌋, with sizes below one byte mapped to 0.
func log2Floor(size int64) int {
	if size < 1 {
		return 0
	}
	return bits.Len64(uint64(size)) - 1
}

// typeRemovalRank returns the removal rank of a document type under
// KeyType: large media (video, audio) are sacrificed before graphics,
// and text is retained longest so text latency stays low (§5, open
// problem 1).
func typeRemovalRank(t trace.DocType) uint8 {
	switch t {
	case trace.Video:
		return 0
	case trace.Audio:
		return 1
	case trace.Unknown:
		return 2
	case trace.CGI:
		return 3
	case trace.Graphics:
		return 4
	default: // trace.Text
		return 5
	}
}

// compareKey orders a before b (negative result) when a should be
// removed sooner under key k. dayStart anchors DAY(ATIME) day boundaries.
func compareKey(k Key, a, b *Entry, dayStart int64) int {
	switch k {
	case KeySize:
		return cmpInt64(b.Size, a.Size) // larger removed first
	case KeyLog2Size:
		return cmpInt(log2Floor(b.Size), log2Floor(a.Size))
	case KeyETime:
		return cmpInt64(a.ETime, b.ETime)
	case KeyATime:
		return cmpInt64(a.ATime, b.ATime)
	case KeyDayATime:
		return cmpInt64(dayOf(a.ATime, dayStart), dayOf(b.ATime, dayStart))
	case KeyNRef:
		return cmpInt64(a.NRef, b.NRef)
	case KeyRandom:
		return cmpUint64(a.Rand, b.Rand)
	case KeyType:
		return cmpInt(int(typeRemovalRank(a.Type)), int(typeRemovalRank(b.Type)))
	case KeyLatency:
		switch {
		case a.Latency < b.Latency:
			return -1
		case a.Latency > b.Latency:
			return 1
		}
		return 0
	default:
		return 0
	}
}

func dayOf(t, dayStart int64) int64 {
	d := t - dayStart
	if d < 0 {
		return -1
	}
	return d / 86400
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpUint64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Less builds a removal-order comparator over the given key sequence:
// a loop over the keys with a switch dispatch per key, recomputing
// every derived quantity (⌊log2 SIZE⌋, DAY(ATIME)) from the entry's
// primary fields on each comparison. The RANDOM key followed by URL is
// always appended as the final tiebreak, making the order total and
// deterministic.
//
// Less is the reference semantics of the taxonomy and the oracle the
// compiled-comparator property tests check against; hot paths use
// CompileLess, which returns an unrolled specialization over the
// cached derived keys for the common combinations.
func Less(keys []Key, dayStart int64) func(a, b *Entry) bool {
	ks := make([]Key, len(keys))
	copy(ks, keys)
	return func(a, b *Entry) bool {
		for _, k := range ks {
			if c := compareKey(k, a, b, dayStart); c != 0 {
				return c < 0
			}
		}
		if a.Rand != b.Rand {
			return a.Rand < b.Rand
		}
		return a.URL < b.URL
	}
}
