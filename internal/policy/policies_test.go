package policy

import (
	"testing"

	"webcache/internal/rng"
	"webcache/internal/trace"
)

func TestSortedVictimIgnoresIncoming(t *testing.T) {
	p := NewSorted([]Key{KeySize}, 0)
	p.Add(entry("big", 100, 1, 1, 1, 1))
	p.Add(entry("small", 10, 2, 2, 1, 2))
	for _, incoming := range []int64{1, 50, 1000} {
		if v := p.Victim(incoming); v == nil || v.URL != "big" {
			t.Fatalf("Victim(%d) = %v, want big", incoming, v)
		}
	}
}

func TestSortedTouchReorders(t *testing.T) {
	p := NewSorted([]Key{KeyATime}, 0)
	a := entry("a", 10, 1, 1, 1, 1)
	b := entry("b", 10, 2, 2, 1, 2)
	p.Add(a)
	p.Add(b)
	if v := p.Victim(0); v != a {
		t.Fatalf("initial LRU victim = %v", v.URL)
	}
	a.ATime = 10
	p.Touch(a)
	if v := p.Victim(0); v != b {
		t.Fatalf("after touch, LRU victim = %s, want b", v.URL)
	}
}

func TestClassicNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewFIFO(), "FIFO"},
		{NewLRU(), "LRU"},
		{NewLFU(), "LFU"},
		{NewHyperG(), "Hyper-G"},
		{NewLRUMin(), "LRU-MIN"},
		{NewPitkowRecker(0), "Pitkow/Recker"},
		{NewGDS1(), "GD-Size(1)"},
		{NewGDSBytes(), "GD-Size(size)"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

// TestFIFOEquivalence: FIFO must order exactly as a Sorted ETIME policy
// (Table 3's first row).
func TestFIFOEquivalence(t *testing.T) {
	fifo := NewFIFO()
	etime := NewSorted([]Key{KeyETime}, 0)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		ef := entry(string(rune('a'+i%26))+string(rune('0'+i/26)), int64(r.Intn(1000)+1), int64(i), int64(i), 1, uint64(i))
		es := entry(ef.URL, ef.Size, ef.ETime, ef.ATime, ef.NRef, ef.Rand)
		fifo.Add(ef)
		etime.Add(es)
	}
	for fifo.Len() > 0 {
		vf, vs := fifo.Victim(0), etime.Victim(0)
		if vf.URL != vs.URL {
			t.Fatalf("FIFO victim %s != ETIME victim %s", vf.URL, vs.URL)
		}
		fifo.Remove(vf)
		etime.Remove(vs)
	}
}

// lruMinReference is a naive O(n) implementation of the paper's LRU-MIN
// description used to cross-check the bucketed implementation.
type lruMinReference struct {
	entries []*Entry
}

func (r *lruMinReference) victim(incoming int64) *Entry {
	if len(r.entries) == 0 {
		return nil
	}
	if incoming < 1 {
		incoming = 1
	}
	for threshold := incoming; ; threshold /= 2 {
		var best *Entry
		for _, e := range r.entries {
			if e.Size >= threshold {
				if best == nil || olderThan(e, best) {
					best = e
				}
			}
		}
		if best != nil {
			return best
		}
		if threshold <= 1 {
			for _, e := range r.entries {
				if best == nil || olderThan(e, best) {
					best = e
				}
			}
			return best
		}
	}
}

func (r *lruMinReference) remove(target *Entry) {
	for i, e := range r.entries {
		if e == target {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return
		}
	}
}

func TestLRUMinMatchesReference(t *testing.T) {
	p := NewLRUMin()
	ref := &lruMinReference{}
	r := rng.New(77)
	live := map[string]*Entry{}
	urlSeq := 0

	for op := 0; op < 5000; op++ {
		switch r.Intn(5) {
		case 0, 1: // add
			urlSeq++
			e := NewEntry(
				// distinct URLs
				"u"+itoa(urlSeq),
				int64(1+r.Intn(100000)),
				trace.Unknown,
				int64(op),
				uint64(urlSeq)*0x9e3779b97f4a7c15,
			)
			p.Add(e)
			ref.entries = append(ref.entries, e)
			live[e.URL] = e
		case 2: // touch
			for _, e := range live {
				e.ATime = int64(op)
				e.NRef++
				p.Touch(e)
				break
			}
		case 3, 4: // victim for a random incoming size, then remove it
			incoming := int64(1 + r.Intn(200000))
			got := p.Victim(incoming)
			want := ref.victim(incoming)
			if (got == nil) != (want == nil) {
				t.Fatalf("op %d: victim nil mismatch (%v vs %v)", op, got, want)
			}
			if got == nil {
				continue
			}
			if got.URL != want.URL {
				t.Fatalf("op %d: Victim(%d) = %s (size %d, atime %d), reference %s (size %d, atime %d)",
					op, incoming, got.URL, got.Size, got.ATime, want.URL, want.Size, want.ATime)
			}
			p.Remove(got)
			ref.remove(want)
			delete(live, got.URL)
		}
		if p.Len() != len(ref.entries) {
			t.Fatalf("op %d: Len %d != reference %d", op, p.Len(), len(ref.entries))
		}
	}
	p.checkInvariants()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestLRUMinPrefersLargeEnough(t *testing.T) {
	p := NewLRUMin()
	old := entry("old-small", 100, 1, 1, 1, 1)
	newer := entry("new-big", 5000, 2, 2, 1, 2)
	p.Add(old)
	p.Add(newer)
	// Incoming 4000: only new-big is >= 4000, so LRU-MIN evicts it even
	// though old-small is older.
	if v := p.Victim(4000); v == nil || v.URL != "new-big" {
		t.Fatalf("Victim(4000) = %v, want new-big", v)
	}
	// Incoming 50: both are >= 50, LRU picks the older.
	if v := p.Victim(50); v == nil || v.URL != "old-small" {
		t.Fatalf("Victim(50) = %v, want old-small", v)
	}
}

func TestLRUMinThresholdHalving(t *testing.T) {
	p := NewLRUMin()
	p.Add(entry("a", 30, 1, 1, 1, 1))
	p.Add(entry("b", 60, 2, 2, 1, 2))
	// Incoming 100: nothing >= 100; >= 50 matches b only.
	if v := p.Victim(100); v == nil || v.URL != "b" {
		t.Fatalf("Victim(100) = %v, want b (first halving class)", v)
	}
}

func TestLRUMinEmpty(t *testing.T) {
	p := NewLRUMin()
	if v := p.Victim(100); v != nil {
		t.Fatalf("empty Victim = %v", v)
	}
}

func TestPitkowReckerBranches(t *testing.T) {
	// dayStart 0; "today" is day 5.
	p := NewPitkowRecker(0)
	old := entry("old-day", 500, 1, 86400*2, 1, 1)         // last access day 2
	todayBig := entry("today-big", 9000, 1, 86400*5, 1, 2) // today, big
	todaySmall := entry("today-small", 10, 1, 86400*5+10, 1, 3)
	p.Add(old)
	p.Add(todayBig)
	p.Add(todaySmall)
	p.SetNow(86400*5 + 100)

	// Branch 1: a document from an earlier day exists -> it goes first.
	if v := p.Victim(0); v == nil || v.URL != "old-day" {
		t.Fatalf("victim = %v, want old-day", v)
	}
	p.Remove(old)
	// Branch 2: all documents accessed today -> largest size goes first.
	if v := p.Victim(0); v == nil || v.URL != "today-big" {
		t.Fatalf("victim = %v, want today-big", v)
	}
}

func TestGDS1AgesWithInflation(t *testing.T) {
	g := NewGDS1()
	// Two same-size docs: priorities equal L + 1/size.
	a := entry("a", 100, 1, 1, 1, 1)
	b := entry("b", 100, 2, 2, 1, 2)
	g.Add(a)
	g.Add(b)
	// a is the victim (tie broken by Rand); evicting it inflates L.
	v := g.Victim(0)
	if v != a {
		t.Fatalf("victim = %s, want a", v.URL)
	}
	g.Remove(v)
	// L inflated to a's priority. Untouched b still carries its old
	// priority, so b ages out before anything inserted at the new L...
	big := entry("big", 1_000_000, 3, 3, 1, 3)
	g.Add(big)
	if v := g.Victim(0); v != b {
		t.Fatalf("victim = %s, want the aged-out b", v.URL)
	}
	// ...but touching b refreshes it to L + 1/size, putting the huge
	// fresh document (tiny 1/size bonus) back at the head.
	g.Touch(b)
	if v := g.Victim(0); v != big {
		t.Fatalf("after touch, victim = %s, want big", v.URL)
	}
}

func TestGDS1SizeOrderWithinGeneration(t *testing.T) {
	g := NewGDS1()
	small := entry("small", 10, 1, 1, 1, 1)
	big := entry("big", 10000, 2, 2, 1, 2)
	g.Add(small)
	g.Add(big)
	// H = L + 1/size: the big document has the lower priority.
	if v := g.Victim(0); v != big {
		t.Fatalf("victim = %s, want big", v.URL)
	}
}

func TestGDSLatency(t *testing.T) {
	g := NewGDSLatency()
	if g.Name() != "GD-Latency" {
		t.Fatalf("name %q", g.Name())
	}
	// Equal sizes: the cheap-to-refetch document goes first
	// (H = L + latency/size).
	cheap := entry("cheap", 1000, 1, 1, 1, 1)
	cheap.Latency = 0.1
	costly := entry("costly", 1000, 2, 2, 1, 2)
	costly.Latency = 5.0
	g.Add(cheap)
	g.Add(costly)
	if v := g.Victim(0); v != cheap {
		t.Fatalf("victim %s, want cheap", v.URL)
	}
	if _, err := Parse("GD-Latency", 0); err != nil {
		t.Fatalf("Parse(GD-Latency): %v", err)
	}
}

func TestComboWithExplicitSecondary(t *testing.T) {
	c := Combo{Primary: KeySize, Secondary: KeyNRef}
	p := c.New(0)
	if p.Name() != "SIZE/NREF" {
		t.Fatalf("name %q", p.Name())
	}
	// Size tie broken by NREF ascending.
	a := entry("a", 100, 1, 1, 5, 1)
	b := entry("b", 100, 2, 2, 2, 2)
	p.Add(a)
	p.Add(b)
	if v := p.Victim(0); v != b {
		t.Fatalf("victim %s, want the less-referenced b", v.URL)
	}
}

func TestComboRandomSecondaryName(t *testing.T) {
	c := Combo{Primary: KeyATime, Secondary: KeyRandom}
	if c.String() != "ATIME/RANDOM" {
		t.Fatalf("combo string %q", c.String())
	}
	if p := c.New(0); p.Name() != "ATIME" {
		t.Fatalf("policy name %q (random secondary is the implicit tiebreak)", p.Name())
	}
}
