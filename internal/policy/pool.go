package policy

import "webcache/internal/trace"

// EntryPool recycles Entries between an eviction and a later insert,
// removing the per-insert allocation from the replay hot loop: once a
// finite cache reaches capacity, every miss both evicts and inserts,
// so the pool reaches a steady state where no Entry is ever allocated.
//
// The zero value is ready to use. Entries handed to Put must already
// be detached from every policy (Policy.Remove has returned) and must
// not be retained by the caller; Get returns them re-initialized field
// for field exactly as NewEntry would, so recycling is invisible to
// the simulation.
type EntryPool struct {
	free []*Entry
	// slab is the tail of the current allocation block: fresh entries
	// are carved from it in address order, so the resident population —
	// which the heap sifts chase through pointers — stays contiguous
	// instead of scattering across individual allocations.
	slab []Entry
}

// slabSize is the number of entries allocated per block (~16 KiB).
const slabSize = 128

// Put recycles e for a future Get.
func (p *EntryPool) Put(e *Entry) {
	p.free = append(p.free, e)
}

// Get returns an entry for a document inserted at time now, reusing a
// recycled entry when one is available and carving one from the
// current slab otherwise.
func (p *EntryPool) Get(url string, size int64, typ trace.DocType, now int64, rand uint64) *Entry {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		e.init(url, size, typ, now, rand)
		return e
	}
	if len(p.slab) == 0 {
		p.slab = make([]Entry, slabSize)
	}
	e := &p.slab[0]
	p.slab = p.slab[1:]
	e.init(url, size, typ, now, rand)
	return e
}

// Len reports how many entries are waiting for reuse.
func (p *EntryPool) Len() int { return len(p.free) }

// Reserver is implemented by policies whose internal structures can be
// pre-sized from an expected resident-document count. The cache passes
// its size hint through at construction; the hint is purely a
// performance lever and never affects removal decisions.
type Reserver interface {
	Reserve(n int)
}
