package policy

import (
	"fmt"
	"testing"

	"webcache/internal/rng"
)

// batchSpecs are the policies the buffered hit path must replay
// identically: the paper's recommended SIZE, the two classic recency/
// frequency policies whose state a touch actually moves, and LRU-MIN
// (the one non-Sorted policy with its own bookkeeping).
var batchSpecs = []string{"SIZE", "LRU", "LFU", "LRU-MIN"}

// buildPair returns two identical entry populations registered with two
// fresh instances of the same policy — the inline-vs-batched test
// fixture. Entries are paired by index with identical fields (including
// the random tiebreak), so any divergence is the replay path's fault.
func buildPair(t *testing.T, spec string, n int) (a, b Policy, ea, eb []*Entry) {
	t.Helper()
	pa, err := Parse(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Parse(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(0xbadc0ffee)
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://h/doc%d.html", i)
		size := int64(64 + r.Intn(4096))
		tie := r.Uint64()
		x := NewEntry(url, size, 0, 1000+int64(i), tie)
		y := NewEntry(url, size, 0, 1000+int64(i), tie)
		pa.Add(x)
		pb.Add(y)
		ea, eb = append(ea, x), append(eb, y)
	}
	return pa, pb, ea, eb
}

// drainVictims empties the policy through its victim order — the
// observable total order every removal decision flows from.
func drainVictims(p Policy) []string {
	var order []string
	for {
		v := p.Victim(1)
		if v == nil {
			return order
		}
		order = append(order, v.URL)
		p.Remove(v)
	}
}

// TestTouchBatchMatchesInline is the sequential-equivalence property
// the buffered hit path rests on: replaying a recorded touch sequence
// through ReplayTouches (which dispatches to Sorted.TouchBatch where
// available) must leave the policy with exactly the victim order the
// inline stamp/NRef++/Touch loop produces — across the taxonomy,
// including tie-heavy LFU and the bucketed LRU-MIN.
func TestTouchBatchMatchesInline(t *testing.T) {
	const entries, touches = 200, 2000
	for _, spec := range batchSpecs {
		t.Run(spec, func(t *testing.T) {
			inline, batched, ea, eb := buildPair(t, spec, entries)

			// One deterministic touch sequence, applied inline on one side
			// and in chunked batches on the other (chunk boundaries land
			// mid-sequence, as real drains do).
			r := rng.New(7)
			var batch []TouchRecord
			flush := func() {
				ReplayTouches(batched, batch)
				batch = batch[:0]
			}
			for i := 0; i < touches; i++ {
				idx := r.Intn(entries)
				at := int64(5000 + i)

				e := ea[idx]
				e.ATime = at
				e.NRef++
				inline.Touch(e)

				batch = append(batch, TouchRecord{Entry: eb[idx], ATime: at})
				if r.Intn(37) == 0 {
					flush()
				}
			}
			flush()

			for i := range ea {
				if ea[i].ATime != eb[i].ATime || ea[i].NRef != eb[i].NRef {
					t.Fatalf("entry %d state diverged: inline ATime=%d NRef=%d, batched ATime=%d NRef=%d",
						i, ea[i].ATime, ea[i].NRef, eb[i].ATime, eb[i].NRef)
				}
			}
			a, b := drainVictims(inline), drainVictims(batched)
			if len(a) != entries || len(b) != entries {
				t.Fatalf("victim drains returned %d/%d entries, want %d", len(a), len(b), entries)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("victim order diverged at position %d: inline %s, batched %s", i, a[i], b[i])
				}
			}
		})
	}
}

// TestReplayTouchesFallback pins the non-TouchBatcher path: a policy
// without the batch entry point gets the inline loop applied on its
// behalf, with identical entry state updates.
func TestReplayTouchesFallback(t *testing.T) {
	p := NewLRUMin() // LRUMin does not implement TouchBatcher
	if _, ok := interface{}(p).(TouchBatcher); ok {
		t.Skip("LRU-MIN grew a TouchBatch; pick another fallback policy")
	}
	e := NewEntry("http://h/a.html", 100, 0, 10, 1)
	p.Add(e)
	ReplayTouches(p, []TouchRecord{{Entry: e, ATime: 20}, {Entry: e, ATime: 30}})
	if e.ATime != 30 || e.NRef != 3 {
		t.Fatalf("fallback replay left ATime=%d NRef=%d, want 30/3", e.ATime, e.NRef)
	}
	ReplayTouches(p, nil) // empty batch is a no-op
	if got := p.Len(); got != 1 {
		t.Fatalf("policy tracks %d entries, want 1", got)
	}
}
