package policy

// PitkowRecker implements the Pitkow/Recker policy (Table 3) as a proxy
// cache removal policy:
//
//	If any cached document was last accessed before the current day, the
//	primary key is DAY(ATIME) and the document accessed the most days ago
//	is removed. Otherwise (everything was accessed today) the primary key
//	is SIZE and the largest document is removed.
//
// The paper leaves the tie-break within the oldest day unspecified; this
// implementation breaks day ties by SIZE (largest first), which matches
// the policy's own else-branch, then randomly. A single heap ordered by
// (DAY(ATIME) asc, SIZE desc, random) realizes both branches: when every
// document was accessed today the day key ties everywhere and the heap
// degenerates to SIZE order, exactly the else-branch.
//
// Pitkow/Recker as published also runs at the end of each day, removing
// documents until a "comfort level" of free space is reached; that
// periodic variant is provided by core.Cache's periodic-sweep option
// (§1.3 of the paper) and benchmarked as an ablation.
type PitkowRecker struct {
	heap     *entryHeap
	dayStart int64
	now      int64
}

// NewPitkowRecker returns the policy. dayStart anchors day boundaries.
func NewPitkowRecker(dayStart int64) *PitkowRecker {
	p := &PitkowRecker{dayStart: dayStart}
	p.heap = newEntryHeap(CompileLess([]Key{KeyDayATime, KeySize}, dayStart))
	return p
}

// Name implements Policy.
func (p *PitkowRecker) Name() string { return "Pitkow/Recker" }

// SetNow informs the policy of the current simulation time. The cache
// calls it before Victim; it only affects which branch the paper's
// description says is active, which for a single combined heap is
// automatic, so the value is retained only for introspection.
func (p *PitkowRecker) SetNow(now int64) { p.now = now }

// Add implements Policy. The cached DAY(ATIME) key is refreshed here
// and in Touch, the only points where ATime changes.
func (p *PitkowRecker) Add(e *Entry) {
	e.DayATime = dayOf(e.ATime, p.dayStart)
	p.heap.Push(e)
}

// Touch implements Policy.
func (p *PitkowRecker) Touch(e *Entry) {
	e.DayATime = dayOf(e.ATime, p.dayStart)
	p.heap.Fix(e)
}

// Reserve implements Reserver.
func (p *PitkowRecker) Reserve(n int) { p.heap.Grow(n) }

// Remove implements Policy.
func (p *PitkowRecker) Remove(e *Entry) { p.heap.Remove(e) }

// Victim implements Policy.
func (p *PitkowRecker) Victim(int64) *Entry {
	head, ok := p.heap.Peek()
	if !ok {
		return nil
	}
	return head
}

// Len implements Policy.
func (p *PitkowRecker) Len() int { return p.heap.Len() }
