package policy

import "strings"

// Sorted is the taxonomy's generic policy: documents are kept in a total
// removal order defined by a sequence of sorting keys, and the head of
// the order is the next victim. All 36 primary/secondary combinations of
// the paper, plus FIFO, LRU, LFU and Hyper-G, are Sorted instances.
// The order is realized by the cheapest backend that provably matches
// the heap's victim sequence (see structural.go); Backend reports which.
type Sorted struct {
	name string
	ord  order

	// dayStart/trackDay maintain the cached DAY(ATIME) derived key: when
	// the key sequence includes KeyDayATime, Add and Touch (the only
	// points where ATime changes) refresh Entry.DayATime so comparators
	// read a field instead of dividing per comparison.
	dayStart int64
	trackDay bool
}

// NewSorted returns a policy ordered by keys (primary first). dayStart
// anchors the DAY(ATIME) key's day boundaries; pass the trace start.
// The RANDOM tiebreak is always appended, so a single-key slice yields a
// "<key> with random secondary" policy as used in Experiment 2. The
// comparator is the compiled specialization for the combination when
// one exists (see CompileLess).
func NewSorted(keys []Key, dayStart int64) *Sorted {
	parts := make([]string, len(keys))
	trackDay := false
	for i, k := range keys {
		parts[i] = k.String()
		if k == KeyDayATime {
			trackDay = true
		}
	}
	return &Sorted{
		name:     strings.Join(parts, "/"),
		ord:      newOrder(keys, CompileLess(keys, dayStart)),
		dayStart: dayStart,
		trackDay: trackDay,
	}
}

// Backend reports which structure realizes the removal order: "heap"
// (the universal fallback), "list" (intrusive recency list), "freq"
// (NREF buckets), or "size" (static log2-size buckets). See
// structural.go for the selection rules.
func (p *Sorted) Backend() string { return p.ord.kind() }

// Name implements Policy.
func (p *Sorted) Name() string { return p.name }

// Add implements Policy.
func (p *Sorted) Add(e *Entry) {
	if p.trackDay {
		e.DayATime = dayOf(e.ATime, p.dayStart)
	}
	p.ord.Add(e)
}

// Touch implements Policy.
func (p *Sorted) Touch(e *Entry) {
	if p.trackDay {
		e.DayATime = dayOf(e.ATime, p.dayStart)
	}
	p.ord.Touch(e)
}

// Reserve implements Reserver: pre-size the backend's backing arrays
// for an expected resident-document count.
func (p *Sorted) Reserve(n int) { p.ord.Grow(n) }

// Remove implements Policy.
func (p *Sorted) Remove(e *Entry) { p.ord.Remove(e) }

// Victim implements Policy: the head of the removal order, regardless of
// the incoming document's size.
func (p *Sorted) Victim(int64) *Entry { return p.ord.Peek() }

// Len implements Policy.
func (p *Sorted) Len() int { return p.ord.Len() }

// Convenience constructors for the literature policies of Table 3.

// NewFIFO returns first-in first-out: primary key ETIME.
func NewFIFO() *Sorted {
	p := NewSorted([]Key{KeyETime}, 0)
	p.name = "FIFO"
	return p
}

// NewLRU returns least-recently-used: primary key ATIME.
func NewLRU() *Sorted {
	p := NewSorted([]Key{KeyATime}, 0)
	p.name = "LRU"
	return p
}

// NewLFU returns least-frequently-used: primary key NREF.
func NewLFU() *Sorted {
	p := NewSorted([]Key{KeyNRef}, 0)
	p.name = "LFU"
	return p
}

// NewHyperG returns the Hyper-G server policy: NREF, then ATIME, then
// SIZE (largest first), then random (Table 3).
func NewHyperG() *Sorted {
	p := NewSorted([]Key{KeyNRef, KeyATime, KeySize}, 0)
	p.name = "Hyper-G"
	return p
}
