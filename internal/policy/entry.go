// Package policy implements the paper's taxonomy of cache removal
// policies as sorting problems (§1.2, Tables 1–3).
//
// A removal policy sorts the cached documents by one or more keys and
// removes documents from the head of the sorted order until enough free
// space exists for an incoming document. The sorting keys (Table 1) are
// SIZE, ⌊log2 SIZE⌋, ETIME, ATIME, DAY(ATIME) and NREF, with RANDOM
// available as a secondary key and always used as the final tiebreak.
// Classic policies are instances of the taxonomy (Table 3): FIFO ≡ ETIME,
// LRU ≡ ATIME, LFU ≡ NREF, Hyper-G ≡ (NREF, ATIME, SIZE); LRU-MIN and
// Pitkow/Recker need small algorithmic extensions and are implemented
// exactly as the paper describes them.
package policy

import (
	"webcache/internal/trace"
)

// Entry is a cached document copy together with the metadata every
// sorting key needs. Entries are owned by exactly one cache and one
// policy at a time.
type Entry struct {
	URL  string
	Size int64
	Type trace.DocType

	// ID is the interned URL ID when the entry lives in a cache built
	// over a columnar trace view (core's ID-indexed mode); -1 when the
	// cache indexes entries by URL string.
	ID int32

	ETime int64 // time the document entered the cache (Unix seconds)
	ATime int64 // time of last access (Unix seconds)
	NRef  int64 // number of references to the document while cached

	// Rand is a stable per-entry random value assigned at insertion; it
	// implements the RANDOM key and the universal final tiebreak.
	Rand uint64

	// Latency is the estimated time to refetch the document from its
	// origin server, in seconds. It feeds the KeyLatency extension key
	// (§5 open problem 1 of the paper).
	Latency float64

	// Expires is the Unix time after which the cached copy should be
	// considered expired (0 = never). It feeds the ExpiredFirst wrapper
	// (§5 open problem 4: Harvest-style expiry-aware removal).
	Expires int64

	// Log2Size caches ⌊log2 Size⌋, the LOG2SIZE sort key. It is computed
	// once when the entry is created (Size never changes in place: a
	// size mismatch replaces the entry), so the compiled comparators
	// compare it directly instead of recomputing the log per heap sift.
	Log2Size int32

	// DayATime caches DAY(ATIME), the day index of the last access
	// relative to the policy's day start. Policies whose key sequence
	// includes KeyDayATime refresh it on Add and Touch — the only points
	// where ATime changes — so comparisons need no division. Entries
	// built outside a policy must call SyncDerived before being handed
	// to a compiled day-keyed comparator.
	DayATime int64

	// typeRank caches the KeyType removal rank of Type.
	typeRank uint8

	// prio is the floating-point priority used by GreedyDual-Size.
	prio float64

	heapIdx int

	// prev/next link the entry into a size-class LRU list (LRU-MIN).
	prev, next *Entry
	bucket     int
}

// HeapIndex implements pqueue.Item.
func (e *Entry) HeapIndex() int { return e.heapIdx }

// SetHeapIndex implements pqueue.Item.
func (e *Entry) SetHeapIndex(i int) { e.heapIdx = i }

// NewEntry returns an entry for a document inserted at time now.
func NewEntry(url string, size int64, typ trace.DocType, now int64, rand uint64) *Entry {
	e := &Entry{}
	e.init(url, size, typ, now, rand)
	return e
}

// init (re)sets every field to the state NewEntry establishes; it is
// shared with EntryPool.Get so recycled entries are indistinguishable
// from freshly allocated ones. Fields are assigned individually — a
// `*e = Entry{...}` literal copies a full stack temp through duffcopy
// on this hot path (TestEntryPoolRecycles pins the full-reset
// behavior, so a new field must be added here too).
func (e *Entry) init(url string, size int64, typ trace.DocType, now int64, rand uint64) {
	e.URL = url
	e.Size = size
	e.Type = typ
	e.ID = -1
	e.ETime = now
	e.ATime = now
	e.NRef = 1
	e.Rand = rand
	e.Latency = 0
	e.Expires = 0
	e.Log2Size = int32(log2Floor(size))
	e.DayATime = 0
	e.typeRank = typeRemovalRank(typ)
	e.prio = 0
	e.heapIdx = -1
	e.prev = nil
	e.next = nil
	e.bucket = -1
}

// SyncDerived recomputes the cached derived sort keys (Log2Size,
// DayATime, and the type rank) from the entry's primary fields.
// Policies maintain these implicitly via Add and Touch; call this when
// building entries by hand for use with a CompileLess comparator.
func (e *Entry) SyncDerived(dayStart int64) {
	e.Log2Size = int32(log2Floor(e.Size))
	e.DayATime = dayOf(e.ATime, dayStart)
	e.typeRank = typeRemovalRank(e.Type)
}

// Policy selects removal victims among cached documents. The cache calls
// Add when a document enters, Touch after updating ATime/NRef on a hit,
// Remove when a document leaves for any reason, and Victim repeatedly
// while it needs more free space.
type Policy interface {
	// Name identifies the policy in reports, e.g. "SIZE/RANDOM" or "LRU-MIN".
	Name() string
	// Add registers a newly cached entry.
	Add(e *Entry)
	// Touch re-sorts e after an access updated its ATime and NRef.
	Touch(e *Entry)
	// Remove unregisters e (eviction, replacement, or invalidation).
	// The cache may recycle e once Remove returns, so implementations
	// must not retain removed entries.
	Remove(e *Entry)
	// Victim returns the next document to remove to make room for an
	// incoming document of the given total size, or nil if no document
	// is available. It must not itself remove the entry.
	Victim(incoming int64) *Entry
	// Len reports how many entries the policy is tracking.
	Len() int
}
