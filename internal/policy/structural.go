package policy

// The structural fast path: most taxonomy combos do not need a heap.
//
// Every Sorted policy is a strict total order over (keys…, Rand, URL),
// and the heap realizes that order generically in O(log n) per Add and
// Touch. But the paper's keys have shape: ETIME never changes after
// insertion, ATIME only ever increases to "now", NREF only ever
// increments by one, and SIZE/LOG2SIZE are immutable. Each shape admits
// a dedicated structure that maintains the *same* total order — victim
// for victim, including the Rand/URL tiebreak — with cheaper
// operations:
//
//   - recencyList: an intrusive doubly-linked list kept fully sorted.
//     Serves ETIME- and ATIME-primary combos (FIFO, LRU) where inserted
//     or touched entries carry the current maximum timestamp, so the
//     insertion scan from the tail terminates after the run of entries
//     sharing that timestamp. DAY(ATIME)/ATIME also qualifies: dayOf is
//     monotone nondecreasing in ATime, so the (day, atime, tie) order
//     coincides with the (atime, tie) order.
//   - freqBuckets: the classic O(1) LFU layout — a sorted list of NREF
//     buckets — except each bucket holds a small heap on the residual
//     (secondary, Rand, URL) order rather than an insertion-ordered
//     list, because the taxonomy's tiebreak is randomized, not FIFO.
//     Serves every NREF-primary combo, LFU, and Hyper-G.
//   - sizeBuckets: 64 static buckets indexed by the cached ⌊log2 Size⌋,
//     each a small heap on the full order. Serves SIZE- and
//     LOG2SIZE-primary combos; Touch at most re-sifts within one
//     bucket, and entries never migrate (Size is immutable).
//
// Selection is automatic in NewSorted via structuralFor; anything it
// does not recognize — DAY(ATIME) primaries with non-ATIME secondaries
// (same-day runs are unbounded, so tail scans are not), the extension
// keys, RANDOM anywhere but last — stays on the heap, which remains
// both the universal fallback and the oracle the property tests drain
// against.

// DisableStructural is an ablation switch: when set before policies are
// constructed, NewSorted keeps every combo on the generic heap backend.
// It prices the structural fast path in benchreplay's `nostructural`
// mode and pins golden equivalence (the nine websim goldens must be
// byte-identical with the switch on and off). It is not safe to flip
// while policies exist.
var DisableStructural bool

// order is the backend contract behind Sorted: a strict-total-order
// container over entries. Peek returns the minimum (next victim) or nil
// when empty. Implementations may use Entry's intrusive fields
// (heapIdx, prev, next, bucket) — entries belong to one policy at a
// time.
type order interface {
	Add(e *Entry)
	Touch(e *Entry)
	Remove(e *Entry)
	Peek() *Entry
	Len() int
	Grow(n int)
	kind() string
}

// newOrder picks the cheapest backend that provably reproduces the
// heap's victim order for the key sequence, falling back to the heap.
func newOrder(keys []Key, less func(a, b *Entry) bool) order {
	if !DisableStructural {
		if o := structuralFor(keys, less); o != nil {
			return o
		}
	}
	return heapOrder{newEntryHeap(less)}
}

// structuralFor classifies a key sequence and returns its structural
// backend, or nil when only the heap is known to be order-identical.
// The classification mirrors compiledFor: a trailing RANDOM key is
// redundant with the universal Rand tiebreak and is stripped first.
func structuralFor(keys []Key, less func(a, b *Entry) bool) order {
	ks := keys
	if n := len(ks); n > 0 && ks[n-1] == KeyRandom {
		ks = ks[:n-1]
	}
	if len(ks) == 0 {
		return nil
	}
	for _, k := range ks {
		switch k {
		case KeyRandom, KeyType, KeyLatency:
			// RANDOM in a non-final position reorders on no state
			// transition a structure could track; the extension keys
			// are outside the proven set.
			return nil
		}
	}
	if len(ks) == 3 {
		if ks[0] == KeyNRef {
			// Hyper-G (NREF, ATIME, SIZE) and friends: buckets
			// partition on the primary, the per-bucket heap orders the
			// full residual.
			return newFreqBuckets(less)
		}
		return nil
	}
	if len(ks) > 3 {
		return nil
	}
	primary := ks[0]
	var secondary Key
	hasSecondary := len(ks) == 2
	if hasSecondary {
		secondary = ks[1]
	}
	// Does Touch change any non-primary key the order depends on?
	// Touch sets ATime (and DayATime) to now and increments NRef.
	touchMoves := hasSecondary &&
		(secondary == KeyATime || secondary == KeyDayATime || secondary == KeyNRef)
	switch primary {
	case KeyATime:
		// The touched entry's ATime becomes the maximum, so it belongs
		// at (or within the equal-timestamp run at) the tail.
		return newRecencyList(less, touchTail)
	case KeyETime:
		if touchMoves {
			// ETIME is fixed, so a touch moves the entry only within
			// its equal-ETime run — a bounded local reposition.
			return newRecencyList(less, touchLocal)
		}
		// FIFO-like: every key Touch can change is outside the order.
		return newRecencyList(less, touchNone)
	case KeyDayATime:
		if hasSecondary && secondary == KeyATime {
			// dayOf is monotone nondecreasing in ATime, so sorting by
			// (day, atime, tie) is sorting by (atime, tie); the list's
			// tail insertion argument carries over unchanged. Other
			// DAY(ATIME) primaries stay on the heap: a touch would
			// reposition within the whole same-day run.
			return newRecencyList(less, touchTail)
		}
		return nil
	case KeyNRef:
		return newFreqBuckets(less)
	case KeySize, KeyLog2Size:
		// ⌊log2 Size⌋ is monotone in Size, so bucket order is primary
		// order for both keys; within a bucket the heap handles the
		// residual (for SIZE, the residual still starts with the exact
		// size). Touch re-sifts within the bucket only when a mutable
		// secondary participates.
		return newSizeBuckets(less, touchMoves)
	}
	return nil
}

// heapOrder adapts entryHeap to the order interface — the universal
// fallback and the equivalence oracle.
type heapOrder struct{ h *entryHeap }

func (o heapOrder) Add(e *Entry)    { o.h.Push(e) }
func (o heapOrder) Touch(e *Entry)  { o.h.Fix(e) }
func (o heapOrder) Remove(e *Entry) { o.h.Remove(e) }
func (o heapOrder) Len() int        { return o.h.Len() }
func (o heapOrder) Grow(n int)      { o.h.Grow(n) }
func (o heapOrder) kind() string    { return "heap" }

func (o heapOrder) Peek() *Entry {
	e, _ := o.h.Peek()
	return e
}
